// PA system: the paper's motivating deployment — background music
// throughout a building, preempted by a central announcement (§5.3's
// "crew announcements" scenario), with the §5.2 automatic volume
// control adapting each room's speaker to its ambient noise.
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/lan"
	"repro/internal/mgmt"
	"repro/internal/speaker"
)

func main() {
	sys := espeaker.NewSimSystem(espeaker.SegmentConfig{Latency: 150 * time.Microsecond})

	music, err := sys.AddChannel(espeaker.ChannelConfig{
		ID: 1, Name: "background-music", Group: "239.72.1.1:5004",
		ControlInterval: 250 * time.Millisecond,
	}, espeaker.VADConfig{})
	check(err)
	announce, err := sys.AddChannel(espeaker.ChannelConfig{
		ID: 2, Name: "announcements", Group: "239.72.1.9:5004",
		ControlInterval: 250 * time.Millisecond,
	}, espeaker.VADConfig{})
	check(err)
	check(sys.StartCatalog(time.Second))

	// Six rooms with different noise environments; every speaker runs
	// the auto-volume controller and a management agent.
	rooms := []struct {
		name    string
		ambient float64 // noise RMS
	}{
		{"lobby", 2500}, {"cafeteria", 6000}, {"library", 300},
		{"machine-shop", 12000}, {"office-2f", 1200}, {"office-3f", 1500},
	}
	var agents []*mgmt.Agent
	var speakers []*speaker.Speaker
	client, err := mgmt.NewClient(sys.Clock, sys.Net, "10.0.99.1:5005")
	check(err)
	for i, room := range rooms {
		sp, err := sys.AddSpeaker(espeaker.SpeakerConfig{
			Name:       room.name,
			Group:      "239.72.1.1:5004",
			AutoVolume: &speaker.AutoVolume{},
		})
		check(err)
		sp.SetAmbient(room.ambient)
		speakers = append(speakers, sp)
		agent, err := mgmt.NewAgent(sys.Clock, sys.Net,
			lan.Addr(fmt.Sprintf("10.0.99.%d:5005", i+10)), mgmt.SpeakerMIB(room.name, sp))
		check(err)
		agents = append(agents, agent)
		sys.Clock.Go("agent-"+room.name, agent.Run)
	}

	// Programme: continuous music; announcements twice.
	p := espeaker.CDQuality
	voice := espeaker.Voice
	sys.Clock.Go("music", func() {
		music.Play(p, espeaker.Music(p.SampleRate, p.Channels), 30*time.Second)
	})
	sys.Clock.Go("announcer", func() {
		sys.Clock.Sleep(8 * time.Second)
		announce.Play(voice, espeaker.Tone(voice.SampleRate, 1, 600, 0.8), 4*time.Second)
	})

	// The console: begin the override during the announcement window,
	// end it afterwards, and report what each room did.
	sys.Clock.Go("console", func() {
		sys.Clock.Sleep(6 * time.Second)
		fmt.Println("t=6s   volumes after auto-volume settles:")
		for i, sp := range speakers {
			fmt.Printf("  %-13s ambient %6.0f  volume %.2f\n",
				rooms[i].name, rooms[i].ambient, sp.Volume())
		}
		sys.Clock.Sleep(2 * time.Second)
		fmt.Println("t=8s   ANNOUNCEMENT: overriding all rooms to channel 2")
		check(client.SetAll(mgmt.Pair{Name: "es.override.begin", Value: "239.72.1.9:5004"}))
		sys.Clock.Sleep(5 * time.Second)
		tuned := 0
		for _, sp := range speakers {
			if sp.Group() == "239.72.1.9:5004" {
				tuned++
			}
		}
		fmt.Printf("t=13s  %d/6 rooms on the announcement channel\n", tuned)
		check(client.SetAll(mgmt.Pair{Name: "es.override.end", Value: "1"}))
		sys.Clock.Sleep(4 * time.Second)
		restored := 0
		for _, sp := range speakers {
			if sp.Group() == "239.72.1.1:5004" {
				restored++
			}
		}
		fmt.Printf("t=17s  override ended, %d/6 rooms back on music\n", restored)
		sys.Clock.Sleep(15 * time.Second)
		for _, a := range agents {
			a.Stop()
		}
		client.Close()
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	fmt.Println("final per-room stats:")
	for i, sp := range speakers {
		st := sp.Stats()
		fmt.Printf("  %-13s played %5.1fs  tunes %d  volume %.2f\n",
			rooms[i].name, float64(st.BytesPlayed)/float64(p.BytesPerSecond()),
			st.Tunes, sp.Volume())
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
