// Timeshift: the §3.3 payoff of keeping the VAD general — "applications
// may be developed to process the audio stream (e.g., time-shifting
// Internet radio transmissions)". A recorder reads the master side of a
// VAD while a player streams into the slave, stores the programme, and
// replays it later onto a live channel; the VAD imposes no rate limit,
// so recording runs at wire speed (§3.1).
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/audio"
	"repro/internal/vad"
)

func main() {
	sys := espeaker.NewSimSystem(espeaker.SegmentConfig{})

	// Stage 1: record. The "internet radio" application plays a
	// 30-second programme into a standalone VAD; the recorder drains the
	// master at wire speed.
	recVAD := vad.New(sys.Clock, vad.Config{})
	var recorded []byte
	var recParams audio.Params
	recordStart := sys.Clock.Now()
	var recordElapsed time.Duration
	sys.Clock.Go("recorder", func() {
		for {
			blk, ok := recVAD.Master().ReadBlock()
			if !ok {
				recordElapsed = sys.Clock.Since(recordStart)
				return
			}
			if blk.Config {
				recParams = blk.Params
				continue
			}
			recorded = append(recorded, blk.Data...)
		}
	})
	p := espeaker.Voice
	sys.Clock.Go("radio", func() {
		slave := recVAD.Slave()
		if err := slave.Open(p); err != nil {
			panic(err)
		}
		total := p.BytesFor(30 * time.Second)
		src := espeaker.Tone(p.SampleRate, 1, 440, 0.6)
		buf := make([]int16, 4096)
		written := 0
		for written < total {
			n, _ := src.ReadSamples(buf)
			raw := audio.Encode(p, buf[:n])
			if written+len(raw) > total {
				raw = raw[:total-written]
			}
			slave.Write(raw)
			written += len(raw)
		}
		slave.Drain()
		recVAD.Close()
	})
	sys.Sim.WaitIdle()

	fmt.Printf("recorded %.1fs of %s in %v of simulated time (no rate limit on the VAD)\n",
		float64(len(recorded))/float64(recParams.BytesPerSecond()),
		recParams, recordElapsed.Round(time.Millisecond))

	// Stage 2: replay the stored programme onto a live channel — this
	// time the rebroadcaster's limiter paces it to real time.
	ch, err := sys.AddChannel(espeaker.ChannelConfig{
		ID: 1, Name: "timeshifted", Group: "239.72.1.1:5004",
	}, espeaker.VADConfig{})
	if err != nil {
		panic(err)
	}
	sp, err := sys.AddSpeaker(espeaker.SpeakerConfig{Name: "living-room", Group: "239.72.1.1:5004"})
	if err != nil {
		panic(err)
	}
	replayStart := sys.Clock.Now()
	var replayElapsed time.Duration
	sys.Clock.Go("replay", func() {
		ch.Play(recParams, &audio.SliceSource{Samples: audio.Decode(recParams, recorded)},
			30*time.Second)
		replayElapsed = sys.Clock.Since(replayStart)
		sys.Clock.Sleep(32 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	st := sp.Stats()
	fmt.Printf("replayed in %v of simulated time (rate-limited to real time)\n",
		replayElapsed.Round(time.Second))
	fmt.Printf("speaker played %.1fs, late drops %d\n",
		float64(st.BytesPlayed)/float64(recParams.BytesPerSecond()), st.DroppedLate)
}
