// Timeshift: the §3.3 payoff of keeping the VAD general — "applications
// may be developed to process the audio stream (e.g., time-shifting
// Internet radio transmissions)". The DVR subsystem does this in place:
// a DVR-enabled relay records the live channel into a bounded ring, and
// a listener who tunes in late asks the relay for history
// (Subscribe.ShiftMs). The relay replays the backlog faster than real
// time — honouring pause and resume along the way — until the listener
// converges onto the live stream and ordinary fan-out takes over.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/relay/lease"
)

func main() {
	sys := espeaker.NewSimSystem(espeaker.SegmentConfig{QueueLen: 4096})

	// The radio station: a live channel multicasting a 30-second
	// programme, with a DVR relay recording it as it airs.
	const group = "239.72.1.1:5004"
	r, err := sys.AddRelay(espeaker.RelayConfig{
		Group:    group,
		Channel:  1,
		DVR:      true,
		DVRDepth: 60 * time.Second, // ring comfortably covers the programme
	})
	if err != nil {
		panic(err)
	}
	ch, err := sys.AddChannel(espeaker.ChannelConfig{
		ID: 1, Name: "radio", Group: group,
	}, espeaker.VADConfig{})
	if err != nil {
		panic(err)
	}
	sp, err := sys.AddSpeaker(espeaker.SpeakerConfig{Name: "living-room", Group: group})
	if err != nil {
		panic(err)
	}

	p := espeaker.Voice
	sys.Clock.Go("radio", func() {
		ch.Play(p, espeaker.Tone(p.SampleRate, p.Channels, 440, 0.6), 30*time.Second)
	})

	// The late listener: a unicast lease against the relay, counting the
	// data packets it is served.
	conn, err := sys.Net.Attach(lan.Addr("10.99.0.1:7000"))
	if err != nil {
		panic(err)
	}
	late := lease.New(sys.Clock, conn, "late-listener")
	var stop int32
	var got int64
	sys.Clock.Go("late-recv", func() {
		for {
			pkt, err := conn.Recv(time.Second)
			if err == lan.ErrTimeout {
				if atomic.LoadInt32(&stop) != 0 {
					return
				}
				continue
			}
			if err != nil {
				return
			}
			switch t, _, _ := proto.PeekType(pkt.Data); t {
			case proto.TypeSubAck:
				late.HandleAckData(pkt.From, pkt.Data)
			case proto.TypeData:
				atomic.AddInt64(&got, 1)
			}
		}
	})
	catchingUp := func() bool {
		for _, info := range r.Subscribers() {
			if info.Addr == conn.LocalAddr() {
				return info.CatchingUp
			}
		}
		return false
	}

	sys.Clock.Go("driver", func() {
		defer func() {
			atomic.StoreInt32(&stop, 1)
			late.Close()
			conn.Close()
			sys.Shutdown()
		}()

		// The listener misses the first 20 seconds of the programme,
		// then asks the relay for all of it.
		sys.Clock.Sleep(20 * time.Second)
		late.SetShift(20 * time.Second)
		late.Subscribe(r.Addr(), 1, time.Minute)
		sys.Clock.Sleep(time.Second)
		fmt.Printf("missed 20s of the programme; relay granted a %v shift\n",
			late.GrantedShift().Round(time.Millisecond))

		// Mid catch-up, pause: delivery parks exactly where it is and the
		// ring keeps recording the live transmission underneath.
		beforePause := atomic.LoadInt64(&got)
		late.Pause()
		sys.Clock.Sleep(3 * time.Second)
		duringPause := atomic.LoadInt64(&got) - beforePause
		fmt.Printf("paused after %d packets; %d arrived during the 3s pause\n",
			beforePause, duringPause)

		// Resume: the backlog replays faster than real time until the
		// cursor converges on the live head.
		late.Resume()
		resumed := sys.Clock.Now()
		converged := time.Duration(0)
		for i := 0; i < 300; i++ {
			if late.GrantedShift() > 0 && !catchingUp() {
				converged = sys.Clock.Now().Sub(resumed)
				break
			}
			sys.Clock.Sleep(100 * time.Millisecond)
		}
		fmt.Printf("converged on the live stream %v after resuming\n",
			converged.Round(100*time.Millisecond))

		// Ride the live tail to the end of the programme.
		sys.Clock.Sleep(12 * time.Second)

		st := r.Stats()
		fmt.Printf("late listener received %d packets, %d of them replayed from the ring\n",
			atomic.LoadInt64(&got), st.DVRBacklog)
		fmt.Printf("relay: %d ring(s), clamped %d, evictions %d\n",
			st.DVRRings, st.DVRClamped, st.DVREvictions)
		ls := sp.Stats()
		fmt.Printf("live speaker played %.1fs throughout, late drops %d\n",
			float64(ls.BytesPlayed)/float64(p.BytesPerSecond()), ls.DroppedLate)
	})
	sys.Sim.WaitIdle()
}
