// Quickstart: one rebroadcast channel and two Ethernet Speakers on a
// simulated LAN, playing ten seconds of CD-quality audio. Everything
// runs in simulated time, so it completes instantly and identically on
// every machine.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	// A campus LAN: fast Ethernet with a little propagation delay.
	sys := espeaker.NewSimSystem(espeaker.SegmentConfig{
		BandwidthBps: 100_000_000,
		Latency:      200 * time.Microsecond,
	})

	// The producer: an unmodified audio application plays into the
	// channel's virtual audio device; the rebroadcaster compresses and
	// multicasts it (CD quality exceeds the threshold, so OVL is chosen
	// automatically).
	ch, err := sys.AddChannel(espeaker.ChannelConfig{
		ID:    1,
		Name:  "quickstart",
		Group: "239.72.1.1:5004",
	}, espeaker.VADConfig{})
	if err != nil {
		panic(err)
	}

	// Two speakers in different rooms join the group.
	var speakers []*espeaker.Speaker
	for _, name := range []string{"kitchen", "workshop"} {
		sp, err := sys.AddSpeaker(espeaker.SpeakerConfig{
			Name:  name,
			Group: "239.72.1.1:5004",
		})
		if err != nil {
			panic(err)
		}
		speakers = append(speakers, sp)
	}

	// Play ten seconds of the test program and let it drain.
	p := espeaker.CDQuality
	sys.Clock.Go("player", func() {
		if err := ch.Play(p, espeaker.Music(p.SampleRate, p.Channels), 10*time.Second); err != nil {
			fmt.Println("play:", err)
		}
		sys.Clock.Sleep(12 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	fmt.Println("quickstart: 10s of CD audio to two speakers")
	rst := ch.Reb.Stats()
	fmt.Printf("  producer: %d data packets, %d control packets, %.0f kbps on the wire (%.0f%% of raw)\n",
		rst.DataPackets, rst.ControlPackets,
		float64(rst.PayloadBytes)*8/10/1000,
		100*float64(rst.PayloadBytes)/float64(rst.SourceBytes))
	for i, sp := range speakers {
		st := sp.Stats()
		fmt.Printf("  %-9s played %5.1fs, late drops %d, gap fills %d\n",
			[]string{"kitchen", "workshop"}[i],
			float64(st.BytesPlayed)/float64(p.BytesPerSecond()),
			st.DroppedLate, st.GapFills)
	}
}
