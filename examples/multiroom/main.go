// Multiroom: the headline property — speakers all over a building stay
// in sync (§3.2). Four speakers join at different times mid-programme;
// the skew meter decodes stream position from each DAC's output and
// reports pairwise skew, plus the tune-in latency each latecomer paid
// waiting for a control packet (§2.3).
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/speaker"
)

func main() {
	sys := espeaker.NewSimSystem(espeaker.SegmentConfig{
		Latency: 200 * time.Microsecond,
		Jitter:  500 * time.Microsecond,
		Seed:    7,
	})
	ch, err := sys.AddChannel(espeaker.ChannelConfig{
		ID: 1, Name: "multiroom", Group: "239.72.1.1:5004", Codec: "raw",
		ControlInterval: 500 * time.Millisecond,
	}, espeaker.VADConfig{})
	if err != nil {
		panic(err)
	}

	meter := core.NewSkewMeter()
	joins := map[string]time.Duration{
		"hall": 0, "kitchen": 3 * time.Second,
		"bedroom": 6 * time.Second, "garage": 9 * time.Second,
	}
	names := []string{"hall", "kitchen", "bedroom", "garage"}
	joinedAt := map[string]time.Time{}
	var sps []*speaker.Speaker
	for _, name := range names {
		name := name
		sys.Clock.Go("join-"+name, func() {
			sys.Clock.Sleep(joins[name])
			joinedAt[name] = sys.Clock.Now()
			sp, err := sys.AddSpeaker(espeaker.SpeakerConfig{Name: name, Group: "239.72.1.1:5004"})
			if err != nil {
				panic(err)
			}
			sps = append(sps, sp)
			meter.Attach(name, sp)
		})
	}

	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	start := sys.Clock.Now()
	const clip = 15 * time.Second
	sys.Clock.Go("player", func() {
		ch.Play(p, &core.PositionSource{Channels: 1}, clip)
		sys.Clock.Sleep(clip + 2*time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	fmt.Println("multiroom: 4 speakers joining mid-programme")
	for _, name := range names {
		first, ok := meter.FirstSound(name)
		if !ok {
			fmt.Printf("  %-8s never played\n", name)
			continue
		}
		fmt.Printf("  %-8s joined t=%-3v first sound after %v\n",
			name, joins[name], first.Sub(joinedAt[name]).Round(time.Millisecond))
	}
	times := core.SampleTimes(start.Add(10*time.Second), start.Add(14*time.Second), 40)
	fmt.Println("pairwise skew over the final window:")
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			skews := meter.Skew(names[i], names[j], times)
			var worst float64
			for _, ms := range skews {
				if ms < 0 {
					ms = -ms
				}
				if ms > worst {
					worst = ms
				}
			}
			fmt.Printf("  %-8s vs %-8s max |skew| %.3f ms (%d samples)\n",
				names[i], names[j], worst, len(skews))
		}
	}
}
