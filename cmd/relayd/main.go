// Command relayd bridges a multicast channel to off-LAN listeners: it
// joins the channel's group as an ordinary receiver and fans the
// control + data stream out to unicast subscribers holding TURN-style
// leases. Speakers beyond the multicast segment (or on
// multicast-hostile networks) point their tuner at this daemon's
// address instead of the group and play unchanged.
//
// The fan-out path is sharded and batched: subscribers hash onto
// -shards shards, and outgoing datagrams are accumulated into batches
// of up to -batch and written with one sendmmsg call (on Linux). A
// partial batch is flushed after -flush at the latest. -shard-sockets
// additionally gives every shard its own send socket (data then comes
// from ephemeral ports — LAN/routed deployments only, it breaks NATed
// subscribers). -gso upgrades the batch write to UDP_SEGMENT
// segmentation offload where the kernel supports it, and -ladder turns
// on the adaptive quality ladder: subscribers whose queues drop packets
// are transcoded down the codec profile tiers (source, ulaw, ovl-high,
// ovl-low) and climb back after a clean dwell (-ladder-down-drops and
// -ladder-dwell tune the thresholds). -dvr turns on time-shifted
// delivery: relayed packets are recorded into bounded per-channel
// rings (-dvr-depth of history), subscribers may join "from N seconds
// ago" or pause and resume, and their backlog is replayed at up to
// -dvr-burst packets/s until they converge on the live stream. See
// docs/RELAY-OPS.md for the full operator guide, including which MIB
// counters to watch.
//
// Example — relay the default channel group, serving subscribers on
// port 5006:
//
//	relayd -group 239.72.1.1:5004 -listen 0.0.0.0:5006
//
// A speaker on another network then tunes to <relay-host>:5006, e.g.
//
//	esd -group 192.0.2.10:5006
//
// Relays chain: -upstream points this relay at another relay instead
// of a multicast group, so bridges compose across several network
// segments (each hop holds a TURN-style lease on the previous one, and
// loops are refused with SubLoop). -upstream discover picks the bridge
// from the §4.3 catalog at boot instead of static configuration
// (excluding this relay's own advertised address, so it cannot chain
// behind itself). -advertise publishes this relay in the catalog so
// off-LAN speakers and downstream relays can find it (-advertise
// requires a routable -listen address — a wildcard bind would advertise
// an address no subscriber can reach):
//
//	relayd -upstream 192.0.2.10:5006 -listen 198.51.100.7:5006 \
//	       -advertise 239.72.0.1:5003
//
// On an untrusted network, authenticate the control plane: with
// -auth hmac -key-file the relay verifies every Subscribe before it
// creates forwarding state (forged ones are dropped silently — no
// SubAck, so a spoofed request reflects nothing at a victim) and signs
// every SubAck. Subscribers (esd, downstream relayds) must carry the
// same key. See "Securing a relay" in docs/RELAY-OPS.md.
package main

import (
	"log"
	stdnet "net"
	"os"
	"time"

	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/vclock"
)

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2) // flag package already printed the problem
	}
	log.SetPrefix("relayd: ")
	log.SetFlags(0)

	auth, err := security.LoadControlAuth(o.auth, o.keyFile)
	if err != nil {
		log.Fatal(err)
	}

	clock := vclock.System
	net := &lan.UDPNetwork{}

	sourceHops := 0
	if o.upstream == "discover" {
		// Pick the bridge from the catalog, refusing our own advertised
		// address — the catalog echoes this relay's announce back at it
		// — and everything chained behind us at any depth: a chained
		// relay advertises its upstream in the record's Group field, so
		// ExcludeChainOf follows those edges from our address through
		// the whole downstream subtree. Selecting any of it builds the
		// cycle SubLoop would then refuse on every refresh forever
		// instead of ever converging.
		ri, err := relay.Discover(clock, net,
			lan.Addr(stdnet.JoinHostPort(lan.Addr(o.listen).Host(), "0")),
			lan.Addr(o.catalog), uint32(o.channel), 15*time.Second,
			relay.ExcludeChainOf(lan.Addr(o.listen)))
		if err != nil {
			log.Fatal(err)
		}
		o.upstream = ri.Addr
		if ri.HasLoad && ri.Hops < 255 {
			// Depth accumulates along discovered chains: our catalog
			// record reports one hop more than the upstream's.
			sourceHops = int(ri.Hops) + 1
		}
		log.Printf("discovered upstream %s (relaying %s)", ri.Addr, ri.Group)
	}

	conn, err := net.Attach(lan.Addr(o.listen))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	cfg := o.relayConfig(auth, sourceHops)
	if o.shardSk {
		// Per-shard send sockets: each shard batches through its own
		// ephemeral-port socket. Data then comes from those ports, not
		// from -listen, so a NAT/stateful-firewall pinhole opened by the
		// subscriber's Subscribe will not match — TURN keeps relayed
		// data on the allocation address for the same reason. Off by
		// default; batching via the shared socket still uses sendmmsg.
		cfg.Network = net
	}
	r, err := relay.New(clock, conn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("relaying %s, subscribers lease at %s", r.Source(), r.Addr())
	if auth != nil {
		log.Printf("control plane authenticated (%s); unsigned subscribes are dropped silently", auth.Scheme())
	}

	if o.opsAddr != "" {
		reg := obs.NewRegistry()
		r.RegisterObs(reg)
		srv, err := obs.Serve(o.opsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("ops endpoint at http://%s/metrics", srv.Addr())
	}

	if o.adverts != "" {
		// Publish this relay in the channel catalog (§4.3) so off-LAN
		// speakers and downstream relays discover it without static
		// configuration. The advertised address is -listen verbatim, so
		// a wildcard bind would publish an address no subscriber can
		// reach ("0.0.0.0:5006" sends the Subscribe back to the
		// subscriber's own host) — refuse it up front.
		if ip := stdnet.ParseIP(lan.Addr(o.listen).Host()); ip == nil || ip.IsUnspecified() {
			log.Fatalf("-advertise needs a routable -listen address, not %q: bind the interface subscribers reach", o.listen)
		}
		// The announcer gets its own ephemeral socket so catalog
		// traffic never contends with the data path.
		cconn, err := net.Attach(lan.Addr(stdnet.JoinHostPort(lan.Addr(o.listen).Host(), "0")))
		if err != nil {
			log.Fatal(err)
		}
		defer cconn.Close()
		cat := rebroadcast.NewCatalog(clock, cconn, lan.Addr(o.adverts), 0)
		// Live record provider: every announce carries the load vector
		// (subscribers, queue pressure, hops from source) as of that
		// cycle, which is what discovery ranks candidates by.
		cat.SetRelayFunc(r.Info)
		clock.Go("advertise", cat.Run)
		defer cat.Stop()
		log.Printf("advertising on %s", o.adverts)

		if o.shedSubs > 0 || o.shedPres > 0 {
			// Shedding needs somewhere to steer: watch the same catalog
			// group for sibling relays and feed live snapshots to the
			// redirect picker.
			w, err := relay.NewWatcher(clock, net,
				lan.Addr(stdnet.JoinHostPort(lan.Addr(o.listen).Host(), "0")),
				lan.Addr(o.adverts))
			if err != nil {
				log.Fatal(err)
			}
			r.SetSiblings(w.Snapshot)
			clock.Go("sibling-watch", w.Run)
			defer w.Stop()
			log.Printf("shedding enabled (subscribers>=%d, pressure>=%d); steering to catalog siblings", o.shedSubs, o.shedPres)
		}
	}
	if (o.shedSubs > 0 || o.shedPres > 0) && o.adverts == "" {
		log.Printf("warning: -shed-subscribers/-shed-pressure set without -advertise: no sibling watch, so the relay admits normally instead of shedding")
	}

	if o.report > 0 {
		clock.Go("report", func() {
			for {
				clock.Sleep(o.report)
				r.Table().Render(os.Stdout)
			}
		})
	}
	r.Run()
}
