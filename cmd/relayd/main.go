// Command relayd bridges a multicast channel to off-LAN listeners: it
// joins the channel's group as an ordinary receiver and fans the
// control + data stream out to unicast subscribers holding TURN-style
// leases. Speakers beyond the multicast segment (or on
// multicast-hostile networks) point their tuner at this daemon's
// address instead of the group and play unchanged.
//
// The fan-out path is sharded and batched: subscribers hash onto
// -shards shards, and outgoing datagrams are accumulated into batches
// of up to -batch and written with one sendmmsg call (on Linux). A
// partial batch is flushed after -flush at the latest. -shard-sockets
// additionally gives every shard its own send socket (data then comes
// from ephemeral ports — LAN/routed deployments only, it breaks NATed
// subscribers). See docs/RELAY-OPS.md for the full operator guide,
// including which MIB counters to watch.
//
// Example — relay the default channel group, serving subscribers on
// port 5006:
//
//	relayd -group 239.72.1.1:5004 -listen 0.0.0.0:5006
//
// A speaker on another network then tunes to <relay-host>:5006, e.g.
//
//	esd -group 192.0.2.10:5006
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"repro/internal/lan"
	"repro/internal/relay"
	"repro/internal/vclock"
)

func main() {
	var (
		group   = flag.String("group", "239.72.1.1:5004", "multicast group to relay")
		listen  = flag.String("listen", "0.0.0.0:5006", "unicast address subscribers lease from")
		channel = flag.Uint("channel", 0, "restrict to one channel id (0 = any)")
		shards  = flag.Int("shards", relay.DefaultShards, "subscriber table shards")
		queue   = flag.Int("queue", relay.DefaultQueueLen, "per-subscriber queue length (packets)")
		maxSubs = flag.Int("max-subscribers", relay.DefaultMaxSubscribers, "subscriber table capacity")
		maxLs   = flag.Duration("max-lease", relay.DefaultMaxLease, "longest grantable lease")
		batch   = flag.Int("batch", relay.DefaultBatch, "fan-out batch size in datagrams (1 = unbatched)")
		flush   = flag.Duration("flush", relay.DefaultFlushInterval, "max age of a partial batch before it is flushed")
		shardSk = flag.Bool("shard-sockets", false, "per-shard ephemeral send sockets (higher throughput, but data no longer originates from -listen: breaks NATed subscribers)")
		report  = flag.Duration("report", 10*time.Second, "stats table interval (0 = silent)")
	)
	flag.Parse()
	log.SetPrefix("relayd: ")
	log.SetFlags(0)

	clock := vclock.System
	net := &lan.UDPNetwork{}
	conn, err := net.Attach(lan.Addr(*listen))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	cfg := relay.Config{
		Group:          lan.Addr(*group),
		Channel:        uint32(*channel),
		Shards:         *shards,
		QueueLen:       *queue,
		MaxSubscribers: *maxSubs,
		MaxLease:       *maxLs,
		Batch:          *batch,
		FlushInterval:  *flush,
	}
	if *shardSk {
		// Per-shard send sockets: each shard batches through its own
		// ephemeral-port socket. Data then comes from those ports, not
		// from -listen, so a NAT/stateful-firewall pinhole opened by the
		// subscriber's Subscribe will not match — TURN keeps relayed
		// data on the allocation address for the same reason. Off by
		// default; batching via the shared socket still uses sendmmsg.
		cfg.Network = net
	}
	r, err := relay.New(clock, conn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("relaying %s, subscribers lease at %s", *group, r.Addr())

	if *report > 0 {
		clock.Go("report", func() {
			for {
				clock.Sleep(*report)
				r.Table().Render(os.Stdout)
			}
		})
	}
	r.Run()
}
