// Command relayd bridges a multicast channel to off-LAN listeners: it
// joins the channel's group as an ordinary receiver and fans the
// control + data stream out to unicast subscribers holding TURN-style
// leases. Speakers beyond the multicast segment (or on
// multicast-hostile networks) point their tuner at this daemon's
// address instead of the group and play unchanged.
//
// The fan-out path is sharded and batched: subscribers hash onto
// -shards shards, and outgoing datagrams are accumulated into batches
// of up to -batch and written with one sendmmsg call (on Linux). A
// partial batch is flushed after -flush at the latest. -shard-sockets
// additionally gives every shard its own send socket (data then comes
// from ephemeral ports — LAN/routed deployments only, it breaks NATed
// subscribers). -gso upgrades the batch write to UDP_SEGMENT
// segmentation offload where the kernel supports it, and -ladder turns
// on the adaptive quality ladder: subscribers whose queues drop packets
// are transcoded down the codec profile tiers (source, ulaw, ovl-high,
// ovl-low) and climb back after a clean dwell (-ladder-down-drops and
// -ladder-dwell tune the thresholds). -dvr turns on time-shifted
// delivery: relayed packets are recorded into bounded per-channel
// rings (-dvr-depth of history), subscribers may join "from N seconds
// ago" or pause and resume, and their backlog is replayed at up to
// -dvr-burst packets/s until they converge on the live stream. See
// docs/RELAY-OPS.md for the full operator guide, including which MIB
// counters to watch.
//
// Example — relay the default channel group, serving subscribers on
// port 5006:
//
//	relayd -group 239.72.1.1:5004 -listen 0.0.0.0:5006
//
// A speaker on another network then tunes to <relay-host>:5006, e.g.
//
//	esd -group 192.0.2.10:5006
//
// Relays chain: -upstream points this relay at another relay instead
// of a multicast group, so bridges compose across several network
// segments (each hop holds a TURN-style lease on the previous one, and
// loops are refused with SubLoop). -upstream discover picks the bridge
// from the §4.3 catalog at boot instead of static configuration
// (excluding this relay's own advertised address, so it cannot chain
// behind itself). -advertise publishes this relay in the catalog so
// off-LAN speakers and downstream relays can find it (-advertise
// requires a routable -listen address — a wildcard bind would advertise
// an address no subscriber can reach):
//
//	relayd -upstream 192.0.2.10:5006 -listen 198.51.100.7:5006 \
//	       -advertise 239.72.0.1:5003
//
// On an untrusted network, authenticate the control plane: with
// -auth hmac -key-file the relay verifies every Subscribe before it
// creates forwarding state (forged ones are dropped silently — no
// SubAck, so a spoofed request reflects nothing at a victim) and signs
// every SubAck. Subscribers (esd, downstream relayds) must carry the
// same key. -auth ident upgrades the shared key to per-subscriber
// credentials: -key-file then holds the chain master key, each
// subscriber signs with its own derived credential (mint one with
// -mint-identity N), and the relay pins every lease to the identity
// that opened it — a compromised speaker's credential cannot cancel,
// pause, or redirect anyone else's session, and a per-session replay
// window drops captured control packets. With -auth ident the catalog
// announce is signed too, so discovery cannot be steered by a forged
// record. A chained relay under ident needs -identity (its own
// subscriber identity for the upstream lease) and a routable -listen:
// the upstream binds the signature to the source address it sees. See
// "Securing a relay" and "Provisioning subscriber credentials" in
// docs/RELAY-OPS.md.
package main

import (
	"log"
	stdnet "net"
	"os"
	"time"

	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/vclock"
)

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2) // flag package already printed the problem
	}
	log.SetPrefix("relayd: ")
	log.SetFlags(0)

	auth, ring, err := security.LoadRelayAuth(o.auth, o.keyFile)
	if err != nil {
		log.Fatal(err)
	}

	if o.mintID != 0 {
		// Provisioning helper: print the hex credential for a subscriber
		// identity and exit. The output goes to the subscriber's key file
		// (esd -auth ident -identity N -key-file <file>).
		if ring == nil {
			log.Fatal("-mint-identity needs -auth ident with the master -key-file")
		}
		os.Stdout.WriteString(security.FormatCredential(ring.Credential(uint32(o.mintID))) + "\n")
		return
	}

	clock := vclock.System
	net := &lan.UDPNetwork{}

	// With per-subscriber credentials the catalog is signed too: forged
	// or unsigned announces must not steer this relay's discovery or its
	// shedding sibling set.
	var announceVerifier *security.AnnounceVerifier
	if ring != nil {
		announceVerifier = ring.AnnounceVerifier()
	}

	var upstreamAuth security.Authenticator
	if ring != nil && o.upstream != "" {
		// A chained relay is itself a subscriber upstream: it signs its
		// own lease traffic with a credential derived from -identity. The
		// upstream binds that signature to the UDP source it observes,
		// which is this relay's -listen address — a wildcard bind would
		// sign for an address the packets never appear to come from.
		if o.identity == 0 {
			log.Fatal("-auth ident with -upstream needs -identity: the upstream lease is signed per subscriber")
		}
		if ip := stdnet.ParseIP(lan.Addr(o.listen).Host()); ip == nil || ip.IsUnspecified() {
			log.Fatalf("-auth ident with -upstream needs a routable -listen address, not %q: the upstream verifies the signature against the source address it sees", o.listen)
		}
		upstreamAuth = ring.SignerAt(uint32(o.identity), string(lan.Addr(o.listen)),
			uint64(time.Now().UnixNano()))
	}

	sourceHops := 0
	if o.upstream == "discover" {
		// Pick the bridge from the catalog, refusing our own advertised
		// address — the catalog echoes this relay's announce back at it
		// — and everything chained behind us at any depth: a chained
		// relay advertises its upstream in the record's Group field, so
		// ExcludeChainOf follows those edges from our address through
		// the whole downstream subtree. Selecting any of it builds the
		// cycle SubLoop would then refuse on every refresh forever
		// instead of ever converging.
		ri, err := relay.Discover(clock, net,
			lan.Addr(stdnet.JoinHostPort(lan.Addr(o.listen).Host(), "0")),
			lan.Addr(o.catalog), uint32(o.channel), 15*time.Second,
			relay.ExcludeChainOf(lan.Addr(o.listen)), announceVerifier)
		if err != nil {
			log.Fatal(err)
		}
		o.upstream = ri.Addr
		if ri.HasLoad && ri.Hops < 255 {
			// Depth accumulates along discovered chains: our catalog
			// record reports one hop more than the upstream's.
			sourceHops = int(ri.Hops) + 1
		}
		log.Printf("discovered upstream %s (relaying %s)", ri.Addr, ri.Group)
	}

	conn, err := net.Attach(lan.Addr(o.listen))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	cfg := o.relayConfig(auth, upstreamAuth, sourceHops)
	if o.shardSk {
		// Per-shard send sockets: each shard batches through its own
		// ephemeral-port socket. Data then comes from those ports, not
		// from -listen, so a NAT/stateful-firewall pinhole opened by the
		// subscriber's Subscribe will not match — TURN keeps relayed
		// data on the allocation address for the same reason. Off by
		// default; batching via the shared socket still uses sendmmsg.
		cfg.Network = net
	}
	r, err := relay.New(clock, conn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("relaying %s, subscribers lease at %s", r.Source(), r.Addr())
	if auth != nil {
		log.Printf("control plane authenticated (%s); unsigned subscribes are dropped silently", auth.Scheme())
	}

	if o.opsAddr != "" {
		reg := obs.NewRegistry()
		r.RegisterObs(reg)
		srv, err := obs.Serve(o.opsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("ops endpoint at http://%s/metrics", srv.Addr())
	}

	if o.adverts != "" {
		// Publish this relay in the channel catalog (§4.3) so off-LAN
		// speakers and downstream relays discover it without static
		// configuration. The advertised address is -listen verbatim, so
		// a wildcard bind would publish an address no subscriber can
		// reach ("0.0.0.0:5006" sends the Subscribe back to the
		// subscriber's own host) — refuse it up front.
		if ip := stdnet.ParseIP(lan.Addr(o.listen).Host()); ip == nil || ip.IsUnspecified() {
			log.Fatalf("-advertise needs a routable -listen address, not %q: bind the interface subscribers reach", o.listen)
		}
		// The announcer gets its own ephemeral socket so catalog
		// traffic never contends with the data path.
		cconn, err := net.Attach(lan.Addr(stdnet.JoinHostPort(lan.Addr(o.listen).Host(), "0")))
		if err != nil {
			log.Fatal(err)
		}
		defer cconn.Close()
		cat := rebroadcast.NewCatalog(clock, cconn, lan.Addr(o.adverts), 0)
		// Live record provider: every announce carries the load vector
		// (subscribers, queue pressure, hops from source) as of that
		// cycle, which is what discovery ranks candidates by.
		cat.SetRelayFunc(r.Info)
		if ring != nil {
			// Sign what we publish: a verifying segment refuses unsigned
			// records, and our sibling relays verify before steering.
			cat.SetSigner(ring.AnnounceSigner().Sign)
		}
		clock.Go("advertise", cat.Run)
		defer cat.Stop()
		log.Printf("advertising on %s", o.adverts)

		if o.shedSubs > 0 || o.shedPres > 0 || o.shedTier {
			// Shedding needs somewhere to steer: watch the same catalog
			// group for sibling relays and feed live snapshots to the
			// redirect picker.
			w, err := relay.NewWatcher(clock, net,
				lan.Addr(stdnet.JoinHostPort(lan.Addr(o.listen).Host(), "0")),
				lan.Addr(o.adverts))
			if err != nil {
				log.Fatal(err)
			}
			if announceVerifier != nil {
				// The sibling set is a redirect target list: only signed
				// announces may populate it.
				w.SetVerifier(announceVerifier)
			}
			r.SetSiblings(w.Snapshot)
			clock.Go("sibling-watch", w.Run)
			defer w.Stop()
			log.Printf("shedding enabled (subscribers>=%d, pressure>=%d, tier=%v); steering to catalog siblings", o.shedSubs, o.shedPres, o.shedTier)
		}
	}
	if (o.shedSubs > 0 || o.shedPres > 0 || o.shedTier) && o.adverts == "" {
		log.Printf("warning: -shed-subscribers/-shed-pressure/-shed-tier set without -advertise: no sibling watch, so the relay admits normally instead of shedding")
	}

	if o.report > 0 {
		clock.Go("report", func() {
			for {
				clock.Sleep(o.report)
				r.Table().Render(os.Stdout)
			}
		})
	}
	r.Run()
}
