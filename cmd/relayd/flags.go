package main

import (
	"flag"
	"time"

	"repro/internal/lan"
	"repro/internal/relay"
	"repro/internal/security"
)

// options holds every relayd command-line setting. The flag layer is
// split out of main so the flag surface — names, defaults, and how
// they shape relay.Config — is testable without running the daemon.
type options struct {
	group    string
	upstream string
	catalog  string
	adverts  string
	maxHops  int
	listen   string
	channel  uint
	shards   int
	queue    int
	maxSubs  int
	maxLease time.Duration
	batch    int
	flush    time.Duration
	shardSk  bool
	auth     string
	keyFile  string
	identity uint
	mintID   uint
	shedSubs int
	shedPres int
	shedTier bool
	admitB   int

	ladder          bool
	ladderDownDrops int
	ladderDwell     time.Duration
	gso             bool

	dvr      bool
	dvrDepth time.Duration
	dvrBurst int

	report  time.Duration
	opsAddr string
	traceN  int
}

// parseFlags registers the full relayd flag surface on a fresh FlagSet
// and parses args (not including the program name).
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("relayd", flag.ContinueOnError)
	fs.StringVar(&o.group, "group", "239.72.1.1:5004", "multicast group to relay (ignored with -upstream)")
	fs.StringVar(&o.upstream, "upstream", "", "chain behind another relay: its unicast address, or 'discover' to pick one from the catalog (replaces -group)")
	fs.StringVar(&o.catalog, "catalog", "239.72.0.1:5003", "catalog group queried by -upstream discover")
	fs.StringVar(&o.adverts, "advertise", "", "catalog group to advertise this relay on (empty = off; the system default is 239.72.0.1:5003)")
	fs.IntVar(&o.maxHops, "max-hops", relay.DefaultMaxHops, "refuse subscription paths deeper than this many relays")
	fs.StringVar(&o.listen, "listen", "0.0.0.0:5006", "unicast address subscribers lease from")
	fs.UintVar(&o.channel, "channel", 0, "restrict to one channel id (0 = any)")
	fs.IntVar(&o.shards, "shards", relay.DefaultShards, "subscriber table shards")
	fs.IntVar(&o.queue, "queue", relay.DefaultQueueLen, "per-subscriber queue length (packets)")
	fs.IntVar(&o.maxSubs, "max-subscribers", relay.DefaultMaxSubscribers, "subscriber table capacity")
	fs.DurationVar(&o.maxLease, "max-lease", relay.DefaultMaxLease, "longest grantable lease")
	fs.IntVar(&o.batch, "batch", relay.DefaultBatch, "fan-out batch size in datagrams (1 = unbatched)")
	fs.DurationVar(&o.flush, "flush", relay.DefaultFlushInterval, "max age of a partial batch before it is flushed")
	fs.BoolVar(&o.shardSk, "shard-sockets", false, "per-shard ephemeral send sockets (higher throughput, but data no longer originates from -listen: breaks NATed subscribers)")
	fs.StringVar(&o.auth, "auth", "none", "control-plane auth scheme: none, hmac, or ident (per-subscriber credentials) with -key-file (§5.1; forged subscribes are dropped silently)")
	fs.StringVar(&o.keyFile, "key-file", "", "file holding the control-plane key: the shared key (-auth hmac) or the chain master key (-auth ident)")
	fs.UintVar(&o.identity, "identity", 0, "this relay's subscriber identity for its upstream lease (with -auth ident and -upstream; credentials derive from the master key)")
	fs.UintVar(&o.mintID, "mint-identity", 0, "print the hex credential for this subscriber identity (derived from -key-file's master key) and exit")
	fs.IntVar(&o.shedSubs, "shed-subscribers", 0, "shed new subscribers (SubRedirect to a catalog sibling) at this subscriber count (0 = off; needs -advertise so siblings are watched)")
	fs.IntVar(&o.shedPres, "shed-pressure", 0, "shed new subscribers at this queue-pressure score, 1-255 (0 = off; needs -advertise so siblings are watched)")
	fs.BoolVar(&o.shedTier, "shed-tier", false, "redirect subscribers the quality ladder has pushed to the bottom rung to a less-loaded catalog sibling at their next refresh (needs -ladder and -advertise)")
	fs.IntVar(&o.admitB, "admit-batch", relay.DefaultAdmitBatch, "subscribe admission batch size (1 = per-packet verification)")
	fs.BoolVar(&o.ladder, "ladder", false, "adaptive quality ladder: transcode congested subscribers down the profile tiers, recover after a clean dwell")
	fs.IntVar(&o.ladderDownDrops, "ladder-down-drops", relay.DefaultLadderDownDrops, "queue drops per sweep that push a subscriber one ladder tier down (with -ladder)")
	fs.DurationVar(&o.ladderDwell, "ladder-dwell", relay.DefaultLadderDwell, "drop-free dwell before a downgraded subscriber climbs one tier back (with -ladder)")
	fs.BoolVar(&o.gso, "gso", false, "UDP_SEGMENT segmentation offload on fan-out sockets (Linux; falls back to sendmmsg where unsupported)")
	fs.BoolVar(&o.dvr, "dvr", false, "time-shifted delivery: record relayed packets in per-channel rings and serve Subscribe shifts and pause/resume from them")
	fs.DurationVar(&o.dvrDepth, "dvr-depth", 0, "recorded history per channel ring (0 = the built-in 30s default; with -dvr)")
	fs.IntVar(&o.dvrBurst, "dvr-burst", 0, "catch-up delivery rate in packets/s per subscriber (0 = the built-in default; with -dvr)")
	fs.DurationVar(&o.report, "report", 10*time.Second, "stats table interval (0 = silent)")
	fs.StringVar(&o.opsAddr, "ops-addr", "", "ops HTTP endpoint: /metrics, /snapshot, /trace, /healthz, /debug/pprof (empty = off)")
	fs.IntVar(&o.traceN, "trace-sample", 0, "packet tracer 1-in-N sampling for the event ring (0 = default; drop counters are always exact)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

// relayConfig shapes the parsed flags into the relay.Config main hands
// to relay.New. auth, upstreamAuth, and sourceHops arrive resolved —
// key loading and catalog discovery are side effects the flag layer
// stays out of.
func (o *options) relayConfig(auth, upstreamAuth security.Authenticator, sourceHops int) relay.Config {
	cfg := relay.Config{
		Group:           lan.Addr(o.group),
		Upstream:        lan.Addr(o.upstream),
		MaxHops:         o.maxHops,
		Channel:         uint32(o.channel),
		Shards:          o.shards,
		QueueLen:        o.queue,
		MaxSubscribers:  o.maxSubs,
		MaxLease:        o.maxLease,
		Batch:           o.batch,
		FlushInterval:   o.flush,
		Auth:            auth,
		UpstreamAuth:    upstreamAuth,
		TraceSample:     o.traceN,
		ShedSubscribers: o.shedSubs,
		ShedPressure:    o.shedPres,
		ShedTier:        o.shedTier,
		AdmitBatch:      o.admitB,
		SourceHops:      sourceHops,
		Ladder:          o.ladder,
		LadderDownDrops: o.ladderDownDrops,
		LadderDwell:     o.ladderDwell,
		GSO:             o.gso,
		DVR:             o.dvr,
		DVRDepth:        o.dvrDepth,
		DVRBurst:        o.dvrBurst,
	}
	if o.upstream != "" {
		cfg.Group = "" // chained: the upstream relay is the source
	}
	return cfg
}
