package main

import (
	"testing"
	"time"

	"repro/internal/dvr"
	"repro/internal/relay"
)

// TestFlagsShapeRelayConfig parses a full DVR + ladder command line
// and checks the values land on the relay.Config fields they name.
func TestFlagsShapeRelayConfig(t *testing.T) {
	o, err := parseFlags([]string{
		"-channel", "3",
		"-ladder",
		"-ladder-down-drops", "8",
		"-ladder-dwell", "30s",
		"-dvr",
		"-dvr-depth", "2m",
		"-dvr-burst", "250",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.relayConfig(nil, nil, 0)
	if cfg.Channel != 3 {
		t.Errorf("Channel = %d, want 3", cfg.Channel)
	}
	if !cfg.Ladder || cfg.LadderDownDrops != 8 || cfg.LadderDwell != 30*time.Second {
		t.Errorf("ladder = %v/%d/%v, want on/8/30s",
			cfg.Ladder, cfg.LadderDownDrops, cfg.LadderDwell)
	}
	if !cfg.DVR || cfg.DVRDepth != 2*time.Minute || cfg.DVRBurst != 250 {
		t.Errorf("dvr = %v/%v/%d, want on/2m/250",
			cfg.DVR, cfg.DVRDepth, cfg.DVRBurst)
	}
}

// TestFlagDefaults checks the defaults that matter operationally: DVR
// and the ladder are opt-in, their tuning flags defer to the library
// defaults, and chaining clears the multicast source.
func TestFlagDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.relayConfig(nil, nil, 0)
	if cfg.DVR || cfg.Ladder {
		t.Errorf("DVR/Ladder default on: %v/%v", cfg.DVR, cfg.Ladder)
	}
	if cfg.Group != "239.72.1.1:5004" || cfg.Upstream != "" {
		t.Errorf("source defaults = group %q upstream %q", cfg.Group, cfg.Upstream)
	}
	if o.ladderDownDrops != relay.DefaultLadderDownDrops || o.ladderDwell != relay.DefaultLadderDwell {
		t.Errorf("ladder tuning defaults = %d/%v", o.ladderDownDrops, o.ladderDwell)
	}
	// -dvr-depth 0 means "library default": applyDefaults resolves it.
	if cfg.DVRDepth != 0 {
		t.Errorf("DVRDepth flag default = %v, want 0 (resolved to %v by the relay)", cfg.DVRDepth, dvr.DefaultDepth)
	}

	chained, err := parseFlags([]string{"-upstream", "192.0.2.1:5006"})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := chained.relayConfig(nil, nil, 2)
	if ccfg.Group != "" || ccfg.Upstream != "192.0.2.1:5006" || ccfg.SourceHops != 2 {
		t.Errorf("chained config = group %q upstream %q hops %d", ccfg.Group, ccfg.Upstream, ccfg.SourceHops)
	}

	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
