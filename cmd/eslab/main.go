// Command eslab regenerates the paper's figures, tables and quantified
// claims. Each experiment prints a table; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Usage:
//
//	eslab -exp all          # run everything (takes a few minutes)
//	eslab -exp fig4         # one experiment
//	eslab -list             # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
)

// experiment is one runnable entry.
type experiment struct {
	name string
	desc string
	run  func(quick bool)
}

func main() {
	expFlag := flag.String("exp", "", "experiment to run (or 'all')")
	listFlag := flag.Bool("list", false, "list experiments")
	quickFlag := flag.Bool("quick", false, "reduced workloads (for smoke tests)")
	flag.Parse()

	w := os.Stdout
	exps := []experiment{
		{"fig4", "Figure 4: compression CPU load vs. stream count", func(q bool) {
			secs := 60
			if q {
				secs = 5
			}
			experiments.Fig4(w, secs, 4, 8)
		}},
		{"fig5", "Figure 5: context-switch rate, in-kernel vs. user-level VAD", func(q bool) {
			secs := 60
			if q {
				secs = 10
			}
			experiments.Fig5(w, secs)
		}},
		{"bitrate", "E3 (§2.2): network overhead per transport", func(q bool) {
			secs := 10
			if q {
				secs = 2
			}
			experiments.E3Bitrate(w, secs)
		}},
		{"ratelimit", "E4 (§3.1): the rate limiter", func(q bool) {
			clip := 5 * time.Minute
			if q {
				clip = 20 * time.Second
			}
			experiments.E4RateLimiter(w, clip)
		}},
		{"sync", "E5 (§3.2): inter-speaker skew and epsilon sweep", func(q bool) {
			var eps []time.Duration
			if q {
				eps = []time.Duration{5 * time.Millisecond, 50 * time.Millisecond}
			}
			experiments.E5Sync(w, eps)
		}},
		{"bufsize", "E6 (§3.4): receive-buffer size vs. skipped audio", func(q bool) {
			var bufs []int
			if q {
				bufs = []int{1400, 89600}
			}
			experiments.E6BufferSize(w, bufs)
		}},
		{"join", "E7 (§2.3): control cadence vs. tune-in latency", func(q bool) {
			var ivs []time.Duration
			if q {
				ivs = []time.Duration{250 * time.Millisecond, time.Second}
			}
			experiments.E7JoinLatency(w, ivs)
		}},
		{"generations", "E8 (§2.2): multi-generation lossy coding", func(q bool) {
			gens := 5
			if q {
				gens = 3
			}
			experiments.E8Generations(w, gens)
		}},
		{"auth", "E9 (§5.1): packet authentication cost and DoS resistance", func(q bool) {
			iters := 5000
			if q {
				iters = 500
			}
			experiments.E9Auth(w, iters)
		}},
		{"loss", "E10 (§2.3): packet loss vs. audible glitches", func(q bool) {
			var rates []float64
			if q {
				rates = []float64{0, 0.02}
			}
			experiments.E10Loss(w, rates)
		}},
		{"relay", "E11: multicast-to-unicast relay fan-out and sync", func(q bool) {
			counts := []int{1, 4, 8, 16}
			if q {
				counts = []int{1, 4}
			}
			experiments.E11Relay(w, counts)
		}},
		{"batchorder", "E12: batched fan-out preserves per-subscriber order", func(q bool) {
			counts := []int{8, 64, 256}
			if q {
				counts = []int{8, 32}
			}
			experiments.E12BatchOrder(w, counts)
		}},
		{"chain", "E13: multi-hop relay chaining, discovery, and loop refusal", func(q bool) {
			hops := 3
			if q {
				hops = 2
			}
			experiments.E13Chain(w, hops)
		}},
		{"authrelay", "E14 (§5.1): authenticated relay control plane — signed chain, forged-subscribe drop", func(q bool) {
			secs := 4
			if q {
				secs = 2
			}
			experiments.E14AuthRelay(w, secs)
		}},
		{"opsplane", "E15: ops plane — live scrape coverage mid-storm, forged-subscribe drop attribution", func(q bool) {
			secs := 4
			if q {
				secs = 2
			}
			experiments.E15OpsPlane(w, secs)
		}},
		{"joinstorm", "E16: join storm — load-shed redirects steer a flash crowd of subscribes", func(q bool) {
			n := 2000
			if q {
				n = 400
			}
			experiments.E16JoinStorm(w, n)
		}},
		{"ladder", "E17: adaptive quality ladder — congestion-driven tier downgrade and recovery", func(q bool) {
			rounds := 50
			if q {
				rounds = 20
			}
			experiments.E17Ladder(w, rounds)
		}},
		{"dvr", "E18: time-shifted delivery — DVR catch-up join converging on the live stream", func(q bool) {
			behind := 10
			if q {
				behind = 5
			}
			experiments.E18DVR(w, behind)
		}},
		{"adversary", "E19 (§5.1): per-subscriber identities — forgery, replay, and steering all refused", func(q bool) {
			secs := 4
			if q {
				secs = 2
			}
			experiments.E19Adversary(w, secs)
		}},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].name < exps[j].name })

	if *listFlag {
		for _, e := range exps {
			fmt.Printf("  %-12s %s\n", e.name, e.desc)
		}
		return
	}
	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "usage: eslab -exp <name|all> [-quick]; eslab -list")
		os.Exit(2)
	}
	ran := false
	for _, e := range exps {
		if *expFlag == "all" || *expFlag == e.name {
			e.run(*quickFlag)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "eslab: unknown experiment %q (try -list)\n", *expFlag)
		os.Exit(2)
	}
}
