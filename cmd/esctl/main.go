// Command esctl is the management console (§5.3): get, set and walk the
// MIB of a running Ethernet Speaker, or broadcast settings to every
// speaker on the control group at once — including the central override
// that preempts all programmes with an announcement channel.
//
// Examples:
//
//	esctl -target 10.0.0.7:5005 walk es
//	esctl -target 10.0.0.7:5005 get es.audio.volume
//	esctl -target 10.0.0.7:5005 set es.tuner.channel 239.72.1.2:5004
//	esctl broadcast es.override.begin 239.72.1.9:5004
//	esctl broadcast es.override.end 1
//
// The ops verb talks HTTP to a daemon's -ops-addr endpoint instead of
// the MIB protocol — Prometheus metrics, the JSON snapshot, the packet
// trace ring (draining it), or liveness:
//
//	esctl -target 10.0.0.7:9090 ops metrics
//	esctl -target 10.0.0.7:9090 ops trace
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"repro/internal/lan"
	"repro/internal/mgmt"
	"repro/internal/vclock"
)

func main() {
	var (
		target = flag.String("target", "", "speaker management address (host:port)")
		local  = flag.String("local", "0.0.0.0:0", "local bind address")
	)
	flag.Parse()
	log.SetPrefix("esctl: ")
	log.SetFlags(0)
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	client, err := mgmt.NewClient(vclock.System, &lan.UDPNetwork{}, lan.Addr(*local))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	verb := args[0]
	switch verb {
	case "get":
		requireTarget(*target)
		requireArgs(args, 2)
		v, err := client.Get(lan.Addr(*target), args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(v)
	case "set":
		requireTarget(*target)
		requireArgs(args, 3)
		v, err := client.Set(lan.Addr(*target), args[1], args[2])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(v)
	case "walk":
		requireTarget(*target)
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		pairs, err := client.Walk(lan.Addr(*target), prefix)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pairs {
			fmt.Printf("%-28s %s\n", p.Name, p.Value)
		}
	case "broadcast":
		requireArgs(args, 3)
		if err := client.SetAll(mgmt.Pair{Name: args[1], Value: args[2]}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("broadcast sent (no acknowledgement by design)")
	case "ops":
		// The ops plane speaks HTTP, not the MIB protocol: -target here
		// is a daemon's -ops-addr. "trace" drains the packet trace ring.
		requireTarget(*target)
		what := "metrics"
		if len(args) > 1 {
			what = args[1]
		}
		route, ok := map[string]string{
			"metrics":  "/metrics",
			"snapshot": "/snapshot",
			"trace":    "/trace",
			"health":   "/healthz",
		}[what]
		if !ok {
			usage()
		}
		resp, err := http.Get("http://" + *target + route)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s returned %s", route, resp.Status)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  esctl -target host:port get <name>
  esctl -target host:port set <name> <value>
  esctl -target host:port walk [prefix]
  esctl -target host:port ops [metrics|snapshot|trace|health]   (target = a daemon's -ops-addr)
  esctl broadcast <name> <value>`)
	os.Exit(2)
}

func requireTarget(t string) {
	if t == "" {
		fmt.Fprintln(os.Stderr, "esctl: -target required for this verb")
		os.Exit(2)
	}
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		usage()
	}
}
