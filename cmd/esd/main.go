// Command esd is the Ethernet Speaker daemon (§2.4) for real
// deployments: it joins a channel's multicast group over UDP, waits for
// a control packet, synchronizes against the producer's wall clock, and
// plays the decoded audio by writing raw PCM to a file or stdout (pipe
// it into aplay/sox/pacat for actual sound). A management agent serves
// the §5.3 MIB so esctl can retune it, change the volume, or override it
// centrally.
//
// Example:
//
//	esd -group 239.72.1.1:5004 -mgmt 0.0.0.0:5005 | aplay -f cd
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/audiodev"
	"repro/internal/lan"
	"repro/internal/mgmt"
	"repro/internal/speaker"
	"repro/internal/vclock"
)

func main() {
	var (
		group  = flag.String("group", "239.72.1.1:5004", "channel multicast group, or a relay's unicast address")
		chanID = flag.Uint("channel", 0, "channel id to request when -group is a relay (0 = whatever it carries)")
		local  = flag.String("local", "0.0.0.0:5004", "local bind address")
		mgmtAt = flag.String("mgmt", "", "management agent bind address (empty disables)")
		name   = flag.String("name", "es", "speaker name")
		out    = flag.String("out", "-", "raw PCM output: '-' for stdout, or a file path")
		statsI = flag.Duration("stats", 10*time.Second, "stats report interval (0 disables)")
	)
	flag.Parse()
	log.SetPrefix("esd: ")
	log.SetFlags(0)

	var sink *os.File
	switch *out {
	case "-":
		sink = os.Stdout
	case "":
		sink = nil
	default:
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = f
	}

	clock := vclock.System
	net := &lan.UDPNetwork{}
	sp, err := speaker.New(clock, net, speaker.Config{
		Name:    *name,
		Local:   lan.Addr(*local),
		Group:   lan.Addr(*group),
		Channel: uint32(*chanID),
	})
	if err != nil {
		log.Fatal(err)
	}
	if sink != nil {
		sp.OnPlay(func(b audiodev.PlayedBlock) {
			sink.Write(b.Data)
		})
	}

	if *mgmtAt != "" {
		mib := mgmt.SpeakerMIB(*name, sp)
		agent, err := mgmt.NewAgent(clock, net, lan.Addr(*mgmtAt), mib)
		if err != nil {
			log.Fatal(err)
		}
		clock.Go("mgmt-agent", agent.Run)
		log.Printf("management agent on %s", agent.Addr())
		defer agent.Stop()
	}

	if *statsI > 0 {
		clock.Go("stats", func() {
			for {
				clock.Sleep(*statsI)
				st := sp.Stats()
				fmt.Fprintf(os.Stderr,
					"esd: ctl=%d data=%d played=%dB late=%d gaps=%d auth-drop=%d\n",
					st.ControlPackets, st.DataPackets, st.BytesPlayed,
					st.DroppedLate, st.GapFills, st.DroppedAuth)
			}
		})
	}

	done := make(chan struct{})
	go func() {
		sp.Run()
		close(done)
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		log.Print("interrupted, shutting down")
		sp.Stop()
		<-done
	case <-done:
	}
}
