// Command esd is the Ethernet Speaker daemon (§2.4) for real
// deployments: it joins a channel's multicast group over UDP, waits for
// a control packet, synchronizes against the producer's wall clock, and
// plays the decoded audio by writing raw PCM to a file or stdout (pipe
// it into aplay/sox/pacat for actual sound). A management agent serves
// the §5.3 MIB so esctl can retune it, change the volume, or override it
// centrally.
//
// Example:
//
//	esd -group 239.72.1.1:5004 -mgmt 0.0.0.0:5005 | aplay -f cd
//
// Beyond the multicast segment, -group may name a relay's unicast
// address instead — or the literal 'discover', which picks a relay for
// -channel from the §4.3 catalog at boot. Against an authenticated
// relay (relayd -auth hmac), pass the same -auth hmac -key-file so the
// speaker signs its subscribes and verifies the granted lease. Against
// a relay running per-subscriber credentials (relayd -auth ident),
// pass -auth ident -identity N -key-file <credential file>, where the
// credential was minted by the relay operator (relayd -mint-identity N)
// — each speaker then holds only its own key, and the relay pins the
// lease to it. The signature binds this speaker's -local address as the
// relay sees it, so -auth ident needs a routable -local bind, not a
// wildcard.
package main

import (
	"flag"
	"fmt"
	"log"
	stdnet "net"
	"os"
	"os/signal"
	"time"

	"repro/internal/audiodev"
	"repro/internal/lan"
	"repro/internal/mgmt"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/speaker"
	"repro/internal/vclock"
)

func main() {
	var (
		group    = flag.String("group", "239.72.1.1:5004", "channel multicast group, a relay's unicast address, or 'discover' to find a relay in the catalog")
		catalog  = flag.String("catalog", "239.72.0.1:5003", "catalog group queried by -group discover")
		chanID   = flag.Uint("channel", 0, "channel id to request when -group is a relay (0 = whatever it carries)")
		local    = flag.String("local", "0.0.0.0:5004", "local bind address")
		mgmtAt   = flag.String("mgmt", "", "management agent bind address (empty disables)")
		name     = flag.String("name", "es", "speaker name")
		authFlag = flag.String("auth", "none", "relay control-plane auth scheme: none, hmac, or ident (must match the relay's -auth)")
		keyFile  = flag.String("key-file", "", "file holding the shared relay key (-auth hmac) or this speaker's hex credential (-auth ident; mint with relayd -mint-identity)")
		identity = flag.Uint("identity", 0, "this speaker's subscriber identity (with -auth ident; needs a routable -local, the relay binds the signature to it)")
		out      = flag.String("out", "-", "raw PCM output: '-' for stdout, or a file path")
		statsI   = flag.Duration("stats", 10*time.Second, "stats report interval (0 disables)")
		opsAddr  = flag.String("ops-addr", "", "ops HTTP endpoint: /metrics, /snapshot, /trace, /healthz, /debug/pprof (empty = off)")
	)
	flag.Parse()
	log.SetPrefix("esd: ")
	log.SetFlags(0)

	if *authFlag == "ident" {
		// The identity signature covers the source address the relay
		// observes; a wildcard bind signs for an address the subscribe
		// never appears to come from, so every request would be dropped.
		if ip := stdnet.ParseIP(lan.Addr(*local).Host()); ip == nil || ip.IsUnspecified() {
			log.Fatalf("-auth ident needs a routable -local address, not %q: the relay verifies the signature against the source address it sees", *local)
		}
	}
	relayAuth, err := security.LoadClientAuth(*authFlag, *keyFile,
		uint32(*identity), string(lan.Addr(*local)), uint64(time.Now().UnixNano()))
	if err != nil {
		log.Fatal(err)
	}

	var sink *os.File
	switch *out {
	case "-":
		sink = os.Stdout
	case "":
		sink = nil
	default:
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink = f
	}

	clock := vclock.System
	net := &lan.UDPNetwork{}

	if *group == "discover" {
		// Find a bridge through the §4.3 catalog instead of static
		// configuration — the tune-in path for speakers that can reach
		// the catalog group but not the channel's own.
		ri, err := relay.Discover(clock, net,
			lan.Addr(stdnet.JoinHostPort(lan.Addr(*local).Host(), "0")),
			lan.Addr(*catalog), uint32(*chanID), 15*time.Second, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		*group = ri.Addr
		log.Printf("discovered relay %s (relaying %s)", ri.Addr, ri.Group)
	}

	sp, err := speaker.New(clock, net, speaker.Config{
		Name:      *name,
		Local:     lan.Addr(*local),
		Group:     lan.Addr(*group),
		Channel:   uint32(*chanID),
		RelayAuth: relayAuth,
	})
	if err != nil {
		log.Fatal(err)
	}
	if sink != nil {
		sp.OnPlay(func(b audiodev.PlayedBlock) {
			sink.Write(b.Data)
		})
	}

	if *opsAddr != "" {
		reg := obs.NewRegistry()
		sp.RegisterObs(reg)
		srv, err := obs.Serve(*opsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("ops endpoint at http://%s/metrics", srv.Addr())
	}

	if *mgmtAt != "" {
		mib := mgmt.SpeakerMIB(*name, sp)
		agent, err := mgmt.NewAgent(clock, net, lan.Addr(*mgmtAt), mib)
		if err != nil {
			log.Fatal(err)
		}
		clock.Go("mgmt-agent", agent.Run)
		log.Printf("management agent on %s", agent.Addr())
		defer agent.Stop()
	}

	if *statsI > 0 {
		clock.Go("stats", func() {
			for {
				clock.Sleep(*statsI)
				st := sp.Stats()
				fmt.Fprintf(os.Stderr,
					"esd: ctl=%d data=%d played=%dB late=%d gaps=%d auth-drop=%d\n",
					st.ControlPackets, st.DataPackets, st.BytesPlayed,
					st.DroppedLate, st.GapFills, st.DroppedAuth)
			}
		})
	}

	done := make(chan struct{})
	go func() {
		sp.Run()
		close(done)
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		log.Print("interrupted, shutting down")
		sp.Stop()
		<-done
	case <-done:
	}
}
