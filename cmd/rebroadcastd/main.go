// Command rebroadcastd is the Audio Stream Rebroadcaster daemon (§2.2)
// for real deployments: it plays the audio on standard input into a
// virtual audio device and multicasts the resulting stream onto the LAN
// over UDP.
//
// Example — rebroadcast a WAV file at CD quality:
//
//	rebroadcastd -group 239.72.1.1:5004 -wav < music.wav
//
// Example — raw PCM from any player that can write to a pipe:
//
//	mpg123 -s song.mp3 | rebroadcastd -group 239.72.1.1:5004 \
//	    -rate 44100 -channels 2
//
// Example — the same, with time-shifted delivery: an embedded DVR
// relay records the channel and serves shifted joins and pause/resume
// on a unicast lease address, beside the untouched multicast stream:
//
//	rebroadcastd -group 239.72.1.1:5004 -wav \
//	    -dvr -dvr-listen 192.0.2.5:5007 -dvr-depth 60s < music.wav
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/audio"
	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/vad"
	"repro/internal/vclock"
)

func main() {
	var (
		group    = flag.String("group", "239.72.1.1:5004", "multicast group to transmit on")
		local    = flag.String("local", "0.0.0.0:0", "local bind address")
		id       = flag.Uint("id", 1, "channel id")
		name     = flag.String("name", "channel", "channel name")
		codecN   = flag.String("codec", "", "codec (raw|ulaw|ovl); empty = automatic by bitrate")
		quality  = flag.Int("quality", 10, "ovl quality index 0..10")
		rate     = flag.Int("rate", 44100, "sample rate of stdin PCM")
		channels = flag.Int("channels", 2, "channels of stdin PCM")
		wav      = flag.Bool("wav", false, "parse stdin as a WAV file instead of raw PCM")
		opsAddr  = flag.String("ops-addr", "", "ops HTTP endpoint: /metrics, /snapshot, /healthz, /debug/pprof (empty = off)")
		dvrOn    = flag.Bool("dvr", false, "embed a time-shift (DVR) relay: it records this channel and serves shifted and pause/resume subscribers at -dvr-listen")
		dvrAddr  = flag.String("dvr-listen", "0.0.0.0:5007", "unicast address the embedded DVR relay leases subscribers from (with -dvr)")
		dvrDepth = flag.Duration("dvr-depth", 0, "recorded history in the embedded relay's ring (0 = the built-in 30s default; with -dvr)")
		dvrBurst = flag.Int("dvr-burst", 0, "catch-up delivery rate in packets/s per subscriber (0 = the built-in default; with -dvr)")
		authFlag = flag.String("auth", "none", "control-plane auth for the embedded DVR relay: none, hmac, or ident (per-subscriber credentials) with -key-file")
		keyFile  = flag.String("key-file", "", "file holding the control-plane key: the shared key (-auth hmac) or the chain master key (-auth ident); with -dvr")
	)
	flag.Parse()
	log.SetPrefix("rebroadcastd: ")
	log.SetFlags(0)

	clock := vclock.System
	net := &lan.UDPNetwork{}
	conn, err := net.Attach(lan.Addr(*local))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	reb, err := rebroadcast.New(clock, conn, rebroadcast.Config{
		ID:      uint32(*id),
		Name:    *name,
		Group:   lan.Addr(*group),
		Codec:   *codecN,
		Quality: *quality,
	})
	if err != nil {
		log.Fatal(err)
	}

	// -dvr embeds a recording relay beside the transmitter: listeners
	// on the LAN keep playing the multicast stream untouched, while
	// anyone who wants to join "from 30 seconds ago" (or pause and
	// resume) leases the backlog from -dvr-listen — time-shifted
	// delivery at the source, with no separate relayd to deploy.
	var dvrRelay *relay.Relay
	if *dvrOn {
		auth, _, err := security.LoadRelayAuth(*authFlag, *keyFile)
		if err != nil {
			log.Fatal(err)
		}
		rconn, err := net.Attach(lan.Addr(*dvrAddr))
		if err != nil {
			log.Fatal(err)
		}
		defer rconn.Close()
		dvrRelay, err = relay.New(clock, rconn, relay.Config{
			Group:    lan.Addr(*group),
			Channel:  uint32(*id),
			Auth:     auth,
			DVR:      true,
			DVRDepth: *dvrDepth,
			DVRBurst: *dvrBurst,
		})
		if err != nil {
			log.Fatal(err)
		}
		clock.Go("dvr-relay", dvrRelay.Run)
		defer dvrRelay.Stop()
		log.Printf("time-shift relay at %s", dvrRelay.Addr())
		if auth != nil {
			log.Printf("DVR control plane authenticated (%s); unsigned subscribes are dropped silently", auth.Scheme())
		}
	}

	if *opsAddr != "" {
		reg := obs.NewRegistry()
		// The rebroadcaster's stats carry no mib tags (it has no MIB);
		// StructCounters falls back to es_reb_<snake_case> names.
		reg.StructCounters("es_reb", func() any { return reb.Stats() })
		if dvrRelay != nil {
			dvrRelay.RegisterObs(reg)
		}
		reg.Info("es_reb_info", "rebroadcaster identity", func() []obs.KV {
			return []obs.KV{
				{Key: "name", Value: *name},
				{Key: "group", Value: *group},
				{Key: "channel", Value: fmt.Sprint(*id)},
			}
		})
		srv, err := obs.Serve(*opsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("ops endpoint at http://%s/metrics", srv.Addr())
	}

	v := vad.New(clock, vad.Config{})
	done := make(chan struct{})
	clock.Go("rebroadcast", func() {
		reb.Run(v.Master())
		close(done)
	})

	params := audio.Params{
		SampleRate: *rate,
		Channels:   *channels,
		Encoding:   audio.EncodingSLinear16LE,
	}
	in := bufio.NewReaderSize(os.Stdin, 1<<16)
	if *wav {
		p, samples, err := audio.ReadWAV(in)
		if err != nil {
			log.Fatalf("reading WAV: %v", err)
		}
		params = p
		if err := playBytes(v, params, audio.Encode(p, samples)); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := playStream(v, params, in); err != nil {
			log.Fatal(err)
		}
	}
	v.Close()
	<-done
	st := reb.Stats()
	fmt.Printf("sent %d control + %d data packets, %d payload bytes (source %d)\n",
		st.ControlPackets, st.DataPackets, st.PayloadBytes, st.SourceBytes)
}

// playBytes writes a complete clip into the VAD slave.
func playBytes(v *vad.VAD, p audio.Params, data []byte) error {
	slave := v.Slave()
	if err := slave.Open(p); err != nil {
		return err
	}
	defer slave.Close()
	if _, err := slave.Write(data); err != nil {
		return err
	}
	return slave.Drain()
}

// playStream copies stdin into the VAD slave until EOF.
func playStream(v *vad.VAD, p audio.Params, in io.Reader) error {
	slave := v.Slave()
	if err := slave.Open(p); err != nil {
		return err
	}
	defer slave.Close()
	buf := make([]byte, 32*1024)
	for {
		n, err := in.Read(buf)
		if n > 0 {
			if _, werr := slave.Write(buf[:n]); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			return slave.Drain()
		}
		if err != nil {
			return err
		}
	}
}
