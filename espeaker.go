// Package espeaker is the public facade of the Ethernet Speaker system,
// a reproduction of "The Ethernet Speaker System" (Turner & Prevelakis,
// FREENIX / USENIX ATC 2005): a distributed audio amplifier for a single
// Ethernet LAN.
//
// The system has three elements (paper §1):
//
//   - a Virtual Audio Device (VAD) that lets unmodified audio
//     applications play into the network instead of a sound card,
//   - the Audio Stream Rebroadcaster, which rate-limits, compresses and
//     multicasts the stream with periodic control packets, and
//   - Ethernet Speakers: receive-only devices that tune into a multicast
//     group, synchronize against the producer's wall clock, and play.
//
// Quick start (simulated time and network — deterministic, instant):
//
//	sys := espeaker.NewSimSystem(espeaker.SegmentConfig{})
//	ch, _ := sys.AddChannel(espeaker.ChannelConfig{
//	    ID: 1, Name: "demo", Group: "239.72.1.1:5004",
//	}, espeaker.VADConfig{})
//	sp, _ := sys.AddSpeaker(espeaker.SpeakerConfig{
//	    Name: "kitchen", Group: "239.72.1.1:5004",
//	})
//	sys.Clock.Go("player", func() {
//	    ch.Play(espeaker.CDQuality, espeaker.Music(44100, 2), 10*time.Second)
//	    sys.Shutdown()
//	})
//	sys.Sim.WaitIdle()
//	fmt.Println(sp.Stats())
//
// The same components run on the real clock and real UDP multicast by
// constructing the system with NewSystem(vclock.System, &lan.UDPNetwork{}).
// See the runnable programs under examples/ and cmd/.
package espeaker

import (
	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/speaker"
	"repro/internal/vad"
	"repro/internal/vclock"
)

// Re-exported configuration and component types. The aliases are the
// supported public API; the internal packages behind them may reorganize
// freely.
type (
	// System assembles channels and speakers on one LAN.
	System = core.System
	// Channel is a VAD + rebroadcaster pair.
	Channel = core.Channel
	// ChannelConfig parameterizes a rebroadcast channel.
	ChannelConfig = rebroadcast.Config
	// VADConfig parameterizes the channel's virtual audio device.
	VADConfig = vad.Config
	// SpeakerConfig parameterizes an Ethernet Speaker.
	SpeakerConfig = speaker.Config
	// Speaker is one Ethernet Speaker.
	Speaker = speaker.Speaker
	// RelayConfig parameterizes a multicast-to-unicast relay.
	RelayConfig = relay.Config
	// Relay bridges a multicast channel to leased unicast subscribers,
	// the tune-in path for speakers beyond the multicast segment.
	Relay = relay.Relay
	// SegmentConfig parameterizes the simulated Ethernet segment.
	SegmentConfig = lan.SegmentConfig
	// Params is an audio stream configuration.
	Params = audio.Params
	// Source produces PCM16 audio.
	Source = audio.Source
	// Clock abstracts time (real or simulated).
	Clock = vclock.Clock
	// Network abstracts the LAN (simulated segment or UDP multicast).
	Network = lan.Network
	// Addr is a host:port or group:port endpoint.
	Addr = lan.Addr
)

// Common audio configurations.
var (
	// CDQuality is 44.1 kHz stereo 16-bit — the paper's test workload.
	CDQuality = audio.CDQuality
	// Voice is 8 kHz µ-law mono — the uncompressed low-bitrate channel.
	Voice = audio.Voice
)

// NewSimSystem builds a system on fresh simulated time and a simulated
// Ethernet segment — deterministic and suitable for tests, experiments
// and the benchmark harness.
func NewSimSystem(cfg SegmentConfig) *System { return core.NewSim(cfg) }

// NewSystem builds a system on an arbitrary clock and network, e.g.
// NewSystem(RealClock(), UDPMulticast()) for an actual deployment.
func NewSystem(clock Clock, network Network) *System { return core.New(clock, network) }

// RealClock returns the system wall clock.
func RealClock() Clock { return vclock.System }

// UDPMulticast returns the real-network backend (UDP + IGMP joins).
func UDPMulticast() Network { return &lan.UDPNetwork{} }

// Music returns the deterministic program-like test signal used by the
// paper-reproduction experiments.
func Music(rate, channels int) Source { return audio.Music(rate, channels) }

// Tone returns a sine source.
func Tone(rate, channels int, freq, amplitude float64) Source {
	return audio.NewTone(rate, channels, freq, amplitude)
}
