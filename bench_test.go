// Benchmarks regenerating every figure and table in the paper's
// evaluation (one benchmark per experiment; see DESIGN.md for the index
// and EXPERIMENTS.md for the paper-vs-measured record), plus component
// micro-benchmarks of the substrates they run on.
//
// Custom metrics carry the experiment outcomes: e.g. BenchmarkFig5
// reports switches/interval for the three configurations, and
// BenchmarkE3 reports the raw and compressed wire rates.
package espeaker

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/experiments"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/speaker"
	"repro/internal/vad"
	"repro/internal/vclock"
)

// BenchmarkFig4CompressionCPU regenerates Figure 4: CPU load of
// compressing 4 vs 8 CD-quality streams.
func BenchmarkFig4CompressionCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4(io.Discard, 2, 4, 8)
		b.ReportMetric(res.MeanCPU[4], "cpu%/4streams")
		b.ReportMetric(res.MeanCPU[8], "cpu%/8streams")
	}
}

// BenchmarkFig5ContextSwitches regenerates Figure 5: context-switch
// rates of the three configurations.
func BenchmarkFig5ContextSwitches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(io.Discard, 20)
		b.ReportMetric(res.Mean[experiments.Fig5Unloaded], "sw/interval-unloaded")
		b.ReportMetric(res.Mean[experiments.Fig5KernelThreaded], "sw/interval-kernel")
		b.ReportMetric(res.Mean[experiments.Fig5UserLevel], "sw/interval-user")
	}
}

// BenchmarkE3NetworkOverhead regenerates the §2.2 bitrate table.
func BenchmarkE3NetworkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E3Bitrate(io.Discard, 2)
		for _, row := range res.Rows {
			switch row.Label {
			case "raw PCM":
				b.ReportMetric(row.WireMbps, "Mbps-raw")
			case "ovl q=10 (paper's setting)":
				b.ReportMetric(row.WireMbps, "Mbps-ovl10")
			}
		}
		b.ReportMetric(float64(res.MaxRawStreams), "rawstreams/10Mbps")
	}
}

// BenchmarkE4RateLimiter regenerates the §3.1 comparison.
func BenchmarkE4RateLimiter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E4RateLimiter(io.Discard, 20*time.Second)
		b.ReportMetric(res.On.SendElapsed.Seconds(), "s-send-limited")
		b.ReportMetric(res.Off.SendElapsed.Seconds(), "s-send-unlimited")
		b.ReportMetric(res.Off.PlayedFrac*100, "%played-unlimited")
	}
}

// BenchmarkE5Synchronization regenerates the §3.2 skew measurements.
func BenchmarkE5Synchronization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E5Sync(io.Discard, []time.Duration{10 * time.Millisecond})
		b.ReportMetric(res.Rows[0].MaxSkewMs, "ms-maxskew-sync")
		b.ReportMetric(res.Rows[len(res.Rows)-1].MaxSkewMs, "ms-maxskew-nosync")
	}
}

// BenchmarkE6BufferSize regenerates the §3.4 buffer-size sweep.
func BenchmarkE6BufferSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E6BufferSize(io.Discard, []int{1400, 36000})
		for _, r := range res.Rows {
			if r.CPU == "geode" && r.RecvBuffer == 36000 {
				b.ReportMetric(float64(r.Glitches+r.DroppedLate), "badevents-geode-36k")
			}
			if r.CPU == "geode" && r.RecvBuffer == 1400 {
				b.ReportMetric(float64(r.Glitches+r.DroppedLate), "badevents-geode-1400")
			}
		}
	}
}

// BenchmarkE7JoinLatency regenerates the §2.3 tune-in measurement.
func BenchmarkE7JoinLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E7JoinLatency(io.Discard,
			[]time.Duration{500 * time.Millisecond, 2 * time.Second})
		b.ReportMetric(res.Rows[0].MeanJoin.Seconds()*1000, "ms-join-500ms-ctl")
		b.ReportMetric(res.Rows[1].MeanJoin.Seconds()*1000, "ms-join-2s-ctl")
	}
}

// BenchmarkE8Generations regenerates the §2.2 generation-loss table.
func BenchmarkE8Generations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E8Generations(io.Discard, 3)
		for _, r := range res.Rows {
			if r.Quality == 10 && r.Generation == 3 {
				b.ReportMetric(r.SNR, "dB-snr-q10-gen3")
			}
		}
	}
}

// BenchmarkE9AuthCost regenerates the §5.1 authentication table.
func BenchmarkE9AuthCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E9Auth(io.Discard, 500)
		for _, r := range res.Rows {
			switch r.Scheme {
			case "hmac":
				b.ReportMetric(r.VerifyNs, "ns-verify-hmac")
			case "hors":
				b.ReportMetric(r.VerifyNs, "ns-verify-hors")
				b.ReportMetric(r.GarbageNs, "ns-reject-hors")
			}
		}
	}
}

// BenchmarkE10LossResilience regenerates the §2.3 loss sweep.
func BenchmarkE10LossResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E10Loss(io.Discard, []float64{0, 0.02})
		b.ReportMetric(float64(res.Rows[1].Glitches), "glitches-2%loss")
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkOVLEncode measures the transform encoder on CD audio — the
// per-second cost Figure 4 integrates.
func BenchmarkOVLEncode(b *testing.B) {
	p := audio.CDQuality
	enc, err := codec.NewEncoder("ovl", p, codec.MaxQuality)
	if err != nil {
		b.Fatal(err)
	}
	src := audio.Music(p.SampleRate, p.Channels)
	samples := make([]int16, p.SampleRate*p.Channels/10) // 100ms
	src.ReadSamples(samples)
	raw := audio.Encode(p, samples)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOVLDecode measures the matching decoder (the speaker side).
func BenchmarkOVLDecode(b *testing.B) {
	p := audio.CDQuality
	enc, _ := codec.NewEncoder("ovl", p, codec.MaxQuality)
	src := audio.Music(p.SampleRate, p.Channels)
	samples := make([]int16, p.SampleRate*p.Channels/10)
	src.ReadSamples(samples)
	pkt, err := enc.Encode(audio.Encode(p, samples))
	if err != nil || len(pkt) == 0 {
		b.Fatal("no packet")
	}
	dec, _ := codec.NewDecoder("ovl", p)
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtoDataMarshal measures wire encoding of a full data
// packet.
func BenchmarkProtoDataMarshal(b *testing.B) {
	d := &proto.Data{Channel: 1, Epoch: 1, Seq: 42, PlayAt: 123456789,
		Payload: make([]byte, 1400)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtoDataUnmarshal measures the speaker's parse path.
func BenchmarkProtoDataUnmarshal(b *testing.B) {
	d := &proto.Data{Channel: 1, Epoch: 1, Seq: 42, PlayAt: 123456789,
		Payload: make([]byte, 1400)}
	pkt, _ := d.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.UnmarshalData(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentMulticast measures simulated-LAN fan-out to eight
// receivers.
func BenchmarkSegmentMulticast(b *testing.B) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	src, _ := seg.Attach("10.0.0.1:5000")
	group := lan.Addr("239.1.1.1:5004")
	for i := 0; i < 8; i++ {
		c, err := seg.Attach(lan.Addr("10.0.0." + string(rune('2'+i)) + ":5004"))
		if err != nil {
			b.Fatal(err)
		}
		c.Join(group)
		sim.Go("drain", func() {
			for {
				if _, err := c.Recv(0); err != nil {
					return
				}
			}
		})
	}
	payload := make([]byte, 1400)
	b.SetBytes(1400 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(group, payload)
	}
}

// BenchmarkRelayFanout measures the relay bridge: one multicast channel
// fanned out to 100 unicast subscribers on the simulated segment, per
// simulated second of audio. The custom metrics are the fan-out
// delivery and backpressure-drop counts — the baseline future PRs
// measure against.
func BenchmarkRelayFanout(b *testing.B) {
	const subscribers = 100
	var sent, dropped int64
	for i := 0; i < b.N; i++ {
		sys := NewSimSystem(lan.SegmentConfig{})
		ch, err := sys.AddChannel(rebroadcast.Config{
			ID: 1, Name: "bench", Group: "239.72.1.1:5004", Codec: "raw",
		}, vad.Config{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := sys.AddRelay(relay.Config{Group: "239.72.1.1:5004", Channel: 1})
		if err != nil {
			b.Fatal(err)
		}
		// Raw draining subscribers: the benchmark isolates the relay's
		// fan-out path, not 100 full speaker pipelines.
		conns := make([]lan.Conn, 0, subscribers)
		for s := 0; s < subscribers; s++ {
			conn, err := sys.Net.Attach(lan.Addr(fmt.Sprintf("10.0.9.%d:5004", s+1)))
			if err != nil {
				b.Fatal(err)
			}
			sub, err := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}).Marshal()
			if err != nil {
				b.Fatal(err)
			}
			if err := conn.Send(r.Addr(), sub); err != nil {
				b.Fatal(err)
			}
			conns = append(conns, conn)
			sys.Clock.Go("drain", func() {
				for {
					if _, err := conn.Recv(0); err != nil {
						return
					}
				}
			})
		}
		p := audio.Voice
		sys.Clock.Go("player", func() {
			ch.Play(p, audio.NewTone(p.SampleRate, 1, 440, 0.5), time.Second)
			sys.Clock.Sleep(2 * time.Second)
			sys.Shutdown()
			for _, c := range conns {
				c.Close()
			}
		})
		sys.Sim.WaitIdle()
		st := r.Stats()
		sent += st.FanoutSent
		dropped += st.FanoutDropped
	}
	b.ReportMetric(float64(sent)/float64(b.N), "pkts-fanned-out")
	b.ReportMetric(float64(dropped)/float64(b.N), "pkts-dropped")
}

// BenchmarkEndToEndPipeline measures a full simulated second of system
// time: VAD -> rebroadcast -> LAN -> speaker -> DAC, per op.
func BenchmarkEndToEndPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := NewSimSystem(lan.SegmentConfig{})
		ch, err := sys.AddChannel(rebroadcast.Config{
			ID: 1, Name: "bench", Group: "239.72.1.1:5004", Codec: "raw",
		}, vad.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.AddSpeaker(speaker.Config{Name: "es", Group: "239.72.1.1:5004"}); err != nil {
			b.Fatal(err)
		}
		p := audio.Voice
		sys.Clock.Go("player", func() {
			ch.Play(p, audio.NewTone(p.SampleRate, 1, 440, 0.5), time.Second)
			sys.Clock.Sleep(2 * time.Second)
			sys.Shutdown()
		})
		sys.Sim.WaitIdle()
	}
}
