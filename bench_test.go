// Benchmarks regenerating every figure and table in the paper's
// evaluation (one benchmark per experiment; see DESIGN.md for the index
// and EXPERIMENTS.md for the paper-vs-measured record), plus component
// micro-benchmarks of the substrates they run on.
//
// Custom metrics carry the experiment outcomes: e.g. BenchmarkFig5
// reports switches/interval for the three configurations, and
// BenchmarkE3 reports the raw and compressed wire rates.
package espeaker

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/experiments"
	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/speaker"
	"repro/internal/vad"
	"repro/internal/vclock"
)

// BenchmarkFig4CompressionCPU regenerates Figure 4: CPU load of
// compressing 4 vs 8 CD-quality streams.
func BenchmarkFig4CompressionCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4(io.Discard, 2, 4, 8)
		b.ReportMetric(res.MeanCPU[4], "cpu%/4streams")
		b.ReportMetric(res.MeanCPU[8], "cpu%/8streams")
	}
}

// BenchmarkFig5ContextSwitches regenerates Figure 5: context-switch
// rates of the three configurations.
func BenchmarkFig5ContextSwitches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(io.Discard, 20)
		b.ReportMetric(res.Mean[experiments.Fig5Unloaded], "sw/interval-unloaded")
		b.ReportMetric(res.Mean[experiments.Fig5KernelThreaded], "sw/interval-kernel")
		b.ReportMetric(res.Mean[experiments.Fig5UserLevel], "sw/interval-user")
	}
}

// BenchmarkE3NetworkOverhead regenerates the §2.2 bitrate table.
func BenchmarkE3NetworkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E3Bitrate(io.Discard, 2)
		for _, row := range res.Rows {
			switch row.Label {
			case "raw PCM":
				b.ReportMetric(row.WireMbps, "Mbps-raw")
			case "ovl q=10 (paper's setting)":
				b.ReportMetric(row.WireMbps, "Mbps-ovl10")
			}
		}
		b.ReportMetric(float64(res.MaxRawStreams), "rawstreams/10Mbps")
	}
}

// BenchmarkE4RateLimiter regenerates the §3.1 comparison.
func BenchmarkE4RateLimiter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E4RateLimiter(io.Discard, 20*time.Second)
		b.ReportMetric(res.On.SendElapsed.Seconds(), "s-send-limited")
		b.ReportMetric(res.Off.SendElapsed.Seconds(), "s-send-unlimited")
		b.ReportMetric(res.Off.PlayedFrac*100, "%played-unlimited")
	}
}

// BenchmarkE5Synchronization regenerates the §3.2 skew measurements.
func BenchmarkE5Synchronization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E5Sync(io.Discard, []time.Duration{10 * time.Millisecond})
		b.ReportMetric(res.Rows[0].MaxSkewMs, "ms-maxskew-sync")
		b.ReportMetric(res.Rows[len(res.Rows)-1].MaxSkewMs, "ms-maxskew-nosync")
	}
}

// BenchmarkE6BufferSize regenerates the §3.4 buffer-size sweep.
func BenchmarkE6BufferSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E6BufferSize(io.Discard, []int{1400, 36000})
		for _, r := range res.Rows {
			if r.CPU == "geode" && r.RecvBuffer == 36000 {
				b.ReportMetric(float64(r.Glitches+r.DroppedLate), "badevents-geode-36k")
			}
			if r.CPU == "geode" && r.RecvBuffer == 1400 {
				b.ReportMetric(float64(r.Glitches+r.DroppedLate), "badevents-geode-1400")
			}
		}
	}
}

// BenchmarkE7JoinLatency regenerates the §2.3 tune-in measurement.
func BenchmarkE7JoinLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E7JoinLatency(io.Discard,
			[]time.Duration{500 * time.Millisecond, 2 * time.Second})
		b.ReportMetric(res.Rows[0].MeanJoin.Seconds()*1000, "ms-join-500ms-ctl")
		b.ReportMetric(res.Rows[1].MeanJoin.Seconds()*1000, "ms-join-2s-ctl")
	}
}

// BenchmarkE8Generations regenerates the §2.2 generation-loss table.
func BenchmarkE8Generations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E8Generations(io.Discard, 3)
		for _, r := range res.Rows {
			if r.Quality == 10 && r.Generation == 3 {
				b.ReportMetric(r.SNR, "dB-snr-q10-gen3")
			}
		}
	}
}

// BenchmarkE9AuthCost regenerates the §5.1 authentication table.
func BenchmarkE9AuthCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E9Auth(io.Discard, 500)
		for _, r := range res.Rows {
			switch r.Scheme {
			case "hmac":
				b.ReportMetric(r.VerifyNs, "ns-verify-hmac")
			case "hors":
				b.ReportMetric(r.VerifyNs, "ns-verify-hors")
				b.ReportMetric(r.GarbageNs, "ns-reject-hors")
			}
		}
	}
}

// BenchmarkE10LossResilience regenerates the §2.3 loss sweep.
func BenchmarkE10LossResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E10Loss(io.Discard, []float64{0, 0.02})
		b.ReportMetric(float64(res.Rows[1].Glitches), "glitches-2%loss")
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkOVLEncode measures the transform encoder on CD audio — the
// per-second cost Figure 4 integrates.
func BenchmarkOVLEncode(b *testing.B) {
	p := audio.CDQuality
	enc, err := codec.NewEncoder("ovl", p, codec.MaxQuality)
	if err != nil {
		b.Fatal(err)
	}
	src := audio.Music(p.SampleRate, p.Channels)
	samples := make([]int16, p.SampleRate*p.Channels/10) // 100ms
	src.ReadSamples(samples)
	raw := audio.Encode(p, samples)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOVLDecode measures the matching decoder (the speaker side).
func BenchmarkOVLDecode(b *testing.B) {
	p := audio.CDQuality
	enc, _ := codec.NewEncoder("ovl", p, codec.MaxQuality)
	src := audio.Music(p.SampleRate, p.Channels)
	samples := make([]int16, p.SampleRate*p.Channels/10)
	src.ReadSamples(samples)
	pkt, err := enc.Encode(audio.Encode(p, samples))
	if err != nil || len(pkt) == 0 {
		b.Fatal("no packet")
	}
	dec, _ := codec.NewDecoder("ovl", p)
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtoDataMarshal measures wire encoding of a full data
// packet.
func BenchmarkProtoDataMarshal(b *testing.B) {
	d := &proto.Data{Channel: 1, Epoch: 1, Seq: 42, PlayAt: 123456789,
		Payload: make([]byte, 1400)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtoDataUnmarshal measures the speaker's parse path.
func BenchmarkProtoDataUnmarshal(b *testing.B) {
	d := &proto.Data{Channel: 1, Epoch: 1, Seq: 42, PlayAt: 123456789,
		Payload: make([]byte, 1400)}
	pkt, _ := d.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.UnmarshalData(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentMulticast measures simulated-LAN fan-out to eight
// receivers.
func BenchmarkSegmentMulticast(b *testing.B) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	src, _ := seg.Attach("10.0.0.1:5000")
	group := lan.Addr("239.1.1.1:5004")
	for i := 0; i < 8; i++ {
		c, err := seg.Attach(lan.Addr("10.0.0." + string(rune('2'+i)) + ":5004"))
		if err != nil {
			b.Fatal(err)
		}
		c.Join(group)
		sim.Go("drain", func() {
			for {
				if _, err := c.Recv(0); err != nil {
					return
				}
			}
		})
	}
	payload := make([]byte, 1400)
	b.SetBytes(1400 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(group, payload)
	}
}

// BenchmarkRelayFanout measures the relay bridge fanning one multicast
// channel out to unicast subscribers on the simulated segment, as a
// table over the subscriber count and the send strategy: batch=1 is the
// per-subscriber-send baseline (PR 1's data path), batch=64 the batched
// WriteBatch path, the hops=2 row routes the stream through a chained
// relay (group -> relay -> relay -> subscribers) to price one extra
// bridge hop, and the auth=hmac row runs the §5.1-authenticated control
// plane (signed subscribes, verified and signed SubAcks) to show that
// securing lease setup leaves the steady-state fan-out untouched — the
// data path is never wrapped by the relay.
// The headline metric is ns/pkt — wall time per fanned-out packet —
// which records the scaling curve toward thousands of subscribers per
// relay; pkts-fanned-out and pkts-dropped keep the delivery and
// backpressure counts honest.
func BenchmarkRelayFanout(b *testing.B) {
	for _, subs := range []int{100, 1000, 5000} {
		for _, batch := range []int{1, 64} {
			b.Run(fmt.Sprintf("subs=%d/batch=%d", subs, batch), func(b *testing.B) {
				benchRelayFanout(b, subs, batch, 1, nil, nil)
			})
		}
	}
	// The scale row: a metro-sized flash crowd on one relay, batched.
	// Unbatched at this size would only measure the simulator, so only
	// the batch=64 point is recorded.
	b.Run("subs=50000/batch=64", func(b *testing.B) {
		benchRelayFanout(b, 50000, 64, 1, nil, nil)
	})
	b.Run("subs=1000/batch=64/hops=2", func(b *testing.B) {
		benchRelayFanout(b, 1000, 64, 2, nil, nil)
	})
	b.Run("subs=1000/batch=64/auth=hmac", func(b *testing.B) {
		benchRelayFanout(b, 1000, 64, 1, security.NewHMAC([]byte("bench control key")), nil)
	})
	// The delivery-group claim priced: subscribers spread across all
	// four codec profiles, and the encodes/pkt metric must track the
	// number of active tiers (3 here), not the subscriber count — the
	// relay encodes once per profile and every same-tier subscriber
	// shares the bytes.
	b.Run("subs=1000/batch=64/profiles=mixed", func(b *testing.B) {
		benchRelayFanout(b, 1000, 64, 1, nil, []codec.Profile{
			codec.ProfileSource, codec.ProfileULaw, codec.ProfileOVLHigh, codec.ProfileOVLLow,
		})
	})
	// GSO vs sendmmsg on the real UDP stack (the simulated segment has
	// no kernel to offload to): one delivery group of same-payload
	// datagrams written per op, plain vs UDP_SEGMENT.
	b.Run("udp/batch=64/gso=off", func(b *testing.B) { benchUDPBatch(b, false) })
	b.Run("udp/batch=64/gso=on", func(b *testing.B) { benchUDPBatch(b, true) })
}

// benchRow is one BenchmarkRelayFanout table row as recorded in the
// perf-trajectory file (BENCH_JSON env var; see scripts/bench.sh). The
// histogram percentiles come from the relay's own hot-path instruments,
// merged across iterations, so the recorded numbers price the
// instrumentation and the live ops endpoint scraped during the run.
type benchRow struct {
	Name           string  `json:"name"`
	Subscribers    int     `json:"subscribers"`
	Batch          int     `json:"batch"`
	Hops           int     `json:"hops"`
	Auth           string  `json:"auth"`
	Profiles       string  `json:"profiles,omitempty"`
	EncodesPerPkt  float64 `json:"encodes_per_pkt,omitempty"`
	NsPerPkt       float64 `json:"ns_per_pkt"`
	PktsFannedOut  float64 `json:"pkts_fanned_out"`
	PktsDropped    float64 `json:"pkts_dropped"`
	FlushP50Us     float64 `json:"flush_p50_us"`
	FlushP99Us     float64 `json:"flush_p99_us"`
	ResidencyP50Us float64 `json:"residency_p50_us"`
	ResidencyP99Us float64 `json:"residency_p99_us"`
	OpsScrapes     int64   `json:"ops_scrapes"`
}

// benchRows accumulates rows across the table's sub-benchmarks; the
// file is rewritten whole after each row so the last one to finish
// leaves the complete document. Rows from different benchmark tables
// (fan-out, join-storm) share the file, each self-describing via its
// "name" field.
var benchRows struct {
	sync.Mutex
	names []string
	rows  map[string]any
}

func recordBenchRow(b *testing.B, name string, row any) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		return
	}
	benchRows.Lock()
	defer benchRows.Unlock()
	// The harness may invoke a sub-benchmark several times (warm-up,
	// -benchtime rounds); keep only the last — largest-b.N — run's row.
	if benchRows.rows == nil {
		benchRows.rows = make(map[string]any)
	}
	if _, seen := benchRows.rows[name]; !seen {
		benchRows.names = append(benchRows.names, name)
	}
	benchRows.rows[name] = row
	ordered := make([]any, 0, len(benchRows.names))
	for _, n := range benchRows.names {
		ordered = append(ordered, benchRows.rows[n])
	}
	data, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func benchRelayFanout(b *testing.B, subscribers, batch, hops int, auth security.Authenticator, profiles []codec.Profile) {
	var sent, dropped, scrapes int64
	var encodes, upData int64
	var active time.Duration // wall time of the fan-out window only
	// Merged across iterations: the relay's own hot-path histograms.
	flushAgg := obs.NewHistogram("flush", "", nil)
	resAgg := obs.NewHistogram("residency", "", nil)
	for i := 0; i < b.N; i++ {
		sys := NewSimSystem(lan.SegmentConfig{})
		ch, err := sys.AddChannel(rebroadcast.Config{
			ID: 1, Name: "bench", Group: "239.72.1.1:5004", Codec: "raw",
		}, vad.Config{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := sys.AddRelay(relay.Config{
			Group: "239.72.1.1:5004", Channel: 1,
			Batch:          batch,
			MaxSubscribers: subscribers,
			Auth:           auth,
		})
		if err != nil {
			b.Fatal(err)
		}
		for h := 1; h < hops; h++ {
			// Chain another relay behind the previous one; subscribers
			// lease from the end of the chain.
			r, err = sys.AddRelay(relay.Config{
				Upstream: r.Addr(), Channel: 1,
				Batch:          batch,
				MaxSubscribers: subscribers,
				Auth:           auth,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		// Raw draining subscribers: the benchmark isolates the relay's
		// fan-out path, not thousands of full speaker pipelines.
		conns := make([]lan.Conn, 0, subscribers)
		for s := 0; s < subscribers; s++ {
			conn, err := sys.Net.Attach(lan.Addr(
				fmt.Sprintf("10.%d.%d.%d:5004", 9+s/65025, (s/255)%255, 1+s%255)))
			if err != nil {
				b.Fatal(err)
			}
			conns = append(conns, conn)
			sys.Clock.Go("drain", func() {
				for {
					if _, err := conn.Recv(0); err != nil {
						return
					}
				}
			})
		}
		// The ops endpoint is live and scraped throughout — the reported
		// ns/pkt prices the relay as deployed, instrumentation included.
		reg := obs.NewRegistry()
		r.RegisterObs(reg)
		srv, err := obs.Serve("127.0.0.1:0", reg)
		if err != nil {
			b.Fatal(err)
		}
		scrapeStop := make(chan struct{})
		var scrapeWG sync.WaitGroup
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-scrapeStop:
					return
				default:
				}
				resp, err := http.Get("http://" + srv.Addr() + "/metrics")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				atomic.AddInt64(&scrapes, 1)
				time.Sleep(10 * time.Millisecond)
			}
		}()
		p := audio.Voice
		if len(profiles) > 0 {
			// The profile spread needs a 16-bit source: the µ-law tier
			// transcodes linear samples only (8-bit Voice would leave it
			// in passthrough and under-count the active tiers).
			p = audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
		}
		// Subscribing happens inside a tracked task: simulated time is
		// frozen while it runs, so every lease is granted at the same
		// instant and none can expire mid-clip.
		sys.Clock.Go("driver", func() {
			// One signed body per requested profile; subscribers round-robin
			// across them (all-source when no profile spread is configured).
			reqs := [][]byte{nil}
			if len(profiles) > 0 {
				reqs = make([][]byte, len(profiles))
			}
			for i := range reqs {
				req := &proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}
				if len(profiles) > 0 {
					req.Profile = uint8(profiles[i])
				}
				sub, err := req.Marshal()
				if err != nil {
					b.Error(err)
					return
				}
				if auth != nil {
					sub = auth.Sign(sub)
				}
				reqs[i] = sub
			}
			for i, conn := range conns {
				if err := conn.Send(r.Addr(), reqs[i%len(reqs)]); err != nil {
					b.Error(err)
					return
				}
			}
			for r.NumSubscribers() < subscribers {
				sys.Clock.Sleep(10 * time.Millisecond)
			}
			// ns/pkt times only the window in which fan-out happens:
			// play through relay shutdown (workers are drained when
			// Shutdown returns), excluding the subscriber setup above.
			start := time.Now()
			ch.Play(p, audio.NewTone(p.SampleRate, 1, 440, 0.5), time.Second)
			sys.Clock.Sleep(2 * time.Second)
			sys.Shutdown()
			active += time.Since(start)
			for _, c := range conns {
				c.Close()
			}
		})
		sys.Sim.WaitIdle()
		close(scrapeStop)
		scrapeWG.Wait()
		srv.Close()
		st := r.Stats()
		if st.Subscribes != int64(subscribers) {
			b.Fatalf("only %d of %d subscribers leased", st.Subscribes, subscribers)
		}
		sent += st.FanoutSent
		dropped += st.FanoutDropped
		encodes += st.TranscodeEncodes
		upData += st.UpstreamData
		inst := r.Instruments()
		flushAgg.Merge(inst.FlushLatency)
		resAgg.Merge(inst.QueueResidency)
	}
	var nsPkt float64
	if sent > 0 {
		nsPkt = float64(active.Nanoseconds()) / float64(sent)
		b.ReportMetric(nsPkt, "ns/pkt")
	}
	b.ReportMetric(float64(sent)/float64(b.N), "pkts-fanned-out")
	b.ReportMetric(float64(dropped)/float64(b.N), "pkts-dropped")
	b.ReportMetric(float64(flushAgg.Quantile(0.99).Microseconds()), "us-flush-p99")
	b.ReportMetric(float64(resAgg.Quantile(0.99).Microseconds()), "us-residency-p99")
	// The per-profile encode claim: encodes/pkt must track the active
	// non-source tier count (3 on the mixed row), never the subscriber
	// count — same-tier subscribers share every encoded payload.
	var encPerPkt float64
	if upData > 0 {
		encPerPkt = float64(encodes) / float64(upData)
	}
	if len(profiles) > 0 {
		b.ReportMetric(encPerPkt, "encodes/pkt")
	}
	authName := "none"
	if auth != nil {
		authName = auth.Scheme().String()
	}
	var profNames []string
	for _, p := range profiles {
		profNames = append(profNames, p.String())
	}
	recordBenchRow(b, b.Name(), benchRow{
		Name:           b.Name(),
		Subscribers:    subscribers,
		Batch:          batch,
		Hops:           hops,
		Auth:           authName,
		Profiles:       strings.Join(profNames, ","),
		EncodesPerPkt:  encPerPkt,
		NsPerPkt:       nsPkt,
		PktsFannedOut:  float64(sent) / float64(b.N),
		PktsDropped:    float64(dropped) / float64(b.N),
		FlushP50Us:     float64(flushAgg.Quantile(0.50).Nanoseconds()) / 1e3,
		FlushP99Us:     float64(flushAgg.Quantile(0.99).Nanoseconds()) / 1e3,
		ResidencyP50Us: float64(resAgg.Quantile(0.50).Nanoseconds()) / 1e3,
		ResidencyP99Us: float64(resAgg.Quantile(0.99).Nanoseconds()) / 1e3,
		OpsScrapes:     scrapes,
	})
}

// gsoRow is one GSO-vs-sendmmsg micro-row in the perf-trajectory file.
type gsoRow struct {
	Name     string  `json:"name"`
	Batch    int     `json:"batch"`
	GSO      bool    `json:"gso"`
	NsPerPkt float64 `json:"ns_per_pkt"`
	MBps     float64 `json:"mb_per_sec"`
}

// benchUDPBatch prices one delivery group — 64 identical 1200-byte
// datagrams to one destination — written through the real UDP stack,
// plain sendmmsg vs UDP_SEGMENT. It runs on loopback sockets because
// the simulated segment has no kernel to offload to; on platforms (or
// kernels) without GSO support the gso=on row is skipped rather than
// silently re-measuring the fallback.
func benchUDPBatch(b *testing.B, gso bool) {
	const batch, size = 64, 1200
	net := &lan.UDPNetwork{}
	rx, err := net.Attach("127.0.0.1:0")
	if err != nil {
		b.Skipf("loopback UDP unavailable: %v", err)
	}
	defer rx.Close()
	tx, err := net.Attach("127.0.0.1:0")
	if err != nil {
		b.Skipf("loopback UDP unavailable: %v", err)
	}
	defer tx.Close()
	if gso && !lan.EnableGSO(tx) {
		b.Skip("UDP_SEGMENT not supported on this platform/kernel")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := rx.Recv(0); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, size)
	dgs := make([]lan.Datagram, batch)
	for i := range dgs {
		dgs[i] = lan.Datagram{To: rx.LocalAddr(), Data: payload}
	}
	b.SetBytes(batch * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lan.WriteBatch(tx, dgs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tx.Close()
	rx.Close()
	<-done
	nsPkt := float64(b.Elapsed().Nanoseconds()) / float64(b.N*batch)
	b.ReportMetric(nsPkt, "ns/pkt")
	recordBenchRow(b, b.Name(), gsoRow{
		Name:     b.Name(),
		Batch:    batch,
		GSO:      gso,
		NsPerPkt: nsPkt,
		MBps:     float64(b.N*batch*size) / b.Elapsed().Seconds() / 1e6,
	})
}

// BenchmarkJoinStorm measures the relay's admission path under a flash
// crowd: 2,000 signed Subscribes arrive in the same instant and the
// benchmark times the wall clock until every one holds a lease.
// admit=1 is the per-packet baseline (each Subscribe verified, acked,
// and inserted alone); admit=256 is the batched path (one
// BatchAuthenticator pass per gather, coalesced SubAck signing, one
// shard-lock acquisition per shard per pass, one WriteBatch). The
// auth=ident row reruns the batched storm with per-subscriber
// credentials — every Subscribe signed by a distinct identity,
// batch-verified under per-identity keys with the source bound in —
// to price the identity upgrade against shared-key admission. The
// headline metric is subscribes/sec; ns/subscribe records the same
// curve per admission for the trajectory file.
func BenchmarkJoinStorm(b *testing.B) {
	for _, admit := range []int{1, 256} {
		b.Run(fmt.Sprintf("subs=2000/admit=%d", admit), func(b *testing.B) {
			benchJoinStorm(b, 2000, admit, "hmac")
		})
	}
	b.Run("subs=2000/admit=256/auth=ident", func(b *testing.B) {
		benchJoinStorm(b, 2000, 256, "ident")
	})
}

// stormRow is one BenchmarkJoinStorm row in the perf-trajectory file.
type stormRow struct {
	Name         string  `json:"name"`
	Subscribers  int     `json:"subscribers"`
	AdmitBatch   int     `json:"admit_batch"`
	Auth         string  `json:"auth"`
	NsPerSub     float64 `json:"ns_per_subscribe"`
	SubsPerSec   float64 `json:"subscribes_per_sec"`
	AdmitBatches float64 `json:"admit_batches"`
}

func benchJoinStorm(b *testing.B, subscribers, admitBatch int, scheme string) {
	var auth security.Authenticator
	var ring *security.Keyring
	switch scheme {
	case "hmac":
		auth = security.NewHMAC([]byte("bench control key"))
	case "ident":
		ring = security.NewKeyring([]byte("bench master key"))
		auth = ring.Relay()
	default:
		b.Fatalf("unknown bench auth scheme %q", scheme)
	}
	var active time.Duration
	var batches int64
	for i := 0; i < b.N; i++ {
		// NIC buffers sized for the storm: every Subscribe lands on one
		// relay socket in the same simulated instant.
		sys := NewSimSystem(lan.SegmentConfig{QueueLen: 4 * subscribers})
		r, err := sys.AddRelay(relay.Config{
			Group: "239.72.1.1:5004", Channel: 1,
			MaxSubscribers: subscribers,
			Auth:           auth,
			AdmitBatch:     admitBatch,
		})
		if err != nil {
			b.Fatal(err)
		}
		conns := make([]lan.Conn, 0, subscribers)
		for s := 0; s < subscribers; s++ {
			conn, err := sys.Net.Attach(lan.Addr(
				fmt.Sprintf("10.%d.%d.%d:5004", 9+s/65025, (s/255)%255, 1+s%255)))
			if err != nil {
				b.Fatal(err)
			}
			conns = append(conns, conn)
		}
		// The requests are pre-signed outside the timed window: the
		// window below times the relay's admission work, not thousands
		// of client signings. Shared-key rows reuse one signed request;
		// the identity row needs one per source, because the tag binds
		// the subscriber's identity, sequence, and UDP source.
		reqs := make([][]byte, len(conns))
		sub, err := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}).Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if ring != nil {
			for s, conn := range conns {
				signer := security.NewIdentitySignerAt(
					ring.Credential(uint32(s+1)), uint32(s+1), string(conn.LocalAddr()), 1)
				reqs[s] = signer.Sign(sub)
			}
		} else {
			signed := auth.Sign(sub)
			for s := range reqs {
				reqs[s] = signed
			}
		}
		sys.Clock.Go("storm", func() {
			start := time.Now()
			for s, conn := range conns {
				if err := conn.Send(r.Addr(), reqs[s]); err != nil {
					b.Error(err)
					return
				}
			}
			for r.NumSubscribers() < subscribers {
				sys.Clock.Sleep(time.Millisecond)
			}
			active += time.Since(start)
			sys.Shutdown()
			for _, c := range conns {
				c.Close()
			}
		})
		sys.Sim.WaitIdle()
		st := r.Stats()
		if st.Subscribes != int64(subscribers) {
			b.Fatalf("only %d of %d subscribers admitted", st.Subscribes, subscribers)
		}
		batches += st.AdmitBatches
	}
	total := int64(subscribers) * int64(b.N)
	nsPerSub := float64(active.Nanoseconds()) / float64(total)
	b.ReportMetric(nsPerSub, "ns/subscribe")
	b.ReportMetric(float64(total)/active.Seconds(), "subscribes/sec")
	recordBenchRow(b, b.Name(), stormRow{
		Name:         b.Name(),
		Subscribers:  subscribers,
		AdmitBatch:   admitBatch,
		Auth:         auth.Scheme().String(),
		NsPerSub:     nsPerSub,
		SubsPerSec:   float64(total) / active.Seconds(),
		AdmitBatches: float64(batches) / float64(b.N),
	})
}

// BenchmarkDVRCatchup measures time-shifted delivery's replay path: a
// DVR-enabled relay records a backlog, a subscriber joins asking for
// all of it (Subscribe.ShiftMs), and the benchmark times the wall
// clock from the shifted join until the catch-up cursor converges on
// the live head. The headline metric is ns/backlog-pkt — the cost of
// ring reads, token pacing, and batch hand-off per replayed packet —
// reported at the default burst rate and effectively unpaced, so the
// pacing overhead itself is priced too.
func BenchmarkDVRCatchup(b *testing.B) {
	for _, burst := range []int{relay.DefaultDVRBurst, 50_000} {
		b.Run(fmt.Sprintf("backlog=1000/burst=%d", burst), func(b *testing.B) {
			benchDVRCatchup(b, 1000, burst)
		})
	}
	b.Run("backlog=3000/burst=50000", func(b *testing.B) {
		benchDVRCatchup(b, 3000, 50_000)
	})
}

// dvrRow is one BenchmarkDVRCatchup row in the perf-trajectory file.
type dvrRow struct {
	Name         string  `json:"name"`
	BacklogPkts  int     `json:"backlog_pkts"`
	BurstPPS     int     `json:"burst_pps"`
	NsPerPkt     float64 `json:"ns_per_backlog_pkt"`
	PktsPerSec   float64 `json:"backlog_pkts_per_sec"`
	CatchupP50Ms float64 `json:"catchup_lag_p50_ms"`
	CatchupP99Ms float64 `json:"catchup_lag_p99_ms"`
}

func benchDVRCatchup(b *testing.B, backlog, burst int) {
	var served int64
	var active time.Duration
	lagAgg := obs.NewHistogram("catchup-lag", "", nil)
	for i := 0; i < b.N; i++ {
		sys := NewSimSystem(lan.SegmentConfig{QueueLen: 4096})
		r, err := sys.AddRelay(relay.Config{
			Group: "239.72.1.1:5004", Channel: 1,
			DVR:      true,
			DVRDepth: time.Hour, // the whole backlog stays replayable
			DVRBurst: burst,
		})
		if err != nil {
			b.Fatal(err)
		}
		conn, err := sys.Net.Attach("10.9.0.1:5004")
		if err != nil {
			b.Fatal(err)
		}
		sys.Clock.Go("drain", func() {
			for {
				if _, err := conn.Recv(0); err != nil {
					return
				}
			}
		})
		prod, err := sys.Net.Attach("10.9.1.1:5000")
		if err != nil {
			b.Fatal(err)
		}
		sys.Clock.Go("driver", func() {
			// Preload: a position-coded stream at the 10 ms cadence fills
			// the ring in simulated time (free on the wall clock).
			for s := 0; s < backlog; s++ {
				if s%100 == 0 {
					data, _ := (&proto.Control{Channel: 1, Epoch: 1, Seq: uint64(s),
						Params: audio.Voice, Codec: "raw"}).Marshal()
					prod.Send("239.72.1.1:5004", data)
				}
				data, _ := (&proto.Data{Channel: 1, Epoch: 1, Seq: uint64(s + 1),
					PlayAt: int64(s+1) * 10_000_000, Payload: make([]byte, 880)}).Marshal()
				prod.Send("239.72.1.1:5004", data)
				sys.Clock.Sleep(10 * time.Millisecond)
			}
			// The timed window: shifted join through convergence.
			sub, _ := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60_000,
				ShiftMs: uint32(backlog) * 10}).Marshal()
			start := time.Now()
			if err := conn.Send(r.Addr(), sub); err != nil {
				b.Error(err)
				return
			}
			for {
				st := r.Stats()
				if st.DVRBacklog >= int64(backlog) && st.DVRCatchupActive == 0 {
					break
				}
				sys.Clock.Sleep(5 * time.Millisecond)
			}
			active += time.Since(start)
			sys.Shutdown()
			conn.Close()
			prod.Close()
		})
		sys.Sim.WaitIdle()
		st := r.Stats()
		if st.DVRClamped != 0 || st.DVREvictions != 0 {
			b.Fatalf("clamped=%d evictions=%d; the bench must replay the whole backlog",
				st.DVRClamped, st.DVREvictions)
		}
		served += st.DVRBacklog
		lagAgg.Merge(r.Instruments().CatchupLag)
	}
	nsPkt := float64(active.Nanoseconds()) / float64(served)
	b.ReportMetric(nsPkt, "ns/backlog-pkt")
	b.ReportMetric(float64(served)/active.Seconds(), "backlogpkts/sec")
	recordBenchRow(b, b.Name(), dvrRow{
		Name:         b.Name(),
		BacklogPkts:  backlog,
		BurstPPS:     burst,
		NsPerPkt:     nsPkt,
		PktsPerSec:   float64(served) / active.Seconds(),
		CatchupP50Ms: float64(lagAgg.Quantile(0.50).Nanoseconds()) / 1e6,
		CatchupP99Ms: float64(lagAgg.Quantile(0.99).Nanoseconds()) / 1e6,
	})
}

// BenchmarkEndToEndPipeline measures a full simulated second of system
// time: VAD -> rebroadcast -> LAN -> speaker -> DAC, per op.
func BenchmarkEndToEndPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := NewSimSystem(lan.SegmentConfig{})
		ch, err := sys.AddChannel(rebroadcast.Config{
			ID: 1, Name: "bench", Group: "239.72.1.1:5004", Codec: "raw",
		}, vad.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.AddSpeaker(speaker.Config{Name: "es", Group: "239.72.1.1:5004"}); err != nil {
			b.Fatal(err)
		}
		p := audio.Voice
		sys.Clock.Go("player", func() {
			ch.Play(p, audio.NewTone(p.SampleRate, 1, 440, 0.5), time.Second)
			sys.Clock.Sleep(2 * time.Second)
			sys.Shutdown()
		})
		sys.Sim.WaitIdle()
	}
}
