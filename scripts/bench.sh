#!/bin/sh
# Run the relay fan-out benchmark and record the perf trajectory as
# BENCH_6.json (one row per configuration: ns/pkt plus the relay's own
# hot-path histogram percentiles, measured with the ops endpoint live
# and being scraped — the numbers price the relay as deployed).
#
# Usage:
#   scripts/bench.sh                 # quick pass (-benchtime 1x), used by CI
#   BENCHTIME=3x scripts/bench.sh    # more iterations for steadier numbers
#   BENCH_OUT=perf.json scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."
: "${BENCHTIME:=1x}"
: "${BENCH_OUT:=BENCH_6.json}"
BENCH_JSON="$BENCH_OUT" go test -run '^$' -bench '^BenchmarkRelayFanout$' \
	-benchtime "$BENCHTIME" .
echo "wrote $BENCH_OUT:"
cat "$BENCH_OUT"
