#!/bin/sh
# Run the relay perf benchmarks and record the trajectory as
# BENCH_10.json: the fan-out table (ns/pkt plus the relay's own hot-path
# histogram percentiles, measured with the ops endpoint live and being
# scraped — the numbers price the relay as deployed), the join-storm
# admission table (subscribes/sec, batched vs per-packet verification,
# shared-key vs per-subscriber-identity), and the DVR catch-up table
# (backlog replay throughput and the catch-up-lag histogram for a
# time-shifted join).
#
# Usage:
#   scripts/bench.sh                 # quick pass (-benchtime 1x), used by CI
#   BENCHTIME=3x scripts/bench.sh    # more iterations for steadier numbers
#   BENCH_OUT=perf.json scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."
: "${BENCHTIME:=1x}"
: "${BENCH_OUT:=BENCH_10.json}"
BENCH_JSON="$BENCH_OUT" go test -run '^$' -bench '^(BenchmarkRelayFanout|BenchmarkJoinStorm|BenchmarkDVRCatchup)$' \
	-benchtime "$BENCHTIME" .
echo "wrote $BENCH_OUT:"
cat "$BENCH_OUT"
