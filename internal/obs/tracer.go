package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Path names which packet path an event was observed on.
type Path uint8

// Packet paths.
const (
	PathControl  Path = iota // subscribe / SubAck control plane
	PathFanout               // unicast fan-out to subscribers
	PathUpstream             // packets taken off the group or upstream relay
	numPaths
)

func (p Path) String() string {
	switch p {
	case PathControl:
		return "control"
	case PathFanout:
		return "fanout"
	case PathUpstream:
		return "upstream"
	}
	return "unknown"
}

// Reason attributes a dropped packet. Every drop on an instrumented
// path carries exactly one reason, so the per-reason counters always
// explain the total.
type Reason uint8

// Drop reasons.
const (
	ReasonNone          Reason = iota // not a drop (sent events)
	ReasonQueueFull                   // drop-oldest backpressure on a subscriber queue
	ReasonAuth                        // control-plane verification failure (silent drop)
	ReasonLoop                        // subscription path refused with SubLoop
	ReasonSendError                   // substrate send failure
	ReasonChannelFilter               // packet for a channel the target is not leased to
	ReasonMalformed                   // unparseable packet
	ReasonForeign                     // packet from a source the relay does not accept
	ReasonTableFull                   // subscriber table at capacity
	ReasonStale                       // control packet replaying an already-consumed sequence
	numReasons
)

func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonQueueFull:
		return "queue-full"
	case ReasonAuth:
		return "auth"
	case ReasonLoop:
		return "loop"
	case ReasonSendError:
		return "send-error"
	case ReasonChannelFilter:
		return "channel-filter"
	case ReasonMalformed:
		return "malformed"
	case ReasonForeign:
		return "foreign"
	case ReasonTableFull:
		return "table-full"
	case ReasonStale:
		return "stale"
	}
	return "unknown"
}

// TraceEvent is one ring-buffered packet-path sample.
type TraceEvent struct {
	Seq     uint64    `json:"seq"`  // monotonic per tracer
	Time    time.Time `json:"time"` // wall clock
	Path    string    `json:"path"`
	Kind    string    `json:"kind"`              // "send" or "drop"
	Reason  string    `json:"reason,omitempty"`  // drops only
	Addr    string    `json:"addr,omitempty"`    // subject address
	Channel uint32    `json:"channel,omitempty"` // 0 = unknown/any
	Batch   int       `json:"batch,omitempty"`   // batch size for batched sends
}

// DropCount is one nonzero (path, reason) drop counter.
type DropCount struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
	Count  int64  `json:"count"`
}

// TraceSnapshot is what draining a tracer returns: the sampled event
// ring (oldest first) plus the exact per-reason drop counters.
type TraceSnapshot struct {
	SampleN     int          `json:"sample_1_in_n"`
	Recorded    uint64       `json:"recorded_total"`    // events ever written to the ring
	Overwritten uint64       `json:"overwritten_total"` // ring slots lost to wrap before a drain
	Events      []TraceEvent `json:"events"`
	Drops       []DropCount  `json:"drops"`
}

// Tracer samples packet-path events into a bounded ring and counts
// every drop by (path, reason) exactly. The split keeps the hot path
// honest and cheap: the counters are one atomic add per drop — so the
// attribution is never sampled away — while ring insertion (a mutex
// and a copy) happens only for 1-in-N events. The ring is drained via
// the ops endpoint (/trace) or Drain; draining clears the ring but
// never the counters.
type Tracer struct {
	sampleN  uint64
	arrivals atomic.Uint64
	seq      atomic.Uint64
	drops    [numPaths][numReasons]atomic.Int64

	mu          sync.Mutex
	ring        []TraceEvent
	next        int // slot the next event lands in once the ring is full
	written     uint64
	overwritten uint64
}

// DefaultTraceRing is the event ring capacity when none is given.
const DefaultTraceRing = 256

// DefaultTraceSample is the 1-in-N sampling rate when none is given.
const DefaultTraceSample = 64

// NewTracer creates a tracer recording 1 in sampleN events into a ring
// of ringLen entries. Zero or negative arguments take the defaults;
// sampleN 1 records everything (experiments and tests).
func NewTracer(sampleN, ringLen int) *Tracer {
	if sampleN <= 0 {
		sampleN = DefaultTraceSample
	}
	if ringLen <= 0 {
		ringLen = DefaultTraceRing
	}
	return &Tracer{sampleN: uint64(sampleN), ring: make([]TraceEvent, 0, ringLen)}
}

// SampleN returns the 1-in-N sampling rate.
func (t *Tracer) SampleN() int { return int(t.sampleN) }

// sampled reports whether this arrival is one of the 1-in-N.
func (t *Tracer) sampled() bool {
	return t.arrivals.Add(1)%t.sampleN == 0
}

// Send records a sampled successful send: one datagram, or one batch
// of batch datagrams flushed together (addr is then the batch's first
// destination).
func (t *Tracer) Send(p Path, addr string, ch uint32, batch int) {
	if !t.sampled() {
		return
	}
	t.record(TraceEvent{Path: p.String(), Kind: "send", Addr: addr, Channel: ch, Batch: batch})
}

// Drop attributes one dropped packet. The (path, reason) counter is
// always incremented — every drop stays accounted — and the event ring
// gets a sampled entry.
func (t *Tracer) Drop(p Path, r Reason, addr string, ch uint32) {
	t.drops[p][r].Add(1)
	if !t.sampled() {
		return
	}
	t.record(TraceEvent{Path: p.String(), Kind: "drop", Reason: r.String(), Addr: addr, Channel: ch})
}

// record inserts one event into the ring, overwriting the oldest entry
// once full.
func (t *Tracer) record(ev TraceEvent) {
	ev.Seq = t.seq.Add(1)
	ev.Time = time.Now()
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
		t.next = (t.next + 1) % len(t.ring)
		t.overwritten++
	}
	t.written++
	t.mu.Unlock()
}

// DropCount returns one exact (path, reason) drop counter.
func (t *Tracer) DropCount(p Path, r Reason) int64 {
	return t.drops[p][r].Load()
}

// Drops returns every nonzero drop counter, path-major.
func (t *Tracer) Drops() []DropCount {
	var out []DropCount
	for p := Path(0); p < numPaths; p++ {
		for r := Reason(0); r < numReasons; r++ {
			if n := t.drops[p][r].Load(); n > 0 {
				out = append(out, DropCount{Path: p.String(), Reason: r.String(), Count: n})
			}
		}
	}
	return out
}

// Drain returns the sampled events (oldest first) with the drop
// counters, then clears the ring. Counters are cumulative and survive
// the drain; Overwritten reports ring entries lost to wrap since the
// previous drain.
func (t *Tracer) Drain() TraceSnapshot {
	t.mu.Lock()
	events := make([]TraceEvent, 0, len(t.ring))
	if t.next > 0 {
		events = append(events, t.ring[t.next:]...)
		events = append(events, t.ring[:t.next]...)
	} else {
		events = append(events, t.ring...)
	}
	snap := TraceSnapshot{
		SampleN:     int(t.sampleN),
		Recorded:    t.written,
		Overwritten: t.overwritten,
		Events:      events,
	}
	t.ring = t.ring[:0]
	t.next = 0
	t.overwritten = 0
	t.mu.Unlock()
	snap.Drops = t.Drops()
	return snap
}
