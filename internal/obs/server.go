package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the ops HTTP surface for a registry:
//
//	/metrics      Prometheus text exposition
//	/healthz      liveness: {"status":"ok","uptime_seconds":...}
//	/snapshot     every metric as one JSON document
//	/trace        drain the packet tracers (clears the event rings)
//	/debug/pprof  the standard Go profiling endpoints
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status":         "ok",
			"uptime_seconds": g.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.Traces())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Server is one live ops endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// registry's Handler on it until Close. It returns as soon as the
// listener is bound, so Addr is immediately routable — daemons log it
// and experiments scrape it.
func Serve(addr string, g *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down, closing in-flight connections.
func (s *Server) Close() error { return s.srv.Close() }
