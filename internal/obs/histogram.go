package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds is the bucket layout shared by every hot-path
// histogram: roughly logarithmic from 1µs to 5s, which spans everything
// from a sendmmsg flush (tens of µs) to a lease margin (seconds) with
// one scale, so any two histograms can be compared bucket for bucket
// and merged (see Merge).
var DefaultLatencyBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
}

// Histogram is a fixed-bucket latency histogram built for hot paths:
// Observe is lock-free (three atomic adds) and allocation-free, so it
// can sit inside a fan-out loop without perturbing what it measures.
// Bucket semantics follow Prometheus: bucket i counts observations
// d <= bounds[i] (and above the previous bound); the last bucket is
// +Inf.
//
// Histograms record wall-clock time even in simulated-clock systems:
// they instrument the process — how long a flush syscall really took,
// how long a packet really sat in a queue — not the simulation's
// modelled time. Snapshots taken concurrently with observations may be
// momentarily inconsistent (count ahead of a bucket) by a handful of
// events; monitoring reads tolerate that, and a quiesced read is exact.
type Histogram struct {
	name   string
	help   string
	bounds []time.Duration
	// buckets[i] counts observations in (bounds[i-1], bounds[i]];
	// buckets[len(bounds)] is +Inf.
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// NewHistogram creates a histogram named name (a Prometheus metric
// name, conventionally ending in _seconds). A nil bounds uses
// DefaultLatencyBounds. Bounds must be sorted ascending.
func NewHistogram(name, help string, bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		name:    name,
		help:    help,
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Help returns the metric help line.
func (h *Histogram) Help() string { return h.help }

// Observe records one duration. Negative durations (a late lease
// refresh, a clock step) land in the first bucket. The linear bound
// scan exits early — typical hot-path latencies sit in the first third
// of the default scale — and never allocates.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for ; i < len(h.bounds); i++ {
		if d <= h.bounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is one consistent-enough read of a histogram.
type HistogramSnapshot struct {
	Bounds  []time.Duration `json:"-"`
	Buckets []int64         `json:"buckets"` // per-bucket (not cumulative); last is +Inf
	Count   int64           `json:"count"`
	Sum     time.Duration   `json:"sum"`
}

// Snapshot reads the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sum.Load()),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Merge folds other's counts into h. Both histograms must share the
// same bucket layout (the benchmarks merge per-iteration relay
// histograms into one aggregate this way).
func (h *Histogram) Merge(other *Histogram) {
	if len(other.buckets) != len(h.buckets) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket that crosses the target rank —
// standard fixed-bucket estimation, exact to within one bucket's
// width. It returns 0 when the histogram is empty; ranks landing in
// the +Inf bucket return the largest finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Quantile estimates a quantile from a snapshot (see
// Histogram.Quantile).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: the largest finite bound is the best bound
			// we can report.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		// Position of the target rank inside this bucket.
		frac := (rank - (cum - float64(c))) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}
