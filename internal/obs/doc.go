// Package obs is the ops plane: it bridges every counter source in a
// daemon — relay stats, speaker stats, the mgmt MIB's numeric surface,
// batch-writer flush counters, lease accounting — into one Registry
// served over a per-daemon HTTP endpoint (relayd/esd/rebroadcastd
// -ops-addr) as Prometheus text exposition (/metrics), a JSON snapshot
// (/snapshot), drainable packet traces (/trace), liveness (/healthz),
// and the standard Go profiling routes (/debug/pprof).
//
// Two primitives keep the hot paths honest:
//
//   - Histogram: fixed-bucket, lock-free, allocation-free on the
//     record path (three atomic adds), so fan-out inner loops can be
//     timed without perturbing what they measure. The four hot-path
//     histograms are batch flush latency, per-subscriber queue
//     residency, Subscribe→SubAck control RTT, and lease refresh
//     margin. Histograms record wall-clock time even under a simulated
//     clock: they instrument the process, not the simulation.
//
//   - Tracer: sampled (1-in-N) packet-path events in a bounded ring,
//     plus exact per-(path, reason) drop counters that are never
//     sampled away — every drop is attributed to queue-full, auth,
//     loop, send-error, channel-filter, malformed, foreign, or
//     table-full. The ring drains through /trace.
//
// Registration is mechanical where it can be: StructCounters reflects
// over a stats struct's int64 fields (named by their `mib` tags, the
// same tags mgmt.StatsVars registers in the MIB), so adding a counter
// to relay.Stats or speaker.Stats exports it everywhere at once — the
// coverage test in internal/mgmt enforces it.
//
// See docs/OBSERVABILITY.md for the endpoint and metric catalog.
package obs
