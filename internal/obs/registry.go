package obs

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// KV is one (key, value) pair for info metrics and MIB-style sources.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// LV is one labeled integer sample (a per-shard counter, say).
type LV struct {
	Label string `json:"label"`
	Value int64  `json:"value"`
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindLabeledCounter
	kindLabeledGauge
	kindHistogram
	kindInfo
)

// entry is one registered metric.
type entry struct {
	kind  metricKind
	name  string
	help  string
	label string // labeled kinds: the label key
	intFn func() int64
	lvFn  func() []LV
	kvFn  func() []KV
	hist  *Histogram
}

// Registry is the export surface of one daemon: every counter source —
// stats structs, gauges, histograms, tracers — registers here once,
// and the registry renders them all as Prometheus text exposition
// (WritePrometheus, the /metrics route), as a JSON snapshot
// (/snapshot), and as drainable packet traces (/trace). Registration
// order is preserved in the exposition; duplicate names panic, like
// the MIB, because registration is programmer-controlled wiring.
type Registry struct {
	start time.Time

	mu      sync.Mutex
	names   map[string]bool
	ents    []entry
	tracers []struct {
		name string
		t    *Tracer
	}
	jsonVars []struct {
		name string
		fn   func() any
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), names: map[string]bool{}}
}

// register adds one entry, enforcing name uniqueness.
func (g *Registry) register(e entry) {
	if e.name == "" {
		panic("obs: metric needs a name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.names[e.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", e.name))
	}
	g.names[e.name] = true
	g.ents = append(g.ents, e)
}

// Counter registers a cumulative integer metric. name should end in
// _total by Prometheus convention.
func (g *Registry) Counter(name, help string, fn func() int64) {
	g.register(entry{kind: kindCounter, name: name, help: help, intFn: fn})
}

// Gauge registers a current-value integer metric.
func (g *Registry) Gauge(name, help string, fn func() int64) {
	g.register(entry{kind: kindGauge, name: name, help: help, intFn: fn})
}

// LabeledCounter registers a counter family keyed by one label (e.g.
// per-shard drop counts, label "shard").
func (g *Registry) LabeledCounter(name, help, label string, fn func() []LV) {
	g.register(entry{kind: kindLabeledCounter, name: name, help: help, label: label, lvFn: fn})
}

// LabeledGauge registers a gauge family keyed by one label.
func (g *Registry) LabeledGauge(name, help, label string, fn func() []LV) {
	g.register(entry{kind: kindLabeledGauge, name: name, help: help, label: label, lvFn: fn})
}

// Histogram registers a histogram (its name and help come from the
// histogram itself).
func (g *Registry) Histogram(h *Histogram) {
	g.register(entry{kind: kindHistogram, name: h.Name(), help: h.Help(), hist: h})
}

// Info registers an identity metric: a constant-1 gauge whose labels
// carry non-numeric facts (addresses, names, versions), the
// Prometheus idiom for exporting strings.
func (g *Registry) Info(name, help string, fn func() []KV) {
	g.register(entry{kind: kindInfo, name: name, help: help, kvFn: fn})
}

// Tracer registers a packet tracer: its exact drop counters export as
// <name>_drops_total{path,reason}, and its event ring is drained
// through the /trace route and Traces.
func (g *Registry) Tracer(name string, t *Tracer) {
	g.Counter(name+"_trace_recorded_total",
		"packet-path events sampled into the trace ring (1 in "+strconv.Itoa(t.SampleN())+")",
		func() int64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return int64(t.written)
		})
	// Drop counters render with two labels, which the generic labeled
	// entry does not model; flatten (path, reason) into one label value.
	g.register(entry{
		kind: kindLabeledCounter, name: name + "_drops_total",
		help:  "dropped packets by path/reason (exact counts, never sampled)",
		label: "cause",
		lvFn: func() []LV {
			drops := t.Drops()
			out := make([]LV, len(drops))
			for i, d := range drops {
				out[i] = LV{Label: d.Path + "/" + d.Reason, Value: d.Count}
			}
			return out
		},
	})
	g.mu.Lock()
	g.tracers = append(g.tracers, struct {
		name string
		t    *Tracer
	}{name, t})
	g.mu.Unlock()
}

// JSONVar registers a value exported only on the JSON snapshot route —
// structured detail (a per-subscriber table, say) whose cardinality
// does not belong in the metric exposition.
func (g *Registry) JSONVar(name string, fn func() any) {
	g.mu.Lock()
	g.jsonVars = append(g.jsonVars, struct {
		name string
		fn   func() any
	}{name, fn})
	g.mu.Unlock()
}

// StructCounters registers one counter per exported int64 field of the
// struct returned by snap — the mechanical bridge that makes it
// impossible for a new Stats field to silently go unexported. The
// metric name comes from the field's `mib` tag (dots become
// underscores, _total appended); a field without a tag falls back to
// prefix_<snake_case_field>_total. Help text comes from the `help`
// tag, defaulting to the field name.
func (g *Registry) StructCounters(prefix string, snap func() any) {
	t := reflect.TypeOf(snap())
	if t.Kind() != reflect.Struct {
		panic("obs: StructCounters needs a struct snapshot")
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Int64 {
			continue
		}
		name := CounterName(prefix, f)
		help := f.Tag.Get("help")
		if help == "" {
			help = f.Name
		}
		idx := i
		g.Counter(name, help, func() int64 {
			return reflect.ValueOf(snap()).Field(idx).Int()
		})
	}
}

// CounterName derives the Prometheus counter name StructCounters uses
// for one struct field (exported so coverage tests and experiments can
// predict the full metric set from the Stats type alone).
func CounterName(prefix string, f reflect.StructField) string {
	if tag := f.Tag.Get("mib"); tag != "" {
		return PromName(tag) + "_total"
	}
	return prefix + "_" + snakeCase(f.Name) + "_total"
}

// PromName turns a dotted MIB-style name into a Prometheus metric
// name: dots and dashes become underscores, anything else non-word is
// dropped.
func PromName(dotted string) string {
	var b strings.Builder
	b.Grow(len(dotted))
	for _, r := range dotted {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '.', r == '-':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// snakeCase converts CamelCase to snake_case.
func snakeCase(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Names returns every registered metric name, sorted.
func (g *Registry) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.ents))
	for _, e := range g.ents {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}

// entries snapshots the entry list so exposition runs without the
// registry lock held across metric getters (which take their owners'
// locks).
func (g *Registry) entries() []entry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]entry(nil), g.ents...)
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), in registration order.
func (g *Registry) WritePrometheus(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, e := range g.entries() {
		switch e.kind {
		case kindCounter, kindGauge:
			typ := "counter"
			if e.kind == kindGauge {
				typ = "gauge"
			}
			pf("# HELP %s %s\n# TYPE %s %s\n%s %d\n", e.name, e.help, e.name, typ, e.name, e.intFn())
		case kindLabeledCounter, kindLabeledGauge:
			typ := "counter"
			if e.kind == kindLabeledGauge {
				typ = "gauge"
			}
			pf("# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, typ)
			for _, lv := range e.lvFn() {
				pf("%s{%s=%q} %d\n", e.name, e.label, escapeLabel(lv.Label), lv.Value)
			}
		case kindHistogram:
			s := e.hist.Snapshot()
			pf("# HELP %s %s\n# TYPE %s histogram\n", e.name, e.help, e.name)
			var cum int64
			for i, c := range s.Buckets {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = strconv.FormatFloat(s.Bounds[i].Seconds(), 'g', -1, 64)
				}
				pf("%s_bucket{le=%q} %d\n", e.name, le, cum)
			}
			pf("%s_sum %g\n%s_count %d\n", e.name, s.Sum.Seconds(), e.name, s.Count)
		case kindInfo:
			pf("# HELP %s %s\n# TYPE %s gauge\n%s{", e.name, e.help, e.name, e.name)
			for i, kv := range e.kvFn() {
				if i > 0 {
					pf(",")
				}
				pf("%s=%q", PromName(kv.Key), escapeLabel(kv.Value))
			}
			pf("} 1\n")
		}
	}
	return err
}

// Snapshot renders every metric as a JSON-encodable map: numbers for
// counters and gauges, {label: value} maps for families, quantile
// summaries for histograms, and the JSONVar details verbatim.
func (g *Registry) Snapshot() map[string]any {
	out := map[string]any{
		"uptime_seconds": time.Since(g.start).Seconds(),
	}
	for _, e := range g.entries() {
		switch e.kind {
		case kindCounter, kindGauge:
			out[e.name] = e.intFn()
		case kindLabeledCounter, kindLabeledGauge:
			m := map[string]int64{}
			for _, lv := range e.lvFn() {
				m[lv.Label] = lv.Value
			}
			out[e.name] = m
		case kindHistogram:
			s := e.hist.Snapshot()
			out[e.name] = map[string]any{
				"count":       s.Count,
				"sum_seconds": s.Sum.Seconds(),
				"p50_seconds": s.Quantile(0.50).Seconds(),
				"p90_seconds": s.Quantile(0.90).Seconds(),
				"p99_seconds": s.Quantile(0.99).Seconds(),
			}
		case kindInfo:
			m := map[string]string{}
			for _, kv := range e.kvFn() {
				m[kv.Key] = kv.Value
			}
			out[e.name] = m
		}
	}
	g.mu.Lock()
	jsonVars := append([]struct {
		name string
		fn   func() any
	}(nil), g.jsonVars...)
	g.mu.Unlock()
	for _, jv := range jsonVars {
		out[jv.name] = jv.fn()
	}
	return out
}

// Traces drains every registered tracer, keyed by tracer name.
func (g *Registry) Traces() map[string]TraceSnapshot {
	g.mu.Lock()
	tracers := append([]struct {
		name string
		t    *Tracer
	}(nil), g.tracers...)
	g.mu.Unlock()
	out := make(map[string]TraceSnapshot, len(tracers))
	for _, tr := range tracers {
		out[tr.name] = tr.t.Drain()
	}
	return out
}

// Uptime reports how long ago the registry was created (process boot,
// in practice).
func (g *Registry) Uptime() time.Duration { return time.Since(g.start) }
