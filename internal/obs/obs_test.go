package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []time.Duration{time.Microsecond, time.Millisecond, time.Second}
	h := NewHistogram("x_seconds", "x", bounds)

	// Prometheus le semantics: an observation exactly at a bound lands
	// in that bound's bucket, one nanosecond above lands in the next.
	h.Observe(time.Microsecond)     // bucket 0
	h.Observe(time.Microsecond + 1) // bucket 1
	h.Observe(time.Millisecond)     // bucket 1
	h.Observe(time.Millisecond + 1) // bucket 2
	h.Observe(time.Second)          // bucket 2
	h.Observe(time.Second + 1)      // +Inf bucket
	h.Observe(0)                    // bucket 0
	h.Observe(-5 * time.Second)     // negative clamps into bucket 0

	s := h.Snapshot()
	want := []int64{3, 2, 2, 1}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	// Sum: the negative observation contributes 0.
	wantSum := time.Microsecond + (time.Microsecond + 1) + time.Millisecond +
		(time.Millisecond + 1) + time.Second + (time.Second + 1)
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("q_seconds", "q", nil)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 observations at ~3µs: p50 and p99 both interpolate inside
	// the (2µs, 5µs] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.99} {
		got := h.Quantile(q)
		if got <= 2*time.Microsecond || got > 5*time.Microsecond {
			t.Fatalf("q%.2f = %v, want in (2µs, 5µs]", q, got)
		}
	}
	// Push 10 large outliers past the largest bound: p99 moves to the
	// top of the scale, reported as the largest finite bound.
	for i := 0; i < 10; i++ {
		h.Observe(time.Hour)
	}
	top := DefaultLatencyBounds[len(DefaultLatencyBounds)-1]
	if got := h.Quantile(0.999); got != top {
		t.Fatalf("q0.999 = %v, want %v (largest finite bound)", got, top)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("a_seconds", "a", nil)
	b := NewHistogram("b_seconds", "b", nil)
	a.Observe(time.Millisecond)
	b.Observe(time.Millisecond)
	b.Observe(time.Second)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	s := a.Snapshot()
	if s.Sum != 2*time.Millisecond+time.Second {
		t.Fatalf("merged sum = %v", s.Sum)
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(1, 4) // record everything, tiny ring
	for i := 0; i < 10; i++ {
		tr.Drop(PathFanout, ReasonQueueFull, "10.0.0.1:5004", 1)
	}
	snap := tr.Drain()
	if len(snap.Events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(snap.Events))
	}
	// Oldest-first, and the survivors are the newest four (seq 7..10).
	for i, ev := range snap.Events {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if snap.Overwritten != 6 {
		t.Fatalf("overwritten = %d, want 6", snap.Overwritten)
	}
	if snap.Recorded != 10 {
		t.Fatalf("recorded = %d, want 10", snap.Recorded)
	}
	// Exact counters survive sampling and draining.
	if got := tr.DropCount(PathFanout, ReasonQueueFull); got != 10 {
		t.Fatalf("drop count = %d, want 10", got)
	}
	// The drain cleared the ring but not the counters.
	again := tr.Drain()
	if len(again.Events) != 0 || again.Overwritten != 0 {
		t.Fatalf("second drain not empty: %+v", again)
	}
	if len(again.Drops) != 1 || again.Drops[0].Count != 10 {
		t.Fatalf("drop counters lost across drain: %+v", again.Drops)
	}
}

func TestTracerSamplingKeepsCountersExact(t *testing.T) {
	tr := NewTracer(64, 8)
	for i := 0; i < 1000; i++ {
		tr.Drop(PathControl, ReasonAuth, "10.0.66.6:5004", 0)
	}
	if got := tr.DropCount(PathControl, ReasonAuth); got != 1000 {
		t.Fatalf("sampled tracer lost drops: %d of 1000", got)
	}
	snap := tr.Drain()
	// 1000/64 ≈ 15 sampled events, ring keeps the last 8.
	if len(snap.Events) != 8 {
		t.Fatalf("ring events = %d, want 8", len(snap.Events))
	}
	if snap.Events[0].Reason != "auth" || snap.Events[0].Path != "control" {
		t.Fatalf("bad event attribution: %+v", snap.Events[0])
	}
}

type fakeStats struct {
	Tagged   int64 `mib:"es.test.tagged" help:"a tagged counter"`
	FreeForm int64
	Skipped  float64 // not int64: ignored
}

func TestStructCountersAndExposition(t *testing.T) {
	st := fakeStats{Tagged: 7, FreeForm: 9}
	g := NewRegistry()
	g.StructCounters("es_test", func() any { return st })
	g.Gauge("es_test_gauge", "a gauge", func() int64 { return 3 })
	g.LabeledCounter("es_test_shard_total", "per shard", "shard", func() []LV {
		return []LV{{Label: "0", Value: 1}, {Label: "1", Value: 2}}
	})
	g.Info("es_test_info", "identity", func() []KV {
		return []KV{{Key: "addr", Value: `10.0.0.1:5006`}}
	})
	h := NewHistogram("es_test_latency_seconds", "latency", []time.Duration{time.Millisecond})
	h.Observe(time.Microsecond)
	g.Histogram(h)

	var b strings.Builder
	if err := g.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"es_test_tagged_total 7",    // mib tag drives the name
		"es_test_free_form_total 9", // fallback snake_case
		"# TYPE es_test_gauge gauge",
		"es_test_gauge 3",
		`es_test_shard_total{shard="0"} 1`,
		`es_test_shard_total{shard="1"} 2`,
		`es_test_info{addr="10.0.0.1:5006"} 1`,
		`es_test_latency_seconds_bucket{le="0.001"} 1`,
		`es_test_latency_seconds_bucket{le="+Inf"} 1`,
		"es_test_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "skipped") {
		t.Fatal("non-int64 field exported")
	}

	snap := g.Snapshot()
	if snap["es_test_tagged_total"] != int64(7) {
		t.Fatalf("snapshot tagged = %v", snap["es_test_tagged_total"])
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	g := NewRegistry()
	g.Counter("dup_total", "", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	g.Counter("dup_total", "", func() int64 { return 0 })
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"es.relay.auth.dropped": "es_relay_auth_dropped",
		"es.stats.relayStale":   "es_stats_relayStale",
		"weird name!":           "weirdname",
	} {
		if got := PromName(in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerRoutes(t *testing.T) {
	g := NewRegistry()
	g.Counter("route_test_total", "", func() int64 { return 42 })
	tr := NewTracer(1, 8)
	tr.Drop(PathControl, ReasonAuth, "10.0.66.6:5004", 0)
	g.Tracer("route_test", tr)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "route_test_total 42") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/snapshot"); code != 200 || !strings.Contains(body, "route_test_total") {
		t.Fatalf("/snapshot: %d %q", code, body)
	}
	code, body := get("/trace")
	if code != 200 {
		t.Fatalf("/trace: %d", code)
	}
	var traces map[string]TraceSnapshot
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if len(traces["route_test"].Events) != 1 || traces["route_test"].Events[0].Reason != "auth" {
		t.Fatalf("/trace missing auth drop: %+v", traces)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestServeAndClose(t *testing.T) {
	g := NewRegistry()
	g.Counter("serve_test_total", "", func() int64 { return 1 })
	s, err := Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}
