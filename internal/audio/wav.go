package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// WAV (RIFF) read/write for the time-shifting example and for inspecting
// experiment output. Only uncompressed PCM (format 1) is supported; the
// writer always emits 16-bit PCM.

var errNotWAV = errors.New("audio: not a RIFF/WAVE file")

// WriteWAV writes samples as a 16-bit PCM WAV file.
func WriteWAV(w io.Writer, p Params, samples []int16) error {
	if err := p.Validate(); err != nil {
		return err
	}
	dataLen := len(samples) * 2
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(36+dataLen))
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)
	binary.LittleEndian.PutUint16(hdr[20:22], 1) // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], uint16(p.Channels))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(p.SampleRate))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(p.SampleRate*p.Channels*2))
	binary.LittleEndian.PutUint16(hdr[32:34], uint16(p.Channels*2))
	binary.LittleEndian.PutUint16(hdr[34:36], 16)
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], uint32(dataLen))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, dataLen)
	for i, s := range samples {
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(s))
	}
	_, err := w.Write(buf)
	return err
}

// ReadWAV parses a PCM WAV file and returns its parameters and samples.
// 8-bit files decode as unsigned linear, 16-bit as signed little-endian.
func ReadWAV(r io.Reader) (Params, []int16, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Params{}, nil, fmt.Errorf("audio: reading RIFF header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return Params{}, nil, errNotWAV
	}
	var p Params
	var bits uint16
	haveFmt := false
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Params{}, nil, errors.New("audio: WAV missing data chunk")
			}
			return Params{}, nil, err
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		switch id {
		case "fmt ":
			if size < 16 {
				return Params{}, nil, errors.New("audio: short fmt chunk")
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return Params{}, nil, err
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			if format != 1 {
				return Params{}, nil, fmt.Errorf("audio: unsupported WAV format %d", format)
			}
			p.Channels = int(binary.LittleEndian.Uint16(body[2:4]))
			p.SampleRate = int(binary.LittleEndian.Uint32(body[4:8]))
			bits = binary.LittleEndian.Uint16(body[14:16])
			switch bits {
			case 8:
				p.Encoding = EncodingULinear8
			case 16:
				p.Encoding = EncodingSLinear16LE
			default:
				return Params{}, nil, fmt.Errorf("audio: unsupported WAV bit depth %d", bits)
			}
			haveFmt = true
		case "data":
			if !haveFmt {
				return Params{}, nil, errors.New("audio: WAV data before fmt")
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return Params{}, nil, err
			}
			return p, Decode(p, body), nil
		default:
			// Skip unknown chunk (word-aligned).
			skip := int64(size)
			if skip%2 == 1 {
				skip++
			}
			if _, err := io.CopyN(io.Discard, r, skip); err != nil {
				return Params{}, nil, err
			}
		}
	}
}
