package audio

import (
	"io"
	"math"
)

// Source produces interleaved PCM16 audio. Implementations are
// deterministic so experiments replay identically.
type Source interface {
	// ReadSamples fills p with interleaved samples and returns the number
	// of samples written. It returns io.EOF (possibly with n > 0) when
	// the source is exhausted.
	ReadSamples(p []int16) (n int, err error)
}

// Tone is an infinite sine generator.
type Tone struct {
	Rate      int     // sample rate in Hz
	Channels  int     // interleaved channels
	Freq      float64 // tone frequency in Hz
	Amplitude float64 // 0..1 of full scale
	phase     float64
}

// NewTone returns a full-scale-relative sine source.
func NewTone(rate, channels int, freq, amplitude float64) *Tone {
	return &Tone{Rate: rate, Channels: channels, Freq: freq, Amplitude: amplitude}
}

// ReadSamples implements Source.
func (t *Tone) ReadSamples(p []int16) (int, error) {
	ch := t.Channels
	if ch <= 0 {
		ch = 1
	}
	step := 2 * math.Pi * t.Freq / float64(t.Rate)
	amp := t.Amplitude * 32767
	frames := len(p) / ch
	for f := 0; f < frames; f++ {
		v := int16(amp * math.Sin(t.phase))
		t.phase += step
		if t.phase > 2*math.Pi {
			t.phase -= 2 * math.Pi
		}
		for c := 0; c < ch; c++ {
			p[f*ch+c] = v
		}
	}
	return frames * ch, nil
}

// Noise is an infinite deterministic white-noise generator backed by a
// 64-bit xorshift PRNG.
type Noise struct {
	Amplitude float64
	state     uint64
}

// NewNoise returns a noise source with the given seed and amplitude.
func NewNoise(seed uint64, amplitude float64) *Noise {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Noise{Amplitude: amplitude, state: seed}
}

func (n *Noise) next() uint64 {
	x := n.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	n.state = x
	return x
}

// ReadSamples implements Source.
func (n *Noise) ReadSamples(p []int16) (int, error) {
	amp := n.Amplitude * 32767
	for i := range p {
		// Map to [-1, 1).
		v := float64(int64(n.next()>>11))/(1<<52) - 1
		p[i] = int16(amp * v)
	}
	return len(p), nil
}

// Sweep is a linear chirp from FreqStart to FreqEnd over Dur seconds of
// audio, then silence. It exercises the codec across the whole band.
type Sweep struct {
	Rate      int
	Channels  int
	FreqStart float64
	FreqEnd   float64
	DurFrames int
	Amplitude float64
	frame     int
	phase     float64
}

// NewSweep returns a chirp source running for durFrames frames.
func NewSweep(rate, channels int, f0, f1 float64, durFrames int, amplitude float64) *Sweep {
	return &Sweep{Rate: rate, Channels: channels, FreqStart: f0, FreqEnd: f1,
		DurFrames: durFrames, Amplitude: amplitude}
}

// ReadSamples implements Source.
func (s *Sweep) ReadSamples(p []int16) (int, error) {
	ch := s.Channels
	if ch <= 0 {
		ch = 1
	}
	amp := s.Amplitude * 32767
	frames := len(p) / ch
	for f := 0; f < frames; f++ {
		var v int16
		if s.frame < s.DurFrames {
			t := float64(s.frame) / float64(s.DurFrames)
			freq := s.FreqStart + (s.FreqEnd-s.FreqStart)*t
			s.phase += 2 * math.Pi * freq / float64(s.Rate)
			if s.phase > 2*math.Pi {
				s.phase -= 2 * math.Pi
			}
			v = int16(amp * math.Sin(s.phase))
		}
		s.frame++
		for c := 0; c < ch; c++ {
			p[f*ch+c] = v
		}
	}
	return frames * ch, nil
}

// Mix sums several sources sample-by-sample with saturation, modelling a
// musical program (e.g. harmonics plus a noise floor) for codec quality
// experiments.
type Mix struct {
	Sources []Source
	scratch []int16
}

// NewMix returns a mixing source.
func NewMix(sources ...Source) *Mix { return &Mix{Sources: sources} }

// ReadSamples implements Source. It is exhausted when all inputs are.
func (m *Mix) ReadSamples(p []int16) (int, error) {
	if cap(m.scratch) < len(p) {
		m.scratch = make([]int16, len(p))
	}
	buf := m.scratch[:len(p)]
	acc := make([]int32, len(p))
	maxN := 0
	live := 0
	for _, src := range m.Sources {
		n, err := src.ReadSamples(buf)
		if n > maxN {
			maxN = n
		}
		if err == nil {
			live++
		}
		for i := 0; i < n; i++ {
			acc[i] += int32(buf[i])
		}
	}
	for i := 0; i < maxN; i++ {
		p[i] = Saturate(acc[i])
	}
	if live == 0 {
		return maxN, io.EOF
	}
	return maxN, nil
}

// Limited wraps a source and cuts it off after a fixed number of samples.
type Limited struct {
	Src       Source
	Remaining int
}

// Limit returns src truncated to n samples.
func Limit(src Source, n int) *Limited { return &Limited{Src: src, Remaining: n} }

// ReadSamples implements Source.
func (l *Limited) ReadSamples(p []int16) (int, error) {
	if l.Remaining <= 0 {
		return 0, io.EOF
	}
	if len(p) > l.Remaining {
		p = p[:l.Remaining]
	}
	n, err := l.Src.ReadSamples(p)
	l.Remaining -= n
	if err == nil && l.Remaining == 0 {
		err = io.EOF
	}
	return n, err
}

// SliceSource replays a fixed sample buffer once.
type SliceSource struct {
	Samples []int16
	off     int
}

// ReadSamples implements Source.
func (s *SliceSource) ReadSamples(p []int16) (int, error) {
	if s.off >= len(s.Samples) {
		return 0, io.EOF
	}
	n := copy(p, s.Samples[s.off:])
	s.off += n
	if s.off >= len(s.Samples) {
		return n, io.EOF
	}
	return n, nil
}

// ReadAll drains src into a single buffer, reading in chunks of 4096.
func ReadAll(src Source) []int16 {
	var out []int16
	buf := make([]int16, 4096)
	for {
		n, err := src.ReadSamples(buf)
		out = append(out, buf[:n]...)
		if err != nil || n == 0 {
			return out
		}
	}
}

// Saturate clamps a 32-bit accumulator to the int16 range.
func Saturate(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// Music returns a deterministic program-like test signal: a fundamental
// with decaying harmonics plus a low noise floor, the stand-in for the
// "favourite MP3 file" in the multi-generation loss experiment (§2.2).
func Music(rate, channels int) Source {
	return NewMix(
		NewTone(rate, channels, 220, 0.30),
		NewTone(rate, channels, 440, 0.20),
		NewTone(rate, channels, 880, 0.12),
		NewTone(rate, channels, 1760, 0.07),
		NewTone(rate, channels, 3520, 0.04),
		NewNoise(42, 0.01),
	)
}
