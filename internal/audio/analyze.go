package audio

import "math"

// Signal-quality analysis used by the codec and multi-generation
// experiments.

// RMS returns the root-mean-square level of the samples (0 for empty).
func RMS(samples []int16) float64 {
	if len(samples) == 0 {
		return 0
	}
	var acc float64
	for _, s := range samples {
		v := float64(s)
		acc += v * v
	}
	return math.Sqrt(acc / float64(len(samples)))
}

// Peak returns the maximum absolute sample value.
func Peak(samples []int16) int {
	max := 0
	for _, s := range samples {
		v := int(s)
		if v < 0 {
			v = -v
		}
		if v > max {
			max = v
		}
	}
	return max
}

// SNR returns the signal-to-noise ratio in dB of test against the
// reference ref, comparing the shorter common prefix. +Inf means the
// signals are identical; 0-length input yields 0.
func SNR(ref, test []int16) float64 {
	n := len(ref)
	if len(test) < n {
		n = len(test)
	}
	if n == 0 {
		return 0
	}
	var sig, noise float64
	for i := 0; i < n; i++ {
		r := float64(ref[i])
		d := r - float64(test[i])
		sig += r * r
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	if sig == 0 {
		return 0
	}
	return 10 * math.Log10(sig/noise)
}

// DB converts an amplitude ratio to decibels.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ratio)
}

// CountClipped returns how many samples sit at full scale, a cheap
// distortion indicator for the auto-volume controller.
func CountClipped(samples []int16) int {
	n := 0
	for _, s := range samples {
		if s == 32767 || s == -32768 {
			n++
		}
	}
	return n
}
