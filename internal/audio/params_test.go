package audio

import (
	"testing"
	"time"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"cd", CDQuality, true},
		{"voice", Voice, true},
		{"zero", Params{}, false},
		{"low rate", Params{SampleRate: 100, Channels: 1, Encoding: EncodingULaw}, false},
		{"high rate", Params{SampleRate: 400000, Channels: 1, Encoding: EncodingULaw}, false},
		{"no channels", Params{SampleRate: 8000, Channels: 0, Encoding: EncodingULaw}, false},
		{"too many channels", Params{SampleRate: 8000, Channels: 9, Encoding: EncodingULaw}, false},
		{"bad encoding", Params{SampleRate: 8000, Channels: 1, Encoding: Encoding(99)}, false},
		{"8ch ok", Params{SampleRate: 48000, Channels: 8, Encoding: EncodingSLinear16BE}, true},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestParamsRates(t *testing.T) {
	if got := CDQuality.BytesPerFrame(); got != 4 {
		t.Errorf("CD frame = %d bytes, want 4", got)
	}
	if got := CDQuality.BytesPerSecond(); got != 176400 {
		t.Errorf("CD rate = %d B/s, want 176400", got)
	}
	// The paper's ~1.3-1.4 Mbps raw CD figure.
	if got := CDQuality.BitsPerSecond(); got != 1411200 {
		t.Errorf("CD rate = %d b/s, want 1411200", got)
	}
	if got := Voice.BytesPerSecond(); got != 8000 {
		t.Errorf("voice rate = %d B/s, want 8000", got)
	}
}

func TestParamsDuration(t *testing.T) {
	// One second of CD audio is 176400 bytes.
	if d := CDQuality.Duration(176400); d != time.Second {
		t.Errorf("Duration(176400) = %v, want 1s", d)
	}
	if d := CDQuality.Duration(0); d != 0 {
		t.Errorf("Duration(0) = %v, want 0", d)
	}
	// Round trip duration -> bytes -> duration.
	n := CDQuality.BytesFor(250 * time.Millisecond)
	if n != 44100 {
		t.Errorf("BytesFor(250ms) = %d, want 44100", n)
	}
	if d := CDQuality.Duration(n); d != 250*time.Millisecond {
		t.Errorf("round trip = %v, want 250ms", d)
	}
}

func TestParamsBytesForWholeFrames(t *testing.T) {
	// BytesFor must always return whole frames.
	p := Params{SampleRate: 44100, Channels: 2, Encoding: EncodingSLinear16LE}
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 17 * time.Millisecond} {
		n := p.BytesFor(d)
		if n%p.BytesPerFrame() != 0 {
			t.Errorf("BytesFor(%v) = %d not frame aligned", d, n)
		}
	}
}

func TestEncodingString(t *testing.T) {
	known := []Encoding{EncodingULaw, EncodingALaw, EncodingSLinear8, EncodingULinear8,
		EncodingSLinear16LE, EncodingSLinear16BE, EncodingULinear16LE, EncodingULinear16BE}
	seen := map[string]bool{}
	for _, e := range known {
		s := e.String()
		if seen[s] {
			t.Errorf("duplicate encoding name %q", s)
		}
		seen[s] = true
		if !e.Valid() {
			t.Errorf("%s reported invalid", s)
		}
	}
	if Encoding(0).Valid() || Encoding(99).Valid() {
		t.Error("invalid encodings reported valid")
	}
}

func TestFramesIn(t *testing.T) {
	if got := CDQuality.FramesIn(4096); got != 1024 {
		t.Errorf("FramesIn(4096) = %d, want 1024", got)
	}
	if got := CDQuality.FramesIn(3); got != 0 {
		t.Errorf("FramesIn(3) = %d, want 0", got)
	}
}
