package audio

import (
	"testing"
	"testing/quick"
)

func TestULawRoundTripBounded(t *testing.T) {
	// µ-law quantization error must be bounded by the segment step size.
	f := func(s int16) bool {
		got := ULawToLinear(LinearToULaw(s))
		diff := int32(s) - int32(got)
		if diff < 0 {
			diff = -diff
		}
		// Largest µ-law segment step is 256 at the top of the range (plus
		// clipping above 32635 costs a little more).
		return diff <= 1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestULawSilence(t *testing.T) {
	if got := ULawToLinear(0xFF); got != 0 {
		t.Errorf("ULawToLinear(0xFF) = %d, want 0", got)
	}
	if got := LinearToULaw(0); got != 0xFF {
		t.Errorf("LinearToULaw(0) = %#x, want 0xFF", got)
	}
}

func TestULawMonotone(t *testing.T) {
	// Decoding all 256 codes must produce a strictly monotone ramp when
	// ordered by decoded value sign+magnitude within each half.
	prev := ULawToLinear(0x80) // most negative after inversion? iterate raw codes instead
	_ = prev
	// Positive codes (sign bit 0 after inversion): decoded values for
	// codes 0xFF down to 0x80 are the non-negative ramp.
	last := int16(-1)
	for code := 0xFF; code >= 0x80; code-- {
		v := ULawToLinear(byte(code))
		if v < 0 {
			t.Fatalf("code %#x decoded negative: %d", code, v)
		}
		if v <= last && code != 0xFF {
			t.Fatalf("non-monotone at code %#x: %d <= %d", code, v, last)
		}
		last = v
	}
}

func TestULawCodecSymmetry(t *testing.T) {
	f := func(s int16) bool {
		if s == -32768 {
			s = -32767
		}
		a := ULawToLinear(LinearToULaw(s))
		b := ULawToLinear(LinearToULaw(-s))
		return a == -b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestALawRoundTripBounded(t *testing.T) {
	f := func(s int16) bool {
		got := ALawToLinear(LinearToALaw(s))
		diff := int32(s) - int32(got)
		if diff < 0 {
			diff = -diff
		}
		// Largest A-law segment step is 1024 in the top segment.
		return diff <= 1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestALawSilenceByte(t *testing.T) {
	// 0xD5 is the canonical A-law silence byte.
	if got := ALawToLinear(0xD5); got > 16 || got < -16 {
		t.Errorf("ALawToLinear(0xD5) = %d, want near 0", got)
	}
}

func TestALawIdempotent(t *testing.T) {
	// Companding is idempotent: encode(decode(encode(x))) == encode(x).
	for s := -32768; s <= 32767; s += 97 {
		e1 := LinearToALaw(int16(s))
		e2 := LinearToALaw(ALawToLinear(e1))
		if e1 != e2 {
			t.Fatalf("A-law not idempotent at %d: %#x vs %#x", s, e1, e2)
		}
	}
}

func TestULawIdempotent(t *testing.T) {
	for s := -32768; s <= 32767; s += 97 {
		e1 := LinearToULaw(int16(s))
		e2 := LinearToULaw(ULawToLinear(e1))
		if e1 != e2 {
			t.Fatalf("µ-law not idempotent at %d: %#x vs %#x", s, e1, e2)
		}
	}
}

func TestG711Extremes(t *testing.T) {
	for _, s := range []int16{-32768, -32767, -1, 0, 1, 32767} {
		// Must not panic and must stay in range.
		u := ULawToLinear(LinearToULaw(s))
		a := ALawToLinear(LinearToALaw(s))
		_ = u
		_ = a
	}
}
