package audio

import (
	"fmt"
	"time"
)

// Encoding identifies a sample encoding, mirroring the encodings exposed
// by OpenBSD's audio(4) AUDIO_SETINFO ioctl.
type Encoding uint8

// Supported encodings.
const (
	EncodingULaw        Encoding = iota + 1 // G.711 µ-law, 8-bit
	EncodingALaw                            // G.711 A-law, 8-bit
	EncodingSLinear8                        // signed linear, 8-bit
	EncodingULinear8                        // unsigned linear, 8-bit
	EncodingSLinear16LE                     // signed linear, 16-bit little-endian
	EncodingSLinear16BE                     // signed linear, 16-bit big-endian
	EncodingULinear16LE                     // unsigned linear, 16-bit little-endian
	EncodingULinear16BE                     // unsigned linear, 16-bit big-endian
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncodingULaw:
		return "ulaw"
	case EncodingALaw:
		return "alaw"
	case EncodingSLinear8:
		return "slinear8"
	case EncodingULinear8:
		return "ulinear8"
	case EncodingSLinear16LE:
		return "slinear16le"
	case EncodingSLinear16BE:
		return "slinear16be"
	case EncodingULinear16LE:
		return "ulinear16le"
	case EncodingULinear16BE:
		return "ulinear16be"
	default:
		return fmt.Sprintf("encoding(%d)", uint8(e))
	}
}

// BytesPerSample returns the storage size of one sample in this encoding.
func (e Encoding) BytesPerSample() int {
	switch e {
	case EncodingULaw, EncodingALaw, EncodingSLinear8, EncodingULinear8:
		return 1
	case EncodingSLinear16LE, EncodingSLinear16BE, EncodingULinear16LE, EncodingULinear16BE:
		return 2
	default:
		return 0
	}
}

// Valid reports whether e is a known encoding.
func (e Encoding) Valid() bool { return e.BytesPerSample() != 0 }

// Params describes an audio stream configuration, the set of values an
// application establishes on the device with AUDIO_SETINFO and that the
// VAD must forward to the master side so the rebroadcaster — and
// ultimately every Ethernet Speaker — can decode the stream correctly.
type Params struct {
	SampleRate int      // frames per second, e.g. 44100
	Channels   int      // interleaved channels, 1 or 2
	Encoding   Encoding // wire encoding of each sample
}

// CDQuality is the configuration the paper's experiments use: CD-quality
// stereo (44.1 kHz, 16-bit signed little-endian), ~1.4 Mbps raw.
var CDQuality = Params{SampleRate: 44100, Channels: 2, Encoding: EncodingSLinear16LE}

// Voice is a low-bitrate telephony configuration (8 kHz µ-law mono,
// 64 kbps) representative of the channels the paper leaves uncompressed.
var Voice = Params{SampleRate: 8000, Channels: 1, Encoding: EncodingULaw}

// Validate reports whether the parameters describe a playable stream.
func (p Params) Validate() error {
	if p.SampleRate < 1000 || p.SampleRate > 192000 {
		return fmt.Errorf("audio: sample rate %d out of range [1000,192000]", p.SampleRate)
	}
	if p.Channels < 1 || p.Channels > 8 {
		return fmt.Errorf("audio: channel count %d out of range [1,8]", p.Channels)
	}
	if !p.Encoding.Valid() {
		return fmt.Errorf("audio: invalid encoding %d", p.Encoding)
	}
	return nil
}

// BytesPerFrame returns the size of one frame (one sample per channel).
func (p Params) BytesPerFrame() int { return p.Encoding.BytesPerSample() * p.Channels }

// BytesPerSecond returns the raw stream bitrate in bytes per second.
func (p Params) BytesPerSecond() int { return p.BytesPerFrame() * p.SampleRate }

// BitsPerSecond returns the raw stream bitrate in bits per second.
func (p Params) BitsPerSecond() int { return p.BytesPerSecond() * 8 }

// FramesIn returns how many whole frames fit in n bytes.
func (p Params) FramesIn(n int) int { return n / p.BytesPerFrame() }

// Duration returns the play time of n bytes of audio in this format —
// the quantity the rebroadcaster's rate limiter sleeps for (§3.1).
func (p Params) Duration(n int) time.Duration {
	bps := p.BytesPerSecond()
	if bps == 0 {
		return 0
	}
	return time.Duration(n) * time.Second / time.Duration(bps)
}

// BytesFor returns the number of whole-frame bytes covering duration d.
func (p Params) BytesFor(d time.Duration) int {
	frames := int(int64(d) * int64(p.SampleRate) / int64(time.Second))
	return frames * p.BytesPerFrame()
}

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("%dHz/%dch/%s", p.SampleRate, p.Channels, p.Encoding)
}

// Equal reports whether two configurations match exactly.
func (p Params) Equal(q Params) bool { return p == q }
