package audio

// G.711 µ-law and A-law companding, implemented from the ITU-T G.711
// segment definitions. These are the low-bitrate encodings that the
// rebroadcaster leaves uncompressed (§2.2): at 64 kbps the transform
// codec's CPU cost and latency are not worth paying.

const ulawBias = 0x84 // 132, the µ-law bias
const ulawClip = 32635

// LinearToULaw compands a 16-bit linear sample to 8-bit µ-law.
func LinearToULaw(s int16) byte {
	x := int32(s)
	var sign byte
	if x < 0 {
		x = -x
		sign = 0x80
	}
	if x > ulawClip {
		x = ulawClip
	}
	x += ulawBias
	// Segment: index of the highest set bit among bits 7..14.
	exp := 7
	for mask := int32(0x4000); exp > 0 && x&mask == 0; exp-- {
		mask >>= 1
	}
	mant := byte((x >> (uint(exp) + 3)) & 0x0F)
	return ^(sign | byte(exp)<<4 | mant)
}

// ULawToLinear expands an 8-bit µ-law sample to 16-bit linear.
func ULawToLinear(u byte) int16 {
	u = ^u
	sign := u & 0x80
	exp := (u >> 4) & 7
	mant := int32(u & 0x0F)
	x := ((mant << 3) + ulawBias) << exp
	x -= ulawBias
	if sign != 0 {
		x = -x
	}
	return int16(x)
}

// LinearToALaw compands a 16-bit linear sample to 8-bit A-law.
func LinearToALaw(s int16) byte {
	var mask byte = 0xD5 // sign bit set (positive) after the 0x55 toggle
	x := int32(s)
	if x < 0 {
		mask = 0x55
		x = -x - 1
	}
	var a byte
	if x < 256 {
		a = byte(x >> 4)
	} else {
		seg := 0
		for v := x >> 8; v != 0; v >>= 1 {
			seg++
		}
		a = byte(seg<<4) | byte((x>>(uint(seg)+3))&0x0F)
	}
	return a ^ mask
}

// ALawToLinear expands an 8-bit A-law sample to 16-bit linear.
func ALawToLinear(a byte) int16 {
	a ^= 0x55
	sign := a & 0x80
	seg := (a >> 4) & 7
	mant := int32(a & 0x0F)
	var x int32
	if seg == 0 {
		x = mant<<4 + 8
	} else {
		x = (mant<<4 + 0x108) << (seg - 1)
	}
	if sign == 0 {
		x = -x
	}
	return int16(x)
}
