package audio

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func linearEncodings() []Encoding {
	return []Encoding{
		EncodingSLinear16LE, EncodingSLinear16BE,
		EncodingULinear16LE, EncodingULinear16BE,
	}
}

func TestEncodeDecode16BitLossless(t *testing.T) {
	for _, enc := range linearEncodings() {
		p := Params{SampleRate: 44100, Channels: 2, Encoding: enc}
		f := func(samples []int16) bool {
			got := Decode(p, Encode(p, samples))
			if len(got) != len(samples) {
				return false
			}
			for i := range got {
				if got[i] != samples[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", enc, err)
		}
	}
}

func TestEncodeDecode8BitBounded(t *testing.T) {
	for _, enc := range []Encoding{EncodingSLinear8, EncodingULinear8} {
		p := Params{SampleRate: 8000, Channels: 1, Encoding: enc}
		f := func(samples []int16) bool {
			got := Decode(p, Encode(p, samples))
			for i := range got {
				diff := int32(samples[i]) - int32(got[i])
				if diff < 0 {
					diff = -diff
				}
				if diff >= 256 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", enc, err)
		}
	}
}

func TestDecodeIgnoresTrailingPartialSample(t *testing.T) {
	p := Params{SampleRate: 44100, Channels: 1, Encoding: EncodingSLinear16LE}
	got := Decode(p, []byte{0x01, 0x02, 0x03})
	if len(got) != 1 {
		t.Fatalf("decoded %d samples from 3 bytes, want 1", len(got))
	}
}

func TestDecodeInvalidEncoding(t *testing.T) {
	p := Params{SampleRate: 44100, Channels: 1, Encoding: Encoding(50)}
	if got := Decode(p, []byte{1, 2, 3, 4}); got != nil {
		t.Fatalf("Decode with bad encoding = %v, want nil", got)
	}
	if got := Encode(p, []int16{1, 2}); got != nil {
		t.Fatalf("Encode with bad encoding = %v, want nil", got)
	}
}

func TestFillSilenceDecodesToNearZero(t *testing.T) {
	for _, enc := range []Encoding{
		EncodingULaw, EncodingALaw, EncodingSLinear8, EncodingULinear8,
		EncodingSLinear16LE, EncodingSLinear16BE, EncodingULinear16LE, EncodingULinear16BE,
	} {
		p := Params{SampleRate: 8000, Channels: 1, Encoding: enc}
		buf := make([]byte, 64)
		for i := range buf {
			buf[i] = 0xAA // garbage
		}
		FillSilence(enc, buf)
		for i, s := range Decode(p, buf) {
			if s > 128 || s < -128 {
				t.Errorf("%s: silence sample %d decodes to %d", enc, i, s)
			}
		}
	}
}

func TestRemapChannelsDownmix(t *testing.T) {
	// Stereo [L=100,R=200] downmixes to mono 150.
	out := RemapChannels([]int16{100, 200, -100, -200}, 2, 1)
	if len(out) != 2 || out[0] != 150 || out[1] != -150 {
		t.Fatalf("downmix = %v, want [150 -150]", out)
	}
}

func TestRemapChannelsUpmix(t *testing.T) {
	out := RemapChannels([]int16{7, 9}, 1, 2)
	if len(out) != 4 || out[0] != 7 || out[1] != 7 || out[2] != 9 || out[3] != 9 {
		t.Fatalf("upmix = %v, want [7 7 9 9]", out)
	}
}

func TestRemapChannelsIdentity(t *testing.T) {
	in := []int16{1, 2, 3, 4}
	if out := RemapChannels(in, 2, 2); &out[0] != &in[0] {
		t.Fatal("identity remap should not copy")
	}
}

func TestResampleLengthRatio(t *testing.T) {
	in := make([]int16, 4410*2) // 100ms stereo at 44100
	out := Resample(in, 2, 44100, 22050)
	if got := len(out) / 2; got != 2205 {
		t.Fatalf("downsample frames = %d, want 2205", got)
	}
	out = Resample(in, 2, 44100, 88200)
	if got := len(out) / 2; got != 8820 {
		t.Fatalf("upsample frames = %d, want 8820", got)
	}
}

func TestResamplePreservesTone(t *testing.T) {
	// A 1 kHz tone resampled 44100 -> 48000 should keep its RMS level
	// within 1 dB.
	src := NewTone(44100, 1, 1000, 0.5)
	in := make([]int16, 44100)
	src.ReadSamples(in)
	out := Resample(in, 1, 44100, 48000)
	inRMS, outRMS := RMS(in), RMS(out)
	diff := math.Abs(DB(outRMS / inRMS))
	if diff > 1.0 {
		t.Fatalf("resample RMS shift %.2f dB, want <= 1 dB", diff)
	}
}

func TestResampleIdentity(t *testing.T) {
	in := []int16{1, 2, 3}
	if out := Resample(in, 1, 8000, 8000); &out[0] != &in[0] {
		t.Fatal("identity resample should not copy")
	}
}

func TestConvertEndToEnd(t *testing.T) {
	from := Params{SampleRate: 44100, Channels: 2, Encoding: EncodingSLinear16LE}
	to := Params{SampleRate: 22050, Channels: 1, Encoding: EncodingULaw}
	src := NewTone(44100, 2, 440, 0.5)
	samples := make([]int16, 44100*2)
	src.ReadSamples(samples)
	data := Encode(from, samples)
	out, err := Convert(from, to, data)
	if err != nil {
		t.Fatal(err)
	}
	// Half the frames, 1 byte per frame.
	if want := 22050; len(out) != want {
		t.Fatalf("converted %d bytes, want %d", len(out), want)
	}
	// Output should still carry signal energy.
	if rms := RMS(Decode(to, out)); rms < 1000 {
		t.Fatalf("converted signal RMS %.0f, want > 1000", rms)
	}
}

func TestConvertRejectsBadParams(t *testing.T) {
	if _, err := Convert(Params{}, CDQuality, nil); err == nil {
		t.Fatal("expected error for bad source params")
	}
	if _, err := Convert(CDQuality, Params{}, nil); err == nil {
		t.Fatal("expected error for bad target params")
	}
}

func TestWAVRoundTrip(t *testing.T) {
	p := Params{SampleRate: 8000, Channels: 2, Encoding: EncodingSLinear16LE}
	samples := []int16{0, 100, -100, 32767, -32768, 7}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, p, samples); err != nil {
		t.Fatal(err)
	}
	gotP, gotS, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotP.SampleRate != 8000 || gotP.Channels != 2 {
		t.Fatalf("params = %v", gotP)
	}
	if len(gotS) != len(samples) {
		t.Fatalf("got %d samples, want %d", len(gotS), len(samples))
	}
	for i := range samples {
		if gotS[i] != samples[i] {
			t.Fatalf("sample %d = %d, want %d", i, gotS[i], samples[i])
		}
	}
}

func TestWAVRejectsGarbage(t *testing.T) {
	if _, _, err := ReadWAV(bytes.NewReader([]byte("not a wav file at all"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
	if _, _, err := ReadWAV(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestWAVSkipsUnknownChunks(t *testing.T) {
	p := Params{SampleRate: 8000, Channels: 1, Encoding: EncodingSLinear16LE}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, p, []int16{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Inject a LIST chunk between fmt and data.
	raw := buf.Bytes()
	var out bytes.Buffer
	out.Write(raw[:36]) // RIFF header + fmt chunk
	out.WriteString("LIST")
	out.Write([]byte{4, 0, 0, 0})
	out.WriteString("INFO")
	out.Write(raw[36:])
	_, gotS, err := ReadWAV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotS) != 3 {
		t.Fatalf("got %d samples, want 3", len(gotS))
	}
}

func TestToneGeneratorFrequency(t *testing.T) {
	// Count zero crossings of a 100 Hz tone over 1 second: ~200.
	tone := NewTone(8000, 1, 100, 0.9)
	buf := make([]int16, 8000)
	tone.ReadSamples(buf)
	crossings := 0
	for i := 1; i < len(buf); i++ {
		if (buf[i-1] < 0) != (buf[i] < 0) {
			crossings++
		}
	}
	if crossings < 195 || crossings > 205 {
		t.Fatalf("zero crossings = %d, want ~200", crossings)
	}
}

func TestNoiseDeterministic(t *testing.T) {
	a := NewNoise(7, 0.5)
	b := NewNoise(7, 0.5)
	ba, bb := make([]int16, 512), make([]int16, 512)
	a.ReadSamples(ba)
	b.ReadSamples(bb)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatal("same-seed noise diverged")
		}
	}
	c := NewNoise(8, 0.5)
	bc := make([]int16, 512)
	c.ReadSamples(bc)
	same := 0
	for i := range ba {
		if ba[i] == bc[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds too similar: %d/512 equal", same)
	}
}

func TestLimitedSource(t *testing.T) {
	l := Limit(NewTone(8000, 1, 440, 0.5), 100)
	buf := make([]int16, 64)
	n1, err1 := l.ReadSamples(buf)
	if n1 != 64 || err1 != nil {
		t.Fatalf("first read = (%d, %v)", n1, err1)
	}
	n2, err2 := l.ReadSamples(buf)
	if n2 != 36 || err2 != io.EOF {
		t.Fatalf("second read = (%d, %v), want (36, EOF)", n2, err2)
	}
	n3, err3 := l.ReadSamples(buf)
	if n3 != 0 || err3 != io.EOF {
		t.Fatalf("third read = (%d, %v), want (0, EOF)", n3, err3)
	}
}

func TestSliceSource(t *testing.T) {
	s := &SliceSource{Samples: []int16{1, 2, 3, 4, 5}}
	buf := make([]int16, 3)
	n, err := s.ReadSamples(buf)
	if n != 3 || err != nil {
		t.Fatalf("read = (%d, %v)", n, err)
	}
	n, err = s.ReadSamples(buf)
	if n != 2 || err != io.EOF {
		t.Fatalf("read = (%d, %v), want (2, EOF)", n, err)
	}
}

func TestMixSaturates(t *testing.T) {
	m := NewMix(
		&SliceSource{Samples: []int16{30000, -30000}},
		&SliceSource{Samples: []int16{30000, -30000}},
	)
	buf := make([]int16, 2)
	m.ReadSamples(buf)
	if buf[0] != 32767 || buf[1] != -32768 {
		t.Fatalf("mix = %v, want saturated [32767 -32768]", buf)
	}
}

func TestReadAllMusicFinite(t *testing.T) {
	src := Limit(Music(8000, 1), 8000)
	all := ReadAll(src)
	if len(all) != 8000 {
		t.Fatalf("ReadAll = %d samples, want 8000", len(all))
	}
	if RMS(all) < 1000 {
		t.Fatalf("music RMS %.0f too quiet", RMS(all))
	}
}

func TestSweepCoversBand(t *testing.T) {
	sw := NewSweep(8000, 1, 100, 3000, 8000, 0.8)
	buf := make([]int16, 8000)
	sw.ReadSamples(buf)
	// Early zero-crossing rate should be much lower than late.
	early, late := 0, 0
	for i := 1; i < 1000; i++ {
		if (buf[i-1] < 0) != (buf[i] < 0) {
			early++
		}
	}
	for i := 7001; i < 8000; i++ {
		if (buf[i-1] < 0) != (buf[i] < 0) {
			late++
		}
	}
	if late <= early*2 {
		t.Fatalf("sweep did not rise: early=%d late=%d", early, late)
	}
	// After DurFrames it must be silent.
	buf2 := make([]int16, 100)
	sw.ReadSamples(buf2)
	for _, v := range buf2 {
		if v != 0 {
			t.Fatal("sweep not silent after duration")
		}
	}
}

func TestSNR(t *testing.T) {
	ref := []int16{1000, -1000, 1000, -1000}
	if snr := SNR(ref, ref); !math.IsInf(snr, 1) {
		t.Fatalf("identical SNR = %v, want +Inf", snr)
	}
	noisy := []int16{1010, -990, 1010, -990}
	snr := SNR(ref, noisy)
	want := 20 * math.Log10(1000.0/10.0) // 40 dB
	if math.Abs(snr-want) > 0.5 {
		t.Fatalf("SNR = %.1f dB, want ~%.1f", snr, want)
	}
	if got := SNR(nil, nil); got != 0 {
		t.Fatalf("empty SNR = %v, want 0", got)
	}
}

func TestSaturate(t *testing.T) {
	cases := map[int32]int16{
		0: 0, 32767: 32767, 32768: 32767, 100000: 32767,
		-32768: -32768, -32769: -32768, -100000: -32768,
	}
	for in, want := range cases {
		if got := Saturate(in); got != want {
			t.Errorf("Saturate(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRMSAndPeak(t *testing.T) {
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %v", got)
	}
	if got := Peak([]int16{-5, 3, -7, 2}); got != 7 {
		t.Errorf("Peak = %d, want 7", got)
	}
	if got := CountClipped([]int16{32767, 0, -32768, 5}); got != 2 {
		t.Errorf("CountClipped = %d, want 2", got)
	}
}
