package audio

import "fmt"

// Decode converts raw bytes in the wire encoding described by p into
// interleaved 16-bit signed PCM, the internal working format. Trailing
// partial samples are ignored.
func Decode(p Params, data []byte) []int16 {
	bps := p.Encoding.BytesPerSample()
	if bps == 0 {
		return nil
	}
	n := len(data) / bps
	out := make([]int16, n)
	switch p.Encoding {
	case EncodingULaw:
		for i := 0; i < n; i++ {
			out[i] = ULawToLinear(data[i])
		}
	case EncodingALaw:
		for i := 0; i < n; i++ {
			out[i] = ALawToLinear(data[i])
		}
	case EncodingSLinear8:
		for i := 0; i < n; i++ {
			out[i] = int16(int8(data[i])) << 8
		}
	case EncodingULinear8:
		for i := 0; i < n; i++ {
			out[i] = (int16(data[i]) - 128) << 8
		}
	case EncodingSLinear16LE:
		for i := 0; i < n; i++ {
			out[i] = int16(uint16(data[2*i]) | uint16(data[2*i+1])<<8)
		}
	case EncodingSLinear16BE:
		for i := 0; i < n; i++ {
			out[i] = int16(uint16(data[2*i])<<8 | uint16(data[2*i+1]))
		}
	case EncodingULinear16LE:
		for i := 0; i < n; i++ {
			u := uint16(data[2*i]) | uint16(data[2*i+1])<<8
			out[i] = int16(u ^ 0x8000)
		}
	case EncodingULinear16BE:
		for i := 0; i < n; i++ {
			u := uint16(data[2*i])<<8 | uint16(data[2*i+1])
			out[i] = int16(u ^ 0x8000)
		}
	}
	return out
}

// Encode converts interleaved PCM16 samples into the wire encoding
// described by p.
func Encode(p Params, samples []int16) []byte {
	bps := p.Encoding.BytesPerSample()
	if bps == 0 {
		return nil
	}
	out := make([]byte, len(samples)*bps)
	switch p.Encoding {
	case EncodingULaw:
		for i, s := range samples {
			out[i] = LinearToULaw(s)
		}
	case EncodingALaw:
		for i, s := range samples {
			out[i] = LinearToALaw(s)
		}
	case EncodingSLinear8:
		for i, s := range samples {
			out[i] = byte(s >> 8)
		}
	case EncodingULinear8:
		for i, s := range samples {
			out[i] = byte(s>>8) + 128
		}
	case EncodingSLinear16LE:
		for i, s := range samples {
			out[2*i] = byte(s)
			out[2*i+1] = byte(uint16(s) >> 8)
		}
	case EncodingSLinear16BE:
		for i, s := range samples {
			out[2*i] = byte(uint16(s) >> 8)
			out[2*i+1] = byte(s)
		}
	case EncodingULinear16LE:
		for i, s := range samples {
			u := uint16(s) ^ 0x8000
			out[2*i] = byte(u)
			out[2*i+1] = byte(u >> 8)
		}
	case EncodingULinear16BE:
		for i, s := range samples {
			u := uint16(s) ^ 0x8000
			out[2*i] = byte(u >> 8)
			out[2*i+1] = byte(u)
		}
	}
	return out
}

// SilenceByte returns the byte value that represents silence in encoding
// e — what the high-level audio driver inserts when its ring buffer runs
// dry (§2.1.1).
func SilenceByte(e Encoding) byte {
	switch e {
	case EncodingULaw:
		return 0xFF // +0 in µ-law
	case EncodingALaw:
		return 0xD5 // +0 in A-law
	case EncodingULinear8:
		return 0x80
	case EncodingULinear16LE, EncodingULinear16BE:
		return 0x80 // approximation: used for whole-buffer fills
	default:
		return 0x00
	}
}

// FillSilence overwrites buf with silence in encoding e.
func FillSilence(e Encoding, buf []byte) {
	switch e {
	case EncodingULinear16LE:
		for i := range buf {
			if i%2 == 1 {
				buf[i] = 0x80
			} else {
				buf[i] = 0x00
			}
		}
	case EncodingULinear16BE:
		for i := range buf {
			if i%2 == 0 {
				buf[i] = 0x80
			} else {
				buf[i] = 0x00
			}
		}
	default:
		b := SilenceByte(e)
		for i := range buf {
			buf[i] = b
		}
	}
}

// Convert re-encodes raw audio bytes from one configuration to another,
// resampling and remapping channels as needed. It is the speaker-side
// fallback when the local hardware cannot be opened with the stream's
// exact parameters.
func Convert(from, to Params, data []byte) ([]byte, error) {
	if err := from.Validate(); err != nil {
		return nil, fmt.Errorf("audio: convert source: %w", err)
	}
	if err := to.Validate(); err != nil {
		return nil, fmt.Errorf("audio: convert target: %w", err)
	}
	samples := Decode(from, data)
	samples = RemapChannels(samples, from.Channels, to.Channels)
	if from.SampleRate != to.SampleRate {
		samples = Resample(samples, to.Channels, from.SampleRate, to.SampleRate)
	}
	return Encode(to, samples), nil
}

// RemapChannels converts interleaved PCM between channel counts:
// downmixing averages source channels, upmixing duplicates the last
// source channel.
func RemapChannels(samples []int16, from, to int) []int16 {
	if from == to || from <= 0 || to <= 0 {
		return samples
	}
	frames := len(samples) / from
	out := make([]int16, frames*to)
	for f := 0; f < frames; f++ {
		in := samples[f*from : (f+1)*from]
		if to < from {
			// Downmix: average groups of channels.
			for c := 0; c < to; c++ {
				sum := 0
				count := 0
				for s := c; s < from; s += to {
					sum += int(in[s])
					count++
				}
				out[f*to+c] = int16(sum / count)
			}
		} else {
			for c := 0; c < to; c++ {
				src := c
				if src >= from {
					src = from - 1
				}
				out[f*to+c] = in[src]
			}
		}
	}
	return out
}

// Resample converts interleaved PCM between sample rates with linear
// interpolation. channels must divide len(samples).
func Resample(samples []int16, channels, fromRate, toRate int) []int16 {
	if fromRate == toRate || channels <= 0 || fromRate <= 0 || toRate <= 0 {
		return samples
	}
	inFrames := len(samples) / channels
	if inFrames == 0 {
		return nil
	}
	outFrames := int(int64(inFrames) * int64(toRate) / int64(fromRate))
	if outFrames == 0 {
		outFrames = 1
	}
	out := make([]int16, outFrames*channels)
	for f := 0; f < outFrames; f++ {
		// Source position in fixed point (16 fractional bits).
		pos := int64(f) * int64(fromRate) * 65536 / int64(toRate)
		idx := int(pos >> 16)
		frac := int32(pos & 0xFFFF)
		for c := 0; c < channels; c++ {
			a := int32(samples[idx*channels+c])
			b := a
			if idx+1 < inFrames {
				b = int32(samples[(idx+1)*channels+c])
			}
			out[f*channels+c] = int16(a + (b-a)*frac/65536)
		}
	}
	return out
}
