// Package audio provides the audio data substrate for the Ethernet
// Speaker system: sample formats and encodings mirroring OpenBSD
// audio(4), conversion between wire encodings and internal PCM16,
// deterministic signal generators, WAV file I/O, a resampler, mixing and
// gain, and signal-quality analysis used by the codec experiments.
package audio
