package relay

import (
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vclock"
)

func TestWatcherTracksAndAgesRecords(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	a := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 4}
	b := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 9}
	cat := announceRelays(t, sim, seg, a, b)
	w, err := NewWatcher(sim, seg, "10.0.0.7:5003", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	sim.Go("watcher", w.Run)
	sim.Go("test", func() {
		sim.Sleep(300 * time.Millisecond)
		got := w.Snapshot()
		if len(got) != 2 || got[0].Addr != a.Addr || got[1].Addr != b.Addr {
			t.Errorf("snapshot = %+v, want both records sorted", got)
		}
		if !got[0].HasLoad || got[0].Subs != 4 {
			t.Errorf("load vector lost in transit: %+v", got[0])
		}
		// One relay goes quiet: after the staleness window only the
		// still-announcing one survives the snapshot.
		cat.RemoveRelay(a.Addr)
		sim.Sleep(discoverStale + time.Second)
		got = w.Snapshot()
		if len(got) != 1 || got[0].Addr != b.Addr {
			t.Errorf("post-ageout snapshot = %+v, want only %s", got, b.Addr)
		}
		cat.Stop()
		w.Stop()
	})
	sim.WaitIdle()
}

func TestWatcherSnapshotReflectsLoadUpdates(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	ri := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 1}
	cat := announceRelays(t, sim, seg, ri)
	w, err := NewWatcher(sim, seg, "10.0.0.7:5003", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	sim.Go("watcher", w.Run)
	sim.Go("test", func() {
		sim.Sleep(250 * time.Millisecond)
		ri.Subs = 77
		cat.SetRelay(ri) // the relay's next announce carries the new load
		sim.Sleep(250 * time.Millisecond)
		got := w.Snapshot()
		if len(got) != 1 || got[0].Subs != 77 {
			t.Errorf("snapshot = %+v, want the re-announced load (Subs=77)", got)
		}
		cat.Stop()
		w.Stop()
	})
	sim.WaitIdle()
}
