// Package relay bridges a multicast channel to off-LAN listeners: a
// Relay joins the channel's multicast group as an ordinary receiver —
// indistinguishable from a speaker, so the producer stays
// listener-stateless (§2.3) — and fans the control + data packet stream
// out to dynamically subscribed unicast destinations.
//
// Subscriptions are TURN-style leases (cf. RFC 5766 allocations): a
// subscriber sends a proto.Subscribe naming the lease it wants and must
// re-send before expiry; the relay acknowledges with a proto.SubAck
// carrying the granted lease and silently expires subscribers that stop
// refreshing. All per-listener state therefore lives in the relay, is
// soft, and is bounded.
//
// The fan-out path is sharded and batched: subscribers hash onto
// shards, each shard has its own worker task, lock, and (when a Network
// is configured) its own send socket, and every subscriber owns a
// bounded packet queue with drop-oldest backpressure — a slow or dead
// unicast path cannot stall the multicast receive loop or other
// subscribers. An upstream packet is parsed once and the same buffer is
// enqueued to every subscriber leased to its channel by reference; the
// workers drain queues round-robin into lan.Datagram batches and flush
// them with one WriteBatch call (sendmmsg on Linux) when the batch
// fills, when a partial batch has lingered for the flush interval, or
// when the relay quiesces.
//
// Relays chain: a Relay configured with an Upstream address is itself
// a subscriber — it leases the stream from another relay (through the
// shared lease package) and fans it out to its own subscribers, so
// bridges compose across network segments. Subscribe packets carry a
// hop count and a path identity for loop detection: a relay refuses
// with proto.SubLoop any subscription path that would revisit it or
// exceed MaxHops. Relays advertise themselves in the §4.3 catalog
// (proto.Announce relay records; see Discover) so off-LAN speakers and
// downstream relays find a bridge without static configuration.
//
// The control plane authenticates (§5.1 applied to the one packet that
// creates forwarding state): with Config.Auth set, a Subscribe must
// verify before it can touch the lease table — failures drop silently,
// with no SubAck, so a request forged from a spoofed source reflects
// nothing at the victim and the relay cannot be grown into a TURN-style
// amplifier — and every SubAck is signed so subscribers adopt only
// leases their real relay granted. See docs/RELAY-OPS.md ("Securing a
// relay") for the operator view.
package relay
