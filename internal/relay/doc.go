// Package relay bridges a multicast channel to off-LAN listeners: a
// Relay joins the channel's multicast group as an ordinary receiver —
// indistinguishable from a speaker, so the producer stays
// listener-stateless (§2.3) — and fans the control + data packet stream
// out to dynamically subscribed unicast destinations.
//
// Subscriptions are TURN-style leases (cf. RFC 5766 allocations): a
// subscriber sends a proto.Subscribe naming the lease it wants and must
// re-send before expiry; the relay acknowledges with a proto.SubAck
// carrying the granted lease and silently expires subscribers that stop
// refreshing. All per-listener state therefore lives in the relay, is
// soft, and is bounded.
//
// The fan-out path is sharded and batched: subscribers hash onto
// shards, each shard has its own worker task, lock, and (when a Network
// is configured) its own send socket, and every subscriber owns a
// bounded packet queue with drop-oldest backpressure — a slow or dead
// unicast path cannot stall the multicast receive loop or other
// subscribers. An upstream packet is parsed once and the same buffer is
// enqueued to every subscriber by reference; the workers drain queues
// round-robin into lan.Datagram batches and flush them with one
// WriteBatch call (sendmmsg on Linux) when the batch fills, when a
// partial batch has lingered for the flush interval, or when the relay
// quiesces. See docs/RELAY-OPS.md for the operator view.
package relay
