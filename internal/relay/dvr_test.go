package relay

import (
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/lan"
	"repro/internal/proto"
)

// shiftSubPkt builds an inbound subscribe packet asking for ShiftMs of
// history.
func shiftSubPkt(t *testing.T, from lan.Addr, channel, seq, leaseMs, shiftMs uint32) lan.Packet {
	t.Helper()
	data, err := (&proto.Subscribe{
		Channel: channel, Seq: seq, LeaseMs: leaseMs, ShiftMs: shiftMs,
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return lan.Packet{From: from, To: "10.0.0.1:5006", Data: data}
}

// feedStream injects seconds worth of upstream traffic — one Control
// per second, data at 100 ms spacing — through the relay's normal
// receive path, advancing the sim clock as it goes. Must run inside a
// sim goroutine.
func feedStream(t *testing.T, r *Relay, ch uint32, seconds int) {
	t.Helper()
	sim := r.clock
	seq := uint64(1)
	for s := 0; s < seconds; s++ {
		r.handlePacket(lan.Packet{From: "10.0.9.9:5004", To: testGroup, Data: controlPkt(t, ch, 1)})
		for i := 0; i < 10; i++ {
			r.handlePacket(lan.Packet{From: "10.0.9.9:5004", To: testGroup, Data: dataPkt(t, ch, 1, seq, 320)})
			seq++
			sim.Sleep(100 * time.Millisecond)
		}
	}
}

// drainCatchup drives the shard worker's DVR gather by hand (no worker
// runs in white-box tests) until the subscriber converges on live or
// the pass budget runs out. Must run inside a sim goroutine so token
// refills see time move.
func drainCatchup(t *testing.T, r *Relay, addr lan.Addr, passes int) (served int) {
	t.Helper()
	sh := r.shardFor(addr)
	for i := 0; i < passes; i++ {
		var dgs []lan.Datagram
		var owners []*subscriber
		var profs []codec.Profile
		sh.mu.Lock()
		r.gatherCatchup(sh, &dgs, &owners, &profs, 32)
		done := !sh.subs[addr].catchup
		sh.mu.Unlock()
		served += len(dgs)
		if done {
			return served
		}
		r.clock.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("catch-up did not converge in %d passes (%d served)", passes, served)
	return served
}

// TestDVRShiftGrantAndClamp covers the grant-time edges: a shift asked
// of a channel with nothing recorded starts live and is counted as
// clamped; a shift deeper than the recorded history is clamped to the
// oldest entry; a shift the ring can satisfy is granted at least what
// was asked (the control walk-back may grant slightly more).
func TestDVRShiftGrantAndClamp(t *testing.T) {
	sim, _, r := newTestRelay(t, Config{Channel: 1, DVR: true, DVRDepth: 4 * time.Second})
	sim.Go("test", func() {
		// Nothing recorded yet: live grant, clamp counted.
		r.handleSubscribe(shiftSubPkt(t, "10.0.0.2:5004", 1, 1, 60_000, 9_000))
		subs := r.Subscribers()
		if len(subs) != 1 || subs[0].Shift != 0 || subs[0].CatchingUp {
			t.Errorf("quiet-channel grant = %+v, want live with zero shift", subs)
		}
		if st := r.Stats(); st.DVRClamped != 1 {
			t.Errorf("DVRClamped = %d, want 1", st.DVRClamped)
		}

		feedStream(t, r, 1, 2) // 2 s recorded, depth 4 s

		// Deeper than what exists: clamped to the oldest entry.
		r.handleSubscribe(shiftSubPkt(t, "10.0.0.3:5004", 1, 1, 60_000, 60_000))
		subs = r.Subscribers()
		if len(subs) != 2 {
			t.Fatalf("subscribers = %d", len(subs))
		}
		deep := subs[1]
		if !deep.CatchingUp || deep.Shift <= 0 || deep.Shift > 4*time.Second {
			t.Errorf("deep shift granted %v catching-up=%v, want clamp within recorded history",
				deep.Shift, deep.CatchingUp)
		}
		if st := r.Stats(); st.DVRClamped != 2 {
			t.Errorf("DVRClamped = %d, want 2", st.DVRClamped)
		}

		// Satisfiable: granted at least the ask, no clamp.
		r.handleSubscribe(shiftSubPkt(t, "10.0.0.4:5004", 1, 1, 60_000, 1_000))
		subs = r.Subscribers()
		ok := subs[2]
		if !ok.CatchingUp || ok.Shift < time.Second {
			t.Errorf("1s shift granted %v catching-up=%v", ok.Shift, ok.CatchingUp)
		}
		if st := r.Stats(); st.DVRClamped != 2 {
			t.Errorf("DVRClamped = %d after satisfiable grant, want still 2", st.DVRClamped)
		}
		if st := r.Stats(); st.DVRCatchupActive != 2 {
			t.Errorf("DVRCatchupActive = %d, want 2", st.DVRCatchupActive)
		}
	})
	sim.WaitIdle()
}

// TestDVRRingWrapMidCatchupEvicts parks a catch-up cursor, lets the
// ring age past it, and checks the worker's response: the cursor is
// re-clamped to the oldest surviving entry (counted as an eviction),
// the remaining backlog is served, and the subscriber converges — the
// recording path is never blocked by a slow reader.
func TestDVRRingWrapMidCatchupEvicts(t *testing.T) {
	sim, _, r := newTestRelay(t, Config{Channel: 1, DVR: true, DVRDepth: time.Second, DVRBurst: 1000})
	sim.Go("test", func() {
		// Half a second of history, then a catch-up cursor into it.
		r.handlePacket(lan.Packet{From: "10.0.9.9:5004", To: testGroup, Data: controlPkt(t, 1, 1)})
		for i := uint64(1); i <= 5; i++ {
			r.handlePacket(lan.Packet{From: "10.0.9.9:5004", To: testGroup, Data: dataPkt(t, 1, 1, i, 320)})
			sim.Sleep(100 * time.Millisecond)
		}
		r.handleSubscribe(shiftSubPkt(t, "10.0.0.2:5004", 1, 1, 60_000, 500))
		if subs := r.Subscribers(); len(subs) != 1 || !subs[0].CatchingUp {
			t.Fatalf("subscriber not catching up: %+v", subs)
		}

		// The subscriber reads nothing while the stream keeps going for
		// well past the 1 s depth: its cursor's entries age out.
		sim.Sleep(1500 * time.Millisecond)
		r.handlePacket(lan.Packet{From: "10.0.9.9:5004", To: testGroup, Data: controlPkt(t, 1, 1)})
		for i := uint64(6); i <= 10; i++ {
			r.handlePacket(lan.Packet{From: "10.0.9.9:5004", To: testGroup, Data: dataPkt(t, 1, 1, i, 320)})
		}

		served := drainCatchup(t, r, "10.0.0.2:5004", 100)
		st := r.Stats()
		if st.DVREvictions != 1 {
			t.Errorf("DVREvictions = %d, want 1", st.DVREvictions)
		}
		// Everything older than the depth was trimmed by the appends
		// above, so exactly the surviving control + 5 data remain.
		if served != 6 || st.DVRBacklog != 6 {
			t.Errorf("served = %d, DVRBacklog = %d, want 6 each", served, st.DVRBacklog)
		}
		if st.DVRCatchupActive != 0 {
			t.Errorf("DVRCatchupActive = %d after convergence, want 0", st.DVRCatchupActive)
		}
		if subs := r.Subscribers(); subs[0].CatchingUp {
			t.Error("subscriber still marked catching-up after convergence")
		}
	})
	sim.WaitIdle()
}

// TestDVRCatchupNeverBlocksWorker starves a catch-up subscriber's
// token bucket and checks the gather degrades to a bounded wait hint —
// not a block — while live fan-out to other subscribers on the shard
// keeps flowing.
func TestDVRCatchupNeverBlocksWorker(t *testing.T) {
	sim, _, r := newTestRelay(t, Config{Channel: 1, DVR: true, DVRBurst: 1, Shards: 1, QueueLen: 16})
	sim.Go("test", func() {
		feedStream(t, r, 1, 1)
		r.handleSubscribe(shiftSubPkt(t, "10.0.0.2:5004", 1, 1, 60_000, 1_000))
		r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 1, 1, 60_000))

		sh := r.shardFor("10.0.0.2:5004")
		gather := func() (int, time.Duration) {
			var dgs []lan.Datagram
			var owners []*subscriber
			var profs []codec.Profile
			sh.mu.Lock()
			defer sh.mu.Unlock()
			_, wait := r.gatherCatchup(sh, &dgs, &owners, &profs, 32)
			return len(dgs), wait
		}
		// First pass spends the single seed token; the second must not
		// serve, must not block, and must hand back a refill delay.
		if n, _ := gather(); n != 1 {
			t.Fatalf("first pass served %d, want 1", n)
		}
		n, wait := gather()
		if n != 0 || wait <= 0 || wait > time.Second {
			t.Fatalf("starved pass served %d with wait %v, want 0 served and a bounded refill hint", n, wait)
		}

		// Live traffic still reaches the live subscriber and skips the
		// catching-up one.
		r.fanout(1, dataPkt(t, 1, 1, 100, 320))
		subs := r.Subscribers()
		var live, dvr SubscriberInfo
		for _, s := range subs {
			if s.Addr == "10.0.0.3:5004" {
				live = s
			} else {
				dvr = s
			}
		}
		if live.Queued != 1 {
			t.Errorf("live subscriber queued = %d, want 1", live.Queued)
		}
		if dvr.Queued != 0 {
			t.Errorf("catching-up subscriber queued = %d, want 0 (fanout must skip it)", dvr.Queued)
		}
	})
	sim.WaitIdle()
}

// TestDVRPauseAcrossLeaseRefresh pauses a catching-up subscriber,
// refreshes its lease while paused, and resumes: the pause must
// survive the refresh (no delivery restarts behind the listener's
// back), the refresh ack must echo the originally granted shift, and
// resume must pick the replay up where it parked.
func TestDVRPauseAcrossLeaseRefresh(t *testing.T) {
	sim, seg, r := newTestRelay(t, Config{Channel: 1, DVR: true, DVRDepth: 10 * time.Second})
	cc, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	recvAck := func() *proto.SubAck {
		t.Helper()
		pkt, err := cc.Recv(time.Second)
		if err != nil {
			t.Fatalf("no ack: %v", err)
		}
		ack, err := proto.UnmarshalSubAck(pkt.Data)
		if err != nil {
			t.Fatalf("bad ack: %v", err)
		}
		return ack
	}
	sim.Go("test", func() {
		defer cc.Close()
		feedStream(t, r, 1, 6)

		r.handleSubscribe(shiftSubPkt(t, "10.0.0.2:5004", 1, 1, 60_000, 5_000))
		first := recvAck()
		if first.Status != proto.SubOK || first.ShiftMs < 5_000 {
			t.Errorf("grant ack = %+v, want OK with >= 5000 ms shift", first)
		}
		if st := r.Stats(); st.DVRClamped != 0 || st.DVRCatchupActive != 1 {
			t.Errorf("stats after grant = clamped %d active %d, want 0/1", st.DVRClamped, st.DVRCatchupActive)
		}

		pauseData, _ := (&proto.Pause{Channel: 1, Seq: 1, Paused: true}).Marshal()
		r.handlePacket(lan.Packet{From: "10.0.0.2:5004", To: "10.0.0.1:5006", Data: pauseData})
		if subs := r.Subscribers(); !subs[0].Paused {
			t.Fatalf("subscriber not paused: %+v", subs)
		}
		if st := r.Stats(); st.DVRCatchupActive != 0 {
			t.Errorf("DVRCatchupActive while paused = %d, want 0", st.DVRCatchupActive)
		}

		// Refresh mid-pause: lease extends, pause and shift survive.
		r.handleSubscribe(shiftSubPkt(t, "10.0.0.2:5004", 1, 2, 60_000, 5_000))
		refresh := recvAck()
		if refresh.ShiftMs != first.ShiftMs {
			t.Errorf("refresh ack shift = %d, want echo of granted %d", refresh.ShiftMs, first.ShiftMs)
		}
		subs := r.Subscribers()
		if !subs[0].Paused || !subs[0].CatchingUp {
			t.Errorf("after refresh paused=%v catching-up=%v, want both true", subs[0].Paused, subs[0].CatchingUp)
		}
		if st := r.Stats(); st.Refreshes != 1 {
			t.Errorf("refreshes = %d, want 1", st.Refreshes)
		}
		// Paused subscribers get nothing — not live, not backlog.
		r.fanout(1, dataPkt(t, 1, 1, 200, 320))
		if n := drainPasses(r, "10.0.0.2:5004"); n != 0 {
			t.Errorf("paused subscriber served %d backlog packets, want 0", n)
		}
		if subs := r.Subscribers(); subs[0].Queued != 0 {
			t.Errorf("paused subscriber queued = %d, want 0", subs[0].Queued)
		}

		resumeData, _ := (&proto.Pause{Channel: 1, Seq: 2, Paused: false}).Marshal()
		r.handlePacket(lan.Packet{From: "10.0.0.2:5004", To: "10.0.0.1:5006", Data: resumeData})
		if st := r.Stats(); st.DVRCatchupActive != 1 {
			t.Errorf("DVRCatchupActive after resume = %d, want 1", st.DVRCatchupActive)
		}
		served := drainCatchup(t, r, "10.0.0.2:5004", 400)
		if served == 0 {
			t.Error("resume replayed nothing; expected the parked backlog")
		}
	})
	sim.WaitIdle()
}

// TestDVRCatchupBatchBuffersDistinct is the regression test for the
// scratch-aliasing bug: the shard worker's gather loop calls
// gatherCatchup repeatedly before one flush, and whenever the token
// bucket held more than one token the second ring read reused
// sub.scratch in place — overwriting the bytes an earlier entry of the
// still-un-flushed batch referenced, so the subscriber received the
// same backlog packet twice instead of two consecutive ones. Every
// entry gathered into one batch must keep its own payload.
func TestDVRCatchupBatchBuffersDistinct(t *testing.T) {
	sim, _, r := newTestRelay(t, Config{Channel: 1, DVR: true, DVRDepth: 10 * time.Second, DVRBurst: 1000})
	sim.Go("test", func() {
		feedStream(t, r, 1, 2)
		r.handleSubscribe(shiftSubPkt(t, "10.0.0.2:5004", 1, 1, 60_000, 2_000))
		sh := r.shardFor("10.0.0.2:5004")

		// One un-flushed batch, gathered across several passes with time
		// moving in between — exactly the worker's inner loop while the
		// batch has room and tokens keep refilling.
		var dgs []lan.Datagram
		var owners []*subscriber
		var profs []codec.Profile
		for pass := 0; pass < 4; pass++ {
			sh.mu.Lock()
			r.gatherCatchup(sh, &dgs, &owners, &profs, 32)
			sh.mu.Unlock()
			sim.Sleep(20 * time.Millisecond)
		}
		if len(dgs) < 3 {
			t.Fatalf("gathered %d backlog packets, want >= 3 to exercise reuse", len(dgs))
		}

		// No two batch entries may share a backing array...
		buffers := make(map[*byte]int)
		for i := range dgs {
			p := &dgs[i].Data[0]
			if j, dup := buffers[p]; dup {
				t.Fatalf("batch entries %d and %d alias one buffer", j, i)
			}
			buffers[p] = i
		}
		// ...and the payloads must be the recorded stream in order: one
		// Control (the decodable replay start), then strictly ascending
		// Data seqs. Aliased buffers would parse as duplicated seqs.
		var lastSeq uint64
		for i := range dgs {
			typ, _, err := proto.PeekType(dgs[i].Data)
			if err != nil {
				t.Fatalf("entry %d unparseable: %v", i, err)
			}
			if typ != proto.TypeData {
				continue
			}
			d, err := proto.UnmarshalData(dgs[i].Data)
			if err != nil {
				t.Fatalf("entry %d: %v", i, err)
			}
			if d.Seq <= lastSeq {
				t.Fatalf("entry %d has seq %d after seq %d: backlog duplicated or reordered", i, d.Seq, lastSeq)
			}
			lastSeq = d.Seq
		}
	})
	sim.WaitIdle()
}

// TestPauseReplayAndWrongChannelIgnored covers the pause packet's
// freshness and addressing checks: a pause naming a channel the lease
// does not carry leaves it alone, a replayed (non-increasing seq)
// pause cannot re-park a subscriber that already resumed, and a
// wildcard-channel pause with a fresh seq still applies.
func TestPauseReplayAndWrongChannelIgnored(t *testing.T) {
	sim, _, r := newTestRelay(t, Config{Channel: 1, DVR: true, DVRDepth: 10 * time.Second})
	pauseAt := func(ch, seq uint32, paused bool) {
		data, err := (&proto.Pause{Channel: ch, Seq: seq, Paused: paused}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		r.handlePacket(lan.Packet{From: "10.0.0.2:5004", To: "10.0.0.1:5006", Data: data})
	}
	paused := func() bool {
		subs := r.Subscribers()
		if len(subs) != 1 {
			t.Fatalf("subscribers = %d, want 1", len(subs))
		}
		return subs[0].Paused
	}
	sim.Go("test", func() {
		feedStream(t, r, 1, 1)
		r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 1, 1, 60_000))

		// Addressed to a channel this lease does not carry: ignored.
		pauseAt(9, 1, true)
		if paused() {
			t.Fatal("pause for channel 9 parked a channel-1 lease")
		}

		// Park, then resume, both with fresh seqs.
		pauseAt(1, 2, true)
		if !paused() {
			t.Fatal("genuine pause did not park the subscriber")
		}
		pauseAt(1, 3, false)
		if paused() {
			t.Fatal("genuine resume did not unpark the subscriber")
		}

		// An on-path recorder replaying the captured seq-2 pause — it
		// verifies, it was once genuine — must not re-park the stream.
		pauseAt(1, 2, true)
		if paused() {
			t.Fatal("replayed pause re-parked the subscriber")
		}

		// A wildcard-channel pause with a fresh seq still applies.
		pauseAt(0, 4, true)
		if !paused() {
			t.Fatal("wildcard-channel pause with a fresh seq was ignored")
		}
	})
	sim.WaitIdle()
}

// drainPasses runs one DVR gather pass and reports how many packets it
// put in the batch. Caller must be on a sim goroutine.
func drainPasses(r *Relay, addr lan.Addr) int {
	sh := r.shardFor(addr)
	var dgs []lan.Datagram
	var owners []*subscriber
	var profs []codec.Profile
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r.gatherCatchup(sh, &dgs, &owners, &profs, 32)
	return len(dgs)
}
