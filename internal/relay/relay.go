package relay

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/relay/lease"
	"repro/internal/security"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Defaults.
const (
	// DefaultShards is the subscriber-table shard count.
	DefaultShards = 8
	// DefaultQueueLen bounds each subscriber's packet queue.
	DefaultQueueLen = 64
	// DefaultMaxSubscribers caps the whole subscriber table.
	DefaultMaxSubscribers = 1024
	// DefaultMaxLease caps any granted lease.
	DefaultMaxLease = 5 * time.Minute
	// MinLease is the smallest grantable lease; requests below it are
	// rounded up so refresh storms cannot be provoked. It mirrors the
	// floor the lease layer paces refreshes against.
	MinLease = lease.MinLease
	// DefaultSweepInterval is the lease-expiry scan cadence.
	DefaultSweepInterval = time.Second
	// DefaultUpstreamLease is the lease a chained relay requests from
	// its upstream relay.
	DefaultUpstreamLease = 15 * time.Second
	// DefaultMaxHops bounds a subscription path's relay depth: a
	// subscribe whose path already crossed this many relays is refused
	// with SubLoop. It is the backstop that breaks any cycle the path-id
	// check misses — around a loop the reported hop count grows with
	// every refresh until it trips this limit.
	DefaultMaxHops = 8
	// DefaultBatch is the fan-out batch size: how many datagrams a shard
	// worker accumulates before one WriteBatch flush.
	DefaultBatch = 32
	// DefaultFlushInterval bounds how long a partial batch may linger
	// before it is flushed anyway; it is pure added latency for the
	// packets in the batch, so it stays well inside the speakers'
	// synchronization epsilon.
	DefaultFlushInterval = 2 * time.Millisecond
	// recvTimeout bounds how long Run waits for any packet before
	// re-checking liveness.
	recvTimeout = 5 * time.Second
)

// Config parameterizes a relay.
type Config struct {
	// Group is the multicast group to join and relay. Required unless
	// Upstream is set.
	Group lan.Addr
	// Upstream chains this relay behind another relay: instead of
	// joining a multicast group it subscribes to the upstream relay's
	// unicast address (reusing the speaker's lease logic) and fans the
	// received stream out to its own subscribers, composing bridges
	// across network segments the way TURN relays compose allocations.
	// Exactly one of Group and Upstream must be set.
	Upstream lan.Addr
	// UpstreamLease overrides DefaultUpstreamLease.
	UpstreamLease time.Duration
	// MaxHops overrides DefaultMaxHops.
	MaxHops int
	// Channel restricts the relay to one channel id; 0 relays whatever
	// the group carries and accepts any requested channel.
	Channel uint32
	// Shards overrides DefaultShards.
	Shards int
	// QueueLen overrides DefaultQueueLen (packets per subscriber).
	QueueLen int
	// MaxSubscribers overrides DefaultMaxSubscribers.
	MaxSubscribers int
	// MaxLease overrides DefaultMaxLease.
	MaxLease time.Duration
	// SweepInterval overrides DefaultSweepInterval.
	SweepInterval time.Duration
	// Batch overrides DefaultBatch. 1 disables batching: every datagram
	// is its own send call (the pre-batching baseline, kept for
	// comparison benchmarks).
	Batch int
	// FlushInterval overrides DefaultFlushInterval.
	FlushInterval time.Duration
	// Network, when set, gives every shard its own send socket attached
	// at an ephemeral port, so shard workers never serialize on one
	// socket's lock and each can batch independently. When nil all
	// shards send through the relay's main connection.
	Network lan.Network
	// Auth, when set, authenticates the relay control plane (§5.1
	// applied to the one path that creates forwarding state): every
	// inbound Subscribe must verify before it can touch the lease table
	// — failures are dropped silently, without a SubAck, so a forged
	// request from a spoofed source draws zero reply traffic and the
	// relay cannot be grown into a reflection amplifier — and every
	// outbound SubAck is signed so subscribers can trust the granted
	// lease. A chained relay uses the same authenticator for its own
	// upstream lease (signing its subscribes, verifying the upstream's
	// grants), so one shared key secures a whole chain. The
	// authenticator must be safe for concurrent use (the HMAC scheme
	// is; one-way stream signers are not).
	Auth security.Authenticator
	// TraceSample sets the packet tracer's 1-in-N sampling rate for
	// send events (drop events always hit the exact reason counters;
	// sampling only thins the event ring). 0 uses obs.DefaultTraceSample;
	// 1 records everything — the setting experiments use to assert on
	// individual drop events.
	TraceSample int
	// TraceRing overrides obs.DefaultTraceRing, the event ring length.
	TraceRing int
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.QueueLen <= 0 {
		c.QueueLen = DefaultQueueLen
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = DefaultMaxSubscribers
	}
	if c.MaxLease <= 0 {
		c.MaxLease = DefaultMaxLease
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = DefaultSweepInterval
	}
	if c.Batch <= 0 {
		c.Batch = DefaultBatch
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	if c.UpstreamLease <= 0 {
		c.UpstreamLease = DefaultUpstreamLease
	}
	if c.MaxHops <= 0 {
		c.MaxHops = DefaultMaxHops
	}
	if c.MaxHops > 255 {
		// Propagated hop counts saturate at 255 on the wire; a larger
		// limit would never trip and silently disable the loop backstop.
		c.MaxHops = 255
	}
}

// Stats is the relay's cumulative accounting. The `mib` and `help`
// tags drive registration everywhere a counter is exported — the mgmt
// MIB (mgmt.StatsVars) and the obs registry (obs.StructCounters) — so
// a new field is published on every surface by adding it here, and the
// coverage test in internal/mgmt fails if a field lacks its tag.
type Stats struct {
	UpstreamControl int64 `mib:"es.relay.upstream.control" help:"control packets taken off the group"`
	UpstreamData    int64 `mib:"es.relay.upstream.data" help:"data packets taken off the group"`
	UpstreamForeign int64 `mib:"es.relay.upstream.foreign" help:"packets refused as not-from-the-group (injection attempts) or for a foreign channel"`
	Malformed       int64 `mib:"es.relay.malformed" help:"unparseable packets (any direction)"`
	Subscribes      int64 `mib:"es.relay.subscribes" help:"new subscriptions granted"`
	Refreshes       int64 `mib:"es.relay.refreshes" help:"lease refreshes"`
	Unsubscribes    int64 `mib:"es.relay.unsubscribes" help:"explicit lease cancellations"`
	Expired         int64 `mib:"es.relay.expired" help:"leases expired for silence"`
	Rejected        int64 `mib:"es.relay.rejected" help:"refused subscribe requests"`
	Loops           int64 `mib:"es.relay.loops" help:"subscribes refused with SubLoop (path revisits or too deep)"`
	AuthDropped     int64 `mib:"es.relay.auth.dropped" help:"subscribes dropped by control-plane verification (forged or unsigned; no SubAck sent)"`
	FanoutSent      int64 `mib:"es.relay.fanout.sent" help:"unicast packets delivered"`
	FanoutDropped   int64 `mib:"es.relay.fanout.dropped" help:"packets dropped by queue backpressure"`
	SendErrors      int64 `mib:"es.relay.senderrors" help:"unicast send failures"`

	// Chaining telemetry (nonzero only with Config.Upstream set): the
	// relay's own lease against its upstream relay.
	UpstreamSubscribes  int64 `mib:"es.relay.upstream.subscribes" help:"lease packets sent to the upstream relay"`
	UpstreamAcks        int64 `mib:"es.relay.upstream.acks" help:"lease acks received from the upstream relay"`
	UpstreamRefused     int64 `mib:"es.relay.upstream.refused" help:"upstream lease refusals (loop, table full, channel)"`
	UpstreamStaleAcks   int64 `mib:"es.relay.upstream.stale" help:"upstream acks ignored as stale or foreign"`
	UpstreamAuthDropped int64 `mib:"es.relay.upstream.auth.dropped" help:"upstream acks dropped by verification"`

	// Batching telemetry: Batches counts WriteBatch flushes, split by
	// what triggered them. FanoutSent / Batches is the achieved batch
	// size — the syscall amortization factor on a real network.
	Batches       int64 `mib:"es.relay.fanout.batches" help:"WriteBatch flushes issued"`
	FlushSize     int64 `mib:"es.relay.fanout.flush.size" help:"flushes triggered by a full batch"`
	FlushDeadline int64 `mib:"es.relay.fanout.flush.deadline" help:"partial batches flushed on the flush interval"`
	FlushQuiesce  int64 `mib:"es.relay.fanout.flush.quiesce" help:"partial batches flushed at shutdown"`
}

// SubscriberInfo is one subscriber's public accounting snapshot.
type SubscriberInfo struct {
	Addr    lan.Addr
	Channel uint32
	Hops    uint8 // relay hops behind this subscriber (0 = a speaker)
	Sent    int64 // unicast packets sent
	Dropped int64 // packets dropped by this subscriber's queue
	Queued  int   // packets currently queued
	Expires time.Time
}

// queued is one packet waiting in a subscriber queue, stamped with its
// enqueue time so the worker can observe queue residency — the latency
// the relay itself adds to the stream — when it gathers the packet.
// The stamp is wall clock, not the relay's vclock: residency measures
// the process, and the simulated clock would report it as zero.
type queued struct {
	data []byte
	at   time.Time
}

// subscriber is one leased unicast destination.
type subscriber struct {
	addr    lan.Addr
	channel uint32
	hops    uint8  // relay depth behind this subscriber (speakers: 0)
	pathID  uint64 // path origin carried by its subscribe (speakers: 0)
	expires time.Time
	queue   []queued // bounded FIFO; head is oldest
	sent    int64
	dropped int64
}

// shard is one slice of the subscriber table with its own fan-out
// worker and, when Config.Network is set, its own send socket.
type shard struct {
	conn    lan.Conn // send path: shard-owned socket or the shared conn
	ownConn bool     // conn was attached by us and must be closed on Stop

	mu      sync.Mutex
	work    vclock.Cond // signaled when any queue becomes non-empty
	subs    map[lan.Addr]*subscriber
	order   []*subscriber // insertion order, for deterministic fan-out
	stopped bool

	// Per-shard pressure accounting (satellite to the lumped Stats
	// totals): a hot shard shows up here before it shows up anywhere.
	sent      int64 // unicast packets this shard's worker delivered
	dropped   int64 // packets its queues dropped (drop-oldest)
	queued    int   // packets currently queued across its subscribers
	maxQueued int   // high-water mark of queued
}

// remove drops sub from the shard; caller holds sh.mu.
func (sh *shard) remove(sub *subscriber) {
	delete(sh.subs, sub.addr)
	for i, s := range sh.order {
		if s == sub {
			sh.order = append(sh.order[:i], sh.order[i+1:]...)
			break
		}
	}
	sh.queued -= len(sub.queue)
	sub.queue = nil
}

// ShardStats is one shard's pressure snapshot.
type ShardStats struct {
	Shard       int   `json:"shard"`
	Subscribers int   `json:"subscribers"`
	Queued      int   `json:"queued"`     // packets waiting right now
	MaxQueued   int   `json:"max_queued"` // high-water mark
	Sent        int64 `json:"sent"`
	Dropped     int64 `json:"dropped"`
}

// Relay bridges one multicast group (or, chained, another relay) to
// unicast subscribers.
type Relay struct {
	clock   vclock.Clock
	conn    lan.Conn
	cfg     Config
	shards  []*shard
	relayID uint64 // this relay's path identity (loop detection)
	// upstreamHost gates chained-mode fan-in: data is accepted from any
	// port on the upstream relay's host, because an upstream running
	// per-shard send sockets emits data from ephemeral ports.
	upstreamHost string
	up           *lease.Subscriber // lease against cfg.Upstream (nil otherwise)

	// Hot-path instruments (see internal/obs): wall-clock histograms
	// and the sampled packet tracer. Always present — recording is a
	// few atomic adds, cheap enough to leave compiled in.
	flushLatency   *obs.Histogram // WriteBatch flush duration
	queueResidency *obs.Histogram // enqueue→gather time per packet
	upRTT          *obs.Histogram // upstream Subscribe→SubAck RTT (chained)
	leaseMargin    *obs.Histogram // upstream refresh margin (chained)
	tracer         *obs.Tracer

	mu          sync.Mutex
	stats       Stats
	nsubs       int
	running     bool // Run spawned the shard workers
	stopped     bool
	workersDone int         // workers that have flushed and exited
	workersIdle vclock.Cond // signaled as each worker exits
}

// New creates a relay that receives cfg.Group via conn — or, with
// cfg.Upstream set, subscribes to that relay instead — and serves
// subscribe requests arriving on conn's unicast address. With
// cfg.Network set, each shard additionally attaches its own
// ephemeral-port send socket.
func New(clock vclock.Clock, conn lan.Conn, cfg Config) (*Relay, error) {
	cfg.applyDefaults()
	switch {
	case cfg.Upstream != "":
		if cfg.Group != "" {
			return nil, fmt.Errorf("relay: configure Group or Upstream, not both")
		}
		if err := cfg.Upstream.Validate(); err != nil {
			return nil, fmt.Errorf("relay: upstream: %w", err)
		}
		if cfg.Upstream.IsMulticast() {
			return nil, fmt.Errorf("relay: upstream %q is multicast; set Group to join a group directly", cfg.Upstream)
		}
	case !cfg.Group.IsMulticast():
		return nil, fmt.Errorf("relay: group %q is not multicast", cfg.Group)
	default:
		if err := conn.Join(cfg.Group); err != nil {
			return nil, fmt.Errorf("relay: joining %q: %w", cfg.Group, err)
		}
	}
	r := &Relay{clock: clock, conn: conn, cfg: cfg}
	r.relayID = newPathID(conn.LocalAddr())
	r.flushLatency = obs.NewHistogram("es_relay_flush_latency_seconds",
		"WriteBatch flush duration, gather to syscall return", nil)
	r.queueResidency = obs.NewHistogram("es_relay_queue_residency_seconds",
		"time a packet waits in a subscriber queue before its worker gathers it", nil)
	r.upRTT = obs.NewHistogram("es_relay_upstream_rtt_seconds",
		"upstream Subscribe→SubAck round trip (chained relays only)", nil)
	r.leaseMargin = obs.NewHistogram("es_relay_lease_margin_seconds",
		"upstream lease time remaining at each refresh (chained relays only)", nil)
	r.tracer = obs.NewTracer(cfg.TraceSample, cfg.TraceRing)
	if cfg.Upstream != "" {
		r.upstreamHost = cfg.Upstream.Host()
		r.up = lease.New(clock, conn, "relay-upstream-"+string(conn.LocalAddr()))
		r.up.SetPath(r.pathInfo)
		// One shared authenticator secures the whole chain: this relay
		// signs its upstream subscribes and verifies the upstream's
		// grants with the same scheme it demands of its own subscribers.
		r.up.SetAuth(cfg.Auth)
		r.up.SetInstruments(r.upRTT, r.leaseMargin)
	}
	r.workersIdle = clock.NewCond()
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{conn: conn, subs: make(map[lan.Addr]*subscriber)}
		sh.work = clock.NewCond()
		if cfg.Network != nil {
			sc, err := cfg.Network.Attach(lan.Addr(
				net.JoinHostPort(conn.LocalAddr().Host(), "0")))
			if err != nil {
				for _, prev := range r.shards {
					if prev.ownConn {
						prev.conn.Close()
					}
				}
				return nil, fmt.Errorf("relay: attaching shard %d socket: %w", i, err)
			}
			sh.conn, sh.ownConn = sc, true
		}
		r.shards = append(r.shards, sh)
	}
	return r, nil
}

// Addr returns the unicast address subscribers talk to.
func (r *Relay) Addr() lan.Addr { return r.conn.LocalAddr() }

// Group returns the multicast group being relayed (empty for a chained
// relay; see Upstream).
func (r *Relay) Group() lan.Addr { return r.cfg.Group }

// Upstream returns the relay this one is chained behind ("" if it
// joins a multicast group directly).
func (r *Relay) Upstream() lan.Addr { return r.cfg.Upstream }

// PathID returns this relay's loop-detection identity: the value a
// subscription path must not carry back to it.
func (r *Relay) PathID() uint64 { return r.relayID }

// Source returns the stream source: the multicast group, or the
// upstream relay for a chained relay.
func (r *Relay) Source() lan.Addr {
	if r.cfg.Upstream != "" {
		return r.cfg.Upstream
	}
	return r.cfg.Group
}

// Info returns the relay's catalog record (§4.3 discovery): where to
// lease from, what it relays, and any channel restriction.
func (r *Relay) Info() proto.RelayInfo {
	return proto.RelayInfo{
		Addr:    string(r.Addr()),
		Group:   string(r.Source()),
		Channel: r.cfg.Channel,
	}
}

// newPathID mints a relay's 64-bit path identity. It must be unique
// per relay *instance*, never per configuration: real daemons all bind
// the same wildcard "0.0.0.0:5006" by default, so anything derived
// from the local address would give every relay the same identity and
// make straight chains refuse themselves as loops. Randomness is all
// loop detection needs — stability across restarts is not required,
// because path state is re-propagated on every refresh.
func newPathID(addr lan.Addr) uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id // 0 means "no path" on the wire
		}
	}
	// Entropy unavailable (or the 1-in-2^64 zero): fall back to an
	// FNV-1a hash of the bind address — weaker, but never zero.
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Stats returns a snapshot of the accounting, folding in the upstream
// lease counters for a chained relay.
func (r *Relay) Stats() Stats {
	r.mu.Lock()
	st := r.stats
	r.mu.Unlock()
	if r.up != nil {
		ls := r.up.Stats()
		st.UpstreamSubscribes = ls.Subscribes
		st.UpstreamAcks = ls.Acks
		st.UpstreamRefused = ls.Refusals
		st.UpstreamStaleAcks = ls.Stale
		st.UpstreamAuthDropped = ls.AuthDropped
	}
	return st
}

// NumSubscribers returns the current subscriber count.
func (r *Relay) NumSubscribers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nsubs
}

// ShardStats returns every shard's pressure snapshot, in shard order.
func (r *Relay) ShardStats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.Lock()
		out[i] = ShardStats{
			Shard:       i,
			Subscribers: len(sh.order),
			Queued:      sh.queued,
			MaxQueued:   sh.maxQueued,
			Sent:        sh.sent,
			Dropped:     sh.dropped,
		}
		sh.mu.Unlock()
	}
	return out
}

// Instruments exposes the relay's hot-path histograms and tracer, for
// registration (RegisterObs) and for benchmarks that fold latency
// percentiles into their reported results.
type Instruments struct {
	FlushLatency   *obs.Histogram
	QueueResidency *obs.Histogram
	UpstreamRTT    *obs.Histogram
	LeaseMargin    *obs.Histogram
	Tracer         *obs.Tracer
}

// Instruments returns the live instruments (never nil).
func (r *Relay) Instruments() Instruments {
	return Instruments{
		FlushLatency:   r.flushLatency,
		QueueResidency: r.queueResidency,
		UpstreamRTT:    r.upRTT,
		LeaseMargin:    r.leaseMargin,
		Tracer:         r.tracer,
	}
}

// shardFor hashes a subscriber address onto its shard (FNV-1a).
func (r *Relay) shardFor(addr lan.Addr) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return r.shards[h%uint64(len(r.shards))]
}

// Subscribers returns every subscriber's snapshot, sorted by address.
func (r *Relay) Subscribers() []SubscriberInfo {
	var out []SubscriberInfo
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, sub := range sh.order {
			out = append(out, SubscriberInfo{
				Addr:    sub.addr,
				Channel: sub.channel,
				Hops:    sub.hops,
				Sent:    sub.sent,
				Dropped: sub.dropped,
				Queued:  len(sub.queue),
				Expires: sub.expires,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Table renders the per-subscriber counters as a stats table — the
// relay's operator surface (cmd/relayd prints it periodically).
func (r *Relay) Table() *stats.Table {
	st := r.Stats()
	t := &stats.Table{
		Title: fmt.Sprintf("relay %s -> %d subscriber(s); upstream %d ctl + %d data, fanout %d sent / %d dropped in %d batches",
			r.Source(), r.NumSubscribers(), st.UpstreamControl, st.UpstreamData,
			st.FanoutSent, st.FanoutDropped, st.Batches),
		Headers: []string{"subscriber", "channel", "hops", "sent", "dropped", "queued", "lease-left"},
	}
	now := r.clock.Now()
	for _, s := range r.Subscribers() {
		t.AddRow(string(s.Addr), fmt.Sprint(s.Channel), int(s.Hops), s.Sent,
			s.Dropped, s.Queued, s.Expires.Sub(now).Round(time.Millisecond))
	}
	return t
}

// Stop shuts the relay down; Run and the shard workers return. The
// workers flush their partial batches on the way out (the quiesce
// trigger), so Stop waits for them before closing any socket — closing
// first would turn the final flush into send errors.
func (r *Relay) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	running := r.running
	r.mu.Unlock()
	if r.up != nil {
		// Release the upstream lease while our socket still works; if
		// the cancel is lost the upstream expires us after one lease.
		r.up.Cancel()
		r.up.Close()
	}
	for _, sh := range r.shards {
		sh.mu.Lock()
		sh.stopped = true
		sh.work.Broadcast()
		sh.mu.Unlock()
	}
	if running {
		r.mu.Lock()
		for r.workersDone < len(r.shards) {
			r.workersIdle.Wait(&r.mu)
		}
		r.mu.Unlock()
	} else {
		for _, sh := range r.shards {
			if sh.ownConn {
				sh.conn.Close() // no worker exists to do it
			}
		}
	}
	r.conn.Close()
}

// isStopped reports whether Stop was called.
func (r *Relay) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// Run receives and relays until Stop. Spawn it via clock.Go; it spawns
// the shard workers and the lease sweeper itself, and — chained —
// opens the upstream subscription.
func (r *Relay) Run() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.running = true
	r.mu.Unlock()
	for i, sh := range r.shards {
		sh := sh
		r.clock.Go(fmt.Sprintf("relay-shard-%d", i), func() { r.shardWorker(sh) })
	}
	r.clock.Go("relay-sweep", r.sweep)
	if r.up != nil {
		r.up.Subscribe(r.cfg.Upstream, r.cfg.Channel, r.cfg.UpstreamLease)
	}
	defer r.Stop() // conn closed externally: unblock the workers too
	for {
		pkt, err := r.conn.Recv(recvTimeout)
		if err == lan.ErrTimeout {
			if r.isStopped() {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		r.handlePacket(pkt)
	}
}

// Inject processes pkt as if it had arrived on the relay's connection.
// It exists for the experiments and tests that need a forged source
// address (real UDP source spoofing — the attack the control-plane auth
// closes), which the simulated segment cannot produce: its Send always
// stamps the sender's true address.
func (r *Relay) Inject(pkt lan.Packet) { r.handlePacket(pkt) }

// handlePacket classifies one received datagram.
func (r *Relay) handlePacket(pkt lan.Packet) {
	t, ch, err := proto.PeekType(pkt.Data)
	if err != nil {
		r.mu.Lock()
		r.stats.Malformed++
		r.mu.Unlock()
		r.tracer.Drop(obs.PathUpstream, obs.ReasonMalformed, string(pkt.From), 0)
		return
	}
	switch t {
	case proto.TypeSubscribe:
		r.handleSubscribe(pkt)
	case proto.TypeControl, proto.TypeData:
		r.mu.Lock()
		// Only packets from the configured source are relayed: off the
		// multicast group, or — chained — from the upstream relay's
		// host (any port: an upstream running per-shard send sockets
		// emits data from ephemeral ports). Without this check, anyone
		// who can reach the relay's unicast address could inject one
		// forged data packet and have it amplified to every subscriber.
		if r.upstreamHost != "" {
			if pkt.From.Host() != r.upstreamHost {
				r.stats.UpstreamForeign++
				r.mu.Unlock()
				r.tracer.Drop(obs.PathUpstream, obs.ReasonForeign, string(pkt.From), ch)
				return
			}
		} else if pkt.To != r.cfg.Group {
			r.stats.UpstreamForeign++
			r.mu.Unlock()
			r.tracer.Drop(obs.PathUpstream, obs.ReasonForeign, string(pkt.From), ch)
			return
		}
		if r.cfg.Channel != 0 && ch != r.cfg.Channel {
			r.stats.UpstreamForeign++
			r.mu.Unlock()
			r.tracer.Drop(obs.PathUpstream, obs.ReasonChannelFilter, string(pkt.From), ch)
			return
		}
		if t == proto.TypeControl {
			r.stats.UpstreamControl++
		} else {
			r.stats.UpstreamData++
		}
		r.mu.Unlock()
		r.fanout(ch, pkt.Data)
	case proto.TypeSubAck:
		// Chained: our upstream answering our own lease. The lease layer
		// verifies the grant (when the chain is authenticated) and
		// rejects stale or foreign acks before re-pacing on it.
		if r.up != nil && pkt.From == r.cfg.Upstream {
			r.up.HandleAckData(pkt.From, pkt.Data)
		}
	default:
		// Announce traffic is not ours to forward.
	}
}

// handleSubscribe grants, refreshes, or cancels one lease and replies.
// With Config.Auth set, the request must verify before it can touch the
// lease table, and a failure draws no reply at all: a SubAck to an
// unverified source would let a spoofed Subscribe reflect traffic at a
// victim, which is exactly the amplifier shape the auth exists to
// close.
func (r *Relay) handleSubscribe(pkt lan.Packet) {
	data := pkt.Data
	if r.cfg.Auth != nil {
		inner, ok := r.cfg.Auth.Verify(data)
		if !ok {
			r.count(func(s *Stats) { s.AuthDropped++ })
			r.tracer.Drop(obs.PathControl, obs.ReasonAuth, string(pkt.From), 0)
			return
		}
		data = inner
	}
	req, err := proto.UnmarshalSubscribe(data)
	if err != nil {
		r.mu.Lock()
		r.stats.Malformed++
		r.mu.Unlock()
		r.tracer.Drop(obs.PathControl, obs.ReasonMalformed, string(pkt.From), 0)
		return
	}
	ack := proto.SubAck{Channel: req.Channel, Seq: req.Seq, Status: proto.SubOK}
	switch {
	case r.cfg.Channel != 0 && req.Channel != 0 && req.Channel != r.cfg.Channel:
		ack.Status = proto.SubNoChannel
		r.count(func(s *Stats) { s.Rejected++ })
		r.tracer.Drop(obs.PathControl, obs.ReasonChannelFilter, string(pkt.From), req.Channel)
	case req.PathID == r.relayID || int(req.Hops) >= r.cfg.MaxHops:
		// The subscription path already crossed this relay (its own id
		// came back) or is deeper than any sane chain: granting would
		// close a forwarding cycle. Refuse, and drop any lease the
		// subscriber already holds — a refresh is how an established
		// loop announces itself, and expiry alone would keep the cycle
		// spinning for a full lease.
		ack.Status = proto.SubLoop
		r.unsubscribe(pkt.From)
		r.count(func(s *Stats) { s.Rejected++; s.Loops++ })
		r.tracer.Drop(obs.PathControl, obs.ReasonLoop, string(pkt.From), req.Channel)
	case req.LeaseMs == 0:
		r.unsubscribe(pkt.From)
	default:
		lease := time.Duration(req.LeaseMs) * time.Millisecond
		if lease < MinLease {
			lease = MinLease
		}
		if lease > r.cfg.MaxLease {
			lease = r.cfg.MaxLease
		}
		if r.subscribe(pkt.From, req, lease) {
			ack.LeaseMs = uint32(lease / time.Millisecond)
		} else {
			ack.Status = proto.SubTableFull
			r.count(func(s *Stats) { s.Rejected++ })
			r.tracer.Drop(obs.PathControl, obs.ReasonTableFull, string(pkt.From), req.Channel)
		}
	}
	out, err := ack.Marshal()
	if err != nil {
		return
	}
	if r.cfg.Auth != nil {
		out = r.cfg.Auth.Sign(out)
	}
	if err := r.conn.Send(pkt.From, out); err != nil {
		r.count(func(s *Stats) { s.SendErrors++ })
		r.tracer.Drop(obs.PathControl, obs.ReasonSendError, string(pkt.From), req.Channel)
	}
}

// count applies a stats mutation under the relay lock.
func (r *Relay) count(fn func(*Stats)) {
	r.mu.Lock()
	fn(&r.stats)
	r.mu.Unlock()
}

// subscribe adds or refreshes a lease; it reports false when the table
// is full.
func (r *Relay) subscribe(addr lan.Addr, req *proto.Subscribe, lease time.Duration) bool {
	expires := r.clock.Now().Add(lease)
	sh := r.shardFor(addr)
	sh.mu.Lock()
	if sub, ok := sh.subs[addr]; ok {
		sub.expires = expires
		sub.channel = req.Channel
		sub.hops = req.Hops
		sub.pathID = req.PathID
		sh.mu.Unlock()
		r.count(func(s *Stats) { s.Refreshes++ })
		return true
	}
	r.mu.Lock()
	if r.nsubs >= r.cfg.MaxSubscribers {
		r.mu.Unlock()
		sh.mu.Unlock()
		return false
	}
	r.nsubs++
	r.stats.Subscribes++
	r.mu.Unlock()
	sub := &subscriber{
		addr: addr, channel: req.Channel,
		hops: req.Hops, pathID: req.PathID,
		expires: expires,
	}
	sh.subs[addr] = sub
	sh.order = append(sh.order, sub)
	sh.mu.Unlock()
	return true
}

// pathInfo reports the loop-detection pair the relay's own upstream
// subscription carries: one hop more than the deepest downstream relay
// subscribed here, propagating that path's origin id — or this relay's
// own id when only speakers (hops 0, path 0) are subscribed. Around a
// cycle the propagated id eventually returns to its origin, which
// refuses with SubLoop; the growing hop count is the backstop.
func (r *Relay) pathInfo() (uint8, uint64) {
	var hops uint8
	pathID := r.relayID
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, sub := range sh.order {
			if sub.pathID != 0 && sub.hops >= hops {
				hops = sub.hops
				pathID = sub.pathID
			}
		}
		sh.mu.Unlock()
	}
	if hops < 255 {
		hops++
	}
	return hops, pathID
}

// unsubscribe cancels a lease if present.
func (r *Relay) unsubscribe(addr lan.Addr) {
	sh := r.shardFor(addr)
	sh.mu.Lock()
	sub, ok := sh.subs[addr]
	if ok {
		sh.remove(sub)
	}
	sh.mu.Unlock()
	if ok {
		r.mu.Lock()
		r.stats.Unsubscribes++
		r.nsubs--
		r.mu.Unlock()
	}
}

// fanout enqueues one upstream packet to every subscriber leased to
// its channel, applying drop-oldest backpressure per subscriber queue.
// ch is the packet's channel id (already parsed by handlePacket): a
// subscriber leased to channel X on a relay carrying a multi-channel
// group must never receive channel Y.
func (r *Relay) fanout(ch uint32, data []byte) {
	now := time.Now() // one residency stamp per fan-out, not per subscriber
	var dropped int64
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, sub := range sh.order {
			if sub.channel != 0 && sub.channel != ch {
				continue
			}
			if len(sub.queue) >= r.cfg.QueueLen {
				// Drop the oldest packet: live audio wants fresh data,
				// and the sync logic discards stale batches anyway.
				copy(sub.queue, sub.queue[1:])
				sub.queue = sub.queue[:len(sub.queue)-1]
				sub.dropped++
				sh.dropped++
				sh.queued--
				dropped++
				r.tracer.Drop(obs.PathFanout, obs.ReasonQueueFull, string(sub.addr), ch)
			}
			sub.queue = append(sub.queue, queued{data: data, at: now})
			sh.queued++
		}
		if sh.queued > sh.maxQueued {
			sh.maxQueued = sh.queued
		}
		if len(sh.order) > 0 {
			sh.work.Broadcast()
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		r.count(func(s *Stats) { s.FanoutDropped += dropped })
	}
}

// flushTrigger names what caused a batch flush.
type flushTrigger int

const (
	flushSize     flushTrigger = iota // batch reached cfg.Batch
	flushDeadline                     // partial batch aged out (FlushInterval)
	flushQuiesce                      // relay stopping; drain what's left
)

// shardWorker drains its shard's subscriber queues into lan.Datagram
// batches: round-robin across subscribers for fairness, per-subscriber
// FIFO so a subscriber's stream is never reordered, one WriteBatch per
// flush. A batch flushes when full (size), when a partial batch has
// waited FlushInterval for company (deadline), or when the relay stops
// (quiesce). The actual sends happen outside the shard lock.
func (r *Relay) shardWorker(sh *shard) {
	defer func() {
		if sh.ownConn {
			sh.conn.Close()
		}
		r.mu.Lock()
		r.workersDone++
		r.workersIdle.Broadcast()
		r.mu.Unlock()
	}()
	maxBatch := r.cfg.Batch
	dgs := lan.GetBatch() // reuse pool: zero steady-state allocation
	defer func() { lan.PutBatch(dgs) }()
	var owners []*subscriber // owners[i] is the subscriber behind dgs[i]
	for {
		dgs = dgs[:0]
		owners = owners[:0]
		var deadline time.Time
		trigger := flushQuiesce
		sh.mu.Lock()
		for {
			// Gather: one queued packet per subscriber per pass, oldest
			// first, until the batch fills or the queues drain. One
			// wall-clock read serves the whole pass's residency math.
			progress := false
			var now time.Time
			for _, sub := range sh.order {
				if len(dgs) >= maxBatch {
					break
				}
				if len(sub.queue) > 0 {
					q := sub.queue[0]
					copy(sub.queue, sub.queue[1:])
					sub.queue = sub.queue[:len(sub.queue)-1]
					sh.queued--
					if now.IsZero() {
						now = time.Now()
					}
					r.queueResidency.Observe(now.Sub(q.at))
					dgs = append(dgs, lan.Datagram{To: sub.addr, Data: q.data})
					owners = append(owners, sub)
					progress = true
				}
			}
			if len(dgs) >= maxBatch {
				trigger = flushSize
				break
			}
			if sh.stopped {
				trigger = flushQuiesce
				break
			}
			if progress {
				continue // queues may hold more packets
			}
			if len(dgs) > 0 {
				// Partial batch and nothing queued: linger briefly for
				// more work, but never past the flush deadline.
				if deadline.IsZero() {
					deadline = r.clock.Now().Add(r.cfg.FlushInterval)
				}
				remain := deadline.Sub(r.clock.Now())
				if remain <= 0 || !sh.work.WaitTimeout(&sh.mu, remain) {
					trigger = flushDeadline
					break
				}
				continue
			}
			sh.work.Wait(&sh.mu)
		}
		stopped := sh.stopped
		sh.mu.Unlock()
		if len(dgs) > 0 {
			r.flush(sh, dgs, owners, trigger)
		}
		if stopped && len(dgs) == 0 {
			return
		}
	}
}

// flush sends one gathered batch through the shard's socket and settles
// the accounting. WriteBatch has prefix semantics — datagrams before
// the first error were handed to the substrate, the rest were not — so
// on a partial send the failing datagram is skipped and the remainder
// retried: one subscriber with a poisoned path (ICMP-refused port,
// firewall EPERM) must not starve the subscribers batched after it.
func (r *Relay) flush(sh *shard, dgs []lan.Datagram, owners []*subscriber, trigger flushTrigger) {
	t0 := time.Now()
	first, size := dgs[0].To, len(dgs)
	var sent, errs int64
	for len(dgs) > 0 {
		n, err := lan.WriteBatch(sh.conn, dgs)
		if n > len(dgs) {
			n = len(dgs) // defensive: prefix contract
		}
		sh.mu.Lock()
		for _, sub := range owners[:n] {
			sub.sent++
		}
		sh.sent += int64(n)
		sh.mu.Unlock()
		sent += int64(n)
		dgs, owners = dgs[n:], owners[n:]
		if err == nil {
			break
		}
		if len(dgs) > 0 { // skip the datagram that errored, keep going
			r.tracer.Drop(obs.PathFanout, obs.ReasonSendError, string(dgs[0].To), 0)
			dgs, owners = dgs[1:], owners[1:]
		}
		errs++
	}
	r.flushLatency.Observe(time.Since(t0))
	r.tracer.Send(obs.PathFanout, string(first), 0, size)
	r.count(func(s *Stats) {
		s.FanoutSent += sent
		s.SendErrors += errs
		s.Batches++
		switch trigger {
		case flushSize:
			s.FlushSize++
		case flushDeadline:
			s.FlushDeadline++
		case flushQuiesce:
			s.FlushQuiesce++
		}
	})
}

// sweep expires silent subscribers and frees their queues.
func (r *Relay) sweep() {
	for {
		r.clock.Sleep(r.cfg.SweepInterval)
		if r.isStopped() {
			return
		}
		now := r.clock.Now()
		var expired int64
		for _, sh := range r.shards {
			sh.mu.Lock()
			for _, sub := range append([]*subscriber(nil), sh.order...) {
				if !sub.expires.After(now) {
					sh.remove(sub)
					expired++
				}
			}
			sh.mu.Unlock()
		}
		if expired > 0 {
			r.mu.Lock()
			r.nsubs -= int(expired)
			r.stats.Expired += expired
			r.mu.Unlock()
		}
	}
}
