package relay

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/dvr"
	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/relay/lease"
	"repro/internal/security"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Defaults.
const (
	// DefaultShards is the subscriber-table shard count.
	DefaultShards = 8
	// DefaultQueueLen bounds each subscriber's packet queue.
	DefaultQueueLen = 64
	// DefaultMaxSubscribers caps the whole subscriber table.
	DefaultMaxSubscribers = 1024
	// DefaultMaxLease caps any granted lease.
	DefaultMaxLease = 5 * time.Minute
	// MinLease is the smallest grantable lease; requests below it are
	// rounded up so refresh storms cannot be provoked. It mirrors the
	// floor the lease layer paces refreshes against.
	MinLease = lease.MinLease
	// DefaultSweepInterval is the lease-expiry scan cadence.
	DefaultSweepInterval = time.Second
	// DefaultUpstreamLease is the lease a chained relay requests from
	// its upstream relay.
	DefaultUpstreamLease = 15 * time.Second
	// DefaultMaxHops bounds a subscription path's relay depth: a
	// subscribe whose path already crossed this many relays is refused
	// with SubLoop. It is the backstop that breaks any cycle the path-id
	// check misses — around a loop the reported hop count grows with
	// every refresh until it trips this limit.
	DefaultMaxHops = 8
	// DefaultBatch is the fan-out batch size: how many datagrams a shard
	// worker accumulates before one WriteBatch flush.
	DefaultBatch = 32
	// DefaultFlushInterval bounds how long a partial batch may linger
	// before it is flushed anyway; it is pure added latency for the
	// packets in the batch, so it stays well inside the speakers'
	// synchronization epsilon.
	DefaultFlushInterval = 2 * time.Millisecond
	// DefaultAdmitBatch is how many queued Subscribes the admission
	// worker gathers per pass: verification, lease-table insertion, ack
	// signing, and the ack sends are all amortized across the gather.
	DefaultAdmitBatch = 256
	// admitQueueLen bounds the admission queue. At the default batch
	// size that is 16 gather passes of backlog — a join storm beyond it
	// is load-shed at the door (counted, traced) rather than allowed to
	// grow an unbounded packet backlog.
	admitQueueLen = 4096
	// admitGatherWindow is how long the admission worker lets a
	// partially-filled gather pass pile up before verifying what it has.
	// The window only engages while passes are arriving back-to-back
	// (within one window of each other) — interrupt moderation for the
	// control plane: a lone Subscribe or a steady refresh trickle is
	// admitted immediately, while a join storm's packets, which would
	// otherwise trickle out of the socket one recv at a time and keep
	// every gather pass at a single packet, pile into full batches. A
	// full batch ends the window immediately.
	admitGatherWindow = time.Millisecond
	// recvTimeout bounds how long Run waits for any packet before
	// re-checking liveness.
	recvTimeout = 5 * time.Second
	// DefaultDVRBurst caps how fast a catching-up subscriber is fed
	// backlog, in packets per second. At the paper's nominal 100
	// packets/s stream rate this replays five seconds of backlog per
	// wall second — convergence within depth/4 seconds of joining —
	// while bounding the extra load one time-shifted join can put on
	// its shard.
	DefaultDVRBurst = 500
)

// Config parameterizes a relay.
type Config struct {
	// Group is the multicast group to join and relay. Required unless
	// Upstream is set.
	Group lan.Addr
	// Upstream chains this relay behind another relay: instead of
	// joining a multicast group it subscribes to the upstream relay's
	// unicast address (reusing the speaker's lease logic) and fans the
	// received stream out to its own subscribers, composing bridges
	// across network segments the way TURN relays compose allocations.
	// Exactly one of Group and Upstream must be set.
	Upstream lan.Addr
	// UpstreamLease overrides DefaultUpstreamLease.
	UpstreamLease time.Duration
	// MaxHops overrides DefaultMaxHops.
	MaxHops int
	// Channel restricts the relay to one channel id; 0 relays whatever
	// the group carries and accepts any requested channel.
	Channel uint32
	// Shards overrides DefaultShards.
	Shards int
	// QueueLen overrides DefaultQueueLen (packets per subscriber).
	QueueLen int
	// MaxSubscribers overrides DefaultMaxSubscribers.
	MaxSubscribers int
	// MaxLease overrides DefaultMaxLease.
	MaxLease time.Duration
	// SweepInterval overrides DefaultSweepInterval.
	SweepInterval time.Duration
	// Batch overrides DefaultBatch. 1 disables batching: every datagram
	// is its own send call (the pre-batching baseline, kept for
	// comparison benchmarks).
	Batch int
	// FlushInterval overrides DefaultFlushInterval.
	FlushInterval time.Duration
	// Network, when set, gives every shard its own send socket attached
	// at an ephemeral port, so shard workers never serialize on one
	// socket's lock and each can batch independently. When nil all
	// shards send through the relay's main connection.
	Network lan.Network
	// Auth, when set, authenticates the relay control plane (§5.1
	// applied to the one path that creates forwarding state): every
	// inbound Subscribe must verify before it can touch the lease table
	// — failures are dropped silently, without a SubAck, so a forged
	// request from a spoofed source draws zero reply traffic and the
	// relay cannot be grown into a reflection amplifier — and every
	// outbound SubAck is signed so subscribers can trust the granted
	// lease. A chained relay uses the same authenticator for its own
	// upstream lease (signing its subscribes, verifying the upstream's
	// grants), so one shared key secures a whole chain. The
	// authenticator must be safe for concurrent use (the HMAC scheme
	// is; one-way stream signers are not).
	//
	// When Auth implements security.SessionAuthenticator (the
	// per-subscriber identity scheme), admission verifies each request
	// under its own credential with the packet's UDP source bound into
	// the tag, every lease remembers the identity that created it, and
	// refresh/cancel/pause must present that identity with a sequence
	// above everything the session has already consumed — closing both
	// cross-subscriber forgery and capture-and-replay.
	Auth security.Authenticator
	// UpstreamAuth, when set, is the authenticator for the chained
	// upstream lease instead of Auth: what this relay signs its own
	// subscribes with. The shared-key schemes use one authenticator for
	// both directions, but with per-subscriber identities they differ —
	// admission holds the whole keyring while the upstream lease signs
	// as this relay's own identity. Nil falls back to Auth.
	UpstreamAuth security.Authenticator
	// TraceSample sets the packet tracer's 1-in-N sampling rate for
	// send events (drop events always hit the exact reason counters;
	// sampling only thins the event ring). 0 uses obs.DefaultTraceSample;
	// 1 records everything — the setting experiments use to assert on
	// individual drop events.
	TraceSample int
	// TraceRing overrides obs.DefaultTraceRing, the event ring length.
	TraceRing int
	// ShedSubscribers, when positive, is the subscriber count at which
	// the relay starts shedding: a *new* Subscribe arriving while the
	// table already holds this many is answered with SubRedirect naming
	// a sibling relay (when SetSiblings knows one) instead of a lease.
	// Established subscribers are never shed — refreshes and cancels
	// are served normally. 0 disables count-based shedding.
	ShedSubscribers int
	// ShedPressure, when positive, sheds new subscribers while the
	// relay's queue-pressure score (0-255; see Info) is at or above
	// this value. 0 disables pressure-based shedding.
	ShedPressure int
	// ShedTier steers away subscribers the quality ladder has run out
	// of room for: when a downgrade lands a subscriber on the bottom
	// rung — the relay is already serving it the cheapest tier there is
	// and its queue still drops — its next refresh is answered with
	// SubRedirect to a less-loaded sibling (when SetSiblings knows one)
	// instead of a lease. Requires Ladder; with no eligible sibling the
	// subscriber is served normally, exactly like the other shed modes.
	ShedTier bool
	// AdmitBatch overrides DefaultAdmitBatch. 1 disables admission
	// batching: every Subscribe is verified, admitted, and acked on its
	// own (the pre-batching baseline, kept for comparison benchmarks).
	AdmitBatch int
	// SourceHops overrides the relay-hops-from-source value stamped in
	// the catalog record's load vector: 0 derives it (1 when joining
	// the group directly, 2 when chained — the minimum a chain can be).
	// cmd/relayd sets it from the discovered upstream's own record, so
	// depth accumulates along real chains.
	SourceHops int
	// Ladder enables the adaptive delivery-quality ladder: a subscriber
	// whose queue keeps dropping packets is stepped one tier down
	// (toward cheaper encodings) per sweep, and stepped back up toward
	// its requested profile after a drop-free dwell. Requested profiles
	// are honored either way; the ladder only controls whether the
	// relay may move subscribers on its own.
	Ladder bool
	// LadderDwell overrides DefaultLadderDwell: how long a subscriber
	// must stay drop-free before an upgrade.
	LadderDwell time.Duration
	// LadderDownDrops overrides DefaultLadderDownDrops: the per-sweep
	// queue-drop delta that triggers a downgrade.
	LadderDownDrops int
	// GSO enables UDP_SEGMENT coalescing on the shard send sockets
	// (where the backend supports it): the profile-grouped flush sorts
	// each delivery group by destination, so a subscriber owed several
	// same-size packets costs one kernel send instead of several.
	GSO bool
	// DVR enables time-shifted delivery: every relayed packet is
	// recorded into a bounded per-channel ring before fan-out, and a
	// Subscribe carrying a time shift (proto.Subscribe.ShiftMs) is
	// started from a cursor into that ring and fed the backlog at a
	// bounded faster-than-realtime rate until it converges on live.
	// Pause/resume (proto.Pause) rides the same cursor.
	DVR bool
	// DVRDepth bounds each ring's recorded history in seconds of
	// arrival time; 0 uses dvr.DefaultDepth. The packet capacity is
	// derived from the depth (see dvr.NewRing).
	DVRDepth time.Duration
	// DVRBurst overrides DefaultDVRBurst: the catch-up delivery rate
	// cap, in packets per second per catching-up subscriber.
	DVRBurst int
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.QueueLen <= 0 {
		c.QueueLen = DefaultQueueLen
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = DefaultMaxSubscribers
	}
	if c.MaxLease <= 0 {
		c.MaxLease = DefaultMaxLease
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = DefaultSweepInterval
	}
	if c.Batch <= 0 {
		c.Batch = DefaultBatch
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	if c.UpstreamLease <= 0 {
		c.UpstreamLease = DefaultUpstreamLease
	}
	if c.MaxHops <= 0 {
		c.MaxHops = DefaultMaxHops
	}
	if c.MaxHops > 255 {
		// Propagated hop counts saturate at 255 on the wire; a larger
		// limit would never trip and silently disable the loop backstop.
		c.MaxHops = 255
	}
	if c.AdmitBatch <= 0 {
		c.AdmitBatch = DefaultAdmitBatch
	}
	if c.LadderDwell <= 0 {
		c.LadderDwell = DefaultLadderDwell
	}
	if c.LadderDownDrops <= 0 {
		c.LadderDownDrops = DefaultLadderDownDrops
	}
	if c.ShedPressure > 255 {
		c.ShedPressure = 255 // the score saturates there
	}
	if c.DVRDepth <= 0 {
		c.DVRDepth = dvr.DefaultDepth
	}
	if c.DVRBurst <= 0 {
		c.DVRBurst = DefaultDVRBurst
	}
}

// Stats is the relay's cumulative accounting. The `mib` and `help`
// tags drive registration everywhere a counter is exported — the mgmt
// MIB (mgmt.StatsVars) and the obs registry (obs.StructCounters) — so
// a new field is published on every surface by adding it here, and the
// coverage test in internal/mgmt fails if a field lacks its tag.
type Stats struct {
	UpstreamControl  int64 `mib:"es.relay.upstream.control" help:"control packets taken off the group"`
	UpstreamData     int64 `mib:"es.relay.upstream.data" help:"data packets taken off the group"`
	UpstreamForeign  int64 `mib:"es.relay.upstream.foreign" help:"packets refused as not-from-the-group (injection attempts) or for a foreign channel"`
	Malformed        int64 `mib:"es.relay.malformed" help:"unparseable packets (any direction)"`
	Subscribes       int64 `mib:"es.relay.subscribes" help:"new subscriptions granted"`
	Refreshes        int64 `mib:"es.relay.refreshes" help:"lease refreshes"`
	Unsubscribes     int64 `mib:"es.relay.unsubscribes" help:"explicit lease cancellations"`
	Expired          int64 `mib:"es.relay.expired" help:"leases expired for silence"`
	Rejected         int64 `mib:"es.relay.rejected" help:"refused subscribe requests"`
	Loops            int64 `mib:"es.relay.loops" help:"subscribes refused with SubLoop (path revisits or too deep)"`
	Redirects        int64 `mib:"es.relay.redirects" help:"new subscribes answered with SubRedirect (load shed to a sibling relay)"`
	AuthDropped      int64 `mib:"es.relay.auth.dropped" help:"subscribes dropped by control-plane verification (forged or unsigned; no SubAck sent)"`
	IdentityMismatch int64 `mib:"es.relay.identity.mismatch" help:"control requests signed by a valid credential other than the lease holder's (cross-subscriber forgery; dropped silently)"`
	ReplayDropped    int64 `mib:"es.relay.replay.dropped" help:"control requests dropped by the per-session replay window (sequence at or below the last consumed)"`
	TierSheds        int64 `mib:"es.relay.ladder.sheds" help:"ladder-floor subscribers redirected to a less-loaded sibling at refresh (Config.ShedTier)"`
	FanoutSent       int64 `mib:"es.relay.fanout.sent" help:"unicast packets delivered"`
	FanoutDropped    int64 `mib:"es.relay.fanout.dropped" help:"packets dropped by queue backpressure"`
	SendErrors       int64 `mib:"es.relay.senderrors" help:"unicast send failures"`

	// Chaining telemetry (nonzero only with Config.Upstream set): the
	// relay's own lease against its upstream relay.
	UpstreamSubscribes  int64 `mib:"es.relay.upstream.subscribes" help:"lease packets sent to the upstream relay"`
	UpstreamAcks        int64 `mib:"es.relay.upstream.acks" help:"lease acks received from the upstream relay"`
	UpstreamRefused     int64 `mib:"es.relay.upstream.refused" help:"upstream lease refusals (loop, table full, channel)"`
	UpstreamStaleAcks   int64 `mib:"es.relay.upstream.stale" help:"upstream acks ignored as stale or foreign"`
	UpstreamAuthDropped int64 `mib:"es.relay.upstream.auth.dropped" help:"upstream acks dropped by verification"`
	UpstreamRedirects   int64 `mib:"es.relay.upstream.redirects" help:"redirects the relay's own upstream lease followed to a sibling"`

	// Admission telemetry: the batched Subscribe pipeline. AdmitBatches
	// counts gather passes; Subscribes+Refreshes+... per batch over
	// AdmitBatches is the achieved admission batch size.
	AdmitBatches  int64 `mib:"es.relay.admit.batches" help:"admission gather passes over queued subscribes"`
	AdmitOverflow int64 `mib:"es.relay.admit.overflow" help:"subscribes dropped at the door because the admission queue was full"`

	// Batching telemetry: Batches counts WriteBatch flushes, split by
	// what triggered them. FanoutSent / Batches is the achieved batch
	// size — the syscall amortization factor on a real network.
	Batches       int64 `mib:"es.relay.fanout.batches" help:"WriteBatch flushes issued (one per delivery group)"`
	FlushSize     int64 `mib:"es.relay.fanout.flush.size" help:"flushes triggered by a full batch"`
	FlushDeadline int64 `mib:"es.relay.fanout.flush.deadline" help:"partial batches flushed on the flush interval"`
	FlushQuiesce  int64 `mib:"es.relay.fanout.flush.quiesce" help:"partial batches flushed at shutdown"`

	// Delivery-profile telemetry: the quality ladder and the per-profile
	// encode path. TranscodeEncodes advances once per active non-source
	// profile per upstream packet — never per subscriber — so dividing
	// it by UpstreamData is the live profile count the fan-out pays for.
	TranscodeEncodes int64 `mib:"es.relay.transcode.encodes" help:"per-profile payload encodes (one per active profile per upstream packet)"`
	TranscodeErrors  int64 `mib:"es.relay.transcode.errors" help:"transcode failures (affected tiers fell back to the source payload)"`
	LadderDown       int64 `mib:"es.relay.ladder.down" help:"quality-ladder downgrades (one tier, queue pressure)"`
	LadderUp         int64 `mib:"es.relay.ladder.up" help:"quality-ladder upgrades (one tier, after a drop-free dwell)"`

	// Batched-receive telemetry (recvmmsg; Linux only, zero elsewhere):
	// RecvBatchPackets / RecvBatches is the achieved ingest batch size.
	RecvBatches      int64 `mib:"es.relay.recv.batches" help:"batched receive passes (recvmmsg) on the relay socket"`
	RecvBatchPackets int64 `mib:"es.relay.recv.packets" help:"packets delivered by batched receive passes"`

	// Time-shift (DVR) telemetry (nonzero only with Config.DVR set).
	// DVRCatchupActive is a gauge snapshot — subscribers currently
	// replaying backlog — folded in by Stats(), so it falls as cursors
	// converge on live.
	DVRRings         int64 `mib:"es.relay.dvr.rings" help:"per-channel DVR rings created"`
	DVRBacklog       int64 `mib:"es.relay.dvr.backlog.packets" help:"backlog packets served from the DVR rings to catching-up subscribers"`
	DVRCatchupActive int64 `mib:"es.relay.dvr.catchup.active" help:"subscribers currently replaying backlog toward the live head"`
	DVRClamped       int64 `mib:"es.relay.dvr.clamped" help:"time-shift requests granted less history than asked (ring depth or nothing recorded)"`
	DVREvictions     int64 `mib:"es.relay.dvr.evictions" help:"catch-up cursors the ring wrapped past (subscriber fell behind; re-clamped to the oldest entry)"`
}

// SubscriberInfo is one subscriber's public accounting snapshot.
type SubscriberInfo struct {
	Addr       lan.Addr
	Channel    uint32
	Hops       uint8         // relay hops behind this subscriber (0 = a speaker)
	Profile    codec.Profile // delivery tier currently served
	ReqProfile codec.Profile // tier requested at subscribe (ladder ceiling)
	Sent       int64         // unicast packets sent
	Dropped    int64         // packets dropped by this subscriber's queue
	Queued     int           // packets currently queued
	Expires    time.Time
	Shift      time.Duration // granted time shift (DVR; 0 = joined live)
	CatchingUp bool          // currently replaying DVR backlog
	Paused     bool          // delivery parked by a Pause packet
}

// queued is one packet waiting in a subscriber queue, stamped with its
// enqueue time so the worker can observe queue residency — the latency
// the relay itself adds to the stream — when it gathers the packet.
// The stamp is wall clock, not the relay's vclock: residency measures
// the process, and the simulated clock would report it as zero.
type queued struct {
	data []byte
	prof codec.Profile // delivery group the payload was encoded for
	at   time.Time
}

// subscriber is one leased unicast destination.
type subscriber struct {
	addr    lan.Addr
	channel uint32
	hops    uint8  // relay depth behind this subscriber (speakers: 0)
	pathID  uint64 // path origin carried by its subscribe (speakers: 0)
	expires time.Time
	queue   []queued // bounded FIFO; head is oldest
	sent    int64
	dropped int64

	// Control-session state: identity is the subscriber credential the
	// lease was created under (identity scheme only; 0 otherwise), and
	// ctlSeq the highest control sequence this session has consumed —
	// refresh, cancel, and pause must all present the lease's identity
	// with a sequence above it, which closes both cross-subscriber
	// forgery (any valid credential can sign a packet claiming any
	// source) and same-source capture-and-replay. In legacy shared-key
	// mode ctlSeq tracks Pause.Seq alone, widened to u64.
	identity uint32
	ctlSeq   uint64

	// Quality-ladder state: profile is the tier currently served,
	// reqProfile the subscribe-time request the ladder may not exceed.
	// ladderDrops/ladderAt anchor the per-sweep drop delta and the
	// drop-free dwell (sim clock, like every protocol timer here).
	// shedPending marks a subscriber a downgrade just landed on the
	// bottom rung while Config.ShedTier is set: its next refresh is
	// answered with a redirect to a less-loaded sibling (when one
	// exists) instead of a lease.
	profile     codec.Profile
	reqProfile  codec.Profile
	ladderDrops int64
	ladderAt    time.Time
	shedPending bool

	// Time-shift (DVR) state: while catchup is set the subscriber is
	// fed from ring at cursor by the shard worker instead of the live
	// fan-out (which skips it), paced by the token bucket
	// dvrTokens/dvrAt; paused parks the cursor entirely. shiftMs is
	// the granted shift, echoed on refresh acks. Replayed or reordered
	// pauses are rejected against ctlSeq above. scratch is the
	// ring-read buffer; it is reused only while no un-flushed batch
	// references it (ownership moves to the batch when a read is handed
	// over un-transcoded, see gatherCatchup).
	ring      *dvr.Ring
	cursor    uint64
	shiftMs   uint32
	catchup   bool
	paused    bool
	dvrTokens float64
	dvrAt     time.Time
	scratch   []byte
}

// shard is one slice of the subscriber table with its own fan-out
// worker and, when Config.Network is set, its own send socket.
type shard struct {
	conn    lan.Conn // send path: shard-owned socket or the shared conn
	ownConn bool     // conn was attached by us and must be closed on Stop

	mu      sync.Mutex
	work    vclock.Cond // signaled when any queue becomes non-empty
	subs    map[lan.Addr]*subscriber
	order   []*subscriber // insertion order, for deterministic fan-out
	stopped bool

	// Per-shard pressure accounting (satellite to the lumped Stats
	// totals): a hot shard shows up here before it shows up anywhere.
	sent      int64 // unicast packets this shard's worker delivered
	dropped   int64 // packets its queues dropped (drop-oldest)
	queued    int   // packets currently queued across its subscribers
	maxQueued int   // high-water mark of queued
}

// remove drops sub from the shard; caller holds sh.mu.
func (sh *shard) remove(sub *subscriber) {
	delete(sh.subs, sub.addr)
	for i, s := range sh.order {
		if s == sub {
			sh.order = append(sh.order[:i], sh.order[i+1:]...)
			break
		}
	}
	sh.queued -= len(sub.queue)
	sub.queue = nil
}

// ShardStats is one shard's pressure snapshot.
type ShardStats struct {
	Shard       int   `json:"shard"`
	Subscribers int   `json:"subscribers"`
	Queued      int   `json:"queued"`     // packets waiting right now
	MaxQueued   int   `json:"max_queued"` // high-water mark
	Sent        int64 `json:"sent"`
	Dropped     int64 `json:"dropped"`
}

// Relay bridges one multicast group (or, chained, another relay) to
// unicast subscribers.
type Relay struct {
	clock   vclock.Clock
	conn    lan.Conn
	cfg     Config
	shards  []*shard
	relayID uint64 // this relay's path identity (loop detection)
	// upstreamHost gates chained-mode fan-in: data is accepted from any
	// port on the upstream relay's host, because an upstream running
	// per-shard send sockets emits data from ephemeral ports.
	upstreamHost string
	up           *lease.Subscriber // lease against cfg.Upstream (nil otherwise)

	// Hot-path instruments (see internal/obs): wall-clock histograms
	// and the sampled packet tracer. Always present — recording is a
	// few atomic adds, cheap enough to leave compiled in.
	flushLatency     *obs.Histogram // WriteBatch flush duration
	queueResidency   *obs.Histogram // enqueue→gather time per packet
	transcodeLatency *obs.Histogram // per-profile payload encode time
	upRTT            *obs.Histogram // upstream Subscribe→SubAck RTT (chained)
	leaseMargin      *obs.Histogram // upstream refresh margin (chained)
	catchupLag       *obs.Histogram // DVR backlog packet age when served
	tracer           *obs.Tracer

	// Time-shift store (nil unless Config.DVR): the per-channel rings
	// handlePacket records into before fanning out. catchupActive is
	// the live count of subscribers replaying backlog (lock-free, like
	// profCount, because converge/pause flips happen under shard locks
	// while Stats() snapshots under r.mu).
	dvr           *dvr.Store
	catchupActive atomic.Int64

	// Per-profile delivery state. profCount holds the live subscriber
	// count per tier (lock-free so fanout can snapshot the active set
	// without touching any shard); txMu guards the learned stream
	// configurations and their transcoders, which the single fan-out
	// path and concurrent Inject callers share.
	profCount [codec.NumProfiles]atomic.Int64
	txMu      sync.Mutex
	streams   map[uint32]*stream

	mu          sync.Mutex
	stats       Stats
	nsubs       int
	running     bool // Run spawned the shard workers
	stopped     bool
	workersDone int         // workers that have flushed and exited
	workersIdle vclock.Cond // signaled as each worker exits
	// siblings is the shedding steer source (SetSiblings): catalog
	// records of the other relays a redirect may name.
	siblings func() []proto.RelayInfo
	// redirRR round-robins redirects across eligible siblings within
	// and across admission batches, so one sibling does not absorb a
	// whole storm by itself.
	redirRR uint64
	// pressureDrops is the fanout-drop total at the last pressure
	// sample; new drops since then pin the score to maximum.
	pressureDrops int64

	// Admission queue (its own lock: enqueue must never contend with
	// the stats path, and the worker drains it while holding nothing
	// else). Lock order: admitMu is leaf-only — never acquired while
	// holding r.mu or a shard lock.
	admitMu      sync.Mutex
	admitCond    vclock.Cond
	admitQ       []lan.Packet
	admitRunning bool // Run spawned the admission worker
	admitStop    bool
	admitDone    bool // the admission worker has drained and exited
}

// New creates a relay that receives cfg.Group via conn — or, with
// cfg.Upstream set, subscribes to that relay instead — and serves
// subscribe requests arriving on conn's unicast address. With
// cfg.Network set, each shard additionally attaches its own
// ephemeral-port send socket.
func New(clock vclock.Clock, conn lan.Conn, cfg Config) (*Relay, error) {
	cfg.applyDefaults()
	switch {
	case cfg.Upstream != "":
		if cfg.Group != "" {
			return nil, fmt.Errorf("relay: configure Group or Upstream, not both")
		}
		if err := cfg.Upstream.Validate(); err != nil {
			return nil, fmt.Errorf("relay: upstream: %w", err)
		}
		if cfg.Upstream.IsMulticast() {
			return nil, fmt.Errorf("relay: upstream %q is multicast; set Group to join a group directly", cfg.Upstream)
		}
	case !cfg.Group.IsMulticast():
		return nil, fmt.Errorf("relay: group %q is not multicast", cfg.Group)
	default:
		if err := conn.Join(cfg.Group); err != nil {
			return nil, fmt.Errorf("relay: joining %q: %w", cfg.Group, err)
		}
	}
	r := &Relay{clock: clock, conn: conn, cfg: cfg, streams: make(map[uint32]*stream)}
	r.relayID = newPathID(conn.LocalAddr())
	r.flushLatency = obs.NewHistogram("es_relay_flush_latency_seconds",
		"WriteBatch flush duration, gather to syscall return", nil)
	r.queueResidency = obs.NewHistogram("es_relay_queue_residency_seconds",
		"time a packet waits in a subscriber queue before its worker gathers it", nil)
	r.transcodeLatency = obs.NewHistogram("es_relay_transcode_latency_seconds",
		"per-profile payload transcode time in the fan-out path", nil)
	r.upRTT = obs.NewHistogram("es_relay_upstream_rtt_seconds",
		"upstream Subscribe→SubAck round trip (chained relays only)", nil)
	r.leaseMargin = obs.NewHistogram("es_relay_lease_margin_seconds",
		"upstream lease time remaining at each refresh (chained relays only)", nil)
	r.catchupLag = obs.NewHistogram("es_relay_dvr_catchup_lag_seconds",
		"age of each DVR backlog packet when served to a catching-up subscriber", nil)
	r.tracer = obs.NewTracer(cfg.TraceSample, cfg.TraceRing)
	if cfg.DVR {
		r.dvr = dvr.NewStore(clock, cfg.DVRDepth, 0)
	}
	if cfg.Upstream != "" {
		r.upstreamHost = cfg.Upstream.Host()
		r.up = lease.New(clock, conn, "relay-upstream-"+string(conn.LocalAddr()))
		r.up.SetPath(r.pathInfo)
		// One authenticator secures the whole chain: this relay signs
		// its upstream subscribes and verifies the upstream's grants
		// with the same scheme it demands of its own subscribers —
		// except with per-subscriber identities, where UpstreamAuth
		// carries this relay's own derived credential.
		ua := cfg.UpstreamAuth
		if ua == nil {
			ua = cfg.Auth
		}
		r.up.SetAuth(ua)
		r.up.SetInstruments(r.upRTT, r.leaseMargin)
	}
	r.workersIdle = clock.NewCond()
	r.admitCond = clock.NewCond()
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{conn: conn, subs: make(map[lan.Addr]*subscriber)}
		sh.work = clock.NewCond()
		if cfg.Network != nil {
			sc, err := cfg.Network.Attach(lan.Addr(
				net.JoinHostPort(conn.LocalAddr().Host(), "0")))
			if err != nil {
				for _, prev := range r.shards {
					if prev.ownConn {
						prev.conn.Close()
					}
				}
				return nil, fmt.Errorf("relay: attaching shard %d socket: %w", i, err)
			}
			sh.conn, sh.ownConn = sc, true
		}
		if cfg.GSO {
			// Best effort: the portable and simulated backends simply
			// don't implement the seam and the flush stays plain batches.
			lan.EnableGSO(sh.conn)
		}
		r.shards = append(r.shards, sh)
	}
	return r, nil
}

// Addr returns the unicast address subscribers talk to.
func (r *Relay) Addr() lan.Addr { return r.conn.LocalAddr() }

// Group returns the multicast group being relayed (empty for a chained
// relay; see Upstream).
func (r *Relay) Group() lan.Addr { return r.cfg.Group }

// Upstream returns the relay this one is chained behind ("" if it
// joins a multicast group directly).
func (r *Relay) Upstream() lan.Addr { return r.cfg.Upstream }

// PathID returns this relay's loop-detection identity: the value a
// subscription path must not carry back to it.
func (r *Relay) PathID() uint64 { return r.relayID }

// Source returns the stream source: the multicast group, or the
// upstream relay for a chained relay.
func (r *Relay) Source() lan.Addr {
	if r.cfg.Upstream != "" {
		return r.cfg.Upstream
	}
	return r.cfg.Group
}

// Info returns the relay's catalog record (§4.3 discovery): where to
// lease from, what it relays, any channel restriction — and the load
// vector discovery ranks on: current subscriber count, the 0-255
// queue-pressure score, and the relay's depth from the stream source.
// It is the catalog's live record provider (Catalog.SetRelayFunc), so
// every announce carries the load as of that cycle.
func (r *Relay) Info() proto.RelayInfo {
	return proto.RelayInfo{
		Addr:     string(r.Addr()),
		Group:    string(r.Source()),
		Channel:  r.cfg.Channel,
		HasLoad:  true,
		Subs:     uint32(r.NumSubscribers()),
		Pressure: r.Pressure(),
		Hops:     r.sourceHops(),
	}
}

// sourceHops is the load vector's depth-from-source field.
func (r *Relay) sourceHops() uint8 {
	if r.cfg.SourceHops > 0 {
		if r.cfg.SourceHops > 255 {
			return 255
		}
		return uint8(r.cfg.SourceHops)
	}
	if r.cfg.Upstream != "" {
		return 2 // behind at least one other relay
	}
	return 1 // joins the group directly
}

// Pressure computes the relay's 0-255 queue-pressure score from the
// existing per-shard gauges: the fraction of aggregate queue capacity
// currently occupied, scaled to 255 — except that any fanout drop
// since the previous sample pins the score to maximum, because a relay
// actively shedding packets is overloaded no matter what its queues
// happen to hold at the instant of the sample. Each call consumes the
// drop delta, so the natural samplers (the catalog's announce cycle,
// the shed check per admission batch) see a score that decays once the
// dropping stops.
func (r *Relay) Pressure() uint8 {
	var queued, capacity, degraded, total int
	var dropped int64
	for _, sh := range r.shards {
		sh.mu.Lock()
		queued += sh.queued
		capacity += len(sh.order) * r.cfg.QueueLen
		dropped += sh.dropped
		for _, sub := range sh.order {
			total++
			if sub.profile > sub.reqProfile {
				degraded++
			}
		}
		sh.mu.Unlock()
	}
	r.mu.Lock()
	delta := dropped - r.pressureDrops
	r.pressureDrops = dropped
	r.mu.Unlock()
	if delta > 0 {
		return 255
	}
	if capacity == 0 {
		return 0
	}
	p := queued * 255 / capacity
	// A ladder-degraded subscriber is pressure made durable: its queue
	// stopped overflowing *because* the relay cut its bitrate, so the
	// instantaneous queue occupancy under-reports how loaded the relay
	// is. Fold the degraded fraction in so discovery keeps steering new
	// subscribers elsewhere until tiers recover.
	if total > 0 && degraded > 0 {
		if dp := degraded * 255 / total; dp > p {
			p = dp
		}
	}
	if p > 255 {
		p = 255
	}
	return uint8(p)
}

// SetSiblings installs the steer source for load shedding: fn returns
// the catalog records of the other relays currently announcing (a
// Watcher snapshot, typically). A shedding relay redirects new
// subscribers to the least-loaded eligible sibling; with no sibling
// source — or no eligible sibling — it admits normally, because a
// redirect with nowhere to point is just a refusal. fn is called
// outside the relay's locks and must be safe for concurrent use.
func (r *Relay) SetSiblings(fn func() []proto.RelayInfo) {
	r.mu.Lock()
	r.siblings = fn
	r.mu.Unlock()
}

// newPathID mints a relay's 64-bit path identity. It must be unique
// per relay *instance*, never per configuration: real daemons all bind
// the same wildcard "0.0.0.0:5006" by default, so anything derived
// from the local address would give every relay the same identity and
// make straight chains refuse themselves as loops. Randomness is all
// loop detection needs — stability across restarts is not required,
// because path state is re-propagated on every refresh.
func newPathID(addr lan.Addr) uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id // 0 means "no path" on the wire
		}
	}
	// Entropy unavailable (or the 1-in-2^64 zero): fall back to an
	// FNV-1a hash of the bind address — weaker, but never zero.
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Stats returns a snapshot of the accounting, folding in the upstream
// lease counters for a chained relay.
func (r *Relay) Stats() Stats {
	r.mu.Lock()
	st := r.stats
	r.mu.Unlock()
	if r.up != nil {
		ls := r.up.Stats()
		st.UpstreamSubscribes = ls.Subscribes
		st.UpstreamAcks = ls.Acks
		st.UpstreamRefused = ls.Refusals
		st.UpstreamStaleAcks = ls.Stale
		st.UpstreamAuthDropped = ls.AuthDropped
		st.UpstreamRedirects = ls.Redirects
	}
	if rb, ok := r.conn.(lan.RecvBatcher); ok {
		rs := rb.RecvBatchStats()
		st.RecvBatches = rs.Batches
		st.RecvBatchPackets = rs.Packets
	}
	st.DVRCatchupActive = r.catchupActive.Load()
	return st
}

// NumSubscribers returns the current subscriber count.
func (r *Relay) NumSubscribers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nsubs
}

// ShardStats returns every shard's pressure snapshot, in shard order.
func (r *Relay) ShardStats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.Lock()
		out[i] = ShardStats{
			Shard:       i,
			Subscribers: len(sh.order),
			Queued:      sh.queued,
			MaxQueued:   sh.maxQueued,
			Sent:        sh.sent,
			Dropped:     sh.dropped,
		}
		sh.mu.Unlock()
	}
	return out
}

// Instruments exposes the relay's hot-path histograms and tracer, for
// registration (RegisterObs) and for benchmarks that fold latency
// percentiles into their reported results.
type Instruments struct {
	FlushLatency     *obs.Histogram
	QueueResidency   *obs.Histogram
	TranscodeLatency *obs.Histogram
	UpstreamRTT      *obs.Histogram
	LeaseMargin      *obs.Histogram
	CatchupLag       *obs.Histogram
	Tracer           *obs.Tracer
}

// Instruments returns the live instruments (never nil).
func (r *Relay) Instruments() Instruments {
	return Instruments{
		FlushLatency:     r.flushLatency,
		QueueResidency:   r.queueResidency,
		TranscodeLatency: r.transcodeLatency,
		UpstreamRTT:      r.upRTT,
		LeaseMargin:      r.leaseMargin,
		CatchupLag:       r.catchupLag,
		Tracer:           r.tracer,
	}
}

// shardFor hashes a subscriber address onto its shard (FNV-1a).
func (r *Relay) shardFor(addr lan.Addr) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return r.shards[h%uint64(len(r.shards))]
}

// Subscribers returns every subscriber's snapshot, sorted by address.
func (r *Relay) Subscribers() []SubscriberInfo {
	var out []SubscriberInfo
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, sub := range sh.order {
			out = append(out, SubscriberInfo{
				Addr:       sub.addr,
				Channel:    sub.channel,
				Hops:       sub.hops,
				Profile:    sub.profile,
				ReqProfile: sub.reqProfile,
				Sent:       sub.sent,
				Dropped:    sub.dropped,
				Queued:     len(sub.queue),
				Expires:    sub.expires,
				Shift:      time.Duration(sub.shiftMs) * time.Millisecond,
				CatchingUp: sub.catchup,
				Paused:     sub.paused,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Table renders the per-subscriber counters as a stats table — the
// relay's operator surface (cmd/relayd prints it periodically).
func (r *Relay) Table() *stats.Table {
	st := r.Stats()
	t := &stats.Table{
		Title: fmt.Sprintf("relay %s -> %d subscriber(s); upstream %d ctl + %d data, fanout %d sent / %d dropped in %d batches",
			r.Source(), r.NumSubscribers(), st.UpstreamControl, st.UpstreamData,
			st.FanoutSent, st.FanoutDropped, st.Batches),
		Headers: []string{"subscriber", "channel", "hops", "profile", "sent", "dropped", "queued", "lease-left"},
	}
	now := r.clock.Now()
	for _, s := range r.Subscribers() {
		prof := s.Profile.String()
		if s.Profile != s.ReqProfile {
			// Ladder-degraded: show where the subscriber wants to be.
			prof = fmt.Sprintf("%s (req %s)", s.Profile, s.ReqProfile)
		}
		t.AddRow(string(s.Addr), fmt.Sprint(s.Channel), int(s.Hops), prof, s.Sent,
			s.Dropped, s.Queued, s.Expires.Sub(now).Round(time.Millisecond))
	}
	return t
}

// Stop shuts the relay down; Run and the shard workers return. The
// workers flush their partial batches on the way out (the quiesce
// trigger), so Stop waits for them before closing any socket — closing
// first would turn the final flush into send errors.
func (r *Relay) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	running := r.running
	r.mu.Unlock()
	if r.up != nil {
		// Release the upstream lease while our socket still works; if
		// the cancel is lost the upstream expires us after one lease.
		r.up.Cancel()
		r.up.Close()
	}
	for _, sh := range r.shards {
		sh.mu.Lock()
		sh.stopped = true
		sh.work.Broadcast()
		sh.mu.Unlock()
	}
	r.admitMu.Lock()
	r.admitStop = true
	r.admitCond.Broadcast()
	if r.admitRunning {
		// Wait for the admission worker to drain its queue: subscribers
		// whose request already arrived still get their answer, and the
		// final acks go out before the socket closes below.
		for !r.admitDone {
			r.admitCond.Wait(&r.admitMu)
		}
	}
	r.admitMu.Unlock()
	if running {
		r.mu.Lock()
		for r.workersDone < len(r.shards) {
			r.workersIdle.Wait(&r.mu)
		}
		r.mu.Unlock()
	} else {
		for _, sh := range r.shards {
			if sh.ownConn {
				sh.conn.Close() // no worker exists to do it
			}
		}
	}
	r.conn.Close()
}

// isStopped reports whether Stop was called.
func (r *Relay) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// Run receives and relays until Stop. Spawn it via clock.Go; it spawns
// the shard workers and the lease sweeper itself, and — chained —
// opens the upstream subscription.
func (r *Relay) Run() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.running = true
	r.mu.Unlock()
	for i, sh := range r.shards {
		sh := sh
		r.clock.Go(fmt.Sprintf("relay-shard-%d", i), func() { r.shardWorker(sh) })
	}
	r.admitMu.Lock()
	r.admitRunning = true
	r.admitMu.Unlock()
	r.clock.Go("relay-admit", r.admitWorker)
	r.clock.Go("relay-sweep", r.sweep)
	if r.up != nil {
		r.up.Subscribe(r.cfg.Upstream, r.cfg.Channel, r.cfg.UpstreamLease)
	}
	defer r.Stop() // conn closed externally: unblock the workers too
	for {
		pkt, err := r.conn.Recv(recvTimeout)
		if err == lan.ErrTimeout {
			if r.isStopped() {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		r.handlePacket(pkt)
	}
}

// Inject processes pkt as if it had arrived on the relay's connection.
// It exists for the experiments and tests that need a forged source
// address (real UDP source spoofing — the attack the control-plane auth
// closes), which the simulated segment cannot produce: its Send always
// stamps the sender's true address. Injection is synchronous even for
// Subscribes — the packet is fully admitted (or dropped and counted)
// before Inject returns, bypassing the admission queue, so callers can
// assert on counter deltas immediately.
func (r *Relay) Inject(pkt lan.Packet) {
	if t, _, err := proto.PeekType(pkt.Data); err == nil && t == proto.TypeSubscribe {
		r.admitBatch([]lan.Packet{pkt})
		return
	}
	r.handlePacket(pkt)
}

// handlePacket classifies one received datagram.
func (r *Relay) handlePacket(pkt lan.Packet) {
	t, ch, err := proto.PeekType(pkt.Data)
	if err != nil {
		r.mu.Lock()
		r.stats.Malformed++
		r.mu.Unlock()
		r.tracer.Drop(obs.PathUpstream, obs.ReasonMalformed, string(pkt.From), 0)
		return
	}
	switch t {
	case proto.TypeSubscribe:
		r.handleSubscribe(pkt)
	case proto.TypeControl, proto.TypeData:
		r.mu.Lock()
		// Only packets from the configured source are relayed: off the
		// multicast group, or — chained — from the upstream relay's
		// host (any port: an upstream running per-shard send sockets
		// emits data from ephemeral ports). Without this check, anyone
		// who can reach the relay's unicast address could inject one
		// forged data packet and have it amplified to every subscriber.
		if r.upstreamHost != "" {
			if pkt.From.Host() != r.upstreamHost {
				r.stats.UpstreamForeign++
				r.mu.Unlock()
				r.tracer.Drop(obs.PathUpstream, obs.ReasonForeign, string(pkt.From), ch)
				return
			}
		} else if pkt.To != r.cfg.Group {
			r.stats.UpstreamForeign++
			r.mu.Unlock()
			r.tracer.Drop(obs.PathUpstream, obs.ReasonForeign, string(pkt.From), ch)
			return
		}
		if r.cfg.Channel != 0 && ch != r.cfg.Channel {
			r.stats.UpstreamForeign++
			r.mu.Unlock()
			r.tracer.Drop(obs.PathUpstream, obs.ReasonChannelFilter, string(pkt.From), ch)
			return
		}
		if t == proto.TypeControl {
			r.stats.UpstreamControl++
		} else {
			r.stats.UpstreamData++
		}
		r.mu.Unlock()
		if r.dvr != nil {
			// Record before fan-out: the seam between a catch-up replay
			// and live delivery is exactly once only if every packet a
			// converging cursor could miss is already in the ring by the
			// time fanout can skip-or-enqueue its subscriber.
			ring, created := r.dvr.Ring(ch)
			ring.Append(pkt.Data, t == proto.TypeControl)
			if created {
				r.count(func(s *Stats) { s.DVRRings++ })
			}
		}
		r.fanout(ch, pkt.Data)
	case proto.TypeSubAck:
		// Chained: our upstream answering our own lease. The lease layer
		// verifies the grant (when the chain is authenticated) and
		// rejects stale or foreign acks before re-pacing on it. The gate
		// is the lease's *current* target, not the configured upstream:
		// a shedding upstream redirects us to a sibling, and from then
		// on that sibling is the relay whose acks — and whose data, via
		// upstreamHost — we accept.
		if r.up != nil {
			target := r.up.Target()
			if target == "" || pkt.From != target {
				return
			}
			r.up.HandleAckData(pkt.From, pkt.Data)
			if nt := r.up.Target(); nt != "" && nt != target {
				r.mu.Lock()
				r.upstreamHost = nt.Host()
				r.mu.Unlock()
			}
		}
	case proto.TypePause:
		r.handlePause(pkt)
	default:
		// Announce traffic is not ours to forward.
	}
}

// handleSubscribe routes one Subscribe into the admission pipeline:
// enqueued for the admission worker when Run drives the relay, or — no
// worker (driven by tests without Run, or via Inject) — processed
// synchronously as a batch of one, so every caller sees the same
// verification and admission semantics.
func (r *Relay) handleSubscribe(pkt lan.Packet) {
	r.admitMu.Lock()
	if !r.admitRunning || r.admitStop {
		r.admitMu.Unlock()
		r.admitBatch([]lan.Packet{pkt})
		return
	}
	if len(r.admitQ) >= admitQueueLen {
		r.admitMu.Unlock()
		r.count(func(s *Stats) { s.AdmitOverflow++ })
		r.tracer.Drop(obs.PathControl, obs.ReasonQueueFull, string(pkt.From), 0)
		return
	}
	r.admitQ = append(r.admitQ, pkt)
	if len(r.admitQ) == 1 || len(r.admitQ) >= r.cfg.AdmitBatch {
		// Wake the worker when it may be idle (first packet) or its
		// gather window can end early (a full batch is ready); the
		// in-between enqueues pile up for the current window.
		r.admitCond.Broadcast()
	}
	r.admitMu.Unlock()
}

// admitWorker drains the admission queue in gather passes of up to
// cfg.AdmitBatch Subscribes each and hands every pass to admitBatch.
// Batching is what survives a join storm: verification, lease-table
// insertion, ack signing, and the ack sends are all amortized per
// pass instead of paid per packet. It exits once Stop is called and
// the queue has drained — subscribers whose request was already
// queued still get their answer.
func (r *Relay) admitWorker() {
	defer func() {
		r.admitMu.Lock()
		r.admitDone = true
		r.admitCond.Broadcast()
		r.admitMu.Unlock()
	}()
	// lastPass is when the previous gather pass was taken; initialized
	// far in the past so the first Subscribe ever is admitted instantly.
	lastPass := r.clock.Now().Add(-time.Hour)
	for {
		r.admitMu.Lock()
		for len(r.admitQ) == 0 && !r.admitStop {
			r.admitCond.Wait(&r.admitMu)
		}
		if len(r.admitQ) == 0 {
			r.admitMu.Unlock()
			return
		}
		if r.cfg.AdmitBatch > 1 && len(r.admitQ) < r.cfg.AdmitBatch && !r.admitStop &&
			r.clock.Now().Sub(lastPass) < admitGatherWindow {
			// Back-to-back passes mean a storm is arriving one recv at a
			// time: without this bounded beat the worker would wake per
			// packet and batch verification would never see a batch. The
			// enqueue path cuts the wait short once a full batch is
			// ready; an isolated Subscribe never enters this branch and
			// is admitted with no added latency.
			r.admitCond.WaitTimeout(&r.admitMu, admitGatherWindow)
		}
		lastPass = r.clock.Now()
		n := r.cfg.AdmitBatch
		if n > len(r.admitQ) {
			n = len(r.admitQ)
		}
		batch := make([]lan.Packet, n)
		copy(batch, r.admitQ)
		rest := copy(r.admitQ, r.admitQ[n:])
		r.admitQ = r.admitQ[:rest]
		r.admitMu.Unlock()
		r.admitBatch(batch)
	}
}

// admission is one Subscribe that survived verification and parsing.
type admission struct {
	from lan.Addr
	req  *proto.Subscribe
	ack  proto.SubAck
	send bool // an ack goes out (auth failures and cancels stay silent)
	// Session identity (identity scheme only): who signed the request
	// and with what sequence. session gates the per-lease identity and
	// replay checks — without it the fields are zero and unchecked.
	identity uint32
	seq      uint64
	session  bool
}

// admitBatch verifies, admits, and acks one gather pass of Subscribe
// packets. With Config.Auth set, the whole pass is verified in one
// BatchAuthenticator call when the scheme supports it; unverified
// requests are dropped silently exactly as in the per-packet path (a
// SubAck to an unverified source is the reflection primitive the auth
// exists to close). New subscribers are inserted with one shard-lock
// acquisition per shard and one relay-lock acquisition per pass, the
// acks are signed as a batch, and sent as one WriteBatch.
//
// Shedding happens here: when the relay is past Config.ShedSubscribers
// or Config.ShedPressure and a sibling is known (SetSiblings), a *new*
// subscriber is answered with SubRedirect naming the least-loaded
// eligible sibling — round-robined so a storm spreads — instead of a
// lease. Refreshes, cancels, and loop refusals are never shed.
func (r *Relay) admitBatch(pkts []lan.Packet) {
	// Verify. The no-auth and single-packet paths share the loop below;
	// only the signature check itself is batched. A session scheme
	// verifies the whole mixed-identity pass in one call, each packet
	// under its own credential with its UDP source bound into the tag.
	datas := make([][]byte, len(pkts))
	verified := make([]bool, len(pkts))
	var ids []uint32
	var seqs []uint64
	session := false
	if r.cfg.Auth == nil {
		for i := range pkts {
			datas[i], verified[i] = pkts[i].Data, true
		}
	} else if sa, ok := r.cfg.Auth.(security.SessionAuthenticator); ok {
		raw := make([][]byte, len(pkts))
		srcs := make([]string, len(pkts))
		for i := range pkts {
			raw[i], srcs[i] = pkts[i].Data, string(pkts[i].From)
		}
		datas, ids, seqs, verified = sa.VerifySessionBatch(raw, srcs)
		session = true
	} else if ba, ok := r.cfg.Auth.(security.BatchAuthenticator); ok && len(pkts) > 1 {
		raw := make([][]byte, len(pkts))
		for i := range pkts {
			raw[i] = pkts[i].Data
		}
		datas, verified = ba.VerifyBatch(raw, nil)
	} else {
		for i := range pkts {
			datas[i], verified[i] = r.cfg.Auth.Verify(pkts[i].Data)
		}
	}
	var authDropped, malformed, rejected, loops, refreshes, redirects int64
	var identityMismatch, replays, tierSheds int64
	admissions := make([]admission, 0, len(pkts))
	for i := range pkts {
		if !verified[i] {
			authDropped++
			r.tracer.Drop(obs.PathControl, obs.ReasonAuth, string(pkts[i].From), 0)
			continue
		}
		req, err := proto.UnmarshalSubscribe(datas[i])
		if err != nil {
			malformed++
			r.tracer.Drop(obs.PathControl, obs.ReasonMalformed, string(pkts[i].From), 0)
			continue
		}
		adm := admission{from: pkts[i].From, req: req, session: session}
		if session {
			adm.identity, adm.seq = ids[i], seqs[i]
		}
		admissions = append(admissions, adm)
	}

	// Shed state, sampled once per pass: the load thresholds move on
	// the order of announce cycles, not packets.
	var sibs []proto.RelayInfo
	r.mu.Lock()
	nsubs := r.nsubs
	sibfn := r.siblings
	r.mu.Unlock()
	shedding := r.cfg.ShedSubscribers > 0 && nsubs >= r.cfg.ShedSubscribers
	if !shedding && r.cfg.ShedPressure > 0 {
		shedding = int(r.Pressure()) >= r.cfg.ShedPressure
	}
	// The subscriber-count threshold can also be crossed *by this very
	// batch* (a storm arrives faster than announce cycles), so whenever
	// it is configured the sibling list is fetched up front and the
	// count re-checked per insert below — otherwise one gather pass
	// would overshoot the operator's cap by up to a full batch.
	// Tier shedding answers at refresh time, so with ShedTier on the
	// sibling list is needed whether or not the relay is shedding
	// newcomers right now.
	if sibfn != nil && (shedding || r.cfg.ShedSubscribers > 0 || r.cfg.ShedTier) {
		sibs = r.eligibleSiblings(sibfn())
	}

	// Classify, then admit per shard: every request for a shard is
	// handled under one sh.mu acquisition, and all inserts in the pass
	// share one r.mu acquisition for the capacity/shed accounting.
	byShard := make(map[*shard][]int)
	for i := range admissions {
		a := &admissions[i]
		req := a.req
		a.ack = proto.SubAck{Channel: req.Channel, Seq: req.Seq, Status: proto.SubOK}
		a.send = true
		switch {
		case r.cfg.Channel != 0 && req.Channel != 0 && req.Channel != r.cfg.Channel:
			a.ack.Status = proto.SubNoChannel
			rejected++
			r.tracer.Drop(obs.PathControl, obs.ReasonChannelFilter, string(a.from), req.Channel)
		case req.PathID == r.relayID || int(req.Hops) >= r.cfg.MaxHops:
			// The subscription path already crossed this relay (its own
			// id came back) or is deeper than any sane chain: granting
			// would close a forwarding cycle. Refuse, and drop any lease
			// the subscriber already holds — a refresh is how an
			// established loop announces itself, and expiry alone would
			// keep the cycle spinning for a full lease.
			if mm, rp := r.revokeLease(a); mm || rp {
				// Verified, but not by the lease holder (or a replay):
				// silent, like every other auth failure — an attacker
				// holding some valid credential must not be able to
				// revoke another subscriber's lease, nor draw a reply
				// to a spoofed source.
				if mm {
					identityMismatch++
				} else {
					replays++
				}
				a.send = false
				continue
			}
			a.ack.Status = proto.SubLoop
			rejected++
			loops++
			r.tracer.Drop(obs.PathControl, obs.ReasonLoop, string(a.from), req.Channel)
		case req.LeaseMs == 0:
			if mm, rp := r.revokeLease(a); mm {
				identityMismatch++
			} else if rp {
				replays++
			}
			a.send = false
		default:
			sh := r.shardFor(a.from)
			byShard[sh] = append(byShard[sh], i)
		}
	}
	for sh, idxs := range byShard {
		var inserts []int
		now := r.clock.Now()
		sh.mu.Lock()
		for _, i := range idxs {
			a := &admissions[i]
			lease := time.Duration(a.req.LeaseMs) * time.Millisecond
			if lease < MinLease {
				lease = MinLease
			}
			if h := a.req.Hops; h > 0 {
				// Chain-aware sizing: a subscriber with relays behind it
				// is a whole subtree's feed, and losing its lease silences
				// every speaker downstream. Scale the grant with the chain
				// depth so deep links refresh (and can be lost) less often,
				// while plain speakers keep the requested cadence.
				lease *= time.Duration(h) + 1
			}
			if lease > r.cfg.MaxLease {
				lease = r.cfg.MaxLease
			}
			a.ack.LeaseMs = uint32(lease / time.Millisecond)
			if sub, ok := sh.subs[a.from]; ok {
				if a.session {
					// The refresh must come from the identity that holds
					// the lease, with a sequence the session has not seen:
					// any valid credential can sign a packet claiming any
					// source, so without these checks one subscriber could
					// hijack or replay-extend another's session.
					if sub.identity != a.identity {
						identityMismatch++
						a.send = false
						r.tracer.Drop(obs.PathControl, obs.ReasonAuth, string(a.from), 0)
						continue
					}
					if a.seq <= sub.ctlSeq {
						replays++
						a.send = false
						r.tracer.Drop(obs.PathControl, obs.ReasonStale, string(a.from), 0)
						continue
					}
					sub.ctlSeq = a.seq
				}
				if sub.shedPending {
					// The ladder ran out of rungs for this subscriber; a
					// refresh is the one packet a redirect may answer (the
					// lease layer ignores unsolicited acks), so steer it
					// now — or, with no eligible sibling, keep serving.
					var to string
					r.mu.Lock()
					if len(sibs) > 0 {
						to = r.pickSibling(sibs, a.req.Channel)
					}
					r.mu.Unlock()
					sub.shedPending = false
					if to != "" {
						a.ack.Status = proto.SubRedirect
						a.ack.Redirect = to
						a.ack.LeaseMs = 0
						r.profCount[sub.profile].Add(-1)
						r.dropCatchup(sub)
						sh.remove(sub)
						tierSheds++
						continue
					}
				}
				// Refresh: an established subscriber is served even when
				// the relay is shedding — steering moves newcomers.
				sub.expires = now.Add(lease)
				sub.channel = a.req.Channel
				sub.hops = a.req.Hops
				sub.pathID = a.req.PathID
				if prof := requestedProfile(a.req); prof != sub.reqProfile {
					// A re-requested tier resets the ladder: the new ask is
					// served immediately and dwell starts over from here.
					r.profCount[sub.profile].Add(-1)
					sub.reqProfile, sub.profile = prof, prof
					r.profCount[prof].Add(1)
					sub.ladderAt = now
					sub.ladderDrops = sub.dropped
				}
				// The ack reports the tier actually served — under ladder
				// pressure that may sit below the requested profile.
				a.ack.Profile = uint8(sub.profile)
				// The granted shift is decided at lease creation; a
				// refresh echoes it without restarting the catch-up (or
				// disturbing a pause taken across the refresh).
				a.ack.ShiftMs = sub.shiftMs
				refreshes++
				continue
			}
			inserts = append(inserts, i)
		}
		if len(inserts) > 0 {
			r.mu.Lock()
			for _, i := range inserts {
				a := &admissions[i]
				// Live re-check of the count threshold: r.nsubs is exact
				// under r.mu, so admissions never pass the cap even when a
				// single batch crosses it. Pressure stays per-pass — its
				// score moves on flush cadence, not per insert.
				shed := shedding ||
					(r.cfg.ShedSubscribers > 0 && r.nsubs >= r.cfg.ShedSubscribers)
				if shed {
					if to := r.pickSibling(sibs, a.req.Channel); to != "" {
						a.ack.Status = proto.SubRedirect
						a.ack.Redirect = to
						a.ack.LeaseMs = 0
						redirects++
						continue
					}
					// No eligible sibling: admit anyway — a redirect
					// with nowhere to point is just a refusal, and the
					// stream is better served overloaded than not at all.
				}
				if r.nsubs >= r.cfg.MaxSubscribers {
					a.ack.Status = proto.SubTableFull
					a.ack.LeaseMs = 0
					rejected++
					r.tracer.Drop(obs.PathControl, obs.ReasonTableFull, string(a.from), a.req.Channel)
					continue
				}
				r.nsubs++
				r.stats.Subscribes++
				prof := requestedProfile(a.req)
				sub := &subscriber{
					addr: a.from, channel: a.req.Channel,
					hops: a.req.Hops, pathID: a.req.PathID,
					identity: a.identity, ctlSeq: a.seq,
					profile: prof, reqProfile: prof, ladderAt: now,
					expires: now.Add(time.Duration(a.ack.LeaseMs) * time.Millisecond),
				}
				r.profCount[prof].Add(1)
				a.ack.Profile = uint8(prof)
				if r.dvr != nil && a.req.ShiftMs != 0 {
					r.grantShift(sub, a)
					if sub.catchup {
						// Catch-up is driven by the shard worker, which on a
						// quiet channel may be parked with nothing to fan
						// out. Wake it so the backlog starts flowing now
						// rather than at the next live packet.
						sh.work.Broadcast()
					}
				}
				sh.subs[a.from] = sub
				sh.order = append(sh.order, sub)
			}
			r.mu.Unlock()
		}
		sh.mu.Unlock()
	}

	// Ack: marshal, sign (batched when the scheme allows), one
	// WriteBatch. Prefix semantics as in flush: a failing datagram is
	// skipped and the rest retried.
	outs := make([]lan.Datagram, 0, len(admissions))
	var ackIDs []uint32 // parallel to outs; identity scheme only
	if session {
		ackIDs = make([]uint32, 0, len(admissions))
	}
	for i := range admissions {
		a := &admissions[i]
		if !a.send {
			continue
		}
		out, err := a.ack.Marshal()
		if err != nil {
			continue
		}
		outs = append(outs, lan.Datagram{To: a.from, Data: out})
		if session {
			ackIDs = append(ackIDs, a.identity)
		}
	}
	if r.cfg.Auth != nil && len(outs) > 0 {
		if sa, ok := r.cfg.Auth.(security.SessionAuthenticator); ok && session {
			// Each ack is signed under its recipient's own credential, so
			// only that subscriber can validate its grant.
			raw := make([][]byte, len(outs))
			for i := range outs {
				raw[i] = outs[i].Data
			}
			for i, signed := range sa.SignForBatch(ackIDs, raw) {
				outs[i].Data = signed
			}
		} else if ba, ok := r.cfg.Auth.(security.BatchAuthenticator); ok && len(outs) > 1 {
			raw := make([][]byte, len(outs))
			for i := range outs {
				raw[i] = outs[i].Data
			}
			for i, signed := range ba.SignBatch(raw) {
				outs[i].Data = signed
			}
		} else {
			for i := range outs {
				outs[i].Data = r.cfg.Auth.Sign(outs[i].Data)
			}
		}
	}
	var sendErrors int64
	for len(outs) > 0 {
		n, err := lan.WriteBatch(r.conn, outs)
		if n > len(outs) {
			n = len(outs)
		}
		outs = outs[n:]
		if err == nil {
			break
		}
		if len(outs) > 0 {
			r.tracer.Drop(obs.PathControl, obs.ReasonSendError, string(outs[0].To), 0)
			outs = outs[1:]
		}
		sendErrors++
	}
	r.mu.Lock()
	r.stats.AuthDropped += authDropped
	r.stats.Malformed += malformed
	r.stats.Rejected += rejected
	r.stats.Loops += loops
	r.stats.Refreshes += refreshes
	r.stats.Redirects += redirects
	r.stats.IdentityMismatch += identityMismatch
	r.stats.ReplayDropped += replays
	r.stats.TierSheds += tierSheds
	r.stats.SendErrors += sendErrors
	r.stats.AdmitBatches++
	r.nsubs -= int(tierSheds)
	r.mu.Unlock()
}

// revokeLease removes a.from's lease on behalf of one verified control
// request — an explicit cancel (LeaseMs 0) or a loop refusal. In
// session mode the lease is only dropped when the request was signed by
// the identity that holds it and carries a fresh sequence; any valid
// credential can produce a verifiable packet claiming any source, so
// without this check one subscriber could cancel another's lease with a
// spoofed source and its own key. The refusal reasons are returned for
// the caller's counters; with no lease present both are false and the
// revoke is a no-op.
func (r *Relay) revokeLease(a *admission) (mismatch, replay bool) {
	sh := r.shardFor(a.from)
	sh.mu.Lock()
	sub, ok := sh.subs[a.from]
	if ok && a.session {
		if sub.identity != a.identity {
			sh.mu.Unlock()
			r.tracer.Drop(obs.PathControl, obs.ReasonAuth, string(a.from), 0)
			return true, false
		}
		if a.seq <= sub.ctlSeq {
			sh.mu.Unlock()
			r.tracer.Drop(obs.PathControl, obs.ReasonStale, string(a.from), 0)
			return false, true
		}
	}
	if ok {
		r.profCount[sub.profile].Add(-1)
		r.dropCatchup(sub)
		sh.remove(sub)
	}
	sh.mu.Unlock()
	if ok {
		r.mu.Lock()
		r.stats.Unsubscribes++
		r.nsubs--
		r.mu.Unlock()
	}
	return false, false
}

// eligibleSiblings filters and ranks the steer candidates: not this
// relay itself, not anything chained directly behind it (redirecting a
// subscriber into our own subtree invites the loop the PathID check
// would then have to break), unicast-addressed, least-loaded first
// with address as the tie-break.
func (r *Relay) eligibleSiblings(records []proto.RelayInfo) []proto.RelayInfo {
	self := string(r.Addr())
	out := records[:0:0]
	for _, ri := range records {
		if ri.Addr == self || ri.Group == self {
			continue
		}
		if a := lan.Addr(ri.Addr); a.Validate() != nil || a.IsMulticast() {
			continue
		}
		out = append(out, ri)
	}
	sort.Slice(out, func(i, j int) bool {
		if si, sj := out[i].LoadScore(), out[j].LoadScore(); si != sj {
			return si < sj
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// pickSibling round-robins across the channel-compatible siblings.
// Caller holds r.mu (for the round-robin cursor).
func (r *Relay) pickSibling(sibs []proto.RelayInfo, channel uint32) string {
	n := len(sibs)
	for k := 0; k < n; k++ {
		ri := sibs[int(r.redirRR)%n]
		r.redirRR++
		if ri.Channel == 0 || channel == 0 || ri.Channel == channel {
			return ri.Addr
		}
	}
	return ""
}

// count applies a stats mutation under the relay lock.
func (r *Relay) count(fn func(*Stats)) {
	r.mu.Lock()
	fn(&r.stats)
	r.mu.Unlock()
}

// subscribe adds or refreshes one lease directly, bypassing the
// admission pipeline (no verification, no shedding, no lease
// clamping); it reports false when the table is full. Tests use it to
// install precise table states — sub-MinLease expiries included —
// without going through a Subscribe packet.
func (r *Relay) subscribe(addr lan.Addr, req *proto.Subscribe, lease time.Duration) bool {
	now := r.clock.Now()
	expires := now.Add(lease)
	sh := r.shardFor(addr)
	sh.mu.Lock()
	if sub, ok := sh.subs[addr]; ok {
		sub.expires = expires
		sub.channel = req.Channel
		sub.hops = req.Hops
		sub.pathID = req.PathID
		if prof := requestedProfile(req); prof != sub.reqProfile {
			r.profCount[sub.profile].Add(-1)
			sub.reqProfile, sub.profile = prof, prof
			r.profCount[prof].Add(1)
			sub.ladderAt = now
			sub.ladderDrops = sub.dropped
		}
		sh.mu.Unlock()
		r.count(func(s *Stats) { s.Refreshes++ })
		return true
	}
	r.mu.Lock()
	if r.nsubs >= r.cfg.MaxSubscribers {
		r.mu.Unlock()
		sh.mu.Unlock()
		return false
	}
	r.nsubs++
	r.stats.Subscribes++
	r.mu.Unlock()
	prof := requestedProfile(req)
	sub := &subscriber{
		addr: addr, channel: req.Channel,
		hops: req.Hops, pathID: req.PathID,
		profile: prof, reqProfile: prof, ladderAt: now,
		expires: expires,
	}
	r.profCount[prof].Add(1)
	sh.subs[addr] = sub
	sh.order = append(sh.order, sub)
	sh.mu.Unlock()
	return true
}

// pathInfo reports the loop-detection pair the relay's own upstream
// subscription carries: one hop more than the deepest downstream relay
// subscribed here, propagating that path's origin id — or this relay's
// own id when only speakers (hops 0, path 0) are subscribed. Around a
// cycle the propagated id eventually returns to its origin, which
// refuses with SubLoop; the growing hop count is the backstop.
func (r *Relay) pathInfo() (uint8, uint64) {
	var hops uint8
	pathID := r.relayID
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, sub := range sh.order {
			if sub.pathID != 0 && sub.hops >= hops {
				hops = sub.hops
				pathID = sub.pathID
			}
		}
		sh.mu.Unlock()
	}
	if hops < 255 {
		hops++
	}
	return hops, pathID
}

// unsubscribe cancels a lease if present.
func (r *Relay) unsubscribe(addr lan.Addr) {
	sh := r.shardFor(addr)
	sh.mu.Lock()
	sub, ok := sh.subs[addr]
	if ok {
		r.profCount[sub.profile].Add(-1)
		r.dropCatchup(sub)
		sh.remove(sub)
	}
	sh.mu.Unlock()
	if ok {
		r.mu.Lock()
		r.stats.Unsubscribes++
		r.nsubs--
		r.mu.Unlock()
	}
}

// fanout enqueues one upstream packet to every subscriber leased to
// its channel, applying drop-oldest backpressure per subscriber queue.
// ch is the packet's channel id (already parsed by handlePacket): a
// subscriber leased to channel X on a relay carrying a multi-channel
// group must never receive channel Y. The per-profile payload variants
// are built first, outside every shard lock, once per active profile —
// each subscriber then just picks its tier's bytes (falling back to
// the source payload when its tier cannot serve this stream).
func (r *Relay) fanout(ch uint32, data []byte) {
	payloads := r.buildProfilePayloads(ch, data)
	now := time.Now() // one residency stamp per fan-out, not per subscriber
	var dropped int64
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, sub := range sh.order {
			if sub.channel != 0 && sub.channel != ch {
				continue
			}
			if sub.catchup || sub.paused {
				// Fed from the DVR ring (or parked) — and this packet is
				// already in the ring, appended before fanout ran.
				continue
			}
			if len(sub.queue) >= r.cfg.QueueLen {
				// Drop the oldest packet: live audio wants fresh data,
				// and the sync logic discards stale batches anyway.
				copy(sub.queue, sub.queue[1:])
				sub.queue = sub.queue[:len(sub.queue)-1]
				sub.dropped++
				sh.dropped++
				sh.queued--
				dropped++
				r.tracer.Drop(obs.PathFanout, obs.ReasonQueueFull, string(sub.addr), ch)
			}
			pd, pf := payloads[sub.profile], sub.profile
			if pd == nil {
				pd, pf = data, codec.ProfileSource
			}
			sub.queue = append(sub.queue, queued{data: pd, prof: pf, at: now})
			sh.queued++
		}
		if sh.queued > sh.maxQueued {
			sh.maxQueued = sh.queued
		}
		if len(sh.order) > 0 {
			sh.work.Broadcast()
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		r.count(func(s *Stats) { s.FanoutDropped += dropped })
	}
}

// flushTrigger names what caused a batch flush.
type flushTrigger int

const (
	flushSize     flushTrigger = iota // batch reached cfg.Batch
	flushDeadline                     // partial batch aged out (FlushInterval)
	flushQuiesce                      // relay stopping; drain what's left
)

// shardWorker drains its shard's subscriber queues into lan.Datagram
// batches: round-robin across subscribers for fairness, per-subscriber
// FIFO so a subscriber's stream is never reordered, and — the delivery
// groups — profile-major within each gather pass, so subscribers on one
// tier land contiguously and flush sends one WriteBatch per group of
// identical payloads. A batch flushes when full (size), when a partial
// batch has waited FlushInterval for company (deadline), or when the
// relay stops (quiesce). The actual sends happen outside the shard lock.
func (r *Relay) shardWorker(sh *shard) {
	defer func() {
		if sh.ownConn {
			sh.conn.Close()
		}
		r.mu.Lock()
		r.workersDone++
		r.workersIdle.Broadcast()
		r.mu.Unlock()
	}()
	maxBatch := r.cfg.Batch
	dgs := lan.GetBatch() // reuse pool: zero steady-state allocation
	defer func() { lan.PutBatch(dgs) }()
	var owners []*subscriber  // owners[i] is the subscriber behind dgs[i]
	var profs []codec.Profile // profs[i] is dgs[i]'s delivery group
	for {
		dgs = dgs[:0]
		owners = owners[:0]
		profs = profs[:0]
		var deadline time.Time
		trigger := flushQuiesce
		sh.mu.Lock()
		for {
			// Gather: at most one queued packet per subscriber per profile
			// per pass, oldest first, until the batch fills or the queues
			// drain. The profile-major order is what makes each group one
			// contiguous run of identical payloads; per-subscriber FIFO
			// holds because only queue heads are taken and the profile
			// loop ascends while a queue's head can match at most once.
			// One wall-clock read serves the whole pass's residency math.
			progress := false
			var now time.Time
			for p := codec.Profile(0); p.Valid() && len(dgs) < maxBatch; p++ {
				for _, sub := range sh.order {
					if len(dgs) >= maxBatch {
						break
					}
					if len(sub.queue) == 0 || sub.queue[0].prof != p {
						continue
					}
					q := sub.queue[0]
					copy(sub.queue, sub.queue[1:])
					sub.queue = sub.queue[:len(sub.queue)-1]
					sh.queued--
					if now.IsZero() {
						now = time.Now()
					}
					r.queueResidency.Observe(now.Sub(q.at))
					dgs = append(dgs, lan.Datagram{To: sub.addr, Data: q.data})
					owners = append(owners, sub)
					profs = append(profs, p)
					progress = true
				}
			}
			var dvrWait time.Duration
			if r.dvr != nil && len(dgs) < maxBatch && !sh.stopped {
				var dvrProgress bool
				dvrProgress, dvrWait = r.gatherCatchup(sh, &dgs, &owners, &profs, maxBatch)
				progress = progress || dvrProgress
			}
			if len(dgs) >= maxBatch {
				trigger = flushSize
				break
			}
			if sh.stopped {
				trigger = flushQuiesce
				break
			}
			if progress {
				continue // queues may hold more packets
			}
			if len(dgs) > 0 {
				// Partial batch and nothing queued: linger briefly for
				// more work, but never past the flush deadline.
				if deadline.IsZero() {
					deadline = r.clock.Now().Add(r.cfg.FlushInterval)
				}
				remain := deadline.Sub(r.clock.Now())
				if remain <= 0 || !sh.work.WaitTimeout(&sh.mu, remain) {
					trigger = flushDeadline
					break
				}
				continue
			}
			if dvrWait > 0 {
				// Token-starved catch-up and nothing else to do: sleep
				// until the bucket refills rather than waiting for a
				// signal that may never come.
				sh.work.WaitTimeout(&sh.mu, dvrWait)
				continue
			}
			sh.work.Wait(&sh.mu)
		}
		stopped := sh.stopped
		sh.mu.Unlock()
		if len(dgs) > 0 {
			r.flush(sh, dgs, owners, profs, trigger)
		}
		if stopped && len(dgs) == 0 {
			return
		}
	}
}

// groupByDest stable-sorts one delivery group and its owners by
// destination: a subscriber owed several packets of one tier ends up
// with them adjacent (and, stable, still in FIFO order), which is the
// run shape the GSO backend coalesces into a single kernel send.
type groupByDest struct {
	dgs    []lan.Datagram
	owners []*subscriber
}

func (g groupByDest) Len() int           { return len(g.dgs) }
func (g groupByDest) Less(i, j int) bool { return g.dgs[i].To < g.dgs[j].To }
func (g groupByDest) Swap(i, j int) {
	g.dgs[i], g.dgs[j] = g.dgs[j], g.dgs[i]
	g.owners[i], g.owners[j] = g.owners[j], g.owners[i]
}

// flush sends one gathered batch through the shard's socket as one
// WriteBatch per delivery group — each contiguous same-profile run the
// gather produced — and settles the accounting. With GSO configured
// each group is additionally sorted by destination first, so same-size
// packets owed to one subscriber coalesce into UDP_SEGMENT sends.
func (r *Relay) flush(sh *shard, dgs []lan.Datagram, owners []*subscriber, profs []codec.Profile, trigger flushTrigger) {
	t0 := time.Now()
	first, size := dgs[0].To, len(dgs)
	var sent, errs, groups int64
	for len(dgs) > 0 {
		n := 1
		for n < len(dgs) && profs[n] == profs[0] {
			n++
		}
		if r.cfg.GSO && n > 1 {
			sort.Stable(groupByDest{dgs: dgs[:n], owners: owners[:n]})
		}
		gs, ge := r.sendGroup(sh, dgs[:n], owners[:n])
		sent += gs
		errs += ge
		groups++
		dgs, owners, profs = dgs[n:], owners[n:], profs[n:]
	}
	r.flushLatency.Observe(time.Since(t0))
	r.tracer.Send(obs.PathFanout, string(first), 0, size)
	r.count(func(s *Stats) {
		s.FanoutSent += sent
		s.SendErrors += errs
		s.Batches += groups
		switch trigger {
		case flushSize:
			s.FlushSize++
		case flushDeadline:
			s.FlushDeadline++
		case flushQuiesce:
			s.FlushQuiesce++
		}
	})
}

// sendGroup delivers one delivery group. WriteBatch has prefix
// semantics — datagrams before the first error were handed to the
// substrate, the rest were not — so on a partial send the failing
// datagram is skipped and the remainder retried: one subscriber with a
// poisoned path (ICMP-refused port, firewall EPERM) must not starve
// the subscribers batched after it.
func (r *Relay) sendGroup(sh *shard, dgs []lan.Datagram, owners []*subscriber) (sent, errs int64) {
	for len(dgs) > 0 {
		n, err := lan.WriteBatch(sh.conn, dgs)
		if n > len(dgs) {
			n = len(dgs) // defensive: prefix contract
		}
		sh.mu.Lock()
		for _, sub := range owners[:n] {
			sub.sent++
		}
		sh.sent += int64(n)
		sh.mu.Unlock()
		sent += int64(n)
		dgs, owners = dgs[n:], owners[n:]
		if err == nil {
			break
		}
		if len(dgs) > 0 { // skip the datagram that errored, keep going
			r.tracer.Drop(obs.PathFanout, obs.ReasonSendError, string(dgs[0].To), 0)
			dgs, owners = dgs[1:], owners[1:]
		}
		errs++
	}
	return sent, errs
}

// sweep expires silent subscribers and frees their queues; with the
// ladder enabled it is also the quality controller's clock, stepping
// each shard's subscribers down under sustained drops and back up
// after a drop-free dwell (see ladderStep).
func (r *Relay) sweep() {
	for {
		r.clock.Sleep(r.cfg.SweepInterval)
		if r.isStopped() {
			return
		}
		now := r.clock.Now()
		var expired, down, up int64
		for _, sh := range r.shards {
			sh.mu.Lock()
			for _, sub := range append([]*subscriber(nil), sh.order...) {
				if !sub.expires.After(now) {
					r.profCount[sub.profile].Add(-1)
					r.dropCatchup(sub)
					sh.remove(sub)
					expired++
				}
			}
			if r.cfg.Ladder {
				d, u := r.ladderStep(sh, now)
				down += d
				up += u
			}
			sh.mu.Unlock()
		}
		if expired+down+up > 0 {
			r.mu.Lock()
			r.nsubs -= int(expired)
			r.stats.Expired += expired
			r.stats.LadderDown += down
			r.stats.LadderUp += up
			r.mu.Unlock()
		}
	}
}
