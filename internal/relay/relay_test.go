package relay

import (
	"strings"
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vclock"
)

const testGroup = lan.Addr("239.72.5.1:5004")

// newTestRelay builds a relay on a fresh sim segment without starting
// Run — the white-box tests drive packet handling directly.
func newTestRelay(t *testing.T, cfg Config) (*vclock.Sim, *lan.Segment, *Relay) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Group = testGroup
	r, err := New(sim, conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, seg, r
}

// subscribePkt builds an inbound subscribe packet from addr.
func subscribePkt(t *testing.T, from lan.Addr, channel, seq, leaseMs uint32) lan.Packet {
	t.Helper()
	data, err := (&proto.Subscribe{Channel: channel, Seq: seq, LeaseMs: leaseMs}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return lan.Packet{From: from, To: "10.0.0.1:5006", Data: data}
}

func TestRejectsNonMulticastGroup(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, _ := seg.Attach("10.0.0.1:5006")
	if _, err := New(sim, conn, Config{Group: "10.0.0.9:5004"}); err == nil {
		t.Fatal("unicast group accepted")
	}
}

func TestSubscribeRefreshUnsubscribe(t *testing.T) {
	_, _, r := newTestRelay(t, Config{Channel: 1})

	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 1, 1, 10000))
	if n := r.NumSubscribers(); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
	// Refresh extends, not duplicates.
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 1, 2, 10000))
	if n := r.NumSubscribers(); n != 1 {
		t.Fatalf("after refresh subscribers = %d, want 1", n)
	}
	// Wildcard channel 0 is accepted by a channel-pinned relay.
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 10000))
	if n := r.NumSubscribers(); n != 2 {
		t.Fatalf("after wildcard subscribers = %d, want 2", n)
	}
	// Wrong channel is refused.
	r.handleSubscribe(subscribePkt(t, "10.0.0.4:5004", 9, 1, 10000))
	if n := r.NumSubscribers(); n != 2 {
		t.Fatalf("after foreign-channel subscribers = %d, want 2", n)
	}
	// Zero lease cancels.
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 1, 3, 0))
	if n := r.NumSubscribers(); n != 1 {
		t.Fatalf("after unsubscribe subscribers = %d, want 1", n)
	}
	st := r.Stats()
	if st.Subscribes != 2 || st.Refreshes != 1 || st.Unsubscribes != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubscriberTableCap(t *testing.T) {
	_, _, r := newTestRelay(t, Config{MaxSubscribers: 2})
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 1, 10000))
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 10000))
	r.handleSubscribe(subscribePkt(t, "10.0.0.4:5004", 0, 1, 10000))
	if n := r.NumSubscribers(); n != 2 {
		t.Fatalf("subscribers = %d, want 2 (capped)", n)
	}
	if st := r.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	// A refresh of an existing subscriber still succeeds at the cap.
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 2, 10000))
	if st := r.Stats(); st.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", st.Refreshes)
	}
}

func TestLeaseClamping(t *testing.T) {
	_, _, r := newTestRelay(t, Config{MaxLease: 10 * time.Second})
	// Below MinLease rounds up; above MaxLease clamps down. The granted
	// value comes back in the expiry horizon.
	now := r.clock.Now()
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 1, 1)) // 1 ms
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 3_600_000))
	subs := r.Subscribers()
	if len(subs) != 2 {
		t.Fatalf("subscribers = %d", len(subs))
	}
	if d := subs[0].Expires.Sub(now); d != MinLease {
		t.Errorf("tiny lease granted %v, want %v", d, MinLease)
	}
	if d := subs[1].Expires.Sub(now); d != 10*time.Second {
		t.Errorf("huge lease granted %v, want %v", d, 10*time.Second)
	}
}

func TestFanoutDropOldest(t *testing.T) {
	_, _, r := newTestRelay(t, Config{QueueLen: 4})
	if !r.subscribe("10.0.0.2:5004", 0, time.Minute) {
		t.Fatal("subscribe failed")
	}
	// No worker is running: queue fills, then drop-oldest kicks in.
	for i := 0; i < 10; i++ {
		r.fanout([]byte{byte(i)})
	}
	subs := r.Subscribers()
	if len(subs) != 1 {
		t.Fatalf("subscribers = %d", len(subs))
	}
	if subs[0].Queued != 4 {
		t.Errorf("queued = %d, want 4", subs[0].Queued)
	}
	if subs[0].Dropped != 6 {
		t.Errorf("dropped = %d, want 6", subs[0].Dropped)
	}
	if st := r.Stats(); st.FanoutDropped != 6 {
		t.Errorf("stats dropped = %d, want 6", st.FanoutDropped)
	}
	// The survivors are the newest packets, oldest first.
	sh := r.shardFor("10.0.0.2:5004")
	sh.mu.Lock()
	q := sh.subs["10.0.0.2:5004"].queue
	var got []byte
	for _, p := range q {
		got = append(got, p[0])
	}
	sh.mu.Unlock()
	if string(got) != string([]byte{6, 7, 8, 9}) {
		t.Errorf("queue = %v, want [6 7 8 9]", got)
	}
}

func TestShardingSpreadsSubscribers(t *testing.T) {
	_, _, r := newTestRelay(t, Config{Shards: 4})
	addrs := []lan.Addr{}
	for i := 0; i < 32; i++ {
		a := lan.Addr("10.0.1." + string(rune('0'+i/10)) + string(rune('0'+i%10)) + ":5004")
		addrs = append(addrs, a)
		if !r.subscribe(a, 0, time.Minute) {
			t.Fatal("subscribe failed")
		}
	}
	nonEmpty := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		if len(sh.subs) > 0 {
			nonEmpty++
		}
		sh.mu.Unlock()
	}
	if nonEmpty < 2 {
		t.Fatalf("all %d subscribers hashed to %d shard(s)", len(addrs), nonEmpty)
	}
	if n := r.NumSubscribers(); n != 32 {
		t.Fatalf("subscribers = %d", n)
	}
}

func TestLeaseExpirySweep(t *testing.T) {
	sim, _, r := newTestRelay(t, Config{SweepInterval: 500 * time.Millisecond})
	var midCount, endCount int
	var endStats Stats
	sim.Go("relay", r.Run)
	sim.Go("test", func() {
		r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 1, 2000))
		r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 60000))
		// Queue something on the short-lease subscriber so expiry must
		// also free the queue.
		r.fanout([]byte{1, 2, 3})
		sim.Sleep(1 * time.Second)
		midCount = r.NumSubscribers()
		sim.Sleep(3 * time.Second)
		endCount = r.NumSubscribers()
		endStats = r.Stats()
		r.Stop()
	})
	sim.WaitIdle()
	if midCount != 2 {
		t.Fatalf("subscribers before expiry = %d, want 2", midCount)
	}
	if endCount != 1 {
		t.Fatalf("subscribers after expiry = %d, want 1", endCount)
	}
	if endStats.Expired != 1 {
		t.Fatalf("expired = %d, want 1 (stats %+v)", endStats.Expired, endStats)
	}
	subs := r.Subscribers()
	if len(subs) != 1 || subs[0].Addr != "10.0.0.3:5004" {
		t.Fatalf("survivor = %+v", subs)
	}
}

func TestSubAckReturnsGrantedLease(t *testing.T) {
	sim, seg, r := newTestRelay(t, Config{MaxLease: 10 * time.Second})
	sub, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	var ack *proto.SubAck
	sim.Go("relay", r.Run)
	sim.Go("subscriber", func() {
		defer sub.Close()
		data, _ := (&proto.Subscribe{Channel: 0, Seq: 7, LeaseMs: 3_600_000}).Marshal()
		if err := sub.Send(r.Addr(), data); err != nil {
			t.Error(err)
			return
		}
		pkt, err := sub.Recv(2 * time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		ack, _ = proto.UnmarshalSubAck(pkt.Data)
		r.Stop()
	})
	sim.WaitIdle()
	if ack == nil {
		t.Fatal("no suback")
	}
	if ack.Seq != 7 || ack.Status != proto.SubOK {
		t.Fatalf("ack = %+v", ack)
	}
	if ack.LeaseMs != 10000 {
		t.Fatalf("granted lease = %d ms, want clamped 10000", ack.LeaseMs)
	}
}

func TestUnicastInjectionNotRelayed(t *testing.T) {
	// A data packet that did NOT arrive off the multicast group (e.g.
	// forged and sent straight to the relay's unicast address) must not
	// be fanned out — that would be a one-in, N-out amplifier.
	_, _, r := newTestRelay(t, Config{Channel: 1})
	if !r.subscribe("10.0.0.2:5004", 1, time.Minute) {
		t.Fatal("subscribe failed")
	}
	data, err := (&proto.Data{Channel: 1, Epoch: 1, Seq: 1, Payload: []byte{1}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r.handlePacket(lan.Packet{From: "10.0.0.66:1234", To: "10.0.0.1:5006", Data: data})
	if st := r.Stats(); st.UpstreamData != 0 || st.UpstreamForeign != 1 {
		t.Fatalf("injected packet counted as upstream: %+v", st)
	}
	if subs := r.Subscribers(); subs[0].Queued != 0 {
		t.Fatalf("injected packet queued for fan-out: %+v", subs[0])
	}
	// The same packet arriving off the group is relayed.
	r.handlePacket(lan.Packet{From: "10.0.0.9:5000", To: testGroup, Data: data})
	if st := r.Stats(); st.UpstreamData != 1 {
		t.Fatalf("group packet not relayed: %+v", st)
	}
	if subs := r.Subscribers(); subs[0].Queued != 1 {
		t.Fatalf("group packet not queued: %+v", subs[0])
	}
}

func TestTableRendersSubscribers(t *testing.T) {
	_, _, r := newTestRelay(t, Config{})
	r.subscribe("10.0.0.2:5004", 1, time.Minute)
	var sb strings.Builder
	r.Table().Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "10.0.0.2:5004") {
		t.Fatalf("table missing subscriber:\n%s", out)
	}
}
