package relay

import (
	"strings"
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/security"
	"repro/internal/vclock"
)

const testGroup = lan.Addr("239.72.5.1:5004")

// newTestRelay builds a relay on a fresh sim segment without starting
// Run — the white-box tests drive packet handling directly.
func newTestRelay(t *testing.T, cfg Config) (*vclock.Sim, *lan.Segment, *Relay) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Group = testGroup
	r, err := New(sim, conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, seg, r
}

// subscribePkt builds an inbound subscribe packet from addr.
func subscribePkt(t *testing.T, from lan.Addr, channel, seq, leaseMs uint32) lan.Packet {
	t.Helper()
	data, err := (&proto.Subscribe{Channel: channel, Seq: seq, LeaseMs: leaseMs}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return lan.Packet{From: from, To: "10.0.0.1:5006", Data: data}
}

func TestRejectsNonMulticastGroup(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, _ := seg.Attach("10.0.0.1:5006")
	if _, err := New(sim, conn, Config{Group: "10.0.0.9:5004"}); err == nil {
		t.Fatal("unicast group accepted")
	}
}

func TestSubscribeRefreshUnsubscribe(t *testing.T) {
	_, _, r := newTestRelay(t, Config{Channel: 1})

	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 1, 1, 10000))
	if n := r.NumSubscribers(); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
	// Refresh extends, not duplicates.
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 1, 2, 10000))
	if n := r.NumSubscribers(); n != 1 {
		t.Fatalf("after refresh subscribers = %d, want 1", n)
	}
	// Wildcard channel 0 is accepted by a channel-pinned relay.
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 10000))
	if n := r.NumSubscribers(); n != 2 {
		t.Fatalf("after wildcard subscribers = %d, want 2", n)
	}
	// Wrong channel is refused.
	r.handleSubscribe(subscribePkt(t, "10.0.0.4:5004", 9, 1, 10000))
	if n := r.NumSubscribers(); n != 2 {
		t.Fatalf("after foreign-channel subscribers = %d, want 2", n)
	}
	// Zero lease cancels.
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 1, 3, 0))
	if n := r.NumSubscribers(); n != 1 {
		t.Fatalf("after unsubscribe subscribers = %d, want 1", n)
	}
	st := r.Stats()
	if st.Subscribes != 2 || st.Refreshes != 1 || st.Unsubscribes != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubscriberTableCap(t *testing.T) {
	_, _, r := newTestRelay(t, Config{MaxSubscribers: 2})
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 1, 10000))
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 10000))
	r.handleSubscribe(subscribePkt(t, "10.0.0.4:5004", 0, 1, 10000))
	if n := r.NumSubscribers(); n != 2 {
		t.Fatalf("subscribers = %d, want 2 (capped)", n)
	}
	if st := r.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	// A refresh of an existing subscriber still succeeds at the cap.
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 2, 10000))
	if st := r.Stats(); st.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", st.Refreshes)
	}
}

func TestLeaseClamping(t *testing.T) {
	_, _, r := newTestRelay(t, Config{MaxLease: 10 * time.Second})
	// Below MinLease rounds up; above MaxLease clamps down. The granted
	// value comes back in the expiry horizon.
	now := r.clock.Now()
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 1, 1)) // 1 ms
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 3_600_000))
	subs := r.Subscribers()
	if len(subs) != 2 {
		t.Fatalf("subscribers = %d", len(subs))
	}
	if d := subs[0].Expires.Sub(now); d != MinLease {
		t.Errorf("tiny lease granted %v, want %v", d, MinLease)
	}
	if d := subs[1].Expires.Sub(now); d != 10*time.Second {
		t.Errorf("huge lease granted %v, want %v", d, 10*time.Second)
	}
}

func TestFanoutDropOldest(t *testing.T) {
	_, _, r := newTestRelay(t, Config{QueueLen: 4})
	if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Channel: 0}, time.Minute) {
		t.Fatal("subscribe failed")
	}
	// No worker is running: queue fills, then drop-oldest kicks in.
	for i := 0; i < 10; i++ {
		r.fanout(0, []byte{byte(i)})
	}
	subs := r.Subscribers()
	if len(subs) != 1 {
		t.Fatalf("subscribers = %d", len(subs))
	}
	if subs[0].Queued != 4 {
		t.Errorf("queued = %d, want 4", subs[0].Queued)
	}
	if subs[0].Dropped != 6 {
		t.Errorf("dropped = %d, want 6", subs[0].Dropped)
	}
	if st := r.Stats(); st.FanoutDropped != 6 {
		t.Errorf("stats dropped = %d, want 6", st.FanoutDropped)
	}
	// The survivors are the newest packets, oldest first.
	sh := r.shardFor("10.0.0.2:5004")
	sh.mu.Lock()
	q := sh.subs["10.0.0.2:5004"].queue
	var got []byte
	for _, p := range q {
		got = append(got, p.data[0])
	}
	sh.mu.Unlock()
	if string(got) != string([]byte{6, 7, 8, 9}) {
		t.Errorf("queue = %v, want [6 7 8 9]", got)
	}
}

func TestShardingSpreadsSubscribers(t *testing.T) {
	_, _, r := newTestRelay(t, Config{Shards: 4})
	addrs := []lan.Addr{}
	for i := 0; i < 32; i++ {
		a := lan.Addr("10.0.1." + string(rune('0'+i/10)) + string(rune('0'+i%10)) + ":5004")
		addrs = append(addrs, a)
		if !r.subscribe(a, &proto.Subscribe{Channel: 0}, time.Minute) {
			t.Fatal("subscribe failed")
		}
	}
	nonEmpty := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		if len(sh.subs) > 0 {
			nonEmpty++
		}
		sh.mu.Unlock()
	}
	if nonEmpty < 2 {
		t.Fatalf("all %d subscribers hashed to %d shard(s)", len(addrs), nonEmpty)
	}
	if n := r.NumSubscribers(); n != 32 {
		t.Fatalf("subscribers = %d", n)
	}
}

func TestLeaseExpirySweep(t *testing.T) {
	sim, _, r := newTestRelay(t, Config{SweepInterval: 500 * time.Millisecond})
	var midCount, endCount int
	var endStats Stats
	sim.Go("relay", r.Run)
	sim.Go("test", func() {
		r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 1, 2000))
		r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 60000))
		// Queue something on the short-lease subscriber so expiry must
		// also free the queue.
		r.fanout(0, []byte{1, 2, 3})
		sim.Sleep(1 * time.Second)
		midCount = r.NumSubscribers()
		sim.Sleep(3 * time.Second)
		endCount = r.NumSubscribers()
		endStats = r.Stats()
		r.Stop()
	})
	sim.WaitIdle()
	if midCount != 2 {
		t.Fatalf("subscribers before expiry = %d, want 2", midCount)
	}
	if endCount != 1 {
		t.Fatalf("subscribers after expiry = %d, want 1", endCount)
	}
	if endStats.Expired != 1 {
		t.Fatalf("expired = %d, want 1 (stats %+v)", endStats.Expired, endStats)
	}
	subs := r.Subscribers()
	if len(subs) != 1 || subs[0].Addr != "10.0.0.3:5004" {
		t.Fatalf("survivor = %+v", subs)
	}
}

func TestSubAckReturnsGrantedLease(t *testing.T) {
	sim, seg, r := newTestRelay(t, Config{MaxLease: 10 * time.Second})
	sub, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	var ack *proto.SubAck
	sim.Go("relay", r.Run)
	sim.Go("subscriber", func() {
		defer sub.Close()
		data, _ := (&proto.Subscribe{Channel: 0, Seq: 7, LeaseMs: 3_600_000}).Marshal()
		if err := sub.Send(r.Addr(), data); err != nil {
			t.Error(err)
			return
		}
		pkt, err := sub.Recv(2 * time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		ack, _ = proto.UnmarshalSubAck(pkt.Data)
		r.Stop()
	})
	sim.WaitIdle()
	if ack == nil {
		t.Fatal("no suback")
	}
	if ack.Seq != 7 || ack.Status != proto.SubOK {
		t.Fatalf("ack = %+v", ack)
	}
	if ack.LeaseMs != 10000 {
		t.Fatalf("granted lease = %d ms, want clamped 10000", ack.LeaseMs)
	}
}

func TestUnicastInjectionNotRelayed(t *testing.T) {
	// A data packet that did NOT arrive off the multicast group (e.g.
	// forged and sent straight to the relay's unicast address) must not
	// be fanned out — that would be a one-in, N-out amplifier.
	_, _, r := newTestRelay(t, Config{Channel: 1})
	if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Channel: 1}, time.Minute) {
		t.Fatal("subscribe failed")
	}
	data, err := (&proto.Data{Channel: 1, Epoch: 1, Seq: 1, Payload: []byte{1}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r.handlePacket(lan.Packet{From: "10.0.0.66:1234", To: "10.0.0.1:5006", Data: data})
	if st := r.Stats(); st.UpstreamData != 0 || st.UpstreamForeign != 1 {
		t.Fatalf("injected packet counted as upstream: %+v", st)
	}
	if subs := r.Subscribers(); subs[0].Queued != 0 {
		t.Fatalf("injected packet queued for fan-out: %+v", subs[0])
	}
	// The same packet arriving off the group is relayed.
	r.handlePacket(lan.Packet{From: "10.0.0.9:5000", To: testGroup, Data: data})
	if st := r.Stats(); st.UpstreamData != 1 {
		t.Fatalf("group packet not relayed: %+v", st)
	}
	if subs := r.Subscribers(); subs[0].Queued != 1 {
		t.Fatalf("group packet not queued: %+v", subs[0])
	}
}

func TestPartialBatchFlushedOnDeadline(t *testing.T) {
	// Three packets against a batch size of 8: the batch never fills, so
	// the worker must flush it on the flush interval, as one batch.
	sim, _, r := newTestRelay(t, Config{
		Batch: 8, FlushInterval: 5 * time.Millisecond,
	})
	var st Stats
	sim.Go("relay", r.Run)
	sim.Go("test", func() {
		if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Channel: 0}, time.Minute) {
			t.Error("subscribe failed")
		}
		r.fanout(0, []byte{1})
		r.fanout(0, []byte{2})
		r.fanout(0, []byte{3})
		sim.Sleep(50 * time.Millisecond)
		st = r.Stats()
		r.Stop()
	})
	sim.WaitIdle()
	if st.FanoutSent != 3 {
		t.Fatalf("fanout sent = %d, want 3 (stats %+v)", st.FanoutSent, st)
	}
	if st.FlushDeadline != 1 || st.Batches != 1 || st.FlushSize != 0 {
		t.Fatalf("want exactly one deadline flush carrying all 3: %+v", st)
	}
}

func TestPartialBatchFlushedOnShutdown(t *testing.T) {
	// A partial batch is parked behind an hour-long flush interval; Stop
	// must still deliver it (quiesce flush) before any socket closes.
	sim, seg, r := newTestRelay(t, Config{Batch: 8, FlushInterval: time.Hour})
	sub, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	var got int
	var st Stats
	sim.Go("drain", func() {
		for {
			if _, err := sub.Recv(0); err != nil {
				return
			}
			got++
		}
	})
	sim.Go("relay", r.Run)
	sim.Go("test", func() {
		if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Channel: 0}, time.Minute) {
			t.Error("subscribe failed")
		}
		r.fanout(0, []byte{1})
		r.fanout(0, []byte{2})
		r.fanout(0, []byte{3})
		sim.Sleep(10 * time.Millisecond) // far short of the flush interval
		r.Stop()
		st = r.Stats()
		sim.Sleep(10 * time.Millisecond) // let deliveries land
		sub.Close()
	})
	sim.WaitIdle()
	if st.FlushQuiesce != 1 || st.FanoutSent != 3 || st.SendErrors != 0 {
		t.Fatalf("quiesce flush missing or lossy: %+v", st)
	}
	if got != 3 {
		t.Fatalf("subscriber received %d of 3 packets parked at shutdown", got)
	}
}

func TestSubscriberExpiringMidBatch(t *testing.T) {
	// The sweeper removes a subscriber while its packets sit in a
	// worker's pending batch. The flush must still complete and the
	// accounting stay consistent — sends to a departed address are just
	// UDP datagrams nobody reads.
	sim, _, r := newTestRelay(t, Config{
		Batch:         8,
		FlushInterval: 20 * time.Millisecond,
		SweepInterval: time.Millisecond,
	})
	var st Stats
	var subs int
	sim.Go("relay", r.Run)
	sim.Go("test", func() {
		if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Channel: 0}, time.Millisecond) {
			t.Error("subscribe failed")
		}
		r.fanout(0, []byte{1})
		r.fanout(0, []byte{2})
		// Lease runs out at 1ms; the batch deadline-flushes at 20ms.
		sim.Sleep(100 * time.Millisecond)
		st = r.Stats()
		subs = r.NumSubscribers()
		r.Stop()
	})
	sim.WaitIdle()
	if st.Expired != 1 || subs != 0 {
		t.Fatalf("subscriber not expired: %d subs, stats %+v", subs, st)
	}
	if st.FanoutSent != 2 || st.Batches != 1 {
		t.Fatalf("mid-batch expiry corrupted the flush: %+v", st)
	}
}

func TestFlushSkipsPoisonedDestination(t *testing.T) {
	// One subscriber whose sends always fail must cost only its own
	// packets: flush skips the failing datagram and retries the rest of
	// the batch, so subscribers ordered after it still get everything.
	sim, _, r := newTestRelay(t, Config{
		Shards: 1, Batch: 8, FlushInterval: time.Millisecond,
	})
	for _, a := range []lan.Addr{"10.0.0.2:5004", "bad-address", "10.0.0.3:5004"} {
		if !r.subscribe(a, &proto.Subscribe{Channel: 0}, time.Minute) {
			t.Fatalf("subscribe %s failed", a)
		}
	}
	var st Stats
	var subs []SubscriberInfo
	sim.Go("relay", r.Run)
	sim.Go("test", func() {
		r.fanout(0, []byte{1})
		r.fanout(0, []byte{2})
		sim.Sleep(50 * time.Millisecond)
		st = r.Stats()
		subs = r.Subscribers()
		r.Stop()
	})
	sim.WaitIdle()
	if st.FanoutSent != 4 || st.SendErrors != 2 {
		t.Fatalf("sent/errors = %d/%d, want 4/2 (stats %+v)", st.FanoutSent, st.SendErrors, st)
	}
	for _, s := range subs {
		want := int64(2)
		if s.Addr == "bad-address" {
			want = 0
		}
		if s.Sent != want {
			t.Fatalf("%s sent = %d, want %d (after poisoned peer)", s.Addr, s.Sent, want)
		}
	}
}

func TestPerShardSendSockets(t *testing.T) {
	// With a Network configured, data leaves through shard-owned
	// ephemeral sockets, not the subscribe/ack socket.
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(sim, conn, Config{Group: testGroup, Network: seg, Batch: 4,
		FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	var ackFrom, dataFrom lan.Addr
	sim.Go("relay", r.Run)
	sim.Go("subscriber", func() {
		data, _ := (&proto.Subscribe{Channel: 0, Seq: 1, LeaseMs: 60000}).Marshal()
		if err := sub.Send(r.Addr(), data); err != nil {
			t.Error(err)
			return
		}
		pkt, err := sub.Recv(time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		ackFrom = pkt.From
		// Feed one data packet in off the group.
		dp, _ := (&proto.Data{Channel: 1, Epoch: 1, Seq: 1, Payload: []byte{9}}).Marshal()
		r.handlePacket(lan.Packet{From: "10.0.0.9:5000", To: testGroup, Data: dp})
		pkt, err = sub.Recv(time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		dataFrom = pkt.From
		r.Stop()
		sub.Close()
	})
	sim.WaitIdle()
	if ackFrom != r.Addr() {
		t.Fatalf("suback came from %s, want the relay's leased address %s", ackFrom, r.Addr())
	}
	if dataFrom == "" || dataFrom == r.Addr() {
		t.Fatalf("data came from %s, want a shard-owned ephemeral socket", dataFrom)
	}
}

func TestFanoutFiltersByChannel(t *testing.T) {
	// Regression: a channel-0 relay carrying a multi-channel group used
	// to enqueue every packet to every subscriber regardless of the
	// channel it leased. A subscriber leased to channel X must receive
	// zero channel-Y packets; a wildcard (channel 0) subscriber gets
	// everything.
	_, _, r := newTestRelay(t, Config{})
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 1, 1, 10000))
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 2, 1, 10000))
	r.handleSubscribe(subscribePkt(t, "10.0.0.4:5004", 0, 1, 10000))
	for ch := uint32(1); ch <= 2; ch++ {
		data, err := (&proto.Data{Channel: ch, Epoch: 1, Seq: 1, Payload: []byte{byte(ch)}}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		r.handlePacket(lan.Packet{From: "10.0.0.9:5000", To: testGroup, Data: data})
	}
	want := map[lan.Addr]int{"10.0.0.2:5004": 1, "10.0.0.3:5004": 1, "10.0.0.4:5004": 2}
	for _, s := range r.Subscribers() {
		if s.Queued != want[s.Addr] {
			t.Errorf("%s (channel %d) queued %d packets, want %d", s.Addr, s.Channel, s.Queued, want[s.Addr])
		}
	}
}

// subscribeLoopPkt builds an inbound subscribe carrying path fields.
func subscribeLoopPkt(t *testing.T, from lan.Addr, hops uint8, pathID uint64) lan.Packet {
	t.Helper()
	data, err := (&proto.Subscribe{Seq: 1, LeaseMs: 10000, Hops: hops, PathID: pathID}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return lan.Packet{From: from, To: "10.0.0.1:5006", Data: data}
}

func TestSubscribeLoopRefused(t *testing.T) {
	sim, seg, r := newTestRelay(t, Config{MaxHops: 4})
	sub, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	var acks []proto.SubStatus
	sim.Go("relay", r.Run)
	sim.Go("test", func() {
		defer sub.Close()
		send := func(hops uint8, pathID uint64) {
			data, _ := (&proto.Subscribe{Seq: 1, LeaseMs: 10000, Hops: hops, PathID: pathID}).Marshal()
			if err := sub.Send(r.Addr(), data); err != nil {
				t.Error(err)
				return
			}
			pkt, err := sub.Recv(time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			if ack, err := proto.UnmarshalSubAck(pkt.Data); err == nil {
				acks = append(acks, ack.Status)
			}
		}
		send(1, 12345)      // benign downstream relay: granted
		send(1, r.PathID()) // path revisits this relay: refused, lease dropped
		send(4, 54321)      // at the hop ceiling: refused
		r.Stop()
	})
	sim.WaitIdle()
	want := []proto.SubStatus{proto.SubOK, proto.SubLoop, proto.SubLoop}
	if len(acks) != len(want) {
		t.Fatalf("acks = %v, want %v", acks, want)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("ack %d = %v, want %v (all %v)", i, acks[i], want[i], acks)
		}
	}
	// The SubLoop refusal of the refresh must also have dropped the
	// lease granted in the first exchange: an established loop is torn
	// down, not left to spin until expiry.
	if n := r.NumSubscribers(); n != 0 {
		t.Fatalf("subscribers after loop refusal = %d, want 0", n)
	}
	st := r.Stats()
	if st.Loops != 2 || st.Rejected != 2 {
		t.Fatalf("loop accounting = %+v", st)
	}
}

func TestMaxHopsClampedToWireLimit(t *testing.T) {
	// Propagated hop counts saturate at 255 on the wire; a configured
	// limit beyond that would never trip, silently disabling the loop
	// backstop. It must clamp, so a saturated path is still refused.
	_, _, r := newTestRelay(t, Config{MaxHops: 300})
	r.handlePacket(subscribeLoopPkt(t, "10.0.0.2:5004", 255, 777))
	if n := r.NumSubscribers(); n != 0 {
		t.Fatalf("saturated-hops subscribe granted under MaxHops=300 (subs %d)", n)
	}
	if st := r.Stats(); st.Loops != 1 {
		t.Fatalf("loop accounting = %+v", st)
	}
}

func TestPathIDDistinctForIdenticalBindAddresses(t *testing.T) {
	// Regression: the path identity used to be a hash of the local bind
	// address, so two relayds on different hosts both bound to the
	// default "0.0.0.0:5006" shared one identity and a straight chain
	// between them refused itself as a loop. Identity must be unique
	// per instance even when the bind strings are identical.
	ids := make(map[uint64]bool)
	for i := 0; i < 4; i++ {
		sim := vclock.NewSim(time.Time{})
		seg := lan.NewSegment(sim, lan.SegmentConfig{})
		conn, err := seg.Attach("10.0.0.1:5006") // same string on every "host"
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(sim, conn, Config{Group: testGroup})
		if err != nil {
			t.Fatal(err)
		}
		if r.PathID() == 0 {
			t.Fatal("zero path id")
		}
		if ids[r.PathID()] {
			t.Fatalf("duplicate path id %d across instances with the same bind address", r.PathID())
		}
		ids[r.PathID()] = true
	}
}

func TestPathInfoPropagatesDeepestDownstream(t *testing.T) {
	_, _, r := newTestRelay(t, Config{})
	// Only speakers subscribed: the relay originates its own path.
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 1, 10000))
	if hops, pathID := r.pathInfo(); hops != 1 || pathID != r.PathID() {
		t.Fatalf("pathInfo with speakers only = (%d, %d), want (1, own id %d)", hops, pathID, r.PathID())
	}
	// A downstream relay two hops deep dominates.
	r.handlePacket(subscribeLoopPkt(t, "10.0.0.3:5004", 2, 777))
	if hops, pathID := r.pathInfo(); hops != 3 || pathID != 777 {
		t.Fatalf("pathInfo with downstream relay = (%d, %d), want (3, 777)", hops, pathID)
	}
}

func TestChainedRelayConfigValidation(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, _ := seg.Attach("10.0.0.1:5006")
	if _, err := New(sim, conn, Config{Upstream: "10.0.0.2:5006", Group: testGroup}); err == nil {
		t.Fatal("both Group and Upstream accepted")
	}
	if _, err := New(sim, conn, Config{Upstream: testGroup}); err == nil {
		t.Fatal("multicast upstream accepted")
	}
	if _, err := New(sim, conn, Config{Upstream: "not-an-address"}); err == nil {
		t.Fatal("junk upstream accepted")
	}
	r, err := New(sim, conn, Config{Upstream: "10.0.0.2:5006", Channel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Source() != "10.0.0.2:5006" || r.Upstream() != "10.0.0.2:5006" || r.Group() != "" {
		t.Fatalf("source/upstream/group = %q/%q/%q", r.Source(), r.Upstream(), r.Group())
	}
	info := r.Info()
	if info.Addr != "10.0.0.1:5006" || info.Group != "10.0.0.2:5006" || info.Channel != 3 {
		t.Fatalf("info = %+v", info)
	}
}

// TestAuthRelayDropsForgedSubscribeSilently is the amplification
// regression test: against an auth-enabled relay, a Subscribe forged
// from a spoofed source must create no forwarding state, draw no
// SubAck (a reply to an unverified source is exactly the reflection
// primitive the auth closes), receive zero fan-out packets, and tick
// es.relay.auth.dropped.
func TestAuthRelayDropsForgedSubscribeSilently(t *testing.T) {
	auth := security.NewHMAC([]byte("relay key"))
	sim, seg, r := newTestRelay(t, Config{Channel: 1, Auth: auth})
	victim, err := seg.Attach("10.0.0.66:5004")
	if err != nil {
		t.Fatal(err)
	}
	var victimPkts int
	sim.Go("relay", r.Run)
	sim.Go("victim", func() {
		for {
			if _, err := victim.Recv(0); err != nil {
				return
			}
			victimPkts++
		}
	})
	sim.Go("test", func() {
		// The forged subscribe, "from" the victim: unsigned, and signed
		// under the wrong key. Neither may create state or a reply.
		forged, _ := (&proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60000}).Marshal()
		r.Inject(lan.Packet{From: "10.0.0.66:5004", To: r.Addr(), Data: forged})
		wrong := security.NewHMAC([]byte("wrong key"))
		r.Inject(lan.Packet{From: "10.0.0.66:5004", To: r.Addr(), Data: wrong.Sign(forged)})
		if n := r.NumSubscribers(); n != 0 {
			t.Errorf("forged subscribe created %d lease(s)", n)
		}
		// Data off the group must fan out to nobody — the victim holds
		// no lease.
		data, _ := (&proto.Data{Channel: 1, Epoch: 1, Seq: 1, Payload: []byte{1}}).Marshal()
		r.Inject(lan.Packet{From: "10.0.0.9:5000", To: testGroup, Data: data})
		sim.Sleep(100 * time.Millisecond)
		r.Stop()
		victim.Close()
	})
	sim.WaitIdle()
	if victimPkts != 0 {
		t.Fatalf("spoofed victim received %d packets, want 0 (amplification)", victimPkts)
	}
	st := r.Stats()
	if st.AuthDropped != 2 {
		t.Fatalf("auth dropped = %d, want 2 (stats %+v)", st.AuthDropped, st)
	}
	if st.FanoutSent != 0 {
		t.Fatalf("fanout sent = %d, want 0", st.FanoutSent)
	}
}

// TestAuthRelayGrantsSignedSubscribe: the legitimate path under auth —
// a properly signed Subscribe is granted, the SubAck comes back signed
// and verifies under the shared key, and the granted lease then
// receives fan-out (data packets themselves are forwarded unwrapped:
// the control plane, not the stream, is what creates state).
func TestAuthRelayGrantsSignedSubscribe(t *testing.T) {
	auth := security.NewHMAC([]byte("relay key"))
	sim, seg, r := newTestRelay(t, Config{Channel: 1, Auth: auth})
	sub, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	var ack *proto.SubAck
	var gotData bool
	sim.Go("relay", r.Run)
	sim.Go("subscriber", func() {
		defer sub.Close()
		req, _ := (&proto.Subscribe{Channel: 1, Seq: 7, LeaseMs: 10000}).Marshal()
		if err := sub.Send(r.Addr(), auth.Sign(req)); err != nil {
			t.Error(err)
			return
		}
		pkt, err := sub.Recv(2 * time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		inner, ok := auth.Verify(pkt.Data)
		if !ok {
			t.Errorf("suback not signed under the relay key")
			return
		}
		ack, _ = proto.UnmarshalSubAck(inner)
		data, _ := (&proto.Data{Channel: 1, Epoch: 1, Seq: 1, Payload: []byte{1}}).Marshal()
		r.Inject(lan.Packet{From: "10.0.0.9:5000", To: testGroup, Data: data})
		if pkt, err := sub.Recv(2 * time.Second); err == nil {
			if d, err := proto.UnmarshalData(pkt.Data); err == nil && d.Channel == 1 {
				gotData = true
			}
		}
		r.Stop()
	})
	sim.WaitIdle()
	if ack == nil || ack.Seq != 7 || ack.Status != proto.SubOK || ack.LeaseMs == 0 {
		t.Fatalf("signed subscribe not granted: %+v", ack)
	}
	if !gotData {
		t.Fatal("granted signed subscriber received no fan-out")
	}
	if st := r.Stats(); st.AuthDropped != 0 || st.Subscribes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAuthChainedRelayLeasesUpstream: a 2-relay chain sharing one
// control-plane key — the downstream signs its upstream subscribes and
// verifies the signed grants, so the chain composes exactly as an
// unauthenticated one does.
func TestAuthChainedRelayLeasesUpstream(t *testing.T) {
	auth := security.NewHMAC([]byte("chain key"))
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	c1, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := seg.Attach("10.0.0.2:5006")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := New(sim, c1, Config{Group: testGroup, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(sim, c2, Config{Upstream: r1.Addr(), Auth: auth, UpstreamLease: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sim.Go("r1", r1.Run)
	sim.Go("r2", r2.Run)
	var st1, st2 Stats
	sim.Go("test", func() {
		sim.Sleep(5 * time.Second) // several refresh cycles
		st1, st2 = r1.Stats(), r2.Stats()
		r2.Stop()
		r1.Stop()
	})
	sim.WaitIdle()
	if st1.Subscribes != 1 || st1.AuthDropped != 0 {
		t.Fatalf("upstream relay stats = %+v, want one signed lease and no drops", st1)
	}
	if st2.UpstreamAcks == 0 || st2.UpstreamAuthDropped != 0 || st2.UpstreamRefused != 0 {
		t.Fatalf("downstream lease stats = %+v, want verified acks", st2)
	}
}

func TestTableRendersSubscribers(t *testing.T) {
	_, _, r := newTestRelay(t, Config{})
	req := proto.Subscribe{Channel: 1, Seq: 1, LeaseMs: 60_000}
	data, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r.Inject(lan.Packet{From: "10.0.0.2:5004", To: r.Addr(), Data: data})
	var sb strings.Builder
	r.Table().Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "10.0.0.2:5004") {
		t.Fatalf("table missing subscriber:\n%s", out)
	}
}

// TestShedRedirectsNewSubscribersOnly: past the subscriber threshold
// the relay answers a *new* Subscribe with SubRedirect naming the
// least-loaded sibling, while an established subscriber's refresh is
// still served. With no sibling source the relay admits normally —
// a redirect with nowhere to point is just a refusal.
func TestShedRedirectsNewSubscribersOnly(t *testing.T) {
	sim, seg, r := newTestRelay(t, Config{ShedSubscribers: 1})
	if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Channel: 0}, time.Minute) {
		t.Fatal("seed subscribe failed")
	}
	// No siblings installed yet: threshold tripped, but the newcomer
	// must still be admitted.
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 10000))
	if n := r.NumSubscribers(); n != 2 {
		t.Fatalf("subscribers = %d, want 2 (no sibling, no shed)", n)
	}
	r.SetSiblings(func() []proto.RelayInfo {
		return []proto.RelayInfo{
			{Addr: "10.0.0.8:5006", Group: string(testGroup), HasLoad: true, Subs: 40},
			{Addr: "10.0.0.9:5006", Group: string(testGroup), HasLoad: true, Subs: 2},
			{Addr: string(r.Addr()), Group: string(testGroup)}, // self: never a steer target
		}
	})
	newcomer, err := seg.Attach("10.0.0.4:5004")
	if err != nil {
		t.Fatal(err)
	}
	var ack *proto.SubAck
	sim.Go("newcomer", func() {
		data, _ := (&proto.Subscribe{Channel: 0, Seq: 7, LeaseMs: 10000}).Marshal()
		newcomer.Send(r.Addr(), data)
		pkt, err := newcomer.Recv(time.Second)
		if err != nil {
			t.Errorf("no ack: %v", err)
			return
		}
		ack, err = proto.UnmarshalSubAck(pkt.Data)
		if err != nil {
			t.Errorf("bad ack: %v", err)
		}
		newcomer.Close()
	})
	sim.Go("relay-once", func() {
		pkt, err := r.conn.Recv(time.Second)
		if err == nil {
			r.handlePacket(pkt)
		}
	})
	sim.WaitIdle()
	if ack == nil || ack.Status != proto.SubRedirect || ack.Redirect != "10.0.0.9:5006" {
		t.Fatalf("ack = %+v, want redirect to the least-loaded sibling", ack)
	}
	if n := r.NumSubscribers(); n != 2 {
		t.Fatalf("subscribers = %d after shed, want 2", n)
	}
	// The established subscriber refreshes straight through the shed.
	r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 2, 10000))
	st := r.Stats()
	if st.Redirects != 1 || st.Refreshes != 1 {
		t.Fatalf("stats = %+v, want 1 redirect and 1 refresh", st)
	}
}

// TestShedOnPressure: a pressure threshold sheds even below the
// subscriber-count threshold. Queue drops pin the pressure score to
// 255, so a relay that just shed packets steers newcomers away.
func TestShedOnPressure(t *testing.T) {
	_, _, r := newTestRelay(t, Config{ShedPressure: 200, QueueLen: 1, Shards: 1})
	if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Channel: 0}, time.Minute) {
		t.Fatal("seed subscribe failed")
	}
	r.SetSiblings(func() []proto.RelayInfo {
		return []proto.RelayInfo{{Addr: "10.0.0.9:5006", Group: string(testGroup)}}
	})
	// Overflow the 1-deep queue: the second fanout drops a packet,
	// which pins the next pressure sample to maximum.
	r.fanout(0, []byte{1})
	r.fanout(0, []byte{2})
	r.handleSubscribe(subscribePkt(t, "10.0.0.3:5004", 0, 1, 10000))
	st := r.Stats()
	if st.Redirects != 1 || r.NumSubscribers() != 1 {
		t.Fatalf("stats = %+v subs = %d, want the newcomer shed on pressure", st, r.NumSubscribers())
	}
}

// TestAdmitBatchMatchesPerPacketSemantics: one gather pass over a
// mixed batch — valid new subscribes, a refresh, a cancel, a forged
// request, junk bytes, and a loop — must land exactly the per-packet
// verdicts, in one admission batch.
func TestAdmitBatchMatchesPerPacketSemantics(t *testing.T) {
	auth := security.NewHMAC([]byte("batch key"))
	_, _, r := newTestRelay(t, Config{Auth: auth})
	if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Channel: 0}, time.Minute) {
		t.Fatal("seed subscribe failed")
	}
	signedSub := func(from lan.Addr, seq, leaseMs uint32, hops uint8, pathID uint64) lan.Packet {
		data, err := (&proto.Subscribe{Seq: seq, LeaseMs: leaseMs, Hops: hops, PathID: pathID}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return lan.Packet{From: from, To: r.Addr(), Data: auth.Sign(data)}
	}
	forged, _ := (&proto.Subscribe{Seq: 9, LeaseMs: 1000}).Marshal()
	batch := []lan.Packet{
		signedSub("10.0.0.3:5004", 1, 10000, 0, 0),                             // new
		signedSub("10.0.0.2:5004", 5, 10000, 0, 0),                             // refresh
		signedSub("10.0.0.4:5004", 1, 10000, 0, 0),                             // new
		{From: "10.0.0.5:5004", To: r.Addr(), Data: forged},                    // unsigned
		{From: "10.0.0.6:5004", To: r.Addr(), Data: auth.Sign([]byte("junk"))}, // malformed
		signedSub("10.0.0.7:5004", 1, 10000, 0, r.PathID()),                    // loop
	}
	r.admitBatch(batch)
	st := r.Stats()
	if st.Subscribes != 3 || st.Refreshes != 1 || st.AuthDropped != 1 ||
		st.Malformed != 1 || st.Loops != 1 || st.AdmitBatches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if n := r.NumSubscribers(); n != 3 {
		t.Fatalf("subscribers = %d, want 3", n)
	}
}

// TestIdentitySessionReplayWindow: under the per-subscriber identity
// scheme every verified control action consumes the trailer sequence,
// so replaying captured bytes from the true source is dropped, and a
// request signed by a different valid credential never touches the
// lease it names.
func TestIdentitySessionReplayWindow(t *testing.T) {
	ring := security.NewKeyring([]byte("relay test master"))
	_, _, r := newTestRelay(t, Config{Auth: ring.Relay()})

	signed := func(id uint32, from lan.Addr, seq, leaseMs uint32, seqBase uint64) lan.Packet {
		data, err := (&proto.Subscribe{Seq: seq, LeaseMs: leaseMs}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		s := security.NewIdentitySignerAt(ring.Credential(id), id, string(from), seqBase)
		return lan.Packet{From: from, To: r.Addr(), Data: s.Sign(data)}
	}

	// Identity 1 subscribes; the lease remembers who created it.
	join := signed(1, "10.0.0.2:5004", 1, 10000, 1)
	r.admitBatch([]lan.Packet{join})
	if n := r.NumSubscribers(); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}

	// The exact captured join replayed from its own source: the tag
	// verifies but the session sequence is stale.
	r.admitBatch([]lan.Packet{join})
	if st := r.Stats(); st.ReplayDropped != 1 {
		t.Fatalf("stats after replay = %+v, want 1 replay drop", st)
	}

	// The same bytes from a different source fail the tag outright —
	// counted as an auth drop, not a replay.
	r.admitBatch([]lan.Packet{{From: "10.0.66.99:5004", To: r.Addr(), Data: join.Data}})
	if st := r.Stats(); st.AuthDropped != 1 || st.ReplayDropped != 1 {
		t.Fatalf("stats after spoofed source = %+v", st)
	}

	// Identity 2, validly credentialed, forges a cancel for identity
	// 1's lease from a spoofed source: verified, then refused at the
	// lease's identity check.
	r.admitBatch([]lan.Packet{signed(2, "10.0.0.2:5004", 3, 0, 100)})
	st := r.Stats()
	if st.IdentityMismatch != 1 || r.NumSubscribers() != 1 {
		t.Fatalf("stats after forged cancel = %+v subs = %d, want the lease intact", st, r.NumSubscribers())
	}

	// The holder's own fresh-sequence refresh and cancel both land.
	r.admitBatch([]lan.Packet{signed(1, "10.0.0.2:5004", 4, 10000, 50)})
	if st := r.Stats(); st.Refreshes != 1 {
		t.Fatalf("stats after refresh = %+v, want 1 refresh", st)
	}
	r.admitBatch([]lan.Packet{signed(1, "10.0.0.2:5004", 5, 0, 60)})
	if n := r.NumSubscribers(); n != 0 {
		t.Fatalf("subscribers = %d after holder's cancel, want 0", n)
	}
}
