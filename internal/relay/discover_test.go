package relay

import (
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/vclock"
)

const testCatalog = lan.Addr("239.72.0.9:5003")

// announceRelays starts a catalog announcing the given relay records on
// the test catalog group.
func announceRelays(t *testing.T, sim *vclock.Sim, seg *lan.Segment, infos ...proto.RelayInfo) *rebroadcast.Catalog {
	t.Helper()
	conn, err := seg.Attach("10.0.0.100:5003")
	if err != nil {
		t.Fatal(err)
	}
	cat := rebroadcast.NewCatalog(sim, conn, testCatalog, 100*time.Millisecond)
	for _, ri := range infos {
		cat.SetRelay(ri)
	}
	sim.Go("catalog", cat.Run)
	return cat
}

// TestDiscoverExcludesOwnAnnounce is the regression test for the
// self-discovery bug: the catalog echoes every relay's own announce
// back at it, so a relay picking its upstream by discovery could select
// itself (or its downstream) and build a chain that SubLoop refuses but
// that churns on every refresh forever. The exclude predicate must
// skip vetoed records and keep listening for an acceptable one.
func TestDiscoverExcludesOwnAnnounce(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	self := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004"}
	other := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "239.72.5.1:5004"}
	cat := announceRelays(t, sim, seg, self, other)
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.3:5003", testCatalog, 0,
			2*time.Second, ExcludeAddrs("10.0.0.1:5006"))
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != other.Addr {
		t.Fatalf("discovered %+v, want the non-excluded relay %s", got, other.Addr)
	}
}

// TestDiscoverAllExcludedTimesOut: when every announced relay is
// vetoed, discovery reports failure instead of returning a record the
// caller refused.
func TestDiscoverAllExcludedTimesOut(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	self := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004"}
	cat := announceRelays(t, sim, seg, self)
	var err error
	sim.Go("discover", func() {
		_, err = Discover(sim, seg, "10.0.0.3:5003", testCatalog, 0,
			time.Second, ExcludeAddrs("10.0.0.1:5006"))
		cat.Stop()
	})
	sim.WaitIdle()
	if err == nil {
		t.Fatal("discovery returned an excluded relay")
	}
}

// TestDiscoverExcludesTransitiveDownstream: a depth-2 downstream must
// be vetoed too. In the chain A <- B <- C only B's record names A in
// its Group field, so proving C sits below A takes the B edge — and
// the records are announced with C sorting before B, so a single
// arrival-order pass would trust C. Discover's fixpoint re-application
// of the stateful ExcludeChainOf predicate must still reject it and
// pick the independent relay.
func TestDiscoverExcludesTransitiveDownstream(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	self := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004"}
	depth2 := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "10.0.0.3:5006"} // C: behind B
	depth1 := proto.RelayInfo{Addr: "10.0.0.3:5006", Group: "10.0.0.1:5006"} // B: behind A
	other := proto.RelayInfo{Addr: "10.0.0.9:5006", Group: "239.72.5.2:5004"}
	cat := announceRelays(t, sim, seg, self, depth2, depth1, other)
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.4:5003", testCatalog, 0,
			30*time.Second, ExcludeChainOf(lan.Addr(self.Addr)))
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != other.Addr {
		t.Fatalf("discovered %+v, want the independent relay %s", got, other.Addr)
	}
}
