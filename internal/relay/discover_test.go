package relay

import (
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/vclock"
)

const testCatalog = lan.Addr("239.72.0.9:5003")

// announceRelays starts a catalog announcing the given relay records on
// the test catalog group.
func announceRelays(t *testing.T, sim *vclock.Sim, seg *lan.Segment, infos ...proto.RelayInfo) *rebroadcast.Catalog {
	t.Helper()
	conn, err := seg.Attach("10.0.0.100:5003")
	if err != nil {
		t.Fatal(err)
	}
	cat := rebroadcast.NewCatalog(sim, conn, testCatalog, 100*time.Millisecond)
	for _, ri := range infos {
		cat.SetRelay(ri)
	}
	sim.Go("catalog", cat.Run)
	return cat
}

// TestDiscoverExcludesOwnAnnounce is the regression test for the
// self-discovery bug: the catalog echoes every relay's own announce
// back at it, so a relay picking its upstream by discovery could select
// itself (or its downstream) and build a chain that SubLoop refuses but
// that churns on every refresh forever. The exclude predicate must
// skip vetoed records and keep listening for an acceptable one.
func TestDiscoverExcludesOwnAnnounce(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	self := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004"}
	other := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "239.72.5.1:5004"}
	cat := announceRelays(t, sim, seg, self, other)
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.3:5003", testCatalog, 0,
			2*time.Second, ExcludeAddrs("10.0.0.1:5006"), nil)
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != other.Addr {
		t.Fatalf("discovered %+v, want the non-excluded relay %s", got, other.Addr)
	}
}

// TestDiscoverAllExcludedTimesOut: when every announced relay is
// vetoed, discovery reports failure instead of returning a record the
// caller refused.
func TestDiscoverAllExcludedTimesOut(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	self := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004"}
	cat := announceRelays(t, sim, seg, self)
	var err error
	sim.Go("discover", func() {
		_, err = Discover(sim, seg, "10.0.0.3:5003", testCatalog, 0,
			time.Second, ExcludeAddrs("10.0.0.1:5006"), nil)
		cat.Stop()
	})
	sim.WaitIdle()
	if err == nil {
		t.Fatal("discovery returned an excluded relay")
	}
}

// TestDiscoverExcludesTransitiveDownstream: a depth-2 downstream must
// be vetoed too. In the chain A <- B <- C only B's record names A in
// its Group field, so proving C sits below A takes the B edge — and
// the records are announced with C sorting before B, so a single
// arrival-order pass would trust C. Discover's fixpoint re-application
// of the stateful ExcludeChainOf predicate must still reject it and
// pick the independent relay.
func TestDiscoverExcludesTransitiveDownstream(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	self := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004"}
	depth2 := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "10.0.0.3:5006"} // C: behind B
	depth1 := proto.RelayInfo{Addr: "10.0.0.3:5006", Group: "10.0.0.1:5006"} // B: behind A
	other := proto.RelayInfo{Addr: "10.0.0.9:5006", Group: "239.72.5.2:5004"}
	cat := announceRelays(t, sim, seg, self, depth2, depth1, other)
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.4:5003", testCatalog, 0,
			30*time.Second, ExcludeChainOf(lan.Addr(self.Addr)), nil)
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != other.Addr {
		t.Fatalf("discovered %+v, want the independent relay %s", got, other.Addr)
	}
}

// TestDiscoverRanksByLoad: with load vectors in the announce, the
// least-loaded eligible relay must win regardless of arrival order —
// the catalog announces records sorted by address, and the heaviest
// relay here sorts first.
func TestDiscoverRanksByLoad(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	heavy := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 900, Pressure: 10, Hops: 1}
	light := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 3, Pressure: 200, Hops: 3}
	mid := proto.RelayInfo{Addr: "10.0.0.3:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 90, Pressure: 0, Hops: 1}
	cat := announceRelays(t, sim, seg, heavy, light, mid)
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.4:5003", testCatalog, 0,
			30*time.Second, nil, nil)
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != light.Addr {
		t.Fatalf("discovered %+v, want the least-loaded relay %s", got, light.Addr)
	}
}

// TestDiscoverPressureAndHopsBreakTies: subscriber count dominates;
// among equally-subscribed relays lower pressure wins, and among
// equally-pressured ones the shorter chain wins.
func TestDiscoverPressureAndHopsBreakTies(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	pressured := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 10, Pressure: 200, Hops: 1}
	deep := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "10.0.0.9:5006",
		HasLoad: true, Subs: 10, Pressure: 5, Hops: 4}
	calm := proto.RelayInfo{Addr: "10.0.0.3:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 10, Pressure: 5, Hops: 1}
	cat := announceRelays(t, sim, seg, pressured, deep, calm)
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.4:5003", testCatalog, 0,
			30*time.Second, nil, nil)
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != calm.Addr {
		t.Fatalf("discovered %+v, want the calm short-chain relay %s", got, calm.Addr)
	}
}

// TestDiscoverStaleLoadAgesOut: a record that stops being re-announced
// is demoted at pick time, even when its frozen load vector reads
// better than everyone still advertising — a dead relay's old "3
// subscribers" says nothing about leasing from it now.
func TestDiscoverStaleLoadAgesOut(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	ghost := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 3}
	alive := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 500, Pressure: 100}
	cat := announceRelays(t, sim, seg, ghost, alive)
	sim.Go("ghost-dies", func() {
		sim.Sleep(150 * time.Millisecond) // one announce carries the ghost, then it goes quiet
		cat.RemoveRelay(ghost.Addr)
	})
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.4:5003", testCatalog, 0,
			30*time.Second, nil, nil)
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != alive.Addr {
		t.Fatalf("discovered %+v, want the still-announcing relay %s", got, alive.Addr)
	}
}

// TestDiscoverExcludeVetoesLeastLoaded: the exclude predicate is
// authoritative — the caller's own subtree stays vetoed even when it
// is by far the least-loaded candidate.
func TestDiscoverExcludeVetoesLeastLoaded(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	self := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 0}
	downstream := proto.RelayInfo{Addr: "10.0.0.2:5006", Group: "10.0.0.1:5006",
		HasLoad: true, Subs: 0}
	other := proto.RelayInfo{Addr: "10.0.0.9:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 700, Pressure: 250}
	cat := announceRelays(t, sim, seg, self, downstream, other)
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.4:5003", testCatalog, 0,
			30*time.Second, ExcludeChainOf(lan.Addr(self.Addr)), nil)
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != other.Addr {
		t.Fatalf("discovered %+v, want the loaded-but-independent relay %s", got, other.Addr)
	}
}

// TestDiscoverTieBreakDeterministic: identical load vectors resolve on
// address, so every discoverer on the segment picks the same relay and
// a legacy no-load record never outranks a load-bearing one.
func TestDiscoverTieBreakDeterministic(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	legacy := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004"}
	twinB := proto.RelayInfo{Addr: "10.0.0.5:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 7, Pressure: 7, Hops: 2}
	twinA := proto.RelayInfo{Addr: "10.0.0.3:5006", Group: "239.72.5.1:5004",
		HasLoad: true, Subs: 7, Pressure: 7, Hops: 2}
	cat := announceRelays(t, sim, seg, legacy, twinB, twinA)
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.4:5003", testCatalog, 0,
			30*time.Second, nil, nil)
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != twinA.Addr {
		t.Fatalf("discovered %+v, want the lower-addressed twin %s", got, twinA.Addr)
	}
}

// TestDiscoverLegacyFastPath: a segment with no load-bearing records
// and no excluder keeps the original semantics — the first eligible
// record wins immediately, without waiting out a settle window.
func TestDiscoverLegacyFastPath(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	only := proto.RelayInfo{Addr: "10.0.0.1:5006", Group: "239.72.5.1:5004"}
	cat := announceRelays(t, sim, seg, only)
	start := sim.Now()
	var took time.Duration
	var got proto.RelayInfo
	var err error
	sim.Go("discover", func() {
		got, err = Discover(sim, seg, "10.0.0.4:5003", testCatalog, 0,
			30*time.Second, nil, nil)
		took = sim.Now().Sub(start)
		cat.Stop()
	})
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != only.Addr {
		t.Fatalf("discovered %+v, want %s", got, only.Addr)
	}
	if took >= discoverSettle {
		t.Fatalf("legacy discovery took %v — it waited out the settle window", took)
	}
}
