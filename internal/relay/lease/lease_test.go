package lease

import (
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/security"
	"repro/internal/vclock"
)

// harness attaches a subscriber and a fake relay endpoint to one
// simulated segment.
func harness(t *testing.T) (*vclock.Sim, *Subscriber, lan.Conn) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	cc, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	return sim, New(sim, cc, "lease-test"), rc
}

// TestRefreshStaysInsideShortGrantedLease is the regression test for
// the lease-flap bug: with a relay-clamped 1s lease, the old speaker
// refresh waited max(lease/3, 1s) = 1s — landing at or after expiry.
// Refreshes must arrive strictly inside every granted lease.
func TestRefreshStaysInsideShortGrantedLease(t *testing.T) {
	sim, sub, relay := harness(t)
	const granted = time.Second
	var gaps []time.Duration
	sim.Go("relay", func() {
		var last time.Time
		for {
			pkt, err := relay.Recv(0)
			if err != nil {
				return
			}
			req, err := proto.UnmarshalSubscribe(pkt.Data)
			if err != nil || req.LeaseMs == 0 {
				continue
			}
			now := sim.Now()
			if !last.IsZero() {
				gaps = append(gaps, now.Sub(last))
			}
			last = now
			ack, _ := (&proto.SubAck{Seq: req.Seq, LeaseMs: uint32(granted / time.Millisecond)}).Marshal()
			relay.Send(pkt.From, ack)
		}
	})
	sim.Go("sub", func() {
		sub.Subscribe("10.0.0.1:5006", 1, 15*time.Second)
		sim.Sleep(100 * time.Millisecond)
		// The relay granted 1s; simulate the ack reception loop (Seq 1
		// echoes the first subscribe).
		sub.HandleAck(&proto.SubAck{Seq: 1, Status: proto.SubOK, LeaseMs: uint32(granted / time.Millisecond)})
		sim.Sleep(5 * time.Second)
		sub.Close()
		relay.Close()
	})
	sim.WaitIdle()
	if len(gaps) < 3 {
		t.Fatalf("only %d refreshes in 5s of a 1s lease", len(gaps))
	}
	for i, g := range gaps[1:] { // gaps[0] spans the pre-ack pacing
		if g >= granted {
			t.Fatalf("refresh gap %d = %v, not inside the %v granted lease (gaps %v)", i+1, g, granted, gaps)
		}
	}
}

func TestSubscribeCancelAndPath(t *testing.T) {
	sim, sub, relay := harness(t)
	type seen struct {
		channel uint32
		leaseMs uint32
		hops    uint8
		pathID  uint64
	}
	var got []seen
	sim.Go("relay", func() {
		for {
			pkt, err := relay.Recv(0)
			if err != nil {
				return
			}
			if req, err := proto.UnmarshalSubscribe(pkt.Data); err == nil {
				got = append(got, seen{req.Channel, req.LeaseMs, req.Hops, req.PathID})
			}
		}
	})
	sim.Go("sub", func() {
		sub.SetPath(func() (uint8, uint64) { return 2, 77 })
		sub.Subscribe("10.0.0.1:5006", 9, 10*time.Second)
		sim.Sleep(50 * time.Millisecond)
		sub.Cancel()
		if tgt := sub.Target(); tgt != "" {
			t.Errorf("target after cancel = %q", tgt)
		}
		sim.Sleep(50 * time.Millisecond)
		sub.Close()
		relay.Close()
	})
	sim.WaitIdle()
	if len(got) != 2 {
		t.Fatalf("relay saw %d packets, want subscribe + cancel: %+v", len(got), got)
	}
	if got[0] != (seen{9, 10000, 2, 77}) {
		t.Fatalf("subscribe = %+v", got[0])
	}
	if got[1] != (seen{9, 0, 2, 77}) {
		t.Fatalf("cancel = %+v", got[1])
	}
	st := sub.Stats()
	if st.Subscribes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHandleAckAccounting(t *testing.T) {
	sim, sub, _ := harness(t)
	sim.Go("sub", func() {
		sub.Subscribe("10.0.0.1:5006", 0, 10*time.Second)
		if st := sub.HandleAck(&proto.SubAck{Seq: 1, Status: proto.SubOK, LeaseMs: 3000}); st != proto.SubOK {
			t.Errorf("status = %v", st)
		}
		if g := sub.Granted(); g != 3*time.Second {
			t.Errorf("granted = %v, want 3s", g)
		}
		sub.HandleAck(&proto.SubAck{Seq: 1, Status: proto.SubTableFull})
		sub.HandleAck(&proto.SubAck{Seq: 1, Status: proto.SubLoop})
		st := sub.Stats()
		if st.Acks != 3 || st.Refusals != 2 || st.Loops != 1 {
			t.Errorf("stats = %+v", st)
		}
		sub.Close()
	})
	sim.WaitIdle()
}

// TestStaleAckFromPreviousTargetIgnored is the regression test for the
// stale-ack bug: HandleAck never checked ack.Seq against the last sent
// seq, so after re-targeting, a late ack from the *previous* relay (or
// a duplicated datagram from that exchange) installed a grant the
// current relay never made and mis-paced the refresh loop against it.
func TestStaleAckFromPreviousTargetIgnored(t *testing.T) {
	sim, sub, _ := harness(t)
	sim.Go("sub", func() {
		// Lease from relay A; its grant (echoing seq 1) applies.
		sub.Subscribe("10.0.0.1:5006", 1, 10*time.Second)
		sub.HandleAck(&proto.SubAck{Seq: 1, Status: proto.SubOK, LeaseMs: 60000})
		if g := sub.Granted(); g != time.Minute {
			t.Errorf("granted from A = %v, want 1m", g)
		}
		// Re-target to relay B: the next subscribe is seq 2, and A's
		// duplicated/late ack still echoes seq 1. It must not install
		// A's 60s grant as if B had made it.
		sub.Subscribe("10.0.0.9:5006", 1, 10*time.Second)
		sub.HandleAck(&proto.SubAck{Seq: 1, Status: proto.SubOK, LeaseMs: 60000})
		if g := sub.Granted(); g != 0 {
			t.Errorf("granted after stale ack = %v, want 0 (no grant from B yet)", g)
		}
		// An ack echoing a seq never sent (forged/foreign) is ignored too.
		sub.HandleAck(&proto.SubAck{Seq: 99, Status: proto.SubOK, LeaseMs: 1000})
		if g := sub.Granted(); g != 0 {
			t.Errorf("granted after foreign ack = %v, want 0", g)
		}
		// B's real answer applies.
		sub.HandleAck(&proto.SubAck{Seq: 2, Status: proto.SubOK, LeaseMs: 2000})
		if g := sub.Granted(); g != 2*time.Second {
			t.Errorf("granted from B = %v, want 2s", g)
		}
		st := sub.Stats()
		if st.Stale != 2 || st.Acks != 2 {
			t.Errorf("stats = %+v, want 2 stale / 2 accepted", st)
		}
		sub.Close()
	})
	sim.WaitIdle()
}

// TestAuthSignsSubscribesAndVerifiesAcks exercises the §5.1 control
// plane from the subscriber side: with an authenticator installed every
// outgoing subscribe verifies under the shared key, a signed grant is
// accepted through HandleAckData, and an unsigned or wrong-key grant is
// dropped before it can touch the lease state.
func TestAuthSignsSubscribesAndVerifiesAcks(t *testing.T) {
	sim, sub, relayConn := harness(t)
	auth := security.NewHMAC([]byte("control key"))
	var verified, rejected int
	sim.Go("relay", func() {
		for {
			pkt, err := relayConn.Recv(0)
			if err != nil {
				return
			}
			if inner, ok := auth.Verify(pkt.Data); ok {
				if _, err := proto.UnmarshalSubscribe(inner); err == nil {
					verified++
				}
			} else {
				rejected++
			}
		}
	})
	sim.Go("sub", func() {
		sub.SetAuth(auth)
		sub.Subscribe("10.0.0.1:5006", 1, 10*time.Second)
		sim.Sleep(50 * time.Millisecond)

		ack, _ := (&proto.SubAck{Seq: 1, Status: proto.SubOK, LeaseMs: 3000}).Marshal()
		// Unsigned and wrong-key grants are dropped with ErrAuthFailed.
		if _, err := sub.HandleAckData("10.0.0.1:5006", ack); err != ErrAuthFailed {
			t.Errorf("unsigned ack: err = %v, want ErrAuthFailed", err)
		}
		wrong := security.NewHMAC([]byte("wrong key"))
		if _, err := sub.HandleAckData("10.0.0.1:5006", wrong.Sign(ack)); err != ErrAuthFailed {
			t.Errorf("wrong-key ack: err = %v, want ErrAuthFailed", err)
		}
		if g := sub.Granted(); g != 0 {
			t.Errorf("granted after forged acks = %v, want 0", g)
		}
		// A correctly signed grant from an off-path source is still
		// refused: only the leased relay's address may answer.
		if _, err := sub.HandleAckData("10.0.0.66:5006", auth.Sign(ack)); err != nil {
			t.Errorf("off-path ack: err = %v, want silent stale drop", err)
		}
		if g := sub.Granted(); g != 0 {
			t.Errorf("granted after off-path ack = %v, want 0", g)
		}
		// The genuine signed grant from the leased relay applies.
		if st, err := sub.HandleAckData("10.0.0.1:5006", auth.Sign(ack)); err != nil || st != proto.SubOK {
			t.Errorf("signed ack: (%v, %v)", st, err)
		}
		if g := sub.Granted(); g != 3*time.Second {
			t.Errorf("granted = %v, want 3s", g)
		}
		if st := sub.Stats(); st.AuthDropped != 2 || st.Acks != 1 || st.Stale != 1 {
			t.Errorf("stats = %+v", st)
		}
		sub.Close()
		relayConn.Close()
	})
	sim.WaitIdle()
	if verified == 0 || rejected != 0 {
		t.Fatalf("relay saw %d verified / %d rejected subscribes, want all signed", verified, rejected)
	}
}

// TestAckWhileDetachedIgnored: after Cancel the subscriber holds no
// lease, and any ack still in flight — even one echoing a valid seq —
// must not resurrect a grant.
func TestAckWhileDetachedIgnored(t *testing.T) {
	sim, sub, _ := harness(t)
	sim.Go("sub", func() {
		sub.Subscribe("10.0.0.1:5006", 1, 10*time.Second)
		sub.Cancel()
		sub.HandleAck(&proto.SubAck{Seq: 1, Status: proto.SubOK, LeaseMs: 60000})
		if g := sub.Granted(); g != 0 {
			t.Errorf("granted while detached = %v, want 0", g)
		}
		if st := sub.Stats(); st.Stale != 1 || st.Acks != 0 {
			t.Errorf("stats = %+v, want the detached ack counted stale", st)
		}
		sub.Close()
	})
	sim.WaitIdle()
}

// TestShiftFallbackToLiveAgainstPreDVRRelay: a relay predating the
// time-shift extension rejects the 13-byte shifted Subscribe body as
// malformed and answers nothing at all, so a shifted join against it
// used to retry silently forever. After ShiftFallbackAfter unanswered
// shifted attempts the subscriber must drop the shift, join live, and
// report the zero truth through GrantedShift.
func TestShiftFallbackToLiveAgainstPreDVRRelay(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	cc, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	relayConn, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	sub := New(sim, cc, "shift-fallback-test")
	var shifted, live int
	sim.Go("relay", func() {
		for {
			pkt, err := relayConn.Recv(0)
			if err != nil {
				return
			}
			req, err := proto.UnmarshalSubscribe(pkt.Data)
			if err != nil || req.LeaseMs == 0 {
				continue
			}
			if req.ShiftMs != 0 {
				// The pre-DVR behavior: the extended body reads as
				// malformed, nothing is answered.
				shifted++
				continue
			}
			live++
			ack, _ := (&proto.SubAck{Seq: req.Seq, Status: proto.SubOK, LeaseMs: 1000}).Marshal()
			relayConn.Send(pkt.From, ack)
		}
	})
	sim.Go("rx", func() {
		for {
			pkt, err := cc.Recv(0)
			if err != nil {
				return
			}
			sub.HandleAckData(pkt.From, pkt.Data)
		}
	})
	sim.Go("sub", func() {
		sub.SetShift(10 * time.Second)
		sub.Subscribe("10.0.0.1:5006", 1, 3*time.Second)
		sim.Sleep(10 * time.Second)
		if g := sub.Granted(); g != time.Second {
			t.Errorf("granted = %v, want the 1s live lease after the fallback", g)
		}
		if s := sub.GrantedShift(); s != 0 {
			t.Errorf("granted shift = %v, want 0 (live fallback)", s)
		}
		sub.Close()
		relayConn.Close()
		cc.Close()
	})
	sim.WaitIdle()
	if shifted != ShiftFallbackAfter {
		t.Errorf("relay saw %d shifted subscribes, want exactly ShiftFallbackAfter = %d", shifted, ShiftFallbackAfter)
	}
	if live == 0 {
		t.Error("relay never saw a live (shift-free) subscribe after the fallback")
	}
	if st := sub.Stats(); st.ShiftFallbacks != 1 {
		t.Errorf("ShiftFallbacks = %d, want 1", st.ShiftFallbacks)
	}
}

// redirectAck builds one SubRedirect ack for seq naming to.
func redirectAck(t *testing.T, seq uint32, to string) []byte {
	t.Helper()
	data, err := (&proto.SubAck{Seq: seq, Status: proto.SubRedirect, Redirect: to}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// recvSubscribe reads the next subscribe at a fake relay endpoint.
func recvSubscribe(t *testing.T, conn lan.Conn) *proto.Subscribe {
	t.Helper()
	pkt, err := conn.Recv(time.Second)
	if err != nil {
		t.Fatalf("relay endpoint heard nothing: %v", err)
	}
	req, err := proto.UnmarshalSubscribe(pkt.Data)
	if err != nil {
		t.Fatalf("relay endpoint got a non-subscribe: %v", err)
	}
	return req
}

// TestRedirectRetargetsAndResubscribes: a SubRedirect moves the lease
// to the named sibling and chases it immediately — the sibling hears a
// fresh subscribe without waiting out a refresh interval — and a
// granted lease at the new target resets the chain budget.
func TestRedirectRetargetsAndResubscribes(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	cc, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	shedder, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := seg.Attach("10.0.0.3:5006")
	if err != nil {
		t.Fatal(err)
	}
	sub := New(sim, cc, "redirect-test")
	sim.Go("test", func() {
		defer func() { sub.Close(); shedder.Close(); sibling.Close() }()
		sub.Subscribe("10.0.0.1:5006", 1, 10*time.Second)
		req := recvSubscribe(t, shedder)
		st, err := sub.HandleAckData("10.0.0.1:5006", redirectAck(t, req.Seq, "10.0.0.3:5006"))
		if err != nil || st != proto.SubRedirect {
			t.Fatalf("redirect not applied: status %v, err %v", st, err)
		}
		if sub.Target() != "10.0.0.3:5006" {
			t.Fatalf("target = %q after redirect", sub.Target())
		}
		// The chase arrives at the sibling, same channel and lease ask.
		req2 := recvSubscribe(t, sibling)
		if req2.Channel != 1 || req2.LeaseMs != 10_000 {
			t.Fatalf("chase subscribe = %+v", req2)
		}
		// A grant from the *old* target must not reach the lease now.
		if sub.HandleAckData("10.0.0.1:5006", nil); sub.Stats().Stale != 1 {
			t.Fatalf("stale = %d, old target not gated out", sub.Stats().Stale)
		}
		// The sibling grants: lease installs, redirect budget resets.
		ackData, _ := (&proto.SubAck{Seq: req2.Seq, Status: proto.SubOK, LeaseMs: 5000}).Marshal()
		if _, err := sub.HandleAckData("10.0.0.3:5006", ackData); err != nil {
			t.Fatal(err)
		}
		if sub.Granted() != 5*time.Second {
			t.Fatalf("granted = %v", sub.Granted())
		}
		st2 := sub.Stats()
		if st2.Redirects != 1 || st2.Refusals != 0 {
			t.Fatalf("stats = %+v, want one followed redirect and no refusals", st2)
		}
	})
	sim.WaitIdle()
}

// TestRedirectChainCapped: two relays bouncing a subscriber between
// them stop being followed after MaxRedirects hops — the subscriber
// surfaces ErrRedirectLimit, keeps its current target, and counts the
// refused redirect as a refusal rather than chasing forever.
func TestRedirectChainCapped(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	cc, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []lan.Addr{"10.0.0.1:5006", "10.0.0.3:5006"}
	conns := make([]lan.Conn, 2)
	for i, a := range addrs {
		if conns[i], err = seg.Attach(a); err != nil {
			t.Fatal(err)
		}
	}
	sub := New(sim, cc, "redirect-cap-test")
	sim.Go("test", func() {
		defer func() { sub.Close(); conns[0].Close(); conns[1].Close() }()
		sub.Subscribe(addrs[0], 0, 10*time.Second)
		cur := 0
		for i := 0; i < MaxRedirects; i++ {
			req := recvSubscribe(t, conns[cur])
			next := 1 - cur
			st, err := sub.HandleAckData(addrs[cur], redirectAck(t, req.Seq, string(addrs[next])))
			if err != nil || st != proto.SubRedirect {
				t.Fatalf("hop %d: status %v, err %v", i, st, err)
			}
			cur = next
			if sub.Target() != addrs[cur] {
				t.Fatalf("hop %d: target = %q", i, sub.Target())
			}
		}
		// Budget spent: the next bounce is refused, target keeps.
		req := recvSubscribe(t, conns[cur])
		st, err := sub.HandleAckData(addrs[cur], redirectAck(t, req.Seq, string(addrs[1-cur])))
		if err != ErrRedirectLimit {
			t.Fatalf("over-budget redirect: status %v, err %v, want ErrRedirectLimit", st, err)
		}
		if sub.Target() != addrs[cur] {
			t.Fatalf("target moved to %q after refused redirect", sub.Target())
		}
		stats := sub.Stats()
		if stats.Redirects != MaxRedirects || stats.Refusals != 1 {
			t.Fatalf("stats = %+v, want %d followed and 1 refused", stats, MaxRedirects)
		}
	})
	sim.WaitIdle()
}

// TestRedirectRejectsForgedAndNonsense: with control-plane auth on,
// only a correctly signed redirect moves the lease — forged and
// unsigned ones are dropped (ErrAuthFailed) with the target unmoved.
// And even a well-signed redirect pointing nowhere usable (back at the
// sender, or at a multicast group) is refused, not followed.
func TestRedirectRejectsForgedAndNonsense(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	cc, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	relay, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	auth := security.NewHMAC([]byte("chain key"))
	sub := New(sim, cc, "redirect-auth-test")
	sub.SetAuth(auth)
	sim.Go("test", func() {
		defer func() { sub.Close(); relay.Close() }()
		sub.Subscribe("10.0.0.1:5006", 1, 10*time.Second)
		pkt, err := relay.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		inner, ok := auth.Verify(pkt.Data)
		if !ok {
			t.Fatal("subscribe not signed")
		}
		req, err := proto.UnmarshalSubscribe(inner)
		if err != nil {
			t.Fatal(err)
		}
		raw := redirectAck(t, req.Seq, "10.0.0.9:5006")
		// Unsigned: dropped before the lease state.
		if _, err := sub.HandleAckData("10.0.0.1:5006", raw); err != ErrAuthFailed {
			t.Fatalf("unsigned redirect: err %v, want ErrAuthFailed", err)
		}
		// Signed with the wrong key: same fate.
		forged := security.NewHMAC([]byte("attacker key")).Sign(raw)
		if _, err := sub.HandleAckData("10.0.0.1:5006", forged); err != ErrAuthFailed {
			t.Fatalf("forged redirect: err %v, want ErrAuthFailed", err)
		}
		if sub.Target() != "10.0.0.1:5006" {
			t.Fatalf("target moved to %q on a rejected redirect", sub.Target())
		}
		// Well-signed but pointing back at the sender: a refusal in
		// redirect's clothing, counted but never followed.
		self := auth.Sign(redirectAck(t, req.Seq, "10.0.0.1:5006"))
		if st, err := sub.HandleAckData("10.0.0.1:5006", self); err != nil || st != proto.SubRedirect {
			t.Fatalf("self-redirect: status %v, err %v", st, err)
		}
		// Well-signed but multicast: a lease cannot live there.
		mc := auth.Sign(redirectAck(t, req.Seq, "239.72.5.9:5004"))
		if _, err := sub.HandleAckData("10.0.0.1:5006", mc); err != nil {
			t.Fatal(err)
		}
		stats := sub.Stats()
		if sub.Target() != "10.0.0.1:5006" || stats.Redirects != 0 {
			t.Fatalf("target %q, stats %+v: a nonsense redirect was followed", sub.Target(), stats)
		}
		if stats.AuthDropped != 2 || stats.Refusals != 2 {
			t.Fatalf("stats = %+v, want 2 auth drops and 2 refusals", stats)
		}
	})
	sim.WaitIdle()
}
