package lease

import (
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vclock"
)

// harness attaches a subscriber and a fake relay endpoint to one
// simulated segment.
func harness(t *testing.T) (*vclock.Sim, *Subscriber, lan.Conn) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	cc, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	return sim, New(sim, cc, "lease-test"), rc
}

// TestRefreshStaysInsideShortGrantedLease is the regression test for
// the lease-flap bug: with a relay-clamped 1s lease, the old speaker
// refresh waited max(lease/3, 1s) = 1s — landing at or after expiry.
// Refreshes must arrive strictly inside every granted lease.
func TestRefreshStaysInsideShortGrantedLease(t *testing.T) {
	sim, sub, relay := harness(t)
	const granted = time.Second
	var gaps []time.Duration
	sim.Go("relay", func() {
		var last time.Time
		for {
			pkt, err := relay.Recv(0)
			if err != nil {
				return
			}
			req, err := proto.UnmarshalSubscribe(pkt.Data)
			if err != nil || req.LeaseMs == 0 {
				continue
			}
			now := sim.Now()
			if !last.IsZero() {
				gaps = append(gaps, now.Sub(last))
			}
			last = now
			ack, _ := (&proto.SubAck{Seq: req.Seq, LeaseMs: uint32(granted / time.Millisecond)}).Marshal()
			relay.Send(pkt.From, ack)
		}
	})
	sim.Go("sub", func() {
		sub.Subscribe("10.0.0.1:5006", 1, 15*time.Second)
		sim.Sleep(100 * time.Millisecond)
		// The relay granted 1s; simulate the ack reception loop.
		sub.HandleAck(&proto.SubAck{Status: proto.SubOK, LeaseMs: uint32(granted / time.Millisecond)})
		sim.Sleep(5 * time.Second)
		sub.Close()
		relay.Close()
	})
	sim.WaitIdle()
	if len(gaps) < 3 {
		t.Fatalf("only %d refreshes in 5s of a 1s lease", len(gaps))
	}
	for i, g := range gaps[1:] { // gaps[0] spans the pre-ack pacing
		if g >= granted {
			t.Fatalf("refresh gap %d = %v, not inside the %v granted lease (gaps %v)", i+1, g, granted, gaps)
		}
	}
}

func TestSubscribeCancelAndPath(t *testing.T) {
	sim, sub, relay := harness(t)
	type seen struct {
		channel uint32
		leaseMs uint32
		hops    uint8
		pathID  uint64
	}
	var got []seen
	sim.Go("relay", func() {
		for {
			pkt, err := relay.Recv(0)
			if err != nil {
				return
			}
			if req, err := proto.UnmarshalSubscribe(pkt.Data); err == nil {
				got = append(got, seen{req.Channel, req.LeaseMs, req.Hops, req.PathID})
			}
		}
	})
	sim.Go("sub", func() {
		sub.SetPath(func() (uint8, uint64) { return 2, 77 })
		sub.Subscribe("10.0.0.1:5006", 9, 10*time.Second)
		sim.Sleep(50 * time.Millisecond)
		sub.Cancel()
		if tgt := sub.Target(); tgt != "" {
			t.Errorf("target after cancel = %q", tgt)
		}
		sim.Sleep(50 * time.Millisecond)
		sub.Close()
		relay.Close()
	})
	sim.WaitIdle()
	if len(got) != 2 {
		t.Fatalf("relay saw %d packets, want subscribe + cancel: %+v", len(got), got)
	}
	if got[0] != (seen{9, 10000, 2, 77}) {
		t.Fatalf("subscribe = %+v", got[0])
	}
	if got[1] != (seen{9, 0, 2, 77}) {
		t.Fatalf("cancel = %+v", got[1])
	}
	st := sub.Stats()
	if st.Subscribes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHandleAckAccounting(t *testing.T) {
	sim, sub, _ := harness(t)
	sim.Go("sub", func() {
		sub.Subscribe("10.0.0.1:5006", 0, 10*time.Second)
		if st := sub.HandleAck(&proto.SubAck{Status: proto.SubOK, LeaseMs: 3000}); st != proto.SubOK {
			t.Errorf("status = %v", st)
		}
		if g := sub.Granted(); g != 3*time.Second {
			t.Errorf("granted = %v, want 3s", g)
		}
		sub.HandleAck(&proto.SubAck{Status: proto.SubTableFull})
		sub.HandleAck(&proto.SubAck{Status: proto.SubLoop})
		st := sub.Stats()
		if st.Acks != 3 || st.Refusals != 2 || st.Loops != 1 {
			t.Errorf("stats = %+v", st)
		}
		sub.Close()
	})
	sim.WaitIdle()
}
