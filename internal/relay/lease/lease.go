// Package lease maintains one TURN-style relay subscription: the
// subscribe / refresh / cancel cycle a client runs against a relay's
// unicast address. It is shared by the speaker (tuning to a relay
// instead of a multicast group) and by a chained relay (subscribing to
// its upstream relay), so both sides pace refreshes the same way, carry
// the same loop-detection path fields, and — when an authenticator is
// installed — sign their subscribes and verify the relay's grants the
// same way (§5.1 applied to the control plane).
package lease

import (
	"errors"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/security"
	"repro/internal/vclock"
)

// MinLease is the smallest lease a relay grants (requests below it are
// rounded up). The refresh pacing floors the lease — never the wait —
// at this value, so a refresh always lands strictly inside even the
// shortest granted lease.
const MinLease = time.Second

// ErrAuthFailed reports a SubAck that failed control-plane verification
// and was dropped before reaching the lease state.
var ErrAuthFailed = errors.New("lease: suback failed authentication")

// MaxRedirects caps how many SubRedirect hops one subscription follows
// before giving up. A shedding relay points the subscriber at a
// sibling; the sibling may itself be shedding, so a short chain is
// legitimate — but an unbounded one would let a misconfigured (or
// hostile) relay set bounce a subscriber around forever without it
// ever hearing silence. Landing a granted lease resets the budget.
const MaxRedirects = 4

// ErrRedirectLimit reports a SubRedirect that was ignored because the
// current subscription attempt already followed MaxRedirects of them.
var ErrRedirectLimit = errors.New("lease: redirect chain exceeded limit")

// ShiftFallbackAfter is how many consecutive shifted subscribes may go
// unanswered before the subscriber presumes the relay predates the
// time-shift extension and degrades to a live join. A pre-DVR relay
// rejects the extended (13/22-byte) Subscribe body as malformed and
// answers nothing at all, so without the fallback a shifted join
// against an old relay would retry silently forever; with it, the
// shift is dropped from subsequent subscribes (the legacy body every
// relay parses) and GrantedShift reports the zero truth. The fallback
// latches until the subscription is re-targeted — an answered live
// refresh proves nothing about shift support, and re-arming would flap
// the lease. Heavy loss can trip it spuriously; that costs the shift,
// never the lease.
const ShiftFallbackAfter = 3

// Stats is the subscription-side accounting.
type Stats struct {
	Subscribes  int64 // subscribe/refresh/cancel packets sent
	Acks        int64 // SubAcks accepted (answering an outstanding request)
	Refusals    int64 // acks refusing the lease (any non-OK status)
	Loops       int64 // acks refusing with SubLoop (subset of Refusals)
	Stale       int64 // acks ignored: detached, or a seq this target was never asked
	AuthDropped int64 // acks dropped by control-plane verification
	Redirects   int64 // SubRedirect acks followed to a sibling relay
	// ShiftFallbacks counts shifted subscription attempts abandoned in
	// favor of a live join after ShiftFallbackAfter unanswered tries
	// (the target relay likely predates the time-shift extension).
	ShiftFallbacks int64
}

// Subscriber maintains at most one live lease with a relay. The owner
// keeps receiving on its own connection and feeds SubAck packets in via
// HandleAckData (or pre-parsed ones via HandleAck); the Subscriber only
// sends.
type Subscriber struct {
	clock vclock.Clock
	conn  lan.Conn
	name  string // refresh-task diagnostics label

	mu      sync.Mutex
	pace    vclock.Cond   // signaled whenever the refresh pacing changes
	target  lan.Addr      // relay being leased from; "" while detached
	channel uint32        // channel requested from the relay
	want    time.Duration // lease duration requested
	granted time.Duration // lease duration the relay last granted
	path    func() (hops uint8, pathID uint64)
	auth    security.Authenticator // signs subscribes, verifies acks; nil = plaintext
	// profile is the delivery tier requested in every subscribe;
	// current is the tier the relay's last grant said it actually
	// serves (the relay's quality ladder may sit below the request).
	profile codec.Profile
	current codec.Profile
	// shift is the time shift requested in every subscribe ("from this
	// long ago", served from the relay's DVR ring); curShift is the
	// shift the relay's last grant said it actually honored, clamped to
	// what its ring still held.
	shift    time.Duration
	curShift time.Duration
	// shiftMisses counts consecutive shifted subscribes the target has
	// left unanswered; at ShiftFallbackAfter, shiftFallback latches and
	// later subscribes drop the shift (legacy body — see the constant).
	// Any accepted ack clears the miss count; re-targeting (or a new
	// SetShift/Subscribe) clears the latch too.
	shiftMisses   int
	shiftFallback bool
	seq           uint32
	// ackFloor is the seq of the first subscribe sent to the current
	// target: only acks echoing a seq in [ackFloor, seq] answer a
	// request this target was actually asked. Anything below is a late
	// reply from a previous target (or a duplicated datagram from that
	// exchange); anything above was never sent at all.
	ackFloor uint32
	// redirects counts SubRedirect hops followed since the owner's last
	// Subscribe (or the last granted lease); at MaxRedirects further
	// redirects are refused instead of followed.
	redirects int
	stats     Stats
	started   bool // refresh task spawned
	closed    bool

	// Optional instruments (SetInstruments): rtt observes the wall-clock
	// Subscribe→SubAck round trip, margin observes how much of the
	// granted lease was still left each time a refresh went out — the
	// distance-to-expiry safety margin the pacing is supposed to keep
	// comfortably positive. Wall clock on purpose: these measure the
	// process, not the simulation.
	rtt    *obs.Histogram
	margin *obs.Histogram
	// sentSeq/sentAt stamp the most recent subscribe for RTT matching;
	// expiresWall is the wall-clock expiry of the current grant.
	sentSeq     uint32
	sentAt      time.Time
	expiresWall time.Time
}

// New creates a detached subscriber sending through conn. name labels
// the refresh task in diagnostics.
func New(clock vclock.Clock, conn lan.Conn, name string) *Subscriber {
	return &Subscriber{clock: clock, conn: conn, name: name, pace: clock.NewCond()}
}

// SetPath installs the loop-detection path source: fn is consulted for
// the Hops/PathID pair carried by every subsequent subscribe packet. A
// chained relay uses it to report the relays already behind it; plain
// speakers leave it unset (zero hops, zero path id).
func (s *Subscriber) SetPath(fn func() (hops uint8, pathID uint64)) {
	s.mu.Lock()
	s.path = fn
	s.mu.Unlock()
}

// SetAuth installs the control-plane authenticator: every subsequent
// subscribe packet is signed with it, and HandleAckData verifies every
// SubAck before the grant can touch the lease state. A nil
// authenticator restores plaintext operation. The authenticator must be
// safe for use from the refresh task concurrently with the owner's
// receive loop (the HMAC scheme is; one-way stream signers are not).
func (s *Subscriber) SetAuth(a security.Authenticator) {
	s.mu.Lock()
	s.auth = a
	s.mu.Unlock()
}

// SetProfile sets the delivery tier requested by every subsequent
// subscribe packet (codec.ProfileSource — the zero value — asks for
// the untouched upstream payload, indistinguishable on the wire from
// a pre-profile subscriber).
func (s *Subscriber) SetProfile(p codec.Profile) {
	s.mu.Lock()
	s.profile = p
	s.mu.Unlock()
}

// CurrentProfile returns the tier the relay's most recent grant says
// it is serving — under ladder pressure that may be a lower rung than
// the requested profile. It resets on re-targeting and means nothing
// until the first grant.
func (s *Subscriber) CurrentProfile() codec.Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// SetShift sets the time shift requested by every subsequent subscribe
// packet: "start my stream from this long ago", served out of the
// relay's DVR generation ring. Zero — the default — is live, and on
// the wire indistinguishable from a pre-DVR subscriber. The relay
// clamps the request to the history it actually holds; read the truth
// with GrantedShift. Set it before the first Subscribe: the relay
// honors a shift when the lease is created, not on a refresh. A relay
// predating the extension rejects the shifted body without answering;
// after ShiftFallbackAfter unanswered attempts the subscriber drops
// the shift and joins live (counted in Stats.ShiftFallbacks) rather
// than retrying forever.
func (s *Subscriber) SetShift(d time.Duration) {
	s.mu.Lock()
	if d < 0 {
		d = 0
	}
	s.shift = d
	s.shiftMisses, s.shiftFallback = 0, false
	s.mu.Unlock()
}

// GrantedShift returns the time shift the relay's most recent grant
// actually honored — clamped to its ring depth, zero from a relay
// without a DVR. It resets on re-targeting and means nothing until the
// first grant.
func (s *Subscriber) GrantedShift() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curShift
}

// Pause asks the relay to freeze this subscription's delivery cursor.
// The relay's DVR ring keeps recording the channel, so a later Resume
// replays the gap at faster than realtime. Best effort, like Cancel:
// the packet is signed when an authenticator is installed, and a relay
// without a DVR ring for the channel ignores it.
func (s *Subscriber) Pause() { s.sendPause(true) }

// Resume unfreezes a paused subscription: the relay replays everything
// recorded since the Pause through its catch-up path, then hands the
// subscription back to live delivery.
func (s *Subscriber) Resume() { s.sendPause(false) }

func (s *Subscriber) sendPause(paused bool) {
	s.mu.Lock()
	target, channel := s.target, s.channel
	auth := s.auth
	s.seq++
	req := proto.Pause{Channel: channel, Seq: s.seq, Paused: paused}
	s.mu.Unlock()
	if target == "" {
		return
	}
	data, err := req.Marshal()
	if err != nil {
		return
	}
	if auth != nil {
		data = auth.Sign(data)
	}
	s.conn.Send(target, data)
}

// SetInstruments installs the control-plane histograms: rtt observes
// each Subscribe→SubAck round trip, margin observes the lease time
// remaining whenever a refresh is sent. Either may be nil. The owner
// registers the same histograms with its obs registry.
func (s *Subscriber) SetInstruments(rtt, margin *obs.Histogram) {
	s.mu.Lock()
	s.rtt = rtt
	s.margin = margin
	s.mu.Unlock()
}

// Subscribe starts (or re-targets) the lease: it sends one subscribe
// packet immediately and keeps refreshing until Cancel or Close. A
// zero channel accepts whatever the relay carries.
func (s *Subscriber) Subscribe(target lan.Addr, channel uint32, lease time.Duration) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.target = target
	s.channel = channel
	s.want = lease
	s.granted = 0
	s.redirects = 0                           // a fresh target gets a fresh redirect budget
	s.shiftMisses, s.shiftFallback = 0, false // the new target may speak the shift extension
	// The next send uses seq+1; acks for anything earlier belong to a
	// previous target and must not install a grant here.
	s.ackFloor = s.seq + 1
	started := s.started
	s.started = true
	s.pace.Broadcast()
	s.mu.Unlock()
	s.send(target, channel, lease)
	if !started {
		s.clock.Go(s.name, s.refreshLoop)
	}
}

// Cancel releases the current lease: it sends one zero-lease subscribe
// (best effort — if the packet is lost the relay expires us) and stops
// refreshing. The refresh task stays parked for a later Subscribe.
func (s *Subscriber) Cancel() {
	s.mu.Lock()
	target, channel := s.target, s.channel
	s.target = ""
	s.granted = 0
	s.mu.Unlock()
	if target != "" {
		s.send(target, channel, 0)
	}
}

// Close stops the refresh task for good. It does not cancel the lease;
// call Cancel first when the relay should forget us immediately.
func (s *Subscriber) Close() {
	s.mu.Lock()
	s.closed = true
	s.pace.Broadcast()
	s.mu.Unlock()
}

// Target returns the relay currently subscribed to ("" if none).
func (s *Subscriber) Target() lan.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// Granted returns the lease duration the relay last granted (0 before
// the first ack).
func (s *Subscriber) Granted() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.granted
}

// Stats returns a snapshot of the accounting.
func (s *Subscriber) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// HandleAckData ingests one raw SubAck datagram from the owner's
// receive loop. from is the datagram's source address: only the relay
// currently subscribed to may answer the control plane, so an ack from
// anywhere else — an off-path forger, or a previous target after
// re-targeting — is counted stale and never reaches the lease state,
// even before the seq window applies. The packet is then verified when
// an authenticator is installed (a forged or unsigned grant is dropped
// and counted, never applied), parsed, and applied via HandleAck. It
// returns ErrAuthFailed on a verification failure and the parse error
// on a malformed packet; a stale-but-well-formed ack is not an error
// (it is counted and ignored).
func (s *Subscriber) HandleAckData(from lan.Addr, data []byte) (proto.SubStatus, error) {
	s.mu.Lock()
	auth := s.auth
	if s.target == "" || from != s.target {
		s.stats.Stale++
		s.mu.Unlock()
		return 0, nil
	}
	s.mu.Unlock()
	if auth != nil {
		inner, ok := auth.Verify(data)
		if !ok {
			s.mu.Lock()
			s.stats.AuthDropped++
			s.mu.Unlock()
			return 0, ErrAuthFailed
		}
		data = inner
	}
	ack, err := proto.UnmarshalSubAck(data)
	if err != nil {
		return 0, err
	}
	st, follow, channel, want, err := s.apply(ack)
	if follow != "" {
		// Followed a redirect: chase the new target immediately rather
		// than waiting out a refresh interval with no lease anywhere.
		s.send(follow, channel, want)
	}
	return st, err
}

// HandleAck ingests one parsed SubAck and returns its status. A granted
// lease re-paces the refresh cycle; a refusal is counted but the
// periodic subscribe keeps going — leases are soft state, so a full
// table may drain and the refresh doubles as the retry, at one small
// packet per refresh interval.
//
// Only acks answering a request sent to the *current* target are
// applied: while detached every ack is stale by definition, and a seq
// outside [ackFloor, seq] is a late reply from a previous target or a
// duplicated datagram — installing its grant would adopt a lease the
// current relay never made and mis-pace the refresh loop against it.
func (s *Subscriber) HandleAck(ack *proto.SubAck) proto.SubStatus {
	st, follow, channel, want, _ := s.apply(ack)
	if follow != "" {
		s.send(follow, channel, want)
	}
	return st
}

// apply ingests one in-window SubAck under the lock and reports what
// must happen outside it: a non-empty follow means a redirect was
// accepted and the caller must immediately subscribe to that target
// (send takes the lock itself, so it cannot run here). err is
// ErrRedirectLimit when a redirect was refused for exhausting the
// chain budget.
func (s *Subscriber) apply(ack *proto.SubAck) (st proto.SubStatus, follow lan.Addr, channel uint32, want time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.target == "" || ack.Seq < s.ackFloor || ack.Seq > s.seq {
		s.stats.Stale++
		return ack.Status, "", 0, 0, nil
	}
	s.stats.Acks++
	// The target answered *something*, so its parser accepts what we
	// send: the shifted-body fallback counter starts over. The latch
	// itself stays — once subscribes went out shift-free, an answer to
	// one proves nothing about shift support.
	s.shiftMisses = 0
	if s.rtt != nil && ack.Seq == s.sentSeq {
		// Control RTT: only the newest outstanding request is timed — an
		// earlier in-window ack is a retransmit answer whose send time we
		// no longer hold.
		s.rtt.Observe(time.Since(s.sentAt))
	}
	switch {
	case ack.Status == proto.SubRedirect:
		next := lan.Addr(ack.Redirect)
		if next == s.target || next.Validate() != nil || next.IsMulticast() {
			// "Go where you already are", or somewhere a lease cannot
			// live: a refusal in redirect's clothing.
			s.stats.Refusals++
			return ack.Status, "", 0, 0, nil
		}
		if s.redirects >= MaxRedirects {
			s.stats.Refusals++
			return ack.Status, "", 0, 0, ErrRedirectLimit
		}
		s.redirects++
		s.stats.Redirects++
		s.target = next
		s.granted = 0
		s.current = 0  // the sibling's ladder starts fresh
		s.curShift = 0 // and so does its DVR ring
		// The sibling may speak the shift extension even if the shedder
		// did not (or vice versa): probe it from scratch.
		s.shiftMisses, s.shiftFallback = 0, false
		// Acks from the shedding relay (or any earlier target) must not
		// install a grant against the new one.
		s.ackFloor = s.seq + 1
		s.pace.Broadcast()
		return ack.Status, next, s.channel, s.want, nil
	case ack.Status != proto.SubOK:
		s.stats.Refusals++
		if ack.Status == proto.SubLoop {
			s.stats.Loops++
		}
	case ack.LeaseMs > 0:
		granted := time.Duration(ack.LeaseMs) * time.Millisecond
		// Every OK grant extends the wall-clock expiry, even when the
		// duration is unchanged — that is what a refresh does. The
		// grant also reports the delivery tier actually served, which
		// the relay's ladder may have stepped below the request, and
		// the time shift actually honored, which the relay's DVR ring
		// may have clamped below it.
		s.current = codec.Profile(ack.Profile)
		s.curShift = time.Duration(ack.ShiftMs) * time.Millisecond
		s.expiresWall = time.Now().Add(granted)
		s.redirects = 0 // landed: a later shed starts a fresh chain
		if granted != s.granted {
			s.granted = granted
			s.pace.Broadcast() // re-pace the refresh off the real lease
		}
	}
	return ack.Status, "", 0, 0, nil
}

// send emits one subscribe packet (lease 0 = cancel).
func (s *Subscriber) send(target lan.Addr, channel uint32, lease time.Duration) {
	s.mu.Lock()
	path := s.path
	s.mu.Unlock()
	var hops uint8
	var pathID uint64
	if path != nil {
		// Evaluated outside s.mu: the path source takes the owner's own
		// locks (e.g. a relay walking its subscriber shards).
		hops, pathID = path()
	}
	s.mu.Lock()
	s.seq++
	s.sentSeq = s.seq
	s.sentAt = time.Now()
	if s.margin != nil && lease > 0 && s.granted > 0 && !s.expiresWall.IsZero() {
		// Refresh margin: how close to expiry this refresh cut it. A
		// negative margin (lease already lapsed) clamps into the lowest
		// bucket, which is exactly where an operator should see it.
		s.margin.Observe(time.Until(s.expiresWall))
	}
	shiftMs := uint32(s.shift / time.Millisecond)
	if shiftMs != 0 {
		// Legacy-relay fallback: a shifted subscribe uses the extended
		// body, which a pre-DVR relay rejects as malformed without
		// answering. After ShiftFallbackAfter unanswered tries, stop
		// asking and join live — a silent lease failure forever is worse
		// than a shift-free lease. See ShiftFallbackAfter.
		switch {
		case s.shiftFallback:
			shiftMs = 0
		case s.shiftMisses >= ShiftFallbackAfter:
			s.shiftFallback = true
			s.stats.ShiftFallbacks++
			shiftMs = 0
		default:
			s.shiftMisses++
		}
	}
	req := proto.Subscribe{
		Channel: channel,
		Seq:     s.seq,
		LeaseMs: uint32(lease / time.Millisecond),
		Hops:    hops,
		PathID:  pathID,
		Profile: uint8(s.profile),
		ShiftMs: shiftMs,
	}
	auth := s.auth
	s.stats.Subscribes++
	s.mu.Unlock()
	data, err := req.Marshal()
	if err != nil {
		return
	}
	if auth != nil {
		data = auth.Sign(data)
	}
	s.conn.Send(target, data)
}

// refreshLoop re-sends the subscription well before the lease expires.
// One long-lived task per subscriber, started by the first Subscribe;
// it idles (cheaply) while detached. Pacing is off the granted lease —
// the value the relay actually enforces — floored at MinLease, so with
// a relay-clamped 1s lease the refresh still lands at ~333ms, three
// refreshes inside every lease instead of a flapping race at expiry.
// When a grant arrives mid-wait (the relay clamped our request down),
// the pace cond wakes the loop to recompute off the real lease instead
// of finishing a wait sized to the requested one.
func (s *Subscriber) refreshLoop() {
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return
		}
		lease := s.granted
		if lease <= 0 {
			lease = s.want
		}
		if lease < MinLease {
			lease = MinLease
		}
		if s.pace.WaitTimeout(&s.mu, lease/3) {
			continue // pacing changed (grant, re-target, close): recompute
		}
		target, channel, want := s.target, s.channel, s.want
		s.mu.Unlock()
		if target != "" {
			s.send(target, channel, want)
		}
		s.mu.Lock()
	}
}
