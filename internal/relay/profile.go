package relay

import (
	"time"

	"repro/internal/codec"
	"repro/internal/proto"
)

// Per-profile delivery groups: the relay serves one upstream stream at
// several quality tiers (codec.Profile). Subscribers request a tier at
// subscribe time; the adaptive ladder (sweep) may step a congested
// subscriber further down and back up. The fan-out path encodes the
// upstream payload once per *active* profile — never per subscriber —
// and the shard workers group datagrams by profile so each flush is
// one same-payload delivery group, the shape UDP GSO coalesces.

// Ladder defaults.
const (
	// DefaultLadderDwell is how long a subscriber must stay drop-free
	// at its current tier before the ladder steps it back up.
	DefaultLadderDwell = 10 * time.Second
	// DefaultLadderDownDrops is the queue-drop delta per sweep that
	// triggers a one-tier downgrade. Distinct from the upgrade
	// condition (a fully clean dwell) so the ladder cannot flap.
	DefaultLadderDownDrops = 4
)

// stream is the relay's learned view of one channel's upstream
// encoding, built from the Control packets flowing through fanout. It
// owns the per-profile transcoders (rebuilt on reconfiguration); a nil
// transcoder means the tier cannot serve this stream (e.g. µ-law needs
// a 16-bit source) and its subscribers fall back to passthrough.
// Guarded by r.txMu: transcoders are not safe for concurrent use.
type stream struct {
	ctl proto.Control
	tx  [codec.NumProfiles]*codec.Transcoder
}

// profilePayloads is one upstream packet's wire variants, indexed by
// profile. Index ProfileSource is always the original packet; a nil
// entry means that tier falls back to the source payload.
type profilePayloads [codec.NumProfiles][]byte

// profileEpoch derives the epoch a tier's rewritten stream carries.
// Transcoded packets must not share the source epoch: a speaker only
// reconfigures its decoder on an epoch change, so a subscriber moving
// between tiers mid-stream has to see the tier transition as a
// reconfiguration — new epoch in the rewritten Control, matching epoch
// in every transcoded Data packet. The speaker's radio model does the
// rest: data from the new tier is dropped as a foreign epoch until the
// next rewritten Control arrives, then decoding resumes at the new
// quality with no speaker-side changes at all.
func profileEpoch(epoch uint32, p codec.Profile) uint32 {
	if p == codec.ProfileSource {
		return epoch
	}
	return epoch<<2 | uint32(p)
}

// learnStream ingests one upstream Control packet: it records the
// channel's encoding and (re)builds the per-profile transcoders when
// the configuration changed. Caller holds r.txMu.
func (r *Relay) learnStream(ch uint32, ctl *proto.Control) *stream {
	st := r.streams[ch]
	if st != nil && st.ctl.Epoch == ctl.Epoch && st.ctl.Codec == ctl.Codec &&
		st.ctl.Params == ctl.Params && st.ctl.Quality == ctl.Quality {
		st.ctl = *ctl // refresh the clock/interval fields only
		return st
	}
	if st == nil {
		st = &stream{}
		r.streams[ch] = st
	}
	st.ctl = *ctl
	for p := codec.ProfileULaw; p.Valid(); p++ {
		tx, err := codec.NewTranscoder(ctl.Codec, ctl.Params, p)
		if err != nil {
			// This stream cannot carry the tier; its subscribers get
			// the source payload until a reconfiguration changes that.
			st.tx[p] = nil
			continue
		}
		st.tx[p] = tx
	}
	return st
}

// buildProfilePayloads produces the per-profile variants of one
// upstream packet, encoding once per active profile regardless of how
// many subscribers hold each tier. It runs outside every shard lock —
// transcoding must never stall the enqueue path of subscribers on
// other tiers. Control packets are always learned (so transcoders are
// ready before the first tiered subscriber needs them) and rewritten
// per tier with the tier's codec, quality, and derived epoch; Data
// packets are transcoded and re-marshaled with seq and play deadline
// preserved, so relative timing survives the quality change 1:1.
func (r *Relay) buildProfilePayloads(ch uint32, data []byte) profilePayloads {
	var out profilePayloads
	out[codec.ProfileSource] = data
	// Active-tier snapshot from the lock-free refcounts: with every
	// subscriber on the source tier this is the whole fast path.
	var want [codec.NumProfiles]bool
	active := false
	for p := codec.ProfileULaw; p.Valid(); p++ {
		if r.profCount[p].Load() > 0 {
			want[p], active = true, true
		}
	}
	t, _, err := proto.PeekType(data)
	if err != nil {
		return out
	}
	switch t {
	case proto.TypeControl:
		ctl, err := proto.UnmarshalControl(data)
		if err != nil {
			return out
		}
		r.txMu.Lock()
		r.learnStream(ch, ctl)
		r.txMu.Unlock()
		if !active {
			return out
		}
		for p := codec.ProfileULaw; p.Valid(); p++ {
			if !want[p] {
				continue
			}
			r.txMu.Lock()
			servable := r.streams[ch].tx[p] != nil
			r.txMu.Unlock()
			if !servable {
				continue // tier falls back to source; Control stays the source's
			}
			name, quality := p.CodecSpec()
			nc := *ctl
			nc.Epoch = profileEpoch(ctl.Epoch, p)
			nc.Codec = name
			nc.Quality = uint8(quality)
			if b, err := nc.Marshal(); err == nil {
				out[p] = b
			}
		}
	case proto.TypeData:
		if !active {
			return out
		}
		r.txMu.Lock()
		defer r.txMu.Unlock()
		st := r.streams[ch]
		if st == nil {
			return out // no Control seen yet: passthrough for everyone
		}
		d, err := proto.UnmarshalData(data)
		if err != nil {
			return out
		}
		var encodes, errs int64
		for p := codec.ProfileULaw; p.Valid(); p++ {
			if !want[p] || st.tx[p] == nil {
				continue
			}
			t0 := time.Now()
			payload, err := st.tx[p].Transcode(d.Payload)
			if err != nil {
				errs++
				continue
			}
			nd := *d
			nd.Epoch = profileEpoch(d.Epoch, p)
			nd.Payload = payload
			b, err := nd.Marshal()
			if err != nil {
				errs++
				continue
			}
			r.transcodeLatency.Observe(time.Since(t0))
			out[p] = b
			encodes++
		}
		if encodes+errs > 0 {
			r.count(func(s *Stats) {
				s.TranscodeEncodes += encodes
				s.TranscodeErrors += errs
			})
		}
	}
	return out
}

// ladderStep evaluates the adaptive ladder for one shard's subscribers
// (called from sweep, under sh.mu): a subscriber whose queue dropped at
// least cfg.LadderDownDrops packets since the last sweep steps one tier
// down; one that stayed completely drop-free for cfg.LadderDwell steps
// one tier back up, never past its requested profile. The asymmetric
// thresholds plus the dwell are the hysteresis: pressure reacts within
// a sweep, recovery is earned slowly, and a flap costs at least one
// full dwell. Any drop at all restarts the dwell clock.
func (r *Relay) ladderStep(sh *shard, now time.Time) (down, up int64) {
	for _, sub := range sh.order {
		delta := sub.dropped - sub.ladderDrops
		sub.ladderDrops = sub.dropped
		switch {
		case delta >= int64(r.cfg.LadderDownDrops) && sub.profile < codec.ProfileOVLLow:
			r.profCount[sub.profile].Add(-1)
			sub.profile = sub.profile.Down()
			r.profCount[sub.profile].Add(1)
			sub.ladderAt = now
			if r.cfg.ShedTier && sub.profile == codec.ProfileOVLLow {
				// The ladder just hit its floor: the relay already serves
				// this subscriber the cheapest tier there is and its queue
				// still drops. Mark it for steering — its next refresh is
				// answered with a redirect to a less-loaded sibling (see
				// admitBatch) instead of a lease.
				sub.shedPending = true
			}
			down++
		case delta == 0 && sub.profile > sub.reqProfile &&
			now.Sub(sub.ladderAt) >= r.cfg.LadderDwell:
			r.profCount[sub.profile].Add(-1)
			sub.profile--
			r.profCount[sub.profile].Add(1)
			sub.ladderAt = now
			up++
		case delta > 0:
			sub.ladderAt = now // drops, even below threshold, reset the dwell
		}
	}
	return down, up
}

// requestedProfile extracts a Subscribe's delivery tier, mapping an
// invalid byte (a future ladder this relay does not know) to source
// passthrough rather than refusing the lease.
func requestedProfile(req *proto.Subscribe) codec.Profile {
	if p := codec.Profile(req.Profile); p.Valid() {
		return p
	}
	return codec.ProfileSource
}
