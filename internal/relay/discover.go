package relay

import (
	"fmt"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vclock"
)

// Discover finds a relay through the §4.3 catalog instead of static
// configuration: it joins the catalog group through a temporary
// endpoint attached at local and waits up to timeout for an announce
// naming a relay that can serve the wanted channel (channel 0 accepts
// any relay; a relay advertising channel 0 carries everything and
// matches any request). Off-LAN speakers and downstream relays use it
// to find a bridge. Call it from a clock-tracked task.
func Discover(clock vclock.Clock, network lan.Network, local, catalog lan.Addr,
	channel uint32, timeout time.Duration) (proto.RelayInfo, error) {
	conn, err := network.Attach(local)
	if err != nil {
		return proto.RelayInfo{}, fmt.Errorf("relay: discover: %w", err)
	}
	defer conn.Close()
	if err := conn.Join(catalog); err != nil {
		return proto.RelayInfo{}, fmt.Errorf("relay: discover: joining catalog %q: %w", catalog, err)
	}
	deadline := clock.Now().Add(timeout)
	for {
		remain := deadline.Sub(clock.Now())
		if remain <= 0 {
			return proto.RelayInfo{}, fmt.Errorf("relay: discover: no relay for channel %d announced within %v", channel, timeout)
		}
		pkt, err := conn.Recv(remain)
		if err == lan.ErrTimeout {
			continue
		}
		if err != nil {
			return proto.RelayInfo{}, fmt.Errorf("relay: discover: %w", err)
		}
		a, err := proto.UnmarshalAnnounce(pkt.Data)
		if err != nil {
			continue // not an announce (or malformed): keep listening
		}
		for _, ri := range a.Relays {
			if ri.Channel == 0 || channel == 0 || ri.Channel == channel {
				return ri, nil
			}
		}
	}
}
