package relay

import (
	"fmt"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/security"
	"repro/internal/vclock"
)

// discoverSettle is how long Discover keeps collecting announces after
// the first eligible record before judging the field: two full catalog
// cycles (plus slack) so every relay on the segment — real relayds
// advertise themselves in separate announce packets — has been heard
// before a candidate is trusted. Load ranking needs the wait to compare
// all siblings, and an exclude predicate needs it so a relay chained
// behind the caller at depth ≥ 2 cannot be selected before the
// intermediate hop's record arrives to prove the chain.
const discoverSettle = 2*rebroadcast.DefaultCatalogInterval + time.Second

// discoverStale is how old a record may grow before ranking demotes
// it: two missed announce cycles means the relay stopped advertising —
// dead, or partitioned — and its (frozen) load vector says nothing
// about its present state. Staleness demotes rather than vetoes: a
// stale record is chosen only when no fresh one survives, so discovery
// still converges on a segment whose only relay just went quiet.
const discoverStale = 2 * rebroadcast.DefaultCatalogInterval

// Discover finds a relay through the §4.3 catalog instead of static
// configuration: it joins the catalog group through a temporary
// endpoint attached at local and waits up to timeout for an announce
// naming a relay that can serve the wanted channel (channel 0 accepts
// any relay; a relay advertising channel 0 carries everything and
// matches any request). Off-LAN speakers and downstream relays use it
// to find a bridge. Call it from a clock-tracked task.
//
// exclude, when non-nil, vetoes individual records: a record for which
// it returns true is skipped. A relay using discovery to pick its own
// upstream must exclude its own advertised address and everything
// chained behind it (ExcludeChainOf) — the catalog happily echoes the
// caller's own announce back at it, and a relay that selects itself or
// any downstream, at any depth, builds a chain that SubLoop then
// refuses but that churns on every refresh instead of ever converging.
//
// verifier, when non-nil, demands a valid catalog signature on every
// announce before any record in it is considered: unsigned (legacy)
// and forged announces alike are skipped, so a rogue host on the LAN
// cannot steer discovery at a relay of its choosing. Nil accepts
// everything — the pre-signing catalog.
//
// Discover does not take the first acceptable record at face value:
// it collects records (all channels — an off-channel hop still forms a
// cycle) for discoverSettle after the first eligible one, re-applies
// any exclude predicate over everything heard until no further record
// is vetoed (so a stateful predicate's exclusions propagate
// transitively regardless of announce arrival order), then picks the
// least-loaded survivor by the records' self-reported load vectors —
// ties break on address, so two discoverers on one segment agree.
// Records not re-announced for discoverStale are demoted: their frozen
// load says nothing about the relay's present state. One fast path
// survives from before load ranking: with no excluder installed and no
// load-bearing record heard, the first eligible record wins
// immediately — a legacy segment has nothing to rank, and waiting out
// the settle window would only delay every tune-in.
func Discover(clock vclock.Clock, network lan.Network, local, catalog lan.Addr,
	channel uint32, timeout time.Duration,
	exclude func(proto.RelayInfo) bool,
	verifier *security.AnnounceVerifier) (proto.RelayInfo, error) {
	conn, err := network.Attach(local)
	if err != nil {
		return proto.RelayInfo{}, fmt.Errorf("relay: discover: %w", err)
	}
	defer conn.Close()
	if err := conn.Join(catalog); err != nil {
		return proto.RelayInfo{}, fmt.Errorf("relay: discover: joining catalog %q: %w", catalog, err)
	}
	deadline := clock.Now().Add(timeout)
	var (
		order    []string // record addresses in arrival order
		records  = make(map[string]proto.RelayInfo)
		heard    = make(map[string]time.Time) // last re-announce per record
		anyLoad  bool                         // a load-bearing record was seen
		settleAt time.Time                    // zero until the first eligible record
	)
	fail := func() (proto.RelayInfo, error) {
		return proto.RelayInfo{}, fmt.Errorf("relay: discover: no relay for channel %d announced within %v", channel, timeout)
	}
	for {
		now := clock.Now()
		if !settleAt.IsZero() && !now.Before(settleAt) {
			if ri, ok := pickRelay(records, order, heard, now, channel, exclude); ok {
				return ri, nil
			}
			settleAt = time.Time{} // all heard so far vetoed: keep listening
		}
		remain := deadline.Sub(now)
		if remain <= 0 {
			// Out of time: judge what was heard rather than discard it.
			if ri, ok := pickRelay(records, order, heard, now, channel, exclude); ok {
				return ri, nil
			}
			return fail()
		}
		wait := remain
		if !settleAt.IsZero() {
			if d := settleAt.Sub(now); d < wait {
				wait = d
			}
		}
		pkt, err := conn.Recv(wait)
		if err == lan.ErrTimeout {
			continue
		}
		if err != nil {
			return proto.RelayInfo{}, fmt.Errorf("relay: discover: %w", err)
		}
		if verifier != nil {
			if ok, _ := verifier.VerifyAnnounce(pkt.Data); !ok {
				continue // unsigned or forged: not a steer source
			}
		}
		a, err := proto.UnmarshalAnnounce(pkt.Data)
		if err != nil {
			continue // not an announce (or malformed): keep listening
		}
		at := clock.Now()
		for _, ri := range a.Relays { // whole packet first: a load vector
			if ri.HasLoad { // anywhere in it disarms the fast path below
				anyLoad = true
			}
		}
		for _, ri := range a.Relays {
			eligible := ri.Channel == 0 || channel == 0 || ri.Channel == channel
			if exclude == nil && !anyLoad && eligible {
				return ri, nil // legacy fast path: nothing to rank
			}
			if _, seen := records[ri.Addr]; !seen {
				order = append(order, ri.Addr)
			}
			records[ri.Addr] = ri
			heard[ri.Addr] = at
			if eligible && settleAt.IsZero() {
				settleAt = at.Add(discoverSettle)
			}
		}
	}
}

// pickRelay re-applies the exclude predicate over every collected
// record until a full pass vetoes nothing new — a stateful predicate
// (ExcludeChainOf) learns the chain graph from the records themselves,
// so each pass can prove more of the caller's subtree — then ranks the
// surviving records serving the wanted channel: fresh before stale,
// least LoadScore first, address as the deterministic final tie-break.
func pickRelay(records map[string]proto.RelayInfo, order []string,
	heard map[string]time.Time, now time.Time, channel uint32,
	exclude func(proto.RelayInfo) bool) (proto.RelayInfo, bool) {
	excluded := make(map[string]bool)
	if exclude != nil {
		for changed := true; changed; {
			changed = false
			for _, addr := range order {
				if !excluded[addr] && exclude(records[addr]) {
					excluded[addr] = true
					changed = true
				}
			}
		}
	}
	var best proto.RelayInfo
	found := false
	better := func(a, b proto.RelayInfo, aFresh, bFresh bool) bool {
		if aFresh != bFresh {
			return aFresh
		}
		if as, bs := a.LoadScore(), b.LoadScore(); as != bs {
			return as < bs
		}
		return a.Addr < b.Addr
	}
	bestFresh := false
	for _, addr := range order {
		ri := records[addr]
		if excluded[addr] {
			continue
		}
		if ri.Channel != 0 && channel != 0 && ri.Channel != channel {
			continue
		}
		fresh := now.Sub(heard[addr]) <= discoverStale
		if !found || better(ri, best, fresh, bestFresh) {
			best, bestFresh, found = ri, fresh, true
		}
	}
	return best, found
}

// ExcludeAddrs builds a Discover exclude predicate vetoing the given
// unicast addresses — typically the caller's own advertised address and
// any known-downstream relay, so discovery-driven chaining cannot pick
// a bridge that would immediately loop.
func ExcludeAddrs(addrs ...lan.Addr) func(proto.RelayInfo) bool {
	set := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		set[string(a)] = true
	}
	return func(ri proto.RelayInfo) bool { return set[ri.Addr] }
}

// ExcludeChainOf builds the exclude predicate for a relay picking its
// own upstream by discovery: it vetoes the caller's own advertised
// address and, transitively, every relay whose record's Group chain
// leads back to it — a chained relay advertises its upstream in the
// record's Group field, so Group naming a known-downstream address
// proves the record sits somewhere below the caller, at any depth.
// Selecting any of those would close a cycle that SubLoop refuses on
// every refresh without ever converging. The predicate is stateful
// (it accumulates the downstream set as records pass through it);
// Discover re-applies it to a fixpoint over all records heard, so the
// proof does not depend on announce arrival order.
func ExcludeChainOf(self lan.Addr) func(proto.RelayInfo) bool {
	downstream := map[string]bool{string(self): true}
	return func(ri proto.RelayInfo) bool {
		if downstream[ri.Addr] {
			return true
		}
		if downstream[ri.Group] {
			downstream[ri.Addr] = true
			return true
		}
		return false
	}
}
