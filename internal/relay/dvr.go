package relay

import (
	"time"

	"repro/internal/codec"
	"repro/internal/dvr"
	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/security"
)

// Time-shifted delivery: with Config.DVR set the relay records every
// relayed packet into a bounded per-channel ring (internal/dvr) before
// fanning it out. A subscriber joining with proto.Subscribe.ShiftMs is
// started from a cursor into that ring — clamped to the ring's depth,
// walked back to a Control packet so its decoder locks immediately —
// and fed the backlog from the shard worker at up to Config.DVRBurst
// packets per second until the cursor converges on the live head, at
// which point it is handed back to the normal fan-out. Because every
// packet is appended to the ring before fanout enqueues it, and both
// the convergence flip and the enqueue serialize on the shard lock,
// the backlog→live seam delivers every packet exactly once.
//
// Pause/resume (proto.Pause) rides the same cursor: pausing parks the
// cursor at the live head (or wherever a catch-up had reached) and
// resuming replays forward from there, again at the bounded burst
// rate.

// grantShift resolves a Subscribe's requested time shift against the
// channel's ring: the granted shift (the age of the entry the cursor
// actually landed on) is stored on the subscriber, echoed in the ack,
// and — when there is backlog to replay — catch-up state is armed so
// the shard worker feeds the subscriber from the ring instead of the
// live fan-out. A request the ring cannot satisfy in full (deeper than
// the recorded history, or nothing recorded at all) is clamped and
// counted. Caller holds sh.mu and r.mu.
func (r *Relay) grantShift(sub *subscriber, a *admission) {
	ch := a.req.Channel
	if ch == 0 {
		ch = r.cfg.Channel
	}
	var ring *dvr.Ring
	if ch != 0 {
		ring = r.dvr.Peek(ch)
	}
	if ring == nil {
		// Nothing recorded on the channel (or a wildcard subscribe on a
		// wildcard relay, where no single ring can be chosen): the lease
		// is granted live with a zero shift, and the clamp is counted.
		r.stats.DVRClamped++
		return
	}
	start, granted, clamped := ring.Clamp(time.Duration(a.req.ShiftMs) * time.Millisecond)
	if clamped {
		r.stats.DVRClamped++
	}
	sub.shiftMs = uint32(granted / time.Millisecond)
	a.ack.ShiftMs = sub.shiftMs
	if granted <= 0 {
		return // quiet channel: nothing to replay, start live
	}
	sub.ring = ring
	sub.cursor = start
	sub.catchup = true
	r.catchupActive.Add(1)
}

// dropCatchup settles the DVR accounting for a subscriber leaving the
// table (or a loop refusal revoking its lease). Caller holds sh.mu.
func (r *Relay) dropCatchup(sub *subscriber) {
	if sub.catchup && !sub.paused {
		r.catchupActive.Add(-1)
	}
	sub.catchup, sub.paused = false, false
	sub.ring, sub.scratch = nil, nil
}

// handlePause applies one Pause packet: pause parks the subscriber's
// cursor (at the live head when it was being served live, or wherever
// its catch-up had reached) and stops all delivery; resume turns the
// parked cursor into a normal catch-up, replaying everything recorded
// since the pause at the bounded burst rate. The packet is verified
// exactly like a Subscribe — pause creates server-side replay state,
// so a forged pause from a spoofed source must not be able to silence
// or redirect a subscriber's stream. Verification proves the packet
// was once genuine, not that it is fresh, so the seq is enforced too:
// a pause must carry a seq above every pause this lease has already
// consumed, closing the capture-and-replay variant of the same attack
// (an on-path recorder re-parking the subscriber with an old signed
// pause for as long as the lease keeps refreshing). The channel must
// name the leased channel (0 is a wildcard) — a pause addressed to
// some other channel leaves this lease alone.
func (r *Relay) handlePause(pkt lan.Packet) {
	data := pkt.Data
	var identity uint32
	var seq uint64
	session := false
	if sa, ok := r.cfg.Auth.(security.SessionAuthenticator); ok {
		// Per-subscriber identity: verified under the claimed identity's
		// credential with the UDP source bound in; the identity and
		// trailer sequence are then checked against the lease below.
		data, identity, seq, ok = sa.VerifySession(pkt.Data, string(pkt.From))
		if !ok {
			r.count(func(s *Stats) { s.AuthDropped++ })
			r.tracer.Drop(obs.PathControl, obs.ReasonAuth, string(pkt.From), 0)
			return
		}
		session = true
	} else if r.cfg.Auth != nil {
		var ok bool
		data, ok = r.cfg.Auth.Verify(pkt.Data)
		if !ok {
			r.count(func(s *Stats) { s.AuthDropped++ })
			r.tracer.Drop(obs.PathControl, obs.ReasonAuth, string(pkt.From), 0)
			return
		}
	}
	p, err := proto.UnmarshalPause(data)
	if err != nil {
		r.count(func(s *Stats) { s.Malformed++ })
		r.tracer.Drop(obs.PathControl, obs.ReasonMalformed, string(pkt.From), 0)
		return
	}
	if r.dvr == nil {
		return // not recording: nothing to replay on resume
	}
	sh := r.shardFor(pkt.From)
	var ringCreated bool
	var dropReason obs.Reason
	var mismatch, replay bool
	sh.mu.Lock()
	sub, ok := sh.subs[pkt.From]
	var ch uint32
	if ok {
		if ch = sub.channel; ch == 0 {
			ch = r.cfg.Channel
		}
	}
	// The session sequence to consume: the identity trailer's in session
	// mode (shared by every control action on this lease), the pause
	// body's otherwise.
	nseq := uint64(p.Seq)
	if session {
		nseq = seq
	}
	switch {
	case !ok:
		// No lease, nothing to pause.
	case session && sub.identity != identity:
		// Signed by some valid credential, but not this lease's: a
		// forged cross-subscriber pause.
		mismatch = true
		dropReason = obs.ReasonAuth
	case p.Channel != 0 && ch != 0 && p.Channel != ch:
		// Addressed to a channel this lease does not carry.
		dropReason = obs.ReasonChannelFilter
	case nseq <= sub.ctlSeq:
		// Replay or reorder of an already-consumed control action.
		replay = session
		dropReason = obs.ReasonStale
	case p.Paused && !sub.paused:
		sub.ctlSeq = nseq
		if sub.catchup {
			// Mid-catch-up: keep the cursor where it is; resume will
			// continue the replay from the same position.
			r.catchupActive.Add(-1)
			sub.paused = true
		} else if ch != 0 {
			ring, created := r.dvr.Ring(ch)
			ringCreated = created
			sub.ring = ring
			sub.cursor = ring.Head()
			sub.catchup, sub.paused = true, true
			// Packets already queued for this subscriber sit below the
			// head (every packet is ringed before it is enqueued), so
			// draining them and resuming from the head loses nothing
			// and duplicates nothing.
		}
		// A wildcard subscriber on a wildcard relay has no single ring
		// to park a cursor in; its pause is ignored.
	case !p.Paused && sub.paused:
		sub.ctlSeq = nseq
		sub.paused = false
		r.catchupActive.Add(1)
		sh.work.Broadcast() // wake the worker: the replay starts now
	default:
		// State-wise a no-op (pause while paused, resume while live),
		// but the seq is still consumed: a duplicate of this packet
		// must not be replayable later, after the state has moved.
		sub.ctlSeq = nseq
	}
	sh.mu.Unlock()
	if ringCreated {
		r.count(func(s *Stats) { s.DVRRings++ })
	}
	if mismatch {
		r.count(func(s *Stats) { s.IdentityMismatch++ })
	}
	if replay {
		r.count(func(s *Stats) { s.ReplayDropped++ })
	}
	if dropReason != obs.ReasonNone {
		r.tracer.Drop(obs.PathControl, dropReason, string(pkt.From), p.Channel)
	}
}

// gatherCatchup serves at most one DVR backlog packet per catching-up
// subscriber per gather pass, appending to the worker's batch exactly
// like the live gather. Delivery is paced by a per-subscriber token
// bucket refilled at Config.DVRBurst packets per second — backlog goes
// out faster than realtime but never unboundedly, so one catching-up
// subscriber cannot starve the live traffic sharing its shard. A
// cursor the ring wrapped past is re-clamped to the oldest entry and
// counted (the subscriber loses the oldest backlog, the fan-out worker
// never blocks); a cursor reaching the live head flips the subscriber
// back to normal fan-out. It returns whether any cursor moved and,
// when every eligible subscriber is token-starved, the shortest refill
// delay, so the worker can sleep exactly that long instead of waiting
// for a wakeup that may never come. Caller holds sh.mu.
func (r *Relay) gatherCatchup(sh *shard, dgs *[]lan.Datagram, owners *[]*subscriber, profs *[]codec.Profile, maxBatch int) (progress bool, wait time.Duration) {
	var served, evicted int64
	now := r.clock.Now()
	rate := float64(r.cfg.DVRBurst)
	burst := rate / 10 // 100 ms of backlog headroom between refills
	if burst < 1 {
		burst = 1
	}
	for _, sub := range sh.order {
		if len(*dgs) >= maxBatch {
			break
		}
		if !sub.catchup || sub.paused || sub.ring == nil || len(sub.queue) > 0 {
			// A non-empty queue is pre-catch-up residue (a pause taken
			// while live): drain it first so the stream stays in order.
			continue
		}
		if sub.dvrAt.IsZero() {
			sub.dvrAt, sub.dvrTokens = now, 1
		}
		sub.dvrTokens += now.Sub(sub.dvrAt).Seconds() * rate
		sub.dvrAt = now
		if sub.dvrTokens > burst {
			sub.dvrTokens = burst
		}
		if sub.dvrTokens < 1 {
			d := time.Duration((1 - sub.dvrTokens) / rate * float64(time.Second))
			if d <= 0 {
				d = time.Millisecond
			}
			if wait == 0 || d < wait {
				wait = d
			}
			continue
		}
		data, age, _, st := sub.ring.Read(sub.cursor, sub.scratch)
		switch st {
		case dvr.ReadEvicted:
			// The ring wrapped (or aged) past the cursor while this
			// subscriber fell behind: lose the oldest backlog, never
			// block recording or the worker.
			sub.cursor = sub.ring.Tail()
			evicted++
			progress = true
			continue
		case dvr.ReadCaughtUp:
			// Converged on live: hand the subscriber back to the normal
			// fan-out. The flip is under sh.mu and every packet is
			// ringed before fanout enqueues it, so nothing is lost or
			// doubled across the seam.
			sub.catchup = false
			sub.ring, sub.scratch = nil, nil
			r.catchupActive.Add(-1)
			continue
		}
		sub.dvrTokens--
		sub.cursor++
		pd, pf := data, codec.ProfileSource
		if sub.profile != codec.ProfileSource {
			ch := sub.channel
			if ch == 0 {
				ch = r.cfg.Channel
			}
			if b := r.transcodeFor(ch, data, sub.profile); b != nil {
				pd, pf = b, sub.profile
			}
		}
		// Buffer ownership: the worker's gather loop can run this
		// function again before the batch is flushed (tokens permitting),
		// and Read recycles sub.scratch in place — so a buffer the batch
		// still references must never be read into again. When the batch
		// took the ring read itself (pf is Source: passthrough, or a
		// transcode that fell back), ownership moves to the batch and
		// scratch is dropped so the next read allocates afresh; when the
		// batch took a transcoded copy, the read buffer is free to reuse.
		if pf == codec.ProfileSource {
			sub.scratch = nil
		} else {
			sub.scratch = data
		}
		r.catchupLag.Observe(age)
		*dgs = append(*dgs, lan.Datagram{To: sub.addr, Data: pd})
		*owners = append(*owners, sub)
		*profs = append(*profs, pf)
		served++
		progress = true
	}
	if served+evicted > 0 {
		r.count(func(s *Stats) {
			s.DVRBacklog += served
			s.DVREvictions += evicted
		})
	}
	return progress, wait
}

// transcodeFor re-encodes one recorded packet for a single delivery
// tier — the catch-up analog of buildProfilePayloads, which encodes
// once per active profile for the whole fan-out. Backlog is positioned
// per subscriber, so it is encoded per subscriber instead, bounded by
// the burst rate. The derived epoch matches the live path's exactly
// (profileEpoch), so the decoder cannot tell where the backlog ends
// and live begins. Backlog recorded under an earlier stream
// configuration (epoch mismatch against the learned stream) falls back
// to the source payload — the decoder handles the epoch change the
// same way it handles any reconfiguration. nil means "serve the source
// payload".
func (r *Relay) transcodeFor(ch uint32, data []byte, p codec.Profile) []byte {
	t, _, err := proto.PeekType(data)
	if err != nil {
		return nil
	}
	r.txMu.Lock()
	defer r.txMu.Unlock()
	st := r.streams[ch]
	if st == nil || st.tx[p] == nil {
		return nil
	}
	switch t {
	case proto.TypeControl:
		ctl, err := proto.UnmarshalControl(data)
		if err != nil || ctl.Epoch != st.ctl.Epoch {
			return nil
		}
		name, quality := p.CodecSpec()
		nc := *ctl
		nc.Epoch = profileEpoch(ctl.Epoch, p)
		nc.Codec = name
		nc.Quality = uint8(quality)
		if b, err := nc.Marshal(); err == nil {
			return b
		}
	case proto.TypeData:
		d, err := proto.UnmarshalData(data)
		if err != nil || d.Epoch != st.ctl.Epoch {
			return nil
		}
		payload, err := st.tx[p].Transcode(d.Payload)
		if err != nil {
			return nil
		}
		nd := *d
		nd.Epoch = profileEpoch(d.Epoch, p)
		nd.Payload = payload
		if b, err := nd.Marshal(); err == nil {
			return b
		}
	}
	return nil
}
