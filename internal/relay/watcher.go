package relay

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/security"
	"repro/internal/vclock"
)

// Watcher follows the catalog group continuously and keeps the current
// relay records. Discover answers the one-shot question ("find me a
// relay now"); a Watcher answers the standing one a shedding relay has
// to keep answering: which siblings exist *right now*, and how loaded
// are they? Its Snapshot feeds Relay.SetSiblings, so redirects always
// name a relay that was announcing within the staleness window —
// steering a subscriber at a dead sibling would just bounce it back
// through its redirect budget.
type Watcher struct {
	clock vclock.Clock
	conn  lan.Conn

	mu       sync.Mutex
	records  map[string]proto.RelayInfo
	heard    map[string]time.Time
	verifier *security.AnnounceVerifier
	rejected int64 // announces refused: signature present but invalid
	legacy   int64 // announces refused: no signature at all
	stopped  bool
}

// SetVerifier makes the watcher demand a valid catalog signature on
// every announce before its records enter the sibling set: a forged
// record would otherwise become a redirect target, handing the
// attacker exactly the steering a rogue relay wants. Unsigned (legacy)
// and forged announces are dropped and counted separately — a nonzero
// legacy count on a signing segment is a peer that needs provisioning,
// a nonzero rejected count is an attack or a key mismatch. Nil (the
// default) accepts everything.
func (w *Watcher) SetVerifier(v *security.AnnounceVerifier) {
	w.mu.Lock()
	w.verifier = v
	w.mu.Unlock()
}

// AnnounceStats reports the verification drop counts: announces with
// an invalid signature, and announces with none at all. Both are zero
// until SetVerifier installs a verifier.
func (w *Watcher) AnnounceStats() (rejected, legacy int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rejected, w.legacy
}

// NewWatcher attaches a catalog listener at local and joins the
// catalog group. Spawn Run via clock.Go, and Stop when done.
func NewWatcher(clock vclock.Clock, network lan.Network, local, catalog lan.Addr) (*Watcher, error) {
	conn, err := network.Attach(local)
	if err != nil {
		return nil, fmt.Errorf("relay: watcher: %w", err)
	}
	if err := conn.Join(catalog); err != nil {
		conn.Close()
		return nil, fmt.Errorf("relay: watcher: joining catalog %q: %w", catalog, err)
	}
	return &Watcher{
		clock:   clock,
		conn:    conn,
		records: make(map[string]proto.RelayInfo),
		heard:   make(map[string]time.Time),
	}, nil
}

// Run ingests announces until Stop.
func (w *Watcher) Run() {
	for {
		pkt, err := w.conn.Recv(recvTimeout)
		if err == lan.ErrTimeout {
			w.mu.Lock()
			stopped := w.stopped
			w.mu.Unlock()
			if stopped {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		w.mu.Lock()
		v := w.verifier
		w.mu.Unlock()
		if v != nil {
			if ok, legacy := v.VerifyAnnounce(pkt.Data); !ok {
				w.mu.Lock()
				if legacy {
					w.legacy++
				} else {
					w.rejected++
				}
				w.mu.Unlock()
				continue
			}
		}
		a, err := proto.UnmarshalAnnounce(pkt.Data)
		if err != nil {
			continue // not an announce (or malformed): keep listening
		}
		now := w.clock.Now()
		w.mu.Lock()
		for _, ri := range a.Relays {
			w.records[ri.Addr] = ri
			w.heard[ri.Addr] = now
		}
		w.mu.Unlock()
	}
}

// Stop makes Run return and closes the listener.
func (w *Watcher) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	w.conn.Close()
}

// Snapshot returns the records re-announced within the staleness
// window (the same discoverStale bound Discover ranks with), sorted by
// address. Records past the window are dropped from the watcher state
// entirely — a relay that resumes announcing simply reappears.
func (w *Watcher) Snapshot() []proto.RelayInfo {
	now := w.clock.Now()
	w.mu.Lock()
	out := make([]proto.RelayInfo, 0, len(w.records))
	for addr, ri := range w.records {
		if now.Sub(w.heard[addr]) > discoverStale {
			delete(w.records, addr)
			delete(w.heard, addr)
			continue
		}
		out = append(out, ri)
	}
	w.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
