package relay_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/audiodev"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/speaker"
	"repro/internal/vad"
)

// capture collects the raw bytes a speaker's DAC played (inserted
// silence excluded).
type capture struct {
	mu   sync.Mutex
	data []byte
}

func (c *capture) attach(sp *speaker.Speaker) {
	sp.OnPlay(func(b audiodev.PlayedBlock) {
		if b.Silence {
			return
		}
		c.mu.Lock()
		c.data = append(c.data, b.Data...)
		c.mu.Unlock()
	})
}

// trimSilence strips leading and trailing zero bytes (SLinear16
// silence and alignment padding).
func trimSilence(b []byte) []byte {
	i := 0
	for i < len(b) && b[i] == 0 {
		i++
	}
	j := len(b)
	for j > i && b[j-1] == 0 {
		j--
	}
	return b[i:j]
}

// TestRelayedSpeakerMatchesDirect is the acceptance test for the relay
// subsystem: a speaker subscribed through the relay over unicast must
// decode byte-identical audio, on the same schedule, as a speaker
// joined directly to the multicast group.
func TestRelayedSpeakerMatchesDirect(t *testing.T) {
	const group = lan.Addr("239.72.1.1:5004")
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "bridged", Group: group, Codec: "raw",
	}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AddRelay(relay.Config{Group: group, Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	meter := core.NewSkewMeter()
	var direct, relayed capture
	spDirect, err := sys.AddSpeaker(speaker.Config{Name: "direct", Group: group})
	if err != nil {
		t.Fatal(err)
	}
	direct.attach(spDirect)
	meter.Attach("direct", spDirect)
	spRelayed, err := sys.AddSpeaker(speaker.Config{
		Name: "relayed", Group: r.Addr(), RelayLease: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	relayed.attach(spRelayed)
	meter.Attach("relayed", spRelayed)

	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	start := sys.Clock.Now()
	sys.Clock.Go("player", func() {
		ch.Play(p, &core.PositionSource{Channels: 1}, 4*time.Second)
		sys.Clock.Sleep(6 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	// The relayed speaker actually used the subscription path.
	rst := spRelayed.Stats()
	if rst.RelaySubscribes == 0 || rst.RelaySubAcks == 0 {
		t.Fatalf("relayed speaker never leased: %+v", rst)
	}
	if rst.ControlPackets == 0 || rst.DataPackets == 0 {
		t.Fatalf("relayed speaker got no stream: %+v", rst)
	}
	relst := r.Stats()
	if relst.Subscribes != 1 {
		t.Fatalf("relay subscribes = %d, want 1", relst.Subscribes)
	}
	if relst.FanoutSent == 0 || relst.UpstreamData == 0 {
		t.Fatalf("relay forwarded nothing: %+v", relst)
	}

	// Byte-identical audio: modulo leading alignment silence and the
	// final partial block, both speakers played the same byte stream.
	d := trimSilence(direct.data)
	rl := trimSilence(relayed.data)
	n := len(d)
	if len(rl) < n {
		n = len(rl)
	}
	// At least 3 of the 4 seconds must overlap.
	if min := 3 * p.BytesPerSecond(); n < min {
		t.Fatalf("overlap too short: direct %d, relayed %d, want >= %d bytes",
			len(d), len(rl), min)
	}
	if !bytes.Equal(d[:n], rl[:n]) {
		for i := 0; i < n; i++ {
			if d[i] != rl[i] {
				t.Fatalf("streams diverge at byte %d of %d", i, n)
			}
		}
	}

	// Same sync behavior: the relayed speaker holds the §3.2 epsilon
	// band against the direct one.
	times := core.SampleTimes(start.Add(2*time.Second), start.Add(4*time.Second), 50)
	skews := meter.Skew("direct", "relayed", times)
	if len(skews) < 10 {
		t.Fatalf("only %d skew samples", len(skews))
	}
	for _, ms := range skews {
		if ms < -15 || ms > 15 {
			t.Fatalf("relayed speaker skew %v ms beyond epsilon band; samples %v", ms, skews)
		}
	}
}

// TestRelayLeaseExpiryDropsSilentSpeaker is the second acceptance
// criterion: a subscriber that stops refreshing is expired and its
// queue freed, while a live subscriber is unaffected.
func TestRelayLeaseExpiryDropsSilentSpeaker(t *testing.T) {
	const group = lan.Addr("239.72.1.1:5004")
	sys := core.NewSim(lan.SegmentConfig{})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "bridged", Group: group, Codec: "raw",
	}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AddRelay(relay.Config{Group: group, Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	spA, err := sys.AddSpeaker(speaker.Config{
		Name: "stays", Group: r.Addr(), RelayLease: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	spB, err := sys.AddSpeaker(speaker.Config{
		Name: "goes-silent", Group: r.Addr(), RelayLease: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = spA

	var midSubs, endSubs int
	var endStats relay.Stats
	p := audio.Voice
	sys.Clock.Go("player", func() {
		sys.Clock.Go("audio", func() {
			ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), 12*time.Second)
		})
		sys.Clock.Sleep(3 * time.Second)
		midSubs = r.NumSubscribers()
		// Silence one subscriber: its refresh loop stops, its lease runs
		// out, the relay reaps it.
		spB.Stop()
		sys.Clock.Sleep(6 * time.Second)
		endSubs = r.NumSubscribers()
		endStats = r.Stats()
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	if midSubs != 2 {
		t.Fatalf("subscribers while both live = %d, want 2", midSubs)
	}
	if endSubs != 1 {
		t.Fatalf("subscribers after silence = %d, want 1", endSubs)
	}
	if endStats.Expired != 1 {
		t.Fatalf("expired = %d, want 1 (stats %+v)", endStats.Expired, endStats)
	}
	subs := r.Subscribers()
	if len(subs) != 1 {
		t.Fatalf("subscriber table: %+v", subs)
	}
	// The survivor kept refreshing, so its lease extends past the stop
	// point, and it kept draining: no unbounded queue growth.
	if subs[0].Sent == 0 {
		t.Fatalf("survivor never received: %+v", subs[0])
	}
	if subs[0].Queued > relay.DefaultQueueLen {
		t.Fatalf("survivor queue unbounded: %+v", subs[0])
	}
}
