package relay_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/audiodev"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/security"
	"repro/internal/speaker"
	"repro/internal/vad"
	"repro/internal/vclock"
)

// capture collects the raw bytes a speaker's DAC played (inserted
// silence excluded).
type capture struct {
	mu   sync.Mutex
	data []byte
}

func (c *capture) attach(sp *speaker.Speaker) {
	sp.OnPlay(func(b audiodev.PlayedBlock) {
		if b.Silence {
			return
		}
		c.mu.Lock()
		c.data = append(c.data, b.Data...)
		c.mu.Unlock()
	})
}

// trimSilence strips leading and trailing zero bytes (SLinear16
// silence and alignment padding).
func trimSilence(b []byte) []byte {
	i := 0
	for i < len(b) && b[i] == 0 {
		i++
	}
	j := len(b)
	for j > i && b[j-1] == 0 {
		j--
	}
	return b[i:j]
}

// TestRelayedSpeakerMatchesDirect is the acceptance test for the relay
// subsystem: a speaker subscribed through the relay over unicast must
// decode byte-identical audio, on the same schedule, as a speaker
// joined directly to the multicast group.
func TestRelayedSpeakerMatchesDirect(t *testing.T) {
	const group = lan.Addr("239.72.1.1:5004")
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "bridged", Group: group, Codec: "raw",
	}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AddRelay(relay.Config{Group: group, Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	meter := core.NewSkewMeter()
	var direct, relayed capture
	spDirect, err := sys.AddSpeaker(speaker.Config{Name: "direct", Group: group})
	if err != nil {
		t.Fatal(err)
	}
	direct.attach(spDirect)
	meter.Attach("direct", spDirect)
	spRelayed, err := sys.AddSpeaker(speaker.Config{
		Name: "relayed", Group: r.Addr(), RelayLease: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	relayed.attach(spRelayed)
	meter.Attach("relayed", spRelayed)

	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	start := sys.Clock.Now()
	sys.Clock.Go("player", func() {
		ch.Play(p, &core.PositionSource{Channels: 1}, 4*time.Second)
		sys.Clock.Sleep(6 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	// The relayed speaker actually used the subscription path.
	rst := spRelayed.Stats()
	if rst.RelaySubscribes == 0 || rst.RelaySubAcks == 0 {
		t.Fatalf("relayed speaker never leased: %+v", rst)
	}
	if rst.ControlPackets == 0 || rst.DataPackets == 0 {
		t.Fatalf("relayed speaker got no stream: %+v", rst)
	}
	relst := r.Stats()
	if relst.Subscribes != 1 {
		t.Fatalf("relay subscribes = %d, want 1", relst.Subscribes)
	}
	if relst.FanoutSent == 0 || relst.UpstreamData == 0 {
		t.Fatalf("relay forwarded nothing: %+v", relst)
	}

	// Byte-identical audio: modulo leading alignment silence and the
	// final partial block, both speakers played the same byte stream.
	d := trimSilence(direct.data)
	rl := trimSilence(relayed.data)
	n := len(d)
	if len(rl) < n {
		n = len(rl)
	}
	// At least 3 of the 4 seconds must overlap.
	if min := 3 * p.BytesPerSecond(); n < min {
		t.Fatalf("overlap too short: direct %d, relayed %d, want >= %d bytes",
			len(d), len(rl), min)
	}
	if !bytes.Equal(d[:n], rl[:n]) {
		for i := 0; i < n; i++ {
			if d[i] != rl[i] {
				t.Fatalf("streams diverge at byte %d of %d", i, n)
			}
		}
	}

	// Same sync behavior: the relayed speaker holds the §3.2 epsilon
	// band against the direct one.
	times := core.SampleTimes(start.Add(2*time.Second), start.Add(4*time.Second), 50)
	skews := meter.Skew("direct", "relayed", times)
	if len(skews) < 10 {
		t.Fatalf("only %d skew samples", len(skews))
	}
	for _, ms := range skews {
		if ms < -15 || ms > 15 {
			t.Fatalf("relayed speaker skew %v ms beyond epsilon band; samples %v", ms, skews)
		}
	}
}

// TestRelayLeaseExpiryDropsSilentSpeaker is the second acceptance
// criterion: a subscriber that stops refreshing is expired and its
// queue freed, while a live subscriber is unaffected.
func TestRelayLeaseExpiryDropsSilentSpeaker(t *testing.T) {
	const group = lan.Addr("239.72.1.1:5004")
	sys := core.NewSim(lan.SegmentConfig{})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "bridged", Group: group, Codec: "raw",
	}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AddRelay(relay.Config{Group: group, Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	spA, err := sys.AddSpeaker(speaker.Config{
		Name: "stays", Group: r.Addr(), RelayLease: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	spB, err := sys.AddSpeaker(speaker.Config{
		Name: "goes-silent", Group: r.Addr(), RelayLease: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = spA

	var midSubs, endSubs int
	var endStats relay.Stats
	p := audio.Voice
	sys.Clock.Go("player", func() {
		sys.Clock.Go("audio", func() {
			ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), 12*time.Second)
		})
		sys.Clock.Sleep(3 * time.Second)
		midSubs = r.NumSubscribers()
		// Silence one subscriber: its refresh loop stops, its lease runs
		// out, the relay reaps it.
		spB.Stop()
		sys.Clock.Sleep(6 * time.Second)
		endSubs = r.NumSubscribers()
		endStats = r.Stats()
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	if midSubs != 2 {
		t.Fatalf("subscribers while both live = %d, want 2", midSubs)
	}
	if endSubs != 1 {
		t.Fatalf("subscribers after silence = %d, want 1", endSubs)
	}
	if endStats.Expired != 1 {
		t.Fatalf("expired = %d, want 1 (stats %+v)", endStats.Expired, endStats)
	}
	subs := r.Subscribers()
	if len(subs) != 1 {
		t.Fatalf("subscriber table: %+v", subs)
	}
	// The survivor kept refreshing, so its lease extends past the stop
	// point, and it kept draining: no unbounded queue growth.
	if subs[0].Sent == 0 {
		t.Fatalf("survivor never received: %+v", subs[0])
	}
	if subs[0].Queued > relay.DefaultQueueLen {
		t.Fatalf("survivor queue unbounded: %+v", subs[0])
	}
}

// TestMultiChannelRelayFiltersPerSubscriber is the e2e cross-channel
// leak regression: a channel-0 relay carries a group with two channels
// on it, and each subscriber must receive exactly the channel it
// leased — a channel-1 subscriber sees zero channel-2 packets and vice
// versa, while a wildcard subscriber sees both.
func TestMultiChannelRelayFiltersPerSubscriber(t *testing.T) {
	const group = lan.Addr("239.72.1.1:5004")
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch1, err := sys.AddChannel(rebroadcast.Config{ID: 1, Name: "one", Group: group, Codec: "raw"}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := sys.AddChannel(rebroadcast.Config{ID: 2, Name: "two", Group: group, Codec: "raw"}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AddRelay(relay.Config{Group: group}) // channel 0: carries both
	if err != nil {
		t.Fatal(err)
	}

	// Raw subscribers counting data packets per channel.
	channels := []uint32{1, 2, 0}
	counts := make([]map[uint32]int64, len(channels))
	conns := make([]lan.Conn, len(channels))
	for i, want := range channels {
		counts[i] = make(map[uint32]int64)
		conn, err := sys.Net.Attach(lan.Addr(fmt.Sprintf("10.0.77.%d:5004", i+1)))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
		i, want := i, want
		sys.Clock.Go("sub", func() {
			sub, _ := (&proto.Subscribe{Channel: want, Seq: 1, LeaseMs: 60000}).Marshal()
			if err := conn.Send(r.Addr(), sub); err != nil {
				t.Error(err)
				return
			}
			for {
				pkt, err := conn.Recv(0)
				if err != nil {
					return
				}
				if d, err := proto.UnmarshalData(pkt.Data); err == nil {
					counts[i][d.Channel]++
				}
			}
		})
	}

	p := audio.Voice
	sys.Clock.Go("player", func() {
		for r.NumSubscribers() < len(channels) {
			sys.Clock.Sleep(5 * time.Millisecond)
		}
		sys.Clock.Go("audio-1", func() {
			ch1.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), 3*time.Second)
		})
		sys.Clock.Go("audio-2", func() {
			ch2.Play(p, audio.NewTone(p.SampleRate, p.Channels, 880, 0.5), 3*time.Second)
		})
		sys.Clock.Sleep(5 * time.Second)
		sys.Shutdown()
		for _, c := range conns {
			c.Close()
		}
	})
	sys.Sim.WaitIdle()

	if counts[0][1] == 0 || counts[1][2] == 0 || counts[2][1] == 0 || counts[2][2] == 0 {
		t.Fatalf("subscribers starved: %v", counts)
	}
	if n := counts[0][2]; n != 0 {
		t.Fatalf("channel-1 subscriber received %d channel-2 packets (counts %v)", n, counts)
	}
	if n := counts[1][1]; n != 0 {
		t.Fatalf("channel-2 subscriber received %d channel-1 packets (counts %v)", n, counts)
	}
}

// TestThreeHopRelayChainDeliversAudio drives the chaining tentpole end
// to end: a packet published on the multicast group must arrive at a
// speaker three relay hops away — r1 joins the group, r2 subscribes to
// r1, r3 to r2, and the speaker leases from r3 — playing byte-identical
// audio to a directly joined speaker. The first hop is found through
// the §4.3 catalog, not static configuration.
func TestThreeHopRelayChainDeliversAudio(t *testing.T) {
	const group = lan.Addr("239.72.1.1:5004")
	sys := core.NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	if err := sys.StartCatalog(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ch, err := sys.AddChannel(rebroadcast.Config{ID: 1, Name: "chained", Group: group, Codec: "raw"}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sys.AddRelay(relay.Config{Group: group, Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.AddRelay(relay.Config{Upstream: r1.Addr(), Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := sys.AddRelay(relay.Config{Upstream: r2.Addr(), Channel: 1})
	if err != nil {
		t.Fatal(err)
	}

	var direct, relayed capture
	spDirect, err := sys.AddSpeaker(speaker.Config{Name: "direct", Group: group})
	if err != nil {
		t.Fatal(err)
	}
	direct.attach(spDirect)
	spRelayed, err := sys.AddSpeaker(speaker.Config{Name: "hop3", Group: r3.Addr(), Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	relayed.attach(spRelayed)

	var discovered proto.RelayInfo
	var discoverErr error
	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	sys.Clock.Go("player", func() {
		discovered, discoverErr = relay.Discover(sys.Clock, sys.Net, "10.0.88.1:5003",
			core.CatalogGroup, 1, 5*time.Second, nil, nil)
		ch.Play(p, &core.PositionSource{Channels: 1}, 4*time.Second)
		sys.Clock.Sleep(6 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	if discoverErr != nil {
		t.Fatalf("catalog discovery failed: %v", discoverErr)
	}
	known := map[string]bool{string(r1.Addr()): true, string(r2.Addr()): true, string(r3.Addr()): true}
	if !known[discovered.Addr] || discovered.Channel != 1 {
		t.Fatalf("discovered %+v, want one of the advertised relays", discovered)
	}

	// Every hop forwarded data, and the chained hops held exactly one
	// upstream lease each.
	for i, r := range []*relay.Relay{r1, r2, r3} {
		st := r.Stats()
		if st.UpstreamData == 0 || st.FanoutSent == 0 {
			t.Fatalf("hop %d forwarded nothing: %+v", i+1, st)
		}
		if i > 0 && (st.UpstreamSubscribes == 0 || st.UpstreamAcks == 0) {
			t.Fatalf("hop %d never leased upstream: %+v", i+1, st)
		}
		if st.Loops != 0 {
			t.Fatalf("hop %d refused a straight chain as a loop: %+v", i+1, st)
		}
	}
	rst := spRelayed.Stats()
	if rst.ControlPackets == 0 || rst.DataPackets == 0 {
		t.Fatalf("3-hop speaker got no stream: %+v", rst)
	}

	// Byte-identical audio across three hops.
	d := trimSilence(direct.data)
	rl := trimSilence(relayed.data)
	n := len(d)
	if len(rl) < n {
		n = len(rl)
	}
	if min := 3 * p.BytesPerSecond(); n < min {
		t.Fatalf("overlap too short: direct %d, relayed %d, want >= %d bytes", len(d), len(rl), min)
	}
	if !bytes.Equal(d[:n], rl[:n]) {
		for i := 0; i < n; i++ {
			if d[i] != rl[i] {
				t.Fatalf("streams diverge at byte %d of %d", i, n)
			}
		}
	}
}

// TestStreamVerifyingSpeakerLearnsLeaseFromUnsignedRelay is the
// regression test for the broken Verify + relay-fallback combination:
// SubAcks used to run through the speaker's stream Verify hook, and
// since a relay signs nothing with the producer's key, an authenticated
// speaker dropped every SubAck as DroppedAuth and never learned its
// granted lease — it kept refreshing against its own requested value
// while playing a stream it could not have leased reliably. SubAck is
// relay control plane: it must reach the lease layer regardless of the
// stream authenticator.
func TestStreamVerifyingSpeakerLearnsLeaseFromUnsignedRelay(t *testing.T) {
	const group = lan.Addr("239.72.1.1:5004")
	streamAuth := security.NewHMAC([]byte("producer stream key"))
	sys := core.NewSim(lan.SegmentConfig{})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "signed-stream", Group: group, Codec: "raw",
		Sign: streamAuth.Sign,
	}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The relay carries the signed stream untouched and signs nothing
	// itself (no control-plane auth configured).
	r, err := sys.AddRelay(relay.Config{Group: group, Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	const spAddr = lan.Addr("10.0.50.1:5004")
	sp, err := sys.AddSpeaker(speaker.Config{
		Name: "authed", Local: spAddr, Group: r.Addr(), Channel: 1,
		RelayLease: 30 * time.Second, Verify: streamAuth.Verify,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The flip side of routing SubAcks around the stream Verify hook:
	// a forged plaintext SubAck from an off-path host must still never
	// reach the lease state — only the leased relay's address may
	// answer the control plane.
	attacker, err := sys.Net.Attach("10.0.50.66:5006")
	if err != nil {
		t.Fatal(err)
	}
	p := audio.Voice
	sys.Clock.Go("player", func() {
		forged, _ := (&proto.SubAck{Channel: 1, Seq: 1, Status: proto.SubOK,
			LeaseMs: 3_600_000}).Marshal()
		attacker.Send(spAddr, forged)
		ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), 3*time.Second)
		sys.Clock.Sleep(5 * time.Second)
		sys.Shutdown()
		attacker.Close()
	})
	sys.Sim.WaitIdle()

	st := sp.Stats()
	if st.RelaySubAcks == 0 {
		t.Fatalf("speaker accepted no SubAck — the lease never confirmed: %+v", st)
	}
	if st.DroppedAuth != 0 {
		t.Fatalf("SubAcks still counted against the stream authenticator: %+v", st)
	}
	if st.RelayStaleAcks == 0 {
		t.Fatalf("forged off-path SubAck was not dropped as stale: %+v", st)
	}
	if st.DataPackets == 0 || st.BytesPlayed == 0 {
		t.Fatalf("signed stream did not play through the relay: %+v", st)
	}
}

// TestRelayLoopRefusedWithSubLoop builds a deliberate two-relay cycle
// (A upstream B, B upstream A) and proves the path propagation refuses
// it: within a few refresh cycles each relay sees its own path id come
// back and answers SubLoop, tearing the offending lease down.
func TestRelayLoopRefusedWithSubLoop(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	connA, err := seg.Attach("10.0.9.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	connB, err := seg.Attach("10.0.9.2:5006")
	if err != nil {
		t.Fatal(err)
	}
	rA, err := relay.New(sim, connA, relay.Config{Upstream: "10.0.9.2:5006", UpstreamLease: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rB, err := relay.New(sim, connB, relay.Config{Upstream: "10.0.9.1:5006", UpstreamLease: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sim.Go("relay-a", rA.Run)
	sim.Go("relay-b", rB.Run)
	var stA, stB relay.Stats
	sim.Go("test", func() {
		sim.Sleep(10 * time.Second) // several refresh cycles
		stA, stB = rA.Stats(), rB.Stats()
		rA.Stop()
		rB.Stop()
	})
	sim.WaitIdle()

	if stA.Loops == 0 && stB.Loops == 0 {
		t.Fatalf("no SubLoop refusal issued: A %+v, B %+v", stA, stB)
	}
	if stA.UpstreamRefused == 0 && stB.UpstreamRefused == 0 {
		t.Fatalf("no upstream lease refused: A %+v, B %+v", stA, stB)
	}
}
