package relay

import (
	"strconv"

	"repro/internal/obs"
)

// RegisterObs publishes the relay's full ops surface on reg: every
// Stats counter (mechanically, via the mib tags), the subscriber and
// per-shard pressure gauges, the four hot-path histograms, the packet
// tracer, an identity info metric, and the per-subscriber table as
// JSON-snapshot detail. Call once per registry; the relay keeps no
// reference to reg.
func (r *Relay) RegisterObs(reg *obs.Registry) {
	reg.StructCounters("es_relay", func() any { return r.Stats() })
	reg.Gauge("es_relay_subscribers",
		"currently leased subscribers", func() int64 {
			return int64(r.NumSubscribers())
		})

	// Per-shard pressure: the lumped FanoutSent/FanoutDropped totals
	// hide a hot shard; these do not.
	shardLV := func(pick func(ShardStats) int64) func() []obs.LV {
		return func() []obs.LV {
			ss := r.ShardStats()
			out := make([]obs.LV, len(ss))
			for i, s := range ss {
				out[i] = obs.LV{Label: strconv.Itoa(s.Shard), Value: pick(s)}
			}
			return out
		}
	}
	reg.LabeledCounter("es_relay_shard_sent_total",
		"unicast packets delivered, by shard", "shard",
		shardLV(func(s ShardStats) int64 { return s.Sent }))
	reg.LabeledCounter("es_relay_shard_dropped_total",
		"packets dropped by queue backpressure, by shard", "shard",
		shardLV(func(s ShardStats) int64 { return s.Dropped }))
	reg.LabeledGauge("es_relay_shard_subscribers",
		"leased subscribers, by shard", "shard",
		shardLV(func(s ShardStats) int64 { return int64(s.Subscribers) }))
	reg.LabeledGauge("es_relay_shard_queued",
		"packets waiting in subscriber queues, by shard", "shard",
		shardLV(func(s ShardStats) int64 { return int64(s.Queued) }))
	reg.LabeledGauge("es_relay_shard_max_queued",
		"high-water mark of queued packets, by shard", "shard",
		shardLV(func(s ShardStats) int64 { return int64(s.MaxQueued) }))

	reg.Histogram(r.flushLatency)
	reg.Histogram(r.queueResidency)
	reg.Histogram(r.transcodeLatency)
	reg.Histogram(r.upRTT)
	reg.Histogram(r.leaseMargin)
	reg.Histogram(r.catchupLag)
	reg.Tracer("es_relay", r.tracer)

	reg.Info("es_relay_info", "relay identity", func() []obs.KV {
		return []obs.KV{
			{Key: "addr", Value: string(r.Addr())},
			{Key: "source", Value: string(r.Source())},
			{Key: "upstream", Value: string(r.Upstream())},
			{Key: "channel", Value: strconv.FormatUint(uint64(r.cfg.Channel), 10)},
			{Key: "shards", Value: strconv.Itoa(len(r.shards))},
		}
	})

	// High-cardinality detail stays off /metrics and on /snapshot.
	reg.JSONVar("es_relay_subscriber_table", func() any { return r.Subscribers() })
	reg.JSONVar("es_relay_shard_table", func() any { return r.ShardStats() })
}
