package relay

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/proto"
)

// TestOpsScrapeUnderFanout serves a live ops endpoint for a relay
// fanning out to 1,000 subscribers and scrapes it concurrently from
// real OS goroutines while the (simulated) data plane runs — the
// race-detector workout for every lock the ops surface shares with the
// hot path. The final scrape must cover every relay.Stats counter and
// show the hot-path histograms actually observing.
func TestOpsScrapeUnderFanout(t *testing.T) {
	const nsubs = 1000
	sim, _, r := newTestRelay(t, Config{Shards: 4, QueueLen: 8, TraceSample: 1})
	reg := obs.NewRegistry()
	r.RegisterObs(reg)
	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < nsubs; i++ {
		addr := lan.Addr(fmt.Sprintf("10.0.%d.%d:5004", 1+i/200, i%200))
		if !r.subscribe(addr, &proto.Subscribe{}, time.Hour) {
			t.Fatalf("subscribe %d failed", i)
		}
	}

	// Scrapers: plain goroutines hammering every route while the sim
	// drives the fan-out. They only read shared state, so they need no
	// simulated time of their own.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, route := range []string{"/metrics", "/snapshot", "/trace", "/healthz"} {
					resp, err := http.Get("http://" + srv.Addr() + route)
					if err != nil {
						t.Errorf("%s: %v", route, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("%s: status %d", route, resp.StatusCode)
						return
					}
				}
			}
		}()
	}

	sim.Go("relay", r.Run)
	sim.Go("driver", func() {
		for i := 0; i < 50; i++ {
			r.fanout(0, []byte{byte(i)})
			sim.Sleep(5 * time.Millisecond) // let the workers flush
		}
		r.Stop()
	})
	sim.WaitIdle()
	close(done)
	wg.Wait()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)

	// Every Stats counter is on the wire, named by its mib tag.
	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Int64 {
			continue
		}
		if name := obs.CounterName("es_relay", f); !strings.Contains(out, name) {
			t.Errorf("scrape missing %s", name)
		}
	}
	// The hot-path histograms observed real work.
	fl := r.Instruments().FlushLatency
	if fl.Count() == 0 {
		t.Error("flush latency histogram never observed")
	}
	if r.Instruments().QueueResidency.Count() == 0 {
		t.Error("queue residency histogram never observed")
	}
	if !strings.Contains(out, "es_relay_flush_latency_seconds_bucket") {
		t.Error("scrape missing flush latency histogram")
	}
	if !strings.Contains(out, `es_relay_shard_sent_total{shard="0"}`) {
		t.Error("scrape missing per-shard counters")
	}
}
