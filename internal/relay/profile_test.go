package relay

import (
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/relay/lease"
)

// controlPkt marshals a Control packet for a raw 16-bit stream — the
// shape every ladder tier can transcode.
func controlPkt(t *testing.T, ch, epoch uint32) []byte {
	t.Helper()
	data, err := (&proto.Control{
		Channel: ch, Epoch: epoch, Seq: 1,
		Params: audio.CDQuality, Codec: "raw",
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// dataPkt marshals a Data packet with n bytes of silent 16-bit PCM.
func dataPkt(t *testing.T, ch, epoch uint32, seq uint64, n int) []byte {
	t.Helper()
	payload := make([]byte, n)
	data, err := (&proto.Data{
		Channel: ch, Epoch: epoch, Seq: seq, PlayAt: int64(seq) * 1000, Payload: payload,
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestChainAwareLeaseSizing(t *testing.T) {
	_, _, r := newTestRelay(t, Config{MaxLease: time.Minute})
	now := r.clock.Now()

	// A plain speaker (hops 0) gets exactly what it asked for; a
	// chained subscriber's grant scales with the relays behind it.
	mk := func(from lan.Addr, hops uint8, leaseMs uint32) lan.Packet {
		data, err := (&proto.Subscribe{Seq: 1, LeaseMs: leaseMs, Hops: hops, PathID: 7}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return lan.Packet{From: from, To: "10.0.0.1:5006", Data: data}
	}
	r.handleSubscribe(mk("10.0.0.2:5004", 0, 5000))
	r.handleSubscribe(mk("10.0.0.3:5004", 3, 5000))
	r.handleSubscribe(mk("10.0.0.4:5004", 3, 30_000)) // 4x30s clamps at MaxLease

	subs := r.Subscribers()
	if len(subs) != 3 {
		t.Fatalf("subscribers = %d, want 3", len(subs))
	}
	if d := subs[0].Expires.Sub(now); d != 5*time.Second {
		t.Errorf("hops=0 lease = %v, want 5s", d)
	}
	if d := subs[1].Expires.Sub(now); d != 20*time.Second {
		t.Errorf("hops=3 lease = %v, want 4x scaled 20s", d)
	}
	if d := subs[2].Expires.Sub(now); d != time.Minute {
		t.Errorf("hops=3 big lease = %v, want MaxLease clamp %v", d, time.Minute)
	}
}

// TestChainedRefreshCadenceAtHopsThree is the satellite regression for
// chain-aware lease sizing end to end: a hops=3 subscriber (a relay
// fronting a three-deep subtree) asks for 5s, is granted 4x, and its
// refresh loop — paced off the *granted* lease — must both slow down
// to the scaled cadence and still land every refresh strictly inside
// the lease (the relay never expires it).
func TestChainedRefreshCadenceAtHopsThree(t *testing.T) {
	sim, seg, r := newTestRelay(t, Config{MaxLease: time.Minute})
	cc, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	sub := lease.New(sim, cc, "chained-sub")
	sub.SetPath(func() (uint8, uint64) { return 3, 42 })

	var granted time.Duration
	var refreshes, expired int64
	sim.Go("relay", r.Run)
	sim.Go("acks", func() {
		for {
			pkt, err := cc.Recv(0)
			if err != nil {
				return
			}
			sub.HandleAckData(pkt.From, pkt.Data)
		}
	})
	sim.Go("test", func() {
		sub.Subscribe(r.Addr(), 0, 5*time.Second)
		sim.Sleep(30 * time.Second)
		granted = sub.Granted()
		st := r.Stats()
		refreshes, expired = st.Refreshes, st.Expired
		sub.Close()
		cc.Close()
		r.Stop()
	})
	sim.WaitIdle()

	if granted != 20*time.Second {
		t.Fatalf("granted = %v, want 4x-scaled 20s", granted)
	}
	if expired != 0 {
		t.Fatalf("chained subscriber expired %d times; refreshes must land inside the scaled lease", expired)
	}
	// Pacing is granted/3 ≈ 6.7s: 30s of runtime fits 3-5 refreshes.
	// Many more would mean the loop still paces off the request.
	if refreshes < 2 || refreshes > 5 {
		t.Fatalf("refreshes in 30s = %d, want 3-5 (granted/3 cadence)", refreshes)
	}
}

func TestFanoutEncodesOncePerProfile(t *testing.T) {
	_, _, r := newTestRelay(t, Config{QueueLen: 64})
	// Three source subscribers, two ulaw, one ovl-low: three distinct
	// tiers, six subscribers.
	for i, p := range []codec.Profile{
		codec.ProfileSource, codec.ProfileSource, codec.ProfileSource,
		codec.ProfileULaw, codec.ProfileULaw, codec.ProfileOVLLow,
	} {
		addr := lan.Addr("10.0.0." + string(rune('2'+i)) + ":5004")
		if !r.subscribe(addr, &proto.Subscribe{Profile: uint8(p)}, time.Minute) {
			t.Fatalf("subscribe %d failed", i)
		}
	}

	const payload = 800
	r.fanout(0, controlPkt(t, 0, 1))
	r.fanout(0, dataPkt(t, 0, 1, 1, payload))
	r.fanout(0, dataPkt(t, 0, 1, 2, payload))

	// Two active non-source profiles, two data packets: four encodes —
	// not one per subscriber (which would be six and twelve).
	if st := r.Stats(); st.TranscodeEncodes != 4 {
		t.Fatalf("TranscodeEncodes = %d, want 4 (2 active profiles x 2 packets); stats %+v",
			st.TranscodeEncodes, st)
	}
	if st := r.Stats(); st.TranscodeErrors != 0 {
		t.Fatalf("TranscodeErrors = %d", st.TranscodeErrors)
	}

	inspect := func(addr lan.Addr) []queued {
		sh := r.shardFor(addr)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return append([]queued(nil), sh.subs[addr].queue...)
	}
	// The source subscriber's queue carries the original bytes.
	src := inspect("10.0.0.2:5004")
	if len(src) != 3 || src[0].prof != codec.ProfileSource {
		t.Fatalf("source queue = %d entries, prof %v", len(src), src[0].prof)
	}
	srcData, err := proto.UnmarshalData(src[1].data)
	if err != nil || len(srcData.Payload) != payload || srcData.Epoch != 1 {
		t.Fatalf("source data = %+v, err %v", srcData, err)
	}

	// The ulaw subscriber sees a rewritten Control (tier codec, derived
	// epoch) and half-size payloads carrying the same seq and deadline.
	ul := inspect("10.0.0.5:5004")
	if len(ul) != 3 || ul[0].prof != codec.ProfileULaw {
		t.Fatalf("ulaw queue = %d entries, prof %v", len(ul), ul[0].prof)
	}
	ctl, err := proto.UnmarshalControl(ul[0].data)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Codec != "ulaw" || ctl.Epoch == 1 {
		t.Fatalf("rewritten control = codec %q epoch %d, want ulaw with a derived epoch", ctl.Codec, ctl.Epoch)
	}
	d, err := proto.UnmarshalData(ul[1].data)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Payload) != payload/2 {
		t.Fatalf("ulaw payload = %d bytes, want 2:1 %d", len(d.Payload), payload/2)
	}
	if d.Epoch != ctl.Epoch || d.Seq != 1 || d.PlayAt != srcData.PlayAt-1000+1000 {
		t.Fatalf("ulaw data = %+v, want control epoch %d seq/deadline preserved", d, ctl.Epoch)
	}

	// Both ulaw subscribers share the identical encoded bytes — the
	// same-payload delivery group GSO coalesces.
	ul2 := inspect("10.0.0.6:5004")
	if string(ul2[1].data) != string(ul[1].data) {
		t.Fatal("ulaw subscribers got different encodings of one packet")
	}
}

func TestLadderDowngradeAndRecovery(t *testing.T) {
	sim, _, r := newTestRelay(t, Config{
		QueueLen:        4,
		Ladder:          true,
		SweepInterval:   100 * time.Millisecond,
		LadderDwell:     300 * time.Millisecond,
		LadderDownDrops: 4,
	})
	if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Profile: uint8(codec.ProfileULaw)}, time.Hour) {
		t.Fatal("subscribe failed")
	}

	profile := func() codec.Profile { return r.Subscribers()[0].Profile }
	burst := func(epoch uint32) {
		// No shard worker is draining: 20 packets against QueueLen 4
		// are guaranteed drops, the ladder's downgrade signal.
		for i := 0; i < 20; i++ {
			r.fanout(0, dataPkt(t, 0, epoch, uint64(i), 100))
		}
	}

	var afterFirst, afterSecond, recovered codec.Profile
	var st Stats
	var pressAtBottom uint8
	sim.Go("sweep", r.sweep)
	sim.Go("test", func() {
		r.fanout(0, controlPkt(t, 0, 1))
		burst(1)
		sim.Sleep(150 * time.Millisecond) // one sweep
		afterFirst = profile()
		burst(1)
		sim.Sleep(150 * time.Millisecond) // one more sweep
		afterSecond = profile()
		pressAtBottom = r.Pressure()
		// Quiet period: no drops for well past the dwell. Two upgrade
		// steps bring the subscriber back to its requested tier.
		sim.Sleep(900 * time.Millisecond)
		recovered = profile()
		st = r.Stats()
		r.Stop()
	})
	sim.WaitIdle()

	// One tier per sweep, not a cliff: ulaw -> ovl-high -> ovl-low.
	if afterFirst != codec.ProfileOVLHigh {
		t.Fatalf("after first congested sweep profile = %v, want one-tier step to ovl-high", afterFirst)
	}
	if afterSecond != codec.ProfileOVLLow {
		t.Fatalf("after second congested sweep profile = %v, want ovl-low", afterSecond)
	}
	if pressAtBottom == 0 {
		t.Fatal("pressure = 0 with a ladder-degraded subscriber")
	}
	if recovered != codec.ProfileULaw {
		t.Fatalf("after quiet dwell profile = %v, want requested ulaw", recovered)
	}
	if st.LadderDown != 2 || st.LadderUp != 2 {
		t.Fatalf("ladder stats = down %d / up %d, want 2/2 (stats %+v)", st.LadderDown, st.LadderUp, st)
	}
}

func TestSubAckCarriesGrantedProfile(t *testing.T) {
	sim, seg, r := newTestRelay(t, Config{})
	sub, err := seg.Attach("10.0.0.2:5004")
	if err != nil {
		t.Fatal(err)
	}
	var acks []*proto.SubAck
	sim.Go("relay", r.Run)
	sim.Go("subscriber", func() {
		defer sub.Close()
		for i, profile := range []uint8{uint8(codec.ProfileOVLHigh), 200} {
			data, _ := (&proto.Subscribe{Seq: uint32(i + 1), LeaseMs: 5000, Profile: profile}).Marshal()
			if err := sub.Send(r.Addr(), data); err != nil {
				t.Error(err)
				return
			}
			pkt, err := sub.Recv(2 * time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			ack, err := proto.UnmarshalSubAck(pkt.Data)
			if err != nil {
				t.Error(err)
				return
			}
			acks = append(acks, ack)
		}
		r.Stop()
	})
	sim.WaitIdle()
	if len(acks) != 2 {
		t.Fatalf("acks = %d, want 2", len(acks))
	}
	if acks[0].Status != proto.SubOK || acks[0].Profile != uint8(codec.ProfileOVLHigh) {
		t.Fatalf("ack 1 = %+v, want granted ovl-high", acks[0])
	}
	// An unknown profile byte (a newer ladder than this relay) maps to
	// source passthrough rather than a refusal.
	if acks[1].Status != proto.SubOK || acks[1].Profile != uint8(codec.ProfileSource) {
		t.Fatalf("ack 2 = %+v, want granted source for unknown request", acks[1])
	}
}

// TestTierShedRedirectsLadderFloorSubscriber: with Config.ShedTier, a
// subscriber the ladder has already pushed to the bottom rung is
// answered at its next refresh with a redirect to a less-loaded
// sibling — and with no eligible sibling it keeps being served; the
// relay never sheds into the void.
func TestTierShedRedirectsLadderFloorSubscriber(t *testing.T) {
	sim, seg, r := newTestRelay(t, Config{
		QueueLen:        4,
		Ladder:          true,
		ShedTier:        true,
		SweepInterval:   100 * time.Millisecond,
		LadderDwell:     time.Hour,
		LadderDownDrops: 4,
	})
	// Two subscribers one rung above the floor: a single congested
	// sweep lands both on ovl-low and marks them for steering.
	if !r.subscribe("10.0.0.2:5004", &proto.Subscribe{Profile: uint8(codec.ProfileOVLHigh)}, time.Hour) ||
		!r.subscribe("10.0.0.3:5004", &proto.Subscribe{Profile: uint8(codec.ProfileOVLHigh)}, time.Hour) {
		t.Fatal("subscribe failed")
	}
	sub3, err := seg.Attach("10.0.0.3:5004")
	if err != nil {
		t.Fatal(err)
	}

	var floor codec.Profile
	var noSibStats, shedStats Stats
	var nsubs int
	var ack *proto.SubAck
	sim.Go("sweep", r.sweep)
	sim.Go("test", func() {
		defer sub3.Close()
		r.fanout(0, controlPkt(t, 0, 1))
		// No shard worker is draining: 20 packets against QueueLen 4
		// are guaranteed drops, the ladder's downgrade signal.
		for i := 0; i < 20; i++ {
			r.fanout(0, dataPkt(t, 0, 1, uint64(i), 100))
		}
		sim.Sleep(150 * time.Millisecond) // one sweep
		floor = r.Subscribers()[0].Profile
		// No sibling list installed: the floor-rung refresh is served
		// normally, not redirected.
		r.handleSubscribe(subscribePkt(t, "10.0.0.2:5004", 0, 2, 10000))
		noSibStats = r.Stats()
		r.SetSiblings(func() []proto.RelayInfo {
			return []proto.RelayInfo{
				{Addr: "10.0.0.8:5006", Group: string(testGroup), HasLoad: true, Subs: 40},
				{Addr: "10.0.0.9:5006", Group: string(testGroup), HasLoad: true, Subs: 2},
				{Addr: string(r.Addr()), Group: string(testGroup)}, // self: never a steer target
			}
		})
		// The second floor-rung subscriber refreshes over the wire so
		// the redirect ack is observable.
		data, err := (&proto.Subscribe{Channel: 0, Seq: 2, LeaseMs: 10000}).Marshal()
		if err != nil {
			t.Error(err)
			return
		}
		if err := sub3.Send(r.Addr(), data); err != nil {
			t.Error(err)
			return
		}
		if pkt, err := r.conn.Recv(time.Second); err == nil {
			r.handlePacket(pkt)
		}
		apkt, err := sub3.Recv(time.Second)
		if err != nil {
			t.Errorf("no ack: %v", err)
		} else if ack, err = proto.UnmarshalSubAck(apkt.Data); err != nil {
			t.Errorf("bad ack: %v", err)
		}
		shedStats = r.Stats()
		nsubs = r.NumSubscribers()
		r.Stop()
	})
	sim.WaitIdle()

	if floor != codec.ProfileOVLLow {
		t.Fatalf("profile after congested sweep = %v, want the ovl-low floor", floor)
	}
	if noSibStats.TierSheds != 0 || noSibStats.Refreshes != 1 {
		t.Fatalf("no-sibling refresh stats = %+v, want served with 0 tier sheds", noSibStats)
	}
	if ack == nil || ack.Status != proto.SubRedirect || ack.Redirect != "10.0.0.9:5006" || ack.LeaseMs != 0 {
		t.Fatalf("ack = %+v, want a zero-lease redirect to the least-loaded sibling", ack)
	}
	if shedStats.TierSheds != 1 {
		t.Fatalf("TierSheds = %d, want 1", shedStats.TierSheds)
	}
	if nsubs != 1 {
		t.Fatalf("subscribers = %d after tier shed, want 1", nsubs)
	}
}
