package audiodev

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 || r.Len() != 0 || r.Free() != 8 {
		t.Fatalf("fresh ring: cap=%d len=%d free=%d", r.Cap(), r.Len(), r.Free())
	}
	if n := r.Write([]byte{1, 2, 3}); n != 3 {
		t.Fatalf("write = %d", n)
	}
	buf := make([]byte, 2)
	if n := r.Read(buf); n != 2 || buf[0] != 1 || buf[1] != 2 {
		t.Fatalf("read = %d %v", n, buf)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	r.Write([]byte{1, 2, 3})
	buf := make([]byte, 2)
	r.Read(buf)
	// Now head=2, writing 3 bytes wraps.
	if n := r.Write([]byte{4, 5, 6}); n != 3 {
		t.Fatalf("wrap write = %d", n)
	}
	out := make([]byte, 4)
	if n := r.Read(out); n != 4 || !bytes.Equal(out, []byte{3, 4, 5, 6}) {
		t.Fatalf("wrap read = %d %v", n, out)
	}
}

func TestRingOverfill(t *testing.T) {
	r := NewRing(4)
	if n := r.Write([]byte{1, 2, 3, 4, 5, 6}); n != 4 {
		t.Fatalf("overfill accepted %d", n)
	}
	if r.Free() != 0 {
		t.Fatalf("free = %d", r.Free())
	}
	if n := r.Write([]byte{9}); n != 0 {
		t.Fatalf("write to full ring = %d", n)
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(4)
	r.Write([]byte{1, 2})
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset did not empty ring")
	}
	buf := make([]byte, 4)
	if n := r.Read(buf); n != 0 {
		t.Fatalf("read after reset = %d", n)
	}
}

func TestRingFIFOProperty(t *testing.T) {
	// Arbitrary interleavings of writes and reads preserve FIFO order.
	f := func(chunks [][]byte) bool {
		r := NewRing(64)
		var wrote, read []byte
		for _, c := range chunks {
			if len(c) > 0 {
				n := r.Write(c)
				wrote = append(wrote, c[:n]...)
			}
			buf := make([]byte, 7)
			n := r.Read(buf)
			read = append(read, buf[:n]...)
		}
		// Drain the rest.
		buf := make([]byte, 64)
		n := r.Read(buf)
		read = append(read, buf[:n]...)
		return bytes.Equal(wrote, read)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0)
}
