package audiodev

import (
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/vclock"
)

// newTestDevice builds a device over simulated time with a collector.
func newTestDevice(t *testing.T) (*vclock.Sim, *Device, *BlockCollector) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	col := &BlockCollector{}
	hw := NewSimHardware(sim, col.Sink())
	dev := NewDevice(sim, hw)
	return sim, dev, col
}

func TestDeviceOpenClose(t *testing.T) {
	_, dev, _ := newTestDevice(t)
	if err := dev.Open(audio.CDQuality); err != nil {
		t.Fatal(err)
	}
	if err := dev.Open(audio.CDQuality); err != ErrBusy {
		t.Fatalf("double open = %v, want ErrBusy", err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != ErrClosed {
		t.Fatalf("double close = %v, want ErrClosed", err)
	}
	if _, err := dev.Write([]byte{1}); err != ErrClosed {
		t.Fatalf("write on closed = %v", err)
	}
}

func TestDeviceRejectsBadParams(t *testing.T) {
	_, dev, _ := newTestDevice(t)
	if err := dev.Open(audio.Params{}); err == nil {
		t.Fatal("opened with invalid params")
	}
}

func TestDevicePlaysAtHardwareRate(t *testing.T) {
	// A five-second clip must take five seconds of simulated time: the
	// hardware rate limit of §3.1.
	sim, dev, col := newTestDevice(t)
	p := audio.Voice // 8000 B/s: cheap
	if err := dev.Open(p); err != nil {
		t.Fatal(err)
	}
	clip := make([]byte, p.BytesFor(5*time.Second))
	start := sim.Now()
	var elapsed time.Duration
	sim.Go("writer", func() {
		if _, err := dev.Write(clip); err != nil {
			t.Error(err)
		}
		if err := dev.Drain(); err != nil {
			t.Error(err)
		}
		elapsed = sim.Since(start)
	})
	sim.WaitIdle()
	// Drain completes after the clip plus the silent-halt blocks.
	blockDur := p.Duration(dev.BlockSize())
	min := 5 * time.Second
	max := 5*time.Second + time.Duration(silentHaltRun+1)*blockDur
	if elapsed < min || elapsed > max {
		t.Fatalf("5s clip drained in %v, want [%v, %v]", elapsed, min, max)
	}
	// All data must have come out the DAC.
	var played int
	for _, b := range col.DataBlocks() {
		played += len(b.Data)
	}
	if played < len(clip) {
		t.Fatalf("played %d bytes, want >= %d", played, len(clip))
	}
}

func TestDeviceWriteBlocksWhenRingFull(t *testing.T) {
	// Writing 10x the ring capacity must take ~the play duration of the
	// excess, proving Write blocks rather than discarding.
	sim, dev, _ := newTestDevice(t)
	p := audio.Voice
	if err := dev.Open(p); err != nil {
		t.Fatal(err)
	}
	total := dev.BlockSize() * DefaultRingBlocks * 10
	start := sim.Now()
	var writeDone time.Duration
	sim.Go("writer", func() {
		if _, err := dev.Write(make([]byte, total)); err != nil {
			t.Error(err)
		}
		writeDone = sim.Since(start)
		dev.Close()
	})
	sim.WaitIdle()
	// Write returns once all but one ring-full is consumed (plus one
	// block in flight inside the DAC); at least the play time of
	// (total - ring capacity - one block) must have elapsed.
	minDur := p.Duration(total - dev.BlockSize()*(DefaultRingBlocks+1))
	if writeDone < minDur {
		t.Fatalf("write returned after %v, want >= %v", writeDone, minDur)
	}
}

func TestDeviceUnderrunInsertsSilence(t *testing.T) {
	sim, dev, col := newTestDevice(t)
	p := audio.Voice
	if err := dev.Open(p); err != nil {
		t.Fatal(err)
	}
	// Write one block, pause longer than the ring, write another.
	blk := dev.BlockSize()
	sim.Go("writer", func() {
		dev.Write(make([]byte, blk))
		sim.Sleep(p.Duration(blk * 6))
		dev.Write(make([]byte, blk))
		dev.Drain()
		dev.Close()
	})
	sim.WaitIdle()
	st := dev.GetStats()
	if st.SilenceBlocks == 0 {
		t.Fatal("no silence inserted during starvation")
	}
	var sawSilence bool
	for _, b := range col.Blocks() {
		if b.Silence {
			sawSilence = true
			// Silence must decode to near-zero samples.
			for _, s := range audio.Decode(p, b.Data) {
				if s > 128 || s < -128 {
					t.Fatalf("silence block decodes to %d", s)
				}
			}
		}
	}
	if !sawSilence {
		t.Fatal("collector saw no silence blocks")
	}
	if st.Triggers < 2 {
		t.Fatalf("triggers = %d, want >= 2 (auto-halt then re-trigger)", st.Triggers)
	}
}

func TestDeviceDrainOnIdleReturnsImmediately(t *testing.T) {
	sim, dev, _ := newTestDevice(t)
	if err := dev.Open(audio.Voice); err != nil {
		t.Fatal(err)
	}
	var err error
	sim.Go("drainer", func() { err = dev.Drain() })
	sim.WaitIdle()
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeviceFlushDiscards(t *testing.T) {
	sim, dev, col := newTestDevice(t)
	p := audio.Voice
	dev.Open(p)
	sim.Go("writer", func() {
		// Less than one block: playback never starts.
		dev.Write(make([]byte, dev.BlockSize()/2))
		if dev.Buffered() == 0 {
			t.Error("nothing buffered")
		}
		dev.Flush()
		if dev.Buffered() != 0 {
			t.Error("flush left data")
		}
		dev.Close()
	})
	sim.WaitIdle()
	if len(col.DataBlocks()) != 0 {
		t.Fatal("flushed data was played")
	}
}

func TestDeviceSetParamsWhileIdle(t *testing.T) {
	sim, dev, _ := newTestDevice(t)
	dev.Open(audio.Voice)
	if err := dev.SetParams(audio.CDQuality); err != nil {
		t.Fatal(err)
	}
	if got := dev.Params(); got != audio.CDQuality {
		t.Fatalf("params = %v", got)
	}
	// During playback it must fail.
	sim.Go("writer", func() {
		dev.Write(make([]byte, dev.BlockSize()*2))
		if err := dev.SetParams(audio.Voice); err == nil {
			t.Error("SetParams succeeded during playback")
		}
		dev.Close()
	})
	sim.WaitIdle()
}

func TestDeviceSetBlockSize(t *testing.T) {
	_, dev, _ := newTestDevice(t)
	dev.Open(audio.CDQuality)
	if err := dev.SetBlockSize(1024); err != nil {
		t.Fatal(err)
	}
	if got := dev.BlockSize(); got != 1024 {
		t.Fatalf("block size = %d", got)
	}
	// Must stay frame-aligned.
	if err := dev.SetBlockSize(1023); err != nil {
		t.Fatal(err)
	}
	if got := dev.BlockSize(); got%audio.CDQuality.BytesPerFrame() != 0 {
		t.Fatalf("unaligned block %d", got)
	}
	if err := dev.SetBlockSize(0); err == nil {
		t.Fatal("accepted zero block size")
	}
}

func TestDeviceStatsAccounting(t *testing.T) {
	sim, dev, _ := newTestDevice(t)
	p := audio.Voice
	dev.Open(p)
	total := dev.BlockSize() * 4
	sim.Go("writer", func() {
		dev.Write(make([]byte, total))
		dev.Drain()
		dev.Close()
	})
	sim.WaitIdle()
	st := dev.GetStats()
	if st.BytesWritten != int64(total) {
		t.Fatalf("written = %d, want %d", st.BytesWritten, total)
	}
	if st.BytesPlayed != int64(total) {
		t.Fatalf("played = %d, want %d", st.BytesPlayed, total)
	}
	if st.BlocksPlayed != 4 {
		t.Fatalf("blocks = %d, want 4", st.BlocksPlayed)
	}
}

func TestDeviceBlockTimingIsRegular(t *testing.T) {
	// Consecutive data blocks must be exactly one block-duration apart.
	sim, dev, col := newTestDevice(t)
	p := audio.Voice
	dev.Open(p)
	sim.Go("writer", func() {
		dev.Write(make([]byte, dev.BlockSize()*6))
		dev.Drain()
		dev.Close()
	})
	sim.WaitIdle()
	blocks := col.DataBlocks()
	if len(blocks) < 6 {
		t.Fatalf("played %d blocks", len(blocks))
	}
	want := p.Duration(dev.BlockSize())
	for i := 1; i < 6; i++ {
		gap := blocks[i].Time.Sub(blocks[i-1].Time)
		if gap != want {
			t.Fatalf("gap %d = %v, want %v", i, gap, want)
		}
	}
}

func TestSimHardwareSpeedSkew(t *testing.T) {
	// A DAC running 2% fast consumes audio 2% faster.
	sim := vclock.NewSim(time.Time{})
	col := &BlockCollector{}
	hw := NewSimHardware(sim, col.Sink())
	hw.SetSpeed(1.02)
	dev := NewDevice(sim, hw)
	p := audio.Voice
	dev.Open(p)
	sim.Go("writer", func() {
		dev.Write(make([]byte, p.BytesFor(2*time.Second)))
		dev.Drain()
		dev.Close()
	})
	sim.WaitIdle()
	blocks := col.DataBlocks()
	if len(blocks) < 2 {
		t.Fatalf("played %d blocks", len(blocks))
	}
	// Span between first and last data-block start at 2% fast: the
	// nominal span divided by 1.02.
	span := blocks[len(blocks)-1].Time.Sub(blocks[0].Time)
	nominal := p.Duration(dev.BlockSize()) * time.Duration(len(blocks)-1)
	if span >= nominal {
		t.Fatalf("fast DAC span %v, want < nominal %v", span, nominal)
	}
	wantMin := time.Duration(float64(nominal) / 1.03)
	if span < wantMin {
		t.Fatalf("fast DAC span %v, want >= %v", span, wantMin)
	}
}
