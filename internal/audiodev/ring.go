package audiodev

// Ring is a fixed-capacity byte ring buffer, the high-level driver's
// play queue. It is not synchronized; Device guards it.
type Ring struct {
	buf   []byte
	head  int // read position
	count int // bytes buffered
}

// NewRing returns a ring holding up to capacity bytes.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("audiodev: ring capacity must be positive")
	}
	return &Ring{buf: make([]byte, capacity)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of buffered bytes.
func (r *Ring) Len() int { return r.count }

// Free returns the remaining space.
func (r *Ring) Free() int { return len(r.buf) - r.count }

// Write copies as much of p as fits and returns the number of bytes
// consumed.
func (r *Ring) Write(p []byte) int {
	n := len(p)
	if free := r.Free(); n > free {
		n = free
	}
	w := (r.head + r.count) % len(r.buf)
	first := copy(r.buf[w:], p[:n])
	if first < n {
		copy(r.buf, p[first:n])
	}
	r.count += n
	return n
}

// Read copies up to len(p) buffered bytes into p and returns the count.
func (r *Ring) Read(p []byte) int {
	n := len(p)
	if n > r.count {
		n = r.count
	}
	first := copy(p[:n], r.buf[r.head:])
	if first < n {
		copy(p[first:n], r.buf)
	}
	r.head = (r.head + n) % len(r.buf)
	r.count -= n
	return n
}

// Reset discards all buffered bytes.
func (r *Ring) Reset() {
	r.head = 0
	r.count = 0
}
