// Package audiodev models the OpenBSD audio subsystem in user space: the
// device-independent high-level driver (audio(4) semantics — ring buffer,
// blocking writes, silence insertion on underrun) and the audio(9)
// low-level driver contract (TriggerOutput called once when the first
// block is ready, after which the hardware autonomously consumes blocks
// and "interrupts" back). The paper's VAD is a low-level driver with no
// hardware behind it, and every design problem in §3.3 falls out of this
// contract — so we reproduce the contract itself.
package audiodev
