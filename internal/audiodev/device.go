package audiodev

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/audio"
	"repro/internal/vclock"
)

// FetchStatus is what a low-level driver learns from FetchBlock.
type FetchStatus int

// Fetch outcomes.
const (
	// FetchData: the block contains buffered audio (possibly padded).
	FetchData FetchStatus = iota
	// FetchSilence: the ring was empty; the block is pure inserted
	// silence (an underrun if playback was expected to be continuous).
	FetchSilence
	// FetchHalted: the device is closed or flushed; stop consuming.
	FetchHalted
)

// HWDriver is the audio(9)-style low-level driver contract. The
// high-level driver calls TriggerOutput exactly once per playback run —
// when the first full block is buffered — and from then on the driver is
// expected to consume autonomously via FetchBlock/FetchBlockWait until it
// sees FetchHalted or chooses to stop (reporting so with OutputStopped).
type HWDriver interface {
	// Name identifies the driver in diagnostics.
	Name() string
	// Open prepares the driver for the given configuration.
	Open(p audio.Params, blockSize int) error
	// TriggerOutput starts the autonomous consumption engine (DMA in real
	// hardware; a task here). Called with the device lock NOT held.
	TriggerOutput(dev *Device) error
	// Close releases the driver. Any consumption task must observe
	// FetchHalted promptly afterwards.
	Close()
}

// Stats captures the high-level driver's accounting.
type Stats struct {
	BytesWritten  int64 // accepted from the application
	BytesPlayed   int64 // handed to the low-level driver
	BlocksPlayed  int64 // data blocks consumed
	SilenceBlocks int64 // pure-silence blocks inserted on underrun
	Underruns     int64 // data blocks padded OR silence inserted mid-stream
	Triggers      int64 // TriggerOutput invocations
}

// Default sizing: OpenBSD's audio driver defaults to ~50ms blocks and a
// ring of a dozen or so blocks.
const (
	DefaultBlockMillis = 50
	DefaultRingBlocks  = 12
)

var (
	// ErrClosed is returned for operations on a closed device.
	ErrClosed = errors.New("audiodev: device not open")
	// ErrBusy is returned when opening an already-open device.
	ErrBusy = errors.New("audiodev: device busy")
)

// Device is the high-level, device-independent audio driver: the
// /dev/audio the application sees. Writes block when the ring is full
// (the inherent hardware rate limit of §3.1 — which the VAD deliberately
// lacks); reads by the low-level driver insert silence on underrun.
type Device struct {
	clock vclock.Clock
	hw    HWDriver

	mu        sync.Mutex
	notFull   vclock.Cond
	changed   vclock.Cond // ring drained / playback state changes
	open      bool
	triggered bool
	params    audio.Params
	blockSize int
	ring      *Ring
	stats     Stats
	// consecutive silence blocks in the current run, for auto-halt
	silentRun int
	// data blocks fetched but not yet reported done by the driver
	inFlight int
}

// NewDevice returns a closed device wired to clock and low-level driver.
func NewDevice(clock vclock.Clock, hw HWDriver) *Device {
	d := &Device{clock: clock, hw: hw}
	d.notFull = clock.NewCond()
	d.changed = clock.NewCond()
	return d
}

// Open configures and opens the device (exclusive), sizing the block to
// DefaultBlockMillis and the ring to DefaultRingBlocks blocks.
func (d *Device) Open(p audio.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.open {
		return ErrBusy
	}
	d.params = p
	d.blockSize = alignBlock(p, p.BytesFor(DefaultBlockMillis*time.Millisecond))
	d.ring = NewRing(d.blockSize * DefaultRingBlocks)
	d.stats = Stats{}
	d.silentRun = 0
	if err := d.hw.Open(p, d.blockSize); err != nil {
		return fmt.Errorf("audiodev: low-level open: %w", err)
	}
	d.open = true
	return nil
}

// alignBlock rounds n down to a whole number of frames, minimum one.
func alignBlock(p audio.Params, n int) int {
	fb := p.BytesPerFrame()
	if n < fb {
		return fb
	}
	return n - n%fb
}

// SetBlockSize reconfigures the block size (and rings of DefaultRingBlocks
// blocks) — the AUDIO_SETINFO blocksize knob the buffer-size experiment
// sweeps (§3.4). Only allowed while playback is idle.
func (d *Device) SetBlockSize(n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	if d.triggered || d.ring.Len() > 0 {
		return errors.New("audiodev: cannot resize block during playback")
	}
	if n <= 0 {
		return fmt.Errorf("audiodev: invalid block size %d", n)
	}
	d.blockSize = alignBlock(d.params, n)
	d.ring = NewRing(d.blockSize * DefaultRingBlocks)
	return nil
}

// SetParams reconfigures the stream parameters (the AUDIO_SETINFO ioctl).
// Only allowed while playback is idle so in-flight audio keeps its
// format.
func (d *Device) SetParams(p audio.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	if d.triggered || d.ring.Len() > 0 {
		return errors.New("audiodev: cannot change params during playback")
	}
	d.params = p
	d.blockSize = alignBlock(p, p.BytesFor(DefaultBlockMillis*time.Millisecond))
	d.ring = NewRing(d.blockSize * DefaultRingBlocks)
	if err := d.hw.Open(p, d.blockSize); err != nil {
		return fmt.Errorf("audiodev: low-level reopen: %w", err)
	}
	return nil
}

// Params returns the current configuration.
func (d *Device) Params() audio.Params {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.params
}

// BlockSize returns the current block size in bytes.
func (d *Device) BlockSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blockSize
}

// GetStats returns a snapshot of the driver accounting.
func (d *Device) GetStats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Write queues audio data for playback, blocking while the ring is full.
// It returns the number of bytes accepted (all of p unless the device is
// closed mid-write).
func (d *Device) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	written := 0
	for len(p) > 0 {
		if !d.open {
			return written, ErrClosed
		}
		n := d.ring.Write(p)
		if n == 0 {
			// Ring full: the producer-consumer rate limit.
			d.notFull.Wait(&d.mu)
			continue
		}
		p = p[n:]
		written += n
		d.stats.BytesWritten += int64(n)
		// Wake a driver parked in FetchBlockWait (the VAD kernel thread).
		d.changed.Broadcast()
		d.maybeTriggerLocked()
	}
	return written, nil
}

// maybeTriggerLocked starts the low-level consumption engine when the
// first block of a run is buffered.
func (d *Device) maybeTriggerLocked() {
	if d.triggered || d.ring.Len() < d.blockSize {
		return
	}
	d.triggered = true
	d.silentRun = 0
	d.stats.Triggers++
	hw := d.hw
	// TriggerOutput may spawn a task that immediately calls FetchBlock;
	// release the lock around the call.
	d.mu.Unlock()
	err := hw.TriggerOutput(d)
	d.mu.Lock()
	if err != nil {
		d.triggered = false
	}
}

// FetchBlock is called by the low-level driver to consume one block from
// the ring. If the ring holds less than a block, the remainder is filled
// with silence (counted as an underrun when mid-stream). The returned
// status tells the driver whether to keep consuming.
func (d *Device) FetchBlock(buf []byte) (int, FetchStatus) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open || !d.triggered {
		return 0, FetchHalted
	}
	n := d.ring.Read(buf)
	if n > 0 {
		d.notFull.Broadcast()
	}
	if n < len(buf) {
		audio.FillSilence(d.params.Encoding, buf[n:])
	}
	if n == 0 {
		d.stats.SilenceBlocks++
		d.silentRun++
		if d.ring.Len() == 0 {
			d.changed.Broadcast()
		}
		return len(buf), FetchSilence
	}
	d.silentRun = 0
	d.stats.BlocksPlayed++
	d.stats.BytesPlayed += int64(n)
	d.inFlight++
	if n < len(buf) {
		d.stats.Underruns++
	}
	if d.ring.Len() == 0 {
		d.changed.Broadcast()
	}
	return len(buf), FetchData
}

// BlockDone is the driver's completion interrupt: it reports that a
// previously fetched data block has been fully played (or delivered, for
// the VAD). Drain completes only once every fetched block is done.
func (d *Device) BlockDone() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inFlight > 0 {
		d.inFlight--
	}
	if d.inFlight == 0 {
		d.changed.Broadcast()
	}
}

// FetchBlockWait is the variant the VAD's kernel thread uses: it blocks
// until at least one byte is buffered (returning up to a block) or the
// device halts. No silence is ever fabricated — the VAD only ever sees
// what the application actually wrote.
func (d *Device) FetchBlockWait(buf []byte) (int, FetchStatus) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if !d.open || !d.triggered {
			return 0, FetchHalted
		}
		n := d.ring.Read(buf)
		if n > 0 {
			d.stats.BlocksPlayed++
			d.stats.BytesPlayed += int64(n)
			d.inFlight++
			d.notFull.Broadcast()
			if d.ring.Len() == 0 {
				d.changed.Broadcast()
			}
			return n, FetchData
		}
		d.changed.Wait(&d.mu)
	}
}

// SilentRun returns the number of consecutive pure-silence blocks the
// current run has produced; hardware drivers use it to halt output after
// the stream drains rather than playing silence forever.
func (d *Device) SilentRun() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.silentRun
}

// OutputStopped is called by the low-level driver when its consumption
// engine exits; the next Write will re-trigger.
func (d *Device) OutputStopped() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.triggered = false
	d.changed.Broadcast()
	// A block may have accumulated while the engine was winding down.
	d.maybeTriggerLocked()
}

// Drain blocks until all buffered audio has been consumed and every
// fetched block has been reported played via BlockDone (the AUDIO_DRAIN
// ioctl). On a wedged device — the naive VAD of §3.3 — Drain hangs, just
// like the real thing.
func (d *Device) Drain() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if !d.open {
			return ErrClosed
		}
		if d.ring.Len() == 0 && d.inFlight == 0 {
			return nil
		}
		d.changed.Wait(&d.mu)
	}
}

// Flush discards buffered audio without playing it (AUDIO_FLUSH).
func (d *Device) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	d.ring.Reset()
	d.notFull.Broadcast()
	d.changed.Broadcast()
	return nil
}

// Playing reports whether the consumption engine is currently running.
func (d *Device) Playing() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.triggered
}

// Buffered returns the number of bytes queued in the ring.
func (d *Device) Buffered() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ring == nil {
		return 0
	}
	return d.ring.Len()
}

// QueuedBytes returns the bytes not yet played: the ring contents plus
// anything fetched by the driver but not reported done. It upper-bounds
// how far in the future a byte written now will play, which is what the
// speaker's synchronization logic needs (§3.2).
func (d *Device) QueuedBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ring == nil {
		return 0
	}
	return d.ring.Len() + d.inFlight*d.blockSize
}

// Close halts playback, discards buffered audio and releases the device.
func (d *Device) Close() error {
	d.mu.Lock()
	if !d.open {
		d.mu.Unlock()
		return ErrClosed
	}
	d.open = false
	d.triggered = false
	d.inFlight = 0
	if d.ring != nil {
		d.ring.Reset()
	}
	d.notFull.Broadcast()
	d.changed.Broadcast()
	hw := d.hw
	d.mu.Unlock()
	hw.Close()
	return nil
}

// Clock exposes the device's clock to low-level drivers.
func (d *Device) Clock() vclock.Clock { return d.clock }
