package audiodev

import (
	"errors"
	"sync"
	"time"

	"repro/internal/audio"
	"repro/internal/vclock"
)

// PlayedBlock is one hardware block as it "comes out of the speaker":
// the observable output of a SimHardware, consumed by tests, the skew
// measurements (§3.2) and the auto-volume microphone model (§5.2).
type PlayedBlock struct {
	Time    time.Time    // when the block started playing
	Params  audio.Params // format it was played in
	Data    []byte       // raw audio bytes (silence-padded if underrun)
	Silence bool         // true if the block is pure inserted silence
}

// SimHardware is a simulated DAC: an audio(9) low-level driver that
// consumes one block per block-period of clock time and reports each
// block to an optional sink. It reproduces the two properties the paper
// leans on: hardware inherently rate-limits the producer (§3.1), and the
// consumption engine runs autonomously after a single TriggerOutput
// (§3.3).
type SimHardware struct {
	clock vclock.Clock

	mu        sync.Mutex
	sink      func(PlayedBlock)
	params    audio.Params
	blockSize int
	speed     float64 // DAC clock ratio; 1.0 is nominal
	open      bool
	gen       int // invalidates consumption tasks across reopen
}

// NewSimHardware returns a simulated audio DAC. sink may be nil.
func NewSimHardware(clock vclock.Clock, sink func(PlayedBlock)) *SimHardware {
	return &SimHardware{clock: clock, sink: sink, speed: 1.0}
}

// SetSpeed adjusts the DAC clock ratio: 1.01 plays 1% fast. This models
// the per-unit oscillator differences behind the phase-drift discussion
// in §3.2.
func (h *SimHardware) SetSpeed(ratio float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ratio > 0 {
		h.speed = ratio
	}
}

// SetSink replaces the output sink.
func (h *SimHardware) SetSink(sink func(PlayedBlock)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sink = sink
}

// Name implements HWDriver.
func (h *SimHardware) Name() string { return "simdac" }

// Open implements HWDriver.
func (h *SimHardware) Open(p audio.Params, blockSize int) error {
	if blockSize <= 0 {
		return errors.New("audiodev: simdac: non-positive block size")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.params = p
	h.blockSize = blockSize
	h.open = true
	h.gen++
	return nil
}

// Close implements HWDriver.
func (h *SimHardware) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.open = false
	h.gen++
}

// silentHaltRun is how many consecutive pure-silence blocks the DAC plays
// before halting output and waiting for a re-trigger.
const silentHaltRun = 2

// TriggerOutput implements HWDriver: it spawns the consumption engine.
func (h *SimHardware) TriggerOutput(dev *Device) error {
	h.mu.Lock()
	if !h.open {
		h.mu.Unlock()
		return errors.New("audiodev: simdac: not open")
	}
	gen := h.gen
	params := h.params
	blockSize := h.blockSize
	speed := h.speed
	sink := h.sink
	h.mu.Unlock()

	blockDur := params.Duration(blockSize)
	if speed != 1.0 {
		blockDur = time.Duration(float64(blockDur) / speed)
	}
	h.clock.Go("simdac", func() {
		buf := make([]byte, blockSize)
		for {
			h.mu.Lock()
			stale := gen != h.gen || !h.open
			h.mu.Unlock()
			if stale {
				dev.OutputStopped()
				return
			}
			n, st := dev.FetchBlock(buf)
			if st == FetchHalted {
				dev.OutputStopped()
				return
			}
			if sink != nil {
				blk := PlayedBlock{
					Time:    h.clock.Now(),
					Params:  params,
					Data:    append([]byte(nil), buf[:n]...),
					Silence: st == FetchSilence,
				}
				sink(blk)
			}
			h.clock.Sleep(blockDur)
			if st == FetchData {
				dev.BlockDone()
			}
			if st == FetchSilence && dev.SilentRun() >= silentHaltRun {
				dev.OutputStopped()
				return
			}
		}
	})
	return nil
}

// BlockCollector is a convenience sink that records played blocks.
type BlockCollector struct {
	mu     sync.Mutex
	blocks []PlayedBlock
}

// Sink returns a function suitable for NewSimHardware.
func (c *BlockCollector) Sink() func(PlayedBlock) {
	return func(b PlayedBlock) {
		c.mu.Lock()
		c.blocks = append(c.blocks, b)
		c.mu.Unlock()
	}
}

// Blocks returns a snapshot of the collected blocks.
func (c *BlockCollector) Blocks() []PlayedBlock {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PlayedBlock, len(c.blocks))
	copy(out, c.blocks)
	return out
}

// DataBlocks returns only the non-silence blocks.
func (c *BlockCollector) DataBlocks() []PlayedBlock {
	var out []PlayedBlock
	for _, b := range c.Blocks() {
		if !b.Silence {
			out = append(out, b)
		}
	}
	return out
}

// Reset discards collected blocks.
func (c *BlockCollector) Reset() {
	c.mu.Lock()
	c.blocks = nil
	c.mu.Unlock()
}
