// Package proto defines the Ethernet Speaker wire protocol (§2.3): the
// periodic control packets that carry the audio configuration and the
// producer's wall clock, the data packets that carry timestamped codec
// payload, and the out-of-band catalog announcements (the MFTP-inspired
// channel directory of §4.3).
//
// Design properties inherited from the paper:
//
//   - The producer keeps no per-listener state; control packets repeat
//     the full configuration at a fixed cadence, so a speaker can tune in
//     at any time and must merely wait for the next control packet.
//   - Every data packet carries a play timestamp relative to the
//     producer's wall clock, which the control packets distribute.
//   - Packets are individually parseable with strict validation; a
//     malformed packet is an error, never a panic.
package proto
