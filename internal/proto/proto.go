package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/audio"
)

// Wire constants.
const (
	// Magic is the two-byte packet prefix "ES".
	Magic = 0x4553
	// Version is the protocol version this package speaks.
	Version = 1
	// headerLen is the fixed common header: magic(2) version(1) type(1)
	// channel(4).
	headerLen = 8
	// maxString bounds every length-prefixed string on the wire.
	maxString = 255
)

// PacketType discriminates the packet kinds.
type PacketType uint8

// Packet kinds.
const (
	TypeControl  PacketType = 1
	TypeData     PacketType = 2
	TypeAnnounce PacketType = 3
	// TypeSubscribe asks a relay for a unicast copy of a channel's
	// control + data stream under a TURN-style lease (§2.3 keeps the
	// producer itself listener-stateless; the relay is where off-LAN
	// subscriber state lives).
	TypeSubscribe PacketType = 4
	// TypeSubAck is the relay's reply: the granted lease, or a refusal.
	TypeSubAck PacketType = 5
	// TypePause freezes or resumes a subscriber's delivery cursor on a
	// DVR-enabled relay. While paused the relay's per-channel generation
	// ring keeps recording; resume replays the gap at faster than
	// realtime until the cursor converges on live.
	TypePause PacketType = 6
)

// String implements fmt.Stringer.
func (t PacketType) String() string {
	switch t {
	case TypeControl:
		return "control"
	case TypeData:
		return "data"
	case TypeAnnounce:
		return "announce"
	case TypeSubscribe:
		return "subscribe"
	case TypeSubAck:
		return "suback"
	case TypePause:
		return "pause"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// AuthScheme names the packet-authentication mode a channel uses (§5.1).
type AuthScheme uint8

// Authentication schemes.
const (
	AuthNone  AuthScheme = 0
	AuthHMAC  AuthScheme = 1
	AuthChain AuthScheme = 2
	AuthHORS  AuthScheme = 3
	// AuthIdentity is the per-subscriber control-plane scheme: the
	// trailer carries the sender's identity ID and a monotonic sequence,
	// and the tag binds the datagram's UDP source address, so a captured
	// request neither replays from a spoofed source nor forges another
	// subscriber's control actions.
	AuthIdentity AuthScheme = 4
)

// String implements fmt.Stringer.
func (a AuthScheme) String() string {
	switch a {
	case AuthNone:
		return "none"
	case AuthHMAC:
		return "hmac"
	case AuthChain:
		return "chain"
	case AuthHORS:
		return "hors"
	case AuthIdentity:
		return "ident"
	default:
		return fmt.Sprintf("auth(%d)", uint8(a))
	}
}

// Errors returned by parsers.
var (
	ErrShort      = errors.New("proto: packet too short")
	ErrBadMagic   = errors.New("proto: bad magic")
	ErrBadVersion = errors.New("proto: unsupported version")
	ErrBadPacket  = errors.New("proto: malformed packet")
)

// Control is the periodic configuration + wall-clock packet. A speaker
// may not play a channel until it has seen one (§2.3).
type Control struct {
	Channel  uint32       // channel identifier
	Epoch    uint32       // stream generation; bumps on reconfiguration
	Seq      uint64       // control packet sequence
	Producer int64        // producer wall clock, ns since producer epoch
	Params   audio.Params // audio configuration from the VAD
	Codec    string       // codec registry name
	Quality  uint8        // codec quality index
	Auth     AuthScheme   // authentication in use on this channel
	Interval uint32       // control cadence in milliseconds
}

// Data is one timestamped chunk of encoded audio.
type Data struct {
	Channel uint32 // channel identifier
	Epoch   uint32 // must match the controlling Control.Epoch
	Seq     uint64 // data packet sequence (per epoch)
	PlayAt  int64  // producer-relative play deadline, ns
	Payload []byte // codec frames
}

// ChannelInfo is one catalog entry.
type ChannelInfo struct {
	ID     uint32
	Name   string
	Group  string // multicast group "addr:port" carrying the channel
	Codec  string
	Params audio.Params
}

// RelayInfo is one relay's catalog record: where to lease a unicast
// copy of a stream when the multicast group itself is out of reach.
//
// The load vector (HasLoad and the fields after it) is the record's
// optional self-reported load, re-stamped on every advertise so
// discovery can rank candidates and shedding can pick the least-loaded
// sibling. Records from pre-load announcers parse with HasLoad false.
type RelayInfo struct {
	Addr    string // unicast "addr:port" subscribers lease from
	Group   string // multicast group relayed, or the upstream relay's address for a chained relay
	Channel uint32 // channel restriction; 0 = whatever the source carries

	HasLoad  bool   // the announce carried a load vector for this record
	Subs     uint32 // current leased subscribers
	Pressure uint8  // queue-pressure score, 0 (idle) to 255 (saturated)
	Hops     uint8  // relay hops from the stream source (1 = joins the group); 0 = unknown
}

// LoadScore orders relay records least-loaded first: subscriber count
// dominates, queue pressure breaks ties among equally-subscribed
// relays, and hops-from-source breaks ties among equally-pressured
// ones (a shorter chain adds less latency and fewer failure points).
// A record without a load vector scores behind every record with one —
// in a mixed deployment an announcer that reports its load is always
// preferred over one that cannot.
func (ri RelayInfo) LoadScore() uint64 {
	if !ri.HasLoad {
		return 1 << 63
	}
	return uint64(ri.Subs)<<16 | uint64(ri.Pressure)<<8 | uint64(ri.Hops)
}

// Announce is the out-of-band channel catalog (§4.3): it lets speakers
// discover channels without listening in on each one. Relays advertise
// themselves here too, so off-LAN speakers and downstream relays can
// find a bridge without static configuration.
type Announce struct {
	Seq      uint64
	Channels []ChannelInfo
	Relays   []RelayInfo

	// Signature section (absent on legacy announcers): a forged catalog
	// record is the one remaining way to steer subscribers to a rogue
	// relay, so a catalog may sign each announce with a few-time key.
	// The signature covers every byte that precedes the section plus
	// SigGen, the key generation it was made under (announces outlive
	// any single few-time key, so signers rotate generations and
	// verifiers derive or look up the matching public key). An unsigned
	// announce still parses — whether it is *accepted* is the
	// receiver's policy, not the grammar's.
	SigScheme AuthScheme // scheme the signature uses (AuthNone = unsigned)
	SigGen    uint32     // signing key generation
	Sig       []byte     // signature over the preceding bytes + SigGen
}

// putHeader writes the common header.
func putHeader(buf []byte, t PacketType, channel uint32) {
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = byte(t)
	binary.BigEndian.PutUint32(buf[4:8], channel)
}

// PeekType validates the common header and returns the packet type and
// channel without parsing the body.
func PeekType(data []byte) (PacketType, uint32, error) {
	if len(data) < headerLen {
		return 0, 0, ErrShort
	}
	if binary.BigEndian.Uint16(data[0:2]) != Magic {
		return 0, 0, ErrBadMagic
	}
	if data[2] != Version {
		return 0, 0, ErrBadVersion
	}
	t := PacketType(data[3])
	switch t {
	case TypeControl, TypeData, TypeAnnounce, TypeSubscribe, TypeSubAck, TypePause:
	default:
		return 0, 0, fmt.Errorf("%w: unknown type %d", ErrBadPacket, data[3])
	}
	return t, binary.BigEndian.Uint32(data[4:8]), nil
}

// appendString writes a u8-length-prefixed string.
func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > maxString {
		return nil, fmt.Errorf("%w: string of %d bytes", ErrBadPacket, len(s))
	}
	buf = append(buf, byte(len(s)))
	return append(buf, s...), nil
}

// readString consumes a u8-length-prefixed string.
func readString(data []byte) (string, []byte, error) {
	if len(data) < 1 {
		return "", nil, ErrShort
	}
	n := int(data[0])
	if len(data) < 1+n {
		return "", nil, ErrShort
	}
	return string(data[1 : 1+n]), data[1+n:], nil
}

// appendParams writes an audio configuration.
func appendParams(buf []byte, p audio.Params) []byte {
	var b [6]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(p.SampleRate))
	b[4] = byte(p.Channels)
	b[5] = byte(p.Encoding)
	return append(buf, b[:]...)
}

// readParams consumes an audio configuration and validates it. An
// all-zero configuration is accepted as "not yet configured": catalog
// entries may describe channels whose application has not opened the
// VAD yet.
func readParams(data []byte) (audio.Params, []byte, error) {
	if len(data) < 6 {
		return audio.Params{}, nil, ErrShort
	}
	p := audio.Params{
		SampleRate: int(binary.BigEndian.Uint32(data[0:4])),
		Channels:   int(data[4]),
		Encoding:   audio.Encoding(data[5]),
	}
	if p == (audio.Params{}) {
		return p, data[6:], nil
	}
	if err := p.Validate(); err != nil {
		return audio.Params{}, nil, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	return p, data[6:], nil
}

// Marshal encodes the control packet.
func (c *Control) Marshal() ([]byte, error) {
	buf := make([]byte, headerLen, headerLen+64)
	putHeader(buf, TypeControl, c.Channel)
	var fixed [28]byte
	binary.BigEndian.PutUint32(fixed[0:4], c.Epoch)
	binary.BigEndian.PutUint64(fixed[4:12], c.Seq)
	binary.BigEndian.PutUint64(fixed[12:20], uint64(c.Producer))
	binary.BigEndian.PutUint32(fixed[20:24], c.Interval)
	fixed[24] = c.Quality
	fixed[25] = byte(c.Auth)
	// fixed[26:28] reserved
	buf = append(buf, fixed[:]...)
	buf = appendParams(buf, c.Params)
	return appendString(buf, c.Codec)
}

// UnmarshalControl parses a control packet.
func UnmarshalControl(data []byte) (*Control, error) {
	t, ch, err := PeekType(data)
	if err != nil {
		return nil, err
	}
	if t != TypeControl {
		return nil, fmt.Errorf("%w: expected control, got %s", ErrBadPacket, t)
	}
	body := data[headerLen:]
	if len(body) < 28 {
		return nil, ErrShort
	}
	c := &Control{Channel: ch}
	c.Epoch = binary.BigEndian.Uint32(body[0:4])
	c.Seq = binary.BigEndian.Uint64(body[4:12])
	c.Producer = int64(binary.BigEndian.Uint64(body[12:20]))
	c.Interval = binary.BigEndian.Uint32(body[20:24])
	c.Quality = body[24]
	c.Auth = AuthScheme(body[25])
	body = body[28:]
	if c.Params, body, err = readParams(body); err != nil {
		return nil, err
	}
	// A control packet must carry a playable configuration (unlike a
	// catalog entry, which may be unconfigured).
	if err := c.Params.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	if c.Codec, body, err = readString(body); err != nil {
		return nil, err
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(body))
	}
	return c, nil
}

// Marshal encodes the data packet.
func (d *Data) Marshal() ([]byte, error) {
	buf := make([]byte, headerLen, headerLen+24+len(d.Payload))
	putHeader(buf, TypeData, d.Channel)
	var fixed [22]byte
	binary.BigEndian.PutUint32(fixed[0:4], d.Epoch)
	binary.BigEndian.PutUint64(fixed[4:12], d.Seq)
	binary.BigEndian.PutUint64(fixed[12:20], uint64(d.PlayAt))
	binary.BigEndian.PutUint16(fixed[20:22], uint16(len(d.Payload)))
	if len(d.Payload) > 65535 {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrBadPacket, len(d.Payload))
	}
	buf = append(buf, fixed[:]...)
	return append(buf, d.Payload...), nil
}

// UnmarshalData parses a data packet.
func UnmarshalData(data []byte) (*Data, error) {
	t, ch, err := PeekType(data)
	if err != nil {
		return nil, err
	}
	if t != TypeData {
		return nil, fmt.Errorf("%w: expected data, got %s", ErrBadPacket, t)
	}
	body := data[headerLen:]
	if len(body) < 22 {
		return nil, ErrShort
	}
	d := &Data{Channel: ch}
	d.Epoch = binary.BigEndian.Uint32(body[0:4])
	d.Seq = binary.BigEndian.Uint64(body[4:12])
	d.PlayAt = int64(binary.BigEndian.Uint64(body[12:20]))
	n := int(binary.BigEndian.Uint16(body[20:22]))
	body = body[22:]
	if len(body) != n {
		return nil, fmt.Errorf("%w: payload length %d != declared %d", ErrBadPacket, len(body), n)
	}
	d.Payload = append([]byte(nil), body...)
	return d, nil
}

// Marshal encodes the announce packet. A catalog with no relays omits
// the relay section entirely, staying byte-compatible with pre-relay
// parsers. A signature section, when present, is always last; Marshal
// emits one when Sig is nonempty (signers usually marshal unsigned and
// append via AppendAnnounceSig, since the signature covers the
// marshaled prefix).
func (a *Announce) Marshal() ([]byte, error) {
	if len(a.Channels) > 255 {
		return nil, fmt.Errorf("%w: %d channels", ErrBadPacket, len(a.Channels))
	}
	if len(a.Relays) > 255 {
		return nil, fmt.Errorf("%w: %d relays", ErrBadPacket, len(a.Relays))
	}
	buf := make([]byte, headerLen, 256)
	putHeader(buf, TypeAnnounce, 0)
	var fixed [9]byte
	binary.BigEndian.PutUint64(fixed[0:8], a.Seq)
	fixed[8] = byte(len(a.Channels))
	buf = append(buf, fixed[:]...)
	var err error
	for _, ci := range a.Channels {
		var idb [4]byte
		binary.BigEndian.PutUint32(idb[:], ci.ID)
		buf = append(buf, idb[:]...)
		if buf, err = appendString(buf, ci.Name); err != nil {
			return nil, err
		}
		if buf, err = appendString(buf, ci.Group); err != nil {
			return nil, err
		}
		if buf, err = appendString(buf, ci.Codec); err != nil {
			return nil, err
		}
		buf = appendParams(buf, ci.Params)
	}
	if len(a.Relays) > 0 {
		buf = append(buf, byte(len(a.Relays)))
		for _, ri := range a.Relays {
			if buf, err = appendString(buf, ri.Addr); err != nil {
				return nil, err
			}
			if buf, err = appendString(buf, ri.Group); err != nil {
				return nil, err
			}
			var chb [4]byte
			binary.BigEndian.PutUint32(chb[:], ri.Channel)
			buf = append(buf, chb[:]...)
		}
		hasLoad := false
		for _, ri := range a.Relays {
			if ri.HasLoad {
				hasLoad = true
				break
			}
		}
		if hasLoad {
			// Load section: a count byte (must match the relay count)
			// then one flags byte per record, followed by the 6-byte
			// load vector when flags bit 0 is set. Per-record flags let
			// a catalog mix live records (which stamp load) with static
			// ones (which cannot).
			buf = append(buf, byte(len(a.Relays)))
			for _, ri := range a.Relays {
				if !ri.HasLoad {
					buf = append(buf, 0)
					continue
				}
				var lb [7]byte
				lb[0] = 1
				binary.BigEndian.PutUint32(lb[1:5], ri.Subs)
				lb[5] = ri.Pressure
				lb[6] = ri.Hops
				buf = append(buf, lb[:]...)
			}
		}
	}
	if len(a.Sig) == 0 {
		// Unsigned: omit the section entirely, staying byte-compatible
		// with pre-signature parsers.
		return buf, nil
	}
	if a.SigScheme == AuthNone {
		return nil, fmt.Errorf("%w: signature without a scheme", ErrBadPacket)
	}
	return AppendAnnounceSig(buf, a.SigScheme, a.SigGen, a.Sig)
}

// AppendAnnounceSig appends the signature section to an announce
// marshaled without one. The section is always last and opens with a
// zero marker byte — a value no relay-count or load-count byte the
// parser could confuse it with ever takes (both sections are omitted
// entirely when empty) — so signed and unsigned announces coexist at
// every section combination:
//
//	0x00 marker || u8 scheme || u32 gen || u16 siglen || sig
//
// The signature must cover pkt plus gen; AppendAnnounceSig only frames
// it.
func AppendAnnounceSig(pkt []byte, scheme AuthScheme, gen uint32, sig []byte) ([]byte, error) {
	if scheme == AuthNone {
		return nil, fmt.Errorf("%w: signature without a scheme", ErrBadPacket)
	}
	if len(sig) == 0 || len(sig) > 65535 {
		return nil, fmt.Errorf("%w: signature of %d bytes", ErrBadPacket, len(sig))
	}
	out := make([]byte, 0, len(pkt)+8+len(sig))
	out = append(out, pkt...)
	var fixed [8]byte
	fixed[0] = 0 // section marker
	fixed[1] = byte(scheme)
	binary.BigEndian.PutUint32(fixed[2:6], gen)
	binary.BigEndian.PutUint16(fixed[6:8], uint16(len(sig)))
	out = append(out, fixed[:]...)
	return append(out, sig...), nil
}

// UnmarshalAnnounce parses an announce packet.
func UnmarshalAnnounce(data []byte) (*Announce, error) {
	a, _, err := unmarshalAnnounce(data)
	return a, err
}

// SplitAnnounceSig splits a marshaled announce into the prefix its
// signature covers and the signature fields. For a legacy unsigned
// announce signed is false and prefix is the whole packet. The packet
// is fully parsed, so a malformed announce errors here exactly as it
// would in UnmarshalAnnounce.
func SplitAnnounceSig(data []byte) (prefix []byte, scheme AuthScheme, gen uint32, sig []byte, signed bool, err error) {
	a, sigStart, err := unmarshalAnnounce(data)
	if err != nil {
		return nil, AuthNone, 0, nil, false, err
	}
	if a.SigScheme == AuthNone {
		return data, AuthNone, 0, nil, false, nil
	}
	return data[:sigStart], a.SigScheme, a.SigGen, a.Sig, true, nil
}

// unmarshalAnnounce parses an announce and reports where its signature
// section starts (len(data) when unsigned) so verifiers can recover the
// signed prefix. Each optional section is recognized by its first byte:
// the relay and load sections open with a nonzero count (both are
// omitted entirely when empty), the signature section with a zero
// marker.
func unmarshalAnnounce(data []byte) (*Announce, int, error) {
	t, _, err := PeekType(data)
	if err != nil {
		return nil, 0, err
	}
	if t != TypeAnnounce {
		return nil, 0, fmt.Errorf("%w: expected announce, got %s", ErrBadPacket, t)
	}
	body := data[headerLen:]
	if len(body) < 9 {
		return nil, 0, ErrShort
	}
	a := &Announce{Seq: binary.BigEndian.Uint64(body[0:8])}
	count := int(body[8])
	body = body[9:]
	for i := 0; i < count; i++ {
		var ci ChannelInfo
		if len(body) < 4 {
			return nil, 0, ErrShort
		}
		ci.ID = binary.BigEndian.Uint32(body[0:4])
		body = body[4:]
		if ci.Name, body, err = readString(body); err != nil {
			return nil, 0, err
		}
		if ci.Group, body, err = readString(body); err != nil {
			return nil, 0, err
		}
		if ci.Codec, body, err = readString(body); err != nil {
			return nil, 0, err
		}
		if ci.Params, body, err = readParams(body); err != nil {
			return nil, 0, err
		}
		a.Channels = append(a.Channels, ci)
	}
	if len(body) > 0 && body[0] != 0 {
		// Relay section (absent in pre-relay announces).
		rcount := int(body[0])
		body = body[1:]
		for i := 0; i < rcount; i++ {
			var ri RelayInfo
			if ri.Addr, body, err = readString(body); err != nil {
				return nil, 0, err
			}
			if ri.Group, body, err = readString(body); err != nil {
				return nil, 0, err
			}
			if len(body) < 4 {
				return nil, 0, ErrShort
			}
			ri.Channel = binary.BigEndian.Uint32(body[0:4])
			body = body[4:]
			a.Relays = append(a.Relays, ri)
		}
		if len(body) > 0 && body[0] != 0 {
			// Load section (absent in pre-load announces).
			if int(body[0]) != rcount {
				return nil, 0, fmt.Errorf("%w: load section counts %d relays, record section %d",
					ErrBadPacket, body[0], rcount)
			}
			body = body[1:]
			for i := 0; i < rcount; i++ {
				if len(body) < 1 {
					return nil, 0, ErrShort
				}
				flags := body[0]
				body = body[1:]
				if flags&^byte(1) != 0 {
					return nil, 0, fmt.Errorf("%w: unknown load flags %#x", ErrBadPacket, flags)
				}
				if flags&1 == 0 {
					continue
				}
				if len(body) < 6 {
					return nil, 0, ErrShort
				}
				ri := &a.Relays[i]
				ri.HasLoad = true
				ri.Subs = binary.BigEndian.Uint32(body[0:4])
				ri.Pressure = body[4]
				ri.Hops = body[5]
				body = body[6:]
			}
		}
	}
	sigStart := len(data) - len(body)
	if len(body) > 0 {
		// Signature section (absent in pre-signature announces): the
		// zero marker byte, then scheme, generation, and the signature.
		if len(body) < 8 {
			return nil, 0, ErrShort
		}
		a.SigScheme = AuthScheme(body[1])
		if a.SigScheme == AuthNone {
			return nil, 0, fmt.Errorf("%w: signature without a scheme", ErrBadPacket)
		}
		a.SigGen = binary.BigEndian.Uint32(body[2:6])
		slen := int(binary.BigEndian.Uint16(body[6:8]))
		body = body[8:]
		if slen == 0 {
			return nil, 0, fmt.Errorf("%w: empty signature", ErrBadPacket)
		}
		if len(body) < slen {
			return nil, 0, ErrShort
		}
		a.Sig = append([]byte(nil), body[:slen]...)
		body = body[slen:]
	}
	if len(body) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(body))
	}
	return a, sigStart, nil
}

// SubStatus is the relay's verdict on a subscription request.
type SubStatus uint8

// Subscription outcomes.
const (
	SubOK        SubStatus = 0 // lease granted or refreshed
	SubNoChannel SubStatus = 1 // relay does not carry the channel
	SubTableFull SubStatus = 2 // subscriber table at capacity
	SubLoop      SubStatus = 3 // path would revisit this relay or exceed the hop limit
	// SubRedirect is load shedding: no lease was granted, but the
	// SubAck's Redirect field names a sibling relay carrying the same
	// stream — retry there. It is the TURN ALTERNATE-SERVER move applied
	// to §4.3 relay trees.
	SubRedirect SubStatus = 4
)

// String implements fmt.Stringer.
func (s SubStatus) String() string {
	switch s {
	case SubOK:
		return "ok"
	case SubNoChannel:
		return "no-channel"
	case SubTableFull:
		return "table-full"
	case SubLoop:
		return "loop"
	case SubRedirect:
		return "redirect"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Subscribe asks a relay for a unicast copy of a channel's stream. A
// subscriber refreshes its lease by re-sending before expiry; LeaseMs
// zero cancels the subscription. The subscriber's unicast address is the
// datagram's source address — nothing on the wire names it, exactly like
// a TURN allocation refresh.
//
// Hops and PathID exist for relay chaining: a relay subscribing to
// another relay reports how many relay hops are already behind it and
// the path identity of the deepest one, so a relay can refuse a
// subscription whose path would revisit it (SubLoop). A plain speaker
// sends zero for both.
//
// Profile is the requested delivery profile (codec.Profile wire
// values): the quality-ladder rung the subscriber wants the relay to
// serve it at. Zero — also what every legacy body reads as — requests
// source passthrough. The relay answers with the profile it actually
// granted (SubAck.Profile) and may serve a lower rung under pressure.
//
// ShiftMs is the requested time shift: "start my stream from this many
// milliseconds ago", served from the relay's DVR generation ring. Zero
// — the only value a legacy body can read as — means live. The relay
// clamps the request to what its ring still holds and answers with the
// shift actually granted (SubAck.ShiftMs).
type Subscribe struct {
	Channel uint32 // channel identifier
	Seq     uint32 // request sequence, echoed in the SubAck
	LeaseMs uint32 // requested lease in milliseconds; 0 unsubscribes
	Hops    uint8  // relay hops already on the path (speakers: 0)
	PathID  uint64 // path origin identity (speakers: 0)
	Profile uint8  // requested delivery profile (0 = source passthrough)
	ShiftMs uint32 // requested time shift in milliseconds (0 = live)
}

// SubAck is the relay's reply to a Subscribe.
type SubAck struct {
	Channel uint32    // channel identifier (echo)
	Seq     uint32    // request sequence (echo)
	LeaseMs uint32    // granted lease in milliseconds; 0 on refusal/cancel
	Status  SubStatus // verdict
	// Profile is the delivery profile currently being served (codec
	// profile wire values; 0 = source passthrough). On a refresh it
	// reports the relay's live choice, which the quality ladder may
	// have stepped below the requested rung.
	Profile uint8
	// Redirect is the sibling relay's unicast address; present exactly
	// when Status is SubRedirect (the marshaller refuses any other
	// combination, and the parser rejects a redirect with no address —
	// "go elsewhere" must always say where).
	Redirect string
	// ShiftMs is the time shift actually granted, clamped to the DVR
	// ring's reach; 0 = live. It is emitted only when nonzero — a
	// trailing section a legacy parser would reject — which is safe
	// because only a subscriber that requested a shift (proving it
	// speaks the extension) can be granted one. A redirect grants
	// nothing, so it never carries a shift.
	ShiftMs uint32
}

// Marshal encodes the subscribe packet. Every optional section is
// omitted when it is all-zero, so each subscriber emits the shortest
// body an older parser still accepts: a plain speaker requesting
// source quality emits the legacy 8-byte body, a speaker requesting a
// profile appends one byte (9), a chained relay emits the 17-byte
// pathed body, and a pathed request with a profile appends the byte
// to that (18). A time-shift request appends 4 more bytes after the
// profile byte — which it forces present, even at Source, so the
// shift's offset is unambiguous — giving bodies of 13 (shift, no
// path) or 22 (path + shift).
func (s *Subscribe) Marshal() ([]byte, error) {
	n := 17
	if s.Hops == 0 && s.PathID == 0 {
		n = 8
	}
	if s.Profile != 0 || s.ShiftMs != 0 {
		n++
	}
	if s.ShiftMs != 0 {
		n += 4
	}
	buf := make([]byte, headerLen+n)
	putHeader(buf, TypeSubscribe, s.Channel)
	binary.BigEndian.PutUint32(buf[headerLen:headerLen+4], s.Seq)
	binary.BigEndian.PutUint32(buf[headerLen+4:headerLen+8], s.LeaseMs)
	p := headerLen + 8
	if s.Hops != 0 || s.PathID != 0 {
		buf[p] = s.Hops
		binary.BigEndian.PutUint64(buf[p+1:p+9], s.PathID)
		p += 9
	}
	if s.Profile != 0 || s.ShiftMs != 0 {
		buf[p] = s.Profile
		p++
	}
	if s.ShiftMs != 0 {
		binary.BigEndian.PutUint32(buf[p:p+4], s.ShiftMs)
	}
	return buf, nil
}

// UnmarshalSubscribe parses a subscribe packet. Six body lengths are
// accepted: 8 (legacy, no path or profile), 9 (profile only), 17
// (path only), 18 (path + profile), 13 (profile + shift), and 22
// (path + profile + shift). Absent fields read as zero — exactly what
// a sender predating them would mean.
func UnmarshalSubscribe(data []byte) (*Subscribe, error) {
	t, ch, err := PeekType(data)
	if err != nil {
		return nil, err
	}
	if t != TypeSubscribe {
		return nil, fmt.Errorf("%w: expected subscribe, got %s", ErrBadPacket, t)
	}
	body := data[headerLen:]
	if len(body) < 8 {
		return nil, ErrShort
	}
	switch len(body) {
	case 8, 9, 13, 17, 18, 22:
	default:
		return nil, fmt.Errorf("%w: subscribe body of %d bytes", ErrBadPacket, len(body))
	}
	s := &Subscribe{
		Channel: ch,
		Seq:     binary.BigEndian.Uint32(body[0:4]),
		LeaseMs: binary.BigEndian.Uint32(body[4:8]),
	}
	if len(body) >= 17 {
		s.Hops = body[8]
		s.PathID = binary.BigEndian.Uint64(body[9:17])
	}
	switch len(body) {
	case 9, 18:
		s.Profile = body[len(body)-1]
	case 13, 22:
		s.Profile = body[len(body)-5]
		s.ShiftMs = binary.BigEndian.Uint32(body[len(body)-4:])
	}
	return s, nil
}

// Marshal encodes the suback packet. A SubRedirect carries the sibling
// address after the fixed body; every other status keeps the exact
// 10-byte body — unless a time shift was granted, in which case 4
// bytes of ShiftMs follow. Only a subscriber that requested a shift
// can be granted one, so the trailing section is never sent to a
// legacy parser that would reject it. A redirect grants nothing, so
// combining it with a shift is a marshalling error.
func (s *SubAck) Marshal() ([]byte, error) {
	if (s.Status == SubRedirect) != (s.Redirect != "") {
		return nil, fmt.Errorf("%w: status %s with redirect %q", ErrBadPacket, s.Status, s.Redirect)
	}
	if s.Status == SubRedirect && s.ShiftMs != 0 {
		return nil, fmt.Errorf("%w: redirect with shift grant", ErrBadPacket)
	}
	buf := make([]byte, headerLen+10, headerLen+10+1+len(s.Redirect))
	putHeader(buf, TypeSubAck, s.Channel)
	binary.BigEndian.PutUint32(buf[headerLen:headerLen+4], s.Seq)
	binary.BigEndian.PutUint32(buf[headerLen+4:headerLen+8], s.LeaseMs)
	buf[headerLen+8] = byte(s.Status)
	// Byte 9 was reserved-zero before delivery profiles; a pre-profile
	// parser reads a profile grant as that reserved byte and ignores it.
	buf[headerLen+9] = s.Profile
	if s.Status == SubRedirect {
		return appendString(buf, s.Redirect)
	}
	if s.ShiftMs != 0 {
		var sb [4]byte
		binary.BigEndian.PutUint32(sb[:], s.ShiftMs)
		buf = append(buf, sb[:]...)
	}
	return buf, nil
}

// UnmarshalSubAck parses a suback packet.
func UnmarshalSubAck(data []byte) (*SubAck, error) {
	t, ch, err := PeekType(data)
	if err != nil {
		return nil, err
	}
	if t != TypeSubAck {
		return nil, fmt.Errorf("%w: expected suback, got %s", ErrBadPacket, t)
	}
	body := data[headerLen:]
	if len(body) < 10 {
		return nil, ErrShort
	}
	a := &SubAck{
		Channel: ch,
		Seq:     binary.BigEndian.Uint32(body[0:4]),
		LeaseMs: binary.BigEndian.Uint32(body[4:8]),
		Status:  SubStatus(body[8]),
		Profile: body[9],
	}
	body = body[10:]
	if a.Status == SubRedirect {
		if a.Redirect, body, err = readString(body); err != nil {
			return nil, err
		}
		if a.Redirect == "" {
			return nil, fmt.Errorf("%w: redirect with empty address", ErrBadPacket)
		}
	} else if len(body) == 4 {
		a.ShiftMs = binary.BigEndian.Uint32(body[0:4])
		body = body[4:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(body))
	}
	return a, nil
}

// Pause freezes or resumes a subscriber's delivery on a DVR-enabled
// relay. It rides the same return path as Subscribe — the subscriber
// is the datagram's source address, and on an authenticated relay the
// packet must arrive wrapped in the same §5.1 trailer. While paused
// the relay stops delivering but its generation ring keeps recording;
// Resume replays the gap through the catch-up path at faster than
// realtime until the cursor converges on live. A relay without a ring
// for the channel ignores the request — pause without history would
// silently eat audio.
type Pause struct {
	Channel uint32 // channel identifier; must name the leased channel (0 = wildcard)
	// Seq must strictly increase across the pauses one subscriber
	// sends: the relay rejects a seq at or below the last one it
	// consumed, so a captured-and-replayed pause (which verifies — it
	// was once genuine) cannot re-park the subscriber later. Pause is
	// not acked; the seq doubles as the tracing handle.
	Seq    uint32
	Paused bool // true freezes the cursor, false resumes it
}

// Pause state codes (the body's state byte).
const (
	PauseStateResume = 0
	PauseStatePause  = 1
)

// Marshal encodes the pause packet: a 5-byte body of seq plus one
// state byte.
func (p *Pause) Marshal() ([]byte, error) {
	buf := make([]byte, headerLen+5)
	putHeader(buf, TypePause, p.Channel)
	binary.BigEndian.PutUint32(buf[headerLen:headerLen+4], p.Seq)
	if p.Paused {
		buf[headerLen+4] = PauseStatePause
	}
	return buf, nil
}

// UnmarshalPause parses a pause packet. The state byte must be one of
// the defined codes; anything else is malformed, leaving room for
// future cursor verbs without silently misreading them.
func UnmarshalPause(data []byte) (*Pause, error) {
	t, ch, err := PeekType(data)
	if err != nil {
		return nil, err
	}
	if t != TypePause {
		return nil, fmt.Errorf("%w: expected pause, got %s", ErrBadPacket, t)
	}
	body := data[headerLen:]
	if len(body) < 5 {
		return nil, ErrShort
	}
	if len(body) != 5 {
		return nil, fmt.Errorf("%w: pause body of %d bytes", ErrBadPacket, len(body))
	}
	p := &Pause{
		Channel: ch,
		Seq:     binary.BigEndian.Uint32(body[0:4]),
	}
	switch body[4] {
	case PauseStateResume:
	case PauseStatePause:
		p.Paused = true
	default:
		return nil, fmt.Errorf("%w: unknown pause state %d", ErrBadPacket, body[4])
	}
	return p, nil
}
