package proto

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/codec"
)

// docPath locates docs/PROTOCOL.md relative to this package directory.
const docPath = "../../docs/PROTOCOL.md"

// parseCodeTable extracts `name` -> code pairs from the markdown table
// that follows the given heading.
func parseCodeTable(t *testing.T, doc, heading string) map[string]uint8 {
	t.Helper()
	_, after, found := strings.Cut(doc, heading)
	if !found {
		t.Fatalf("PROTOCOL.md: heading %q missing", heading)
	}
	row := regexp.MustCompile("^\\|\\s*`([A-Za-z]+)`\\s*\\|\\s*(\\d+)\\s*\\|")
	codes := map[string]uint8{}
	inTable := false
	for _, line := range strings.Split(after, "\n") {
		m := row.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			if inTable && !strings.HasPrefix(strings.TrimSpace(line), "|") {
				break // table ended
			}
			continue
		}
		inTable = true
		n, err := strconv.Atoi(m[2])
		if err != nil || n > 255 {
			t.Fatalf("PROTOCOL.md %q: bad code in row %q", heading, line)
		}
		codes[m[1]] = uint8(n)
	}
	if len(codes) == 0 {
		t.Fatalf("PROTOCOL.md: no code rows under %q", heading)
	}
	return codes
}

// TestProtocolDocMatchesConstants keeps docs/PROTOCOL.md honest: the
// documented type, auth-scheme, and subscription-status codes must
// match the constants this package actually puts on the wire, in both
// directions (nothing undocumented, nothing stale).
func TestProtocolDocMatchesConstants(t *testing.T) {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("wire-format doc missing: %v", err)
	}
	doc := string(raw)

	check := func(heading string, want map[string]uint8) {
		t.Helper()
		got := parseCodeTable(t, doc, heading)
		if len(got) != len(want) {
			t.Errorf("%s: documented %d codes, code defines %d", heading, len(got), len(want))
		}
		for name, code := range want {
			if got[name] != code {
				t.Errorf("%s: %s documented as %d, code says %d", heading, name, got[name], code)
			}
		}
		for name := range got {
			if _, ok := want[name]; !ok {
				t.Errorf("%s: documents unknown entry %q", heading, name)
			}
		}
	}

	check("### Type codes", map[string]uint8{
		"Control":   uint8(TypeControl),
		"Data":      uint8(TypeData),
		"Announce":  uint8(TypeAnnounce),
		"Subscribe": uint8(TypeSubscribe),
		"SubAck":    uint8(TypeSubAck),
		"Pause":     uint8(TypePause),
	})
	check("### Auth scheme codes", map[string]uint8{
		"None":     uint8(AuthNone),
		"HMAC":     uint8(AuthHMAC),
		"Chain":    uint8(AuthChain),
		"HORS":     uint8(AuthHORS),
		"Identity": uint8(AuthIdentity),
	})
	check("### Subscription status codes", map[string]uint8{
		"OK":        uint8(SubOK),
		"NoChannel": uint8(SubNoChannel),
		"TableFull": uint8(SubTableFull),
		"Loop":      uint8(SubLoop),
		"Redirect":  uint8(SubRedirect),
	})
	check("### Delivery profile codes", map[string]uint8{
		"Source":  uint8(codec.ProfileSource),
		"ULaw":    uint8(codec.ProfileULaw),
		"OVLHigh": uint8(codec.ProfileOVLHigh),
		"OVLLow":  uint8(codec.ProfileOVLLow),
	})
	check("### Pause state codes", map[string]uint8{
		"Resume": uint8(PauseStateResume),
		"Pause":  uint8(PauseStatePause),
	})

	// The framing constants are documented literally.
	if !strings.Contains(doc, fmt.Sprintf("0x%04X", Magic)) &&
		!strings.Contains(doc, fmt.Sprintf("0x%04x", Magic)) {
		t.Errorf("PROTOCOL.md does not state the magic 0x%04X", Magic)
	}
	if !strings.Contains(doc, fmt.Sprintf("currently `%d`", Version)) {
		t.Errorf("PROTOCOL.md does not state protocol version %d", Version)
	}
}
