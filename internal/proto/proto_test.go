package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/audio"
)

func TestControlRoundTrip(t *testing.T) {
	c := &Control{
		Channel:  7,
		Epoch:    3,
		Seq:      123456789,
		Producer: 987654321012345,
		Params:   audio.CDQuality,
		Codec:    "ovl",
		Quality:  10,
		Auth:     AuthHMAC,
		Interval: 1000,
	}
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalControl(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", c, got)
	}
}

func TestDataRoundTrip(t *testing.T) {
	d := &Data{
		Channel: 1,
		Epoch:   9,
		Seq:     42,
		PlayAt:  55555555,
		Payload: []byte{1, 2, 3, 4, 5},
	}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalData(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", d, got)
	}
}

func TestDataEmptyPayload(t *testing.T) {
	d := &Data{Channel: 1, Seq: 1}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalData(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %v", got.Payload)
	}
}

func TestAnnounceRoundTrip(t *testing.T) {
	a := &Announce{
		Seq: 77,
		Channels: []ChannelInfo{
			{ID: 1, Name: "WKDU simulcast", Group: "239.72.1.1:5004", Codec: "ovl", Params: audio.CDQuality},
			{ID: 2, Name: "paging", Group: "239.72.1.2:5004", Codec: "raw", Params: audio.Voice},
		},
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
	}
}

func TestAnnounceEmpty(t *testing.T) {
	a := &Announce{Seq: 1}
	data, _ := a.Marshal()
	got, err := UnmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Channels) != 0 {
		t.Fatal("phantom channels")
	}
}

func TestPeekType(t *testing.T) {
	c := &Control{Channel: 5, Params: audio.Voice, Codec: "raw"}
	data, _ := c.Marshal()
	typ, ch, err := PeekType(data)
	if err != nil || typ != TypeControl || ch != 5 {
		t.Fatalf("peek = (%v, %d, %v)", typ, ch, err)
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	for _, s := range []*Subscribe{
		{Channel: 7, Seq: 99, LeaseMs: 30000},
		{Channel: 7, Seq: 99, LeaseMs: 30000, Hops: 3, PathID: 0xDEADBEEF01020304},
		{Channel: 7, Seq: 99, LeaseMs: 30000, Profile: 2},
		{Channel: 7, Seq: 99, LeaseMs: 30000, Hops: 3, PathID: 0xDEADBEEF01020304, Profile: 3},
		{Channel: 7, Seq: 99, LeaseMs: 30000, ShiftMs: 10000},
		{Channel: 7, Seq: 99, LeaseMs: 30000, Profile: 2, ShiftMs: 10000},
		{Channel: 7, Seq: 99, LeaseMs: 30000, Hops: 3, PathID: 0xDEADBEEF01020304, ShiftMs: 1},
		{Channel: 7, Seq: 99, LeaseMs: 30000, Hops: 3, PathID: 0xDEADBEEF01020304, Profile: 3, ShiftMs: 0xFFFFFFFF},
	} {
		data, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalSubscribe(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", s, got)
		}
	}
}

func TestSubscribeZeroPathMarshalsLegacyBody(t *testing.T) {
	// A subscriber with no path state (every plain speaker) must emit
	// the legacy 8-byte body so a pre-chaining relay — whose parser
	// rejects longer bodies as trailing garbage — still grants it.
	s := &Subscribe{Channel: 1, Seq: 2, LeaseMs: 15000}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(data) - 8; got != 8 { // minus common header
		t.Fatalf("zero-path subscribe body = %d bytes, want legacy 8", got)
	}
	p := &Subscribe{Channel: 1, Seq: 2, LeaseMs: 15000, Hops: 2, PathID: 7}
	pdata, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pdata) - 8; got != 17 {
		t.Fatalf("pathed subscribe body = %d bytes, want 17", got)
	}
	// The profile byte rides as a pure suffix of either form: 9 bytes
	// for a speaker requesting a profile, 18 for a pathed request.
	q := &Subscribe{Channel: 1, Seq: 2, LeaseMs: 15000, Profile: 1}
	qdata, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(qdata) - 8; got != 9 {
		t.Fatalf("profile subscribe body = %d bytes, want 9", got)
	}
	pq := &Subscribe{Channel: 1, Seq: 2, LeaseMs: 15000, Hops: 2, PathID: 7, Profile: 3}
	pqdata, err := pq.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pqdata) - 8; got != 18 {
		t.Fatalf("pathed profile subscribe body = %d bytes, want 18", got)
	}
	// A time shift appends 4 bytes after the profile byte, which it
	// forces present (even at Source) so the shift's offset is
	// unambiguous: 13 bytes shifted-speaker, 22 shifted-pathed.
	sh := &Subscribe{Channel: 1, Seq: 2, LeaseMs: 15000, ShiftMs: 10000}
	shdata, err := sh.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(shdata) - 8; got != 13 {
		t.Fatalf("shifted subscribe body = %d bytes, want 13", got)
	}
	psh := &Subscribe{Channel: 1, Seq: 2, LeaseMs: 15000, Hops: 2, PathID: 7, ShiftMs: 10000}
	pshdata, err := psh.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pshdata) - 8; got != 22 {
		t.Fatalf("shifted pathed subscribe body = %d bytes, want 22", got)
	}
}

func TestSubscribeLegacyBodyAccepted(t *testing.T) {
	// A pre-chaining subscriber marshals only seq + leasems; the parser
	// must accept the short body and read zero hops / path id.
	s := &Subscribe{Channel: 2, Seq: 5, LeaseMs: 9000, Hops: 7, PathID: 42}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSubscribe(data[:len(data)-9]) // strip hops+pathid
	if err != nil {
		t.Fatal(err)
	}
	want := &Subscribe{Channel: 2, Seq: 5, LeaseMs: 9000}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("legacy parse = %+v, want %+v", got, want)
	}
}

func TestAnnounceRelayRecordsRoundTrip(t *testing.T) {
	a := &Announce{
		Seq: 9,
		Channels: []ChannelInfo{
			{ID: 1, Name: "music", Group: "239.72.1.1:5004", Codec: "ovl", Params: audio.CDQuality},
		},
		Relays: []RelayInfo{
			{Addr: "10.0.0.5:5006", Group: "239.72.1.1:5004", Channel: 1},
			{Addr: "10.0.0.6:5006", Group: "10.0.0.5:5006"}, // chained, wildcard channel
		},
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
	}
	// Truncating the relay section must fail, not silently drop relays.
	if _, err := UnmarshalAnnounce(data[:len(data)-2]); err == nil {
		t.Fatal("truncated relay section accepted")
	}
}

func TestAnnounceLoadVectorRoundTrip(t *testing.T) {
	// Mixed records: a live relay stamping load next to a static record
	// without it. Both must survive the wire, including a saturated
	// pressure score and a hop count at the wire ceiling.
	a := &Announce{
		Seq: 11,
		Relays: []RelayInfo{
			{Addr: "10.0.0.5:5006", Group: "239.72.1.1:5004", Channel: 1,
				HasLoad: true, Subs: 70000, Pressure: 255, Hops: 255},
			{Addr: "10.0.0.6:5006", Group: "10.0.0.5:5006"},
			{Addr: "10.0.0.7:5006", Group: "239.72.1.1:5004",
				HasLoad: true, Subs: 0, Pressure: 0, Hops: 1},
		},
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
	}
}

func TestAnnounceWithoutLoadStaysLegacyBytes(t *testing.T) {
	// A catalog whose records carry no load must emit exactly the
	// pre-load wire format, and a legacy announce must parse with
	// HasLoad false everywhere — mixed-version deployments depend on it.
	a := &Announce{
		Seq:    3,
		Relays: []RelayInfo{{Addr: "10.0.0.5:5006", Group: "239.72.1.1:5004", Channel: 1}},
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded := &Announce{
		Seq: 3,
		Relays: []RelayInfo{{Addr: "10.0.0.5:5006", Group: "239.72.1.1:5004", Channel: 1,
			HasLoad: true, Subs: 9}},
	}
	ldata, err := loaded.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, ldata[:len(data)]) {
		t.Fatal("load section not a pure suffix of the legacy encoding")
	}
	got, err := UnmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relays[0].HasLoad {
		t.Fatal("legacy record parsed with a phantom load vector")
	}
}

func TestAnnounceLoadSectionMalformed(t *testing.T) {
	a := &Announce{
		Seq: 5,
		Relays: []RelayInfo{
			{Addr: "10.0.0.5:5006", Group: "g", Channel: 1, HasLoad: true, Subs: 4, Pressure: 10, Hops: 1},
			{Addr: "10.0.0.6:5006", Group: "g", Channel: 1, HasLoad: true, Subs: 8, Pressure: 20, Hops: 2},
		},
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loadOff := len(data) - 2*7 - 1 // two 1+6-byte load entries plus the count byte
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"count mismatch", func(b []byte) []byte { b[loadOff] = 3; return b }},
		{"count zero", func(b []byte) []byte { b[loadOff] = 0; return b }},
		{"unknown flags", func(b []byte) []byte { b[loadOff+1] = 0x82; return b }},
		{"truncated vector", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }},
	}
	for _, tc := range cases {
		mut := tc.mutate(append([]byte(nil), data...))
		if _, err := UnmarshalAnnounce(mut); err == nil {
			t.Errorf("%s: malformed load section accepted", tc.name)
		}
	}
}

func TestSubAckRedirectRoundTrip(t *testing.T) {
	a := &SubAck{Channel: 7, Seq: 99, Status: SubRedirect, Redirect: "10.0.3.2:5006"}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSubAck(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
	}
}

func TestSubAckRedirectMalformed(t *testing.T) {
	// Marshalling refuses the inconsistent combinations outright: a
	// redirect with nowhere to go, and an address smuggled onto a
	// non-redirect status.
	if _, err := (&SubAck{Channel: 1, Seq: 1, Status: SubRedirect}).Marshal(); err == nil {
		t.Fatal("redirect with empty address marshalled")
	}
	if _, err := (&SubAck{Channel: 1, Seq: 1, Status: SubOK, Redirect: "10.0.0.1:5006"}).Marshal(); err == nil {
		t.Fatal("redirect address on an OK status marshalled")
	}
	// And the parser refuses them arriving off the wire.
	good, err := (&SubAck{Channel: 1, Seq: 1, Status: SubRedirect, Redirect: "10.0.0.1:5006"}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	zero := append([]byte(nil), good[:8+10]...)
	zero = append(zero, 0) // length-prefixed empty string: a zero-address redirect
	if _, err := UnmarshalSubAck(zero); err == nil {
		t.Fatal("zero-address redirect accepted")
	}
	asOK := append([]byte(nil), good...)
	asOK[8+8] = byte(SubOK) // flip the status, keep the address bytes
	if _, err := UnmarshalSubAck(asOK); err == nil {
		t.Fatal("redirect body accepted behind a non-redirect status")
	}
	if _, err := UnmarshalSubAck(good[:len(good)-4]); err == nil {
		t.Fatal("truncated redirect address accepted")
	}
}

func TestSubscribeUnsubscribe(t *testing.T) {
	// LeaseMs zero is the cancel form and must survive the wire.
	s := &Subscribe{Channel: 3, Seq: 1, LeaseMs: 0}
	data, _ := s.Marshal()
	got, err := UnmarshalSubscribe(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.LeaseMs != 0 {
		t.Fatalf("lease = %d, want 0", got.LeaseMs)
	}
}

func TestSubAckRoundTrip(t *testing.T) {
	for _, status := range []SubStatus{SubOK, SubNoChannel, SubTableFull, SubLoop, SubRedirect} {
		// The granted-profile byte must survive every status.
		a := &SubAck{Channel: 7, Seq: 99, LeaseMs: 15000, Status: status, Profile: 2}
		if status == SubRedirect {
			a.Redirect = "10.0.9.9:5006"
		}
		data, err := a.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalSubAck(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, got) {
			t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
		}
	}
}

func TestSubscribeTrailingBytesRejected(t *testing.T) {
	// One byte after the legacy 8-byte body is the profile extension, so
	// it parses — as a profile request, not as garbage.
	s := &Subscribe{Channel: 1, Seq: 1, LeaseMs: 1000}
	data, _ := s.Marshal()
	got, err := UnmarshalSubscribe(append(data, 2))
	if err != nil || got.Profile != 2 {
		t.Fatalf("profile-extended subscribe parse = %+v, %v", got, err)
	}
	// Two bytes fit no body length and must be rejected.
	if _, err := UnmarshalSubscribe(append(data, 0, 0)); err == nil {
		t.Fatal("subscribe with trailing bytes accepted")
	}
	// Same on the pathed-plus-profile (18-byte) body: anything past the
	// profile byte is garbage.
	p := &Subscribe{Channel: 1, Seq: 1, LeaseMs: 1000, Hops: 1, PathID: 9, Profile: 1}
	pdata, _ := p.Marshal()
	if _, err := UnmarshalSubscribe(append(pdata, 0)); err == nil {
		t.Fatal("subscribe with bytes after the profile accepted")
	}
	a := &SubAck{Channel: 1, Seq: 1, LeaseMs: 1000}
	adata, _ := a.Marshal()
	if _, err := UnmarshalSubAck(append(adata, 0)); err == nil {
		t.Fatal("suback with trailing bytes accepted")
	}
}

func TestSubAckShiftRoundTrip(t *testing.T) {
	a := &SubAck{Channel: 7, Seq: 99, LeaseMs: 15000, Status: SubOK, Profile: 1, ShiftMs: 9500}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(data) - 8; got != 14 {
		t.Fatalf("shifted suback body = %d bytes, want 10+4", got)
	}
	got, err := UnmarshalSubAck(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
	}
	// A redirect grants nothing; smuggling a shift onto one must not
	// marshal (the address would land where the shift bytes go).
	r := &SubAck{Channel: 7, Seq: 99, Status: SubRedirect, Redirect: "10.0.0.9:5006", ShiftMs: 1}
	if _, err := r.Marshal(); err == nil {
		t.Fatal("redirect with shift grant marshalled")
	}
}

func TestPauseRoundTrip(t *testing.T) {
	for _, p := range []*Pause{
		{Channel: 7, Seq: 4, Paused: true},
		{Channel: 7, Seq: 5, Paused: false},
	} {
		data, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPause(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", p, got)
		}
	}
}

func TestPauseMalformed(t *testing.T) {
	good, err := (&Pause{Channel: 1, Seq: 1, Paused: true}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// An undefined state byte is malformed, not silently coerced: the
	// state space is reserved for future cursor verbs.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] = 7
	if _, err := UnmarshalPause(bad); err == nil {
		t.Fatal("unknown pause state accepted")
	}
	if _, err := UnmarshalPause(good[:len(good)-1]); err == nil {
		t.Fatal("truncated pause accepted")
	}
	if _, err := UnmarshalPause(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("pause with trailing bytes accepted")
	}
	d := &Data{Channel: 1, Payload: []byte{1}}
	ddata, _ := d.Marshal()
	if _, err := UnmarshalPause(ddata); err == nil {
		t.Fatal("pause parser accepted data packet")
	}
}

func TestPeekRejectsBadHeader(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x45},
		{0x00, 0x00, 1, 1, 0, 0, 0, 0},  // bad magic
		{0x45, 0x53, 9, 1, 0, 0, 0, 0},  // bad version
		{0x45, 0x53, 1, 99, 0, 0, 0, 0}, // bad type
	}
	for _, data := range cases {
		if _, _, err := PeekType(data); err == nil {
			t.Errorf("accepted %v", data)
		}
	}
}

func TestCrossTypeParseRejected(t *testing.T) {
	c := &Control{Channel: 5, Params: audio.Voice, Codec: "raw"}
	cdata, _ := c.Marshal()
	if _, err := UnmarshalData(cdata); err == nil {
		t.Fatal("data parser accepted control packet")
	}
	d := &Data{Channel: 5, Payload: []byte{1}}
	ddata, _ := d.Marshal()
	if _, err := UnmarshalControl(ddata); err == nil {
		t.Fatal("control parser accepted data packet")
	}
	if _, err := UnmarshalAnnounce(ddata); err == nil {
		t.Fatal("announce parser accepted data packet")
	}
	if _, err := UnmarshalSubscribe(ddata); err == nil {
		t.Fatal("subscribe parser accepted data packet")
	}
	if _, err := UnmarshalSubAck(ddata); err == nil {
		t.Fatal("suback parser accepted data packet")
	}
	s := &Subscribe{Channel: 5, Seq: 1, LeaseMs: 1000}
	sdata, _ := s.Marshal()
	if _, err := UnmarshalData(sdata); err == nil {
		t.Fatal("data parser accepted subscribe packet")
	}
	if _, err := UnmarshalSubAck(sdata); err == nil {
		t.Fatal("suback parser accepted subscribe packet")
	}
}

func TestControlRejectsBadParams(t *testing.T) {
	c := &Control{Channel: 1, Params: audio.CDQuality, Codec: "ovl"}
	data, _ := c.Marshal()
	// Corrupt the sample rate to zero.
	copy(data[8+28:8+32], []byte{0, 0, 0, 0})
	if _, err := UnmarshalControl(data); err == nil {
		t.Fatal("accepted invalid params")
	}
}

// parsers is the full parser set; every entry must uphold the package
// promise that a malformed packet is an error, never a panic.
var parsers = []struct {
	name  string
	parse func([]byte) error
}{
	{"control", func(b []byte) error { _, err := UnmarshalControl(b); return err }},
	{"data", func(b []byte) error { _, err := UnmarshalData(b); return err }},
	{"announce", func(b []byte) error { _, err := UnmarshalAnnounce(b); return err }},
	{"subscribe", func(b []byte) error { _, err := UnmarshalSubscribe(b); return err }},
	{"suback", func(b []byte) error { _, err := UnmarshalSubAck(b); return err }},
	{"pause", func(b []byte) error { _, err := UnmarshalPause(b); return err }},
	{"peek", func(b []byte) error { _, _, err := PeekType(b); return err }},
}

// validPackets marshals one well-formed packet of every kind.
func validPackets(t *testing.T) map[string][]byte {
	t.Helper()
	c := &Control{Channel: 1, Params: audio.CDQuality, Codec: "ovl", Quality: 10}
	cdata, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d := &Data{Channel: 1, Payload: make([]byte, 100)}
	ddata, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	a := &Announce{Channels: []ChannelInfo{{ID: 1, Name: "x", Group: "g", Codec: "raw", Params: audio.Voice}}}
	adata, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Carry path fields and a profile so the truncation table covers the
	// longest (18-byte) body; the shorter forms are its prefixes.
	s := &Subscribe{Channel: 1, Seq: 7, LeaseMs: 30000, Hops: 1, PathID: 99, Profile: 2}
	sdata, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// And the profile-only (9-byte) body a plain speaker requesting a
	// quality rung emits.
	sp := &Subscribe{Channel: 1, Seq: 7, LeaseMs: 30000, Profile: 1}
	spdata, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The time-shifted forms: 13-byte (profile + shift) and the full
	// 22-byte (path + profile + shift) body.
	ss := &Subscribe{Channel: 1, Seq: 7, LeaseMs: 30000, Profile: 1, ShiftMs: 9000}
	ssdata, err := ss.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sps := &Subscribe{Channel: 1, Seq: 7, LeaseMs: 30000, Hops: 1, PathID: 99, Profile: 2, ShiftMs: 9000}
	spsdata, err := sps.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	k := &SubAck{Channel: 1, Seq: 7, LeaseMs: 15000, Status: SubOK}
	kdata, err := k.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ks := &SubAck{Channel: 1, Seq: 7, LeaseMs: 15000, Status: SubOK, ShiftMs: 8000}
	ksdata, err := ks.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pz := &Pause{Channel: 1, Seq: 3, Paused: true}
	pzdata, err := pz.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	al := loadAnnounce(3)
	aldata, err := al.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rk := &SubAck{Channel: 1, Seq: 7, Status: SubRedirect, Redirect: "10.0.3.2:5006"}
	rkdata, err := rk.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The signed announce: the load-bearing packet with the trailing
	// signature section, so the truncation table walks through the
	// marker, scheme, generation, length, and signature bytes.
	asn := loadAnnounce(3)
	asn.SigScheme = AuthHORS
	asn.SigGen = 2
	asn.Sig = bytes.Repeat([]byte{0xAB}, 40)
	asndata, err := asn.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"control": cdata, "data": ddata, "announce": adata,
		"subscribe": sdata, "subscribe-profile": spdata,
		"subscribe-shift": ssdata, "subscribe-path-shift": spsdata,
		"suback": kdata, "suback-shift": ksdata, "pause": pzdata,
		"announce-load": aldata, "suback-redirect": rkdata,
		"announce-signed": asndata,
	}
}

// loadAnnounce builds the load-bearing announce the truncation table
// exercises, cut down to its first n sections: 1 = channels only,
// 2 = + relay records, 3 = + load vectors. The shorter forms mark the
// two prefixes of the full packet that are legitimately parseable —
// each is exactly what an older announcer would have sent.
func loadAnnounce(sections int) *Announce {
	a := &Announce{
		Seq:      8,
		Channels: []ChannelInfo{{ID: 1, Name: "x", Group: "g", Codec: "raw", Params: audio.Voice}},
	}
	if sections >= 2 {
		a.Relays = []RelayInfo{
			{Addr: "10.0.0.5:5006", Group: "239.72.1.1:5004", Channel: 1},
			{Addr: "10.0.0.6:5006", Group: "10.0.0.5:5006"},
		}
	}
	if sections >= 3 {
		a.Relays[0].HasLoad = true
		a.Relays[0].Subs = 12
		a.Relays[0].Pressure = 40
		a.Relays[0].Hops = 1
		a.Relays[1].HasLoad = true
		a.Relays[1].Subs = 2
		a.Relays[1].Hops = 2
	}
	return a
}

// legacyAnnouncePrefixes returns the lengths at which truncating the
// load-bearing announce yields a valid older-format packet: the end of
// the channel section (a pre-relay announce), the end of the relay
// records (a pre-load announce), and — for the signed form — the end of
// the load vectors (the full unsigned announce).
func legacyAnnouncePrefixes(t *testing.T) map[int]bool {
	t.Helper()
	out := make(map[int]bool)
	for _, sections := range []int{1, 2, 3} {
		data, err := loadAnnounce(sections).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		out[len(data)] = true
	}
	return out
}

// TestTruncationsNeverPanic is the fuzz-style truncation table: every
// prefix of every valid packet kind, fed to every parser, must return
// cleanly — an error for any strict prefix, success only for the
// matching parser on the full packet.
func TestTruncationsNeverPanic(t *testing.T) {
	// Some kinds are wire extensions of a base packet; they parse with
	// the base kind's parser.
	parserFor := map[string]string{
		"announce-load": "announce", "suback-redirect": "suback",
		"subscribe-profile": "subscribe", "subscribe-shift": "subscribe",
		"subscribe-path-shift": "subscribe", "suback-shift": "suback",
		"announce-signed": "announce",
	}
	announceLegacy := legacyAnnouncePrefixes(t)
	for kind, full := range validPackets(t) {
		want := kind
		if p, ok := parserFor[kind]; ok {
			want = p
		}
		for i := 0; i <= len(full); i++ {
			trunc := full[:i]
			for _, p := range parsers {
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s parser panicked on %s[:%d]: %v", p.name, kind, i, r)
						}
					}()
					return p.parse(trunc)
				}()
				// A few prefixes are legitimately parseable — each is
				// byte-identical to what an older or shorter-form peer
				// would send: a subscribe cut after seq+leasems is the
				// legacy 8-byte body, cut one byte later it is the 9-byte
				// profile form, cut after the path fields it is the
				// 17-byte pathed form, and the shift-carrying bodies cut
				// at any of the six accepted lengths (16/17/21/25/26
				// total) parse as the corresponding shorter form — the
				// 21-byte cut of a pathed shift reads the path prefix as
				// a profile+shift, syntactically valid, semantically the
				// sender's problem; a suback cut after its fixed 10-byte
				// body is the shift-free grant; the load-bearing announce
				// cut at the end of its channel or relay-record section
				// is a pre-relay or pre-load announce, and the signed
				// announce additionally cut before its signature section
				// is the full unsigned packet.
				legacy := kind == "subscribe" && p.name == "subscribe" &&
					(i == 16 || i == 17 || i == 21 || i == 25) ||
					kind == "subscribe-profile" && p.name == "subscribe" && i == 16 ||
					kind == "subscribe-shift" && p.name == "subscribe" &&
						(i == 16 || i == 17) ||
					kind == "subscribe-path-shift" && p.name == "subscribe" &&
						(i == 16 || i == 17 || i == 21 || i == 25 || i == 26) ||
					kind == "suback-shift" && p.name == "suback" && i == 18 ||
					kind == "announce-load" && p.name == "announce" && announceLegacy[i] ||
					kind == "announce-signed" && p.name == "announce" && announceLegacy[i]
				if i < len(full) && err == nil && p.name != "peek" && !legacy {
					t.Errorf("%s parser accepted truncated %s[:%d]", p.name, kind, i)
				}
				if i == len(full) && p.name == want && err != nil {
					t.Errorf("%s parser rejected its own full %s packet: %v", p.name, kind, err)
				}
			}
		}
	}
}

func TestRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		for _, p := range parsers {
			p.parse(data)
		}
	}
	// And random bytes behind a valid header.
	hdr := []byte{0x45, 0x53, 1, 1, 0, 0, 0, 1}
	for i := 0; i < 5000; i++ {
		n := rng.Intn(120)
		data := append(append([]byte(nil), hdr...), make([]byte, n)...)
		rng.Read(data[8:])
		for _, typ := range []byte{1, 2, 3, 4, 5, 6} {
			data[3] = typ
			for _, p := range parsers {
				p.parse(data)
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	c := &Control{Channel: 1, Params: audio.Voice, Codec: "raw"}
	data, _ := c.Marshal()
	data = append(data, 0xFF)
	if _, err := UnmarshalControl(data); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDataQuickRoundTrip(t *testing.T) {
	f := func(ch, epoch uint32, seq uint64, playAt int64, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		d := &Data{Channel: ch, Epoch: epoch, Seq: seq, PlayAt: playAt, Payload: payload}
		data, err := d.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalData(data)
		if err != nil {
			return false
		}
		if got.Channel != ch || got.Epoch != epoch || got.Seq != seq || got.PlayAt != playAt {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringLimits(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	c := &Control{Channel: 1, Params: audio.Voice, Codec: string(long)}
	if _, err := c.Marshal(); err == nil {
		t.Fatal("oversized codec name accepted")
	}
}

// TestAnnounceSigRoundTrip: the signature section survives a
// marshal/unmarshal cycle, SplitAnnounceSig recovers exactly the bytes
// the signature covers, and the framing helper refuses the encodings
// the parser could not distinguish.
func TestAnnounceSigRoundTrip(t *testing.T) {
	a := loadAnnounce(3)
	a.SigScheme = AuthHORS
	a.SigGen = 7
	a.Sig = bytes.Repeat([]byte{0xCD}, 33)
	plain, err := loadAnnounce(3).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SigScheme != AuthHORS || got.SigGen != 7 || !bytes.Equal(got.Sig, a.Sig) {
		t.Fatalf("sig fields lost: scheme=%v gen=%d siglen=%d", got.SigScheme, got.SigGen, len(got.Sig))
	}
	prefix, scheme, gen, sig, signed, err := SplitAnnounceSig(data)
	if err != nil || !signed || scheme != AuthHORS || gen != 7 {
		t.Fatalf("split = (signed=%v scheme=%v gen=%d err=%v)", signed, scheme, gen, err)
	}
	if !bytes.Equal(prefix, plain) || !bytes.Equal(sig, a.Sig) {
		t.Fatal("split did not recover the unsigned prefix and signature")
	}
	// The unsigned packet splits as legacy.
	if _, _, _, _, signed, err := SplitAnnounceSig(plain); err != nil || signed {
		t.Fatalf("unsigned announce: signed=%v err=%v", signed, err)
	}
	// Unframeable signatures are refused at marshal time.
	if _, err := AppendAnnounceSig(plain, AuthNone, 1, []byte{1}); err == nil {
		t.Fatal("signature without a scheme accepted")
	}
	if _, err := AppendAnnounceSig(plain, AuthHORS, 1, nil); err == nil {
		t.Fatal("empty signature accepted")
	}
}

func TestAuthSchemeStrings(t *testing.T) {
	for _, a := range []AuthScheme{AuthNone, AuthHMAC, AuthChain, AuthHORS, AuthIdentity, AuthScheme(9)} {
		if a.String() == "" {
			t.Fatal("empty scheme name")
		}
	}
	for _, p := range []PacketType{TypeControl, TypeData, TypeAnnounce, TypeSubscribe, TypeSubAck, TypePause, PacketType(9)} {
		if p.String() == "" {
			t.Fatal("empty type name")
		}
	}
	for _, s := range []SubStatus{SubOK, SubNoChannel, SubTableFull, SubLoop, SubRedirect, SubStatus(9)} {
		if s.String() == "" {
			t.Fatal("empty status name")
		}
	}
}

func TestDataFitsInDatagramForTypicalBlocks(t *testing.T) {
	// A 1400-byte payload (the rebroadcaster's chunking target) must
	// marshal under the LAN datagram limit of 1472.
	d := &Data{Channel: 1, Payload: make([]byte, 1400)}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 1472 {
		t.Fatalf("marshalled size %d exceeds datagram limit", len(data))
	}
}
