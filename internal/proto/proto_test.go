package proto

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/audio"
)

func TestControlRoundTrip(t *testing.T) {
	c := &Control{
		Channel:  7,
		Epoch:    3,
		Seq:      123456789,
		Producer: 987654321012345,
		Params:   audio.CDQuality,
		Codec:    "ovl",
		Quality:  10,
		Auth:     AuthHMAC,
		Interval: 1000,
	}
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalControl(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", c, got)
	}
}

func TestDataRoundTrip(t *testing.T) {
	d := &Data{
		Channel: 1,
		Epoch:   9,
		Seq:     42,
		PlayAt:  55555555,
		Payload: []byte{1, 2, 3, 4, 5},
	}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalData(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", d, got)
	}
}

func TestDataEmptyPayload(t *testing.T) {
	d := &Data{Channel: 1, Seq: 1}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalData(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %v", got.Payload)
	}
}

func TestAnnounceRoundTrip(t *testing.T) {
	a := &Announce{
		Seq: 77,
		Channels: []ChannelInfo{
			{ID: 1, Name: "WKDU simulcast", Group: "239.72.1.1:5004", Codec: "ovl", Params: audio.CDQuality},
			{ID: 2, Name: "paging", Group: "239.72.1.2:5004", Codec: "raw", Params: audio.Voice},
		},
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", a, got)
	}
}

func TestAnnounceEmpty(t *testing.T) {
	a := &Announce{Seq: 1}
	data, _ := a.Marshal()
	got, err := UnmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Channels) != 0 {
		t.Fatal("phantom channels")
	}
}

func TestPeekType(t *testing.T) {
	c := &Control{Channel: 5, Params: audio.Voice, Codec: "raw"}
	data, _ := c.Marshal()
	typ, ch, err := PeekType(data)
	if err != nil || typ != TypeControl || ch != 5 {
		t.Fatalf("peek = (%v, %d, %v)", typ, ch, err)
	}
}

func TestPeekRejectsBadHeader(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x45},
		{0x00, 0x00, 1, 1, 0, 0, 0, 0},  // bad magic
		{0x45, 0x53, 9, 1, 0, 0, 0, 0},  // bad version
		{0x45, 0x53, 1, 99, 0, 0, 0, 0}, // bad type
	}
	for _, data := range cases {
		if _, _, err := PeekType(data); err == nil {
			t.Errorf("accepted %v", data)
		}
	}
}

func TestCrossTypeParseRejected(t *testing.T) {
	c := &Control{Channel: 5, Params: audio.Voice, Codec: "raw"}
	cdata, _ := c.Marshal()
	if _, err := UnmarshalData(cdata); err == nil {
		t.Fatal("data parser accepted control packet")
	}
	d := &Data{Channel: 5, Payload: []byte{1}}
	ddata, _ := d.Marshal()
	if _, err := UnmarshalControl(ddata); err == nil {
		t.Fatal("control parser accepted data packet")
	}
	if _, err := UnmarshalAnnounce(ddata); err == nil {
		t.Fatal("announce parser accepted data packet")
	}
}

func TestControlRejectsBadParams(t *testing.T) {
	c := &Control{Channel: 1, Params: audio.CDQuality, Codec: "ovl"}
	data, _ := c.Marshal()
	// Corrupt the sample rate to zero.
	copy(data[8+28:8+32], []byte{0, 0, 0, 0})
	if _, err := UnmarshalControl(data); err == nil {
		t.Fatal("accepted invalid params")
	}
}

func TestTruncationsNeverPanic(t *testing.T) {
	c := &Control{Channel: 1, Params: audio.CDQuality, Codec: "ovl", Quality: 10}
	cdata, _ := c.Marshal()
	d := &Data{Channel: 1, Payload: make([]byte, 100)}
	ddata, _ := d.Marshal()
	a := &Announce{Channels: []ChannelInfo{{ID: 1, Name: "x", Group: "g", Codec: "raw", Params: audio.Voice}}}
	adata, _ := a.Marshal()
	for _, full := range [][]byte{cdata, ddata, adata} {
		for i := 0; i <= len(full); i++ {
			trunc := full[:i]
			UnmarshalControl(trunc)
			UnmarshalData(trunc)
			UnmarshalAnnounce(trunc)
		}
	}
}

func TestRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		UnmarshalControl(data)
		UnmarshalData(data)
		UnmarshalAnnounce(data)
	}
	// And random bytes behind a valid header.
	hdr := []byte{0x45, 0x53, 1, 1, 0, 0, 0, 1}
	for i := 0; i < 5000; i++ {
		n := rng.Intn(120)
		data := append(append([]byte(nil), hdr...), make([]byte, n)...)
		rng.Read(data[8:])
		for _, typ := range []byte{1, 2, 3} {
			data[3] = typ
			UnmarshalControl(data)
			UnmarshalData(data)
			UnmarshalAnnounce(data)
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	c := &Control{Channel: 1, Params: audio.Voice, Codec: "raw"}
	data, _ := c.Marshal()
	data = append(data, 0xFF)
	if _, err := UnmarshalControl(data); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDataQuickRoundTrip(t *testing.T) {
	f := func(ch, epoch uint32, seq uint64, playAt int64, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		d := &Data{Channel: ch, Epoch: epoch, Seq: seq, PlayAt: playAt, Payload: payload}
		data, err := d.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalData(data)
		if err != nil {
			return false
		}
		if got.Channel != ch || got.Epoch != epoch || got.Seq != seq || got.PlayAt != playAt {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringLimits(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	c := &Control{Channel: 1, Params: audio.Voice, Codec: string(long)}
	if _, err := c.Marshal(); err == nil {
		t.Fatal("oversized codec name accepted")
	}
}

func TestAuthSchemeStrings(t *testing.T) {
	for _, a := range []AuthScheme{AuthNone, AuthHMAC, AuthChain, AuthHORS, AuthScheme(9)} {
		if a.String() == "" {
			t.Fatal("empty scheme name")
		}
	}
	for _, p := range []PacketType{TypeControl, TypeData, TypeAnnounce, PacketType(9)} {
		if p.String() == "" {
			t.Fatal("empty type name")
		}
	}
}

func TestDataFitsInDatagramForTypicalBlocks(t *testing.T) {
	// A 1400-byte payload (the rebroadcaster's chunking target) must
	// marshal under the LAN datagram limit of 1472.
	d := &Data{Channel: 1, Payload: make([]byte, 1400)}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 1472 {
		t.Fatalf("marshalled size %d exceeds datagram limit", len(data))
	}
}
