package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/audio"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/speaker"
	"repro/internal/vad"
	"repro/internal/vclock"
)

// CatalogGroup is the well-known multicast group for channel
// announcements (§4.3).
const CatalogGroup = lan.Addr("239.72.0.1:5003")

// System is one Ethernet Speaker deployment on a LAN.
type System struct {
	Clock vclock.Clock
	Net   lan.Network
	// Seg is set when the system runs on a simulated segment, exposing
	// its traffic statistics.
	Seg *lan.Segment
	// Sim is set when the system runs on a simulated clock.
	Sim *vclock.Sim

	mu       sync.Mutex
	channels map[uint32]*Channel
	speakers []*speaker.Speaker
	relays   []*relay.Relay
	catalog  *rebroadcast.Catalog
	hostSeq  int
}

// Channel is one audio channel: an application-facing VAD whose master
// side feeds a rebroadcaster.
type Channel struct {
	Cfg rebroadcast.Config
	VAD *vad.VAD
	Reb *rebroadcast.Rebroadcaster

	sys *System
}

// NewSim builds a system on fresh simulated time and a simulated
// segment.
func NewSim(segCfg lan.SegmentConfig) *System {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, segCfg)
	return &System{Clock: sim, Net: seg, Seg: seg, Sim: sim,
		channels: make(map[uint32]*Channel)}
}

// New builds a system on an arbitrary clock and network (e.g. the real
// clock and UDP multicast).
func New(clock vclock.Clock, network lan.Network) *System {
	s := &System{Clock: clock, Net: network, channels: make(map[uint32]*Channel)}
	if sim, ok := clock.(*vclock.Sim); ok {
		s.Sim = sim
	}
	if seg, ok := network.(*lan.Segment); ok {
		s.Seg = seg
	}
	return s
}

// nextHostAddr hands out unique unicast addresses on the simulated LAN.
func (s *System) nextHostAddr() lan.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hostSeq++
	return lan.Addr(fmt.Sprintf("10.0.%d.%d:5000", s.hostSeq/250, s.hostSeq%250+1))
}

// AddChannel creates a VAD + rebroadcaster pair for one channel and
// starts the producer. The returned Channel's VAD slave is where the
// audio application plays.
func (s *System) AddChannel(cfg rebroadcast.Config, vcfg vad.Config) (*Channel, error) {
	conn, err := s.Net.Attach(s.nextHostAddr())
	if err != nil {
		return nil, err
	}
	v := vad.New(s.Clock, vcfg)
	reb, err := rebroadcast.New(s.Clock, conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ch := &Channel{Cfg: cfg, VAD: v, Reb: reb, sys: s}
	s.mu.Lock()
	if _, dup := s.channels[cfg.ID]; dup {
		s.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("core: duplicate channel id %d", cfg.ID)
	}
	s.channels[cfg.ID] = ch
	cat := s.catalog
	s.mu.Unlock()
	s.Clock.Go(fmt.Sprintf("rebroadcast-%d", cfg.ID), func() {
		reb.Run(v.Master())
	})
	if cat != nil {
		cat.SetChannel(ch.Info())
	}
	return ch, nil
}

// Info returns the channel's catalog entry.
func (ch *Channel) Info() proto.ChannelInfo {
	return proto.ChannelInfo{
		ID:     ch.Cfg.ID,
		Name:   ch.Cfg.Name,
		Group:  string(ch.Cfg.Group),
		Codec:  ch.Cfg.Codec,
		Params: ch.VAD.Slave().Params(),
	}
}

// Channel returns a channel by id.
func (s *System) Channel(id uint32) *Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.channels[id]
}

// StartCatalog begins announcing the channel directory on CatalogGroup.
func (s *System) StartCatalog(interval time.Duration) error {
	conn, err := s.Net.Attach(s.nextHostAddr())
	if err != nil {
		return err
	}
	cat := rebroadcast.NewCatalog(s.Clock, conn, CatalogGroup, interval)
	s.mu.Lock()
	s.catalog = cat
	for _, ch := range s.channels {
		cat.SetChannel(ch.Info())
	}
	for _, r := range s.relays {
		// Live record provider: every announce cycle re-reads the
		// relay's load vector instead of freezing it at registration.
		cat.SetRelayFunc(r.Info)
	}
	s.mu.Unlock()
	s.Clock.Go("catalog", cat.Run)
	return nil
}

// Catalog returns the catalog announcer, if started.
func (s *System) Catalog() *rebroadcast.Catalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.catalog
}

// AddSpeaker creates and starts a speaker. Its Local address is
// assigned automatically when empty.
func (s *System) AddSpeaker(cfg speaker.Config) (*speaker.Speaker, error) {
	if cfg.Local == "" {
		a := s.nextHostAddr()
		cfg.Local = lan.Addr(fmt.Sprintf("%s:%d", a.Host(), 5004))
	}
	sp, err := speaker.New(s.Clock, s.Net, cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.speakers = append(s.speakers, sp)
	s.mu.Unlock()
	s.Clock.Go("speaker-"+cfg.Name, sp.Run)
	return sp, nil
}

// Speakers returns all speakers added so far.
func (s *System) Speakers() []*speaker.Speaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*speaker.Speaker(nil), s.speakers...)
}

// AddRelay creates and starts a relay bridging cfg.Group (or, chained,
// cfg.Upstream) to unicast subscribers. Speakers beyond the multicast
// segment tune to the returned relay's Addr() instead of the group.
// With the catalog running, the relay is advertised there so off-LAN
// tuners and downstream relays can discover it.
func (s *System) AddRelay(cfg relay.Config) (*relay.Relay, error) {
	a := s.nextHostAddr()
	conn, err := s.Net.Attach(lan.Addr(fmt.Sprintf("%s:%d", a.Host(), 5006)))
	if err != nil {
		return nil, err
	}
	if cfg.Network == nil {
		cfg.Network = s.Net // per-shard send sockets for the fan-out path
	}
	r, err := relay.New(s.Clock, conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	s.mu.Lock()
	s.relays = append(s.relays, r)
	cat := s.catalog
	s.mu.Unlock()
	if cat != nil {
		cat.SetRelayFunc(r.Info)
	}
	s.Clock.Go("relay-"+string(r.Addr()), r.Run)
	return r, nil
}

// Relays returns all relays added so far.
func (s *System) Relays() []*relay.Relay {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*relay.Relay(nil), s.relays...)
}

// Play runs an "off-the-shelf audio application" against the channel's
// VAD slave: it opens the device with the given parameters and writes
// the source for the given duration of audio, then drains and closes.
// Spawn via the system clock:
//
//	sys.Clock.Go("player", func() { ch.Play(p, src, 10*time.Second) })
func (ch *Channel) Play(p audio.Params, src audio.Source, dur time.Duration) error {
	slave := ch.VAD.Slave()
	if err := slave.Open(p); err != nil {
		return err
	}
	defer slave.Close()
	total := p.BytesFor(dur)
	buf := make([]int16, 4096*p.Channels)
	written := 0
	for written < total {
		n, err := src.ReadSamples(buf)
		if n == 0 {
			break
		}
		raw := audio.Encode(p, buf[:n])
		if written+len(raw) > total {
			raw = raw[:total-written]
		}
		if _, werr := slave.Write(raw); werr != nil {
			return werr
		}
		written += len(raw)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return slave.Drain()
}

// Shutdown stops all speakers and producers.
func (s *System) Shutdown() {
	s.mu.Lock()
	speakers := append([]*speaker.Speaker(nil), s.speakers...)
	relays := append([]*relay.Relay(nil), s.relays...)
	channels := make([]*Channel, 0, len(s.channels))
	for _, ch := range s.channels {
		channels = append(channels, ch)
	}
	cat := s.catalog
	s.mu.Unlock()
	for _, sp := range speakers {
		sp.Stop()
	}
	for _, r := range relays {
		r.Stop()
	}
	for _, ch := range channels {
		ch.Reb.Stop()
		ch.VAD.Close()
	}
	if cat != nil {
		cat.Stop()
	}
}
