package core

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/audio"
	"repro/internal/audiodev"
	"repro/internal/speaker"
)

// Synchronization instrumentation for the §3.2 experiments: a position-
// encoded test signal plus per-speaker taps on the DAC output let us ask
// "which stream position is each speaker playing right now?" and report
// the inter-speaker skew in milliseconds.

// posWrap is the ramp period of the position signal in frames. It must
// fit in int16 and be long relative to plausible skews (at 44.1 kHz,
// 20000 frames is ~454 ms).
const posWrap = 20000

// PositionSource generates a mono-compatible signal whose every sample
// encodes the current frame index modulo posWrap. It survives raw (and
// µ-law approximately) transport and lets the skew meter decode stream
// position from played blocks.
type PositionSource struct {
	Channels int
	frame    int64
}

// ReadSamples implements audio.Source.
func (p *PositionSource) ReadSamples(out []int16) (int, error) {
	ch := p.Channels
	if ch <= 0 {
		ch = 1
	}
	frames := len(out) / ch
	for f := 0; f < frames; f++ {
		v := int16(p.frame % posWrap)
		for c := 0; c < ch; c++ {
			out[f*ch+c] = v
		}
		p.frame++
	}
	return frames * ch, nil
}

// playRecord is one data block as played by a speaker's DAC.
type playRecord struct {
	at     time.Time
	pos    int64 // stream frame index at block start (mod posWrap)
	frames int
	rate   int
}

// SkewMeter records DAC output of multiple speakers playing the same
// position-encoded stream and computes pairwise playback skew.
type SkewMeter struct {
	mu      sync.Mutex
	records map[string][]playRecord
}

// NewSkewMeter returns an empty meter.
func NewSkewMeter() *SkewMeter {
	return &SkewMeter{records: make(map[string][]playRecord)}
}

// Attach taps a speaker's DAC output under the given name.
func (m *SkewMeter) Attach(name string, sp *speaker.Speaker) {
	sp.OnPlay(func(b audiodev.PlayedBlock) {
		if b.Silence || len(b.Data) == 0 {
			return
		}
		samples := audio.Decode(b.Params, b.Data)
		if len(samples) == 0 {
			return
		}
		rec := playRecord{
			at:     b.Time,
			pos:    int64(samples[0]),
			frames: len(samples) / b.Params.Channels,
			rate:   b.Params.SampleRate,
		}
		m.mu.Lock()
		m.records[name] = append(m.records[name], rec)
		m.mu.Unlock()
	})
}

// positionAt returns the stream position (mod posWrap) the named speaker
// was playing at time t, and whether t fell inside a played block.
func (m *SkewMeter) positionAt(name string, t time.Time) (float64, bool) {
	m.mu.Lock()
	recs := m.records[name]
	m.mu.Unlock()
	// Records are appended in time order.
	i := sort.Search(len(recs), func(i int) bool { return recs[i].at.After(t) })
	if i == 0 {
		return 0, false
	}
	r := recs[i-1]
	off := t.Sub(r.at)
	blockDur := time.Duration(r.frames) * time.Second / time.Duration(r.rate)
	if off < 0 || off > blockDur {
		return 0, false
	}
	frames := float64(off) * float64(r.rate) / float64(time.Second)
	return math.Mod(float64(r.pos)+frames, posWrap), true
}

// wrapDiff returns the minimal signed difference a-b on the posWrap ring.
func wrapDiff(a, b float64) float64 {
	d := math.Mod(a-b+posWrap*1.5, posWrap) - posWrap/2
	return d
}

// Skew samples the position difference between two speakers at the given
// times and returns the per-sample skew in milliseconds (positive: a is
// ahead of b). Times where either speaker was not playing are skipped.
func (m *SkewMeter) Skew(a, b string, times []time.Time) []float64 {
	var out []float64
	m.mu.Lock()
	var rate int
	if recs := m.records[a]; len(recs) > 0 {
		rate = recs[0].rate
	}
	m.mu.Unlock()
	if rate == 0 {
		return nil
	}
	for _, t := range times {
		pa, oka := m.positionAt(a, t)
		pb, okb := m.positionAt(b, t)
		if !oka || !okb {
			continue
		}
		frames := wrapDiff(pa, pb)
		out = append(out, frames*1000/float64(rate))
	}
	return out
}

// Names returns the attached speaker names with at least one record.
func (m *SkewMeter) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for n, recs := range m.records {
		if len(recs) > 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// FirstSound returns when the named speaker first played data, and
// whether it ever did.
func (m *SkewMeter) FirstSound(name string) (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	recs := m.records[name]
	if len(recs) == 0 {
		return time.Time{}, false
	}
	return recs[0].at, true
}

// SampleTimes builds n sampling instants between start and end.
func SampleTimes(start, end time.Time, n int) []time.Time {
	if n < 2 {
		return []time.Time{start}
	}
	step := end.Sub(start) / time.Duration(n-1)
	out := make([]time.Time, n)
	for i := range out {
		out[i] = start.Add(step * time.Duration(i))
	}
	return out
}
