// Package core assembles the Ethernet Speaker system: virtual audio
// devices feeding rebroadcasters, a catalog announcer, and any number of
// speakers, all sharing a clock and a network. It is the top of the
// dependency stack — what the paper's Figure 1 draws — and the substrate
// for the experiment harness in cmd/eslab and the repository benchmarks.
package core
