package core

import (
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/rebroadcast"
	"repro/internal/speaker"
	"repro/internal/vad"
)

// parseAnnounce extracts the channel names from an announce packet.
func parseAnnounce(data []byte) ([]string, error) {
	a, err := proto.UnmarshalAnnounce(data)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(a.Channels))
	for i, ci := range a.Channels {
		names[i] = ci.Name
	}
	return names, nil
}

// group returns a distinct multicast group per channel id.
func group(id int) lan.Addr {
	return lan.Addr("239.72.1." + string(rune('0'+id)) + ":5004")
}

func TestEndToEndSingleSpeaker(t *testing.T) {
	sys := NewSim(lan.SegmentConfig{Latency: 200 * time.Microsecond})
	ch, err := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "test", Group: "239.72.1.1:5004",
	}, vad.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sys.AddSpeaker(speaker.Config{
		Name: "es1", Group: "239.72.1.1:5004",
	})
	if err != nil {
		t.Fatal(err)
	}
	p := audio.CDQuality
	sys.Clock.Go("player", func() {
		if err := ch.Play(p, audio.Music(p.SampleRate, p.Channels), 3*time.Second); err != nil {
			t.Error(err)
		}
		// Play returns once the pipeline has buffered the tail; wait for
		// the rate-limited stream to actually play out.
		sys.Clock.Sleep(5 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	st := sp.Stats()
	if st.ControlPackets == 0 {
		t.Fatal("speaker saw no control packets")
	}
	if st.DataPackets == 0 {
		t.Fatal("speaker saw no data packets")
	}
	// Most of 3 seconds of CD audio should have been played (allow for
	// codec latency and the packets sent before the first control).
	want := int64(p.BytesPerSecond()) * 19 / 10
	if st.BytesPlayed < want {
		t.Fatalf("played %d bytes, want >= %d (stats %+v)", st.BytesPlayed, want, st)
	}
	if st.DroppedLate > st.DataPackets/10 {
		t.Fatalf("excessive late drops: %+v", st)
	}
	rst := ch.Reb.Stats()
	if rst.DataPackets == 0 || rst.ControlPackets == 0 {
		t.Fatalf("rebroadcaster stats: %+v", rst)
	}
	// CD-quality stream must have been compressed (§2.2 policy).
	if rst.PayloadBytes >= rst.SourceBytes {
		t.Fatalf("no compression: payload %d >= source %d", rst.PayloadBytes, rst.SourceBytes)
	}
}

func TestEndToEndRateLimited(t *testing.T) {
	// The producer must pace the stream: sending 3 seconds of audio
	// takes ~3 seconds of simulated time (§3.1).
	sys := NewSim(lan.SegmentConfig{})
	ch, _ := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "rate", Group: "239.72.1.1:5004",
	}, vad.Config{QueueBlocks: 8})
	sp, _ := sys.AddSpeaker(speaker.Config{Name: "es1", Group: "239.72.1.1:5004"})
	_ = sp
	p := audio.Voice
	start := sys.Clock.Now()
	var playDone time.Duration
	sys.Clock.Go("player", func() {
		// The song must be much longer than the pipeline's total
		// buffering (VAD ring + master queue) for the §3.1 effect.
		ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), 30*time.Second)
		playDone = sys.Clock.Since(start)
		sys.Clock.Sleep(time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()
	// Play returns after drain; the rebroadcaster's rate limiter is the
	// backpressure. Allow for the few seconds of pipeline buffering.
	if playDone < 25*time.Second {
		t.Fatalf("30s of audio drained in %v: rate limiter missing", playDone)
	}
	if playDone > 31*time.Second {
		t.Fatalf("30s of audio took %v", playDone)
	}
}

func TestEndToEndVoiceStaysRaw(t *testing.T) {
	sys := NewSim(lan.SegmentConfig{})
	ch, _ := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "voice", Group: "239.72.1.1:5004",
	}, vad.Config{})
	sys.AddSpeaker(speaker.Config{Name: "es1", Group: "239.72.1.1:5004"})
	p := audio.Voice
	sys.Clock.Go("player", func() {
		ch.Play(p, audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), 2*time.Second)
		sys.Clock.Sleep(time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()
	rst := ch.Reb.Stats()
	// Low-bitrate channels ship uncompressed (§2.2): payload == source.
	if rst.PayloadBytes != rst.SourceBytes {
		t.Fatalf("voice channel was transformed: payload %d, source %d",
			rst.PayloadBytes, rst.SourceBytes)
	}
}

func TestEndToEndTwoSpeakersSynchronized(t *testing.T) {
	// Two speakers started together play within epsilon of each other
	// (§3.2).
	sys := NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, _ := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "sync", Group: "239.72.1.1:5004", Codec: "raw",
	}, vad.Config{})
	meter := NewSkewMeter()
	for _, name := range []string{"es1", "es2"} {
		sp, err := sys.AddSpeaker(speaker.Config{Name: name, Group: "239.72.1.1:5004"})
		if err != nil {
			t.Fatal(err)
		}
		meter.Attach(name, sp)
	}
	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	start := sys.Clock.Now()
	sys.Clock.Go("player", func() {
		ch.Play(p, &PositionSource{Channels: 1}, 4*time.Second)
		// Wait for the rate-limited stream to play out before shutdown.
		sys.Clock.Sleep(6 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	times := SampleTimes(start.Add(2*time.Second), start.Add(4*time.Second), 50)
	skews := meter.Skew("es1", "es2", times)
	if len(skews) < 10 {
		t.Fatalf("only %d skew samples", len(skews))
	}
	for _, ms := range skews {
		if ms < -15 || ms > 15 {
			t.Fatalf("skew %v ms beyond epsilon band; samples %v", ms, skews)
		}
	}
}

func TestEndToEndLateJoinerConverges(t *testing.T) {
	// A speaker that tunes in mid-stream must converge onto the same
	// schedule as one that was there from the start (§3.2).
	sys := NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, _ := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "late", Group: "239.72.1.1:5004", Codec: "raw",
		ControlInterval: 500 * time.Millisecond,
	}, vad.Config{})
	meter := NewSkewMeter()
	sp1, _ := sys.AddSpeaker(speaker.Config{Name: "early", Group: "239.72.1.1:5004"})
	meter.Attach("early", sp1)

	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	start := sys.Clock.Now()
	sys.Clock.Go("player", func() {
		ch.Play(p, &PositionSource{Channels: 1}, 6*time.Second)
		sys.Clock.Sleep(8 * time.Second)
		sys.Shutdown()
	})
	sys.Clock.Go("latecomer", func() {
		sys.Clock.Sleep(2 * time.Second)
		sp2, err := sys.AddSpeaker(speaker.Config{Name: "late", Group: "239.72.1.1:5004"})
		if err != nil {
			t.Error(err)
			return
		}
		meter.Attach("late", sp2)
	})
	sys.Sim.WaitIdle()

	first, ok := meter.FirstSound("late")
	if !ok {
		t.Fatal("late joiner never played")
	}
	// It joined at t+2s and had to wait for a control packet — first
	// sound within ~1.5s of joining.
	if d := first.Sub(start.Add(2 * time.Second)); d > 1500*time.Millisecond {
		t.Fatalf("late joiner took %v to start", d)
	}
	times := SampleTimes(first.Add(time.Second), start.Add(6*time.Second), 30)
	skews := meter.Skew("early", "late", times)
	if len(skews) < 5 {
		t.Fatalf("only %d skew samples", len(skews))
	}
	for _, ms := range skews {
		if ms < -15 || ms > 15 {
			t.Fatalf("late joiner skew %v ms; samples %v", ms, skews)
		}
	}
}

func TestEndToEndNoSyncDrifts(t *testing.T) {
	// Ablation: with NoSync, a late joiner plays immediately on arrival
	// and stays offset from the early speaker by far more than epsilon.
	sys := NewSim(lan.SegmentConfig{Latency: 100 * time.Microsecond})
	ch, _ := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "nosync", Group: "239.72.1.1:5004", Codec: "raw",
		ControlInterval: 250 * time.Millisecond,
		Lead:            500 * time.Millisecond,
		Preroll:         400 * time.Millisecond,
	}, vad.Config{})
	meter := NewSkewMeter()
	sp1, _ := sys.AddSpeaker(speaker.Config{Name: "early", Group: "239.72.1.1:5004", NoSync: true})
	meter.Attach("early", sp1)
	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	start := sys.Clock.Now()
	sys.Clock.Go("player", func() {
		ch.Play(p, &PositionSource{Channels: 1}, 6*time.Second)
		sys.Clock.Sleep(8 * time.Second)
		sys.Shutdown()
	})
	sys.Clock.Go("latecomer", func() {
		sys.Clock.Sleep(2 * time.Second)
		sp2, _ := sys.AddSpeaker(speaker.Config{Name: "late", Group: "239.72.1.1:5004", NoSync: true})
		meter.Attach("late", sp2)
	})
	sys.Sim.WaitIdle()

	first, ok := meter.FirstSound("late")
	if !ok {
		t.Fatal("late joiner never played")
	}
	times := SampleTimes(first.Add(time.Second), start.Add(6*time.Second), 30)
	skews := meter.Skew("early", "late", times)
	if len(skews) < 5 {
		t.Fatalf("only %d skew samples", len(skews))
	}
	// Without sync the skew should reflect the buffering offset: tens to
	// hundreds of ms.
	var worst float64
	for _, ms := range skews {
		if ms > worst {
			worst = ms
		}
		if -ms > worst {
			worst = -ms
		}
	}
	if worst < 20 {
		t.Fatalf("NoSync speakers unexpectedly aligned: worst skew %.1f ms", worst)
	}
}

func TestEndToEndReconfiguration(t *testing.T) {
	// Changing stream parameters mid-flight bumps the epoch; the speaker
	// follows the new configuration.
	sys := NewSim(lan.SegmentConfig{})
	ch, _ := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "reconf", Group: "239.72.1.1:5004",
		ControlInterval: 200 * time.Millisecond,
	}, vad.Config{})
	sp, _ := sys.AddSpeaker(speaker.Config{Name: "es1", Group: "239.72.1.1:5004"})
	sys.Clock.Go("player", func() {
		ch.Play(audio.Voice, audio.NewTone(8000, 1, 300, 0.5), time.Second)
		sys.Clock.Sleep(1500 * time.Millisecond)
		ch.Play(audio.CDQuality, audio.Music(44100, 2), time.Second)
		sys.Clock.Sleep(3 * time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()
	if got := ch.Reb.Epoch(); got < 2 {
		t.Fatalf("epoch = %d, want >= 2", got)
	}
	// Speaker must have ended on the CD config.
	if got := sp.Device().Params(); got != audio.CDQuality {
		t.Fatalf("speaker params = %v", got)
	}
	st := sp.Stats()
	if st.BytesPlayed == 0 {
		t.Fatal("nothing played after reconfiguration")
	}
}

func TestEndToEndCatalog(t *testing.T) {
	sys := NewSim(lan.SegmentConfig{})
	if err := sys.StartCatalog(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sys.AddChannel(rebroadcast.Config{ID: 1, Name: "one", Group: "239.72.1.1:5004"}, vad.Config{})
	sys.AddChannel(rebroadcast.Config{ID: 2, Name: "two", Group: "239.72.1.2:5004"}, vad.Config{})

	// A listener on the catalog group sees both channels without joining
	// either audio group (§4.3).
	conn, err := sys.Net.Attach("10.0.9.1:5003")
	if err != nil {
		t.Fatal(err)
	}
	conn.Join(CatalogGroup)
	var names []string
	done := make(chan struct{})
	sys.Clock.Go("listener", func() {
		defer close(done)
		defer conn.Close()
		deadline := sys.Clock.Now().Add(2 * time.Second)
		for sys.Clock.Now().Before(deadline) {
			pkt, err := conn.Recv(500 * time.Millisecond)
			if err != nil {
				continue
			}
			if a, err := parseAnnounce(pkt.Data); err == nil && len(a) == 2 {
				names = a
				return
			}
		}
	})
	// The producer tasks run until shut down; wait only for the
	// listener, then stop everything.
	<-done
	sys.Shutdown()
	sys.Sim.WaitIdle()
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Fatalf("catalog names = %v", names)
	}
}

func TestEndToEndChannelSwitch(t *testing.T) {
	// A speaker tunes from channel 1 to channel 2 and plays the new
	// stream after the next control packet.
	sys := NewSim(lan.SegmentConfig{})
	ch1, _ := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "one", Group: "239.72.1.1:5004", ControlInterval: 200 * time.Millisecond,
	}, vad.Config{})
	ch2, _ := sys.AddChannel(rebroadcast.Config{
		ID: 2, Name: "two", Group: "239.72.1.2:5004", ControlInterval: 200 * time.Millisecond,
	}, vad.Config{})
	sp, _ := sys.AddSpeaker(speaker.Config{Name: "es1", Group: "239.72.1.1:5004"})

	p := audio.Voice
	sys.Clock.Go("player1", func() {
		ch1.Play(p, audio.NewTone(8000, 1, 300, 0.5), 5*time.Second)
	})
	sys.Clock.Go("player2", func() {
		ch2.Play(p, audio.NewTone(8000, 1, 600, 0.5), 5*time.Second)
	})
	var playedBeforeSwitch, playedAfterSwitch int64
	sys.Clock.Go("tuner", func() {
		sys.Clock.Sleep(2 * time.Second)
		playedBeforeSwitch = sp.Stats().BytesPlayed
		if err := sp.Tune("239.72.1.2:5004"); err != nil {
			t.Error(err)
		}
		sys.Clock.Sleep(2 * time.Second)
		playedAfterSwitch = sp.Stats().BytesPlayed - playedBeforeSwitch
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()
	if playedBeforeSwitch == 0 {
		t.Fatal("nothing played on channel 1")
	}
	if playedAfterSwitch == 0 {
		t.Fatal("nothing played after switching to channel 2")
	}
	if sp.Stats().Tunes != 1 {
		t.Fatalf("tunes = %d", sp.Stats().Tunes)
	}
}

func TestDuplicateChannelRejected(t *testing.T) {
	sys := NewSim(lan.SegmentConfig{})
	if _, err := sys.AddChannel(rebroadcast.Config{ID: 1, Group: "239.72.1.1:5004"}, vad.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddChannel(rebroadcast.Config{ID: 1, Group: "239.72.1.2:5004"}, vad.Config{}); err == nil {
		t.Fatal("duplicate channel id accepted")
	}
	sys.Shutdown()
	sys.Sim.WaitIdle()
}

func TestPositionSourceEncodesRamp(t *testing.T) {
	src := &PositionSource{Channels: 2}
	buf := make([]int16, 20)
	src.ReadSamples(buf)
	for f := 0; f < 10; f++ {
		if buf[2*f] != int16(f) || buf[2*f+1] != int16(f) {
			t.Fatalf("frame %d = (%d,%d)", f, buf[2*f], buf[2*f+1])
		}
	}
}

func TestSkewMeterWrapDiff(t *testing.T) {
	if d := wrapDiff(10, posWrap-10); d != 20 {
		t.Fatalf("wrapDiff across ring = %v, want 20", d)
	}
	if d := wrapDiff(100, 50); d != 50 {
		t.Fatalf("wrapDiff = %v, want 50", d)
	}
	if d := wrapDiff(50, 100); d != -50 {
		t.Fatalf("wrapDiff = %v, want -50", d)
	}
}
