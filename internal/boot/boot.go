package boot

import (
	"archive/tar"
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// FS is a tiny in-memory filesystem: path -> contents. Paths are
// slash-separated and cleaned.
type FS map[string][]byte

// Clone deep-copies the filesystem.
func (f FS) Clone() FS {
	out := make(FS, len(f))
	for p, data := range f {
		out[p] = append([]byte(nil), data...)
	}
	return out
}

// Paths returns the sorted file list.
func (f FS) Paths() []string {
	out := make([]string, 0, len(f))
	for p := range f {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// clean canonicalizes a path and rejects escapes.
func clean(p string) (string, error) {
	c := path.Clean("/" + p)
	if strings.Contains(c, "..") {
		return "", fmt.Errorf("boot: path %q escapes the root", p)
	}
	return strings.TrimPrefix(c, "/"), nil
}

// PackTar serializes an FS as a tar archive (sorted for determinism).
func PackTar(fs FS) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, p := range fs.Paths() {
		hdr := &tar.Header{Name: p, Mode: 0o644, Size: int64(len(fs[p]))}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, err
		}
		if _, err := tw.Write(fs[p]); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnpackTar parses a tar archive into an FS, rejecting path escapes.
func UnpackTar(data []byte) (FS, error) {
	fs := make(FS)
	tr := tar.NewReader(bytes.NewReader(data))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return fs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("boot: reading tar: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		name, err := clean(hdr.Name)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			return nil, err
		}
		fs[name] = body
	}
}

// Overlay returns base with overlay's files written over it (§2.4: "the
// machine-specific information overwrites any common configuration").
func Overlay(base, over FS) FS {
	out := base.Clone()
	for p, data := range over {
		out[p] = append([]byte(nil), data...)
	}
	return out
}

// Lease is a DHCP-style assignment.
type Lease struct {
	MAC     string
	IP      string
	Gateway string
	// BootServer is where the kernel/ramdisk and config come from.
	BootServer string
}

// Ramdisk is the network-booted image: a kernel version plus the root
// filesystem with the common programs and skeleton configuration. The
// embedded server key authenticates configuration bundles (the ssh host
// key of §2.4).
type Ramdisk struct {
	Version   int
	Root      FS
	ServerKey []byte
}

// Server is the boot server: leases, the current ramdisk, and per-MAC
// configuration bundles.
type Server struct {
	mu        sync.Mutex
	subnet    string // e.g. "10.0.7." — hosts allocated sequentially
	nextHost  int
	leases    map[string]Lease // by MAC
	ramdisk   Ramdisk
	key       []byte
	configs   map[string]FS // per-MAC configuration overlays
	common    FS            // skeleton /etc shipped in the ramdisk
	downloads int64
}

// NewServer creates a boot server for a subnet prefix such as "10.0.7.".
func NewServer(subnet string, key []byte) *Server {
	s := &Server{
		subnet:   subnet,
		nextHost: 10,
		leases:   make(map[string]Lease),
		key:      append([]byte(nil), key...),
		configs:  make(map[string]FS),
		common:   make(FS),
	}
	s.rebuildRamdisk()
	return s
}

// SetCommonConfig installs the skeleton configuration shared by all
// speakers and rebuilds the ramdisk (a new image version).
func (s *Server) SetCommonConfig(fs FS) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.common = fs.Clone()
	s.rebuildRamdisk()
}

// SetMachineConfig installs one machine's configuration overlay.
func (s *Server) SetMachineConfig(mac string, fs FS) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.configs[mac] = fs.Clone()
}

// rebuildRamdisk regenerates the image, bumping the version. Caller
// holds s.mu.
func (s *Server) rebuildRamdisk() {
	root := make(FS)
	// The programs common to every ES (§2.4: "a set of utilities which
	// include the rebroadcast software").
	root["bin/esd"] = []byte("esd binary\n")
	root["bin/esctl"] = []byte("esctl binary\n")
	for p, data := range s.common {
		root["etc/"+p] = append([]byte(nil), data...)
	}
	s.ramdisk = Ramdisk{
		Version:   s.ramdisk.Version + 1,
		Root:      root,
		ServerKey: append([]byte(nil), s.key...),
	}
}

// RamdiskVersion returns the current image version.
func (s *Server) RamdiskVersion() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ramdisk.Version
}

// Downloads counts config bundle fetches (for update-rollout tests).
func (s *Server) Downloads() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.downloads
}

// DHCP assigns (or renews) a lease for a MAC address.
func (s *Server) DHCP(mac string) Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.leases[mac]; ok {
		return l
	}
	l := Lease{
		MAC:        mac,
		IP:         fmt.Sprintf("%s%d", s.subnet, s.nextHost),
		Gateway:    s.subnet + "1",
		BootServer: s.subnet + "2",
	}
	s.nextHost++
	s.leases[mac] = l
	return l
}

// FetchRamdisk is the PXE/TFTP stage: the kernel+ramdisk image.
func (s *Server) FetchRamdisk() Ramdisk {
	s.mu.Lock()
	defer s.mu.Unlock()
	rd := s.ramdisk
	rd.Root = rd.Root.Clone()
	rd.ServerKey = append([]byte(nil), rd.ServerKey...)
	return rd
}

// FetchConfig is the scp stage: a signed tar of the machine's overlay.
// The MAC-keyed bundle is signed with the server key so the client can
// verify it against the key baked into its ramdisk.
func (s *Server) FetchConfig(mac string) (tarData, sig []byte, err error) {
	s.mu.Lock()
	cfg := s.configs[mac]
	key := s.key
	s.downloads++
	s.mu.Unlock()
	if cfg == nil {
		cfg = make(FS) // no machine-specific config: empty overlay
	}
	tarData, err = PackTar(cfg)
	if err != nil {
		return nil, nil, err
	}
	m := hmac.New(sha256.New, key)
	m.Write(tarData)
	return tarData, m.Sum(nil), nil
}

// Machine is one Ethernet Speaker box going through the boot sequence.
type Machine struct {
	MAC string

	// Populated by Boot.
	Lease   Lease
	Root    FS
	Version int
	Booted  bool
}

// Boot runs the §2.4 sequence: DHCP → ramdisk → verified config tar →
// overlay over the skeleton /etc. It is idempotent; rebooting picks up
// new ramdisk versions and configuration.
func (m *Machine) Boot(s *Server) error {
	m.Booted = false
	m.Lease = s.DHCP(m.MAC)
	rd := s.FetchRamdisk()
	tarData, sig, err := s.FetchConfig(m.MAC)
	if err != nil {
		return fmt.Errorf("boot: fetching config: %w", err)
	}
	// Verify against the key in the ramdisk — a tampered or foreign
	// bundle must not boot (§5.1's "inherently unsafe platform" worry).
	mac := hmac.New(sha256.New, rd.ServerKey)
	mac.Write(tarData)
	if !hmac.Equal(mac.Sum(nil), sig) {
		return fmt.Errorf("boot: config signature mismatch for %s", m.MAC)
	}
	overlay, err := UnpackTar(tarData)
	if err != nil {
		return err
	}
	// Expand the config over the skeleton: machine-specific wins.
	prefixed := make(FS, len(overlay))
	for p, data := range overlay {
		prefixed["etc/"+p] = data
	}
	m.Root = Overlay(rd.Root, prefixed)
	m.Version = rd.Version
	m.Booted = true
	return nil
}

// File reads a file from the machine's booted filesystem.
func (m *Machine) File(p string) ([]byte, bool) {
	c, err := clean(p)
	if err != nil {
		return nil, false
	}
	data, ok := m.Root[c]
	return data, ok
}
