// Package boot simulates the Ethernet Speaker provisioning path of
// §2.4: maintenance-free speakers netboot a ramdisk kernel (PXE), obtain
// their network identity from a DHCP-style lease server, and fetch a
// machine-specific configuration tar that is expanded over the ramdisk's
// skeleton /etc — machine-specific files overwrite the common ones. The
// boot server's public key lives in the ramdisk, standing in for the ssh
// host keys the paper bakes in for scp.
package boot
