package boot

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"strings"
	"testing"
)

// hmacSum mirrors the signature computation in Machine.Boot.
func hmacSum(key, data []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	return m.Sum(nil)
}

func TestTarRoundTrip(t *testing.T) {
	fs := FS{
		"es.conf":        []byte("channel=239.72.1.1:5004\n"),
		"keys/server":    []byte("key material"),
		"empty/file":     nil,
		"deep/a/b/c.txt": []byte("x"),
	}
	data, err := PackTar(fs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnpackTar(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fs) {
		t.Fatalf("got %d files, want %d", len(got), len(fs))
	}
	for p, want := range fs {
		if !bytes.Equal(got[p], want) {
			t.Fatalf("file %q = %q, want %q", p, got[p], want)
		}
	}
}

func TestTarDeterministic(t *testing.T) {
	fs := FS{"b": []byte("2"), "a": []byte("1"), "c": []byte("3")}
	d1, _ := PackTar(fs)
	d2, _ := PackTar(fs)
	if !bytes.Equal(d1, d2) {
		t.Fatal("tar packing not deterministic")
	}
}

func TestUnpackNeutralizesEscapes(t *testing.T) {
	// A tar entry named "../evil" must not escape: rooted cleaning maps
	// it inside the tree (or rejects it), never above it.
	bad, err := PackTar(FS{"../evil": []byte("pwn")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnpackTar(bad)
	if err == nil {
		for p := range got {
			if strings.Contains(p, "..") {
				t.Fatalf("escaping path %q survived", p)
			}
		}
	}
	if _, err := UnpackTar([]byte("not a tar at all, definitely not")); err == nil {
		t.Fatal("garbage tar accepted")
	}
}

func TestOverlayPrecedence(t *testing.T) {
	base := FS{"etc/a": []byte("common"), "etc/b": []byte("keep")}
	over := FS{"etc/a": []byte("machine-specific"), "etc/c": []byte("new")}
	got := Overlay(base, over)
	if string(got["etc/a"]) != "machine-specific" {
		t.Fatal("overlay did not overwrite")
	}
	if string(got["etc/b"]) != "keep" {
		t.Fatal("overlay dropped base file")
	}
	if string(got["etc/c"]) != "new" {
		t.Fatal("overlay dropped new file")
	}
	// The base must be untouched.
	if string(base["etc/a"]) != "common" {
		t.Fatal("overlay mutated base")
	}
}

func TestDHCPStableLeases(t *testing.T) {
	s := NewServer("10.0.7.", []byte("k"))
	l1 := s.DHCP("00:11:22:33:44:55")
	l2 := s.DHCP("00:11:22:33:44:66")
	if l1.IP == l2.IP {
		t.Fatal("two machines share an IP")
	}
	if again := s.DHCP("00:11:22:33:44:55"); again.IP != l1.IP {
		t.Fatal("lease not stable across renewals")
	}
	if !strings.HasPrefix(l1.IP, "10.0.7.") {
		t.Fatalf("IP %q outside subnet", l1.IP)
	}
}

func TestBootSequence(t *testing.T) {
	s := NewServer("10.0.7.", []byte("server key"))
	s.SetCommonConfig(FS{
		"es.conf": []byte("catalog=239.72.0.1:5003\nchannel=239.72.1.1:5004\n"),
		"hosts":   []byte("10.0.7.2 bootserver\n"),
	})
	s.SetMachineConfig("aa:bb", FS{
		"es.conf": []byte("catalog=239.72.0.1:5003\nchannel=239.72.1.9:5004\n"),
	})

	m1 := &Machine{MAC: "aa:bb"}
	if err := m1.Boot(s); err != nil {
		t.Fatal(err)
	}
	if !m1.Booted {
		t.Fatal("not booted")
	}
	// Machine-specific config wins.
	conf, ok := m1.File("etc/es.conf")
	if !ok || !strings.Contains(string(conf), "239.72.1.9") {
		t.Fatalf("es.conf = %q", conf)
	}
	// Common files survive.
	if _, ok := m1.File("etc/hosts"); !ok {
		t.Fatal("common file missing")
	}
	if _, ok := m1.File("bin/esd"); !ok {
		t.Fatal("ramdisk binary missing")
	}

	// A machine with no specific config gets pure skeleton.
	m2 := &Machine{MAC: "cc:dd"}
	if err := m2.Boot(s); err != nil {
		t.Fatal(err)
	}
	conf2, _ := m2.File("etc/es.conf")
	if !strings.Contains(string(conf2), "239.72.1.1") {
		t.Fatalf("skeleton es.conf = %q", conf2)
	}
}

func TestBootRejectsTamperedConfig(t *testing.T) {
	s := NewServer("10.0.7.", []byte("real key"))
	attacker := NewServer("10.0.7.", []byte("attacker key"))
	attacker.SetMachineConfig("aa:bb", FS{"es.conf": []byte("channel=evil\n")})

	// Fetch the ramdisk from the real server but config from the
	// attacker: signature check must fail.
	m := &Machine{MAC: "aa:bb"}
	rd := s.FetchRamdisk()
	tarData, sig, err := attacker.FetchConfig("aa:bb")
	if err != nil {
		t.Fatal(err)
	}
	// Inline what Boot does, with the mixed sources.
	okBoot := func() bool {
		mac := hmacSum(rd.ServerKey, tarData)
		return bytes.Equal(mac, sig)
	}
	if okBoot() {
		t.Fatal("foreign config verified against real ramdisk key")
	}
	_ = m
}

func TestRebootPicksUpNewImage(t *testing.T) {
	s := NewServer("10.0.7.", []byte("k"))
	s.SetCommonConfig(FS{"motd": []byte("v1")})
	m := &Machine{MAC: "aa:bb"}
	if err := m.Boot(s); err != nil {
		t.Fatal(err)
	}
	v1 := m.Version
	// Software update: new common config = new ramdisk version; speakers
	// pick it up on reboot without a visit (§2.4).
	s.SetCommonConfig(FS{"motd": []byte("v2")})
	if err := m.Boot(s); err != nil {
		t.Fatal(err)
	}
	if m.Version <= v1 {
		t.Fatalf("version did not advance: %d -> %d", v1, m.Version)
	}
	motd, _ := m.File("etc/motd")
	if string(motd) != "v2" {
		t.Fatalf("motd = %q", motd)
	}
}

func TestFleetBoot(t *testing.T) {
	s := NewServer("10.0.7.", []byte("k"))
	s.SetCommonConfig(FS{"es.conf": []byte("channel=239.72.1.1:5004\n")})
	ips := map[string]bool{}
	for i := 0; i < 50; i++ {
		m := &Machine{MAC: string(rune('a'+i%26)) + string(rune('0'+i/26))}
		if err := m.Boot(s); err != nil {
			t.Fatal(err)
		}
		if ips[m.Lease.IP] {
			t.Fatalf("duplicate IP %s", m.Lease.IP)
		}
		ips[m.Lease.IP] = true
	}
	if s.Downloads() != 50 {
		t.Fatalf("downloads = %d", s.Downloads())
	}
}

func TestFileRejectsEscapes(t *testing.T) {
	m := &Machine{Root: FS{"etc/x": []byte("1")}}
	if _, ok := m.File("etc/../etc/x"); !ok {
		t.Fatal("clean path equivalent rejected")
	}
	if _, ok := m.File("../../secret"); ok {
		t.Fatal("escape accepted")
	}
}
