package dsp

import (
	"fmt"
	"math"
	"sync"
)

// MDCT implements the modified discrete cosine transform used by the OVL
// codec: 2N input samples produce N coefficients, consecutive frames
// overlap by N samples, and a Princen-Bradley (sine) window gives perfect
// reconstruction through IMDCT + overlap-add (time-domain alias
// cancellation).
//
// The forward and inverse transforms are table-driven; basis tables are
// cached per size and shared between codec instances, so encoding eight
// CD-quality streams (the paper's Figure 4 workload) pays for the tables
// once.
type MDCT struct {
	n       int         // number of coefficients
	window  []float64   // 2n-point sine window
	forward [][]float64 // [k][n'] basis, k < n, n' < 2n
	inverse [][]float64 // [n'][k] basis with 2/n scale folded in
}

var mdctCache sync.Map // int -> *MDCT

// NewMDCT returns the (shared) MDCT plan producing n coefficients from
// 2n-sample windows. n must be a positive even number.
func NewMDCT(n int) (*MDCT, error) {
	if n <= 0 || n%2 != 0 {
		return nil, fmt.Errorf("dsp: MDCT size %d must be positive and even", n)
	}
	if v, ok := mdctCache.Load(n); ok {
		return v.(*MDCT), nil
	}
	m := &MDCT{n: n}
	two := 2 * n
	m.window = make([]float64, two)
	for i := 0; i < two; i++ {
		m.window[i] = math.Sin(math.Pi / float64(two) * (float64(i) + 0.5))
	}
	m.forward = make([][]float64, n)
	for k := 0; k < n; k++ {
		row := make([]float64, two)
		for j := 0; j < two; j++ {
			row[j] = math.Cos(math.Pi / float64(n) *
				(float64(j) + 0.5 + float64(n)/2) * (float64(k) + 0.5))
		}
		m.forward[k] = row
	}
	scale := 2.0 / float64(n)
	m.inverse = make([][]float64, two)
	for j := 0; j < two; j++ {
		col := make([]float64, n)
		for k := 0; k < n; k++ {
			col[k] = scale * m.forward[k][j]
		}
		m.inverse[j] = col
	}
	actual, _ := mdctCache.LoadOrStore(n, m)
	return actual.(*MDCT), nil
}

// N returns the coefficient count (half the window length).
func (m *MDCT) N() int { return m.n }

// WindowLen returns the input window length 2N.
func (m *MDCT) WindowLen() int { return 2 * m.n }

// Forward computes the windowed MDCT of the 2N-sample input into the
// N-coefficient output slice.
func (m *MDCT) Forward(in []float64, out []float64) {
	two := 2 * m.n
	if len(in) != two || len(out) != m.n {
		panic(fmt.Sprintf("dsp: MDCT Forward lengths in=%d out=%d, want %d/%d",
			len(in), len(out), two, m.n))
	}
	// Apply the analysis window into a scratch copy.
	wx := make([]float64, two)
	for i := 0; i < two; i++ {
		wx[i] = in[i] * m.window[i]
	}
	for k := 0; k < m.n; k++ {
		row := m.forward[k]
		var acc float64
		for j := 0; j < two; j++ {
			acc += wx[j] * row[j]
		}
		out[k] = acc
	}
}

// InverseOverlap computes the windowed IMDCT of coeffs and overlap-adds
// it into out, which must hold 2N samples: the first N samples complete
// the previous frame's region, the last N are the new half to carry as
// overlap into the next call.
func (m *MDCT) InverseOverlap(coeffs []float64, out []float64) {
	two := 2 * m.n
	if len(coeffs) != m.n || len(out) != two {
		panic(fmt.Sprintf("dsp: MDCT Inverse lengths coeffs=%d out=%d, want %d/%d",
			len(coeffs), len(out), m.n, two))
	}
	for j := 0; j < two; j++ {
		col := m.inverse[j]
		var acc float64
		for k := 0; k < m.n; k++ {
			acc += coeffs[k] * col[k]
		}
		out[j] += acc * m.window[j] // synthesis window, overlap-added
	}
}
