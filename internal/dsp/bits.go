package dsp

import (
	"errors"
	"fmt"
)

// BitWriter packs bits MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbit
	nbit uint   // number of pending bits in cur (< 8 after flushing)
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBits writes the low n bits of v, MSB first. n must be <= 57.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 57 {
		panic(fmt.Sprintf("dsp: WriteBits n=%d > 57", n))
	}
	w.cur = w.cur<<n | (v & (1<<n - 1))
	w.nbit += n
	for w.nbit >= 8 {
		w.nbit -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nbit))
	}
}

// WriteBit writes a single bit.
func (w *BitWriter) WriteBit(b uint) { w.WriteBits(uint64(b&1), 1) }

// WriteUnary writes v as v one-bits followed by a zero bit.
func (w *BitWriter) WriteUnary(v uint32) {
	for v >= 32 {
		w.WriteBits(0xFFFFFFFF, 32)
		v -= 32
	}
	// v ones then a zero: value (2^v - 1) << 1 in v+1 bits.
	w.WriteBits(uint64(1)<<(v+1)-2, uint(v)+1)
}

// Bytes returns the encoded bytes, padding the final partial byte with
// zero bits. The writer remains usable only for Bytes calls afterwards.
func (w *BitWriter) Bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nbit)))
		w.nbit = 0
		w.cur = 0
	}
	return w.buf
}

// Len returns the current length in bits.
func (w *BitWriter) Len() int { return len(w.buf)*8 + int(w.nbit) }

// ErrBitUnderflow is returned when a read runs past the end of input.
var ErrBitUnderflow = errors.New("dsp: bit reader underflow")

// BitReader unpacks MSB-first bits from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int    // next byte index
	cur  uint64 // buffered bits, right-aligned
	nbit uint
}

// NewBitReader returns a reader over data.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

func (r *BitReader) fill(need uint) error {
	for r.nbit < need {
		if r.pos >= len(r.buf) {
			return ErrBitUnderflow
		}
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.nbit += 8
	}
	return nil
}

// ReadBits reads n bits MSB-first. n must be <= 57.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 57 {
		return 0, fmt.Errorf("dsp: ReadBits n=%d > 57", n)
	}
	if err := r.fill(n); err != nil {
		return 0, err
	}
	r.nbit -= n
	v := r.cur >> r.nbit & (1<<n - 1)
	return v, nil
}

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadUnary reads a unary-coded value (count of one-bits before a zero).
// Values above maxUnary are rejected to bound the cost of hostile input.
const maxUnary = 1 << 20

func (r *BitReader) ReadUnary() (uint32, error) {
	var v uint32
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
		if v > maxUnary {
			return 0, errors.New("dsp: unary run too long")
		}
	}
}

// Remaining reports how many unread bits are left.
func (r *BitReader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nbit)
}
