package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBit(1)
	w.WriteBits(0, 7)
	w.WriteBits(0x1FFFFFFFFFFFFF, 53)
	data := w.Bytes()
	r := NewBitReader(data)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("got %b", v)
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Fatalf("got %x", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatalf("got %d", v)
	}
	if v, _ := r.ReadBits(7); v != 0 {
		t.Fatalf("got %d", v)
	}
	if v, _ := r.ReadBits(53); v != 0x1FFFFFFFFFFFFF {
		t.Fatalf("got %x", v)
	}
}

func TestBitRoundTripProperty(t *testing.T) {
	f := func(vals []uint32, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewBitWriter()
		want := make([]uint64, n)
		ws := make([]uint, n)
		for i := 0; i < n; i++ {
			width := uint(widths[i]%32) + 1
			v := uint64(vals[i]) & (1<<width - 1)
			w.WriteBits(v, width)
			want[i], ws[i] = v, width
		}
		r := NewBitReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(ws[i])
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitReaderUnderflow(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrBitUnderflow {
		t.Fatalf("got %v, want underflow", err)
	}
}

func TestBitReaderRejectsWideRead(t *testing.T) {
	r := NewBitReader(make([]byte, 16))
	if _, err := r.ReadBits(58); err == nil {
		t.Fatal("expected error for 58-bit read")
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 2, 31, 32, 33, 100, 1000} {
		w := NewBitWriter()
		w.WriteUnary(v)
		r := NewBitReader(w.Bytes())
		got, err := r.ReadUnary()
		if err != nil || got != v {
			t.Fatalf("unary %d -> (%d, %v)", v, got, err)
		}
	}
}

func TestUnaryHostileInputBounded(t *testing.T) {
	// All-ones input must terminate with an error, not spin.
	data := make([]byte, maxUnary/8+16)
	for i := range data {
		data[i] = 0xFF
	}
	r := NewBitReader(data)
	if _, err := r.ReadUnary(); err == nil {
		t.Fatal("expected error on endless unary run")
	}
}

func TestZigZag(t *testing.T) {
	cases := map[int32]uint32{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, 32767: 65534, -32768: 65535}
	for v, want := range cases {
		if got := ZigZag(v); got != want {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, want)
		}
		if back := UnZigZag(want); back != v {
			t.Errorf("UnZigZag(%d) = %d, want %d", want, back, v)
		}
	}
	f := func(v int32) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRiceRoundTripAllK(t *testing.T) {
	values := []uint32{0, 1, 2, 3, 7, 8, 100, 1023, 65535, 1 << 20, 1<<31 - 1}
	for k := uint(0); k <= 16; k++ {
		w := NewBitWriter()
		for _, v := range values {
			RiceEncode(w, v, k)
		}
		r := NewBitReader(w.Bytes())
		for _, v := range values {
			got, err := RiceDecode(r, k)
			if err != nil {
				t.Fatalf("k=%d v=%d: %v", k, v, err)
			}
			if got != v {
				t.Fatalf("k=%d: got %d, want %d", k, got, v)
			}
		}
	}
}

func TestRiceEscapePreventsBlowup(t *testing.T) {
	// A huge value with k=0 must use the escape, not megabytes of unary.
	w := NewBitWriter()
	RiceEncode(w, 1<<30, 0)
	if len(w.Bytes()) > 16 {
		t.Fatalf("escape encoding took %d bytes", len(w.Bytes()))
	}
}

func TestBestRiceK(t *testing.T) {
	if k := BestRiceK(nil); k != 0 {
		t.Fatalf("empty k = %d", k)
	}
	if k := BestRiceK([]uint32{0, 0, 0}); k != 0 {
		t.Fatalf("zeros k = %d", k)
	}
	// Mean 64 -> k around 6.
	k := BestRiceK([]uint32{64, 64, 64, 64})
	if k < 4 || k > 8 {
		t.Fatalf("k = %d for mean 64", k)
	}
	// Rice with the estimated k should beat a bad k on realistic data.
	vals := make([]uint32, 256)
	for i := range vals {
		vals[i] = uint32(i % 90)
	}
	best := BestRiceK(vals)
	encLen := func(k uint) int {
		w := NewBitWriter()
		for _, v := range vals {
			RiceEncode(w, v, k)
		}
		return len(w.Bytes())
	}
	if encLen(best) > encLen(0) {
		t.Fatalf("estimated k=%d worse than k=0 (%d > %d)", best, encLen(best), encLen(0))
	}
}

func TestFFTKnownValues(t *testing.T) {
	f, err := NewFFT(4)
	if err != nil {
		t.Fatal(err)
	}
	// DFT of [1,1,1,1] is [4,0,0,0].
	x := []complex128{1, 1, 1, 1}
	f.Transform(x)
	want := []complex128{4, 0, 0, 0}
	for i := range want {
		if cmplx.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want %v", i, x[i], want[i])
		}
	}
	// DFT of impulse is flat.
	x = []complex128{1, 0, 0, 0}
	f.Transform(x)
	for i := range x {
		if cmplx.Abs(x[i]-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v", i, x[i])
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	f, _ := NewFFT(256)
	x := make([]complex128, 256)
	orig := make([]complex128, 256)
	for i := range x {
		v := complex(math.Sin(float64(i)*0.1), math.Cos(float64(i)*0.37))
		x[i], orig[i] = v, v
	}
	f.Transform(x)
	f.Inverse(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip bin %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |x|^2 == (1/n) sum |X|^2.
	f, _ := NewFFT(128)
	x := make([]complex128, 128)
	var timeE float64
	for i := range x {
		v := math.Sin(float64(i) * 0.3)
		x[i] = complex(v, 0)
		timeE += v * v
	}
	f.Transform(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= 128
	if math.Abs(timeE-freqE) > 1e-9*timeE {
		t.Fatalf("Parseval violated: %g vs %g", timeE, freqE)
	}
}

func TestFFTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := NewFFT(n); err == nil {
			t.Errorf("NewFFT(%d) accepted", n)
		}
	}
}

func TestFFTSpectrumPeak(t *testing.T) {
	// A pure tone at bin 8 must dominate the power spectrum.
	n := 256
	f, _ := NewFFT(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	spec := f.SpectrumPower(x)
	best := 0
	for k, p := range spec {
		if p > spec[best] {
			best = k
		}
	}
	if best != 8 {
		t.Fatalf("spectrum peak at bin %d, want 8", best)
	}
}

func TestMDCTPerfectReconstruction(t *testing.T) {
	// The TDAC property: windowed MDCT -> IMDCT with 50% overlap-add
	// reconstructs the interior of the signal exactly.
	n := 64
	m, err := NewMDCT(n)
	if err != nil {
		t.Fatal(err)
	}
	total := 8 * n
	sig := make([]float64, total)
	for i := range sig {
		sig[i] = math.Sin(float64(i)*0.13) + 0.5*math.Cos(float64(i)*0.41)
	}
	recon := make([]float64, total)
	coeffs := make([]float64, n)
	frame := make([]float64, 2*n)
	for start := 0; start+2*n <= total; start += n {
		m.Forward(sig[start:start+2*n], coeffs)
		for i := range frame {
			frame[i] = 0
		}
		m.InverseOverlap(coeffs, frame)
		// Manual overlap-add into recon.
		for i := 0; i < 2*n; i++ {
			recon[start+i] += frame[i]
		}
	}
	// Interior samples (after the first frame, before the last) must match.
	for i := n; i < total-2*n; i++ {
		if math.Abs(recon[i]-sig[i]) > 1e-9 {
			t.Fatalf("sample %d: recon %g vs %g", i, recon[i], sig[i])
		}
	}
}

func TestMDCTEnergyCompaction(t *testing.T) {
	// A pure tone's MDCT energy should concentrate in few coefficients.
	n := 128
	m, _ := NewMDCT(n)
	in := make([]float64, 2*n)
	for i := range in {
		in[i] = math.Sin(2 * math.Pi * 10.25 * float64(i) / float64(n))
	}
	out := make([]float64, n)
	m.Forward(in, out)
	var total float64
	mags := make([]float64, n)
	for k, c := range out {
		mags[k] = c * c
		total += c * c
	}
	// Top 8 coefficients should hold > 90% of the energy.
	var top float64
	for i := 0; i < 8; i++ {
		best := 0
		for k, v := range mags {
			if v > mags[best] {
				best = k
			}
		}
		top += mags[best]
		mags[best] = 0
	}
	if top < 0.9*total {
		t.Fatalf("top-8 energy %.1f%% of total, want > 90%%", 100*top/total)
	}
}

func TestMDCTCacheShared(t *testing.T) {
	a, _ := NewMDCT(64)
	b, _ := NewMDCT(64)
	if a != b {
		t.Fatal("MDCT plans not shared")
	}
}

func TestMDCTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -2, 3, 7} {
		if _, err := NewMDCT(n); err == nil {
			t.Errorf("NewMDCT(%d) accepted", n)
		}
	}
}

func TestMDCTWindowPrincenBradley(t *testing.T) {
	// w[i]^2 + w[i+N]^2 == 1 is the perfect-reconstruction condition.
	m, _ := NewMDCT(32)
	for i := 0; i < 32; i++ {
		s := m.window[i]*m.window[i] + m.window[i+32]*m.window[i+32]
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("Princen-Bradley violated at %d: %g", i, s)
		}
	}
}
