package dsp

// Rice (Golomb power-of-two) entropy coding of the quantized MDCT
// coefficients. Signed values are zigzag-mapped first; very large
// quotients escape to a fixed 32-bit raw encoding so hostile or
// mis-parameterized input cannot blow up the output.

const riceEscape = 48 // quotient value signalling a raw 32-bit follow-up

// ZigZag maps a signed value to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4.
func ZigZag(v int32) uint32 { return uint32(v<<1) ^ uint32(v>>31) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// RiceEncode writes u with parameter k.
func RiceEncode(w *BitWriter, u uint32, k uint) {
	q := u >> k
	if q >= riceEscape {
		w.WriteUnary(riceEscape)
		w.WriteBits(uint64(u), 32)
		return
	}
	w.WriteUnary(q)
	w.WriteBits(uint64(u), k)
}

// RiceDecode reads a value written by RiceEncode with the same k.
func RiceDecode(r *BitReader, k uint) (uint32, error) {
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if q >= riceEscape {
		v, err := r.ReadBits(32)
		return uint32(v), err
	}
	rem, err := r.ReadBits(k)
	if err != nil {
		return 0, err
	}
	return q<<k | uint32(rem), nil
}

// BestRiceK estimates the optimal Rice parameter for the values, using
// the mean-magnitude heuristic.
func BestRiceK(values []uint32) uint {
	if len(values) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range values {
		sum += uint64(v)
	}
	mean := sum / uint64(len(values))
	k := uint(0)
	for mean > 0 && k < 30 {
		mean >>= 1
		k++
	}
	if k > 0 {
		k--
	}
	return k
}
