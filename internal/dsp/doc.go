// Package dsp provides the signal-processing primitives behind the OVL
// transform codec: bit-level I/O, Rice entropy coding, a radix-2 FFT for
// spectral analysis, and the MDCT/IMDCT pair (with Princen-Bradley
// windowing) that gives the codec its lapped-transform structure.
package dsp
