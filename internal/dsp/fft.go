package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT is an iterative radix-2 decimation-in-time FFT with precomputed
// twiddle factors and bit-reversal permutation. It backs the spectral
// analysis helpers (speaker auto-volume, codec tests).
type FFT struct {
	n       int
	rev     []int
	twiddle []complex128 // e^{-2πik/n} for k < n/2
}

// NewFFT builds an FFT plan for size n, which must be a power of two >= 2.
func NewFFT(n int) (*FFT, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two >= 2", n)
	}
	f := &FFT{n: n, rev: make([]int, n), twiddle: make([]complex128, n/2)}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		f.rev[i] = r
	}
	for k := 0; k < n/2; k++ {
		f.twiddle[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}
	return f, nil
}

// Size returns the plan size.
func (f *FFT) Size() int { return f.n }

// Transform computes the in-place forward DFT of x (len must equal Size).
func (f *FFT) Transform(x []complex128) {
	f.run(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization.
func (f *FFT) Inverse(x []complex128) {
	f.run(x, true)
	inv := complex(1/float64(f.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

func (f *FFT) run(x []complex128, inverse bool) {
	if len(x) != f.n {
		panic(fmt.Sprintf("dsp: FFT input length %d != plan size %d", len(x), f.n))
	}
	for i, r := range f.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	for size := 2; size <= f.n; size <<= 1 {
		half := size / 2
		step := f.n / size
		for start := 0; start < f.n; start += size {
			for k := 0; k < half; k++ {
				w := f.twiddle[k*step]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// SpectrumPower returns the per-bin power of real signal x using plan f:
// |X[k]|² for k in [0, n/2). x is zero-padded or truncated to fit.
func (f *FFT) SpectrumPower(x []float64) []float64 {
	buf := make([]complex128, f.n)
	for i := 0; i < f.n && i < len(x); i++ {
		buf[i] = complex(x[i], 0)
	}
	f.Transform(buf)
	out := make([]float64, f.n/2)
	for k := range out {
		re, im := real(buf[k]), imag(buf[k])
		out[k] = re*re + im*im
	}
	return out
}
