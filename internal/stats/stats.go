package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration // offset from series start
	V float64
}

// Series is an ordered sequence of samples.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Mean returns the arithmetic mean of the sample values (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max returns the largest sample value (0 if empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the smallest sample value (0 if empty).
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Stddev returns the population standard deviation (0 if < 2 samples).
func (s *Series) Stddev() float64 {
	if len(s.Points) < 2 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, p := range s.Points {
		d := p.V - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s.Points)))
}

// Summary holds order statistics of a sample set.
type Summary struct {
	N                int
	Mean, Min, Max   float64
	P50, P95, Stddev float64
}

// Summarize computes order statistics over values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var acc float64
	for _, v := range sorted {
		acc += (v - mean) * (v - mean)
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return Summary{
		N: len(sorted), Mean: mean,
		Min: sorted[0], Max: sorted[len(sorted)-1],
		P50: q(0.50), P95: q(0.95),
		Stddev: math.Sqrt(acc / float64(len(sorted))),
	}
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (formatted with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderSeries writes one or more aligned series as columns of
// (t, v1, v2, ...) rows, merging on sample index.
func RenderSeries(w io.Writer, title string, series ...*Series) {
	tab := Table{Title: title, Headers: []string{"t"}}
	maxLen := 0
	for _, s := range series {
		tab.Headers = append(tab.Headers, s.Name)
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := make([]interface{}, 0, len(series)+1)
		var ts time.Duration
		for _, s := range series {
			if i < len(s.Points) {
				ts = s.Points[i].T
				break
			}
		}
		row = append(row, ts)
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, s.Points[i].V)
			} else {
				row = append(row, "")
			}
		}
		tab.AddRow(row...)
	}
	tab.Render(w)
}
