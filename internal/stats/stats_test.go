package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "x"}
	for i, v := range []float64{2, 4, 6} {
		s.Add(time.Duration(i)*time.Second, v)
	}
	if s.Mean() != 4 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev(), want)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := &Series{}
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Fatal("empty series stats not zero")
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize([]float64{5, 1, 3, 2, 4})
	if sum.N != 5 || sum.Min != 1 || sum.Max != 5 || sum.Mean != 3 || sum.P50 != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
	// Input must not be mutated (sorted copy).
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 {
		t.Fatal("Summarize mutated input")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", time.Millisecond)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "name", "alpha", "1.50", "1ms", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every row has the same prefix width up to col 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(0, 1)
	a.Add(time.Second, 2)
	b.Add(0, 10)
	var sb strings.Builder
	RenderSeries(&sb, "title", a, b)
	out := sb.String()
	for _, want := range []string{"title", "a", "b", "1.00", "10.00", "2.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
