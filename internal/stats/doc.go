// Package stats provides the light measurement plumbing the experiment
// harness uses: sampled time series (the CPU-vs-time and context-switch
// figures are series), summary statistics, and plain-text table/series
// rendering for cmd/eslab output.
package stats
