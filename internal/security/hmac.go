package security

import (
	"crypto/hmac"
	"crypto/sha256"

	"repro/internal/proto"
)

// hmacTagLen is the truncated tag size; 16 bytes keeps per-packet
// overhead small at a comfortable security margin for stream integrity.
const hmacTagLen = 16

// HMACAuth authenticates packets with a shared group secret. It is the
// cheapest scheme and the interim measure the paper suggests alongside
// VLAN isolation: integrity against off-path injection, but any holder
// of the group key can forge.
type HMACAuth struct {
	key []byte
}

// NewHMAC returns an authenticator for the shared key.
func NewHMAC(key []byte) *HMACAuth {
	return &HMACAuth{key: append([]byte(nil), key...)}
}

// Scheme implements Authenticator.
func (a *HMACAuth) Scheme() proto.AuthScheme { return proto.AuthHMAC }

func (a *HMACAuth) tag(data []byte) []byte {
	m := hmac.New(sha256.New, a.key)
	m.Write(data)
	return m.Sum(nil)[:hmacTagLen]
}

// Sign implements Authenticator.
func (a *HMACAuth) Sign(pkt []byte) []byte {
	return wrap(proto.AuthHMAC, pkt, a.tag(pkt))
}

// Verify implements Authenticator.
func (a *HMACAuth) Verify(pkt []byte) ([]byte, bool) {
	inner, trailer, ok := unwrap(proto.AuthHMAC, pkt)
	if !ok || len(trailer) != hmacTagLen {
		return nil, false
	}
	if !hmac.Equal(trailer, a.tag(inner)) {
		return nil, false
	}
	return inner, true
}

// VerifyBatch implements BatchAuthenticator: one keyed hash, Reset
// between packets, instead of a fresh HMAC construction (two hash
// states plus the key schedule) per packet. After the first Sum the
// hmac package caches the padded-key states, so every subsequent
// packet costs only the data hashing itself. The shared-key tag does
// not bind the source address, so srcs is ignored.
func (a *HMACAuth) VerifyBatch(pkts [][]byte, _ []string) ([][]byte, []bool) {
	inners := make([][]byte, len(pkts))
	oks := make([]bool, len(pkts))
	m := hmac.New(sha256.New, a.key)
	var sum [sha256.Size]byte
	for i, pkt := range pkts {
		inner, trailer, ok := unwrap(proto.AuthHMAC, pkt)
		if !ok || len(trailer) != hmacTagLen {
			continue
		}
		m.Reset()
		m.Write(inner)
		if hmac.Equal(trailer, m.Sum(sum[:0])[:hmacTagLen]) {
			inners[i], oks[i] = inner, true
		}
	}
	return inners, oks
}

// SignBatch implements BatchAuthenticator.
func (a *HMACAuth) SignBatch(pkts [][]byte) [][]byte {
	out := make([][]byte, len(pkts))
	m := hmac.New(sha256.New, a.key)
	var sum [sha256.Size]byte
	for i, pkt := range pkts {
		m.Reset()
		m.Write(pkt)
		out[i] = wrap(proto.AuthHMAC, pkt, m.Sum(sum[:0])[:hmacTagLen])
	}
	return out
}
