package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/proto"
)

// Per-subscriber identity authentication (proto.AuthIdentity).
//
// The shared-key HMAC scheme proves a control packet was built by *a*
// key holder — so any subscriber can forge any other's cancel or
// pause, and a captured signed Subscribe replays from a spoofed source
// until the key rotates. This scheme closes both holes with TURN-style
// per-allocation credentials: every subscriber signs with its own
// credential, derived from one chain master key by subscriber ID, and
// the trailer carries who signed and a monotonic sequence:
//
//	u32 identity || u64 seq || 16-byte tag
//
// Request tags additionally bind the datagram's UDP source address —
// the address the relay will create forwarding state for — so the
// exact captured bytes verify only from the address they were sent
// from. The relay pairs the trailer's sequence with a per-identity
// last-seq window in the subscriber session, which kills same-source
// replays too. Reply (ack) tags use a distinct direction label, so a
// captured ack can never pass as a request.
const identTrailerLen = 4 + 8 + hmacTagLen

// Derivation and direction labels. Distinct labels keep the three
// HMAC uses (credential derivation, request tags, ack tags) in
// separate domains.
const (
	identCredLabel = "es-ident-cred:"
	identReqLabel  = "es-ident-req:"
	identAckLabel  = "es-ident-ack:"
)

// identCredCacheCap bounds the derived-credential cache: verification
// derives the credential for whatever identity a packet claims, and an
// attacker cycling random identities must cost CPU, not memory.
const identCredCacheCap = 4096

// Keyring holds the chain master key and derives each identity's
// credential from it. The relay side of a chain holds the ring (it
// must verify every identity); a subscriber is provisioned with only
// its own credential and can sign for itself and nobody else.
type Keyring struct {
	master []byte

	mu    sync.Mutex
	creds map[uint32][]byte
}

// NewKeyring builds a keyring over the chain master key.
func NewKeyring(master []byte) *Keyring {
	return &Keyring{
		master: append([]byte(nil), master...),
		creds:  make(map[uint32][]byte),
	}
}

// Credential returns identity id's signing credential:
// HMAC(master, "es-ident-cred:" || u32 id). Write it (hex-encoded) to
// a subscriber's key file to provision that subscriber.
func (k *Keyring) Credential(id uint32) []byte {
	k.mu.Lock()
	if c, ok := k.creds[id]; ok {
		k.mu.Unlock()
		return c
	}
	k.mu.Unlock()
	m := hmac.New(sha256.New, k.master)
	m.Write([]byte(identCredLabel))
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], id)
	m.Write(b[:])
	c := m.Sum(nil)
	k.mu.Lock()
	if len(k.creds) < identCredCacheCap {
		k.creds[id] = c
	}
	k.mu.Unlock()
	return c
}

// Signer returns a client-side authenticator that signs as identity id
// from the given UDP source address. Chained relays use this for their
// upstream lease: one master key per chain, each hop signing with its
// own derived credential.
func (k *Keyring) Signer(id uint32, source string) *IdentityAuth {
	return NewIdentitySigner(k.Credential(id), id, source)
}

// SignerAt is Signer with an explicit starting sequence; see
// NewIdentitySignerAt.
func (k *Keyring) SignerAt(id uint32, source string, seqBase uint64) *IdentityAuth {
	return NewIdentitySignerAt(k.Credential(id), id, source, seqBase)
}

// Relay returns the relay-side authenticator: it verifies requests
// from any identity on the ring and signs replies per recipient.
func (k *Keyring) Relay() *KeyringAuth {
	return &KeyringAuth{ring: k}
}

// identTag computes the 16-byte trailer tag. source is length-prefixed
// so the (source, inner) split is unambiguous; ack-direction tags pass
// an empty source (the subscriber already gates acks on the relay's
// address and its own request-seq window).
func identTag(cred []byte, label, source string, id uint32, seq uint64, inner []byte) []byte {
	m := hmac.New(sha256.New, cred)
	m.Write([]byte(label))
	var hdr [14]byte
	binary.BigEndian.PutUint16(hdr[0:2], uint16(len(source)))
	m.Write(hdr[0:2])
	m.Write([]byte(source))
	binary.BigEndian.PutUint32(hdr[2:6], id)
	binary.BigEndian.PutUint64(hdr[6:14], seq)
	m.Write(hdr[2:14])
	m.Write(inner)
	return m.Sum(nil)[:hmacTagLen]
}

// IdentityAuth is the subscriber side of the identity scheme: it signs
// requests as one identity from one source address, with a sequence
// that rises on every Sign, and verifies the relay's replies.
type IdentityAuth struct {
	id     uint32
	source string
	cred   []byte

	mu  sync.Mutex
	seq uint64
}

// NewIdentitySigner builds a signer from a provisioned credential.
// source must be the UDP source address the relay will see — the tag
// binds it, so a wildcard bind that rewrites the source on the wire
// will not verify.
func NewIdentitySigner(cred []byte, id uint32, source string) *IdentityAuth {
	return NewIdentitySignerAt(cred, id, source, 0)
}

// NewIdentitySignerAt starts the signer's sequence at seqBase. The
// relay's replay window requires the sequence to rise across a
// subscriber's whole session, so a restarting client that would
// otherwise reset to zero should seed with something monotonic (the
// daemons use wall-clock nanoseconds); within one process the default
// zero base is fine.
func NewIdentitySignerAt(cred []byte, id uint32, source string, seqBase uint64) *IdentityAuth {
	return &IdentityAuth{
		id:     id,
		source: source,
		cred:   append([]byte(nil), cred...),
		seq:    seqBase,
	}
}

// Scheme implements Authenticator.
func (a *IdentityAuth) Scheme() proto.AuthScheme { return proto.AuthIdentity }

// Sign implements Authenticator: request direction, next sequence,
// source bound into the tag.
func (a *IdentityAuth) Sign(pkt []byte) []byte {
	a.mu.Lock()
	a.seq++
	seq := a.seq
	a.mu.Unlock()
	trailer := make([]byte, identTrailerLen)
	binary.BigEndian.PutUint32(trailer[0:4], a.id)
	binary.BigEndian.PutUint64(trailer[4:12], seq)
	copy(trailer[12:], identTag(a.cred, identReqLabel, a.source, a.id, seq, pkt))
	return wrap(proto.AuthIdentity, pkt, trailer)
}

// Verify implements Authenticator: ack direction, addressed to this
// identity. Freshness (which request the ack answers, and from whom)
// is the lease layer's existing seq-echo window and source gate.
func (a *IdentityAuth) Verify(pkt []byte) ([]byte, bool) {
	inner, trailer, ok := unwrap(proto.AuthIdentity, pkt)
	if !ok || len(trailer) != identTrailerLen {
		return nil, false
	}
	if binary.BigEndian.Uint32(trailer[0:4]) != a.id {
		return nil, false
	}
	seq := binary.BigEndian.Uint64(trailer[4:12])
	if !hmac.Equal(trailer[12:], identTag(a.cred, identAckLabel, "", a.id, seq, inner)) {
		return nil, false
	}
	return inner, true
}

// KeyringAuth is the relay side of the identity scheme. It implements
// SessionAuthenticator; its plain Verify always fails, deliberately —
// a request verified without its source address would reopen the
// spoofed-source replay this scheme exists to close, so the relay's
// control paths must use VerifySession.
type KeyringAuth struct {
	ring *Keyring

	mu  sync.Mutex
	seq uint64
}

// Scheme implements Authenticator.
func (a *KeyringAuth) Scheme() proto.AuthScheme { return proto.AuthIdentity }

// Sign implements Authenticator, signing as the reserved relay
// identity 0. Replies to real subscribers go through SignFor.
func (a *KeyringAuth) Sign(pkt []byte) []byte { return a.SignFor(0, pkt) }

// Verify implements Authenticator by failing: see the type comment.
func (a *KeyringAuth) Verify(pkt []byte) ([]byte, bool) { return nil, false }

// SignFor implements SessionAuthenticator: ack direction, signed under
// the recipient identity's credential.
func (a *KeyringAuth) SignFor(id uint32, pkt []byte) []byte {
	a.mu.Lock()
	a.seq++
	seq := a.seq
	a.mu.Unlock()
	cred := a.ring.Credential(id)
	trailer := make([]byte, identTrailerLen)
	binary.BigEndian.PutUint32(trailer[0:4], id)
	binary.BigEndian.PutUint64(trailer[4:12], seq)
	copy(trailer[12:], identTag(cred, identAckLabel, "", id, seq, pkt))
	return wrap(proto.AuthIdentity, pkt, trailer)
}

// SignForBatch implements SessionAuthenticator.
func (a *KeyringAuth) SignForBatch(ids []uint32, pkts [][]byte) [][]byte {
	out := make([][]byte, len(pkts))
	for i, pkt := range pkts {
		out[i] = a.SignFor(ids[i], pkt)
	}
	return out
}

// VerifySession implements SessionAuthenticator: request direction,
// tag recomputed under the claimed identity's credential with the
// packet's actual UDP source bound in.
func (a *KeyringAuth) VerifySession(pkt []byte, src string) (inner []byte, id uint32, seq uint64, ok bool) {
	inner, trailer, ok := unwrap(proto.AuthIdentity, pkt)
	if !ok || len(trailer) != identTrailerLen {
		return nil, 0, 0, false
	}
	id = binary.BigEndian.Uint32(trailer[0:4])
	seq = binary.BigEndian.Uint64(trailer[4:12])
	cred := a.ring.Credential(id)
	if !hmac.Equal(trailer[12:], identTag(cred, identReqLabel, src, id, seq, inner)) {
		return nil, 0, 0, false
	}
	return inner, id, seq, true
}

// VerifySessionBatch implements SessionAuthenticator over a
// mixed-identity admission batch. Unlike the shared-key batch there is
// no keyed state to amortize — every packet verifies under its own
// credential — but one call still keeps the admission pipeline's shape
// scheme-independent.
func (a *KeyringAuth) VerifySessionBatch(pkts [][]byte, srcs []string) (inners [][]byte, ids []uint32, seqs []uint64, oks []bool) {
	inners = make([][]byte, len(pkts))
	ids = make([]uint32, len(pkts))
	seqs = make([]uint64, len(pkts))
	oks = make([]bool, len(pkts))
	for i, pkt := range pkts {
		inners[i], ids[i], seqs[i], oks[i] = a.VerifySession(pkt, srcs[i])
	}
	return inners, ids, seqs, oks
}
