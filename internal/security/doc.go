// Package security implements the packet-authentication schemes the
// paper plans for the Ethernet Speaker (§5.1): speakers must not play
// audio from unauthorized sources, and the verification path must be
// cheap enough that an attacker cannot exhaust a speaker by flooding it
// with garbage ("digitally signing every audio packet is not feasible as
// it allows an attacker to overwhelm an ES").
//
// Three schemes are provided behind one wrapping format:
//
//   - HMAC: a shared group secret; fastest, but any group member can
//     forge (symmetric).
//   - Chain: hash-chain key release in the TESLA style — each packet is
//     MACed under the next key of a one-way chain whose anchor is
//     distributed out of band; receivers verify chain ancestry. Source
//     asymmetry depends on the delayed-release timing assumption, which
//     a single LAN satisfies loosely; see the type comment.
//   - HORS: a hash-based few-time signature (after Reyzin & Reyzin's
//     "Better than BiBa", the paper's citation [13]): large public keys
//     but very fast signing and verification compared to conventional
//     signatures.
//
// Wrapped packet format: inner || trailer || u16 trailerLen || u8 scheme.
package security
