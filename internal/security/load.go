package security

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
)

// readKeyFile reads a key file's bytes with trailing whitespace
// trimmed.
func readKeyFile(keyFile string) ([]byte, error) {
	key, err := os.ReadFile(keyFile)
	if err != nil {
		return nil, err
	}
	key = bytes.TrimSpace(key)
	if len(key) == 0 {
		return nil, fmt.Errorf("key file %s is empty", keyFile)
	}
	return key, nil
}

// LoadControlAuth builds the daemons' control-plane authenticator from
// their -auth/-key-file flags: "none" (or "") disables authentication,
// "hmac" reads the shared key from keyFile (trailing whitespace
// trimmed). The per-subscriber "ident" scheme needs more context than
// a key file — which side of the exchange, which identity, which
// source address — so the daemons load it through LoadRelayAuth /
// LoadClientAuth; asking for it here is an error naming them. The
// one-way stream schemes (chain, HORS) sign a broadcast in one
// direction and cannot authenticate the subscriber side.
func LoadControlAuth(scheme, keyFile string) (Authenticator, error) {
	switch scheme {
	case "", "none":
		return nil, nil
	case "hmac":
		if keyFile == "" {
			return nil, fmt.Errorf("-auth hmac requires -key-file")
		}
		key, err := readKeyFile(keyFile)
		if err != nil {
			return nil, err
		}
		return NewHMAC(key), nil
	case "ident":
		return nil, fmt.Errorf("-auth ident is loaded per side (relay: master key file; client: -identity plus its credential file)")
	default:
		return nil, fmt.Errorf("unknown -auth scheme %q (want none, hmac, or ident)", scheme)
	}
}

// LoadRelayAuth builds the verification side of the control plane:
// LoadControlAuth plus "ident", where keyFile holds the chain master
// key. The returned keyring is non-nil exactly for "ident" — the
// daemon uses it to mint subscriber credentials and to derive its own
// upstream-signing credential on a chained relay.
func LoadRelayAuth(scheme, keyFile string) (Authenticator, *Keyring, error) {
	if scheme != "ident" {
		a, err := LoadControlAuth(scheme, keyFile)
		return a, nil, err
	}
	if keyFile == "" {
		return nil, nil, fmt.Errorf("-auth ident requires -key-file (the chain master key)")
	}
	master, err := readKeyFile(keyFile)
	if err != nil {
		return nil, nil, err
	}
	ring := NewKeyring(master)
	return ring.Relay(), ring, nil
}

// LoadClientAuth builds the signing side of the control plane for a
// subscriber: LoadControlAuth plus "ident", where keyFile holds the
// subscriber's own hex-encoded credential (minted from the master key
// with FormatCredential — `relayd -mint-identity`), id is its
// -identity, and source is the UDP source address the relay will see
// (the tag binds it, so a wildcard bind will not verify). seqBase
// seeds the monotonic request sequence; restarting daemons pass
// wall-clock nanoseconds so a restart does not fall below the relay's
// replay window for the previous run.
func LoadClientAuth(scheme, keyFile string, id uint32, source string, seqBase uint64) (Authenticator, error) {
	if scheme != "ident" {
		return LoadControlAuth(scheme, keyFile)
	}
	if id == 0 {
		return nil, fmt.Errorf("-auth ident requires a nonzero -identity")
	}
	if keyFile == "" {
		return nil, fmt.Errorf("-auth ident requires -key-file (this subscriber's credential)")
	}
	raw, err := readKeyFile(keyFile)
	if err != nil {
		return nil, err
	}
	cred, err := hex.DecodeString(string(raw))
	if err != nil || len(cred) == 0 {
		return nil, fmt.Errorf("key file %s is not a hex credential (mint one with relayd -mint-identity)", keyFile)
	}
	return NewIdentitySignerAt(cred, id, source, seqBase), nil
}

// FormatCredential renders a credential for a subscriber key file.
func FormatCredential(cred []byte) string {
	return hex.EncodeToString(cred)
}
