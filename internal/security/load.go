package security

import (
	"bytes"
	"fmt"
	"os"
)

// LoadControlAuth builds the daemons' control-plane authenticator from
// their -auth/-key-file flags: "none" (or "") disables authentication,
// "hmac" reads the shared key from keyFile (trailing whitespace
// trimmed). Only the shared-key HMAC scheme fits a request/response
// control plane — the one-way stream schemes (chain, HORS) sign a
// broadcast in one direction and cannot authenticate the subscriber
// side.
func LoadControlAuth(scheme, keyFile string) (Authenticator, error) {
	switch scheme {
	case "", "none":
		return nil, nil
	case "hmac":
		if keyFile == "" {
			return nil, fmt.Errorf("-auth hmac requires -key-file")
		}
		key, err := os.ReadFile(keyFile)
		if err != nil {
			return nil, err
		}
		key = bytes.TrimSpace(key)
		if len(key) == 0 {
			return nil, fmt.Errorf("key file %s is empty", keyFile)
		}
		return NewHMAC(key), nil
	default:
		return nil, fmt.Errorf("unknown -auth scheme %q (want none or hmac)", scheme)
	}
}
