package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/proto"
)

// ChainAuth implements hash-chain key release: the sender generates a
// one-way chain K_n -> K_{n-1} -> ... -> K_0 with K_{i-1} = H(K_i) and
// distributes the anchor K_0 out of band (e.g. in the speaker's boot
// configuration, §2.4). Packet i is MACed under K_{i+1}, and carries
// K_{i+1} itself: a receiver verifies that the disclosed key hashes back
// to the last key it trusts before checking the MAC.
//
// Unlike TESLA there is no disclosure delay here, so an on-path attacker
// who intercepts a packet could forge with its disclosed key before
// receivers see the original — on a single switched LAN segment the
// paper targets, interception-and-replacement is a stronger adversary
// than the packet-injection one this defends against. The structure
// (one-way chain, anchor from a trusted store, constant verify cost)
// matches what §5.1 calls for.
type ChainAuth struct {
	chain [][]byte // chain[i] = K_i; chain[0] is the anchor
	next  int      // next key index to use for signing

	// receiver state
	lastKey []byte // most recent verified key
	lastIdx int
}

const chainKeyLen = sha256.Size

// NewChain builds a chain of n keys from a seed. Sender and receivers
// construct it identically; receivers only need Anchor.
func NewChain(seed []byte, n int) *ChainAuth {
	if n < 1 {
		n = 1
	}
	chain := make([][]byte, n+1)
	top := sha256.Sum256(append([]byte("es-chain-seed:"), seed...))
	chain[n] = top[:]
	for i := n - 1; i >= 0; i-- {
		h := sha256.Sum256(chain[i+1])
		chain[i] = h[:]
	}
	return &ChainAuth{chain: chain, next: 1, lastKey: chain[0], lastIdx: 0}
}

// NewChainVerifier builds a receiver that trusts only the anchor.
func NewChainVerifier(anchor []byte) *ChainAuth {
	return &ChainAuth{lastKey: append([]byte(nil), anchor...), lastIdx: 0}
}

// Anchor returns K_0 for out-of-band distribution.
func (a *ChainAuth) Anchor() []byte { return append([]byte(nil), a.chain[0]...) }

// Remaining returns how many signing keys are left.
func (a *ChainAuth) Remaining() int {
	if a.chain == nil {
		return 0
	}
	return len(a.chain) - a.next
}

// Scheme implements Authenticator.
func (a *ChainAuth) Scheme() proto.AuthScheme { return proto.AuthChain }

// Sign implements Authenticator. Trailer: u32 index || K_i || MAC_{K_i}.
func (a *ChainAuth) Sign(pkt []byte) []byte {
	if a.chain == nil || a.next >= len(a.chain) {
		// Chain exhausted: emit an unverifiable trailer rather than
		// panicking; operators must rotate chains before exhaustion.
		return wrap(proto.AuthChain, pkt, make([]byte, 4+chainKeyLen+hmacTagLen))
	}
	key := a.chain[a.next]
	trailer := make([]byte, 4, 4+chainKeyLen+hmacTagLen)
	binary.BigEndian.PutUint32(trailer, uint32(a.next))
	trailer = append(trailer, key...)
	m := hmac.New(sha256.New, key)
	m.Write(pkt)
	trailer = append(trailer, m.Sum(nil)[:hmacTagLen]...)
	a.next++
	return wrap(proto.AuthChain, pkt, trailer)
}

// Verify implements Authenticator. It accepts keys ahead of the last
// verified index (lost packets skip links) by hashing forward, bounded
// to keep hostile indices cheap.
const maxChainSkip = 4096

func (a *ChainAuth) Verify(pkt []byte) ([]byte, bool) {
	inner, trailer, ok := unwrap(proto.AuthChain, pkt)
	if !ok || len(trailer) != 4+chainKeyLen+hmacTagLen {
		return nil, false
	}
	idx := int(binary.BigEndian.Uint32(trailer[:4]))
	key := trailer[4 : 4+chainKeyLen]
	tag := trailer[4+chainKeyLen:]
	steps := idx - a.lastIdx
	if steps <= 0 || steps > maxChainSkip {
		return nil, false
	}
	// Walk the disclosed key back to the last trusted key.
	cur := append([]byte(nil), key...)
	for i := 0; i < steps; i++ {
		h := sha256.Sum256(cur)
		cur = h[:]
	}
	if !hmac.Equal(cur, a.lastKey) {
		return nil, false
	}
	m := hmac.New(sha256.New, key)
	m.Write(inner)
	if !hmac.Equal(tag, m.Sum(nil)[:hmacTagLen]) {
		return nil, false
	}
	a.lastKey = append(a.lastKey[:0], key...)
	a.lastIdx = idx
	return inner, true
}
