package security

import (
	"bytes"
	"testing"

	"repro/internal/proto"
)

var testPkt = []byte("ES test packet payload 0123456789")

func TestHMACRoundTrip(t *testing.T) {
	a := NewHMAC([]byte("group secret"))
	wrapped := a.Sign(testPkt)
	inner, ok := a.Verify(wrapped)
	if !ok {
		t.Fatal("verification failed")
	}
	if !bytes.Equal(inner, testPkt) {
		t.Fatal("inner packet mangled")
	}
	if a.Scheme() != proto.AuthHMAC {
		t.Fatal("wrong scheme")
	}
}

func TestHMACRejectsTampering(t *testing.T) {
	a := NewHMAC([]byte("group secret"))
	wrapped := a.Sign(testPkt)
	for i := 0; i < len(wrapped); i++ {
		mut := append([]byte(nil), wrapped...)
		mut[i] ^= 0x01
		if inner, ok := a.Verify(mut); ok && bytes.Equal(inner, testPkt) {
			// Flipping the scheme byte to a wrong value must fail; any
			// accepted mutation returning the same inner is a forgery.
			t.Fatalf("accepted packet with byte %d flipped", i)
		}
	}
}

func TestHMACRejectsWrongKey(t *testing.T) {
	a := NewHMAC([]byte("key A"))
	b := NewHMAC([]byte("key B"))
	if _, ok := b.Verify(a.Sign(testPkt)); ok {
		t.Fatal("cross-key verification succeeded")
	}
}

func TestHMACRejectsGarbage(t *testing.T) {
	a := NewHMAC([]byte("k"))
	for _, pkt := range [][]byte{nil, {1}, {1, 2}, make([]byte, 200)} {
		if _, ok := a.Verify(pkt); ok {
			t.Fatal("garbage accepted")
		}
	}
}

func TestChainRoundTrip(t *testing.T) {
	sender := NewChain([]byte("seed"), 100)
	receiver := NewChainVerifier(sender.Anchor())
	for i := 0; i < 50; i++ {
		wrapped := sender.Sign(testPkt)
		inner, ok := receiver.Verify(wrapped)
		if !ok {
			t.Fatalf("packet %d rejected", i)
		}
		if !bytes.Equal(inner, testPkt) {
			t.Fatal("inner mangled")
		}
	}
	if sender.Remaining() != 50 {
		t.Fatalf("remaining = %d", sender.Remaining())
	}
}

func TestChainToleratesLoss(t *testing.T) {
	sender := NewChain([]byte("seed"), 100)
	receiver := NewChainVerifier(sender.Anchor())
	// Drop packets 0..8, deliver packet 9.
	var wrapped []byte
	for i := 0; i < 10; i++ {
		wrapped = sender.Sign(testPkt)
	}
	if _, ok := receiver.Verify(wrapped); !ok {
		t.Fatal("receiver did not tolerate a gap")
	}
}

func TestChainRejectsReplay(t *testing.T) {
	sender := NewChain([]byte("seed"), 100)
	receiver := NewChainVerifier(sender.Anchor())
	w1 := sender.Sign(testPkt)
	if _, ok := receiver.Verify(w1); !ok {
		t.Fatal("first packet rejected")
	}
	// Replaying the same (or any earlier-indexed) packet must fail.
	if _, ok := receiver.Verify(w1); ok {
		t.Fatal("replay accepted")
	}
}

func TestChainRejectsForeignChain(t *testing.T) {
	sender := NewChain([]byte("seed"), 100)
	attacker := NewChain([]byte("other"), 100)
	receiver := NewChainVerifier(sender.Anchor())
	if _, ok := receiver.Verify(attacker.Sign(testPkt)); ok {
		t.Fatal("foreign chain accepted")
	}
}

func TestChainRejectsTamperedPayload(t *testing.T) {
	sender := NewChain([]byte("seed"), 100)
	receiver := NewChainVerifier(sender.Anchor())
	wrapped := sender.Sign(testPkt)
	wrapped[0] ^= 1
	if _, ok := receiver.Verify(wrapped); ok {
		t.Fatal("tampered payload accepted")
	}
}

func TestChainExhaustion(t *testing.T) {
	sender := NewChain([]byte("seed"), 2)
	receiver := NewChainVerifier(sender.Anchor())
	sender.Sign(testPkt)
	sender.Sign(testPkt)
	// Third signature is past the chain; must not verify.
	if _, ok := receiver.Verify(sender.Sign(testPkt)); ok {
		t.Fatal("exhausted chain still verifying")
	}
}

func TestHORSRoundTrip(t *testing.T) {
	key := GenerateHORS([]byte("hors seed"))
	sender := &HORSAuth{Key: key, Pub: key.Public()}
	receiver := &HORSAuth{Pub: key.Public()}
	wrapped := sender.Sign(testPkt)
	inner, ok := receiver.Verify(wrapped)
	if !ok {
		t.Fatal("verification failed")
	}
	if !bytes.Equal(inner, testPkt) {
		t.Fatal("inner mangled")
	}
	if key.Uses() != 1 {
		t.Fatalf("uses = %d", key.Uses())
	}
}

func TestHORSRejectsTamperedPayload(t *testing.T) {
	key := GenerateHORS([]byte("hors seed"))
	sender := &HORSAuth{Key: key, Pub: key.Public()}
	receiver := &HORSAuth{Pub: key.Public()}
	wrapped := sender.Sign(testPkt)
	// Flip a payload byte: the revealed secrets no longer match the
	// digest's indices.
	wrapped[4] ^= 1
	if _, ok := receiver.Verify(wrapped); ok {
		t.Fatal("tampered payload accepted")
	}
}

func TestHORSRejectsForgedSecrets(t *testing.T) {
	key := GenerateHORS([]byte("hors seed"))
	other := GenerateHORS([]byte("attacker"))
	receiver := &HORSAuth{Pub: key.Public()}
	forged := (&HORSAuth{Key: other, Pub: other.Public()}).Sign(testPkt)
	if _, ok := receiver.Verify(forged); ok {
		t.Fatal("foreign key accepted")
	}
}

func TestHORSDifferentMessagesDifferentIndices(t *testing.T) {
	a := horsIndices([]byte("message one"))
	b := horsIndices([]byte("message two"))
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == horsK {
		t.Fatal("index function is constant")
	}
}

// TestUnwrapMalformedTable is the proto-style malformed sweep over the
// trailer framing, run against all three schemes: every mutation of a
// validly wrapped packet that breaks the `inner || trailer || u16 len
// || u8 scheme` grammar must be rejected — never a panic, never a
// partially accepted packet.
func TestUnwrapMalformedTable(t *testing.T) {
	hm := NewHMAC([]byte("k"))
	chainSender := NewChain([]byte("seed"), 50)
	horsKey := GenerateHORS([]byte("hors"))
	schemes := []struct {
		name   string
		sign   Authenticator
		verify func() Authenticator // fresh receiver per case (chain is stateful)
	}{
		{"hmac", hm, func() Authenticator { return hm }},
		{"chain", chainSender, func() Authenticator { return NewChainVerifier(chainSender.Anchor()) }},
		{"hors", &HORSAuth{Key: horsKey, Pub: horsKey.Public()},
			func() Authenticator { return &HORSAuth{Pub: horsKey.Public()} }},
	}
	for _, s := range schemes {
		wrapped := s.sign.Sign(testPkt)
		if _, ok := s.verify().Verify(wrapped); !ok {
			t.Fatalf("%s: baseline packet does not verify", s.name)
		}
		overhead := len(wrapped) - len(testPkt) // trailer + 3-byte frame
		cases := []struct {
			name string
			pkt  func() []byte
		}{
			{"nil", func() []byte { return nil }},
			{"one byte", func() []byte { return []byte{1} }},
			{"two bytes (shorter than the frame)", func() []byte { return []byte{1, 2} }},
			{"frame only, zero-length trailer", func() []byte {
				return wrap(s.sign.Scheme(), nil, nil)
			}},
			{"zero-length trailer on a real packet", func() []byte {
				return wrap(s.sign.Scheme(), testPkt, nil)
			}},
			{"trailer truncated by one byte", func() []byte {
				// Re-framing after the cut keeps the scheme byte and
				// declared length intact while the bytes go missing.
				mut := append([]byte(nil), wrapped[:len(wrapped)-4]...)
				return append(mut, wrapped[len(wrapped)-3:]...)
			}},
			{"tlen at the packet boundary (inner empty)", func() []byte {
				mut := append([]byte(nil), wrapped...)
				tlen := len(mut) - 3 // claims the whole packet is trailer
				mut[len(mut)-3] = byte(tlen >> 8)
				mut[len(mut)-2] = byte(tlen)
				return mut
			}},
			{"tlen one past the packet boundary", func() []byte {
				mut := append([]byte(nil), wrapped...)
				tlen := len(mut) - 2
				mut[len(mut)-3] = byte(tlen >> 8)
				mut[len(mut)-2] = byte(tlen)
				return mut
			}},
			{"tlen maximal (65535)", func() []byte {
				mut := append([]byte(nil), wrapped...)
				mut[len(mut)-3], mut[len(mut)-2] = 0xFF, 0xFF
				return mut
			}},
			{"wrong scheme byte", func() []byte {
				mut := append([]byte(nil), wrapped...)
				mut[len(mut)-1] ^= 0x7F
				return mut
			}},
			{"scheme byte AuthNone", func() []byte {
				mut := append([]byte(nil), wrapped...)
				mut[len(mut)-1] = byte(proto.AuthNone)
				return mut
			}},
			{"trailer zeroed", func() []byte {
				mut := append([]byte(nil), wrapped...)
				for i := len(testPkt); i < len(testPkt)+overhead-3; i++ {
					mut[i] = 0
				}
				return mut
			}},
		}
		for _, c := range cases {
			if inner, ok := s.verify().Verify(c.pkt()); ok {
				t.Errorf("%s: %s accepted (inner %d bytes)", s.name, c.name, len(inner))
			}
		}
	}
}

func TestUnwrapBoundaryExact(t *testing.T) {
	// unwrap itself (framing only, no MAC) must accept a trailer that
	// consumes the whole packet — an empty inner is the scheme layer's
	// problem to reject — and refuse anything declaring more bytes than
	// exist.
	trailer := []byte{1, 2, 3, 4}
	pkt := wrap(proto.AuthHMAC, nil, trailer)
	inner, tr, ok := unwrap(proto.AuthHMAC, pkt)
	if !ok || len(inner) != 0 || !bytes.Equal(tr, trailer) {
		t.Fatalf("boundary-exact unwrap = (%v, %v, %v)", inner, tr, ok)
	}
	pkt[len(pkt)-3], pkt[len(pkt)-2] = 0, byte(len(trailer)+1)
	if _, _, ok := unwrap(proto.AuthHMAC, pkt); ok {
		t.Fatal("tlen past the boundary accepted")
	}
}

func TestPeekScheme(t *testing.T) {
	a := NewHMAC([]byte("k"))
	s, err := PeekScheme(a.Sign(testPkt))
	if err != nil || s != proto.AuthHMAC {
		t.Fatalf("peek = (%v, %v)", s, err)
	}
	if _, err := PeekScheme([]byte{1}); err == nil {
		t.Fatal("short packet accepted")
	}
}

func TestCrossSchemeRejected(t *testing.T) {
	h := NewHMAC([]byte("k"))
	c := NewChain([]byte("seed"), 10)
	if _, ok := h.Verify(c.Sign(testPkt)); ok {
		t.Fatal("HMAC verifier accepted chain packet")
	}
	if _, ok := NewChainVerifier(c.Anchor()).Verify(h.Sign(testPkt)); ok {
		t.Fatal("chain verifier accepted HMAC packet")
	}
}

func BenchmarkHMACSign(b *testing.B) {
	a := NewHMAC([]byte("group secret"))
	pkt := make([]byte, 1400)
	b.SetBytes(int64(len(pkt)))
	for i := 0; i < b.N; i++ {
		a.Sign(pkt)
	}
}

func BenchmarkHMACVerify(b *testing.B) {
	a := NewHMAC([]byte("group secret"))
	pkt := a.Sign(make([]byte, 1400))
	for i := 0; i < b.N; i++ {
		if _, ok := a.Verify(pkt); !ok {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkHORSSign(b *testing.B) {
	key := GenerateHORS([]byte("seed"))
	a := &HORSAuth{Key: key, Pub: key.Public()}
	pkt := make([]byte, 1400)
	for i := 0; i < b.N; i++ {
		a.Sign(pkt)
	}
}

func BenchmarkHORSVerify(b *testing.B) {
	key := GenerateHORS([]byte("seed"))
	sender := &HORSAuth{Key: key, Pub: key.Public()}
	receiver := &HORSAuth{Pub: key.Public()}
	pkt := sender.Sign(make([]byte, 1400))
	for i := 0; i < b.N; i++ {
		if _, ok := receiver.Verify(pkt); !ok {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkHORSVerifyGarbage(b *testing.B) {
	// The DoS case: cost of rejecting a garbage packet.
	key := GenerateHORS([]byte("seed"))
	receiver := &HORSAuth{Pub: key.Public()}
	garbage := wrap(proto.AuthHORS, make([]byte, 1400), make([]byte, horsK*32))
	for i := 0; i < b.N; i++ {
		if _, ok := receiver.Verify(garbage); ok {
			b.Fatal("garbage accepted")
		}
	}
}

func TestHMACBatchMatchesPerPacket(t *testing.T) {
	a := NewHMAC([]byte("group secret"))
	forger := NewHMAC([]byte("wrong key"))
	var _ BatchAuthenticator = a // the relay's batched admission path depends on it

	pkts := [][]byte{
		a.Sign([]byte("first packet")),
		forger.Sign([]byte("forged packet")),
		a.Sign([]byte("third packet")),
		[]byte("ga"), // too short to even unwrap
		a.Sign([]byte("")),
	}
	inners, oks := a.VerifyBatch(pkts, nil)
	if len(inners) != len(pkts) || len(oks) != len(pkts) {
		t.Fatalf("batch sizes: %d inners, %d oks for %d packets", len(inners), len(oks), len(pkts))
	}
	for i, pkt := range pkts {
		wantInner, wantOK := a.Verify(pkt)
		if oks[i] != wantOK {
			t.Errorf("packet %d: batch verdict %v, per-packet %v", i, oks[i], wantOK)
		}
		if wantOK && !bytes.Equal(inners[i], wantInner) {
			t.Errorf("packet %d: batch inner %q, per-packet %q", i, inners[i], wantInner)
		}
	}

	plain := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	signed := a.SignBatch(plain)
	for i, pkt := range plain {
		if !bytes.Equal(signed[i], a.Sign(pkt)) {
			t.Errorf("packet %d: batch signature differs from per-packet Sign", i)
		}
	}
}
