package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/proto"
)

// Catalog announce signing.
//
// proto.Announce steers discovery: a forged catalog record points
// subscribers at a rogue relay, which no control-plane authenticator
// can catch because the victim then leases from the attacker with a
// perfectly genuine handshake. A catalog configured with an
// AnnounceSigner therefore signs every announce, and watchers given an
// AnnounceVerifier reject anything unsigned or forged before a record
// enters their candidate set.
//
// The catalog path is a one-way broadcast, which is exactly what the
// §5.1 few-time HORS signatures fit: verification is k hash
// evaluations (cheap enough to absorb a flood of forgeries), and the
// few-time budget is handled by rotating key *generations* — each
// generation's key pair derives deterministically from the master key,
// signs at most HORSBudget announces, and then retires. The generation
// rides in the signature section, so a verifier holding the master key
// derives the matching public key on demand; a verifier that must not
// hold the master can be provisioned with published public keys
// (AnnouncePublic) instead.

// announceGenLabel separates announce key derivation from every other
// use of the master key.
const announceGenLabel = "es-announce-gen:"

// announcePubCacheCap bounds the derived-public-key cache: an attacker
// stamping random generations on forged announces must cost CPU, not
// memory.
const announcePubCacheCap = 32

// announceKey derives generation gen's few-time signing key.
func announceKey(master []byte, gen uint32) *HORSKey {
	m := hmac.New(sha256.New, master)
	m.Write([]byte(announceGenLabel))
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], gen)
	m.Write(b[:])
	return GenerateHORS(m.Sum(nil))
}

// AnnouncePublic returns generation gen's verification key, for
// publishing to verifiers that must not hold the master key.
func AnnouncePublic(master []byte, gen uint32) *HORSPublicKey {
	return announceKey(master, gen).Public()
}

// announceMsg is what the signature actually covers: the generation
// (so a signature cannot be replanted under another generation's key)
// followed by the marshaled announce up to the signature section.
func announceMsg(gen uint32, prefix []byte) []byte {
	msg := make([]byte, 4+len(prefix))
	binary.BigEndian.PutUint32(msg[0:4], gen)
	copy(msg[4:], prefix)
	return msg
}

// AnnounceSigner signs marshaled announces, rotating to a fresh key
// generation whenever the current key's few-time budget is spent.
type AnnounceSigner struct {
	master []byte

	mu  sync.Mutex
	gen uint32
	key *HORSKey
}

// NewAnnounceSigner builds a signer over the master key. Generations
// start at 1; generation 0 means "unsigned" nowhere on the wire but is
// skipped for symmetry with the reserved identity 0.
func NewAnnounceSigner(master []byte) *AnnounceSigner {
	return &AnnounceSigner{master: append([]byte(nil), master...)}
}

// Sign appends the signature section to an announce marshaled without
// one.
func (s *AnnounceSigner) Sign(pkt []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.key == nil || s.key.Exhausted() {
		s.gen++
		s.key = announceKey(s.master, s.gen)
	}
	sig := s.key.sign(announceMsg(s.gen, pkt))
	return proto.AppendAnnounceSig(pkt, proto.AuthHORS, s.gen, sig)
}

// AnnounceSigner returns a catalog signer over the keyring's master
// key — one master key secures a chain's control plane and its catalog
// alike.
func (k *Keyring) AnnounceSigner() *AnnounceSigner { return NewAnnounceSigner(k.master) }

// AnnounceVerifier returns a catalog verifier over the keyring's
// master key.
func (k *Keyring) AnnounceVerifier() *AnnounceVerifier { return NewAnnounceVerifier(k.master) }

// AnnounceVerifier checks announce signatures. It is safe for
// concurrent use.
type AnnounceVerifier struct {
	mu     sync.Mutex
	derive func(gen uint32) *HORSPublicKey // nil: only provisioned pubs
	pubs   map[uint32]*HORSPublicKey
}

// NewAnnounceVerifier builds a verifier that derives each generation's
// public key from the master key on demand.
func NewAnnounceVerifier(master []byte) *AnnounceVerifier {
	m := append([]byte(nil), master...)
	return &AnnounceVerifier{
		derive: func(gen uint32) *HORSPublicKey { return announceKey(m, gen).Public() },
		pubs:   make(map[uint32]*HORSPublicKey),
	}
}

// NewAnnouncePubVerifier builds a verifier from published public keys
// only — for receivers that must not hold the master key. Generations
// outside the provisioned set fail verification.
func NewAnnouncePubVerifier(pubs map[uint32]*HORSPublicKey) *AnnounceVerifier {
	cp := make(map[uint32]*HORSPublicKey, len(pubs))
	for g, p := range pubs {
		cp[g] = p
	}
	return &AnnounceVerifier{pubs: cp}
}

// pub returns generation gen's public key, deriving and caching it
// when the verifier holds the master key.
func (v *AnnounceVerifier) pub(gen uint32) *HORSPublicKey {
	v.mu.Lock()
	p, ok := v.pubs[gen]
	v.mu.Unlock()
	if ok || v.derive == nil {
		return p
	}
	p = v.derive(gen)
	v.mu.Lock()
	if len(v.pubs) >= announcePubCacheCap {
		// Evict the lowest cached generation: signers only move
		// forward, so old generations are the ones done mattering.
		low, first := uint32(0), true
		for g := range v.pubs {
			if first || g < low {
				low, first = g, false
			}
		}
		delete(v.pubs, low)
	}
	v.pubs[gen] = p
	v.mu.Unlock()
	return p
}

// VerifyAnnounce checks a marshaled announce. ok reports a valid
// signature; legacy reports the announce carried no signature section
// at all (whether to accept an unsigned announce is the caller's
// policy — a verifying watcher refuses, an unconfigured one has no
// verifier to ask). A malformed packet is neither ok nor legacy.
func (v *AnnounceVerifier) VerifyAnnounce(pkt []byte) (ok, legacy bool) {
	prefix, scheme, gen, sig, signed, err := proto.SplitAnnounceSig(pkt)
	if err != nil {
		return false, false
	}
	if !signed {
		return false, true
	}
	if scheme != proto.AuthHORS {
		return false, false
	}
	pub := v.pub(gen)
	if pub == nil {
		return false, false
	}
	return pub.verify(announceMsg(gen, prefix), sig), false
}
