package security

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/proto"
)

// TestIdentityRoundTrip: a request signed by a provisioned subscriber
// verifies at the keyring relay from its true source, yielding the
// right identity, sequence, and inner bytes.
func TestIdentityRoundTrip(t *testing.T) {
	ring := NewKeyring([]byte("master"))
	signer := NewIdentitySignerAt(ring.Credential(7), 7, "10.0.0.7:5004", 100)
	relay := ring.Relay()
	pkt := []byte("subscribe body")
	signed := signer.Sign(pkt)
	inner, id, seq, ok := relay.VerifySession(signed, "10.0.0.7:5004")
	if !ok || id != 7 || seq != 101 || !bytes.Equal(inner, pkt) {
		t.Fatalf("verify = (%q, %d, %d, %v), want (%q, 7, 101, true)", inner, id, seq, ok, pkt)
	}
}

// TestIdentitySourceBinding: the exact captured bytes verify only from
// the address they were signed for — a spoofed-source replay fails at
// the tag, before any session state is consulted.
func TestIdentitySourceBinding(t *testing.T) {
	ring := NewKeyring([]byte("master"))
	signed := ring.Signer(3, "10.0.0.3:5004").Sign([]byte("cancel"))
	relay := ring.Relay()
	if _, _, _, ok := relay.VerifySession(signed, "10.0.66.99:5004"); ok {
		t.Fatal("captured request verified from a spoofed source")
	}
	if _, _, _, ok := relay.VerifySession(signed, "10.0.0.3:5004"); !ok {
		t.Fatal("request rejected from its true source")
	}
}

// TestIdentitySeqMonotonic: every Sign raises the trailer sequence, the
// raw material of the relay's per-session replay window.
func TestIdentitySeqMonotonic(t *testing.T) {
	ring := NewKeyring([]byte("master"))
	signer := ring.Signer(1, "10.0.0.1:5004")
	relay := ring.Relay()
	var last uint64
	for i := 0; i < 5; i++ {
		_, _, seq, ok := relay.VerifySession(signer.Sign([]byte("req")), "10.0.0.1:5004")
		if !ok {
			t.Fatal("own request failed to verify")
		}
		if seq <= last {
			t.Fatalf("seq %d did not rise above %d", seq, last)
		}
		last = seq
	}
}

// TestIdentityAckDirection: acks sign under the recipient's credential
// with the ack label — the subscriber accepts its own, rejects another
// identity's, and a captured ack can never pass as a request.
func TestIdentityAckDirection(t *testing.T) {
	ring := NewKeyring([]byte("master"))
	relay := ring.Relay()
	me := NewIdentitySigner(ring.Credential(5), 5, "10.0.0.5:5004")
	other := NewIdentitySigner(ring.Credential(6), 6, "10.0.0.6:5004")
	ack := relay.SignFor(5, []byte("grant"))
	if inner, ok := me.Verify(ack); !ok || !bytes.Equal(inner, []byte("grant")) {
		t.Fatal("subscriber rejected its own ack")
	}
	if _, ok := other.Verify(ack); ok {
		t.Fatal("identity 6 accepted identity 5's ack")
	}
	if _, _, _, ok := relay.VerifySession(ack, ""); ok {
		t.Fatal("an ack passed as a request")
	}
	// And the reverse: a request never passes as an ack.
	req := me.Sign([]byte("subscribe"))
	if _, ok := me.Verify(req); ok {
		t.Fatal("a request passed as an ack")
	}
}

// TestKeyringAuthPlainVerifyFails: the relay-side Verify (no source)
// must always fail — verifying a request without its source address
// would reopen the spoofed-source replay the scheme closes.
func TestKeyringAuthPlainVerifyFails(t *testing.T) {
	ring := NewKeyring([]byte("master"))
	signed := ring.Signer(1, "10.0.0.1:5004").Sign([]byte("req"))
	if _, ok := ring.Relay().Verify(signed); ok {
		t.Fatal("sourceless Verify accepted a request")
	}
}

// TestIdentityBatchMixed: one admission batch carrying several
// identities, a cross-keyring forgery, and a tampered packet verifies
// exactly the genuine entries.
func TestIdentityBatchMixed(t *testing.T) {
	ring := NewKeyring([]byte("master"))
	foreign := NewKeyring([]byte("someone else's master"))
	relay := ring.Relay()
	var pkts [][]byte
	var srcs []string
	for id := uint32(1); id <= 4; id++ {
		src := fmt.Sprintf("10.0.0.%d:5004", id)
		pkts = append(pkts, ring.Signer(id, src).Sign([]byte("req")))
		srcs = append(srcs, src)
	}
	pkts = append(pkts, foreign.Signer(2, "10.0.0.2:5004").Sign([]byte("req")))
	srcs = append(srcs, "10.0.0.2:5004")
	tampered := append([]byte(nil), pkts[0]...)
	tampered[0] ^= 0xFF
	pkts = append(pkts, tampered)
	srcs = append(srcs, srcs[0])
	_, ids, _, oks := relay.VerifySessionBatch(pkts, srcs)
	for i := 0; i < 4; i++ {
		if !oks[i] || ids[i] != uint32(i+1) {
			t.Fatalf("genuine packet %d: ok=%v id=%d", i, oks[i], ids[i])
		}
	}
	if oks[4] {
		t.Fatal("foreign-keyring signature accepted")
	}
	if oks[5] {
		t.Fatal("tampered packet accepted")
	}
}

// TestIdentityTrailerMalformed is the truncation/mutation table for the
// identity trailer: every strict prefix of a signed request, and every
// single-byte mutation of its trailer (identity, sequence, and tag
// fields alike), must fail cleanly — never verify, never panic.
func TestIdentityTrailerMalformed(t *testing.T) {
	ring := NewKeyring([]byte("master"))
	relay := ring.Relay()
	src := "10.0.0.9:5004"
	signed := ring.Signer(9, src).Sign([]byte("subscribe body"))
	for i := 0; i < len(signed); i++ {
		if _, _, _, ok := relay.VerifySession(signed[:i], src); ok {
			t.Fatalf("truncated packet [:%d] verified", i)
		}
	}
	inner := len(signed) - identTrailerLen - 3 // trailer || u16 len || scheme
	for i := inner; i < len(signed); i++ {
		mut := append([]byte(nil), signed...)
		mut[i] ^= 0x01
		if _, _, _, ok := relay.VerifySession(mut, src); ok {
			t.Fatalf("packet with trailer byte %d flipped verified", i)
		}
	}
	// Flipping the claimed identity or sequence in isolation must fail
	// too (the tag covers both): already exercised byte-wise above, but
	// pin the two fields explicitly.
	for _, off := range []int{inner, inner + 4} { // identity, seq
		mut := append([]byte(nil), signed...)
		mut[off] ^= 0x80
		if _, _, _, ok := relay.VerifySession(mut, src); ok {
			t.Fatalf("field at trailer offset %d unbound from the tag", off-inner)
		}
	}
}

// TestHORSBudgetExhaustion: the few-time key refuses to sign past its
// safe budget — Exhausted flips at HORSBudget uses, the raw signer
// returns nil, and the wrapped authenticator emits an unverifiable
// trailer instead of leaking more secrets.
func TestHORSBudgetExhaustion(t *testing.T) {
	key := GenerateHORS([]byte("seed"))
	pub := key.Public()
	for i := 0; i < HORSBudget; i++ {
		if key.Exhausted() {
			t.Fatalf("exhausted after %d of %d signatures", i, HORSBudget)
		}
		msg := []byte{byte(i)}
		sig := key.sign(msg)
		if sig == nil || !pub.verify(msg, sig) {
			t.Fatalf("in-budget signature %d failed", i)
		}
	}
	if !key.Exhausted() {
		t.Fatal("not exhausted after the full budget")
	}
	if sig := key.sign([]byte("one more")); sig != nil {
		t.Fatal("signed past the few-time budget")
	}
	// The Authenticator wrapper: signing continues (the stream must not
	// stop) but the output no longer verifies anywhere.
	key2 := GenerateHORS([]byte("seed2"))
	auth := &HORSAuth{Key: key2, Pub: key2.Public()}
	var out []byte
	for i := 0; i <= HORSBudget; i++ {
		out = auth.Sign([]byte("pkt"))
	}
	if _, ok := auth.Verify(out); ok {
		t.Fatal("over-budget signature verified")
	}
}

// TestAnnounceSignRoundTrip: a signed announce verifies, a tampered one
// does not, and an unsigned one reports legacy.
func TestAnnounceSignRoundTrip(t *testing.T) {
	master := []byte("master")
	signer := NewAnnounceSigner(master)
	verifier := NewAnnounceVerifier(master)
	plain, err := (&proto.Announce{Seq: 1, Relays: []proto.RelayInfo{
		{Addr: "10.0.0.1:5006", Group: "239.72.1.1:5004", Channel: 1}}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	signed, err := signer.Sign(plain)
	if err != nil {
		t.Fatal(err)
	}
	if ok, legacy := verifier.VerifyAnnounce(signed); !ok || legacy {
		t.Fatalf("signed announce: ok=%v legacy=%v", ok, legacy)
	}
	if ok, legacy := verifier.VerifyAnnounce(plain); ok || !legacy {
		t.Fatalf("unsigned announce: ok=%v legacy=%v, want (false, true)", ok, legacy)
	}
	mut := append([]byte(nil), signed...)
	mut[len(mut)/2] ^= 0x01
	if ok, _ := verifier.VerifyAnnounce(mut); ok {
		t.Fatal("tampered announce verified")
	}
	if ok, legacy := NewAnnounceVerifier([]byte("wrong master")).VerifyAnnounce(signed); ok || legacy {
		t.Fatalf("foreign verifier: ok=%v legacy=%v", ok, legacy)
	}
}

// TestAnnounceGenerationRotation: signing past one key's few-time
// budget rotates generations transparently — every announce in a long
// run verifies, and the generation actually advances.
func TestAnnounceGenerationRotation(t *testing.T) {
	master := []byte("master")
	signer := NewAnnounceSigner(master)
	verifier := NewAnnounceVerifier(master)
	plain, _ := (&proto.Announce{Seq: 1}).Marshal()
	gens := make(map[uint32]bool)
	for i := 0; i < 3*HORSBudget; i++ {
		signed, err := signer.Sign(plain)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := verifier.VerifyAnnounce(signed); !ok {
			t.Fatalf("announce %d failed to verify", i)
		}
		_, _, gen, _, _, err := proto.SplitAnnounceSig(signed)
		if err != nil {
			t.Fatal(err)
		}
		gens[gen] = true
	}
	if len(gens) < 3 {
		t.Fatalf("only %d generations across 3 budgets of signatures", len(gens))
	}
}

// TestAnnouncePubVerifier: a verifier provisioned with published public
// keys — no master — accepts provisioned generations and refuses
// everything else.
func TestAnnouncePubVerifier(t *testing.T) {
	master := []byte("master")
	signer := NewAnnounceSigner(master)
	plain, _ := (&proto.Announce{Seq: 1}).Marshal()
	signed, err := signer.Sign(plain) // generation 1
	if err != nil {
		t.Fatal(err)
	}
	with := NewAnnouncePubVerifier(map[uint32]*HORSPublicKey{1: AnnouncePublic(master, 1)})
	if ok, _ := with.VerifyAnnounce(signed); !ok {
		t.Fatal("provisioned generation rejected")
	}
	without := NewAnnouncePubVerifier(map[uint32]*HORSPublicKey{2: AnnouncePublic(master, 2)})
	if ok, _ := without.VerifyAnnounce(signed); ok {
		t.Fatal("unprovisioned generation accepted")
	}
}

// TestAnnounceSigMalformed: every strict prefix of a signed announce
// must fail verification cleanly (the boundary case — the packet cut
// exactly before its signature section — parses as a legacy unsigned
// announce, never as a verified one).
func TestAnnounceSigMalformed(t *testing.T) {
	master := []byte("master")
	signer := NewAnnounceSigner(master)
	verifier := NewAnnounceVerifier(master)
	plain, _ := (&proto.Announce{Seq: 9, Relays: []proto.RelayInfo{
		{Addr: "10.0.0.1:5006", Group: "239.72.1.1:5004", Channel: 1}}}).Marshal()
	signed, err := signer.Sign(plain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(signed); i++ {
		// Some prefixes parse as shorter legacy announces (the encoding
		// is self-delimiting per section) — that is fine; what must
		// never happen is a truncation passing verification.
		if ok, _ := verifier.VerifyAnnounce(signed[:i]); ok {
			t.Fatalf("truncated announce [:%d] verified", i)
		}
	}
	if ok, legacy := verifier.VerifyAnnounce(signed[:len(plain)]); ok || !legacy {
		t.Fatalf("sig-stripped announce: ok=%v legacy=%v, want (false, true)", ok, legacy)
	}
}
