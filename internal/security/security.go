package security

import (
	"encoding/binary"
	"fmt"

	"repro/internal/proto"
)

// Authenticator signs outgoing packets and verifies incoming ones.
type Authenticator interface {
	// Scheme identifies the wire scheme byte.
	Scheme() proto.AuthScheme
	// Sign wraps pkt with an authentication trailer.
	Sign(pkt []byte) []byte
	// Verify unwraps a packet produced by Sign, returning the inner
	// packet and whether authentication succeeded.
	Verify(pkt []byte) ([]byte, bool)
}

// BatchAuthenticator is an optional Authenticator extension for hot
// paths that process many packets per gather pass (a relay admitting a
// join storm): one call amortizes per-packet setup — for the HMAC
// scheme, the keyed hash construction — across the whole batch. The
// verdicts are bitwise identical to per-packet Verify/Sign; batching
// changes cost, never outcome.
type BatchAuthenticator interface {
	Authenticator
	// VerifyBatch verifies every packet: inners[i] is pkts[i] unwrapped
	// when oks[i], nil otherwise.
	VerifyBatch(pkts [][]byte) (inners [][]byte, oks []bool)
	// SignBatch wraps every packet with its authentication trailer.
	SignBatch(pkts [][]byte) [][]byte
}

// wrap appends trailer, its length, and the scheme byte.
func wrap(scheme proto.AuthScheme, inner, trailer []byte) []byte {
	out := make([]byte, 0, len(inner)+len(trailer)+3)
	out = append(out, inner...)
	out = append(out, trailer...)
	var ln [2]byte
	binary.BigEndian.PutUint16(ln[:], uint16(len(trailer)))
	out = append(out, ln[:]...)
	return append(out, byte(scheme))
}

// unwrap splits a wrapped packet into inner packet and trailer,
// validating the scheme byte.
func unwrap(scheme proto.AuthScheme, pkt []byte) (inner, trailer []byte, ok bool) {
	if len(pkt) < 3 {
		return nil, nil, false
	}
	if proto.AuthScheme(pkt[len(pkt)-1]) != scheme {
		return nil, nil, false
	}
	tlen := int(binary.BigEndian.Uint16(pkt[len(pkt)-3 : len(pkt)-1]))
	if len(pkt) < 3+tlen {
		return nil, nil, false
	}
	cut := len(pkt) - 3 - tlen
	return pkt[:cut], pkt[cut : cut+tlen], true
}

// PeekScheme reports which scheme wrapped the packet.
func PeekScheme(pkt []byte) (proto.AuthScheme, error) {
	if len(pkt) < 3 {
		return proto.AuthNone, fmt.Errorf("security: packet too short")
	}
	return proto.AuthScheme(pkt[len(pkt)-1]), nil
}
