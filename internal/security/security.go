// Package security implements the packet-authentication schemes the
// paper plans for the Ethernet Speaker (§5.1): speakers must not play
// audio from unauthorized sources, and the verification path must be
// cheap enough that an attacker cannot exhaust a speaker by flooding it
// with garbage ("digitally signing every audio packet is not feasible as
// it allows an attacker to overwhelm an ES").
//
// Three schemes are provided behind one wrapping format:
//
//   - HMAC: a shared group secret; fastest, but any group member can
//     forge (symmetric).
//   - Chain: hash-chain key release in the TESLA style — each packet is
//     MACed under the next key of a one-way chain whose anchor is
//     distributed out of band; receivers verify chain ancestry. Source
//     asymmetry depends on the delayed-release timing assumption, which
//     a single LAN satisfies loosely; see the type comment.
//   - HORS: a hash-based few-time signature (after Reyzin & Reyzin's
//     "Better than BiBa", the paper's citation [13]): large public keys
//     but very fast signing and verification compared to conventional
//     signatures.
//
// Wrapped packet format: inner || trailer || u16 trailerLen || u8 scheme.
package security

import (
	"encoding/binary"
	"fmt"

	"repro/internal/proto"
)

// Authenticator signs outgoing packets and verifies incoming ones.
type Authenticator interface {
	// Scheme identifies the wire scheme byte.
	Scheme() proto.AuthScheme
	// Sign wraps pkt with an authentication trailer.
	Sign(pkt []byte) []byte
	// Verify unwraps a packet produced by Sign, returning the inner
	// packet and whether authentication succeeded.
	Verify(pkt []byte) ([]byte, bool)
}

// wrap appends trailer, its length, and the scheme byte.
func wrap(scheme proto.AuthScheme, inner, trailer []byte) []byte {
	out := make([]byte, 0, len(inner)+len(trailer)+3)
	out = append(out, inner...)
	out = append(out, trailer...)
	var ln [2]byte
	binary.BigEndian.PutUint16(ln[:], uint16(len(trailer)))
	out = append(out, ln[:]...)
	return append(out, byte(scheme))
}

// unwrap splits a wrapped packet into inner packet and trailer,
// validating the scheme byte.
func unwrap(scheme proto.AuthScheme, pkt []byte) (inner, trailer []byte, ok bool) {
	if len(pkt) < 3 {
		return nil, nil, false
	}
	if proto.AuthScheme(pkt[len(pkt)-1]) != scheme {
		return nil, nil, false
	}
	tlen := int(binary.BigEndian.Uint16(pkt[len(pkt)-3 : len(pkt)-1]))
	if len(pkt) < 3+tlen {
		return nil, nil, false
	}
	cut := len(pkt) - 3 - tlen
	return pkt[:cut], pkt[cut : cut+tlen], true
}

// PeekScheme reports which scheme wrapped the packet.
func PeekScheme(pkt []byte) (proto.AuthScheme, error) {
	if len(pkt) < 3 {
		return proto.AuthNone, fmt.Errorf("security: packet too short")
	}
	return proto.AuthScheme(pkt[len(pkt)-1]), nil
}
