package security

import (
	"encoding/binary"
	"fmt"

	"repro/internal/proto"
)

// Authenticator signs outgoing packets and verifies incoming ones.
type Authenticator interface {
	// Scheme identifies the wire scheme byte.
	Scheme() proto.AuthScheme
	// Sign wraps pkt with an authentication trailer.
	Sign(pkt []byte) []byte
	// Verify unwraps a packet produced by Sign, returning the inner
	// packet and whether authentication succeeded.
	Verify(pkt []byte) ([]byte, bool)
}

// BatchAuthenticator is an optional Authenticator extension for hot
// paths that process many packets per gather pass (a relay admitting a
// join storm): one call amortizes per-packet setup — for the HMAC
// scheme, the keyed hash construction — across the whole batch. The
// verdicts are bitwise identical to per-packet Verify/Sign; batching
// changes cost, never outcome.
//
// The batch may mix identities: srcs[i] is the UDP source address
// pkts[i] arrived from, which source-binding schemes (the per-subscriber
// identity scheme) fold into the verified payload. Schemes that do not
// bind the source (HMAC) ignore it.
type BatchAuthenticator interface {
	Authenticator
	// VerifyBatch verifies every packet: inners[i] is pkts[i] unwrapped
	// when oks[i], nil otherwise. srcs[i] is pkts[i]'s UDP source; nil
	// srcs is allowed for schemes that ignore it.
	VerifyBatch(pkts [][]byte, srcs []string) (inners [][]byte, oks []bool)
	// SignBatch wraps every packet with its authentication trailer.
	SignBatch(pkts [][]byte) [][]byte
}

// SessionAuthenticator is the relay-side face of the per-subscriber
// identity scheme (AuthIdentity): requests carry the sender's identity
// ID and a monotonic sequence, and the tag binds the datagram's UDP
// source address. The relay keeps the last-seen sequence in the
// subscriber session and uses identity + sequence as its replay window;
// replies are signed per recipient identity.
type SessionAuthenticator interface {
	Authenticator
	// VerifySession unwraps a request that arrived from src, returning
	// the claimed identity and trailer sequence alongside the inner
	// packet. ok is false when the tag does not verify for that
	// identity, source, and sequence.
	VerifySession(pkt []byte, src string) (inner []byte, id uint32, seq uint64, ok bool)
	// VerifySessionBatch is the batched form of VerifySession over a
	// mixed-identity admission batch.
	VerifySessionBatch(pkts [][]byte, srcs []string) (inners [][]byte, ids []uint32, seqs []uint64, oks []bool)
	// SignFor wraps a reply addressed to the named identity.
	SignFor(id uint32, pkt []byte) []byte
	// SignForBatch wraps each reply for its recipient identity.
	SignForBatch(ids []uint32, pkts [][]byte) [][]byte
}

// wrap appends trailer, its length, and the scheme byte.
func wrap(scheme proto.AuthScheme, inner, trailer []byte) []byte {
	out := make([]byte, 0, len(inner)+len(trailer)+3)
	out = append(out, inner...)
	out = append(out, trailer...)
	var ln [2]byte
	binary.BigEndian.PutUint16(ln[:], uint16(len(trailer)))
	out = append(out, ln[:]...)
	return append(out, byte(scheme))
}

// unwrap splits a wrapped packet into inner packet and trailer,
// validating the scheme byte.
func unwrap(scheme proto.AuthScheme, pkt []byte) (inner, trailer []byte, ok bool) {
	if len(pkt) < 3 {
		return nil, nil, false
	}
	if proto.AuthScheme(pkt[len(pkt)-1]) != scheme {
		return nil, nil, false
	}
	tlen := int(binary.BigEndian.Uint16(pkt[len(pkt)-3 : len(pkt)-1]))
	if len(pkt) < 3+tlen {
		return nil, nil, false
	}
	cut := len(pkt) - 3 - tlen
	return pkt[:cut], pkt[cut : cut+tlen], true
}

// PeekScheme reports which scheme wrapped the packet.
func PeekScheme(pkt []byte) (proto.AuthScheme, error) {
	if len(pkt) < 3 {
		return proto.AuthNone, fmt.Errorf("security: packet too short")
	}
	return proto.AuthScheme(pkt[len(pkt)-1]), nil
}
