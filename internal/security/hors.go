package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/proto"
)

// HORS parameters: t secrets, k revealed per signature. With t=256 and
// k=16 a signature reveals 16 of 256 secrets; after a handful of
// signatures under one key the scheme weakens, so senders rotate keys.
// These are the "fast signing and verification" one-time signature
// parameters in the spirit of Reyzin & Reyzin [13].
const (
	horsT = 256
	horsK = 16
)

// HORSKey is a few-time signing key.
type HORSKey struct {
	secrets [horsT][]byte
	pub     [horsT][]byte
	used    int
}

// HORSPublicKey is the verification half: H(s_i) for each secret.
type HORSPublicKey struct {
	pub [horsT][]byte
}

// GenerateHORS derives a key pair deterministically from a seed (use
// crypto/rand material in production; determinism keeps experiments
// replayable).
func GenerateHORS(seed []byte) *HORSKey {
	k := &HORSKey{}
	for i := 0; i < horsT; i++ {
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		m := hmac.New(sha256.New, seed)
		m.Write([]byte("es-hors-secret:"))
		m.Write(idx[:])
		k.secrets[i] = m.Sum(nil)
		h := sha256.Sum256(k.secrets[i])
		k.pub[i] = h[:]
	}
	return k
}

// Public returns the verification key (t × 32 bytes — the scheme's cost
// is key size, its win is speed).
func (k *HORSKey) Public() *HORSPublicKey {
	p := &HORSPublicKey{}
	for i := range k.pub {
		p.pub[i] = append([]byte(nil), k.pub[i]...)
	}
	return p
}

// Uses returns how many signatures this key has produced; rotate keys
// well before ~t/(2k) uses.
func (k *HORSKey) Uses() int { return k.used }

// horsIndices maps a message digest to k secret indices.
func horsIndices(msg []byte) [horsK]int {
	h := sha256.Sum256(msg)
	var out [horsK]int
	for i := 0; i < horsK; i++ {
		out[i] = int(h[i]) // t=256: one byte per index
	}
	return out
}

// HORSAuth wraps a key pair as an Authenticator. The sender holds Key;
// receivers hold only Pub.
type HORSAuth struct {
	Key *HORSKey       // nil on receivers
	Pub *HORSPublicKey // required
}

// Scheme implements Authenticator.
func (a *HORSAuth) Scheme() proto.AuthScheme { return proto.AuthHORS }

// Sign implements Authenticator. Trailer: k×32-byte revealed secrets.
func (a *HORSAuth) Sign(pkt []byte) []byte {
	if a.Key == nil {
		return wrap(proto.AuthHORS, pkt, make([]byte, horsK*sha256.Size))
	}
	idx := horsIndices(pkt)
	trailer := make([]byte, 0, horsK*sha256.Size)
	for _, i := range idx {
		trailer = append(trailer, a.Key.secrets[i]...)
	}
	a.Key.used++
	return wrap(proto.AuthHORS, pkt, trailer)
}

// Verify implements Authenticator: k hash evaluations, no bignum math —
// the DoS-resistance property §5.1 asks for.
func (a *HORSAuth) Verify(pkt []byte) ([]byte, bool) {
	if a.Pub == nil {
		return nil, false
	}
	inner, trailer, ok := unwrap(proto.AuthHORS, pkt)
	if !ok || len(trailer) != horsK*sha256.Size {
		return nil, false
	}
	idx := horsIndices(inner)
	for j, i := range idx {
		secret := trailer[j*sha256.Size : (j+1)*sha256.Size]
		h := sha256.Sum256(secret)
		if !hmac.Equal(h[:], a.Pub.pub[i]) {
			return nil, false
		}
	}
	return inner, true
}
