package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/proto"
)

// HORS parameters: t secrets, k revealed per signature. With t=256 and
// k=16 a signature reveals 16 of 256 secrets; after a handful of
// signatures under one key the scheme weakens, so senders rotate keys.
// These are the "fast signing and verification" one-time signature
// parameters in the spirit of Reyzin & Reyzin [13].
const (
	horsT = 256
	horsK = 16
)

// HORSBudget is the safe signature count for one key: past ~t/(2k)
// uses enough secrets are revealed that forging by digest collision
// becomes realistic, so signers refuse (emitting an unverifiable
// trailer, like an exhausted hash chain) rather than silently weaken.
const HORSBudget = horsT / (2 * horsK)

// HORSKey is a few-time signing key.
type HORSKey struct {
	secrets [horsT][]byte
	pub     [horsT][]byte
	used    int
}

// HORSPublicKey is the verification half: H(s_i) for each secret.
type HORSPublicKey struct {
	pub [horsT][]byte
}

// GenerateHORS derives a key pair deterministically from a seed (use
// crypto/rand material in production; determinism keeps experiments
// replayable).
func GenerateHORS(seed []byte) *HORSKey {
	k := &HORSKey{}
	for i := 0; i < horsT; i++ {
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		m := hmac.New(sha256.New, seed)
		m.Write([]byte("es-hors-secret:"))
		m.Write(idx[:])
		k.secrets[i] = m.Sum(nil)
		h := sha256.Sum256(k.secrets[i])
		k.pub[i] = h[:]
	}
	return k
}

// Public returns the verification key (t × 32 bytes — the scheme's cost
// is key size, its win is speed).
func (k *HORSKey) Public() *HORSPublicKey {
	p := &HORSPublicKey{}
	for i := range k.pub {
		p.pub[i] = append([]byte(nil), k.pub[i]...)
	}
	return p
}

// Uses returns how many signatures this key has produced; the key
// refuses to sign past HORSBudget of them.
func (k *HORSKey) Uses() int { return k.used }

// Exhausted reports whether the key has spent its safe signature
// budget. Rotate before this turns true; past it Sign emits only
// unverifiable trailers.
func (k *HORSKey) Exhausted() bool { return k.used >= HORSBudget }

// sign reveals the k secrets a message's digest selects, or nil when
// the budget is spent.
func (k *HORSKey) sign(msg []byte) []byte {
	if k.Exhausted() {
		return nil
	}
	idx := horsIndices(msg)
	sig := make([]byte, 0, horsK*sha256.Size)
	for _, i := range idx {
		sig = append(sig, k.secrets[i]...)
	}
	k.used++
	return sig
}

// verify checks a raw k×32-byte signature over msg against the public
// key.
func (p *HORSPublicKey) verify(msg, sig []byte) bool {
	if len(sig) != horsK*sha256.Size {
		return false
	}
	idx := horsIndices(msg)
	for j, i := range idx {
		secret := sig[j*sha256.Size : (j+1)*sha256.Size]
		h := sha256.Sum256(secret)
		if !hmac.Equal(h[:], p.pub[i]) {
			return false
		}
	}
	return true
}

// horsIndices maps a message digest to k secret indices.
func horsIndices(msg []byte) [horsK]int {
	h := sha256.Sum256(msg)
	var out [horsK]int
	for i := 0; i < horsK; i++ {
		out[i] = int(h[i]) // t=256: one byte per index
	}
	return out
}

// HORSAuth wraps a key pair as an Authenticator. The sender holds Key;
// receivers hold only Pub.
type HORSAuth struct {
	Key *HORSKey       // nil on receivers
	Pub *HORSPublicKey // required
}

// Scheme implements Authenticator.
func (a *HORSAuth) Scheme() proto.AuthScheme { return proto.AuthHORS }

// Sign implements Authenticator. Trailer: k×32-byte revealed secrets.
// A nil key — and a key past its safe signature budget (HORSBudget) —
// emits an unverifiable zero trailer instead: receivers drop it, which
// fails loud at the receiver counters instead of silently degrading the
// scheme packet by packet. Operators must rotate keys before
// exhaustion, exactly as with a spent hash chain.
func (a *HORSAuth) Sign(pkt []byte) []byte {
	if a.Key == nil {
		return wrap(proto.AuthHORS, pkt, make([]byte, horsK*sha256.Size))
	}
	sig := a.Key.sign(pkt)
	if sig == nil {
		return wrap(proto.AuthHORS, pkt, make([]byte, horsK*sha256.Size))
	}
	return wrap(proto.AuthHORS, pkt, sig)
}

// Verify implements Authenticator: k hash evaluations, no bignum math —
// the DoS-resistance property §5.1 asks for.
func (a *HORSAuth) Verify(pkt []byte) ([]byte, bool) {
	if a.Pub == nil {
		return nil, false
	}
	inner, trailer, ok := unwrap(proto.AuthHORS, pkt)
	if !ok || !a.Pub.verify(inner, trailer) {
		return nil, false
	}
	return inner, true
}
