package dvr

import (
	"sync"
	"time"

	"repro/internal/vclock"
)

// Defaults for the ring bounds. The capacity default assumes the
// paper's nominal 10 ms chunking (100 packets/s) with headroom for a
// control stream and bursts; an operator recording denser streams
// raises it alongside the depth.
const (
	DefaultDepth = 30 * time.Second
	// DefaultPacketsPerSecond sizes a ring's packet capacity from its
	// depth when the caller does not give one.
	DefaultPacketsPerSecond = 200
	// MinCapacity floors the derived capacity so shallow depths still
	// hold a useful backlog.
	MinCapacity = 256
)

// ReadStatus is the outcome of a cursor read.
type ReadStatus int

const (
	// ReadOK: the entry was copied out and the cursor may advance.
	ReadOK ReadStatus = iota
	// ReadCaughtUp: the cursor is at the head — nothing recorded beyond
	// it. A catch-up subscriber seeing this has converged on live.
	ReadCaughtUp
	// ReadEvicted: the ring wrapped (or aged) past the cursor while the
	// reader fell behind. The reader must re-clamp to Tail and go on —
	// losing the oldest backlog, never blocking the writer.
	ReadEvicted
)

// slot is one recorded generation. Its buffer is reused when the ring
// wraps, so recording allocates only until every slot has been touched
// once.
type slot struct {
	buf []byte
	ctl bool      // a Control packet (catch-up starts from one)
	at  time.Time // arrival on the relay's clock
}

// Ring is a bounded ring of one channel's recent packets, in arrival
// order. Entries are addressed by an absolute, monotonically
// increasing index: the live window is [Tail, Head), and an index that
// fell out of it reads as evicted. All methods are safe for concurrent
// use.
type Ring struct {
	clock vclock.Clock
	depth time.Duration

	mu    sync.Mutex
	slots []slot
	tail  uint64 // oldest live index
	head  uint64 // next index to be written
}

// NewRing returns a ring bounded by depth (seconds of history) and
// capacity (packets; <= 0 derives one from the depth).
func NewRing(clock vclock.Clock, depth time.Duration, capacity int) *Ring {
	if clock == nil {
		clock = vclock.System
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	if capacity <= 0 {
		capacity = int(depth/time.Second) * DefaultPacketsPerSecond
		if capacity < MinCapacity {
			capacity = MinCapacity
		}
	}
	return &Ring{clock: clock, depth: depth, slots: make([]slot, capacity)}
}

// Depth reports the ring's time bound.
func (r *Ring) Depth() time.Duration { return r.depth }

// Append records one packet (a copy — the caller keeps ownership of
// data). ctl marks a Control packet, the entries catch-up starts from.
// It returns the number of entries evicted to make room, by capacity
// or by age.
func (r *Ring) Append(data []byte, ctl bool) int {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	evicted := r.trimLocked(now)
	if r.head-r.tail == uint64(len(r.slots)) {
		r.tail++
		evicted++
	}
	s := &r.slots[r.head%uint64(len(r.slots))]
	s.buf = append(s.buf[:0], data...)
	s.ctl = ctl
	s.at = now
	r.head++
	return evicted
}

// trimLocked drops entries older than the depth. Called with mu held.
func (r *Ring) trimLocked(now time.Time) int {
	cutoff := now.Add(-r.depth)
	n := 0
	for r.tail < r.head {
		if !r.slots[r.tail%uint64(len(r.slots))].at.Before(cutoff) {
			break
		}
		r.tail++
		n++
	}
	return n
}

// Head returns the next index to be written; [Tail, Head) is the live
// window.
func (r *Ring) Head() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// Tail returns the oldest live index.
func (r *Ring) Tail() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tail
}

// Len reports the number of live entries.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.head - r.tail)
}

// Clamp resolves a requested time shift to a start cursor. The cursor
// lands on the oldest entry within the shift, then walks back to the
// latest Control at or before it so a decoder joining there can lock
// immediately (tune-in needs a configuration packet first; the walk
// can deepen the shift by up to one control interval). The granted
// shift is the age of the entry actually chosen — clamped reports
// whether that is less history than asked for (the ring's depth or
// wrap bound bit). A shift nothing in the ring satisfies (quiet
// channel, empty ring) starts at Head with a zero grant: live.
func (r *Ring) Clamp(shift time.Duration) (start uint64, granted time.Duration, clamped bool) {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trimLocked(now)
	if r.head == r.tail {
		return r.head, 0, shift > 0
	}
	target := now.Add(-shift)
	// Binary search for the oldest entry at or after the target time
	// (entries are in arrival order).
	lo, hi := r.tail, r.head
	for lo < hi {
		mid := lo + (hi-lo)/2
		if r.slots[mid%uint64(len(r.slots))].at.Before(target) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start = lo
	if start == r.head {
		// Everything recorded is older than the shift: the channel has
		// been quiet for longer than the request. Nothing to replay.
		return r.head, 0, false
	}
	clamped = start == r.tail && r.slots[r.tail%uint64(len(r.slots))].at.After(target)
	// Walk back to the governing Control so the subscriber can decode
	// from its first packet.
	if !r.slots[start%uint64(len(r.slots))].ctl {
		for i := start; i > r.tail; i-- {
			if r.slots[(i-1)%uint64(len(r.slots))].ctl {
				start = i - 1
				break
			}
		}
	}
	granted = now.Sub(r.slots[start%uint64(len(r.slots))].at)
	if granted < 0 {
		granted = 0
	}
	return start, granted, clamped
}

// Read copies the entry at idx into buf (grown as needed) and returns
// the filled slice, the entry's age, and whether it was a Control
// packet. A cursor at Head reads as caught up; one behind Tail reads
// as evicted — the reader re-clamps to Tail and continues, so a slow
// reader can never block recording or hold a reference into a slot
// the writer is about to reuse.
func (r *Ring) Read(idx uint64, buf []byte) (data []byte, age time.Duration, ctl bool, st ReadStatus) {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trimLocked(now)
	if idx < r.tail {
		return buf, 0, false, ReadEvicted
	}
	if idx >= r.head {
		return buf, 0, false, ReadCaughtUp
	}
	s := &r.slots[idx%uint64(len(r.slots))]
	return append(buf[:0], s.buf...), now.Sub(s.at), s.ctl, ReadOK
}

// Store is the per-channel ring table a DVR-enabled relay owns.
type Store struct {
	clock    vclock.Clock
	depth    time.Duration
	capacity int

	mu    sync.Mutex
	rings map[uint32]*Ring
}

// NewStore returns a store whose rings share the given bounds.
func NewStore(clock vclock.Clock, depth time.Duration, capacity int) *Store {
	return &Store{clock: clock, depth: depth, capacity: capacity, rings: make(map[uint32]*Ring)}
}

// Depth reports the per-ring time bound.
func (s *Store) Depth() time.Duration {
	if s.depth <= 0 {
		return DefaultDepth
	}
	return s.depth
}

// Ring returns the channel's ring, creating it on first use; created
// reports whether this call created it (the caller's gauge hook).
func (s *Store) Ring(ch uint32) (r *Ring, created bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r = s.rings[ch]
	if r == nil {
		r = NewRing(s.clock, s.depth, s.capacity)
		s.rings[ch] = r
		created = true
	}
	return r, created
}

// Peek returns the channel's ring, or nil if nothing has been recorded
// on the channel yet.
func (s *Store) Peek(ch uint32) *Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rings[ch]
}
