// Package dvr is the relay's time-shift store: a bounded per-channel
// ring of recent stream generations that turns the per-subscriber
// lease state the relay already keeps into a DVR (the §3.3
// time-shifting application). A relay feeds its channel's ring from
// the upstream receive loop; a subscriber joining with a time shift
// ("from T seconds ago", proto.Subscribe.ShiftMs) is started from a
// cursor into the ring and fed the backlog at faster than realtime
// until it converges on live. Pause/resume rides the same cursor.
//
// The ring is bounded twice: by a packet capacity (absolute memory
// bound) and by a depth in seconds (entries older than the depth are
// trimmed even when the ring is not full). Slot buffers are reused
// across generations, so steady-state recording does not allocate per
// packet.
package dvr
