package dvr

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

// testClock is a hand-advanced clock: the ring only ever asks Now, so
// the rest of the interface rides on the real clock.
type testClock struct {
	vclock.Clock
	mu  sync.Mutex
	now time.Time
}

func simClock() *testClock {
	return &testClock{Clock: vclock.Real{}, now: time.Unix(1000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func pkt(i int) []byte { return []byte(fmt.Sprintf("pkt-%04d", i)) }

func TestRingAppendRead(t *testing.T) {
	clk := simClock()
	r := NewRing(clk, 10*time.Second, 16)
	for i := 0; i < 5; i++ {
		r.Append(pkt(i), i == 0)
		clk.Advance(10 * time.Millisecond)
	}
	if r.Len() != 5 || r.Tail() != 0 || r.Head() != 5 {
		t.Fatalf("ring window [%d,%d) len %d, want [0,5) len 5", r.Tail(), r.Head(), r.Len())
	}
	var buf []byte
	for i := uint64(0); i < 5; i++ {
		data, age, ctl, st := r.Read(i, buf)
		if st != ReadOK {
			t.Fatalf("Read(%d) status %v", i, st)
		}
		if !bytes.Equal(data, pkt(int(i))) {
			t.Fatalf("Read(%d) = %q, want %q", i, data, pkt(int(i)))
		}
		if ctl != (i == 0) {
			t.Fatalf("Read(%d) ctl = %v", i, ctl)
		}
		wantAge := time.Duration(5-i) * 10 * time.Millisecond
		if age != wantAge {
			t.Fatalf("Read(%d) age = %v, want %v", i, age, wantAge)
		}
		buf = data
	}
	if _, _, _, st := r.Read(5, buf); st != ReadCaughtUp {
		t.Fatalf("Read(head) status %v, want ReadCaughtUp", st)
	}
}

func TestRingWrapEvictsOldest(t *testing.T) {
	clk := simClock()
	r := NewRing(clk, time.Hour, 4)
	evicted := 0
	for i := 0; i < 10; i++ {
		evicted += r.Append(pkt(i), false)
		clk.Advance(time.Millisecond)
	}
	if evicted != 6 {
		t.Fatalf("evicted %d entries, want 6", evicted)
	}
	if r.Tail() != 6 || r.Head() != 10 {
		t.Fatalf("window [%d,%d), want [6,10)", r.Tail(), r.Head())
	}
	// A cursor the wrap passed reads as evicted: the reader re-clamps
	// to Tail and carries on — mid-catch-up wrap loses the oldest
	// backlog, never blocks the writer.
	if _, _, _, st := r.Read(3, nil); st != ReadEvicted {
		t.Fatalf("Read(evicted) status %v, want ReadEvicted", st)
	}
	data, _, _, st := r.Read(r.Tail(), nil)
	if st != ReadOK || !bytes.Equal(data, pkt(6)) {
		t.Fatalf("Read(tail) = %q/%v, want %q/ReadOK", data, st, pkt(6))
	}
}

func TestRingDepthTrimsByAge(t *testing.T) {
	clk := simClock()
	r := NewRing(clk, 2*time.Second, 1024)
	for i := 0; i < 8; i++ {
		r.Append(pkt(i), false)
		clk.Advance(time.Second)
	}
	// 8 appends one second apart with a 2 s depth: only the youngest
	// two survive (trim happens on the touch, not on a timer).
	if r.Len() > 3 {
		t.Fatalf("ring holds %d entries, want <= 3 after age trim", r.Len())
	}
	if _, _, _, st := r.Read(0, nil); st != ReadEvicted {
		t.Fatalf("Read(aged-out) status %v, want ReadEvicted", st)
	}
}

func TestRingBufferReuse(t *testing.T) {
	clk := simClock()
	r := NewRing(clk, time.Hour, 8)
	payload := bytes.Repeat([]byte{0xab}, 64)
	for i := 0; i < 8; i++ {
		r.Append(payload, false)
	}
	// Every slot buffer exists now; further appends must reuse them.
	allocs := testing.AllocsPerRun(200, func() {
		r.Append(payload, false)
	})
	if allocs > 0 {
		t.Fatalf("Append allocates %.1f times per packet after warm-up, want 0", allocs)
	}
}

func TestClampFindsShiftAndControl(t *testing.T) {
	clk := simClock()
	r := NewRing(clk, time.Minute, 1024)
	// One control each second, nine data packets between.
	for i := 0; i < 100; i++ {
		r.Append(pkt(i), i%10 == 0)
		clk.Advance(100 * time.Millisecond)
	}
	// 100 entries, 100 ms apart; newest is 100 ms old. Ask for 3 s ago:
	// the time target lands ~30 entries from the end, and the cursor
	// walks back to the control just before it.
	start, granted, clamped := r.Clamp(3 * time.Second)
	if clamped {
		t.Fatalf("Clamp(3s) clamped, ring holds 10s")
	}
	if !(start%10 == 0) {
		t.Fatalf("Clamp start %d not on a control packet", start)
	}
	if start > 70 {
		t.Fatalf("Clamp start %d, want <= 70 (3s back plus control walk-back)", start)
	}
	if granted < 3*time.Second {
		t.Fatalf("granted %v < requested 3s (walk-back can only deepen)", granted)
	}
	// Deeper than the ring: clamp to the oldest entry and say so.
	start, granted, clamped = r.Clamp(time.Hour)
	if !clamped || start != r.Tail() {
		t.Fatalf("Clamp(1h) = (%d, %v, clamped=%v), want tail %d clamped", start, granted, clamped, r.Tail())
	}
	if granted > 11*time.Second {
		t.Fatalf("Clamp(1h) granted %v, want about the ring's 10s of history", granted)
	}
}

func TestClampQuietChannelStartsLive(t *testing.T) {
	clk := simClock()
	r := NewRing(clk, time.Minute, 64)
	start, granted, clamped := r.Clamp(10 * time.Second)
	if start != r.Head() || granted != 0 || !clamped {
		t.Fatalf("empty ring Clamp = (%d, %v, %v), want (head, 0, clamped)", start, granted, clamped)
	}
	// Entries exist but are all older than the shift window's start:
	// the channel went quiet. Nothing to replay — start live.
	r.Append(pkt(0), true)
	clk.Advance(20 * time.Second)
	start, granted, clamped = r.Clamp(10 * time.Second)
	if start != r.Head() || granted != 0 || clamped {
		t.Fatalf("quiet-channel Clamp = (%d, %v, %v), want (head, 0, unclamped)", start, granted, clamped)
	}
}

func TestStoreRingPerChannel(t *testing.T) {
	s := NewStore(simClock(), 5*time.Second, 32)
	r1, created := s.Ring(1)
	if !created || r1 == nil {
		t.Fatalf("first Ring(1) = (%v, created=%v)", r1, created)
	}
	if _, created := s.Ring(1); created {
		t.Fatalf("second Ring(1) claims creation")
	}
	r2, _ := s.Ring(2)
	if r2 == r1 {
		t.Fatalf("channels share a ring")
	}
	if s.Peek(3) != nil {
		t.Fatalf("Peek(3) invented a ring")
	}
	if s.Peek(1) != r1 {
		t.Fatalf("Peek(1) lost the ring")
	}
	if s.Depth() != 5*time.Second {
		t.Fatalf("Depth() = %v", s.Depth())
	}
}
