package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/audio"
	"repro/internal/dsp"
)

// OVL is the lossy transform codec standing in for Ogg Vorbis: a lapped
// MDCT with a sine window, per-band dead-zone quantization against an
// absolute noise floor set by the quality index, and Rice entropy coding.
// Like Vorbis it is a psycho-acoustic-style frequency-domain coder whose
// CPU cost dominates the rebroadcaster (Figure 4), whose frame buffering
// adds latency (§2.2), and whose losses compound across generations.
//
// Frame layout (big-endian):
//
//	magic   uint8  = 0xA5
//	version uint8  = 1
//	chans   uint8
//	quality uint8  (0..10)
//	ncoeff  uint16 (MDCT size N)
//	paylen  uint16 (bitstream bytes following the header)
//	payload: per channel, per band: 1 zero-band flag bit;
//	         if nonzero: 4-bit Rice k, then zigzag Rice codes.
//
// Each frame decodes independently given N samples of overlap history;
// a speaker that tunes in mid-stream fades in over one frame (§2.3).

const (
	ovlMagic    = 0xA5
	ovlVersion  = 1
	ovlHeader   = 8
	ovlNumBands = 16
)

func init() {
	Register(Info{
		Name:  "ovl",
		Lossy: true,
		New: func(p audio.Params, quality int) (Encoder, error) {
			return newOVLEncoder(p, quality)
		},
		NewDecoder: func(p audio.Params) (Decoder, error) {
			return newOVLDecoder(p)
		},
	})
}

// ovlCoeffs returns the MDCT size for a sample rate: shorter frames for
// low-rate streams keep latency proportionate.
func ovlCoeffs(rate int) int {
	if rate >= 32000 {
		return 256
	}
	return 128
}

// ovlBandEdges splits n coefficients into ovlNumBands bands with
// exponentially growing widths (narrow at low frequencies).
func ovlBandEdges(n int) []int {
	const alpha = 0.35
	edges := make([]int, ovlNumBands+1)
	denom := math.Pow(2, alpha*ovlNumBands) - 1
	for i := 1; i <= ovlNumBands; i++ {
		edges[i] = int(math.Round(float64(n) * (math.Pow(2, alpha*float64(i)) - 1) / denom))
	}
	// Force strict monotonicity and exact coverage.
	for i := 1; i <= ovlNumBands; i++ {
		if edges[i] <= edges[i-1] {
			edges[i] = edges[i-1] + 1
		}
	}
	edges[ovlNumBands] = n
	for i := ovlNumBands; i > 1; i-- {
		if edges[i] <= edges[i-1] {
			edges[i-1] = edges[i] - 1
		}
	}
	return edges
}

// ovlSteps returns the per-band quantization step for a quality index.
// The base floor halves with each quality notch; low quality additionally
// crushes high bands (the "more aggressive compression where quality is
// less of a concern" knob from §2.2).
func ovlSteps(quality int) []float64 {
	if quality < 0 {
		quality = 0
	}
	if quality > MaxQuality {
		quality = MaxQuality
	}
	base := 32768 / math.Pow(2, float64(quality)+4)
	steps := make([]float64, ovlNumBands)
	for b := range steps {
		penalty := 1 + float64(b*b)*float64(MaxQuality-quality)/40
		steps[b] = base * penalty
	}
	return steps
}

type ovlEncoder struct {
	params  audio.Params
	quality int
	n       int
	mdct    *dsp.MDCT
	edges   []int
	steps   []float64

	byteBuf []byte      // undecoded raw input
	hist    [][]float64 // per channel: previous N input samples
	frame   []float64   // scratch 2N window
	coeffs  []float64   // scratch N coefficients
}

func newOVLEncoder(p audio.Params, quality int) (*ovlEncoder, error) {
	n := ovlCoeffs(p.SampleRate)
	m, err := dsp.NewMDCT(n)
	if err != nil {
		return nil, err
	}
	if quality < 0 {
		quality = 0
	}
	if quality > MaxQuality {
		quality = MaxQuality
	}
	e := &ovlEncoder{
		params:  p,
		quality: quality,
		n:       n,
		mdct:    m,
		edges:   ovlBandEdges(n),
		steps:   ovlSteps(quality),
		hist:    make([][]float64, p.Channels),
		frame:   make([]float64, 2*n),
		coeffs:  make([]float64, n),
	}
	for c := range e.hist {
		e.hist[c] = make([]float64, n)
	}
	return e, nil
}

func (e *ovlEncoder) Name() string { return "ovl" }

// Latency returns the encoder's buffering latency in frames of audio.
func (e *ovlEncoder) Latency() int { return e.n }

func (e *ovlEncoder) Encode(raw []byte) ([]byte, error) {
	e.byteBuf = append(e.byteBuf, raw...)
	hopBytes := e.n * e.params.Channels * e.params.Encoding.BytesPerSample()
	var out []byte
	for len(e.byteBuf) >= hopBytes {
		chunk := e.byteBuf[:hopBytes]
		samples := audio.Decode(e.params, chunk)
		e.byteBuf = e.byteBuf[hopBytes:]
		frame, err := e.encodeHop(samples)
		if err != nil {
			return nil, err
		}
		out = append(out, frame...)
	}
	return out, nil
}

func (e *ovlEncoder) Flush() ([]byte, error) {
	hopBytes := e.n * e.params.Channels * e.params.Encoding.BytesPerSample()
	if len(e.byteBuf) == 0 {
		return nil, nil
	}
	pad := make([]byte, hopBytes-len(e.byteBuf))
	audio.FillSilence(e.params.Encoding, pad)
	out, err := e.Encode(pad)
	e.byteBuf = nil
	for c := range e.hist {
		for i := range e.hist[c] {
			e.hist[c][i] = 0
		}
	}
	return out, err
}

// encodeHop encodes one hop of N new frames (interleaved samples).
func (e *ovlEncoder) encodeHop(samples []int16) ([]byte, error) {
	ch := e.params.Channels
	w := dsp.NewBitWriter()
	scale := 2 / float64(e.n)
	for c := 0; c < ch; c++ {
		// Assemble the 2N analysis window: previous N + new N.
		copy(e.frame[:e.n], e.hist[c])
		for i := 0; i < e.n; i++ {
			v := float64(samples[i*ch+c])
			e.frame[e.n+i] = v
			e.hist[c][i] = v
		}
		e.mdct.Forward(e.frame, e.coeffs)
		for b := 0; b < ovlNumBands; b++ {
			lo, hi := e.edges[b], e.edges[b+1]
			step := e.steps[b]
			// Quantize the band; detect the all-zero case first.
			allZero := true
			qs := make([]uint32, 0, hi-lo)
			for k := lo; k < hi; k++ {
				q := int32(math.Round(e.coeffs[k] * scale / step))
				u := dsp.ZigZag(q)
				if u != 0 {
					allZero = false
				}
				qs = append(qs, u)
			}
			if allZero {
				w.WriteBit(0)
				continue
			}
			w.WriteBit(1)
			k := dsp.BestRiceK(qs)
			if k > 15 {
				k = 15
			}
			w.WriteBits(uint64(k), 4)
			for _, u := range qs {
				dsp.RiceEncode(w, u, k)
			}
		}
	}
	payload := w.Bytes()
	if len(payload) > 65535 {
		return nil, fmt.Errorf("codec: ovl frame payload %d bytes exceeds format limit", len(payload))
	}
	frame := make([]byte, ovlHeader+len(payload))
	frame[0] = ovlMagic
	frame[1] = ovlVersion
	frame[2] = byte(ch)
	frame[3] = byte(e.quality)
	binary.BigEndian.PutUint16(frame[4:6], uint16(e.n))
	binary.BigEndian.PutUint16(frame[6:8], uint16(len(payload)))
	copy(frame[ovlHeader:], payload)
	return frame, nil
}

type ovlDecoder struct {
	params  audio.Params
	overlap [][]float64 // per channel: trailing N samples of the last IMDCT
	n       int         // established by the first frame seen
}

func newOVLDecoder(p audio.Params) (*ovlDecoder, error) {
	return &ovlDecoder{params: p}, nil
}

func (d *ovlDecoder) Name() string { return "ovl" }

func (d *ovlDecoder) Reset() {
	d.overlap = nil
	d.n = 0
}

var errOVLFrame = errors.New("codec: malformed ovl frame")

func (d *ovlDecoder) Decode(pkt []byte) ([]byte, error) {
	var out []byte
	for len(pkt) > 0 {
		if len(pkt) < ovlHeader {
			return nil, errOVLFrame
		}
		if pkt[0] != ovlMagic || pkt[1] != ovlVersion {
			return nil, fmt.Errorf("codec: bad ovl frame magic/version %#x/%d", pkt[0], pkt[1])
		}
		ch := int(pkt[2])
		quality := int(pkt[3])
		n := int(binary.BigEndian.Uint16(pkt[4:6]))
		payLen := int(binary.BigEndian.Uint16(pkt[6:8]))
		if ch != d.params.Channels {
			return nil, fmt.Errorf("codec: ovl frame has %d channels, stream has %d", ch, d.params.Channels)
		}
		if quality > MaxQuality || n < 16 || n > 4096 || n%2 != 0 {
			return nil, errOVLFrame
		}
		if len(pkt) < ovlHeader+payLen {
			return nil, errOVLFrame
		}
		payload := pkt[ovlHeader : ovlHeader+payLen]
		pkt = pkt[ovlHeader+payLen:]
		pcm, err := d.decodeFrame(n, quality, payload)
		if err != nil {
			return nil, err
		}
		out = append(out, pcm...)
	}
	return out, nil
}

func (d *ovlDecoder) decodeFrame(n, quality int, payload []byte) ([]byte, error) {
	if d.n != n {
		// First frame, or the producer changed frame size: restart overlap.
		d.n = n
		d.overlap = make([][]float64, d.params.Channels)
		for c := range d.overlap {
			d.overlap[c] = make([]float64, n)
		}
	}
	m, err := dsp.NewMDCT(n)
	if err != nil {
		return nil, err
	}
	edges := ovlBandEdges(n)
	steps := ovlSteps(quality)
	r := dsp.NewBitReader(payload)
	ch := d.params.Channels
	coeffs := make([]float64, n)
	buf := make([]float64, 2*n)
	samples := make([]int16, n*ch)
	unscale := float64(n) / 2
	for c := 0; c < ch; c++ {
		for i := range coeffs {
			coeffs[i] = 0
		}
		for b := 0; b < ovlNumBands; b++ {
			flag, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("codec: ovl band flag: %w", err)
			}
			if flag == 0 {
				continue
			}
			kv, err := r.ReadBits(4)
			if err != nil {
				return nil, fmt.Errorf("codec: ovl rice k: %w", err)
			}
			step := steps[b]
			for k := edges[b]; k < edges[b+1]; k++ {
				u, err := dsp.RiceDecode(r, uint(kv))
				if err != nil {
					return nil, fmt.Errorf("codec: ovl coeff: %w", err)
				}
				coeffs[k] = float64(dsp.UnZigZag(u)) * step * unscale
			}
		}
		// Overlap-add: first half completes the previous frame's tail.
		for i := range buf {
			buf[i] = 0
		}
		copy(buf[:n], d.overlap[c])
		m.InverseOverlap(coeffs, buf)
		for i := 0; i < n; i++ {
			samples[i*ch+c] = audio.Saturate(int32(math.Round(buf[i])))
		}
		copy(d.overlap[c], buf[n:])
	}
	return audio.Encode(d.params, samples), nil
}
