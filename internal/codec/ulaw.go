package codec

import (
	"fmt"

	"repro/internal/audio"
)

// The ulaw codec transcodes 16-bit linear streams to G.711 µ-law on the
// wire: cheap 2:1 compression with negligible CPU and zero added
// latency, an intermediate point between raw and OVL.

func init() {
	Register(Info{
		Name:  "ulaw",
		Lossy: true,
		New: func(p audio.Params, quality int) (Encoder, error) {
			if err := checkULawParams(p); err != nil {
				return nil, err
			}
			return &ulawCodec{params: p}, nil
		},
		NewDecoder: func(p audio.Params) (Decoder, error) {
			if err := checkULawParams(p); err != nil {
				return nil, err
			}
			return &ulawCodec{params: p}, nil
		},
	})
}

func checkULawParams(p audio.Params) error {
	if p.Encoding.BytesPerSample() != 2 {
		return fmt.Errorf("codec: ulaw transport requires a 16-bit source encoding, got %s", p.Encoding)
	}
	return nil
}

type ulawCodec struct {
	params audio.Params
	// pending holds an odd trailing byte between Encode calls so samples
	// are never split.
	pending []byte
}

func (c *ulawCodec) Name() string { return "ulaw" }

func (c *ulawCodec) Encode(raw []byte) ([]byte, error) {
	data := raw
	if len(c.pending) > 0 {
		data = append(append([]byte{}, c.pending...), raw...)
		c.pending = nil
	}
	whole := len(data) &^ 1
	if whole < len(data) {
		c.pending = append(c.pending, data[whole:]...)
		data = data[:whole]
	}
	samples := audio.Decode(c.params, data)
	out := make([]byte, len(samples))
	for i, s := range samples {
		out[i] = audio.LinearToULaw(s)
	}
	return out, nil
}

func (c *ulawCodec) Flush() ([]byte, error) {
	c.pending = nil
	return nil, nil
}

func (c *ulawCodec) Decode(pkt []byte) ([]byte, error) {
	samples := make([]int16, len(pkt))
	for i, b := range pkt {
		samples[i] = audio.ULawToLinear(b)
	}
	return audio.Encode(c.params, samples), nil
}

func (c *ulawCodec) Reset() { c.pending = nil }
