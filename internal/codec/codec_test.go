package codec

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/audio"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := map[string]bool{"raw": false, "ulaw": false, "ovl": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("codec %q not registered", n)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("mp3"); err == nil {
		t.Fatal("expected error for unknown codec")
	}
	if _, err := NewEncoder("mp3", audio.CDQuality, 5); err == nil {
		t.Fatal("expected error for unknown encoder")
	}
	if _, err := NewDecoder("mp3", audio.CDQuality); err == nil {
		t.Fatal("expected error for unknown decoder")
	}
}

func TestNewEncoderValidatesParams(t *testing.T) {
	if _, err := NewEncoder("raw", audio.Params{}, 5); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestRawRoundTrip(t *testing.T) {
	enc, err := NewEncoder("raw", audio.CDQuality, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder("raw", audio.CDQuality)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	pkt, err := enc.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("raw round trip: %v vs %v", in, out)
	}
	if tail, _ := enc.Flush(); len(tail) != 0 {
		t.Fatal("raw flush should be empty")
	}
}

func TestRawDoesNotAliasInput(t *testing.T) {
	enc, _ := NewEncoder("raw", audio.CDQuality, 0)
	in := []byte{1, 2, 3, 4}
	pkt, _ := enc.Encode(in)
	in[0] = 99
	if pkt[0] == 99 {
		t.Fatal("encoder aliased caller's buffer")
	}
}

func TestULawHalvesBitrate(t *testing.T) {
	enc, err := NewEncoder("ulaw", audio.CDQuality, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 4096)
	pkt, err := enc.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != 2048 {
		t.Fatalf("ulaw output %d bytes from 4096, want 2048", len(pkt))
	}
}

func TestULawRoundTripQuality(t *testing.T) {
	p := audio.CDQuality
	enc, _ := NewEncoder("ulaw", p, 0)
	dec, _ := NewDecoder("ulaw", p)
	src := audio.NewTone(p.SampleRate, p.Channels, 440, 0.5)
	samples := make([]int16, p.SampleRate/10*p.Channels)
	src.ReadSamples(samples)
	raw := audio.Encode(p, samples)
	pkt, err := enc.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	snr := audio.SNR(samples, audio.Decode(p, out))
	if snr < 25 {
		t.Fatalf("ulaw SNR = %.1f dB, want >= 25", snr)
	}
}

func TestULawHandlesPartialSamples(t *testing.T) {
	p := audio.CDQuality
	enc, _ := NewEncoder("ulaw", p, 0)
	// Feed an odd number of bytes, then the rest.
	a, err := enc.Encode([]byte{0x10, 0x20, 0x30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Encode([]byte{0x40})
	if err != nil {
		t.Fatal(err)
	}
	if len(a)+len(b) != 2 {
		t.Fatalf("got %d+%d ulaw bytes from 4 raw bytes, want 2 total", len(a), len(b))
	}
}

func TestULawRejects8BitSource(t *testing.T) {
	if _, err := NewEncoder("ulaw", audio.Voice, 0); err == nil {
		t.Fatal("expected rejection of 8-bit source")
	}
}

// encodeDecodeOVL pushes one second of the given source through OVL at
// the given quality and returns (original samples, decoded samples,
// compressed size, raw size).
func encodeDecodeOVL(t *testing.T, p audio.Params, quality int) ([]int16, []int16, int, int) {
	t.Helper()
	enc, err := NewEncoder("ovl", p, quality)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder("ovl", p)
	if err != nil {
		t.Fatal(err)
	}
	src := audio.Music(p.SampleRate, p.Channels)
	samples := make([]int16, p.SampleRate*p.Channels)
	src.ReadSamples(samples)
	raw := audio.Encode(p, samples)
	pkt, err := enc.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := enc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	pkt = append(pkt, tail...)
	out, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	return samples, audio.Decode(p, out), len(pkt), len(raw)
}

func TestOVLCompresses(t *testing.T) {
	for _, q := range []int{0, 3, 5, 10} {
		_, _, comp, raw := encodeDecodeOVL(t, audio.CDQuality, q)
		if comp >= raw {
			t.Errorf("q=%d: compressed %d >= raw %d", q, comp, raw)
		}
	}
}

func TestOVLBitrateMonotoneInQuality(t *testing.T) {
	var prev int
	for _, q := range []int{0, 3, 6, 10} {
		_, _, comp, _ := encodeDecodeOVL(t, audio.CDQuality, q)
		if comp < prev {
			t.Errorf("q=%d produced %d bytes, less than lower quality's %d", q, comp, prev)
		}
		prev = comp
	}
}

// alignOVL drops the decoder's leading latency (one MDCT frame of
// fade-in) and trims both signals to a common length for SNR comparison.
func alignOVL(p audio.Params, ref, got []int16) ([]int16, []int16) {
	n := ovlCoeffs(p.SampleRate) * p.Channels
	// Decoder output frame i covers input frame i-1 (one hop of latency):
	// drop one frame from the front of the decode and compare.
	if len(got) > n {
		got = got[n:]
	}
	if len(ref) > len(got) {
		ref = ref[:len(got)]
	} else {
		got = got[:len(ref)]
	}
	// Skip the very first frame of the comparison too: it was encoded
	// against zero history.
	if len(ref) > n {
		ref, got = ref[n:], got[n:]
	}
	return ref, got
}

func TestOVLQualityLadder(t *testing.T) {
	snrs := map[int]float64{}
	for _, q := range []int{0, 3, 10} {
		ref, got, _, _ := encodeDecodeOVL(t, audio.CDQuality, q)
		r, g := alignOVL(audio.CDQuality, ref, got)
		snrs[q] = audio.SNR(r, g)
	}
	if snrs[10] < 35 {
		t.Errorf("q=10 SNR = %.1f dB, want >= 35 (near transparent)", snrs[10])
	}
	if !(snrs[10] > snrs[3] && snrs[3] > snrs[0]) {
		t.Errorf("SNR not monotone in quality: %v", snrs)
	}
	if snrs[0] < 3 {
		t.Errorf("q=0 SNR = %.1f dB: signal destroyed, want >= 3", snrs[0])
	}
}

func TestOVLMonoAndLowRate(t *testing.T) {
	p := audio.Params{SampleRate: 16000, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	ref, got, comp, raw := encodeDecodeOVL(t, p, 8)
	if comp >= raw {
		t.Fatalf("no compression at 16 kHz mono: %d vs %d", comp, raw)
	}
	r, g := alignOVL(p, ref, got)
	if snr := audio.SNR(r, g); snr < 20 {
		t.Fatalf("16 kHz mono SNR = %.1f dB", snr)
	}
}

func TestOVLDecoderRejectsGarbage(t *testing.T) {
	dec, _ := NewDecoder("ovl", audio.CDQuality)
	for _, pkt := range [][]byte{
		{1, 2, 3},
		{ovlMagic, 99, 2, 5, 1, 0, 0, 4, 1, 2, 3, 4}, // bad version
		{ovlMagic, ovlVersion, 1, 5, 1, 0, 0, 0},     // channel mismatch
		{ovlMagic, ovlVersion, 2, 5, 1, 0, 255, 255}, // payload longer than packet
		{ovlMagic, ovlVersion, 2, 55, 1, 0, 0, 0},    // quality out of range
	} {
		if _, err := dec.Decode(pkt); err == nil {
			t.Errorf("accepted malformed packet %v", pkt[:4])
		}
		dec.Reset()
	}
}

func TestOVLDecoderTruncatedBitstream(t *testing.T) {
	p := audio.CDQuality
	enc, _ := NewEncoder("ovl", p, 10)
	src := audio.Music(p.SampleRate, p.Channels)
	samples := make([]int16, 1024*p.Channels)
	src.ReadSamples(samples)
	pkt, err := enc.Encode(audio.Encode(p, samples))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) < 32 {
		t.Skip("packet unexpectedly small")
	}
	dec, _ := NewDecoder("ovl", p)
	// Truncating the payload mid-frame must produce an error, not junk.
	trunc := pkt[:len(pkt)/2]
	if len(trunc) > ovlHeader {
		if _, err := dec.Decode(trunc); err == nil {
			t.Error("accepted truncated packet")
		}
	}
}

func TestOVLMidStreamJoin(t *testing.T) {
	// A decoder that starts at frame k (missing all earlier frames)
	// must still produce sane audio after its one-frame fade-in.
	p := audio.CDQuality
	enc, _ := NewEncoder("ovl", p, 10)
	src := audio.Music(p.SampleRate, p.Channels)
	samples := make([]int16, p.SampleRate*p.Channels)
	src.ReadSamples(samples)
	raw := audio.Encode(p, samples)

	// Encode in hop-sized chunks so we get packet boundaries.
	hop := ovlCoeffs(p.SampleRate) * p.Channels * 2
	var pkts [][]byte
	for off := 0; off+hop <= len(raw); off += hop {
		pkt, err := enc.Encode(raw[off : off+hop])
		if err != nil {
			t.Fatal(err)
		}
		if len(pkt) > 0 {
			pkts = append(pkts, pkt)
		}
	}
	if len(pkts) < 20 {
		t.Fatalf("only %d packets", len(pkts))
	}
	dec, _ := NewDecoder("ovl", p)
	var out []byte
	for _, pkt := range pkts[10:] { // join mid-stream
		o, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, o...)
	}
	decoded := audio.Decode(p, out)
	// Skip two frames (fade-in + latency) and check signal energy exists
	// and nothing is absurdly loud.
	n := ovlCoeffs(p.SampleRate) * p.Channels
	if len(decoded) < 4*n {
		t.Fatal("too little decoded audio")
	}
	body := decoded[2*n:]
	if audio.RMS(body) < 500 {
		t.Fatalf("mid-stream join produced near silence: RMS %.0f", audio.RMS(body))
	}
}

func TestOVLFlushPadsAndResets(t *testing.T) {
	p := audio.CDQuality
	enc, _ := NewEncoder("ovl", p, 5)
	// Feed half a hop, flush must emit exactly one frame.
	hop := ovlCoeffs(p.SampleRate) * p.Channels * 2
	pkt, err := enc.Encode(make([]byte, hop/2))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != 0 {
		t.Fatalf("partial hop emitted %d bytes", len(pkt))
	}
	tail, err := enc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) == 0 {
		t.Fatal("flush emitted nothing")
	}
	// Second flush is a no-op.
	tail2, _ := enc.Flush()
	if len(tail2) != 0 {
		t.Fatal("second flush not empty")
	}
}

func TestOVLGenerationLoss(t *testing.T) {
	// Multi-generation re-encoding (§2.2): at max quality, SNR after 3
	// generations should remain acceptable and degrade slowly.
	p := audio.Params{SampleRate: 44100, Channels: 1, Encoding: audio.EncodingSLinear16LE}
	src := audio.Music(p.SampleRate, 1)
	orig := make([]int16, p.SampleRate)
	src.ReadSamples(orig)

	generation := func(in []int16, q int) []int16 {
		enc, _ := NewEncoder("ovl", p, q)
		dec, _ := NewDecoder("ovl", p)
		pkt, err := enc.Encode(audio.Encode(p, in))
		if err != nil {
			t.Fatal(err)
		}
		tail, _ := enc.Flush()
		pkt = append(pkt, tail...)
		out, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		s := audio.Decode(p, out)
		// Strip the one-frame latency so generations stay aligned.
		n := ovlCoeffs(p.SampleRate)
		if len(s) > n {
			s = s[n:]
		}
		if len(s) > len(in) {
			s = s[:len(in)]
		}
		return s
	}

	cur := orig
	var snr1, snr3 float64
	for g := 1; g <= 3; g++ {
		cur = generation(cur, MaxQuality)
		ref := orig[:len(cur)]
		// Skip the first frame region (encoder warmup).
		n := ovlCoeffs(p.SampleRate)
		s := audio.SNR(ref[n:], cur[n:])
		if g == 1 {
			snr1 = s
		}
		if g == 3 {
			snr3 = s
		}
	}
	if snr3 < 15 {
		t.Fatalf("3rd generation SNR = %.1f dB, want >= 15", snr3)
	}
	if snr3 > snr1+1 {
		t.Fatalf("SNR improved across generations? g1=%.1f g3=%.1f", snr1, snr3)
	}
	if math.IsInf(snr1, 1) {
		t.Fatal("OVL claims to be lossless")
	}
}

func TestOVLBandEdgesProperties(t *testing.T) {
	for _, n := range []int{128, 256} {
		edges := ovlBandEdges(n)
		if len(edges) != ovlNumBands+1 {
			t.Fatalf("n=%d: %d edges", n, len(edges))
		}
		if edges[0] != 0 || edges[ovlNumBands] != n {
			t.Fatalf("n=%d: edges don't cover [0,%d): %v", n, n, edges)
		}
		for i := 1; i <= ovlNumBands; i++ {
			if edges[i] <= edges[i-1] {
				t.Fatalf("n=%d: non-monotone edges: %v", n, edges)
			}
		}
		// Widths grow: last band wider than first.
		if edges[1]-edges[0] >= edges[ovlNumBands]-edges[ovlNumBands-1] {
			t.Fatalf("n=%d: band widths don't grow: %v", n, edges)
		}
	}
}

func TestOVLStepsProperties(t *testing.T) {
	s10 := ovlSteps(10)
	s0 := ovlSteps(0)
	for b := 0; b < ovlNumBands; b++ {
		if s10[b] >= s0[b] {
			t.Fatalf("band %d: step at q=10 (%g) >= q=0 (%g)", b, s10[b], s0[b])
		}
	}
	// At low quality, high bands get coarser steps than low bands.
	if s0[ovlNumBands-1] <= s0[0] {
		t.Fatal("q=0 high-band step not coarser than low-band")
	}
	// Out-of-range qualities clamp rather than explode.
	_ = ovlSteps(-5)
	_ = ovlSteps(99)
}
