package codec

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/audio"
)

// Framing is the packetization contract between a codec and the
// rebroadcaster: encoded streams must be split on boundaries that remain
// independently decodable (a multicast receiver sees packets, not a byte
// stream), and every payload must map back to a play duration so data
// packets can carry play timestamps (§3.2).

// Split partitions an encoded stream from the named codec into packet
// payloads of at most max bytes, each independently decodable.
func Split(name string, p audio.Params, stream []byte, max int) ([][]byte, error) {
	if max <= 0 {
		return nil, fmt.Errorf("codec: split max %d", max)
	}
	switch name {
	case "raw":
		return splitAligned(stream, max, p.BytesPerFrame())
	case "ulaw":
		// One byte per sample on the wire; align to whole frames.
		return splitAligned(stream, max, p.Channels)
	case "ovl":
		return splitOVL(stream, max)
	default:
		return nil, fmt.Errorf("codec: no framing for %q", name)
	}
}

// PayloadDuration returns the audio play time covered by one payload of
// the named codec.
func PayloadDuration(name string, p audio.Params, payload []byte) (time.Duration, error) {
	switch name {
	case "raw":
		return p.Duration(len(payload)), nil
	case "ulaw":
		frames := len(payload) / p.Channels
		return time.Duration(frames) * time.Second / time.Duration(p.SampleRate), nil
	case "ovl":
		frames, n, err := ovlFrameInfo(payload)
		if err != nil {
			return 0, err
		}
		return time.Duration(frames) * time.Duration(n) * time.Second /
			time.Duration(p.SampleRate), nil
	default:
		return 0, fmt.Errorf("codec: no framing for %q", name)
	}
}

// splitAligned cuts stream into chunks of at most max bytes, each a
// multiple of align.
func splitAligned(stream []byte, max, align int) ([][]byte, error) {
	if align <= 0 {
		align = 1
	}
	chunk := max - max%align
	if chunk <= 0 {
		return nil, fmt.Errorf("codec: packet budget %d below frame size %d", max, align)
	}
	var out [][]byte
	for off := 0; off < len(stream); off += chunk {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		out = append(out, stream[off:end])
	}
	return out, nil
}

// ovlFrameLen returns the total byte length of the OVL frame at the head
// of stream.
func ovlFrameLen(stream []byte) (int, error) {
	if len(stream) < ovlHeader {
		return 0, errOVLFrame
	}
	if stream[0] != ovlMagic || stream[1] != ovlVersion {
		return 0, errOVLFrame
	}
	return ovlHeader + int(binary.BigEndian.Uint16(stream[6:8])), nil
}

// ovlFrameInfo counts frames in payload and returns (frameCount, N).
func ovlFrameInfo(payload []byte) (count, n int, err error) {
	for len(payload) > 0 {
		flen, err := ovlFrameLen(payload)
		if err != nil {
			return 0, 0, err
		}
		if flen > len(payload) {
			return 0, 0, errOVLFrame
		}
		n = int(binary.BigEndian.Uint16(payload[4:6]))
		payload = payload[flen:]
		count++
	}
	return count, n, nil
}

// splitOVL packs whole OVL frames greedily into payloads of at most max
// bytes.
func splitOVL(stream []byte, max int) ([][]byte, error) {
	var out [][]byte
	start := 0
	cur := 0
	for cur < len(stream) {
		flen, err := ovlFrameLen(stream[cur:])
		if err != nil {
			return nil, err
		}
		if cur+flen > len(stream) {
			return nil, errOVLFrame
		}
		if flen > max {
			return nil, fmt.Errorf("codec: ovl frame of %d bytes exceeds packet budget %d", flen, max)
		}
		if cur+flen-start > max {
			out = append(out, stream[start:cur])
			start = cur
		}
		cur += flen
	}
	if cur > start {
		out = append(out, stream[start:cur])
	}
	return out, nil
}
