package codec

import (
	"fmt"
	"sort"

	"repro/internal/audio"
)

// MaxQuality is the top of the OVL quality-index range. The paper runs
// the rebroadcaster at maximum quality to limit multi-generation loss.
const MaxQuality = 10

// Encoder turns raw audio bytes into codec packets.
type Encoder interface {
	// Name returns the registry name of the codec.
	Name() string
	// Encode consumes raw audio bytes and returns zero or more complete
	// encoded frames (concatenated). Input not yet covering a whole frame
	// is buffered.
	Encode(raw []byte) ([]byte, error)
	// Flush drains buffered samples, zero-padding the final frame, and
	// resets the encoder.
	Flush() ([]byte, error)
}

// Decoder turns codec packets back into raw audio bytes.
type Decoder interface {
	// Name returns the registry name of the codec.
	Name() string
	// Decode consumes one packet (one or more complete encoded frames)
	// and returns the recovered raw audio bytes.
	Decode(pkt []byte) ([]byte, error)
	// Reset drops inter-frame state after a stream discontinuity (packet
	// loss, channel change) so decoding can resume cleanly.
	Reset()
}

// Info describes a registered codec.
type Info struct {
	Name string
	// Lossy reports whether decode(encode(x)) != x in general.
	Lossy bool
	// New constructs an encoder at the given quality (ignored by
	// non-scalable codecs).
	New func(p audio.Params, quality int) (Encoder, error)
	// NewDecoder constructs the matching decoder.
	NewDecoder func(p audio.Params) (Decoder, error)
}

var registry = map[string]Info{}

// Register adds a codec to the registry; it panics on duplicates, as
// codecs are registered only from init functions.
func Register(info Info) {
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("codec: duplicate registration of %q", info.Name))
	}
	registry[info.Name] = info
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Info, error) {
	info, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("codec: unknown codec %q", name)
	}
	return info, nil
}

// Names returns the registered codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewEncoder constructs a named encoder for the given stream parameters.
func NewEncoder(name string, p audio.Params, quality int) (Encoder, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return info.New(p, quality)
}

// NewDecoder constructs a named decoder for the given stream parameters.
func NewDecoder(name string, p audio.Params) (Decoder, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return info.NewDecoder(p)
}
