package codec

import "repro/internal/audio"

// The raw codec is a passthrough: the wire format is the stream's own
// encoding. The paper keeps low-bitrate channels raw because compression
// latency and CPU are not worth paying below ~100 kbps (§2.2).

func init() {
	Register(Info{
		Name:  "raw",
		Lossy: false,
		New: func(p audio.Params, quality int) (Encoder, error) {
			return &rawCodec{}, nil
		},
		NewDecoder: func(p audio.Params) (Decoder, error) {
			return &rawCodec{}, nil
		},
	})
}

type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }

func (rawCodec) Encode(raw []byte) ([]byte, error) {
	out := make([]byte, len(raw))
	copy(out, raw)
	return out, nil
}

func (rawCodec) Flush() ([]byte, error) { return nil, nil }

func (rawCodec) Decode(pkt []byte) ([]byte, error) {
	out := make([]byte, len(pkt))
	copy(out, pkt)
	return out, nil
}

func (rawCodec) Reset() {}
