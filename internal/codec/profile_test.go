package codec

import (
	"testing"

	"repro/internal/audio"
)

// mono16 is the test stream configuration: 16-bit mono, 32 kHz so the
// OVL tiers use the full 256-coefficient MDCT.
var mono16 = audio.Params{SampleRate: 32000, Channels: 1, Encoding: audio.EncodingSLinear16LE}

// tonePCM returns frames of a 440 Hz tone as raw stream bytes.
func tonePCM(t *testing.T, p audio.Params, frames int) []byte {
	t.Helper()
	src := audio.Limit(audio.NewTone(p.SampleRate, p.Channels, 440, 0.5), frames)
	return audio.Encode(p, audio.ReadAll(src))
}

func TestProfileLadderOrder(t *testing.T) {
	if ProfileSource.Down() != ProfileULaw || ProfileULaw.Down() != ProfileOVLHigh ||
		ProfileOVLHigh.Down() != ProfileOVLLow {
		t.Fatalf("ladder down order broken")
	}
	if ProfileOVLLow.Down() != ProfileOVLLow {
		t.Fatalf("bottom rung must clamp on Down")
	}
	if ProfileOVLLow.Up() != ProfileOVLHigh || ProfileOVLHigh.Up() != ProfileULaw ||
		ProfileULaw.Up() != ProfileSource {
		t.Fatalf("ladder up order broken")
	}
	if ProfileSource.Up() != ProfileSource {
		t.Fatalf("top rung must clamp on Up")
	}
	for p := Profile(0); p.Valid(); p++ {
		got, err := ParseProfile(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseProfile(%q) = %v, %v", p.String(), got, err)
		}
	}
	if Profile(NumProfiles).Valid() {
		t.Fatalf("Profile(NumProfiles) must be invalid")
	}
	if _, err := ParseProfile("mp3"); err == nil {
		t.Fatalf("ParseProfile must reject unknown names")
	}
}

// TestTranscodeRoundTrip walks the whole ladder: a raw source packet is
// transcoded to each lossy tier, split through the framing layer as a
// real relay payload would be, and decoded back. The decoded audio
// must cover at least the original duration (OVL zero-pads the final
// frame) and stay recognizably the same signal.
func TestTranscodeRoundTrip(t *testing.T) {
	p := mono16
	pcm := tonePCM(t, p, 1024) // 4 OVL hops exactly
	ref := audio.Decode(p, pcm)
	for _, profile := range []Profile{ProfileULaw, ProfileOVLHigh, ProfileOVLLow} {
		tc, err := NewTranscoder("raw", p, profile)
		if err != nil {
			t.Fatalf("%s: NewTranscoder: %v", profile, err)
		}
		if tc.Profile() != profile {
			t.Fatalf("%s: Profile() = %s", profile, tc.Profile())
		}
		wire, err := tc.Transcode(pcm)
		if err != nil {
			t.Fatalf("%s: Transcode: %v", profile, err)
		}
		if len(wire) == 0 || len(wire) >= len(pcm) {
			t.Fatalf("%s: transcoded %d bytes from %d; want nonzero and smaller", profile, len(wire), len(pcm))
		}
		name, _ := profile.CodecSpec()
		// Over the framing layer: the transcoded stream must split into
		// independently decodable payloads.
		payloads, err := Split(name, p, wire, 1200)
		if err != nil {
			t.Fatalf("%s: Split: %v", profile, err)
		}
		var decoded []int16
		for _, payload := range payloads {
			dec, err := NewDecoder(name, p)
			if err != nil {
				t.Fatalf("%s: NewDecoder: %v", profile, err)
			}
			out, err := dec.Decode(payload)
			if err != nil {
				t.Fatalf("%s: Decode split payload: %v", profile, err)
			}
			decoded = append(decoded, audio.Decode(p, out)...)
		}
		if len(decoded) < len(ref) {
			t.Fatalf("%s: decoded %d samples, want >= %d", profile, len(decoded), len(ref))
		}
		// The lapped OVL transform smears energy across frame boundaries,
		// so compare loudness rather than waveforms: the round trip must
		// preserve the signal's scale within a factor of two.
		if got, want := audio.RMS(decoded[:len(ref)]), audio.RMS(ref); got < want/2 || got > want*2 {
			t.Fatalf("%s: round-trip RMS %f, source %f", profile, got, want)
		}
	}
}

// TestTranscodeLadderChain steps one stream down the full ladder the
// way a congested relay would: the output of each tier feeds the next
// as its source codec.
func TestTranscodeLadderChain(t *testing.T) {
	p := mono16
	wire := tonePCM(t, p, 1024)
	src := "raw"
	for _, profile := range []Profile{ProfileULaw, ProfileOVLHigh, ProfileOVLLow} {
		tc, err := NewTranscoder(src, p, profile)
		if err != nil {
			t.Fatalf("%s from %s: %v", profile, src, err)
		}
		out, err := tc.Transcode(wire)
		if err != nil {
			t.Fatalf("%s from %s: Transcode: %v", profile, src, err)
		}
		if len(out) == 0 {
			t.Fatalf("%s from %s: empty output", profile, src)
		}
		wire = out
		src, _ = profile.CodecSpec()
	}
	// The end of the chain is a valid OVL stream at the low tier.
	if _, _, err := ovlFrameInfo(wire); err != nil {
		t.Fatalf("chained output is not framed OVL: %v", err)
	}
}

// TestTranscodeMalformedFrames covers the tier boundaries with damaged
// input: truncated and corrupted frames must error, not panic or pass.
func TestTranscodeMalformedFrames(t *testing.T) {
	p := mono16
	pcm := tonePCM(t, p, 512)
	// Build a valid OVL stream to damage.
	tc, err := NewTranscoder("raw", p, ProfileOVLHigh)
	if err != nil {
		t.Fatal(err)
	}
	ovlWire, err := tc.Transcode(pcm)
	if err != nil {
		t.Fatal(err)
	}

	// OVL source truncated mid-frame: the ovl→ovl (high→low) transcoder
	// must surface the decode error.
	down, err := NewTranscoder("ovl", p, ProfileOVLLow)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, ovlHeader - 1, ovlHeader + 1, len(ovlWire) - 1} {
		if _, err := down.Transcode(ovlWire[:cut]); err == nil {
			t.Fatalf("truncated ovl source at %d bytes transcoded without error", cut)
		}
	}
	// Corrupt magic: rejected.
	bad := append([]byte(nil), ovlWire...)
	bad[0] ^= 0xFF
	if _, err := down.Transcode(bad); err == nil {
		t.Fatalf("corrupt ovl magic transcoded without error")
	}
	// A damaged stream must also fail the framing layer, so a relay
	// never splits garbage into payloads.
	if _, err := Split("ovl", p, ovlWire[:len(ovlWire)-1], 1200); err == nil {
		t.Fatalf("Split accepted a truncated ovl stream")
	}

	// µ-law tier boundary: the transcoder buffers a split 16-bit sample
	// rather than emitting a torn one.
	utc, err := NewTranscoder("raw", p, ProfileULaw)
	if err != nil {
		t.Fatal(err)
	}
	out, err := utc.Transcode(pcm[:len(pcm)-1])
	if err != nil {
		t.Fatalf("odd-length raw input: %v", err)
	}
	if len(out) != (len(pcm)-1)/2 {
		t.Fatalf("ulaw tier emitted %d bytes for %d input bytes", len(out), len(pcm)-1)
	}

	// Profiles a stream cannot carry must fail construction, not at
	// transcode time: µ-law needs a 16-bit source.
	if _, err := NewTranscoder("raw", audio.Voice, ProfileULaw); err == nil {
		t.Fatalf("ulaw profile over an 8-bit source must fail")
	}
	if _, err := NewTranscoder("nope", p, ProfileULaw); err == nil {
		t.Fatalf("unknown source codec must fail")
	}
	if _, err := NewTranscoder("raw", p, ProfileSource); err == nil {
		t.Fatalf("ProfileSource has no transcoder")
	}
}
