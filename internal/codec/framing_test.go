package codec

import (
	"testing"
	"time"

	"repro/internal/audio"
)

func TestSplitRawAligned(t *testing.T) {
	p := audio.CDQuality // 4-byte frames
	stream := make([]byte, 10000)
	chunks, err := Split("raw", p, stream, 1400)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, c := range chunks {
		if len(c) > 1400 {
			t.Fatalf("chunk %d is %d bytes", i, len(c))
		}
		if i < len(chunks)-1 && len(c)%4 != 0 {
			t.Fatalf("chunk %d not frame aligned: %d", i, len(c))
		}
		total += len(c)
	}
	if total != 10000 {
		t.Fatalf("split lost bytes: %d", total)
	}
}

func TestSplitRejectsTinyBudget(t *testing.T) {
	p := audio.CDQuality
	if _, err := Split("raw", p, make([]byte, 100), 3); err == nil {
		t.Fatal("budget below frame size accepted")
	}
	if _, err := Split("raw", p, nil, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := Split("nope", p, nil, 100); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestPayloadDurationRaw(t *testing.T) {
	p := audio.CDQuality
	d, err := PayloadDuration("raw", p, make([]byte, p.BytesPerSecond()))
	if err != nil || d != time.Second {
		t.Fatalf("duration = (%v, %v)", d, err)
	}
}

func TestPayloadDurationULaw(t *testing.T) {
	p := audio.CDQuality // stereo: 2 wire bytes per frame
	d, err := PayloadDuration("ulaw", p, make([]byte, 2*44100))
	if err != nil || d != time.Second {
		t.Fatalf("duration = (%v, %v)", d, err)
	}
}

func TestSplitOVLWholeFrames(t *testing.T) {
	p := audio.CDQuality
	enc, err := NewEncoder("ovl", p, 10)
	if err != nil {
		t.Fatal(err)
	}
	src := audio.Music(p.SampleRate, p.Channels)
	samples := make([]int16, p.SampleRate*p.Channels/2)
	src.ReadSamples(samples)
	stream, err := enc.Encode(audio.Encode(p, samples))
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := Split("ovl", p, stream, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("only %d chunks from %d bytes", len(chunks), len(stream))
	}
	// Every chunk must decode independently (after Reset) without error.
	total := 0
	var totalDur time.Duration
	for i, c := range chunks {
		if len(c) > 1400 {
			t.Fatalf("chunk %d is %d bytes", i, len(c))
		}
		total += len(c)
		dec, _ := NewDecoder("ovl", p)
		if _, err := dec.Decode(c); err != nil {
			t.Fatalf("chunk %d not independently decodable: %v", i, err)
		}
		d, err := PayloadDuration("ovl", p, c)
		if err != nil {
			t.Fatal(err)
		}
		totalDur += d
	}
	if total != len(stream) {
		t.Fatalf("split lost bytes: %d of %d", total, len(stream))
	}
	// Total duration must equal the encoded hops (a partial hop stays
	// buffered in the encoder).
	hop := ovlCoeffs(p.SampleRate)
	hops := len(samples) / p.Channels / hop
	wantDur := time.Duration(hops*hop) * time.Second / time.Duration(p.SampleRate)
	// Per-chunk ns truncation may lose a few ns per chunk.
	if diff := wantDur - totalDur; diff < 0 || diff > time.Microsecond {
		t.Fatalf("total duration %v, want %v (diff %v)", totalDur, wantDur, diff)
	}
}

func TestSplitOVLRejectsGarbage(t *testing.T) {
	p := audio.CDQuality
	if _, err := Split("ovl", p, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1400); err == nil {
		t.Fatal("garbage stream accepted")
	}
	if _, err := PayloadDuration("ovl", p, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage payload accepted")
	}
}

func TestSplitOVLEmptyStream(t *testing.T) {
	chunks, err := Split("ovl", audio.CDQuality, nil, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Fatalf("chunks from empty stream: %d", len(chunks))
	}
}
