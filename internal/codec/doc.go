// Package codec implements the audio transports the rebroadcaster can
// choose between (§2.2 of the paper): raw PCM passthrough, µ-law
// transcoding for cheap 2:1 compression, and OVL — a lossy MDCT transform
// codec with a 0..10 quality index standing in for Ogg Vorbis.
//
// Every encoder consumes raw audio bytes in the stream's wire encoding
// (exactly what the rebroadcaster reads from the VAD master) and yields
// self-contained packets; every decoder returns raw audio bytes in the
// same wire encoding, ready to be written to the speaker's audio device.
// Packets are independently decodable so that a receive-only speaker can
// tune in mid-stream (§2.3).
package codec
