package codec

import (
	"fmt"

	"repro/internal/audio"
)

// Delivery profiles are the relay's quality ladder: a small, ordered
// set of wire encodings a relay can serve one upstream stream at. A
// subscriber requests a profile at subscribe time and the relay may
// step it further down the ladder under queue pressure (and back up
// when the pressure clears), trading fidelity for bitrate instead of
// dropping whole packets. The tiers reuse the registered codecs:
// source passthrough, G.711 µ-law (2:1), and two OVL quality points.
//
// Profile numbers are wire values (proto.Subscribe/SubAck carry one
// byte): ProfileSource is deliberately zero so a legacy body that
// never mentions profiles reads as "source passthrough", and the
// ladder is ordered best-first so "downgrade" is numerically +1.

// Profile identifies one rung of the delivery quality ladder.
type Profile uint8

// The ladder, best fidelity first. Downgrading moves toward
// ProfileOVLLow; upgrading moves back toward the subscriber's
// requested profile.
const (
	// ProfileSource forwards the upstream payload untouched (the wire
	// zero value: what every pre-profile subscriber gets).
	ProfileSource Profile = 0
	// ProfileULaw transcodes to G.711 µ-law: 2:1, negligible CPU.
	ProfileULaw Profile = 1
	// ProfileOVLHigh transcodes to OVL at a high quality index.
	ProfileOVLHigh Profile = 2
	// ProfileOVLLow transcodes to OVL at a low quality index — the
	// bottom rung, the cheapest stream the relay can serve.
	ProfileOVLLow Profile = 3

	// NumProfiles is the number of ladder rungs (valid profiles are
	// 0 .. NumProfiles-1).
	NumProfiles = 4
)

// OVL quality indices backing the two OVL rungs.
const (
	ovlHighQuality = 8
	ovlLowQuality  = 2
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case ProfileSource:
		return "source"
	case ProfileULaw:
		return "ulaw"
	case ProfileOVLHigh:
		return "ovl-high"
	case ProfileOVLLow:
		return "ovl-low"
	default:
		return fmt.Sprintf("profile(%d)", uint8(p))
	}
}

// Valid reports whether p names a ladder rung.
func (p Profile) Valid() bool { return p < NumProfiles }

// Down returns the next rung toward the bottom of the ladder,
// clamping at ProfileOVLLow.
func (p Profile) Down() Profile {
	if p >= ProfileOVLLow {
		return ProfileOVLLow
	}
	return p + 1
}

// Up returns the next rung toward the top of the ladder, clamping at
// ProfileSource.
func (p Profile) Up() Profile {
	if p == ProfileSource {
		return ProfileSource
	}
	return p - 1
}

// ParseProfile resolves a profile by its String name ("source",
// "ulaw", "ovl-high", "ovl-low").
func ParseProfile(name string) (Profile, error) {
	for p := Profile(0); p.Valid(); p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("codec: unknown profile %q", name)
}

// CodecSpec returns the registry codec name and quality index a
// profile encodes with. ProfileSource has no codec of its own (it
// forwards whatever the upstream uses) and returns "".
func (p Profile) CodecSpec() (name string, quality int) {
	switch p {
	case ProfileULaw:
		return "ulaw", 0
	case ProfileOVLHigh:
		return "ovl", ovlHighQuality
	case ProfileOVLLow:
		return "ovl", ovlLowQuality
	default:
		return "", 0
	}
}

// Transcoder re-encodes one codec's packets into a profile's wire
// encoding: decode with the source codec, re-encode with the
// profile's. Each Transcode call is self-contained — the decoder is
// reset and the encoder flushed per packet — so every output payload
// decodes independently, which the relay needs because it drops
// packets under pressure and admits subscribers mid-stream. The cost
// is that codecs with frame buffering (OVL) zero-pad each packet's
// final frame.
//
// A Transcoder is not safe for concurrent use; the relay builds one
// per (stream, profile) and drives it from the single fan-out path.
type Transcoder struct {
	profile Profile
	dec     Decoder
	enc     Encoder
}

// NewTranscoder builds a transcoder from the named source codec (the
// upstream stream's wire encoding, with its audio parameters) to the
// given profile. It errors when either side cannot be built — an
// unknown source codec, invalid params, or a profile the stream
// cannot carry (µ-law needs a 16-bit source) — in which case the
// caller falls back to source passthrough.
func NewTranscoder(srcCodec string, p audio.Params, profile Profile) (*Transcoder, error) {
	name, quality := profile.CodecSpec()
	if name == "" {
		return nil, fmt.Errorf("codec: profile %s does not transcode", profile)
	}
	dec, err := NewDecoder(srcCodec, p)
	if err != nil {
		return nil, err
	}
	enc, err := NewEncoder(name, p, quality)
	if err != nil {
		return nil, err
	}
	return &Transcoder{profile: profile, dec: dec, enc: enc}, nil
}

// Profile returns the ladder rung this transcoder encodes for.
func (t *Transcoder) Profile() Profile { return t.profile }

// Transcode converts one source packet payload into the profile's
// encoding. The result is independently decodable.
func (t *Transcoder) Transcode(payload []byte) ([]byte, error) {
	t.dec.Reset()
	pcm, err := t.dec.Decode(payload)
	if err != nil {
		return nil, err
	}
	out, err := t.enc.Encode(pcm)
	if err != nil {
		return nil, err
	}
	tail, err := t.enc.Flush()
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return tail, nil
	}
	return append(out, tail...), nil
}
