package mgmt

import (
	"fmt"
	"reflect"
)

// StatsVars registers one read-only IntVar per exported int64 field of
// the struct returned by snap, named and documented by the field's
// `mib` and `help` tags — the same tags obs.StructCounters exports to
// Prometheus, so the MIB and the metrics endpoint can never drift from
// the stats structs or from each other. A field without a mib tag
// panics: an unreachable counter is a wiring bug, and the tag is where
// its operator-visible name lives.
func (m *MIB) StatsVars(snap func() any) {
	t := reflect.TypeOf(snap())
	if t.Kind() != reflect.Struct {
		panic("mgmt: StatsVars needs a struct snapshot")
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Int64 {
			continue
		}
		name := f.Tag.Get("mib")
		if name == "" {
			panic(fmt.Sprintf("mgmt: stats field %s.%s has no mib tag", t.Name(), f.Name))
		}
		idx := i
		m.Register(IntVar(name, f.Tag.Get("help"), func() int64 {
			return reflect.ValueOf(snap()).Field(idx).Int()
		}, nil))
	}
}
