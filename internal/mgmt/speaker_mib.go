package mgmt

import (
	"fmt"
	"sync"

	"repro/internal/lan"
	"repro/internal/speaker"
)

// SpeakerMIB wires the standard Ethernet Speaker MIB (§5.3) onto a
// speaker: identity, volume and ambient controls, the tuner, playback
// statistics, and the central-override mechanism (crew announcements
// preempting the tuned programme; the previous channel is restored when
// the override ends).
func SpeakerMIB(name string, sp *speaker.Speaker) *MIB {
	m := NewMIB()
	var mu sync.Mutex
	savedGroup := lan.Addr("")
	overridden := false

	m.Register(StringVar("es.info.name", "speaker name",
		func() string { return name }, nil))
	m.Register(FloatVar("es.audio.volume", "software gain 0..4",
		sp.Volume,
		func(v float64) error {
			if v < 0 || v > 4 {
				return fmt.Errorf("volume %g out of range [0,4]", v)
			}
			sp.SetVolume(v)
			return nil
		}))
	m.Register(FloatVar("es.audio.ambient", "ambient noise RMS (mic model)",
		func() float64 { return 0 }, // write-mostly: tests inject noise
		func(v float64) error {
			if v < 0 {
				return fmt.Errorf("ambient %g negative", v)
			}
			sp.SetAmbient(v)
			return nil
		}))
	m.Register(StringVar("es.tuner.channel", "channel source: multicast group, or a relay's unicast address",
		func() string { return string(sp.Group()) },
		func(v string) error {
			g := lan.Addr(v)
			if err := g.Validate(); err != nil {
				return fmt.Errorf("%q is not a multicast group or relay address", v)
			}
			return sp.Tune(g)
		}))
	m.Register(StringVar("es.override.begin", "begin central override: set to the announcement group",
		func() string {
			mu.Lock()
			defer mu.Unlock()
			if overridden {
				return string(sp.Group())
			}
			return ""
		},
		func(v string) error {
			g := lan.Addr(v)
			if !g.IsMulticast() {
				return fmt.Errorf("%q is not a multicast group", v)
			}
			mu.Lock()
			if !overridden {
				savedGroup = sp.Group()
				overridden = true
			}
			mu.Unlock()
			return sp.Tune(g)
		}))
	m.Register(StringVar("es.override.end", "end central override: set to any value",
		func() string { return "" },
		func(string) error {
			mu.Lock()
			active := overridden
			restore := savedGroup
			overridden = false
			mu.Unlock()
			if !active {
				return nil
			}
			if restore == "" {
				return nil
			}
			return sp.Tune(restore)
		}))
	m.Register(StringVar("es.override.active", "1 while a central override is in effect",
		func() string {
			mu.Lock()
			defer mu.Unlock()
			if overridden {
				return "1"
			}
			return "0"
		}, nil))

	// Every speaker.Stats counter, named by its mib tag (see RelayMIB).
	m.StatsVars(func() any { return sp.Stats() })
	m.Register(IntVar("es.dev.underruns", "audio device underruns",
		func() int64 { return sp.Device().GetStats().Underruns }, nil))
	m.Register(IntVar("es.dev.silence", "silence blocks inserted",
		func() int64 { return sp.Device().GetStats().SilenceBlocks }, nil))
	return m
}
