package mgmt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Var is one managed variable.
type Var struct {
	// Name is the dotted identifier, e.g. "es.audio.volume".
	Name string
	// Help is a one-line description shown by walks.
	Help string
	// Get returns the current value. Required.
	Get func() string
	// Set applies a new value; nil makes the variable read-only.
	Set func(string) error
}

// MIB is a registry of managed variables.
type MIB struct {
	mu   sync.Mutex
	vars map[string]Var
}

// NewMIB returns an empty registry.
func NewMIB() *MIB {
	return &MIB{vars: make(map[string]Var)}
}

// Register adds a variable; it panics on duplicates (registration is
// programmer-controlled wiring).
func (m *MIB) Register(v Var) {
	if v.Name == "" || v.Get == nil {
		panic("mgmt: variable needs a name and a getter")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.vars[v.Name]; dup {
		panic(fmt.Sprintf("mgmt: duplicate variable %q", v.Name))
	}
	m.vars[v.Name] = v
}

// Get reads a variable.
func (m *MIB) Get(name string) (string, error) {
	m.mu.Lock()
	v, ok := m.vars[name]
	m.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("mgmt: no such variable %q", name)
	}
	return v.Get(), nil
}

// Set writes a variable.
func (m *MIB) Set(name, value string) error {
	m.mu.Lock()
	v, ok := m.vars[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("mgmt: no such variable %q", name)
	}
	if v.Set == nil {
		return fmt.Errorf("mgmt: %q is read-only", name)
	}
	return v.Set(value)
}

// Pair is one (name, value) result.
type Pair struct {
	Name  string
	Value string
}

// Walk returns all variables under the dotted prefix, sorted by name.
// An empty prefix returns everything.
func (m *MIB) Walk(prefix string) []Pair {
	m.mu.Lock()
	names := make([]string, 0, len(m.vars))
	for n := range m.vars {
		if prefix == "" || n == prefix || strings.HasPrefix(n, prefix+".") ||
			strings.HasPrefix(n, prefix) && prefix[len(prefix)-1] == '.' {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]Pair, 0, len(names))
	for _, n := range names {
		out = append(out, Pair{Name: n, Value: m.vars[n].Get()})
	}
	m.mu.Unlock()
	return out
}

// Names returns all registered names, sorted.
func (m *MIB) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.vars))
	for n := range m.vars {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IntVar builds a read-write integer variable from accessors.
func IntVar(name, help string, get func() int64, set func(int64) error) Var {
	v := Var{Name: name, Help: help, Get: func() string {
		return strconv.FormatInt(get(), 10)
	}}
	if set != nil {
		v.Set = func(s string) error {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return fmt.Errorf("mgmt: %q wants an integer: %w", name, err)
			}
			return set(n)
		}
	}
	return v
}

// FloatVar builds a read-write float variable from accessors.
func FloatVar(name, help string, get func() float64, set func(float64) error) Var {
	v := Var{Name: name, Help: help, Get: func() string {
		return strconv.FormatFloat(get(), 'g', -1, 64)
	}}
	if set != nil {
		v.Set = func(s string) error {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("mgmt: %q wants a number: %w", name, err)
			}
			return set(f)
		}
	}
	return v
}

// StringVar builds a read-write string variable from accessors.
func StringVar(name, help string, get func() string, set func(string) error) Var {
	return Var{Name: name, Help: help, Get: get, Set: set}
}
