// Package mgmt implements the management surface the paper plans in
// §5.3: an SNMP-flavoured MIB of named variables on every Ethernet
// Speaker, a tiny get/set/walk protocol to manage them from an NMS-style
// console (cmd/esctl), and a central-override facility — the "movies on
// airplane seats overridden by crew announcements" scenario — built on
// broadcast sets.
package mgmt
