package mgmt

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/relay"
	"repro/internal/speaker"
	"repro/internal/vad"
	"repro/internal/vclock"
)

func TestMIBGetSetWalk(t *testing.T) {
	m := NewMIB()
	x := int64(5)
	m.Register(IntVar("es.test.x", "an int", func() int64 { return x },
		func(v int64) error { x = v; return nil }))
	m.Register(StringVar("es.test.ro", "read-only", func() string { return "fixed" }, nil))
	m.Register(FloatVar("es.other.f", "a float", func() float64 { return 1.5 }, nil))

	if v, err := m.Get("es.test.x"); err != nil || v != "5" {
		t.Fatalf("get = (%q, %v)", v, err)
	}
	if err := m.Set("es.test.x", "42"); err != nil || x != 42 {
		t.Fatalf("set: %v, x=%d", err, x)
	}
	if err := m.Set("es.test.x", "not a number"); err == nil {
		t.Fatal("bad int accepted")
	}
	if err := m.Set("es.test.ro", "nope"); err == nil {
		t.Fatal("read-only was set")
	}
	if _, err := m.Get("es.missing"); err == nil {
		t.Fatal("missing variable read")
	}
	walk := m.Walk("es.test")
	if len(walk) != 2 || walk[0].Name != "es.test.ro" || walk[1].Name != "es.test.x" {
		t.Fatalf("walk = %v", walk)
	}
	if got := len(m.Walk("")); got != 3 {
		t.Fatalf("full walk = %d", got)
	}
	if got := len(m.Names()); got != 3 {
		t.Fatalf("names = %d", got)
	}
}

func TestMIBRegisterPanics(t *testing.T) {
	m := NewMIB()
	m.Register(StringVar("a.b", "", func() string { return "" }, nil))
	for _, v := range []Var{
		{Name: "a.b", Get: func() string { return "" }},
		{Name: "", Get: func() string { return "" }},
		{Name: "c.d"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", v.Name)
				}
			}()
			m.Register(v)
		}()
	}
}

func TestWireRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Op: OpGet, Seq: 1, Pairs: []Pair{{Name: "es.x"}}},
		{Op: OpSet, Seq: 2, Pairs: []Pair{{Name: "es.x", Value: "42"}}},
		{Op: OpWalk, Seq: 3, Pairs: []Pair{{Name: "es"}}},
		{Op: OpSetAll, Seq: 4, Pairs: []Pair{{Name: "a", Value: "1"}, {Name: "b", Value: "2"}}},
		{Op: OpGet, Response: true, Seq: 5, Status: StatusError, Pairs: []Pair{{Name: "es.x", Value: "oops"}}},
	}
	for _, m := range msgs {
		data, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip:\n in: %+v\nout: %+v", m, got)
		}
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil, {1, 2, 3},
		{0x45, 0x4D, 9, 1, 0, 0, 0, 1, 0, 0},  // bad version
		{0x45, 0x4D, 1, 99, 0, 0, 0, 1, 0, 0}, // bad op
		{0x45, 0x4D, 1, 1, 0, 0, 0, 1, 5, 0},  // declared pairs missing
	}
	for _, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("accepted %v", data)
		}
	}
	// Trailing junk.
	good, _ := (&Message{Op: OpGet, Seq: 1}).Marshal()
	if _, err := Unmarshal(append(good, 0xFF)); err == nil {
		t.Error("trailing junk accepted")
	}
}

// newAgentPair wires an agent and client on a simulated segment.
func newAgentPair(t *testing.T) (*vclock.Sim, *Agent, *Client, *MIB) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{Latency: 100 * time.Microsecond})
	mib := NewMIB()
	val := "initial"
	mib.Register(StringVar("es.test.v", "test var",
		func() string { return val },
		func(s string) error {
			if s == "reject" {
				return fmt.Errorf("rejected by policy")
			}
			val = s
			return nil
		}))
	agent, err := NewAgent(sim, seg, "10.0.0.1:5005", mib)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(sim, seg, "10.0.0.2:5005")
	if err != nil {
		t.Fatal(err)
	}
	sim.Go("agent", agent.Run)
	return sim, agent, client, mib
}

func TestAgentGetSetWalk(t *testing.T) {
	sim, agent, client, _ := newAgentPair(t)
	var results []string
	var errs []error
	sim.Go("console", func() {
		defer agent.Stop()
		defer client.Close()
		v, err := client.Get(agent.Addr(), "es.test.v")
		results, errs = append(results, v), append(errs, err)
		v, err = client.Set(agent.Addr(), "es.test.v", "changed")
		results, errs = append(results, v), append(errs, err)
		pairs, err := client.Walk(agent.Addr(), "es")
		results, errs = append(results, fmt.Sprint(pairs)), append(errs, err)
		_, err = client.Get(agent.Addr(), "es.missing")
		errs = append(errs, err)
		_, err = client.Set(agent.Addr(), "es.test.v", "reject")
		errs = append(errs, err)
	})
	sim.WaitIdle()
	for i, err := range errs[:3] {
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if results[0] != "initial" || results[1] != "changed" {
		t.Fatalf("results = %v", results)
	}
	if results[2] != "[{es.test.v changed}]" {
		t.Fatalf("walk = %v", results[2])
	}
	if errs[3] == nil {
		t.Fatal("get of missing variable succeeded")
	}
	if errs[4] == nil {
		t.Fatal("rejected set reported success")
	}
	if _, ok := errs[4].(*RemoteError); !ok {
		t.Fatalf("want RemoteError, got %T", errs[4])
	}
}

func TestClientRetriesOnLoss(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	// 40% loss: with 3 retries the request should still get through.
	seg := lan.NewSegment(sim, lan.SegmentConfig{Loss: 0.4, Seed: 11})
	mib := NewMIB()
	mib.Register(StringVar("es.v", "", func() string { return "ok" }, nil))
	agent, _ := NewAgent(sim, seg, "10.0.0.1:5005", mib)
	client, _ := NewClient(sim, seg, "10.0.0.2:5005")
	client.Timeout = 100 * time.Millisecond
	client.Retries = 10
	sim.Go("agent", agent.Run)
	var got string
	var err error
	sim.Go("console", func() {
		defer agent.Stop()
		defer client.Close()
		got, err = client.Get(agent.Addr(), "es.v")
	})
	sim.WaitIdle()
	if err != nil || got != "ok" {
		t.Fatalf("get = (%q, %v)", got, err)
	}
}

func TestBroadcastSetAll(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	vals := make([]string, 3)
	var agents []*Agent
	for i := 0; i < 3; i++ {
		i := i
		mib := NewMIB()
		mib.Register(StringVar("es.v", "",
			func() string { return vals[i] },
			func(s string) error { vals[i] = s; return nil }))
		a, err := NewAgent(sim, seg, lan.Addr(fmt.Sprintf("10.0.0.%d:5005", i+1)), mib)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		sim.Go("agent", a.Run)
	}
	client, _ := NewClient(sim, seg, "10.0.0.99:5005")
	sim.Go("console", func() {
		if err := client.SetAll(Pair{Name: "es.v", Value: "fleet"}); err != nil {
			t.Error(err)
		}
		sim.Sleep(100 * time.Millisecond)
		for _, a := range agents {
			a.Stop()
		}
		client.Close()
	})
	sim.WaitIdle()
	for i, v := range vals {
		if v != "fleet" {
			t.Fatalf("agent %d value = %q", i, v)
		}
	}
}

func TestSpeakerMIBAndOverride(t *testing.T) {
	// Full §5.3 scenario: two channels play; the console begins a
	// central override steering the speaker to the announcement channel,
	// then ends it; the speaker returns to its programme.
	sys := core.NewSim(lan.SegmentConfig{})
	prog, _ := sys.AddChannel(rebroadcast.Config{
		ID: 1, Name: "programme", Group: "239.72.1.1:5004",
		ControlInterval: 200 * time.Millisecond,
	}, vad.Config{})
	ann, _ := sys.AddChannel(rebroadcast.Config{
		ID: 2, Name: "announce", Group: "239.72.1.2:5004",
		ControlInterval: 200 * time.Millisecond,
	}, vad.Config{})
	sp, err := sys.AddSpeaker(speaker.Config{Name: "es1", Group: "239.72.1.1:5004"})
	if err != nil {
		t.Fatal(err)
	}
	mib := SpeakerMIB("es1", sp)
	agent, err := NewAgent(sys.Clock, sys.Net, "10.0.5.1:5005", mib)
	if err != nil {
		t.Fatal(err)
	}
	sys.Clock.Go("agent", agent.Run)
	client, err := NewClient(sys.Clock, sys.Net, "10.0.5.2:5005")
	if err != nil {
		t.Fatal(err)
	}

	p := audio.Voice
	sys.Clock.Go("prog-player", func() {
		prog.Play(p, audio.NewTone(8000, 1, 300, 0.4), 10*time.Second)
	})
	sys.Clock.Go("ann-player", func() {
		ann.Play(p, audio.NewTone(8000, 1, 700, 0.8), 10*time.Second)
	})

	var checks []string
	sys.Clock.Go("console", func() {
		defer agent.Stop()
		defer client.Close()
		sys.Clock.Sleep(2 * time.Second)
		// Verify identity and playing state.
		name, _ := client.Get(agent.Addr(), "es.info.name")
		checks = append(checks, "name="+name)
		chBefore, _ := client.Get(agent.Addr(), "es.tuner.channel")
		checks = append(checks, "before="+chBefore)
		// Volume control round trip.
		if v, err := client.Set(agent.Addr(), "es.audio.volume", "0.5"); err != nil || v != "0.5" {
			t.Errorf("volume set = (%q, %v)", v, err)
		}
		// Begin override.
		if _, err := client.Set(agent.Addr(), "es.override.begin", "239.72.1.2:5004"); err != nil {
			t.Errorf("override begin: %v", err)
		}
		sys.Clock.Sleep(2 * time.Second)
		during, _ := client.Get(agent.Addr(), "es.tuner.channel")
		checks = append(checks, "during="+during)
		active, _ := client.Get(agent.Addr(), "es.override.active")
		checks = append(checks, "active="+active)
		// End override.
		if _, err := client.Set(agent.Addr(), "es.override.end", "1"); err != nil {
			t.Errorf("override end: %v", err)
		}
		after, _ := client.Get(agent.Addr(), "es.tuner.channel")
		checks = append(checks, "after="+after)
		sys.Clock.Sleep(time.Second)
		sys.Shutdown()
	})
	sys.Sim.WaitIdle()

	want := []string{
		"name=es1",
		"before=239.72.1.1:5004",
		"during=239.72.1.2:5004",
		"active=1",
		"after=239.72.1.1:5004",
	}
	if !reflect.DeepEqual(checks, want) {
		t.Fatalf("override sequence:\n got %v\nwant %v", checks, want)
	}
	if sp.Volume() != 0.5 {
		t.Fatalf("volume = %v", sp.Volume())
	}
	if sp.Stats().Tunes != 2 {
		t.Fatalf("tunes = %d, want 2", sp.Stats().Tunes)
	}
}

func TestSpeakerMIBValidation(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	sp, err := speaker.New(sim, seg, speaker.Config{Name: "x", Local: "10.0.0.1:5004"})
	if err != nil {
		t.Fatal(err)
	}
	mib := SpeakerMIB("x", sp)
	if err := mib.Set("es.audio.volume", "99"); err == nil {
		t.Fatal("volume 99 accepted")
	}
	if err := mib.Set("es.tuner.channel", "notanip:5004"); err == nil {
		t.Fatal("garbage tune accepted")
	}
	// A unicast address is a relay subscription target and is accepted.
	if err := mib.Set("es.tuner.channel", "10.0.0.2:5004"); err != nil {
		t.Fatalf("relay tune rejected: %v", err)
	}
	if err := mib.Set("es.override.begin", "garbage"); err == nil {
		t.Fatal("garbage override accepted")
	}
	if err := mib.Set("es.audio.ambient", "-3"); err == nil {
		t.Fatal("negative ambient accepted")
	}
	// Ending a never-begun override is a no-op, not an error.
	if err := mib.Set("es.override.end", "1"); err != nil {
		t.Fatal(err)
	}
	sp.Stop()
}

func TestRelayMIB(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	r, err := relay.New(sim, conn, relay.Config{Group: "239.72.1.1:5004", Channel: 1})
	if err != nil {
		t.Fatal(err)
	}
	mib := RelayMIB("bridge", r)
	if v, err := mib.Get("es.relay.group"); err != nil || v != "239.72.1.1:5004" {
		t.Fatalf("group = (%q, %v)", v, err)
	}
	if v, err := mib.Get("es.relay.subscribers"); err != nil || v != "0" {
		t.Fatalf("subscribers = (%q, %v)", v, err)
	}
	if v, err := mib.Get("es.relay.addr"); err != nil || v != "10.0.0.1:5006" {
		t.Fatalf("addr = (%q, %v)", v, err)
	}
	// Every es.relay.* variable is readable.
	for _, p := range mib.Walk("es.relay") {
		if p.Name == "" {
			t.Fatalf("bad pair %+v", p)
		}
	}
	if len(mib.Walk("es.relay")) < 10 {
		t.Fatalf("walk returned %d vars", len(mib.Walk("es.relay")))
	}
	// The batching telemetry is on the operator surface.
	for _, name := range []string{
		"es.relay.fanout.batches",
		"es.relay.fanout.flush.size",
		"es.relay.fanout.flush.deadline",
		"es.relay.fanout.flush.quiesce",
	} {
		if v, err := mib.Get(name); err != nil || v != "0" {
			t.Fatalf("%s = (%q, %v), want 0", name, v, err)
		}
	}
	r.Stop()
}
