package mgmt

import (
	"sync"
	"time"

	"repro/internal/lan"
	"repro/internal/vclock"
)

// ControlGroup is the well-known multicast group for broadcast
// management operations (central override, fleet-wide sets).
const ControlGroup = lan.Addr("239.72.0.2:5005")

// Agent serves a MIB over the management protocol: unicast get/set/walk
// plus broadcast sets on ControlGroup. One runs on every speaker.
type Agent struct {
	clock vclock.Clock
	conn  lan.Conn
	mib   *MIB

	mu      sync.Mutex
	stopped bool
	served  int64
}

// NewAgent binds a management agent to local and joins ControlGroup.
func NewAgent(clock vclock.Clock, network lan.Network, local lan.Addr, mib *MIB) (*Agent, error) {
	conn, err := network.Attach(local)
	if err != nil {
		return nil, err
	}
	if err := conn.Join(ControlGroup); err != nil {
		conn.Close()
		return nil, err
	}
	return &Agent{clock: clock, conn: conn, mib: mib}, nil
}

// Addr returns the agent's unicast address.
func (a *Agent) Addr() lan.Addr { return a.conn.LocalAddr() }

// Served returns how many requests have been processed.
func (a *Agent) Served() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.served
}

// Stop shuts the agent down; Run returns.
func (a *Agent) Stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
	a.conn.Close()
}

// Run serves requests until Stop. Spawn via clock.Go.
func (a *Agent) Run() {
	for {
		pkt, err := a.conn.Recv(0)
		if err != nil {
			return
		}
		req, err := Unmarshal(pkt.Data)
		if err != nil || req.Response {
			continue
		}
		a.mu.Lock()
		a.served++
		a.mu.Unlock()
		resp := a.apply(req)
		if resp == nil {
			continue // broadcast ops are fire-and-forget
		}
		if data, err := resp.Marshal(); err == nil {
			a.conn.Send(pkt.From, data)
		}
	}
}

// apply executes a request against the MIB.
func (a *Agent) apply(req *Message) *Message {
	resp := &Message{Op: req.Op, Response: true, Seq: req.Seq}
	switch req.Op {
	case OpGet:
		for _, p := range req.Pairs {
			v, err := a.mib.Get(p.Name)
			if err != nil {
				resp.Status = StatusError
				resp.Pairs = append(resp.Pairs, Pair{Name: p.Name, Value: err.Error()})
				continue
			}
			resp.Pairs = append(resp.Pairs, Pair{Name: p.Name, Value: v})
		}
	case OpSet:
		for _, p := range req.Pairs {
			if err := a.mib.Set(p.Name, p.Value); err != nil {
				resp.Status = StatusError
				resp.Pairs = append(resp.Pairs, Pair{Name: p.Name, Value: err.Error()})
				continue
			}
			v, _ := a.mib.Get(p.Name)
			resp.Pairs = append(resp.Pairs, Pair{Name: p.Name, Value: v})
		}
	case OpWalk:
		prefix := ""
		if len(req.Pairs) > 0 {
			prefix = req.Pairs[0].Name
		}
		pairs := a.mib.Walk(prefix)
		// Bound the response to the wire limit.
		if len(pairs) > 255 {
			pairs = pairs[:255]
		}
		resp.Pairs = pairs
	case OpSetAll:
		// Broadcast set: apply silently; no reply avoids an ACK storm on
		// the control group (the paper's NAK-implosion worry, §4.3).
		for _, p := range req.Pairs {
			a.mib.Set(p.Name, p.Value)
		}
		return nil
	default:
		resp.Status = StatusError
	}
	return resp
}

// Client is the console side (cmd/esctl): unicast request/response with
// timeout and retry, plus fire-and-forget broadcast sets.
type Client struct {
	clock vclock.Clock
	conn  lan.Conn
	seq   uint32

	// Timeout per attempt and number of attempts.
	Timeout time.Duration
	Retries int
}

// NewClient binds a management client to local.
func NewClient(clock vclock.Clock, network lan.Network, local lan.Addr) (*Client, error) {
	conn, err := network.Attach(local)
	if err != nil {
		return nil, err
	}
	return &Client{clock: clock, conn: conn, Timeout: time.Second, Retries: 3}, nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends req to target and waits for the matching response.
func (c *Client) roundTrip(target lan.Addr, req *Message) (*Message, error) {
	c.seq++
	req.Seq = c.seq
	data, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	var lastErr error = lan.ErrTimeout
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if err := c.conn.Send(target, data); err != nil {
			return nil, err
		}
		deadline := c.clock.Now().Add(c.Timeout)
		for c.clock.Now().Before(deadline) {
			pkt, err := c.conn.Recv(c.Timeout)
			if err == lan.ErrTimeout {
				lastErr = err
				break
			}
			if err != nil {
				return nil, err
			}
			resp, err := Unmarshal(pkt.Data)
			if err != nil || !resp.Response || resp.Seq != req.Seq {
				continue // stale or foreign
			}
			return resp, nil
		}
	}
	return nil, lastErr
}

// Get reads one variable from target.
func (c *Client) Get(target lan.Addr, name string) (string, error) {
	resp, err := c.roundTrip(target, &Message{Op: OpGet, Pairs: []Pair{{Name: name}}})
	if err != nil {
		return "", err
	}
	if resp.Status != StatusOK || len(resp.Pairs) == 0 {
		return "", respError(resp)
	}
	return resp.Pairs[0].Value, nil
}

// Set writes one variable on target and returns the readback value.
func (c *Client) Set(target lan.Addr, name, value string) (string, error) {
	resp, err := c.roundTrip(target, &Message{Op: OpSet, Pairs: []Pair{{Name: name, Value: value}}})
	if err != nil {
		return "", err
	}
	if resp.Status != StatusOK || len(resp.Pairs) == 0 {
		return "", respError(resp)
	}
	return resp.Pairs[0].Value, nil
}

// Walk lists target's variables under prefix.
func (c *Client) Walk(target lan.Addr, prefix string) ([]Pair, error) {
	resp, err := c.roundTrip(target, &Message{Op: OpWalk, Pairs: []Pair{{Name: prefix}}})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, respError(resp)
	}
	return resp.Pairs, nil
}

// SetAll broadcasts a set to every agent on the control group; there is
// no acknowledgement.
func (c *Client) SetAll(pairs ...Pair) error {
	c.seq++
	req := &Message{Op: OpSetAll, Seq: c.seq, Pairs: pairs}
	data, err := req.Marshal()
	if err != nil {
		return err
	}
	return c.conn.Send(ControlGroup, data)
}

func respError(resp *Message) error {
	if len(resp.Pairs) > 0 {
		return &RemoteError{Detail: resp.Pairs[0].Value}
	}
	return &RemoteError{Detail: "unspecified error"}
}

// RemoteError is a failure reported by an agent.
type RemoteError struct{ Detail string }

// Error implements error.
func (e *RemoteError) Error() string { return "mgmt: remote: " + e.Detail }
