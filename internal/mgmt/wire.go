package mgmt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format (big-endian), deliberately small and parse-strict:
//
//	magic   uint16 = 0x454D ("EM")
//	version uint8  = 1
//	op      uint8  (response bit 0x80)
//	seq     uint32
//	count   uint8
//	status  uint8  (responses; 0 = OK)
//	pairs:  count × (name string, value string), u8-length-prefixed

// Op is a management operation.
type Op uint8

// Operations.
const (
	OpGet  Op = 1
	OpSet  Op = 2
	OpWalk Op = 3
	// OpSetAll is a broadcast set: agents apply it and do not reply (no
	// NAK-implosion on the multicast group).
	OpSetAll Op = 4

	respBit = 0x80
)

// Message is one management request or response.
type Message struct {
	Op       Op
	Response bool
	Seq      uint32
	Status   uint8 // 0 = OK
	Pairs    []Pair
}

// Status codes.
const (
	StatusOK    = 0
	StatusError = 1
)

const mgmtMagic = 0x454D

var errBadMgmt = errors.New("mgmt: malformed message")

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Pairs) > 255 {
		return nil, fmt.Errorf("mgmt: %d pairs", len(m.Pairs))
	}
	buf := make([]byte, 10, 64)
	binary.BigEndian.PutUint16(buf[0:2], mgmtMagic)
	buf[2] = 1
	op := uint8(m.Op)
	if m.Response {
		op |= respBit
	}
	buf[3] = op
	binary.BigEndian.PutUint32(buf[4:8], m.Seq)
	buf[8] = uint8(len(m.Pairs))
	buf[9] = m.Status
	for _, p := range m.Pairs {
		if len(p.Name) > 255 || len(p.Value) > 255 {
			return nil, fmt.Errorf("mgmt: oversized pair %q", p.Name)
		}
		buf = append(buf, byte(len(p.Name)))
		buf = append(buf, p.Name...)
		buf = append(buf, byte(len(p.Value)))
		buf = append(buf, p.Value...)
	}
	return buf, nil
}

// Unmarshal parses a management message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 10 {
		return nil, errBadMgmt
	}
	if binary.BigEndian.Uint16(data[0:2]) != mgmtMagic || data[2] != 1 {
		return nil, errBadMgmt
	}
	m := &Message{
		Op:       Op(data[3] &^ respBit),
		Response: data[3]&respBit != 0,
		Seq:      binary.BigEndian.Uint32(data[4:8]),
		Status:   data[9],
	}
	count := int(data[8])
	rest := data[10:]
	for i := 0; i < count; i++ {
		var p Pair
		var err error
		p.Name, rest, err = readStr(rest)
		if err != nil {
			return nil, err
		}
		p.Value, rest, err = readStr(rest)
		if err != nil {
			return nil, err
		}
		m.Pairs = append(m.Pairs, p)
	}
	if len(rest) != 0 {
		return nil, errBadMgmt
	}
	switch m.Op {
	case OpGet, OpSet, OpWalk, OpSetAll:
	default:
		return nil, errBadMgmt
	}
	return m, nil
}

func readStr(data []byte) (string, []byte, error) {
	if len(data) < 1 {
		return "", nil, errBadMgmt
	}
	n := int(data[0])
	if len(data) < 1+n {
		return "", nil, errBadMgmt
	}
	return string(data[1 : 1+n]), data[1+n:], nil
}
