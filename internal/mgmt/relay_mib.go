package mgmt

import (
	"fmt"
	"strings"

	"repro/internal/relay"
)

// RelayMIB wires the relay management surface (§5.3 applied to the
// bridge): identity, the live subscriber table, and the fan-out
// counters an operator watches to spot slow or dead unicast paths.
func RelayMIB(name string, r *relay.Relay) *MIB {
	m := NewMIB()
	m.Register(StringVar("es.info.name", "relay name",
		func() string { return name }, nil))
	m.Register(StringVar("es.relay.group", "multicast group being relayed (empty when chained)",
		func() string { return string(r.Group()) }, nil))
	m.Register(StringVar("es.relay.upstream", "upstream relay this one is chained behind (empty when joining a group)",
		func() string { return string(r.Upstream()) }, nil))
	m.Register(StringVar("es.relay.addr", "unicast address subscribers lease from",
		func() string { return string(r.Addr()) }, nil))
	m.Register(IntVar("es.relay.subscribers", "current leased subscribers",
		func() int64 { return int64(r.NumSubscribers()) }, nil))
	m.Register(StringVar("es.relay.table", "subscriber list: addr sent/dropped/queued",
		func() string {
			var parts []string
			for _, s := range r.Subscribers() {
				parts = append(parts, fmt.Sprintf("%s %d/%d/%d",
					s.Addr, s.Sent, s.Dropped, s.Queued))
			}
			return strings.Join(parts, ", ")
		}, nil))

	stat := func(name, help string, get func(relay.Stats) int64) {
		m.Register(IntVar(name, help, func() int64 { return get(r.Stats()) }, nil))
	}
	stat("es.relay.upstream.control", "control packets taken off the group",
		func(s relay.Stats) int64 { return s.UpstreamControl })
	stat("es.relay.upstream.data", "data packets taken off the group",
		func(s relay.Stats) int64 { return s.UpstreamData })
	stat("es.relay.upstream.foreign", "packets refused as not-from-the-group (injection attempts) or for a foreign channel",
		func(s relay.Stats) int64 { return s.UpstreamForeign })
	stat("es.relay.subscribes", "new subscriptions granted",
		func(s relay.Stats) int64 { return s.Subscribes })
	stat("es.relay.refreshes", "lease refreshes",
		func(s relay.Stats) int64 { return s.Refreshes })
	stat("es.relay.expired", "leases expired for silence",
		func(s relay.Stats) int64 { return s.Expired })
	stat("es.relay.rejected", "refused subscribe requests",
		func(s relay.Stats) int64 { return s.Rejected })
	stat("es.relay.loops", "subscribes refused with SubLoop (path revisits or too deep)",
		func(s relay.Stats) int64 { return s.Loops })
	stat("es.relay.auth.dropped", "subscribes dropped by control-plane verification (forged or unsigned; no SubAck sent)",
		func(s relay.Stats) int64 { return s.AuthDropped })
	stat("es.relay.upstream.subscribes", "lease packets sent to the upstream relay",
		func(s relay.Stats) int64 { return s.UpstreamSubscribes })
	stat("es.relay.upstream.acks", "lease acks received from the upstream relay",
		func(s relay.Stats) int64 { return s.UpstreamAcks })
	stat("es.relay.upstream.refused", "upstream lease refusals (loop, table full, channel)",
		func(s relay.Stats) int64 { return s.UpstreamRefused })
	stat("es.relay.upstream.stale", "upstream acks ignored as stale or foreign",
		func(s relay.Stats) int64 { return s.UpstreamStaleAcks })
	stat("es.relay.upstream.auth.dropped", "upstream acks dropped by verification",
		func(s relay.Stats) int64 { return s.UpstreamAuthDropped })
	stat("es.relay.fanout.sent", "unicast packets delivered",
		func(s relay.Stats) int64 { return s.FanoutSent })
	stat("es.relay.fanout.dropped", "packets dropped by queue backpressure",
		func(s relay.Stats) int64 { return s.FanoutDropped })
	stat("es.relay.fanout.batches", "WriteBatch flushes issued",
		func(s relay.Stats) int64 { return s.Batches })
	stat("es.relay.fanout.flush.size", "flushes triggered by a full batch",
		func(s relay.Stats) int64 { return s.FlushSize })
	stat("es.relay.fanout.flush.deadline", "partial batches flushed on the flush interval",
		func(s relay.Stats) int64 { return s.FlushDeadline })
	stat("es.relay.fanout.flush.quiesce", "partial batches flushed at shutdown",
		func(s relay.Stats) int64 { return s.FlushQuiesce })
	stat("es.relay.senderrors", "unicast send failures",
		func(s relay.Stats) int64 { return s.SendErrors })
	return m
}
