package mgmt

import (
	"fmt"
	"strings"

	"repro/internal/relay"
)

// RelayMIB wires the relay management surface (§5.3 applied to the
// bridge): identity, the live subscriber table, and the fan-out
// counters an operator watches to spot slow or dead unicast paths.
func RelayMIB(name string, r *relay.Relay) *MIB {
	m := NewMIB()
	m.Register(StringVar("es.info.name", "relay name",
		func() string { return name }, nil))
	m.Register(StringVar("es.relay.group", "multicast group being relayed (empty when chained)",
		func() string { return string(r.Group()) }, nil))
	m.Register(StringVar("es.relay.upstream", "upstream relay this one is chained behind (empty when joining a group)",
		func() string { return string(r.Upstream()) }, nil))
	m.Register(StringVar("es.relay.addr", "unicast address subscribers lease from",
		func() string { return string(r.Addr()) }, nil))
	m.Register(IntVar("es.relay.subscribers", "current leased subscribers",
		func() int64 { return int64(r.NumSubscribers()) }, nil))
	m.Register(StringVar("es.relay.table", "subscriber list: addr sent/dropped/queued",
		func() string {
			var parts []string
			for _, s := range r.Subscribers() {
				parts = append(parts, fmt.Sprintf("%s %d/%d/%d",
					s.Addr, s.Sent, s.Dropped, s.Queued))
			}
			return strings.Join(parts, ", ")
		}, nil))

	// Every relay.Stats counter, named by its mib tag — one reflective
	// call instead of twenty hand-wired registrations, and impossible
	// for a new Stats field to miss (StatsVars panics on a missing tag,
	// and the coverage test in this package checks the full surface).
	m.StatsVars(func() any { return r.Stats() })
	return m
}
