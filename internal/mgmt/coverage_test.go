package mgmt

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/speaker"
	"repro/internal/vclock"
)

// TestStatsCoverage walks every exported int64 field of relay.Stats and
// speaker.Stats by reflection and asserts each one is reachable on both
// operator surfaces: the mgmt MIB (under its mib tag) and the obs
// registry (under the Prometheus name obs.CounterName derives from the
// same tag). Adding a Stats field without wiring it is therefore
// impossible to do silently — either the missing mib tag panics in
// StatsVars, or this test names the field that fell off a surface.
func TestStatsCoverage(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, err := seg.Attach("10.0.0.1:5006")
	if err != nil {
		t.Fatal(err)
	}
	r, err := relay.New(sim, conn, relay.Config{Group: "239.72.1.1:5004"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	sp, err := speaker.New(sim, seg, speaker.Config{Name: "cov", Local: "10.0.0.2:5004"})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Stop()

	reg := obs.NewRegistry()
	r.RegisterObs(reg)
	sp.RegisterObs(reg)
	inReg := map[string]bool{}
	for _, n := range reg.Names() {
		inReg[n] = true
	}

	check := func(mib *MIB, statsType reflect.Type, prefix string) {
		inMIB := map[string]bool{}
		for _, n := range mib.Names() {
			inMIB[n] = true
		}
		for i := 0; i < statsType.NumField(); i++ {
			f := statsType.Field(i)
			if !f.IsExported() || f.Type.Kind() != reflect.Int64 {
				continue
			}
			tag := f.Tag.Get("mib")
			if tag == "" {
				t.Errorf("%s.%s has no mib tag", statsType.Name(), f.Name)
				continue
			}
			if f.Tag.Get("help") == "" {
				t.Errorf("%s.%s (%s) has no help tag", statsType.Name(), f.Name, tag)
			}
			if !inMIB[tag] {
				t.Errorf("%s.%s: MIB variable %q not registered", statsType.Name(), f.Name, tag)
			}
			if metric := obs.CounterName(prefix, f); !inReg[metric] {
				t.Errorf("%s.%s: obs metric %q not registered", statsType.Name(), f.Name, metric)
			}
		}
	}
	check(RelayMIB("bridge", r), reflect.TypeOf(relay.Stats{}), "es_relay")
	check(SpeakerMIB("cov", sp), reflect.TypeOf(speaker.Stats{}), "es_speaker")

	// The hot-path histograms are on the metrics surface too.
	for _, name := range []string{
		"es_relay_flush_latency_seconds",
		"es_relay_queue_residency_seconds",
		"es_relay_transcode_latency_seconds",
		"es_relay_upstream_rtt_seconds",
		"es_relay_lease_margin_seconds",
		"es_relay_dvr_catchup_lag_seconds",
		"es_speaker_control_rtt_seconds",
		"es_speaker_lease_margin_seconds",
	} {
		if !inReg[name] {
			t.Errorf("histogram %q not registered", name)
		}
	}
}
