package speaker

// AutoVolume is the §5.2 automatic volume controller: the speaker's
// microphone input lets it compare its own output against the ambient
// noise level, raising the volume in noisy rooms (so announcements are
// heard) and lowering it in quiet ones (background music stays in the
// background). It also normalizes program material recorded at different
// levels toward a consistent output.
type AutoVolume struct {
	// TargetRatio is the desired output-RMS : ambient-RMS ratio. 0 means
	// the default of 3 (~10 dB over the noise floor).
	TargetRatio float64
	// Step is the per-update multiplicative adjustment. 0 means 0.05.
	Step float64
	// Min and Max bound the gain. Zeros mean [0.1, 4].
	Min, Max float64
	// FloorRMS is the quiet-room output level the controller steers
	// toward when there is effectively no ambient noise. 0 means 3000
	// (about -21 dBFS).
	FloorRMS float64
}

func (a *AutoVolume) defaults() (ratio, step, min, max, floor float64) {
	ratio, step, min, max, floor = a.TargetRatio, a.Step, a.Min, a.Max, a.FloorRMS
	if ratio <= 0 {
		ratio = 3
	}
	if step <= 0 {
		step = 0.05
	}
	if min <= 0 {
		min = 0.1
	}
	if max <= 0 {
		max = 4
	}
	if floor <= 0 {
		floor = 3000
	}
	return
}

// Update returns the adjusted volume given the current volume, the RMS
// of the audio just played (after gain), and the ambient noise RMS from
// the microphone model. One call per processed batch gives a smooth
// controller.
func (a *AutoVolume) Update(vol, outputRMS, ambientRMS float64) float64 {
	ratio, step, min, max, floor := a.defaults()
	if outputRMS <= 0 {
		return vol // silence carries no level information
	}
	target := ambientRMS * ratio
	if target < floor {
		target = floor
	}
	switch {
	case outputRMS < target*0.9:
		vol *= 1 + step
	case outputRMS > target*1.1:
		vol *= 1 - step
	}
	if vol < min {
		vol = min
	}
	if vol > max {
		vol = max
	}
	return vol
}
