// Package speaker implements the Ethernet Speaker (§2.4): a receive-only
// device that joins a channel's multicast group, waits for a control
// packet, decodes the stream, and plays it against the producer's wall
// clock with an epsilon of leeway (§3.2). It also carries the paper's
// future-work features: software volume with an ambient-noise automatic
// controller (§5.2) and a management surface (internal/mgmt).
package speaker
