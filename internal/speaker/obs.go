package speaker

import (
	"strconv"

	"repro/internal/obs"
)

// RegisterObs publishes the speaker's ops surface on reg: every Stats
// counter (mechanically, via the mib tags), the audio-device driver
// counters, the two control-plane histograms, and an identity info
// metric. Call once per registry.
func (s *Speaker) RegisterObs(reg *obs.Registry) {
	reg.StructCounters("es_speaker", func() any { return s.Stats() })
	reg.Counter("es_dev_underruns_total", "audio device underruns",
		func() int64 { return s.Device().GetStats().Underruns })
	reg.Counter("es_dev_silence_total", "silence blocks inserted by the driver",
		func() int64 { return s.Device().GetStats().SilenceBlocks })
	reg.Histogram(s.ctlRTT)
	reg.Histogram(s.leaseMargin)
	reg.Info("es_speaker_info", "speaker identity", func() []obs.KV {
		return []obs.KV{
			{Key: "name", Value: s.cfg.Name},
			{Key: "group", Value: string(s.Group())},
			{Key: "channel", Value: strconv.FormatUint(uint64(s.cfg.Channel), 10)},
		}
	})
}
