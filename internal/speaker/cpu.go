package speaker

import "time"

// CPUModel charges simulated time for decode work, standing in for the
// paper's slow Geode-based platform (§3.4). The zero value is an
// infinitely fast CPU.
type CPUModel struct {
	// PerByte is charged per decoded output byte.
	PerByte time.Duration
	// PerPacket is a fixed cost per processed batch.
	PerPacket time.Duration
}

// Cost returns the simulated time to decode rawBytes of output.
func (m CPUModel) Cost(rawBytes int) time.Duration {
	return m.PerPacket + time.Duration(rawBytes)*m.PerByte
}

// CPUFast is a modern workstation: decode cost is negligible.
var CPUFast = CPUModel{}

// CPUGeode approximates the Neoware EON 4000's 233 MHz Geode: decoding
// CD-quality audio costs ~35% of real time (2 µs per output byte ×
// 176400 B/s ≈ 0.35 s of CPU per second of audio), plus per-packet
// overhead.
var CPUGeode = CPUModel{PerByte: 2 * time.Microsecond, PerPacket: 300 * time.Microsecond}
