package speaker

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/audio"
	"repro/internal/audiodev"
	"repro/internal/codec"
	"repro/internal/lan"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/relay/lease"
	"repro/internal/security"
	"repro/internal/vclock"
)

// Defaults.
const (
	// DefaultEpsilon is the §3.2 synchronization leeway: scheduling error
	// within ±epsilon is left alone; beyond it the speaker sleeps or
	// discards.
	DefaultEpsilon = 10 * time.Millisecond
	// DefaultControlTimeout bounds how long Run waits for any packet
	// before re-checking liveness.
	DefaultControlTimeout = 5 * time.Second
	// DefaultRelayLease is the subscription lease a speaker requests
	// when tuned to a relay instead of a multicast group.
	DefaultRelayLease = 15 * time.Second
)

// Config parameterizes a speaker.
type Config struct {
	Name  string   // diagnostics label
	Local lan.Addr // unicast bind address
	// Group is the initial channel source (may be empty; Tune later). A
	// multicast group is joined natively; a unicast address is treated
	// as a relay and subscribed to over a lease — the tune-in path for
	// speakers beyond the multicast segment.
	Group lan.Addr
	// Channel is the channel id requested when subscribing to a relay;
	// 0 accepts whatever the relay carries. A channel-restricted relay
	// refuses a mismatching id with SubNoChannel, and a multi-channel
	// relay forwards only the leased channel.
	Channel uint32

	// RelayLease overrides DefaultRelayLease.
	RelayLease time.Duration
	// RelayProfile is the delivery tier requested when subscribing to a
	// relay (codec.ProfileSource, the zero value, asks for the untouched
	// upstream stream). A tiered stream arrives as its own epoch with
	// the tier's codec in the rewritten Control packet, so playback
	// reconfigures through the normal radio-model path.
	RelayProfile codec.Profile

	// Epsilon overrides DefaultEpsilon (§3.2).
	Epsilon time.Duration
	// NoSync disables timestamp-based scheduling entirely: packets play
	// as they arrive. The §3.2 ablation.
	NoSync bool
	// RecvBuffer accumulates this many encoded bytes before the decode
	// stage runs — the pipeline-granularity knob of §3.4. 0 processes
	// every packet immediately.
	RecvBuffer int
	// BlockSize overrides the audio device's block size (§3.4).
	BlockSize int
	// CPU is the decode cost model (§3.4).
	CPU CPUModel
	// DACSpeed skews the simulated DAC clock (§3.2); 0 means 1.0.
	DACSpeed float64
	// Volume is the initial software gain (0 means 1.0).
	Volume float64
	// AutoVolume enables the ambient-noise controller (§5.2).
	AutoVolume *AutoVolume
	// ControlTimeout overrides DefaultControlTimeout.
	ControlTimeout time.Duration
	// Verify, when set, authenticates every incoming stream packet
	// before any parsing (§5.1); packets failing verification are
	// dropped. It covers the data plane (Control/Data) only — SubAck
	// replies are the relay's control plane, authenticated separately
	// by RelayAuth, so a stream-verifying speaker behind an unsigned
	// relay still learns its granted lease.
	Verify func(pkt []byte) ([]byte, bool)
	// RelayAuth, when set, authenticates the relay control plane: every
	// Subscribe the speaker sends is signed with it and every SubAck
	// must verify before the grant is applied. It must match the
	// relay's configured scheme and key (relayd -auth/-key-file).
	RelayAuth security.Authenticator
}

// Stats is the speaker's cumulative accounting. The `mib` and `help`
// tags drive registration in the mgmt MIB and the obs registry (see
// relay.Stats for the pattern); the coverage test in internal/mgmt
// fails if a field lacks its tag.
type Stats struct {
	ControlPackets   int64 `mib:"es.stats.control" help:"control packets accepted"`
	DataPackets      int64 `mib:"es.stats.data" help:"data packets accepted"`
	DroppedNoConfig  int64 `mib:"es.stats.droppedNoConfig" help:"data dropped before the first control packet"`
	DroppedEpoch     int64 `mib:"es.stats.droppedEpoch" help:"data dropped for a stale epoch after reconfiguration"`
	DroppedLate      int64 `mib:"es.stats.droppedLate" help:"batches discarded by the sync logic as too late"`
	DroppedMalformed int64 `mib:"es.stats.droppedMalformed" help:"unparseable packets dropped"`
	DroppedAuth      int64 `mib:"es.stats.droppedAuth" help:"packets dropped by stream verification"`
	BytesPlayed      int64 `mib:"es.stats.played" help:"decoded bytes written to the audio device"`
	SleepsToSync     int64 `mib:"es.stats.sleepsToSync" help:"fresh-start alignment sleeps"`
	GapFills         int64 `mib:"es.stats.gapFills" help:"silence insertions covering lost content"`
	Tunes            int64 `mib:"es.stats.tunes" help:"channel switches"`
	RelaySubscribes  int64 `mib:"es.stats.relaySubscribes" help:"subscribe/refresh packets sent to a relay"`
	RelaySubAcks     int64 `mib:"es.stats.relaySubAcks" help:"lease acknowledgements accepted"`
	RelayRefusals    int64 `mib:"es.stats.relayRefused" help:"acks refusing the lease (no channel / table full / loop)"`
	RelayStaleAcks   int64 `mib:"es.stats.relayStale" help:"acks ignored as stale or foreign"`
	RelayAuthDropped int64 `mib:"es.stats.relayAuthDropped" help:"acks dropped by control-plane verification"`
	RelayRedirects   int64 `mib:"es.stats.relayRedirects" help:"lease redirects followed to a sibling relay (load shedding)"`
}

// Speaker is one Ethernet Speaker instance.
type Speaker struct {
	clock vclock.Clock
	cfg   Config
	conn  lan.Conn
	hw    *audiodev.SimHardware
	dev   *audiodev.Device

	mu      sync.Mutex
	stats   Stats
	group   lan.Addr
	haveCtl bool
	ctl     proto.Control
	dec     codec.Decoder
	// wall-clock mapping from the last control packet (§3.2): producer
	// nanosecond baseProducer corresponds to local instant baseLocal.
	baseLocal    time.Time
	baseProducer int64
	// accumulation stage (§3.4)
	pend       []byte
	pendPlayAt int64
	// tail is the local time when the last admitted byte finishes
	// playing. Continuity-based scheduling survives blocking writes and
	// ring-size quantization where an instantaneous queue-depth estimate
	// does not.
	tail time.Time
	// software volume
	volume  float64
	ambient float64 // ambient noise RMS heard by the mic model (§5.2)
	stopped bool
	onPlay  []func(audiodev.PlayedBlock)

	// sub maintains the relay subscription while tuned to a unicast
	// relay address instead of a multicast group. It has its own lock;
	// never call it with s.mu held.
	sub *lease.Subscriber

	// Control-plane instruments (see internal/obs), fed by the lease
	// layer: Subscribe→SubAck RTT and refresh margin, wall clock.
	ctlRTT      *obs.Histogram
	leaseMargin *obs.Histogram
}

// New creates a speaker bound to cfg.Local, joined to cfg.Group if set.
func New(clock vclock.Clock, network lan.Network, cfg Config) (*Speaker, error) {
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = DefaultEpsilon
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = DefaultControlTimeout
	}
	if cfg.RelayLease <= 0 {
		cfg.RelayLease = DefaultRelayLease
	}
	if cfg.Volume == 0 {
		cfg.Volume = 1.0
	}
	conn, err := network.Attach(cfg.Local)
	if err != nil {
		return nil, fmt.Errorf("speaker %s: %w", cfg.Name, err)
	}
	s := &Speaker{clock: clock, cfg: cfg, conn: conn, volume: cfg.Volume}
	s.ctlRTT = obs.NewHistogram("es_speaker_control_rtt_seconds",
		"relay Subscribe→SubAck round trip", nil)
	s.leaseMargin = obs.NewHistogram("es_speaker_lease_margin_seconds",
		"relay lease time remaining at each refresh", nil)
	s.sub = lease.New(clock, conn, "speaker-"+cfg.Name+"-lease")
	s.sub.SetInstruments(s.ctlRTT, s.leaseMargin)
	if cfg.RelayProfile != 0 {
		s.sub.SetProfile(cfg.RelayProfile)
	}
	if cfg.RelayAuth != nil {
		s.sub.SetAuth(cfg.RelayAuth)
	}
	s.hw = audiodev.NewSimHardware(clock, s.played)
	if cfg.DACSpeed > 0 {
		s.hw.SetSpeed(cfg.DACSpeed)
	}
	s.dev = audiodev.NewDevice(clock, s.hw)
	if cfg.Group != "" {
		if err := s.tuneIn(cfg.Group); err != nil {
			conn.Close()
			return nil, err
		}
		s.group = cfg.Group
	}
	return s, nil
}

// tuneIn attaches to a channel source: a multicast group is joined
// natively; anything else is treated as a relay's unicast address and
// subscribed to under a lease (§2.3 beyond one segment), requesting the
// configured channel id so a multi-channel relay forwards only it.
func (s *Speaker) tuneIn(group lan.Addr) error {
	if group.IsMulticast() {
		return s.conn.Join(group)
	}
	if err := group.Validate(); err != nil {
		return fmt.Errorf("speaker %s: relay address: %w", s.cfg.Name, err)
	}
	s.sub.Subscribe(group, s.cfg.Channel, s.cfg.RelayLease)
	return nil
}

// tuneOut detaches from the current channel source.
func (s *Speaker) tuneOut(group lan.Addr) error {
	if group.IsMulticast() {
		return s.conn.Leave(group)
	}
	// Cancel the lease; if the packet is lost the relay expires us.
	s.sub.Cancel()
	return nil
}

// Stats returns a snapshot of the speaker accounting, folding in the
// relay-subscription counters the lease layer keeps.
func (s *Speaker) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	ls := s.sub.Stats()
	st.RelaySubscribes = ls.Subscribes
	st.RelaySubAcks = ls.Acks
	st.RelayRefusals = ls.Refusals
	st.RelayStaleAcks = ls.Stale
	st.RelayAuthDropped = ls.AuthDropped
	st.RelayRedirects = ls.Redirects
	return st
}

// Device exposes the underlying audio device (for its driver stats).
func (s *Speaker) Device() *audiodev.Device { return s.dev }

// OnPlay registers a callback invoked for every hardware block as it
// plays — the measurement tap for the synchronization experiments.
// Multiple callbacks may be registered; each sees every block. A nil
// fn is ignored.
func (s *Speaker) OnPlay(fn func(audiodev.PlayedBlock)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onPlay = append(s.onPlay, fn)
}

// played is the SimHardware sink.
func (s *Speaker) played(b audiodev.PlayedBlock) {
	s.mu.Lock()
	fns := s.onPlay
	s.mu.Unlock()
	for _, fn := range fns {
		fn(b)
	}
}

// SetVolume sets the software gain (clamped to [0, 4]).
func (s *Speaker) SetVolume(v float64) {
	if v < 0 {
		v = 0
	}
	if v > 4 {
		v = 4
	}
	s.mu.Lock()
	s.volume = v
	s.mu.Unlock()
}

// Volume returns the current software gain.
func (s *Speaker) Volume() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.volume
}

// SetAmbient sets the ambient noise RMS (in sample units) the microphone
// model hears (§5.2).
func (s *Speaker) SetAmbient(rms float64) {
	s.mu.Lock()
	s.ambient = rms
	s.mu.Unlock()
}

// Group returns the currently tuned channel group.
func (s *Speaker) Group() lan.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.group
}

// Tune switches to a different channel source: leave (or unsubscribe),
// join (or subscribe), and wait for the new channel's control packet
// ("like a radio", §2.3). A multicast group is joined natively; a
// unicast address is subscribed to as a relay.
func (s *Speaker) Tune(group lan.Addr) error {
	s.mu.Lock()
	old := s.group
	s.mu.Unlock()
	if old == group {
		return nil
	}
	if old != "" {
		if err := s.tuneOut(old); err != nil {
			return err
		}
	}
	if err := s.tuneIn(group); err != nil {
		return err
	}
	s.mu.Lock()
	s.group = group
	s.haveCtl = false
	s.dec = nil
	s.pend = nil
	s.tail = time.Time{}
	s.stats.Tunes++
	s.mu.Unlock()
	s.dev.Flush()
	return nil
}

// Stop shuts the speaker down; Run and the lease refresher return.
func (s *Speaker) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.sub.Close()
	s.conn.Close()
}

// Run receives and plays until Stop. Spawn it via clock.Go.
func (s *Speaker) Run() {
	defer func() {
		if s.dev.Playing() || s.dev.Buffered() > 0 {
			s.dev.Drain()
		}
		s.dev.Close()
	}()
	for {
		pkt, err := s.conn.Recv(s.cfg.ControlTimeout)
		if err == lan.ErrTimeout {
			s.mu.Lock()
			stopped := s.stopped
			s.mu.Unlock()
			if stopped {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		s.handlePacket(pkt)
	}
}

// handlePacket verifies, classifies and dispatches one datagram.
//
// SubAck is classified before the stream Verify hook runs: it answers
// the relay control plane, whose trust root is Config.RelayAuth (the
// relay's key), not the producer's stream key. Running it through the
// stream hook was the bug that made Verify + relay fallback unusable —
// the relay signs nothing with the producer's key, so an authenticated
// speaker dropped every SubAck as DroppedAuth and never learned its
// granted lease. The common 8-byte header is plaintext in both the
// wrapped and unwrapped forms (the auth trailer is appended), so the
// peek works before any verification.
func (s *Speaker) handlePacket(pkt lan.Packet) {
	data := pkt.Data
	if t, _, err := proto.PeekType(data); err == nil && t == proto.TypeSubAck {
		s.handleSubAck(pkt.From, data)
		return
	}
	if s.cfg.Verify != nil {
		inner, ok := s.cfg.Verify(data)
		if !ok {
			s.mu.Lock()
			s.stats.DroppedAuth++
			s.mu.Unlock()
			return
		}
		data = inner
	}
	t, _, err := proto.PeekType(data)
	if err != nil {
		s.mu.Lock()
		s.stats.DroppedMalformed++
		s.mu.Unlock()
		return
	}
	switch t {
	case proto.TypeControl:
		s.handleControl(data, pkt.Recv)
	case proto.TypeData:
		s.handleData(data)
	default:
		// Announce packets are the tuner UI's business, not playback's.
	}
}

// handleSubAck feeds the relay's raw reply to the lease layer, which
// drops acks not sent by the leased relay's own address (off-path
// forgeries and late replies from a previous target), verifies the
// rest (under Config.RelayAuth), rejects stale seqs, records the
// granted lease, and re-paces its refresh off it. A refusal (table
// full, wrong channel, loop) is counted but the periodic subscribe
// keeps going: leases are soft state, so a full table may drain and
// the refresh doubles as the retry — at one small packet per refresh
// interval.
func (s *Speaker) handleSubAck(from lan.Addr, data []byte) {
	if _, err := s.sub.HandleAckData(from, data); err != nil &&
		err != lease.ErrAuthFailed && err != lease.ErrRedirectLimit {
		// Verification failures and exhausted redirect chains are
		// already counted by the lease layer (surfaced as
		// RelayAuthDropped and RelayRefusals); only parse failures are
		// the speaker's malformed-traffic problem.
		s.mu.Lock()
		s.stats.DroppedMalformed++
		s.mu.Unlock()
	}
}

// handleControl ingests a control packet: (re)configure on a new epoch
// and refresh the wall-clock mapping (§3.2). recvAt is the packet's
// delivery time — using it (rather than processing time) keeps the
// anchor exact even when the speaker was blocked in a device write when
// the packet landed.
func (s *Speaker) handleControl(data []byte, recvAt time.Time) {
	ctl, err := proto.UnmarshalControl(data)
	if err != nil {
		s.mu.Lock()
		s.stats.DroppedMalformed++
		s.mu.Unlock()
		return
	}
	now := recvAt
	if now.IsZero() {
		now = s.clock.Now()
	}
	s.mu.Lock()
	reconfig := !s.haveCtl || ctl.Epoch != s.ctl.Epoch || ctl.Channel != s.ctl.Channel
	s.stats.ControlPackets++
	s.ctl = *ctl
	s.haveCtl = true
	// Zero-transmission-delay assumption (§3.2): the producer's clock
	// read ctl.Producer at the instant we received this packet.
	s.baseLocal = now
	s.baseProducer = ctl.Producer
	s.mu.Unlock()

	if !reconfig {
		return
	}
	dec, err := codec.NewDecoder(ctl.Codec, ctl.Params)
	if err != nil {
		s.mu.Lock()
		s.stats.DroppedMalformed++
		s.haveCtl = false
		s.mu.Unlock()
		return
	}
	// Reconfigure the audio path for the new stream.
	s.dev.Close()
	if err := s.dev.Open(ctl.Params); err != nil {
		s.mu.Lock()
		s.haveCtl = false
		s.mu.Unlock()
		return
	}
	if s.cfg.BlockSize > 0 {
		s.dev.SetBlockSize(s.cfg.BlockSize)
	}
	s.mu.Lock()
	s.dec = dec
	s.pend = nil
	s.tail = time.Time{}
	s.mu.Unlock()
}

// handleData buffers payload and runs the pipeline stage when enough has
// accumulated (§3.4).
func (s *Speaker) handleData(data []byte) {
	d, err := proto.UnmarshalData(data)
	if err != nil {
		s.mu.Lock()
		s.stats.DroppedMalformed++
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if !s.haveCtl || s.dec == nil {
		// The radio model: no playing before a control packet (§2.3).
		s.stats.DroppedNoConfig++
		s.mu.Unlock()
		return
	}
	if d.Epoch != s.ctl.Epoch || d.Channel != s.ctl.Channel {
		s.stats.DroppedEpoch++
		s.mu.Unlock()
		return
	}
	s.stats.DataPackets++
	if len(s.pend) == 0 {
		s.pendPlayAt = d.PlayAt
	}
	s.pend = append(s.pend, d.Payload...)
	ready := len(s.pend) >= s.cfg.RecvBuffer
	s.mu.Unlock()
	if ready {
		s.processPending()
	}
}

// processPending decodes the accumulated payload, applies the §3.2
// schedule (sleep if early, discard if late), applies volume, and writes
// to the audio device.
func (s *Speaker) processPending() {
	s.mu.Lock()
	pend := s.pend
	playAt := s.pendPlayAt
	s.pend = nil
	dec := s.dec
	params := s.ctl.Params
	baseLocal, baseProducer := s.baseLocal, s.baseProducer
	s.mu.Unlock()
	if len(pend) == 0 || dec == nil {
		return
	}

	raw, err := dec.Decode(pend)
	if err != nil {
		s.mu.Lock()
		s.stats.DroppedMalformed++
		s.mu.Unlock()
		dec.Reset()
		return
	}
	// Charge the decode to the simulated CPU (§3.4). This happens before
	// the schedule check, exactly like on the real slow box: by the time
	// a big batch is decoded its deadline may already be gone.
	if cost := s.cfg.CPU.Cost(len(raw)); cost > 0 {
		s.clock.Sleep(cost)
	}

	var lead []byte // silence prepended for alignment or gap filling
	if !s.cfg.NoSync {
		now := s.clock.Now()
		target := baseLocal.Add(time.Duration(playAt - baseProducer))
		fresh := !s.dev.Playing() && s.dev.Buffered() == 0

		// Where would this batch start playing? While the stream runs
		// continuously, exactly when the previously admitted content
		// ends (s.tail) — an estimate that survives blocking writes and
		// ring quantization. On a fresh start, nothing is queued.
		s.mu.Lock()
		startPlay := s.tail
		s.mu.Unlock()
		if fresh || startPlay.IsZero() || startPlay.Before(now) {
			startPlay = now.Add(params.Duration(s.dev.QueuedBytes()))
			fresh = fresh || s.dev.QueuedBytes() == 0
		}
		diff := startPlay.Sub(target)
		// One hardware block of hysteresis on top of epsilon: the DAC
		// quantizes everything by a block anyway.
		lateBound := s.cfg.Epsilon + params.Duration(s.dev.BlockSize())
		if diff > lateBound {
			// Too late to be worth playing: discard up to the wall
			// clock (§3.2).
			s.mu.Lock()
			s.stats.DroppedLate++
			s.mu.Unlock()
			dec.Reset()
			return
		}
		switch {
		case fresh:
			// Fresh start: the DAC only triggers once a full hardware
			// block is buffered, which would skew this speaker's phase
			// by up to a block relative to others. Pad the front with
			// silence so the trigger fires on this write and the first
			// real sample plays exactly at its target (§3.2), sleeping
			// until that moment.
			if need := s.dev.BlockSize() - len(raw); need > 0 {
				lead = make([]byte, need)
				audio.FillSilence(params.Encoding, lead)
			}
			writeAt := target.Add(-params.Duration(len(lead)))
			if d := writeAt.Sub(now); d > 0 {
				s.mu.Lock()
				s.stats.SleepsToSync++
				s.mu.Unlock()
				s.clock.Sleep(d)
			}
			startPlay = target
		case diff < -s.cfg.Epsilon:
			// The batch would play early: content between tail and
			// target is missing (packet loss, a producer pause). Fill
			// the hole with silence so everything after it stays on
			// schedule, bounding pathological gaps.
			gap := -diff
			if gap > 2*time.Second {
				gap = 2 * time.Second
			}
			if n := params.BytesFor(gap); n > 0 {
				lead = make([]byte, n)
				audio.FillSilence(params.Encoding, lead)
				s.mu.Lock()
				s.stats.GapFills++
				s.mu.Unlock()
			}
			startPlay = startPlay.Add(params.Duration(len(lead)))
		}
		s.mu.Lock()
		s.tail = startPlay.Add(params.Duration(len(raw)))
		s.mu.Unlock()
	}

	raw = s.applyVolume(params, raw)
	if len(lead) > 0 {
		s.dev.Write(lead)
	}
	if _, err := s.dev.Write(raw); err == nil {
		s.mu.Lock()
		s.stats.BytesPlayed += int64(len(raw))
		s.mu.Unlock()
	}
}

// applyVolume scales the decoded audio by the software gain and runs the
// auto-volume controller (§5.2).
func (s *Speaker) applyVolume(params audio.Params, raw []byte) []byte {
	s.mu.Lock()
	vol := s.volume
	ambient := s.ambient
	av := s.cfg.AutoVolume
	s.mu.Unlock()

	if av == nil && vol == 1.0 {
		return raw
	}
	samples := audio.Decode(params, raw)
	if vol != 1.0 {
		for i, v := range samples {
			samples[i] = audio.Saturate(int32(float64(v) * vol))
		}
	}
	if av != nil {
		// Microphone model: the mic hears our own output plus ambient
		// noise; the controller steers toward the target loudness ratio.
		out := audio.RMS(samples)
		newVol := av.Update(vol, out, ambient)
		if newVol != vol {
			s.mu.Lock()
			s.volume = newVol
			s.mu.Unlock()
		}
	}
	return audio.Encode(params, samples)
}
