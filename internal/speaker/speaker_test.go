package speaker

import (
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vclock"
)

func TestCPUModelCost(t *testing.T) {
	if got := CPUFast.Cost(1 << 20); got != 0 {
		t.Fatalf("fast CPU cost = %v", got)
	}
	m := CPUModel{PerByte: time.Microsecond, PerPacket: time.Millisecond}
	if got := m.Cost(1000); got != time.Millisecond+1000*time.Microsecond {
		t.Fatalf("cost = %v", got)
	}
	// Geode decodes CD audio at roughly a third of real time.
	perSec := CPUGeode.Cost(audio.CDQuality.BytesPerSecond())
	if perSec < 200*time.Millisecond || perSec > 600*time.Millisecond {
		t.Fatalf("geode cost per second of CD audio = %v, want ~0.35s", perSec)
	}
}

func TestAutoVolumeRaisesInNoise(t *testing.T) {
	av := &AutoVolume{}
	vol := 1.0
	// Loud room (ambient 8000), quiet output: volume must climb.
	for i := 0; i < 50; i++ {
		vol = av.Update(vol, 5000*vol, 8000)
	}
	if vol <= 1.0 {
		t.Fatalf("volume did not rise in noise: %v", vol)
	}
	// Quiet room, loud output: volume must fall.
	vol2 := 2.0
	for i := 0; i < 50; i++ {
		vol2 = av.Update(vol2, 20000*vol2, 100)
	}
	if vol2 >= 2.0 {
		t.Fatalf("volume did not fall in quiet: %v", vol2)
	}
}

func TestAutoVolumeBounds(t *testing.T) {
	av := &AutoVolume{Min: 0.5, Max: 1.5}
	vol := 1.0
	for i := 0; i < 200; i++ {
		vol = av.Update(vol, 1, 30000) // starved output, loud room
	}
	if vol > 1.5 {
		t.Fatalf("volume exceeded max: %v", vol)
	}
	vol = 1.0
	for i := 0; i < 200; i++ {
		vol = av.Update(vol, 32000, 0) // blasting output, silent room
	}
	if vol < 0.5 {
		t.Fatalf("volume under min: %v", vol)
	}
}

func TestAutoVolumeSilenceIsNoop(t *testing.T) {
	av := &AutoVolume{}
	if got := av.Update(1.3, 0, 5000); got != 1.3 {
		t.Fatalf("silence changed volume: %v", got)
	}
}

func TestAutoVolumeConvergesToSteadyState(t *testing.T) {
	// With constant program level and ambient, the controller settles
	// rather than oscillating unboundedly.
	av := &AutoVolume{}
	vol := 1.0
	program := 4000.0 // source RMS before gain
	for i := 0; i < 300; i++ {
		vol = av.Update(vol, program*vol, 2000)
	}
	settled := vol
	for i := 0; i < 50; i++ {
		vol = av.Update(vol, program*vol, 2000)
	}
	drift := vol/settled - 1
	if drift > 0.15 || drift < -0.15 {
		t.Fatalf("controller still moving after settling: %v -> %v", settled, vol)
	}
	// Output should be near target ratio x ambient = 6000.
	out := program * vol
	if out < 4000 || out > 9000 {
		t.Fatalf("settled output RMS %v, want ~6000", out)
	}
}

// newSpeakerEnv builds a speaker on a private segment with a raw conn to
// inject packets.
func newSpeakerEnv(t *testing.T, cfg Config) (*vclock.Sim, *Speaker, lan.Conn) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	if cfg.Local == "" {
		cfg.Local = "10.0.0.2:5004"
	}
	if cfg.Group == "" {
		cfg.Group = "239.72.9.1:5004"
	}
	if cfg.Name == "" {
		cfg.Name = "test"
	}
	sp, err := New(sim, seg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := seg.Attach("10.0.0.1:5000")
	if err != nil {
		t.Fatal(err)
	}
	return sim, sp, src
}

func TestSpeakerDropsDataBeforeControl(t *testing.T) {
	sim, sp, src := newSpeakerEnv(t, Config{})
	sim.Go("speaker", sp.Run)
	sim.Go("injector", func() {
		d := &proto.Data{Channel: 1, Epoch: 1, Seq: 1, Payload: make([]byte, 100)}
		pkt, _ := d.Marshal()
		src.Send("239.72.9.1:5004", pkt)
		sim.Sleep(100 * time.Millisecond)
		sp.Stop()
	})
	sim.WaitIdle()
	st := sp.Stats()
	if st.DroppedNoConfig != 1 {
		t.Fatalf("dropped-no-config = %d, want 1", st.DroppedNoConfig)
	}
	if st.BytesPlayed != 0 {
		t.Fatal("played audio without configuration")
	}
}

func TestSpeakerDropsStaleEpoch(t *testing.T) {
	sim, sp, src := newSpeakerEnv(t, Config{})
	sim.Go("speaker", sp.Run)
	sim.Go("injector", func() {
		c := &proto.Control{Channel: 1, Epoch: 5, Seq: 1, Params: audio.Voice,
			Codec: "raw", Interval: 1000}
		pkt, _ := c.Marshal()
		src.Send("239.72.9.1:5004", pkt)
		sim.Sleep(10 * time.Millisecond)
		d := &proto.Data{Channel: 1, Epoch: 4, Seq: 1, Payload: make([]byte, 100)}
		dp, _ := d.Marshal()
		src.Send("239.72.9.1:5004", dp)
		sim.Sleep(100 * time.Millisecond)
		sp.Stop()
	})
	sim.WaitIdle()
	if got := sp.Stats().DroppedEpoch; got != 1 {
		t.Fatalf("dropped-epoch = %d, want 1", got)
	}
}

func TestSpeakerDropsMalformed(t *testing.T) {
	sim, sp, src := newSpeakerEnv(t, Config{})
	sim.Go("speaker", sp.Run)
	sim.Go("injector", func() {
		src.Send("239.72.9.1:5004", []byte{1, 2, 3})
		src.Send("239.72.9.1:5004", make([]byte, 64))
		sim.Sleep(100 * time.Millisecond)
		sp.Stop()
	})
	sim.WaitIdle()
	if got := sp.Stats().DroppedMalformed; got != 2 {
		t.Fatalf("dropped-malformed = %d, want 2", got)
	}
}

func TestSpeakerVolumeClamping(t *testing.T) {
	sim, sp, _ := newSpeakerEnv(t, Config{})
	_ = sim
	sp.SetVolume(-3)
	if sp.Volume() != 0 {
		t.Fatalf("volume = %v", sp.Volume())
	}
	sp.SetVolume(99)
	if sp.Volume() != 4 {
		t.Fatalf("volume = %v", sp.Volume())
	}
	sp.Stop()
}

func TestSpeakerTuneToSameGroupIsNoop(t *testing.T) {
	_, sp, _ := newSpeakerEnv(t, Config{})
	if err := sp.Tune("239.72.9.1:5004"); err != nil {
		t.Fatal(err)
	}
	if sp.Stats().Tunes != 0 {
		t.Fatal("same-group tune counted")
	}
	sp.Stop()
}

func TestSpeakerPlaysAfterControl(t *testing.T) {
	sim, sp, src := newSpeakerEnv(t, Config{})
	sim.Go("speaker", sp.Run)
	p := audio.Voice
	sim.Go("injector", func() {
		c := &proto.Control{Channel: 1, Epoch: 1, Seq: 1, Params: p,
			Codec: "raw", Interval: 1000}
		cp, _ := c.Marshal()
		src.Send("239.72.9.1:5004", cp)
		sim.Sleep(time.Millisecond)
		payload := make([]byte, 800) // 100ms of voice
		audio.FillSilence(p.Encoding, payload)
		for i := 0; i < 10; i++ {
			d := &proto.Data{Channel: 1, Epoch: 1, Seq: uint64(i + 1),
				PlayAt:  int64(50*time.Millisecond) + int64(i)*int64(100*time.Millisecond),
				Payload: payload}
			dp, _ := d.Marshal()
			src.Send("239.72.9.1:5004", dp)
			sim.Sleep(100 * time.Millisecond)
		}
		sim.Sleep(2 * time.Second)
		sp.Stop()
	})
	sim.WaitIdle()
	st := sp.Stats()
	if st.BytesPlayed != 8000 {
		t.Fatalf("played %d bytes, want 8000 (stats %+v)", st.BytesPlayed, st)
	}
	if st.DroppedLate != 0 {
		t.Fatalf("late drops on a clean paced stream: %+v", st)
	}
}
