// Package rebroadcast implements the Audio Stream Rebroadcaster (§2.2):
// the producer that reads audio and configuration from the VAD master
// side, rate-limits the stream to real time (§3.1), compresses
// high-bitrate channels (§2.2), and multicasts control + data packets
// onto the LAN (§2.3).
//
// The producer is deliberately stateless with respect to listeners: it
// periodically multicasts a control packet carrying the full audio
// configuration and its wall clock, so speakers are pure receivers that
// can tune in at any time.
package rebroadcast
