package rebroadcast

import (
	"sort"
	"sync"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vclock"
)

// DefaultCatalogInterval is the announce cadence on the catalog group.
const DefaultCatalogInterval = 2 * time.Second

// Catalog is the out-of-band channel directory (§4.3, after MFTP): a
// separate multicast group announces which channels exist and where, so
// a speaker can present a programme list without joining every audio
// group, and the server could suspend untuned channels.
type Catalog struct {
	clock    vclock.Clock
	conn     lan.Conn
	group    lan.Addr
	interval time.Duration

	mu       sync.Mutex
	channels map[uint32]proto.ChannelInfo
	relays   map[string]proto.RelayInfo        // by unicast address
	live     map[string]func() proto.RelayInfo // by the provider's initial Addr
	signer   func([]byte) ([]byte, error)
	seq      uint64
	stop     bool
	sent     int64
}

// SetSigner installs an announce signer (security.AnnounceSigner.Sign,
// typically): every marshaled announce is passed through it before the
// send, so verifying receivers can reject forged catalog records — the
// one steering input no control-plane authenticator covers. A cycle
// whose signing fails is skipped rather than sent unsigned: a verifying
// segment would reject it anyway, and a silently unsigned announce
// downgrades every legacy receiver too. Nil (the default) announces
// unsigned.
func (c *Catalog) SetSigner(sign func([]byte) ([]byte, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.signer = sign
}

// NewCatalog creates a catalog announcer on the given multicast group.
func NewCatalog(clock vclock.Clock, conn lan.Conn, group lan.Addr, interval time.Duration) *Catalog {
	if interval <= 0 {
		interval = DefaultCatalogInterval
	}
	return &Catalog{
		clock:    clock,
		conn:     conn,
		group:    group,
		interval: interval,
		channels: make(map[uint32]proto.ChannelInfo),
		relays:   make(map[string]proto.RelayInfo),
	}
}

// SetChannel adds or updates a catalog entry.
func (c *Catalog) SetChannel(info proto.ChannelInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.channels[info.ID] = info
}

// RemoveChannel deletes a catalog entry.
func (c *Catalog) RemoveChannel(id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.channels, id)
}

// SetRelay adds or updates a relay record (§4.3 applied to bridges):
// off-LAN speakers and downstream relays learn where to lease a
// unicast copy without static configuration.
func (c *Catalog) SetRelay(info proto.RelayInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.relays[info.Addr] = info
}

// SetRelayFunc registers a live relay record provider, keyed by the
// address the provider reports at registration time. Run calls it on
// every announce cycle, so a record that changes between announces — a
// relay's load vector, above all — goes out fresh instead of frozen at
// whatever SetRelay last captured. The provider must be safe to call
// from the catalog's goroutine.
func (c *Catalog) SetRelayFunc(fn func() proto.RelayInfo) {
	addr := fn().Addr
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.live == nil {
		c.live = make(map[string]func() proto.RelayInfo)
	}
	c.live[addr] = fn
}

// RemoveRelay deletes a relay record by its unicast address, whether it
// was registered statically or as a live provider.
func (c *Catalog) RemoveRelay(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.relays, addr)
	delete(c.live, addr)
}

// Announcements returns how many announce packets have been sent.
func (c *Catalog) Announcements() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// Run announces periodically until Stop. Spawn it via clock.Go.
func (c *Catalog) Run() {
	for {
		c.mu.Lock()
		if c.stop {
			c.mu.Unlock()
			return
		}
		c.seq++
		a := proto.Announce{Seq: c.seq}
		ids := make([]uint32, 0, len(c.channels))
		for id := range c.channels {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			a.Channels = append(a.Channels, c.channels[id])
		}
		relays := make(map[string]proto.RelayInfo, len(c.relays)+len(c.live))
		for addr, ri := range c.relays {
			relays[addr] = ri
		}
		fns := make([]func() proto.RelayInfo, 0, len(c.live))
		for _, fn := range c.live {
			fns = append(fns, fn)
		}
		sign := c.signer
		c.sent++
		c.mu.Unlock()
		// Live providers run outside c.mu: they read the relay's own
		// state under its locks, and a live record (fresh load vector)
		// overrides any static one for the same address.
		for _, fn := range fns {
			ri := fn()
			relays[ri.Addr] = ri
		}
		addrs := make([]string, 0, len(relays))
		for addr := range relays {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		for _, addr := range addrs {
			a.Relays = append(a.Relays, relays[addr])
		}
		if pkt, err := a.Marshal(); err == nil {
			if sign != nil {
				pkt, err = sign(pkt)
			}
			if err == nil {
				c.conn.Send(c.group, pkt)
			}
		}
		c.clock.Sleep(c.interval)
	}
}

// Stop makes Run return after the current cycle.
func (c *Catalog) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stop = true
}
