package rebroadcast

import (
	"sort"
	"sync"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vclock"
)

// DefaultCatalogInterval is the announce cadence on the catalog group.
const DefaultCatalogInterval = 2 * time.Second

// Catalog is the out-of-band channel directory (§4.3, after MFTP): a
// separate multicast group announces which channels exist and where, so
// a speaker can present a programme list without joining every audio
// group, and the server could suspend untuned channels.
type Catalog struct {
	clock    vclock.Clock
	conn     lan.Conn
	group    lan.Addr
	interval time.Duration

	mu       sync.Mutex
	channels map[uint32]proto.ChannelInfo
	relays   map[string]proto.RelayInfo // by unicast address
	seq      uint64
	stop     bool
	sent     int64
}

// NewCatalog creates a catalog announcer on the given multicast group.
func NewCatalog(clock vclock.Clock, conn lan.Conn, group lan.Addr, interval time.Duration) *Catalog {
	if interval <= 0 {
		interval = DefaultCatalogInterval
	}
	return &Catalog{
		clock:    clock,
		conn:     conn,
		group:    group,
		interval: interval,
		channels: make(map[uint32]proto.ChannelInfo),
		relays:   make(map[string]proto.RelayInfo),
	}
}

// SetChannel adds or updates a catalog entry.
func (c *Catalog) SetChannel(info proto.ChannelInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.channels[info.ID] = info
}

// RemoveChannel deletes a catalog entry.
func (c *Catalog) RemoveChannel(id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.channels, id)
}

// SetRelay adds or updates a relay record (§4.3 applied to bridges):
// off-LAN speakers and downstream relays learn where to lease a
// unicast copy without static configuration.
func (c *Catalog) SetRelay(info proto.RelayInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.relays[info.Addr] = info
}

// RemoveRelay deletes a relay record by its unicast address.
func (c *Catalog) RemoveRelay(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.relays, addr)
}

// Announcements returns how many announce packets have been sent.
func (c *Catalog) Announcements() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// Run announces periodically until Stop. Spawn it via clock.Go.
func (c *Catalog) Run() {
	for {
		c.mu.Lock()
		if c.stop {
			c.mu.Unlock()
			return
		}
		c.seq++
		a := proto.Announce{Seq: c.seq}
		ids := make([]uint32, 0, len(c.channels))
		for id := range c.channels {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			a.Channels = append(a.Channels, c.channels[id])
		}
		addrs := make([]string, 0, len(c.relays))
		for addr := range c.relays {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		for _, addr := range addrs {
			a.Relays = append(a.Relays, c.relays[addr])
		}
		c.sent++
		c.mu.Unlock()
		if pkt, err := a.Marshal(); err == nil {
			c.conn.Send(c.group, pkt)
		}
		c.clock.Sleep(c.interval)
	}
}

// Stop makes Run return after the current cycle.
func (c *Catalog) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stop = true
}
