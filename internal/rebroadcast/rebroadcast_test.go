package rebroadcast

import (
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vad"
	"repro/internal/vclock"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{Group: "239.1.1.1:5004"}
	c.applyDefaults()
	if c.ControlInterval != DefaultControlInterval ||
		c.ChunkBytes != DefaultChunkBytes ||
		c.Lead != DefaultLead ||
		c.CompressThreshold != DefaultCompressThreshold {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.Quality != codec.MaxQuality {
		t.Fatalf("quality default = %d", c.Quality)
	}
	if c.Preroll != c.Lead/2 {
		t.Fatalf("preroll default = %v", c.Preroll)
	}
	z := Config{Group: "239.1.1.1:5004", Quality: QualityZero}
	z.applyDefaults()
	if z.Quality != 0 {
		t.Fatalf("QualityZero mapped to %d", z.Quality)
	}
	big := Config{Group: "239.1.1.1:5004", Preroll: time.Hour, Lead: time.Second}
	big.applyDefaults()
	if big.Preroll > big.Lead {
		t.Fatalf("preroll %v exceeds lead %v", big.Preroll, big.Lead)
	}
}

func TestNewRejectsUnicastGroup(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, _ := seg.Attach("10.0.0.1:5000")
	if _, err := New(sim, conn, Config{Group: "10.0.0.2:5004"}); err == nil {
		t.Fatal("unicast group accepted")
	}
}

func TestCodecPolicy(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, _ := seg.Attach("10.0.0.1:5000")
	r, err := New(sim, conn, Config{Group: "239.1.1.1:5004"})
	if err != nil {
		t.Fatal(err)
	}
	// CD quality (1.4 Mbps) compresses; telephony (64 kbps) ships raw.
	if got := r.chooseCodec(audio.CDQuality); got != "ovl" {
		t.Fatalf("CD -> %s, want ovl", got)
	}
	if got := r.chooseCodec(audio.Voice); got != "raw" {
		t.Fatalf("voice -> %s, want raw", got)
	}
	// 8-bit encodings never get the transform codec.
	p8 := audio.Params{SampleRate: 48000, Channels: 8, Encoding: audio.EncodingULaw}
	if got := r.chooseCodec(p8); got != "raw" {
		t.Fatalf("8-bit high-rate -> %s, want raw", got)
	}
	// Explicit codec wins.
	conn2, _ := seg.Attach("10.0.0.2:5000")
	r2, _ := New(sim, conn2, Config{Group: "239.1.1.2:5004", Codec: "raw"})
	if got := r2.chooseCodec(audio.CDQuality); got != "raw" {
		t.Fatalf("forced codec ignored: %s", got)
	}
}

// runChannel pumps a clip through a VAD + rebroadcaster and captures the
// multicast packets.
func runChannel(t *testing.T, cfg Config, p audio.Params, clip time.Duration) ([]lan.Packet, Stats) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, err := seg.Attach("10.0.0.1:5000")
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(sim, conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := vad.New(sim, vad.Config{})
	recv, _ := seg.Attach("10.0.0.2:5004")
	recv.Join(cfg.Group)
	var pkts []lan.Packet
	sim.Go("capture", func() {
		for {
			pkt, err := recv.Recv(2 * time.Second)
			if err == lan.ErrTimeout {
				return
			}
			if err != nil {
				return
			}
			pkts = append(pkts, pkt)
		}
	})
	sim.Go("rebroadcast", func() {
		r.Run(v.Master())
	})
	sim.Go("player", func() {
		slave := v.Slave()
		if err := slave.Open(p); err != nil {
			t.Error(err)
			return
		}
		total := p.BytesFor(clip)
		tone := audio.NewTone(p.SampleRate, p.Channels, 440, 0.5)
		buf := make([]int16, 2048*p.Channels)
		written := 0
		for written < total {
			n, _ := tone.ReadSamples(buf)
			raw := audio.Encode(p, buf[:n])
			if written+len(raw) > total {
				raw = raw[:total-written]
			}
			slave.Write(raw)
			written += len(raw)
		}
		slave.Drain()
		v.Close()
		// The capture task winds the run down via its receive timeout.
	})
	sim.WaitIdle()
	return pkts, r.Stats()
}

func TestControlCadenceAndContent(t *testing.T) {
	cfg := Config{ID: 7, Name: "t", Group: "239.1.1.1:5004",
		ControlInterval: 200 * time.Millisecond}
	pkts, st := runChannel(t, cfg, audio.Voice, 2*time.Second)
	var controls []*proto.Control
	var datas int
	for _, pkt := range pkts {
		typ, ch, err := proto.PeekType(pkt.Data)
		if err != nil {
			t.Fatalf("bad packet on wire: %v", err)
		}
		if ch != 7 {
			t.Fatalf("channel = %d", ch)
		}
		switch typ {
		case proto.TypeControl:
			c, err := proto.UnmarshalControl(pkt.Data)
			if err != nil {
				t.Fatal(err)
			}
			controls = append(controls, c)
		case proto.TypeData:
			datas++
		}
	}
	// ~2s at 200ms cadence: at least 8 control packets.
	if len(controls) < 8 {
		t.Fatalf("%d control packets over 2s at 200ms cadence", len(controls))
	}
	if datas == 0 {
		t.Fatal("no data packets")
	}
	for _, c := range controls {
		if c.Params != audio.Voice || c.Codec != "raw" {
			t.Fatalf("control content: %+v", c)
		}
		if c.Interval != 200 {
			t.Fatalf("interval field = %d", c.Interval)
		}
	}
	if st.ControlPackets != int64(len(controls)) {
		t.Fatalf("stats/wire mismatch: %d vs %d", st.ControlPackets, len(controls))
	}
}

func TestDataTimestampsMonotoneAndSpaced(t *testing.T) {
	cfg := Config{ID: 1, Group: "239.1.1.1:5004", Codec: "raw"}
	pkts, _ := runChannel(t, cfg, audio.Voice, 2*time.Second)
	var prev *proto.Data
	var total time.Duration
	for _, pkt := range pkts {
		typ, _, _ := proto.PeekType(pkt.Data)
		if typ != proto.TypeData {
			continue
		}
		d, err := proto.UnmarshalData(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if d.Seq != prev.Seq+1 {
				t.Fatalf("seq gap: %d -> %d", prev.Seq, d.Seq)
			}
			if d.PlayAt <= prev.PlayAt {
				t.Fatalf("timestamps not monotone: %d -> %d", prev.PlayAt, d.PlayAt)
			}
			// PlayAt delta equals the previous payload's duration.
			want := audio.Voice.Duration(len(prev.Payload))
			if got := time.Duration(d.PlayAt - prev.PlayAt); got != want {
				t.Fatalf("PlayAt delta %v != payload duration %v", got, want)
			}
		}
		total += audio.Voice.Duration(len(d.Payload))
		prev = d
	}
	if total < 1900*time.Millisecond || total > 2100*time.Millisecond {
		t.Fatalf("total stamped audio %v, want ~2s", total)
	}
}

func TestRateLimiterPacing(t *testing.T) {
	cfg := Config{ID: 1, Group: "239.1.1.1:5004", Codec: "raw",
		Lead: 100 * time.Millisecond, Preroll: 50 * time.Millisecond}
	pkts, _ := runChannel(t, cfg, audio.Voice, 3*time.Second)
	var dataPkts []lan.Packet
	for _, pkt := range pkts {
		if typ, _, _ := proto.PeekType(pkt.Data); typ == proto.TypeData {
			dataPkts = append(dataPkts, pkt)
		}
	}
	if len(dataPkts) < 3 {
		t.Fatalf("%d data packets", len(dataPkts))
	}
	span := dataPkts[len(dataPkts)-1].Recv.Sub(dataPkts[0].Recv)
	// 3s of audio must take ~3s to transmit (minus the preroll).
	if span < 2500*time.Millisecond || span > 3200*time.Millisecond {
		t.Fatalf("transmission span %v, want ~2.95s", span)
	}
}

func TestSignHookWrapsPackets(t *testing.T) {
	marker := []byte("SIGNED")
	cfg := Config{ID: 1, Group: "239.1.1.1:5004", Codec: "raw",
		Sign: func(pkt []byte) []byte { return append(append([]byte(nil), pkt...), marker...) }}
	pkts, _ := runChannel(t, cfg, audio.Voice, 500*time.Millisecond)
	if len(pkts) == 0 {
		t.Fatal("no packets")
	}
	for _, pkt := range pkts {
		tail := pkt.Data[len(pkt.Data)-len(marker):]
		if string(tail) != string(marker) {
			t.Fatal("packet not signed")
		}
	}
}

func TestCatalogAnnouncesAndStops(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, _ := seg.Attach("10.0.0.1:5000")
	cat := NewCatalog(sim, conn, "239.72.0.1:5003", 100*time.Millisecond)
	cat.SetChannel(proto.ChannelInfo{ID: 2, Name: "two", Group: "g2", Codec: "raw"})
	cat.SetChannel(proto.ChannelInfo{ID: 1, Name: "one", Group: "g1", Codec: "raw"})
	recv, _ := seg.Attach("10.0.0.2:5003")
	recv.Join("239.72.0.1:5003")
	var anns []*proto.Announce
	sim.Go("capture", func() {
		for {
			pkt, err := recv.Recv(time.Second)
			if err != nil {
				return
			}
			a, err := proto.UnmarshalAnnounce(pkt.Data)
			if err != nil {
				t.Error(err)
				return
			}
			anns = append(anns, a)
			if len(anns) == 3 {
				cat.Stop()
				recv.Close()
				return
			}
		}
	})
	sim.Go("catalog", cat.Run)
	sim.WaitIdle()
	if len(anns) < 3 {
		t.Fatalf("got %d announcements", len(anns))
	}
	// Entries are sorted by id and complete.
	for _, a := range anns {
		if len(a.Channels) != 2 || a.Channels[0].ID != 1 || a.Channels[1].ID != 2 {
			t.Fatalf("announce content: %+v", a)
		}
	}
	// Removal takes effect.
	cat.RemoveChannel(1)
	if got := cat.Announcements(); got < 3 {
		t.Fatalf("announcements = %d", got)
	}
}

func TestCatalogAnnouncesRelays(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := lan.NewSegment(sim, lan.SegmentConfig{})
	conn, _ := seg.Attach("10.0.0.1:5000")
	cat := NewCatalog(sim, conn, "239.72.0.1:5003", 100*time.Millisecond)
	cat.SetChannel(proto.ChannelInfo{ID: 1, Name: "one", Group: "g1", Codec: "raw"})
	cat.SetRelay(proto.RelayInfo{Addr: "10.0.0.9:5006", Group: "g1", Channel: 1})
	cat.SetRelay(proto.RelayInfo{Addr: "10.0.0.8:5006", Group: "10.0.0.9:5006"})
	recv, _ := seg.Attach("10.0.0.2:5003")
	recv.Join("239.72.0.1:5003")
	var anns []*proto.Announce
	sim.Go("capture", func() {
		for {
			pkt, err := recv.Recv(time.Second)
			if err != nil {
				return
			}
			a, err := proto.UnmarshalAnnounce(pkt.Data)
			if err != nil {
				t.Error(err)
				return
			}
			anns = append(anns, a)
			if len(anns) == 2 {
				// Relay removal must take effect on the next announce.
				cat.RemoveRelay("10.0.0.8:5006")
			}
			if len(anns) == 3 {
				cat.Stop()
				recv.Close()
				return
			}
		}
	})
	sim.Go("catalog", cat.Run)
	sim.WaitIdle()
	if len(anns) < 3 {
		t.Fatalf("got %d announcements", len(anns))
	}
	// Relay records ride along with the channels, sorted by address.
	a := anns[0]
	if len(a.Channels) != 1 || len(a.Relays) != 2 {
		t.Fatalf("announce content: %+v", a)
	}
	if a.Relays[0].Addr != "10.0.0.8:5006" || a.Relays[1].Addr != "10.0.0.9:5006" {
		t.Fatalf("relay order: %+v", a.Relays)
	}
	if a.Relays[1].Channel != 1 || a.Relays[1].Group != "g1" {
		t.Fatalf("relay record: %+v", a.Relays[1])
	}
	if last := anns[len(anns)-1]; len(last.Relays) != 1 || last.Relays[0].Addr != "10.0.0.9:5006" {
		t.Fatalf("relay removal not announced: %+v", last.Relays)
	}
}
