package rebroadcast

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/vad"
	"repro/internal/vclock"
)

// QualityZero requests the explicit lowest codec quality (Config.Quality
// zero means "default", which is maximum quality).
const QualityZero = -1

// Defaults.
const (
	// DefaultControlInterval is the control-packet cadence (§2.3).
	DefaultControlInterval = time.Second
	// DefaultChunkBytes bounds a data packet's payload so the marshalled
	// packet fits a LAN datagram.
	DefaultChunkBytes = 1400
	// DefaultLead is how far ahead of real time the producer stamps
	// packets, giving speakers buffering room.
	DefaultLead = 200 * time.Millisecond
	// DefaultCompressThreshold: streams at or above this raw bitrate get
	// the transform codec; below it they ship raw (§2.2 — compression
	// latency and CPU are not worth it on low-rate channels).
	DefaultCompressThreshold = 256_000 // bits per second
)

// Config parameterizes one rebroadcast channel.
type Config struct {
	ID    uint32   // channel identifier in every packet
	Name  string   // human-readable channel name (catalog)
	Group lan.Addr // multicast group to transmit on

	// Codec forces a codec by name; empty selects automatically by the
	// stream's bitrate (CompressThreshold).
	Codec string
	// Quality is the transform-codec quality index; the paper runs at
	// maximum to limit multi-generation loss (§2.2). Zero selects the
	// default (maximum); pass QualityZero for an explicit lowest
	// quality.
	Quality int
	// CompressThreshold overrides DefaultCompressThreshold (bits/s).
	CompressThreshold int
	// ControlInterval overrides DefaultControlInterval.
	ControlInterval time.Duration
	// ChunkBytes overrides DefaultChunkBytes.
	ChunkBytes int
	// Lead overrides DefaultLead.
	Lead time.Duration
	// Preroll lets the producer run this far ahead of real time: at
	// stream start it bursts a Preroll's worth of audio so speaker
	// buffers fill, then settles to the paced rate. Must be below Lead
	// or timestamp-synced speakers would always run late. 0 means
	// Lead/2.
	Preroll time.Duration
	// DisableRateLimit turns the §3.1 rate limiter off, reproducing the
	// wire-speed blast that overruns speaker buffers.
	DisableRateLimit bool
	// Sign, when set, authenticates every outgoing packet (§5.1).
	Sign func(pkt []byte) []byte
}

func (c *Config) applyDefaults() {
	if c.ControlInterval <= 0 {
		c.ControlInterval = DefaultControlInterval
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = DefaultChunkBytes
	}
	if c.Lead <= 0 {
		c.Lead = DefaultLead
	}
	if c.CompressThreshold <= 0 {
		c.CompressThreshold = DefaultCompressThreshold
	}
	switch {
	case c.Quality == QualityZero:
		c.Quality = 0
	case c.Quality <= 0:
		c.Quality = codec.MaxQuality
	}
	if c.Preroll <= 0 {
		c.Preroll = c.Lead / 2
	}
	if c.Preroll > c.Lead {
		c.Preroll = c.Lead
	}
}

// Stats is the producer's cumulative accounting.
type Stats struct {
	ControlPackets int64
	DataPackets    int64
	PayloadBytes   int64 // encoded payload actually sent
	SourceBytes    int64 // raw bytes read from the VAD master
	Reconfigs      int64 // config events seen (epoch bumps)
	EncodeErrors   int64
	SendErrors     int64
}

// Rebroadcaster multicasts one channel.
type Rebroadcaster struct {
	clock vclock.Clock
	conn  lan.Conn
	cfg   Config
	start time.Time // producer clock epoch

	mu        sync.Mutex
	stats     Stats
	epoch     uint32
	params    audio.Params
	codecName string
	enc       codec.Encoder
	playhead  time.Time // stream position in producer local time
	stopped   bool
}

// New creates a rebroadcaster transmitting on cfg.Group via conn.
func New(clock vclock.Clock, conn lan.Conn, cfg Config) (*Rebroadcaster, error) {
	cfg.applyDefaults()
	if !cfg.Group.IsMulticast() {
		return nil, fmt.Errorf("rebroadcast: group %q is not multicast", cfg.Group)
	}
	return &Rebroadcaster{clock: clock, conn: conn, cfg: cfg, start: clock.Now()}, nil
}

// Stats returns a snapshot of the accounting.
func (r *Rebroadcaster) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Epoch returns the current stream generation.
func (r *Rebroadcaster) Epoch() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// producerNow returns the producer wall clock in nanoseconds (§3.2).
func (r *Rebroadcaster) producerNow() int64 { return int64(r.clock.Since(r.start)) }

// Run consumes the VAD master until it closes or Stop is called. It is
// the single-threaded collect-and-deliver loop of §2.3 plus a small
// control-cadence task.
func (r *Rebroadcaster) Run(master *vad.Master) {
	stopCtl := make(chan struct{})
	r.clock.Go("rebroadcast-control", func() {
		for {
			select {
			case <-stopCtl:
				return
			default:
			}
			r.sendControl()
			r.clock.Sleep(r.cfg.ControlInterval)
		}
	})
	defer close(stopCtl)

	for {
		blk, ok := master.ReadBlock()
		if !ok {
			r.flush()
			return
		}
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			r.flush()
			return
		}
		r.mu.Unlock()
		if blk.Config {
			r.reconfigure(blk.Params)
			continue
		}
		r.handleData(blk)
	}
}

// Stop makes Run return after the current block.
func (r *Rebroadcaster) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
}

// chooseCodec applies the §2.2 policy: compress only streams whose raw
// bitrate justifies the CPU and latency.
func (r *Rebroadcaster) chooseCodec(p audio.Params) string {
	if r.cfg.Codec != "" {
		return r.cfg.Codec
	}
	if p.BitsPerSecond() >= r.cfg.CompressThreshold &&
		p.Encoding.BytesPerSample() == 2 {
		return "ovl"
	}
	return "raw"
}

// reconfigure starts a new stream epoch for new parameters.
func (r *Rebroadcaster) reconfigure(p audio.Params) {
	name := r.chooseCodec(p)
	enc, err := codec.NewEncoder(name, p, r.cfg.Quality)
	if err != nil {
		// Fall back to raw rather than going silent.
		name = "raw"
		enc, _ = codec.NewEncoder(name, p, 0)
	}
	r.mu.Lock()
	r.epoch++
	r.params = p
	r.codecName = name
	r.enc = enc
	r.playhead = time.Time{}
	r.stats.Reconfigs++
	r.mu.Unlock()
	// Announce the new configuration immediately so speakers cut over
	// without waiting out the control interval.
	r.sendControl()
}

// sendControl multicasts one control packet (§2.3).
func (r *Rebroadcaster) sendControl() {
	r.mu.Lock()
	if r.params.Validate() != nil {
		// No configuration yet: nothing to announce.
		r.mu.Unlock()
		return
	}
	c := proto.Control{
		Channel:  r.cfg.ID,
		Epoch:    r.epoch,
		Seq:      uint64(r.stats.ControlPackets + 1),
		Producer: r.producerNow(),
		Params:   r.params,
		Codec:    r.codecName,
		Quality:  uint8(r.cfg.Quality),
		Interval: uint32(r.cfg.ControlInterval / time.Millisecond),
	}
	r.stats.ControlPackets++
	r.mu.Unlock()
	pkt, err := c.Marshal()
	if err != nil {
		return
	}
	r.send(pkt)
}

// handleData encodes, packetizes, rate-limits and transmits one VAD
// block.
func (r *Rebroadcaster) handleData(blk vad.Block) {
	r.mu.Lock()
	enc := r.enc
	params := r.params
	name := r.codecName
	epoch := r.epoch
	r.stats.SourceBytes += int64(len(blk.Data))
	r.mu.Unlock()
	if enc == nil {
		return // data before any configuration: undecodable, drop
	}

	stream, err := enc.Encode(blk.Data)
	if err != nil {
		r.mu.Lock()
		r.stats.EncodeErrors++
		r.mu.Unlock()
		return
	}
	if len(stream) == 0 {
		return // codec still buffering
	}
	chunks, err := codec.Split(name, params, stream, r.cfg.ChunkBytes)
	if err != nil {
		r.mu.Lock()
		r.stats.EncodeErrors++
		r.mu.Unlock()
		return
	}
	for _, chunk := range chunks {
		dur, err := codec.PayloadDuration(name, params, chunk)
		if err != nil {
			continue
		}
		r.transmitChunk(epoch, chunk, dur)
	}
}

// transmitChunk applies the rate limiter and sends one data packet. The
// playhead tracks where the stream is in producer time: each chunk is
// stamped to play at playhead+Lead, and the producer sleeps so it never
// runs ahead of real time (§3.1).
func (r *Rebroadcaster) transmitChunk(epoch uint32, payload []byte, dur time.Duration) {
	now := r.clock.Now()
	r.mu.Lock()
	if r.playhead.IsZero() || r.playhead.Before(now.Add(-time.Second)) {
		// Stream start (or a long gap, e.g. the app paused): restart the
		// playhead at real time.
		r.playhead = now
	}
	playAt := int64(r.playhead.Sub(r.start)) + int64(r.cfg.Lead)
	// The stream may run Preroll ahead of real time (initial burst to
	// fill speaker buffers); beyond that the limiter sleeps (§3.1).
	sleepFor := r.playhead.Sub(now) - r.cfg.Preroll
	r.playhead = r.playhead.Add(dur)
	seq := r.stats.DataPackets + 1
	r.stats.DataPackets++
	r.stats.PayloadBytes += int64(len(payload))
	r.mu.Unlock()

	if !r.cfg.DisableRateLimit && sleepFor > 0 {
		r.clock.Sleep(sleepFor)
	}
	d := proto.Data{
		Channel: r.cfg.ID,
		Epoch:   epoch,
		Seq:     uint64(seq),
		PlayAt:  playAt,
		Payload: payload,
	}
	pkt, err := d.Marshal()
	if err != nil {
		return
	}
	r.send(pkt)
}

// flush drains the encoder tail at end of stream.
func (r *Rebroadcaster) flush() {
	r.mu.Lock()
	enc := r.enc
	params := r.params
	name := r.codecName
	epoch := r.epoch
	r.mu.Unlock()
	if enc == nil {
		return
	}
	tail, err := enc.Flush()
	if err != nil || len(tail) == 0 {
		return
	}
	chunks, err := codec.Split(name, params, tail, r.cfg.ChunkBytes)
	if err != nil {
		return
	}
	for _, chunk := range chunks {
		dur, err := codec.PayloadDuration(name, params, chunk)
		if err != nil {
			continue
		}
		r.transmitChunk(epoch, chunk, dur)
	}
}

// send signs (if configured) and transmits a marshalled packet.
func (r *Rebroadcaster) send(pkt []byte) {
	if r.cfg.Sign != nil {
		pkt = r.cfg.Sign(pkt)
	}
	if err := r.conn.Send(r.cfg.Group, pkt); err != nil {
		r.mu.Lock()
		r.stats.SendErrors++
		r.mu.Unlock()
	}
}
