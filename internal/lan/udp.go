package lan

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// UDPNetwork is the real-network backend: endpoints are UDP sockets and
// multicast groups are real IGMP joins via net.ListenMulticastUDP. It
// lets the daemons in cmd/ run on an actual Ethernet segment with the
// same code paths the simulation exercises.
type UDPNetwork struct {
	// Interface optionally pins multicast joins to a specific interface.
	Interface *net.Interface
}

var _ Network = (*UDPNetwork)(nil)

// Attach implements Network. local's host selects the bind address
// ("0.0.0.0:5004" binds all interfaces).
func (n *UDPNetwork) Attach(local Addr) (Conn, error) {
	laddr, err := net.ResolveUDPAddr("udp4", string(local))
	if err != nil {
		return nil, fmt.Errorf("lan: resolving %q: %w", local, err)
	}
	sock, err := net.ListenUDP("udp4", laddr)
	if err != nil {
		return nil, fmt.Errorf("lan: binding %q: %w", local, err)
	}
	return &udpConn{
		net:   n,
		local: Addr(sock.LocalAddr().String()),
		sock:  sock,
		joins: make(map[Addr]*net.UDPConn),
		done:  make(chan struct{}),
	}, nil
}

type udpConn struct {
	net   *UDPNetwork
	local Addr
	sock  *net.UDPConn

	// gso, when set, lets the Linux WriteBatch backend coalesce
	// same-destination runs into UDP_SEGMENT sends; it clears itself
	// permanently when the kernel refuses the option (see SetGSO).
	gso atomic.Bool
	// Batched-receive accounting (recvmmsg passes; Linux only).
	recvBatches atomic.Int64
	recvPackets atomic.Int64

	mu     sync.Mutex
	joins  map[Addr]*net.UDPConn
	closed bool
	done   chan struct{} // closed by Close; unblocks Recv
	// fan-in of unicast + group sockets
	inbox   chan Packet
	started bool
}

func (c *udpConn) LocalAddr() Addr { return c.local }

// startLocked lazily spins up reader goroutines on first Recv/Join.
func (c *udpConn) startLocked() {
	if c.started {
		return
	}
	c.started = true
	c.inbox = make(chan Packet, 256)
	go c.readLoop(c.sock, c.local)
}

func (c *udpConn) readLoop(sock *net.UDPConn, to Addr) {
	if c.readLoopBatched(sock, to) {
		return // the recvmmsg loop ran to socket close
	}
	buf := make([]byte, 64*1024)
	for {
		n, from, err := sock.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pkt := Packet{
			From: Addr(from.String()),
			To:   to,
			Data: append([]byte(nil), buf[:n]...),
			Recv: time.Now(),
		}
		if !c.deliver(pkt) {
			return
		}
	}
}

// deliver hands one received packet to the inbox, tail-dropping on
// overflow like a socket buffer; it reports false once the conn is
// closed and the read loop should exit.
func (c *udpConn) deliver(pkt Packet) bool {
	c.mu.Lock()
	closed := c.closed
	inbox := c.inbox
	c.mu.Unlock()
	if closed {
		return false
	}
	select {
	case inbox <- pkt:
	default: // queue overflow: tail-drop, like a socket buffer
	}
	return true
}

// RecvBatchStats implements RecvBatcher: the conn's recvmmsg activity
// (always zero on platforms without the batched receive path).
func (c *udpConn) RecvBatchStats() RecvBatchStats {
	return RecvBatchStats{
		Batches: c.recvBatches.Load(),
		Packets: c.recvPackets.Load(),
	}
}

func (c *udpConn) Send(to Addr, data []byte) error {
	if len(data) > MaxDatagram {
		return fmt.Errorf("lan: datagram of %d bytes exceeds limit %d", len(data), MaxDatagram)
	}
	raddr, err := net.ResolveUDPAddr("udp4", string(to))
	if err != nil {
		return fmt.Errorf("lan: resolving %q: %w", to, err)
	}
	_, err = c.sock.WriteToUDP(data, raddr)
	return err
}

func (c *udpConn) Recv(timeout time.Duration) (Packet, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Packet{}, ErrClosed
	}
	c.startLocked()
	inbox := c.inbox
	c.mu.Unlock()

	if timeout <= 0 {
		select {
		case pkt := <-inbox:
			return pkt, nil
		case <-c.done:
			return Packet{}, ErrClosed
		}
	}
	select {
	case pkt := <-inbox:
		return pkt, nil
	case <-c.done:
		return Packet{}, ErrClosed
	case <-time.After(timeout):
		return Packet{}, ErrTimeout
	}
}

func (c *udpConn) Join(group Addr) error {
	if !group.IsMulticast() {
		return fmt.Errorf("lan: %q is not a multicast group", group)
	}
	gaddr, err := net.ResolveUDPAddr("udp4", string(group))
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, dup := c.joins[group]; dup {
		return nil
	}
	sock, err := net.ListenMulticastUDP("udp4", c.net.Interface, gaddr)
	if err != nil {
		return fmt.Errorf("lan: joining %q: %w", group, err)
	}
	c.startLocked()
	c.joins[group] = sock
	go c.readLoop(sock, group)
	return nil
}

func (c *udpConn) Leave(group Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sock, ok := c.joins[group]; ok {
		sock.Close()
		delete(c.joins, group)
	}
	return nil
}

func (c *udpConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	joins := c.joins
	c.joins = map[Addr]*net.UDPConn{}
	c.mu.Unlock()

	close(c.done)
	c.sock.Close()
	for _, s := range joins {
		s.Close()
	}
	return nil
}
