package lan

import (
	"testing"
	"time"

	"repro/internal/vclock"
)

func newSeg(t *testing.T, cfg SegmentConfig) (*vclock.Sim, *Segment) {
	t.Helper()
	sim := vclock.NewSim(time.Time{})
	return sim, NewSegment(sim, cfg)
}

func TestAddrParsing(t *testing.T) {
	a := Addr("10.0.0.7:5004")
	if a.Host() != "10.0.0.7" || a.Port() != 5004 {
		t.Fatalf("host=%q port=%d", a.Host(), a.Port())
	}
	if a.IsMulticast() {
		t.Fatal("unicast reported multicast")
	}
	g := Addr("239.72.1.1:5004")
	if !g.IsMulticast() {
		t.Fatal("group not recognized")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Addr{"nonsense", "10.0.0.1", "10.0.0.1:0", "10.0.0.1:99999", ":5004"} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%q validated", bad)
		}
	}
}

func TestSegmentUnicast(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{Latency: 100 * time.Microsecond})
	a, err := seg.Attach("10.0.0.1:5000")
	if err != nil {
		t.Fatal(err)
	}
	b, err := seg.Attach("10.0.0.2:5000")
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	sim.Go("recv", func() {
		got, _ = b.Recv(0)
	})
	sim.Go("send", func() {
		if err := a.Send("10.0.0.2:5000", []byte("hello")); err != nil {
			t.Error(err)
		}
	})
	sim.WaitIdle()
	if string(got.Data) != "hello" || got.From != "10.0.0.1:5000" {
		t.Fatalf("got %+v", got)
	}
	if got.Recv.Sub(got.Sent) < 100*time.Microsecond {
		t.Fatalf("latency not applied: %v", got.Recv.Sub(got.Sent))
	}
}

func TestSegmentMulticastFanout(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{})
	src, _ := seg.Attach("10.0.0.1:5000")
	group := Addr("239.72.1.1:5004")
	const n = 5
	got := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		c, err := seg.Attach(Addr("10.0.0." + string(rune('2'+i)) + ":5004"))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Join(group); err != nil {
			t.Fatal(err)
		}
		sim.Go("recv", func() {
			for {
				p, err := c.Recv(time.Second)
				if err != nil {
					return
				}
				got[i] += len(p.Data)
			}
		})
	}
	sim.Go("send", func() {
		for j := 0; j < 10; j++ {
			src.Send(group, make([]byte, 100))
			sim.Sleep(time.Millisecond)
		}
	})
	sim.WaitIdle()
	for i, g := range got {
		if g != 1000 {
			t.Fatalf("receiver %d got %d bytes, want 1000", i, g)
		}
	}
	st := seg.Stats()
	if st.Deliveries != 50 {
		t.Fatalf("deliveries = %d, want 50", st.Deliveries)
	}
}

func TestSegmentMulticastRequiresJoin(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{})
	src, _ := seg.Attach("10.0.0.1:5000")
	c, _ := seg.Attach("10.0.0.2:5004")
	// Not joined: packet must not arrive.
	var got bool
	sim.Go("recv", func() {
		_, err := c.Recv(10 * time.Millisecond)
		got = err == nil
	})
	sim.Go("send", func() {
		src.Send("239.72.1.1:5004", []byte("x"))
	})
	sim.WaitIdle()
	if got {
		t.Fatal("received multicast without joining")
	}
	if seg.Stats().DroppedNoRoute != 1 {
		t.Fatalf("no-route drops = %d", seg.Stats().DroppedNoRoute)
	}
}

func TestSegmentLeave(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{})
	src, _ := seg.Attach("10.0.0.1:5000")
	c, _ := seg.Attach("10.0.0.2:5004")
	g := Addr("239.72.1.1:5004")
	c.Join(g)
	c.Leave(g)
	var got bool
	sim.Go("recv", func() {
		_, err := c.Recv(10 * time.Millisecond)
		got = err == nil
	})
	sim.Go("send", func() { src.Send(g, []byte("x")) })
	sim.WaitIdle()
	if got {
		t.Fatal("received after leaving group")
	}
}

func TestSegmentNoSelfLoopback(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{})
	a, _ := seg.Attach("10.0.0.1:5004")
	g := Addr("239.72.1.1:5004")
	a.Join(g)
	var got bool
	sim.Go("a", func() {
		a.Send(g, []byte("x"))
		_, err := a.Recv(10 * time.Millisecond)
		got = err == nil
	})
	sim.WaitIdle()
	if got {
		t.Fatal("sender received its own multicast")
	}
}

func TestSegmentLoss(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{Loss: 0.3, Seed: 99})
	src, _ := seg.Attach("10.0.0.1:5000")
	c, _ := seg.Attach("10.0.0.2:5004")
	g := Addr("239.72.1.1:5004")
	c.Join(g)
	received := 0
	sim.Go("recv", func() {
		for {
			if _, err := c.Recv(50 * time.Millisecond); err != nil {
				return
			}
			received++
		}
	})
	const sent = 1000
	sim.Go("send", func() {
		for i := 0; i < sent; i++ {
			src.Send(g, []byte("payload"))
			sim.Sleep(time.Millisecond)
		}
	})
	sim.WaitIdle()
	// Expect ~700 +- generous tolerance.
	if received < 600 || received > 800 {
		t.Fatalf("received %d of %d at 30%% loss", received, sent)
	}
	st := seg.Stats()
	if st.DroppedLoss != int64(sent-received) {
		t.Fatalf("loss accounting: dropped=%d received=%d", st.DroppedLoss, received)
	}
}

func TestSegmentLossDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) int64 {
		sim, seg := newSeg(t, SegmentConfig{Loss: 0.2, Seed: seed})
		src, _ := seg.Attach("10.0.0.1:5000")
		c, _ := seg.Attach("10.0.0.2:5004")
		c.Join("239.1.1.1:5004")
		sim.Go("recv", func() {
			for {
				if _, err := c.Recv(50 * time.Millisecond); err != nil {
					return
				}
			}
		})
		sim.Go("send", func() {
			for i := 0; i < 200; i++ {
				src.Send("239.1.1.1:5004", []byte("x"))
				sim.Sleep(time.Millisecond)
			}
		})
		sim.WaitIdle()
		return seg.Stats().DroppedLoss
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different loss patterns")
	}
}

func TestSegmentBandwidthSerialization(t *testing.T) {
	// At 10 Mbps, 1000 packets of 1250B (10 kbit each incl. overhead
	// ~10.4kbit) take about a second to serialize; deliveries must be
	// spread out, not instantaneous.
	sim, seg := newSeg(t, SegmentConfig{BandwidthBps: 10_000_000, MaxBacklog: time.Hour})
	src, _ := seg.Attach("10.0.0.1:5000")
	c, _ := seg.Attach("10.0.0.2:5004")
	g := Addr("239.72.1.1:5004")
	c.Join(g)
	var first, last time.Time
	n := 0
	sim.Go("recv", func() {
		for {
			p, err := c.Recv(5 * time.Second)
			if err != nil {
				return
			}
			if n == 0 {
				first = p.Recv
			}
			last = p.Recv
			n++
		}
	})
	sim.Go("send", func() {
		for i := 0; i < 1000; i++ {
			src.Send(g, make([]byte, 1250))
		}
	})
	sim.WaitIdle()
	if n != 1000 {
		t.Fatalf("received %d", n)
	}
	span := last.Sub(first)
	// (1250+46)*8*999/10e6 ≈ 1.036s
	if span < 900*time.Millisecond || span > 1200*time.Millisecond {
		t.Fatalf("serialization span = %v, want ~1.04s", span)
	}
}

func TestSegmentSaturationDrops(t *testing.T) {
	// Offering far more than the medium can carry trips the backlog
	// bound and drops packets.
	sim, seg := newSeg(t, SegmentConfig{BandwidthBps: 1_000_000, MaxBacklog: 10 * time.Millisecond})
	src, _ := seg.Attach("10.0.0.1:5000")
	c, _ := seg.Attach("10.0.0.2:5004")
	c.Join("239.1.1.1:5004")
	sim.Go("recv", func() {
		for {
			if _, err := c.Recv(100 * time.Millisecond); err != nil {
				return
			}
		}
	})
	sim.Go("send", func() {
		for i := 0; i < 200; i++ {
			src.Send("239.1.1.1:5004", make([]byte, 1400))
		}
	})
	sim.WaitIdle()
	st := seg.Stats()
	if st.DroppedBusy == 0 {
		t.Fatal("no saturation drops at 20x overload")
	}
	if st.PacketsTx+st.DroppedBusy != 200 {
		t.Fatalf("tx=%d + busy=%d != 200", st.PacketsTx, st.DroppedBusy)
	}
}

func TestSegmentQueueOverflow(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{QueueLen: 4})
	src, _ := seg.Attach("10.0.0.1:5000")
	c, _ := seg.Attach("10.0.0.2:5004")
	c.Join("239.1.1.1:5004")
	// Nobody reads; queue holds 4, the rest drop.
	sim.Go("send", func() {
		for i := 0; i < 10; i++ {
			src.Send("239.1.1.1:5004", []byte("x"))
			sim.Sleep(time.Millisecond)
		}
	})
	sim.WaitIdle()
	st := seg.Stats()
	if st.DroppedQueue != 6 {
		t.Fatalf("queue drops = %d, want 6", st.DroppedQueue)
	}
}

func TestSegmentJitterSpreadsArrival(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{Latency: time.Millisecond, Jitter: 10 * time.Millisecond, Seed: 3})
	src, _ := seg.Attach("10.0.0.1:5000")
	c, _ := seg.Attach("10.0.0.2:5004")
	c.Join("239.1.1.1:5004")
	var delays []time.Duration
	sim.Go("recv", func() {
		for {
			p, err := c.Recv(time.Second)
			if err != nil {
				return
			}
			delays = append(delays, p.Recv.Sub(p.Sent))
		}
	})
	sim.Go("send", func() {
		for i := 0; i < 100; i++ {
			src.Send("239.1.1.1:5004", []byte("x"))
			sim.Sleep(20 * time.Millisecond)
		}
	})
	sim.WaitIdle()
	if len(delays) != 100 {
		t.Fatalf("got %d", len(delays))
	}
	min, max := delays[0], delays[0]
	for _, d := range delays {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min < time.Millisecond {
		t.Fatalf("min delay %v below latency", min)
	}
	if max-min < 5*time.Millisecond {
		t.Fatalf("jitter spread only %v", max-min)
	}
	if max > 11*time.Millisecond {
		t.Fatalf("max delay %v exceeds latency+jitter", max)
	}
}

func TestSegmentRejects(t *testing.T) {
	_, seg := newSeg(t, SegmentConfig{})
	if _, err := seg.Attach("239.1.1.1:5000"); err == nil {
		t.Fatal("attached to multicast address")
	}
	if _, err := seg.Attach("garbage"); err == nil {
		t.Fatal("attached to garbage address")
	}
	a, _ := seg.Attach("10.0.0.1:5000")
	if _, err := seg.Attach("10.0.0.1:5000"); err == nil {
		t.Fatal("duplicate attach allowed")
	}
	if err := a.Join("10.0.0.2:5000"); err == nil {
		t.Fatal("joined a unicast address")
	}
	if err := a.Send("10.0.0.2:5000", make([]byte, MaxDatagram+1)); err == nil {
		t.Fatal("oversized datagram accepted")
	}
}

func TestSegmentCloseUnblocksRecv(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{})
	c, _ := seg.Attach("10.0.0.1:5000")
	var err error
	sim.Go("recv", func() {
		_, err = c.Recv(0)
	})
	sim.Go("closer", func() {
		sim.Sleep(time.Millisecond)
		c.Close()
	})
	sim.WaitIdle()
	if err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := c.Send("10.0.0.2:5000", []byte("x")); err != ErrClosed {
		t.Fatalf("send on closed = %v", err)
	}
	if err := c.Close(); err != ErrClosed {
		t.Fatalf("double close = %v", err)
	}
}

func TestSegmentRecvTimeout(t *testing.T) {
	sim, seg := newSeg(t, SegmentConfig{})
	c, _ := seg.Attach("10.0.0.1:5000")
	start := sim.Now()
	var err error
	var at time.Duration
	sim.Go("recv", func() {
		_, err = c.Recv(25 * time.Millisecond)
		at = sim.Since(start)
	})
	sim.WaitIdle()
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if at != 25*time.Millisecond {
		t.Fatalf("timed out at %v", at)
	}
}
