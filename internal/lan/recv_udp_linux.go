//go:build linux && (amd64 || arm64)

package lan

import (
	"fmt"
	"net"
	"syscall"
	"time"
	"unsafe"
)

// recvmmsg(2) batching for the UDP backend's receive side: one
// syscall drains a whole burst of datagrams from the socket, so a
// chained relay ingests at the same batch discipline it emits with
// sendmmsg (ROADMAP item 2a). recvBatch bounds one gather pass; the
// loop is level-triggered via the runtime poller (MSG_DONTWAIT plus
// re-arm on EAGAIN), so a lone packet is still delivered immediately.
const recvBatch = 16

// readLoopBatched runs the recvmmsg receive loop for sock until the
// socket closes. It reports false — telling the caller to run the
// portable per-packet loop instead — only when the batched path
// cannot start at all (no raw access, or a kernel without the
// syscall).
func (c *udpConn) readLoopBatched(sock *net.UDPConn, to Addr) bool {
	rc, err := sock.SyscallConn()
	if err != nil {
		return false
	}
	hdrs := make([]mmsghdr, recvBatch)
	iovs := make([]syscall.Iovec, recvBatch)
	sas := make([]syscall.RawSockaddrInet4, recvBatch)
	bufs := make([][]byte, recvBatch)
	for i := range bufs {
		bufs[i] = make([]byte, 2048) // > MaxDatagram, without 64 KiB per slot
	}
	probed := false
	for {
		// Re-arm every header: the kernel overwrote Namelen and Len on
		// the previous pass.
		for i := range hdrs {
			iovs[i].Base = &bufs[i][0]
			iovs[i].SetLen(len(bufs[i]))
			hdrs[i].Hdr = syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&sas[i])),
				Namelen: syscall.SizeofSockaddrInet4,
				Iov:     &iovs[i],
				Iovlen:  1,
			}
			hdrs[i].Len = 0
		}
		var n uintptr
		var errno syscall.Errno
		rerr := rc.Read(func(fd uintptr) bool {
			n, _, errno = syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), recvBatch,
				syscall.MSG_DONTWAIT, 0, 0)
			// false re-arms the read poller and retries when readable.
			return errno != syscall.EAGAIN
		})
		if rerr != nil {
			return true // socket closed (or unusable): loop is done
		}
		if errno != 0 {
			if !probed && (errno == syscall.ENOSYS || errno == syscall.EINVAL) {
				return false // kernel without recvmmsg: portable loop
			}
			return true
		}
		probed = true
		if n == 0 {
			continue
		}
		now := time.Now()
		c.recvBatches.Add(1)
		c.recvPackets.Add(int64(n))
		for i := 0; i < int(n); i++ {
			ln := int(hdrs[i].Len)
			if ln > len(bufs[i]) {
				ln = len(bufs[i]) // truncated oversize datagram
			}
			pkt := Packet{
				From: sockaddrToAddr(&sas[i]),
				To:   to,
				Data: append([]byte(nil), bufs[i][:ln]...),
				Recv: now,
			}
			if !c.deliver(pkt) {
				return true
			}
		}
	}
}

// sockaddrToAddr renders a raw IPv4 sockaddr as the "ip:port" form the
// rest of the package uses.
func sockaddrToAddr(sa *syscall.RawSockaddrInet4) Addr {
	port := int(sa.Port&0xff)<<8 | int(sa.Port>>8) // sin_port is network order
	return Addr(fmt.Sprintf("%d.%d.%d.%d:%d", sa.Addr[0], sa.Addr[1], sa.Addr[2], sa.Addr[3], port))
}
