package lan

import "testing"

func TestAddrHostPort(t *testing.T) {
	cases := []struct {
		in   Addr
		host string
		port int
	}{
		{"10.0.0.7:5004", "10.0.0.7", 5004},
		{"239.72.1.1:5004", "239.72.1.1", 5004},
		{"10.0.0.7", "10.0.0.7", 0},
		{"[ff02::1]:5004", "ff02::1", 5004},
		{"[2001:db8::7]:80", "2001:db8::7", 80},
		{"[ff02::1]", "ff02::1", 0},
		{"ff02::1", "ff02::1", 0},
		{"2001:db8::7", "2001:db8::7", 0},
		{"10.0.0.7:notaport", "10.0.0.7", 0},
		{"", "", 0},
	}
	for _, c := range cases {
		if got := c.in.Host(); got != c.host {
			t.Errorf("Addr(%q).Host() = %q, want %q", c.in, got, c.host)
		}
		if got := c.in.Port(); got != c.port {
			t.Errorf("Addr(%q).Port() = %d, want %d", c.in, got, c.port)
		}
	}
}

func TestAddrIsMulticast(t *testing.T) {
	cases := []struct {
		in   Addr
		want bool
	}{
		{"239.72.1.1:5004", true},
		{"224.0.0.1:5004", true},
		{"10.0.0.7:5004", false},
		{"223.255.255.255:1", false},
		{"[ff02::1]:5004", true},
		{"[ff0e::42]:5004", true},
		{"[2001:db8::7]:5004", false},
		{"ff02::1", true},
		{"notanip:5004", false},
		{"", false},
	}
	for _, c := range cases {
		if got := c.in.IsMulticast(); got != c.want {
			t.Errorf("Addr(%q).IsMulticast() = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrValidateIPv6(t *testing.T) {
	if err := Addr("[ff02::1]:5004").Validate(); err != nil {
		t.Errorf("bracketed IPv6 group rejected: %v", err)
	}
	if err := Addr("[2001:db8::7]:5004").Validate(); err != nil {
		t.Errorf("bracketed IPv6 host rejected: %v", err)
	}
	if err := Addr("[ff02::1]").Validate(); err == nil {
		t.Error("missing port accepted")
	}
}
