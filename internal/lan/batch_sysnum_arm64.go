//go:build linux

package lan

// sysSendmmsg / sysRecvmmsg are the sendmmsg(2) / recvmmsg(2) syscall
// numbers (not exported by the trimmed std syscall tables).
const (
	sysSendmmsg uintptr = 269
	sysRecvmmsg uintptr = 243
)
