package lan

import "sync"

// Datagram is one entry in a batched send: a payload and where it goes.
// Batches may reference the same underlying Data slice many times (a
// relay fanning one packet out to N subscribers); implementations must
// not mutate it.
type Datagram struct {
	To   Addr
	Data []byte
}

// BatchWriter is the optional bulk-send fast path a Conn may implement.
// WriteBatch transmits the datagrams in order, stopping at the first
// hard error; it returns how many were handed to the substrate. A
// sendmmsg-style backend turns the whole batch into one syscall; the
// simulated segment takes its lock once for the batch.
//
// Ordering guarantee: datagrams to the same destination leave in slice
// order, exactly as if sent one by one.
type BatchWriter interface {
	WriteBatch(batch []Datagram) (int, error)
}

// WriteBatch sends a batch through c, using its BatchWriter fast path
// when it has one and falling back to a per-datagram Send loop
// otherwise. Like BatchWriter.WriteBatch it stops at the first error
// and returns the number of datagrams sent.
func WriteBatch(c Conn, batch []Datagram) (int, error) {
	if bw, ok := c.(BatchWriter); ok {
		return bw.WriteBatch(batch)
	}
	return sendLoop(c, batch)
}

// sendLoop is the portable fallback: one Send per datagram.
func sendLoop(c Conn, batch []Datagram) (int, error) {
	for i, d := range batch {
		if err := c.Send(d.To, d.Data); err != nil {
			return i, err
		}
	}
	return len(batch), nil
}

// batchPool recycles Datagram slices so steady-state batching does not
// allocate. Slices come back with length 0 and whatever capacity they
// grew to.
var batchPool = sync.Pool{
	New: func() any { return make([]Datagram, 0, 64) },
}

// GetBatch returns an empty Datagram slice from the reuse pool.
func GetBatch() []Datagram { return batchPool.Get().([]Datagram)[:0] }

// PutBatch returns a slice to the pool, dropping payload references so
// the pool does not pin packet buffers alive.
func PutBatch(b []Datagram) {
	for i := range b {
		b[i] = Datagram{}
	}
	batchPool.Put(b[:0]) //nolint:staticcheck // slice header, no alloc
}
