package lan

// UDP GSO (UDP_SEGMENT) and recvmmsg support seams. Both are
// Linux-only fast paths behind portable interfaces: a backend that
// has them advertises via the interfaces below, every other Conn —
// the simulated segment included — simply doesn't implement them and
// callers fall back.

// GSOCapable is implemented by conns whose BatchWriter fast path can
// coalesce same-destination runs of a batch into single UDP_SEGMENT
// sends — the kernel splits one send into many datagrams, so a relay
// fanning one payload to many subscribers pays even fewer crossings
// than sendmmsg alone. SetGSO turns the mode on or off and reports
// whether the backend supports it at all; support is optimistic (the
// kernel is probed by the first coalesced send, which falls back to
// plain batching — permanently — if it refuses).
type GSOCapable interface {
	SetGSO(on bool) bool
}

// EnableGSO turns on GSO batching for c when its backend supports it
// and reports whether it did. Safe to call on any Conn.
func EnableGSO(c Conn) bool {
	if g, ok := c.(GSOCapable); ok {
		return g.SetGSO(true)
	}
	return false
}

// RecvBatchStats counts a conn's batched-receive activity: how many
// recvmmsg gather passes ran and how many packets they carried.
// Packets/Batches is the achieved receive batch size.
type RecvBatchStats struct {
	Batches int64 // batched receive passes
	Packets int64 // packets delivered by those passes
}

// RecvBatcher is implemented by conns that ingest with batched
// receives (recvmmsg); the simulated segment and non-Linux backends
// do not, and report nothing.
type RecvBatcher interface {
	RecvBatchStats() RecvBatchStats
}
