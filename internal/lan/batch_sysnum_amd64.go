//go:build linux

package lan

// sysSendmmsg is the sendmmsg(2) syscall number (not exported by the
// trimmed std syscall tables).
const sysSendmmsg uintptr = 307
