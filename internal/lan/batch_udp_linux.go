//go:build linux && (amd64 || arm64)

package lan

import (
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"unsafe"
)

// sendmmsg(2) batching for the UDP backend: one syscall hands the
// kernel a whole batch of datagrams, amortizing the user/kernel
// crossing that dominates small-packet fan-out. Platforms without the
// syscall (or with a different Msghdr layout) simply don't get this
// method and take the portable loop fallback in WriteBatch.

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-reported
// byte count for that message.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// mmsgBuffers is the per-batch scratch (headers, iovecs, sockaddrs),
// recycled through mmsgPool so steady-state batching does not allocate.
type mmsgBuffers struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sas  []syscall.RawSockaddrInet4
}

var mmsgPool = sync.Pool{New: func() any { return new(mmsgBuffers) }}

// grow resizes the scratch arrays to hold n messages.
func (b *mmsgBuffers) grow(n int) {
	if cap(b.hdrs) < n {
		b.hdrs = make([]mmsghdr, n)
		b.iovs = make([]syscall.Iovec, n)
		b.sas = make([]syscall.RawSockaddrInet4, n)
	}
	b.hdrs = b.hdrs[:n]
	b.iovs = b.iovs[:n]
	b.sas = b.sas[:n]
}

// sockaddrInet4 fills sa from a numeric "ip:port" address.
func sockaddrInet4(a Addr, sa *syscall.RawSockaddrInet4) error {
	host, portStr, err := net.SplitHostPort(string(a))
	if err != nil {
		return fmt.Errorf("lan: resolving %q: %w", a, err)
	}
	ip := net.ParseIP(host)
	ip4 := ip.To4()
	if ip4 == nil {
		return fmt.Errorf("lan: %q is not an IPv4 address", a)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port <= 0 || port > 65535 {
		return fmt.Errorf("lan: bad port in %q", a)
	}
	sa.Family = syscall.AF_INET
	// sin_port is in network byte order.
	sa.Port = uint16(port>>8) | uint16(port&0xff)<<8
	copy(sa.Addr[:], ip4)
	return nil
}

// WriteBatch implements BatchWriter with sendmmsg. Datagrams are
// transmitted in order; a datagram that fails to validate stops the
// batch there (prefix semantics), matching the portable fallback.
func (c *udpConn) WriteBatch(batch []Datagram) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	bufs := mmsgPool.Get().(*mmsgBuffers)
	defer mmsgPool.Put(bufs)
	bufs.grow(len(batch))
	// Prepare headers for the longest valid prefix; a datagram that
	// fails validation ends the batch there (prefix semantics, matching
	// the portable fallback).
	n := 0
	var verr error
	for i, d := range batch {
		if len(d.Data) > MaxDatagram {
			verr = fmt.Errorf("lan: datagram of %d bytes exceeds limit %d", len(d.Data), MaxDatagram)
			break
		}
		if verr = sockaddrInet4(d.To, &bufs.sas[i]); verr != nil {
			break
		}
		iov := &bufs.iovs[i]
		if len(d.Data) > 0 {
			iov.Base = &d.Data[0]
		} else {
			iov.Base = nil
		}
		iov.SetLen(len(d.Data))
		bufs.hdrs[i].Hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&bufs.sas[i])),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     iov,
			Iovlen:  1,
		}
		n++
	}
	sent, err := c.writeMsgs(bufs.hdrs[:n])
	runtime.KeepAlive(batch)
	if err == nil {
		err = verr
	}
	return sent, err
}

// writeMsgs pushes the prepared headers through sendmmsg, retrying on
// partial sends and waiting out EAGAIN via the runtime poller.
func (c *udpConn) writeMsgs(hdrs []mmsghdr) (int, error) {
	if len(hdrs) == 0 {
		return 0, nil
	}
	rc, err := c.sock.SyscallConn()
	if err != nil {
		return 0, err
	}
	sent := 0
	for sent < len(hdrs) {
		var n uintptr
		var errno syscall.Errno
		werr := rc.Write(func(fd uintptr) bool {
			n, _, errno = syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(len(hdrs)-sent),
				syscall.MSG_NOSIGNAL, 0, 0)
			// false re-arms the write poller and retries when ready.
			return errno != syscall.EAGAIN
		})
		if werr != nil {
			return sent, werr
		}
		if errno != 0 {
			return sent, errno
		}
		sent += int(n)
	}
	return sent, nil
}
