//go:build linux && (amd64 || arm64)

package lan

import (
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"unsafe"
)

// sendmmsg(2) batching for the UDP backend: one syscall hands the
// kernel a whole batch of datagrams, amortizing the user/kernel
// crossing that dominates small-packet fan-out. Platforms without the
// syscall (or with a different Msghdr layout) simply don't get this
// method and take the portable loop fallback in WriteBatch.

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-reported
// byte count for that message.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// mmsgBuffers is the per-batch scratch (headers, iovecs, sockaddrs),
// recycled through mmsgPool so steady-state batching does not allocate.
type mmsgBuffers struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sas  []syscall.RawSockaddrInet4
}

var mmsgPool = sync.Pool{New: func() any { return new(mmsgBuffers) }}

// grow resizes the scratch arrays to hold n messages.
func (b *mmsgBuffers) grow(n int) {
	if cap(b.hdrs) < n {
		b.hdrs = make([]mmsghdr, n)
		b.iovs = make([]syscall.Iovec, n)
		b.sas = make([]syscall.RawSockaddrInet4, n)
	}
	b.hdrs = b.hdrs[:n]
	b.iovs = b.iovs[:n]
	b.sas = b.sas[:n]
}

// sockaddrInet4 fills sa from a numeric "ip:port" address.
func sockaddrInet4(a Addr, sa *syscall.RawSockaddrInet4) error {
	host, portStr, err := net.SplitHostPort(string(a))
	if err != nil {
		return fmt.Errorf("lan: resolving %q: %w", a, err)
	}
	ip := net.ParseIP(host)
	ip4 := ip.To4()
	if ip4 == nil {
		return fmt.Errorf("lan: %q is not an IPv4 address", a)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port <= 0 || port > 65535 {
		return fmt.Errorf("lan: bad port in %q", a)
	}
	sa.Family = syscall.AF_INET
	// sin_port is in network byte order.
	sa.Port = uint16(port>>8) | uint16(port&0xff)<<8
	copy(sa.Addr[:], ip4)
	return nil
}

// WriteBatch implements BatchWriter with sendmmsg. Datagrams are
// transmitted in order; a datagram that fails to validate stops the
// batch there (prefix semantics), matching the portable fallback.
// With GSO enabled (SetGSO) same-destination runs are additionally
// coalesced into UDP_SEGMENT sends; a kernel that refuses the option
// downgrades the conn to plain sendmmsg permanently.
func (c *udpConn) WriteBatch(batch []Datagram) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	if c.gso.Load() {
		n, err := c.writeBatchGSO(batch)
		if err != nil && gsoUnsupported(err) {
			// This kernel or socket cannot segment: fall back for good
			// and send the remainder of this batch the plain way.
			c.gso.Store(false)
			m, merr := c.writeBatchPlain(batch[n:])
			return n + m, merr
		}
		return n, err
	}
	return c.writeBatchPlain(batch)
}

// SetGSO implements GSOCapable. Support is optimistic: the first
// coalesced send probes the kernel, and a refusal downgrades the conn
// back to plain sendmmsg permanently.
func (c *udpConn) SetGSO(on bool) bool {
	c.gso.Store(on)
	return true
}

// writeBatchPlain is the one-datagram-per-message sendmmsg path.
func (c *udpConn) writeBatchPlain(batch []Datagram) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	bufs := mmsgPool.Get().(*mmsgBuffers)
	defer mmsgPool.Put(bufs)
	bufs.grow(len(batch))
	// Prepare headers for the longest valid prefix; a datagram that
	// fails validation ends the batch there (prefix semantics, matching
	// the portable fallback).
	n := 0
	var verr error
	for i, d := range batch {
		if len(d.Data) > MaxDatagram {
			verr = fmt.Errorf("lan: datagram of %d bytes exceeds limit %d", len(d.Data), MaxDatagram)
			break
		}
		if verr = sockaddrInet4(d.To, &bufs.sas[i]); verr != nil {
			break
		}
		iov := &bufs.iovs[i]
		if len(d.Data) > 0 {
			iov.Base = &d.Data[0]
		} else {
			iov.Base = nil
		}
		iov.SetLen(len(d.Data))
		bufs.hdrs[i].Hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&bufs.sas[i])),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     iov,
			Iovlen:  1,
		}
		n++
	}
	sent, err := c.writeMsgs(bufs.hdrs[:n])
	runtime.KeepAlive(batch)
	if err == nil {
		err = verr
	}
	return sent, err
}

// UDP GSO constants (not in the trimmed std syscall tables).
const (
	solUDP     = 17  // SOL_UDP
	udpSegment = 103 // UDP_SEGMENT cmsg type
	// gsoMaxSegs bounds how many datagrams one UDP_SEGMENT message may
	// carry (the kernel's UDP_MAX_SEGMENTS).
	gsoMaxSegs = 64
	// gsoMaxBytes bounds a run's unsegmented payload: the kernel
	// segments one logical UDP send, which must itself fit the maximum
	// UDP payload (65,535 minus the UDP and IP headers).
	gsoMaxBytes = 65507
)

// segCmsg is one UDP_SEGMENT control message: a cmsghdr followed by
// the u16 segment size, padded out to CmsgSpace(2) bytes.
type segCmsg struct {
	hdr syscall.Cmsghdr
	seg uint16
	_   [6]byte
}

// gsoBuffers is the scratch for a GSO-coalesced batch. Unlike the
// plain path it needs one iovec per *datagram* but one header,
// sockaddr, and cmsg per *message* (run), plus the run lengths to map
// messages-sent back to datagrams-sent.
type gsoBuffers struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	sas   []syscall.RawSockaddrInet4
	cmsgs []segCmsg
	runs  []int
}

var gsoPool = sync.Pool{New: func() any { return new(gsoBuffers) }}

func (b *gsoBuffers) grow(n int) {
	if cap(b.hdrs) < n {
		b.hdrs = make([]mmsghdr, n)
		b.iovs = make([]syscall.Iovec, n)
		b.sas = make([]syscall.RawSockaddrInet4, n)
		b.cmsgs = make([]segCmsg, n)
		b.runs = make([]int, n)
	}
	b.hdrs = b.hdrs[:n]
	b.iovs = b.iovs[:n]
	b.sas = b.sas[:n]
	b.cmsgs = b.cmsgs[:n]
	b.runs = b.runs[:n]
}

// gsoUnsupported classifies a sendmmsg error as "this kernel or path
// cannot do UDP_SEGMENT" — the triggers for a permanent downgrade to
// plain batching rather than a per-datagram failure.
func gsoUnsupported(err error) bool {
	errno, ok := err.(syscall.Errno)
	return ok && (errno == syscall.EINVAL || errno == syscall.EOPNOTSUPP ||
		errno == syscall.ENOPROTOOPT || errno == syscall.EIO)
}

// writeBatchGSO sends the batch with same-destination runs coalesced:
// consecutive datagrams to one destination whose payloads share a
// size (the final segment of a run may be shorter — the GSO tail
// rule) become a single message carrying a UDP_SEGMENT cmsg, which
// the kernel splits back into individual datagrams. This is exactly
// the shape a per-profile fan-out group produces: one payload
// repeated across many subscribers sorted together.
func (c *udpConn) writeBatchGSO(batch []Datagram) (int, error) {
	bufs := gsoPool.Get().(*gsoBuffers)
	defer gsoPool.Put(bufs)
	bufs.grow(len(batch))
	var verr error
	nmsg, ndg := 0, 0
	for ndg < len(batch) {
		d := batch[ndg]
		if len(d.Data) > MaxDatagram {
			verr = fmt.Errorf("lan: datagram of %d bytes exceeds limit %d", len(d.Data), MaxDatagram)
			break
		}
		if verr = sockaddrInet4(d.To, &bufs.sas[nmsg]); verr != nil {
			break
		}
		// Extend the run: same destination, payloads of the run's
		// segment size, with one shorter tail allowed. The run's total
		// bytes stay inside one UDP datagram (the kernel segments a
		// single send, so the unsegmented payload obeys the 65,507-byte
		// ceiling — beyond it sendmsg fails with EMSGSIZE).
		seg, run, total := len(d.Data), 1, len(d.Data)
		if seg > 0 {
			for run < gsoMaxSegs && ndg+run < len(batch) {
				nd := &batch[ndg+run]
				if nd.To != d.To || len(nd.Data) == 0 || len(nd.Data) > seg ||
					total+len(nd.Data) > gsoMaxBytes {
					break
				}
				short := len(nd.Data) < seg
				total += len(nd.Data)
				run++
				if short {
					break // a shorter segment must be the run's last
				}
			}
		}
		iovs := bufs.iovs[ndg : ndg+run]
		for j := 0; j < run; j++ {
			data := batch[ndg+j].Data
			if len(data) > 0 {
				iovs[j].Base = &data[0]
			} else {
				iovs[j].Base = nil
			}
			iovs[j].SetLen(len(data))
		}
		hdr := &bufs.hdrs[nmsg]
		hdr.Hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&bufs.sas[nmsg])),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     &iovs[0],
			Iovlen:  uint64(run),
		}
		if run > 1 {
			cm := &bufs.cmsgs[nmsg]
			cm.hdr.Level = solUDP
			cm.hdr.Type = udpSegment
			cm.hdr.Len = uint64(syscall.CmsgLen(2))
			cm.seg = uint16(seg)
			hdr.Hdr.Control = (*byte)(unsafe.Pointer(cm))
			hdr.Hdr.Controllen = uint64(syscall.CmsgSpace(2))
		}
		bufs.runs[nmsg] = run
		nmsg++
		ndg += run
	}
	sentMsgs, err := c.writeMsgs(bufs.hdrs[:nmsg])
	runtime.KeepAlive(batch)
	runtime.KeepAlive(bufs)
	sent := 0
	for i := 0; i < sentMsgs; i++ {
		sent += bufs.runs[i]
	}
	if err == nil {
		err = verr
	}
	return sent, err
}

// writeMsgs pushes the prepared headers through sendmmsg, retrying on
// partial sends and waiting out EAGAIN via the runtime poller.
func (c *udpConn) writeMsgs(hdrs []mmsghdr) (int, error) {
	if len(hdrs) == 0 {
		return 0, nil
	}
	rc, err := c.sock.SyscallConn()
	if err != nil {
		return 0, err
	}
	sent := 0
	for sent < len(hdrs) {
		var n uintptr
		var errno syscall.Errno
		werr := rc.Write(func(fd uintptr) bool {
			n, _, errno = syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(len(hdrs)-sent),
				syscall.MSG_NOSIGNAL, 0, 0)
			// false re-arms the write poller and retries when ready.
			return errno != syscall.EAGAIN
		})
		if werr != nil {
			return sent, werr
		}
		if errno != 0 {
			return sent, errno
		}
		sent += int(n)
	}
	return sent, nil
}
