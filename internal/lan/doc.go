// Package lan provides the network substrate: an abstract datagram
// interface with two implementations — a simulated Ethernet segment
// (multicast, bandwidth, latency, jitter, loss) used by tests and
// experiments, and a real UDP-multicast backend for actual deployment.
//
// The paper's protocol design leans on LAN properties (§2.3): low error
// rates, ample bandwidth, well-behaved arrival, and native multicast.
// The simulated segment makes each of those properties a knob.
//
// For high-fan-out senders (the relay pushing one packet to thousands
// of unicast subscribers) the package offers a batched send path:
// WriteBatch transmits a []Datagram through a Conn's BatchWriter fast
// path when it has one — one sendmmsg(2) syscall on the UDP backend,
// one lock acquisition and one scheduler event per delivery wave on the
// simulated segment — and falls back to a portable per-datagram Send
// loop otherwise. GetBatch/PutBatch recycle batch slices so the steady
// state does not allocate. Batches have prefix semantics (datagrams
// before the first error were sent) and never reorder datagrams bound
// for the same destination.
package lan
