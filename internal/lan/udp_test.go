package lan

import (
	"testing"
	"time"
)

// UDP backend smoke tests. They exercise the real-socket path over
// loopback; environments without loopback UDP skip.

func TestUDPUnicastLoopback(t *testing.T) {
	n := &UDPNetwork{}
	a, err := n.Attach("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer a.Close()
	b, err := n.Attach("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer b.Close()

	done := make(chan Packet, 1)
	go func() {
		p, err := b.Recv(2 * time.Second)
		if err == nil {
			done <- p
		}
		close(done)
	}()
	// Give the receiver a beat to start its read loop.
	time.Sleep(20 * time.Millisecond)
	if err := a.Send(b.LocalAddr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	p, ok := <-done
	if !ok {
		t.Fatal("receive failed")
	}
	if string(p.Data) != "ping" {
		t.Fatalf("got %q", p.Data)
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	n := &UDPNetwork{}
	a, err := n.Attach("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer a.Close()
	if _, err := a.Recv(50 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestUDPCloseUnblocksRecv(t *testing.T) {
	n := &UDPNetwork{}
	a, err := n.Attach("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := a.Recv(0)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestUDPOversizedRejected(t *testing.T) {
	n := &UDPNetwork{}
	a, err := n.Attach("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer a.Close()
	if err := a.Send("127.0.0.1:9", make([]byte, MaxDatagram+1)); err == nil {
		t.Fatal("oversized datagram accepted")
	}
}

func TestUDPMulticastLoopback(t *testing.T) {
	n := &UDPNetwork{}
	recv, err := n.Attach("0.0.0.0:0")
	if err != nil {
		t.Skipf("no UDP: %v", err)
	}
	defer recv.Close()
	group := Addr("239.72.99.1:15004")
	if err := recv.Join(group); err != nil {
		t.Skipf("multicast join unavailable: %v", err)
	}
	send, err := n.Attach("0.0.0.0:0")
	if err != nil {
		t.Skip("no UDP")
	}
	defer send.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			p, err := recv.Recv(200 * time.Millisecond)
			if err != nil {
				return
			}
			if string(p.Data) == "mc-ping" {
				done <- struct{}{}
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 5; i++ {
		send.Send(group, []byte("mc-ping"))
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case _, ok := <-done:
		if !ok {
			t.Skip("multicast loopback not available in this environment")
		}
	case <-time.After(2 * time.Second):
		t.Skip("multicast loopback not available in this environment")
	}
}
