package lan

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Addr is a "host:port" or "group:port" endpoint, e.g. "10.0.0.7:5004",
// "239.72.1.1:5004", or the bracketed IPv6 form "[ff02::1]:5004".
type Addr string

// Host returns the address part before the port. IPv6 literals are
// returned without brackets.
func (a Addr) Host() string {
	s := string(a)
	if h, _, err := net.SplitHostPort(s); err == nil {
		return h
	}
	// No (parseable) port. A bracketed literal keeps its inner host; a
	// bare IPv6 literal (more than one colon) is all host; otherwise the
	// legacy behavior: strip a trailing ":port" fragment if present.
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		return s[1 : len(s)-1]
	}
	if strings.Count(s, ":") > 1 {
		return s
	}
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		return s[:i]
	}
	return s
}

// Port returns the numeric port, or 0 if absent/invalid.
func (a Addr) Port() int {
	_, ps, err := net.SplitHostPort(string(a))
	if err != nil {
		return 0
	}
	p, err := strconv.Atoi(ps)
	if err != nil {
		return 0
	}
	return p
}

// IsMulticast reports whether the host part is an IPv4 (224.0.0.0/4) or
// IPv6 (ff00::/8) multicast group.
func (a Addr) IsMulticast() bool {
	ip := net.ParseIP(a.Host())
	return ip != nil && ip.IsMulticast()
}

// Validate reports whether the address parses as host:port.
func (a Addr) Validate() error {
	if net.ParseIP(a.Host()) == nil {
		return fmt.Errorf("lan: bad host in %q", a)
	}
	if p := a.Port(); p <= 0 || p > 65535 {
		return fmt.Errorf("lan: bad port in %q", a)
	}
	return nil
}

// Packet is one received datagram.
type Packet struct {
	From Addr      // sender
	To   Addr      // destination (group for multicast)
	Data []byte    // payload (owned by the receiver)
	Sent time.Time // transmission start time (simulated segment only)
	Recv time.Time // delivery time
}

// Errors shared by Conn implementations.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("lan: connection closed")
	// ErrTimeout is returned by Recv when the timeout expires.
	ErrTimeout = errors.New("lan: receive timeout")
)

// Conn is one attachment point (a socket on a NIC).
type Conn interface {
	// LocalAddr returns this endpoint's unicast address.
	LocalAddr() Addr
	// Send transmits data to a unicast address or multicast group.
	Send(to Addr, data []byte) error
	// Recv returns the next packet addressed to this endpoint (unicast or
	// a joined group). timeout <= 0 blocks indefinitely.
	Recv(timeout time.Duration) (Packet, error)
	// Join subscribes to a multicast group.
	Join(group Addr) error
	// Leave unsubscribes from a multicast group.
	Leave(group Addr) error
	// Close releases the endpoint; blocked Recv calls return ErrClosed.
	Close() error
}

// Network creates attachment points. Both the simulated segment and the
// UDP backend implement it.
type Network interface {
	// Attach creates an endpoint bound to the given unicast address.
	Attach(local Addr) (Conn, error)
}

// MaxDatagram is the largest payload the substrate accepts; it mirrors a
// conventional UDP-over-Ethernet practical limit and keeps the audio
// protocol honest about fragmentation.
const MaxDatagram = 1472
