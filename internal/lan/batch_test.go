package lan

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/vclock"
)

// noBatch hides a Conn's BatchWriter so WriteBatch exercises the
// portable loop fallback.
type noBatch struct{ Conn }

func TestWriteBatchSegmentDeliversInOrder(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := NewSegment(sim, SegmentConfig{})
	src, err := seg.Attach("10.0.0.1:5000")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := seg.Attach("10.0.0.2:5000")
	if err != nil {
		t.Fatal(err)
	}

	// One batch carrying five sequenced datagrams to the same receiver
	// must arrive complete and in batch order.
	batch := make([]Datagram, 5)
	for i := range batch {
		batch[i] = Datagram{To: "10.0.0.2:5000", Data: []byte{byte(i)}}
	}
	var got []byte
	sim.Go("recv", func() {
		for len(got) < len(batch) {
			pkt, err := dst.Recv(time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, pkt.Data[0])
		}
	})
	sim.Go("send", func() {
		n, err := WriteBatch(src, batch)
		if err != nil || n != len(batch) {
			t.Errorf("WriteBatch = %d, %v", n, err)
		}
	})
	sim.WaitIdle()
	if string(got) != string([]byte{0, 1, 2, 3, 4}) {
		t.Fatalf("delivery order = %v", got)
	}
}

func TestWriteBatchSegmentMatchesLoopSemantics(t *testing.T) {
	// Batched and looped sends must drive the shared-medium model
	// identically: same tx counters, same deliveries.
	run := func(batched bool) SegmentStats {
		sim := vclock.NewSim(time.Time{})
		seg := NewSegment(sim, SegmentConfig{BandwidthBps: 10e6})
		src, _ := seg.Attach("10.0.0.1:5000")
		var conns []Conn
		batch := make([]Datagram, 8)
		for i := range batch {
			c, err := seg.Attach(Addr(fmt.Sprintf("10.0.0.%d:5000", i+2)))
			if err != nil {
				t.Fatal(err)
			}
			conns = append(conns, c)
			batch[i] = Datagram{To: c.LocalAddr(), Data: make([]byte, 100)}
		}
		for _, c := range conns {
			c := c
			sim.Go("drain", func() {
				for {
					if _, err := c.Recv(0); err != nil {
						return
					}
				}
			})
		}
		sim.Go("send", func() {
			var n int
			var err error
			if batched {
				n, err = WriteBatch(src, batch)
			} else {
				n, err = sendLoop(src, batch)
			}
			if err != nil || n != len(batch) {
				t.Errorf("send(batched=%v) = %d, %v", batched, n, err)
			}
			sim.Sleep(time.Second)
			for _, c := range conns {
				c.Close()
			}
		})
		sim.WaitIdle()
		return seg.Stats()
	}
	a, b := run(true), run(false)
	if a != b {
		t.Fatalf("batched stats %+v != looped stats %+v", a, b)
	}
}

func TestWriteBatchLoopFallbackStopsAtFirstError(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := NewSegment(sim, SegmentConfig{})
	src, _ := seg.Attach("10.0.0.1:5000")
	batch := []Datagram{
		{To: "10.0.0.2:5000", Data: []byte{1}},
		{To: "not-an-address", Data: []byte{2}},
		{To: "10.0.0.2:5000", Data: []byte{3}},
	}
	n, err := WriteBatch(noBatch{src}, batch)
	if err == nil || n != 1 {
		t.Fatalf("fallback WriteBatch = %d, %v; want 1, error", n, err)
	}
	// The native segment batch has the same prefix semantics.
	n, err = WriteBatch(src, batch)
	if err == nil || n != 1 {
		t.Fatalf("segment WriteBatch = %d, %v; want 1, error", n, err)
	}
}

func TestBatchPoolRecyclesWithoutPinning(t *testing.T) {
	b := GetBatch()
	if len(b) != 0 {
		t.Fatalf("pool batch not empty: %d", len(b))
	}
	b = append(b, Datagram{To: "10.0.0.1:5000", Data: make([]byte, 1400)})
	PutBatch(b)
	b2 := GetBatch()
	if len(b2) != 0 {
		t.Fatalf("recycled batch not reset: %d", len(b2))
	}
	// Payload references must have been dropped on Put.
	if cap(b2) >= 1 {
		if d := b2[:1][0]; d.Data != nil || d.To != "" {
			t.Fatalf("recycled batch pins old payload: %+v", d)
		}
	}
}

func TestSegmentAttachEphemeralPort(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := NewSegment(sim, SegmentConfig{})
	a, err := seg.Attach("10.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := seg.Attach("10.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalAddr() == b.LocalAddr() {
		t.Fatalf("ephemeral binds collided: %s", a.LocalAddr())
	}
	if a.LocalAddr().Port() == 0 || b.LocalAddr().Port() == 0 {
		t.Fatalf("ephemeral bind kept port 0: %s, %s", a.LocalAddr(), b.LocalAddr())
	}
	// The allocated endpoint is routable.
	var got []byte
	sim.Go("recv", func() {
		pkt, err := b.Recv(time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		got = pkt.Data
	})
	sim.Go("send", func() {
		if err := a.Send(b.LocalAddr(), []byte{42}); err != nil {
			t.Error(err)
		}
	})
	sim.WaitIdle()
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("ephemeral endpoint unreachable: %v", got)
	}
}

func TestSegmentAttachEphemeralExhaustion(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	seg := NewSegment(sim, SegmentConfig{})
	const dynamic = 65536 - 49152
	for i := 0; i < dynamic; i++ {
		if _, err := seg.Attach("10.0.0.1:0"); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
	}
	// The dynamic range is full: the next bind must fail cleanly, not
	// spin under the segment lock.
	if _, err := seg.Attach("10.0.0.1:0"); err == nil {
		t.Fatal("bind succeeded with all ephemeral ports taken")
	}
	// Another host's range is independent.
	if _, err := seg.Attach("10.0.0.2:0"); err != nil {
		t.Fatalf("other host's ephemeral bind failed: %v", err)
	}
}

// TestWriteBatchUDPLoopback exercises the real-network batch path (the
// sendmmsg fast path on Linux, the loop fallback elsewhere) end to end
// over loopback.
func TestWriteBatchUDPLoopback(t *testing.T) {
	netw := &UDPNetwork{}
	src, err := netw.Attach("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer src.Close()
	dst, err := netw.Attach("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	const n = 32
	batch := make([]Datagram, n)
	for i := range batch {
		batch[i] = Datagram{To: dst.LocalAddr(), Data: []byte{byte(i), byte(i >> 8)}}
	}
	sent, err := WriteBatch(src, batch)
	if err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v", sent, err)
	}
	seen := make(map[byte]bool)
	lastSeq := -1
	for i := 0; i < n; i++ {
		pkt, err := dst.Recv(2 * time.Second)
		if err != nil {
			t.Fatalf("after %d/%d datagrams: %v", i, n, err)
		}
		seq := int(pkt.Data[0])
		if seen[pkt.Data[0]] {
			t.Fatalf("duplicate datagram %d", seq)
		}
		seen[pkt.Data[0]] = true
		// UDP ordering is not guaranteed in general, but loopback
		// preserves send order; a same-socket batch must not reorder.
		if seq <= lastSeq {
			t.Fatalf("reordered: %d after %d", seq, lastSeq)
		}
		lastSeq = seq
	}
}

// TestWriteBatchUDPPrefixOnBadDatagram checks the prefix semantics on
// the real backend: an invalid destination mid-batch stops the batch.
func TestWriteBatchUDPPrefixOnBadDatagram(t *testing.T) {
	netw := &UDPNetwork{}
	src, err := netw.Attach("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer src.Close()
	dst, err := netw.Attach("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	batch := []Datagram{
		{To: dst.LocalAddr(), Data: []byte{1}},
		{To: "no-such-host-xyz", Data: []byte{2}},
		{To: dst.LocalAddr(), Data: []byte{3}},
	}
	sent, err := WriteBatch(src, batch)
	if err == nil || sent != 1 {
		t.Fatalf("WriteBatch = %d, %v; want 1, error", sent, err)
	}
	pkt, err := dst.Recv(2 * time.Second)
	if err != nil || pkt.Data[0] != 1 {
		t.Fatalf("prefix datagram lost: %v, %v", pkt, err)
	}
}
