//go:build !linux || (!amd64 && !arm64)

package lan

import "net"

// readLoopBatched is the no-recvmmsg stub: the portable per-packet
// read loop runs instead.
func (c *udpConn) readLoopBatched(sock *net.UDPConn, to Addr) bool { return false }
