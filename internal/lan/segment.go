package lan

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/vclock"
)

// SegmentConfig parameterizes a simulated Ethernet segment.
type SegmentConfig struct {
	// BandwidthBps is the shared medium capacity in bits per second
	// (10e6 for legacy Ethernet, 100e6 for fast Ethernet). 0 means
	// infinite.
	BandwidthBps int64
	// Latency is the fixed propagation + stack delay per packet.
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) extra delay per delivery.
	Jitter time.Duration
	// Loss is the independent per-delivery drop probability [0, 1).
	Loss float64
	// QueueLen bounds each receiver's socket buffer in packets; overflow
	// is tail-dropped. 0 means the default of 256.
	QueueLen int
	// MaxBacklog bounds the shared-medium transmit backlog; a sender that
	// would queue further behind than this has its packet dropped
	// (saturation). 0 means 100 ms.
	MaxBacklog time.Duration
	// Seed makes loss and jitter reproducible. 0 picks a fixed default.
	Seed uint64
	// FrameOverhead is added to every packet's size for serialization
	// time: Ethernet + IP + UDP headers. 0 means the realistic 46 bytes.
	FrameOverhead int
}

// SegmentStats is the segment's cumulative accounting.
type SegmentStats struct {
	PacketsSent    int64 // Send calls accepted
	PacketsTx      int64 // packets that made it onto the wire
	Deliveries     int64 // per-receiver successful deliveries
	BytesTx        int64 // payload bytes transmitted
	WireBytesTx    int64 // payload + frame overhead
	DroppedLoss    int64 // random loss
	DroppedQueue   int64 // receiver queue overflow
	DroppedBusy    int64 // medium saturated (backlog exceeded)
	DroppedNoRoute int64 // no such destination / empty group
}

// Segment is a simulated shared Ethernet segment with native multicast:
// every packet sent to a group is delivered to all joined endpoints, at
// the same transmission-end time plus per-receiver latency and jitter —
// the "everybody receives a multicast packet at the same time"
// assumption of §3.2, with knobs to break it.
type Segment struct {
	clock vclock.Clock
	cfg   SegmentConfig

	mu        sync.Mutex
	nodes     map[Addr]*segConn
	groups    map[Addr]map[*segConn]struct{}
	busyUntil time.Time
	rng       uint64
	nextPort  int // ephemeral-port allocator for ":0" binds
	stats     SegmentStats
}

// NewSegment creates a segment on the given clock.
func NewSegment(clock vclock.Clock, cfg SegmentConfig) *Segment {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = 100 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x243F6A8885A308D3
	}
	if cfg.FrameOverhead == 0 {
		cfg.FrameOverhead = 46
	}
	return &Segment{
		clock:    clock,
		cfg:      cfg,
		nodes:    make(map[Addr]*segConn),
		groups:   make(map[Addr]map[*segConn]struct{}),
		rng:      cfg.Seed,
		nextPort: 49152, // IANA dynamic range, like a real ephemeral bind
	}
}

var _ Network = (*Segment)(nil)

// Attach implements Network. A port of 0 binds an unused ephemeral
// port, mirroring a real UDP bind to ":0" — per-shard send sockets use
// this so they never collide with a configured listener.
func (s *Segment) Attach(local Addr) (Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if local.Port() == 0 && net.ParseIP(local.Host()) != nil {
		host := local.Host()
		found := false
		for tries := 0; tries < 65536-49152; tries++ {
			cand := Addr(net.JoinHostPort(host, fmt.Sprint(s.nextPort)))
			s.nextPort++
			if s.nextPort > 65535 {
				s.nextPort = 49152
			}
			if _, dup := s.nodes[cand]; !dup {
				local, found = cand, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lan: no free ephemeral port on %q", host)
		}
	}
	if err := local.Validate(); err != nil {
		return nil, err
	}
	if local.IsMulticast() {
		return nil, fmt.Errorf("lan: cannot bind to multicast address %q", local)
	}
	if _, dup := s.nodes[local]; dup {
		return nil, fmt.Errorf("lan: address %q already attached", local)
	}
	c := &segConn{seg: s, local: local, max: s.cfg.QueueLen}
	c.notEmpty = s.clock.NewCond()
	s.nodes[local] = c
	return c, nil
}

// Stats returns a snapshot of the segment accounting.
func (s *Segment) Stats() SegmentStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// nextRand is a xorshift64 step; caller holds s.mu.
func (s *Segment) nextRand() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// randFloat returns a uniform [0,1) float; caller holds s.mu.
func (s *Segment) randFloat() float64 {
	return float64(s.nextRand()>>11) / (1 << 53)
}

// delivery is one scheduled hand-off to a receiver, produced under the
// segment lock and armed after it is released.
type delivery struct {
	dst   *segConn
	delay time.Duration
	pkt   Packet // Data filled in at arm time (one copy per receiver)
	data  []byte
}

// send transmits from c. It models the shared medium: serialization time
// at the configured bandwidth, a bounded transmit backlog, then fan-out
// to receivers with independent loss and jitter.
func (s *Segment) send(c *segConn, to Addr, data []byte) error {
	if len(data) > MaxDatagram {
		return fmt.Errorf("lan: datagram of %d bytes exceeds limit %d", len(data), MaxDatagram)
	}
	s.mu.Lock()
	dels := s.sendLocked(c, to, data, nil)
	s.mu.Unlock()
	s.arm(dels)
	return nil
}

// sendBatch transmits a whole batch from c under one lock acquisition —
// the simulated counterpart of sendmmsg. Deliveries are armed after the
// lock drops, in batch order, so per-receiver FIFO order is identical
// to a loop of Sends.
func (s *Segment) sendBatch(c *segConn, batch []Datagram) (int, error) {
	var dels []delivery
	s.mu.Lock()
	for i, d := range batch {
		if len(d.Data) > MaxDatagram {
			s.mu.Unlock()
			s.arm(dels)
			return i, fmt.Errorf("lan: datagram of %d bytes exceeds limit %d", len(d.Data), MaxDatagram)
		}
		if err := d.To.Validate(); err != nil {
			s.mu.Unlock()
			s.arm(dels)
			return i, err
		}
		dels = s.sendLocked(c, d.To, d.Data, dels)
	}
	s.mu.Unlock()
	s.arm(dels)
	return len(batch), nil
}

// sendLocked runs the shared-medium model for one datagram and appends
// its deliveries; the caller holds s.mu and arms them after unlocking.
func (s *Segment) sendLocked(c *segConn, to Addr, data []byte, dels []delivery) []delivery {
	now := s.clock.Now()
	s.stats.PacketsSent++

	// Serialization on the shared medium.
	txStart := now
	if s.busyUntil.After(txStart) {
		txStart = s.busyUntil
	}
	if txStart.Sub(now) > s.cfg.MaxBacklog {
		s.stats.DroppedBusy++
		return dels // dropped on the floor, like Ethernet under saturation
	}
	wireLen := len(data) + s.cfg.FrameOverhead
	var txTime time.Duration
	if s.cfg.BandwidthBps > 0 {
		txTime = time.Duration(int64(wireLen) * 8 * int64(time.Second) / s.cfg.BandwidthBps)
	}
	txEnd := txStart.Add(txTime)
	s.busyUntil = txEnd
	s.stats.PacketsTx++
	s.stats.BytesTx += int64(len(data))
	s.stats.WireBytesTx += int64(wireLen)

	// Resolve receivers in a stable order: a real switch delivers one
	// sender's packets to each port in transmission order, and the
	// simulation must not leak map-iteration randomness into delivery
	// order at equal timestamps.
	var dests []*segConn
	if to.IsMulticast() {
		for dst := range s.groups[to] {
			dests = append(dests, dst)
		}
		sort.Slice(dests, func(i, j int) bool { return dests[i].local < dests[j].local })
	} else if dst, ok := s.nodes[to]; ok {
		dests = append(dests, dst)
	}
	if len(dests) == 0 {
		s.stats.DroppedNoRoute++
		return dels
	}

	for _, dst := range dests {
		if dst == c && to.IsMulticast() {
			continue // no local loopback of own multicast
		}
		if s.cfg.Loss > 0 && s.randFloat() < s.cfg.Loss {
			s.stats.DroppedLoss++
			continue
		}
		delay := s.cfg.Latency
		if s.cfg.Jitter > 0 {
			delay += time.Duration(s.randFloat() * float64(s.cfg.Jitter))
		}
		dels = append(dels, delivery{
			dst:   dst,
			delay: txEnd.Add(delay).Sub(now),
			pkt:   Packet{From: c.local, To: to, Sent: now},
			data:  data,
		})
	}
	return dels
}

// arm schedules the deliveries. AfterFunc arms each timer synchronously,
// so deliveries to one receiver keep the sender's transmission order
// even at identical timestamps (switch FIFO semantics). Consecutive
// deliveries with the same delay share one timer event — the simulated
// counterpart of a batched send handing the kernel many datagrams in
// one crossing; per-receiver order within the group is slice order,
// exactly as if armed one by one.
func (s *Segment) arm(dels []delivery) {
	for i := 0; i < len(dels); {
		j := i + 1
		for j < len(dels) && dels[j].delay == dels[i].delay {
			j++
		}
		group := dels[i:j]
		pkts := make([]Packet, len(group))
		for k, d := range group {
			pkts[k] = d.pkt
			pkts[k].Data = append([]byte(nil), d.data...)
		}
		s.clock.AfterFunc(group[0].delay, "lan-deliver", func() {
			now := s.clock.Now()
			var delivered, dropped int64
			for k, d := range group {
				p := pkts[k]
				p.Recv = now
				if d.dst.enqueue(p) {
					delivered++
				} else {
					dropped++
				}
			}
			s.mu.Lock()
			s.stats.Deliveries += delivered
			s.stats.DroppedQueue += dropped
			s.mu.Unlock()
		})
		i = j
	}
}

// segConn is one endpoint on the segment.
type segConn struct {
	seg   *Segment
	local Addr

	mu       sync.Mutex
	notEmpty vclock.Cond
	queue    []Packet
	max      int
	closed   bool
}

func (c *segConn) LocalAddr() Addr { return c.local }

func (c *segConn) Send(to Addr, data []byte) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := to.Validate(); err != nil {
		return err
	}
	return c.seg.send(c, to, data)
}

// WriteBatch implements BatchWriter: the whole batch goes through the
// shared-medium model under a single segment lock acquisition.
func (c *segConn) WriteBatch(batch []Datagram) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	return c.seg.sendBatch(c, batch)
}

// enqueue delivers a packet into the receive queue, reporting false on
// overflow or closure.
func (c *segConn) enqueue(p Packet) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.queue) >= c.max {
		return false
	}
	c.queue = append(c.queue, p)
	c.notEmpty.Broadcast()
	return true
}

func (c *segConn) Recv(timeout time.Duration) (Packet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.queue) > 0 {
			p := c.queue[0]
			c.queue = c.queue[1:]
			return p, nil
		}
		if c.closed {
			return Packet{}, ErrClosed
		}
		if timeout > 0 {
			if !c.notEmpty.WaitTimeout(&c.mu, timeout) {
				return Packet{}, ErrTimeout
			}
			// Signaled: loop re-checks the queue; remaining timeout is
			// not re-armed, which is acceptable for our callers (they
			// treat the timeout as a coarse liveness bound).
			continue
		}
		c.notEmpty.Wait(&c.mu)
	}
}

func (c *segConn) Join(group Addr) error {
	if !group.IsMulticast() {
		return fmt.Errorf("lan: %q is not a multicast group", group)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	s := c.seg
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.groups[group] == nil {
		s.groups[group] = make(map[*segConn]struct{})
	}
	s.groups[group][c] = struct{}{}
	return nil
}

func (c *segConn) Leave(group Addr) error {
	s := c.seg
	s.mu.Lock()
	defer s.mu.Unlock()
	if members, ok := s.groups[group]; ok {
		delete(members, c)
		if len(members) == 0 {
			delete(s.groups, group)
		}
	}
	return nil
}

func (c *segConn) Close() error {
	s := c.seg
	s.mu.Lock()
	delete(s.nodes, c.local)
	for g, members := range s.groups {
		delete(members, c)
		if len(members) == 0 {
			delete(s.groups, g)
		}
	}
	s.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	c.queue = nil
	c.notEmpty.Broadcast()
	return nil
}
