package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Sim is a deterministic simulated clock with a cooperative task
// scheduler.
//
// Time advances only when every tracked task is blocked (in Sleep, After,
// or a Cond wait): the last task to block advances the clock to the next
// pending timer and wakes its owner. CPU work performed between blocking
// points is therefore instantaneous in simulated time; components model
// real CPU cost by sleeping for it (see speaker.CPUModel).
//
// Sim also counts "context switches" — task wakeups dispatched by the
// scheduler — which stand in for the vmstat context-switch rate the paper
// reports in Figure 5.
type Sim struct {
	mu       sync.Mutex
	now      time.Time
	timers   timerHeap
	seq      int64
	runnable int   // tasks currently executing (not blocked in this clock)
	tasks    int   // live tasks
	switches int64 // cumulative task wakeups
	spawns   int64 // cumulative task spawns
	strict   bool  // panic when all tasks block with no pending timers
	done     *sync.Cond
}

// SetStrict enables deadlock detection: if every tracked task is blocked
// and no timers are pending, Sim panics instead of parking. Enable it in
// closed-system tests; leave it off when untracked goroutines (such as a
// test's main goroutine) may still signal a Cond or add tasks.
func (s *Sim) SetStrict(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.strict = v
}

// NewSim returns a simulated clock starting at the given time. A zero
// start time yields a fixed, arbitrary epoch so tests are reproducible.
func NewSim(start time.Time) *Sim {
	if start.IsZero() {
		start = time.Date(2005, time.April, 10, 12, 0, 0, 0, time.UTC)
	}
	s := &Sim{now: start}
	s.done = sync.NewCond(&s.mu)
	return s
}

var _ Clock = (*Sim)(nil)

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration {
	return s.Now().Sub(t)
}

// Switches returns the cumulative number of context switches (task
// wakeups) dispatched by the scheduler.
func (s *Sim) Switches() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.switches
}

// Tasks returns the number of live tasks.
func (s *Sim) Tasks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tasks
}

// Go implements Clock. The spawned task must perform all blocking through
// this clock (Sleep, After, or a Cond from NewCond); blocking elsewhere
// stalls simulated time for everyone.
func (s *Sim) Go(name string, fn func()) {
	s.mu.Lock()
	s.tasks++
	s.runnable++
	s.spawns++
	s.switches++
	s.mu.Unlock()
	go func() {
		defer func() {
			s.mu.Lock()
			s.tasks--
			s.runnable--
			if s.tasks == 0 {
				s.done.Broadcast()
			}
			s.advanceWhileIdleLocked()
			s.mu.Unlock()
		}()
		fn()
	}()
}

// AfterFunc implements Clock: fn runs as a tracked task once d elapses.
// The timer is armed here, synchronously, so same-deadline callbacks
// fire in AfterFunc call order — the property the simulated LAN uses to
// keep per-receiver delivery FIFO.
func (s *Sim) AfterFunc(d time.Duration, name string, fn func()) {
	s.mu.Lock()
	s.tasks++
	s.newTimerLocked(d, func() {
		// Runs under s.mu; the scheduler has already accounted the
		// wakeup (runnable++). Hand the body to its own goroutine.
		go func() {
			defer func() {
				s.mu.Lock()
				s.tasks--
				s.runnable--
				if s.tasks == 0 {
					s.done.Broadcast()
				}
				s.advanceWhileIdleLocked()
				s.mu.Unlock()
			}()
			fn()
		}()
	})
	s.mu.Unlock()
}

// WaitIdle blocks the caller (which must NOT be a tracked task) until all
// tracked tasks have finished.
func (s *Sim) WaitIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.tasks > 0 {
		s.done.Wait()
	}
}

// Sleep implements Clock.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	t := s.newTimerLocked(d, nil)
	s.blockLocked()
	s.mu.Unlock()
	<-t.ch
}

// After implements Clock. The returned channel must be received from
// promptly: the calling task is considered blocked from the moment After
// returns until the timer fires.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	t := s.newTimerLocked(d, nil)
	s.blockLocked()
	s.mu.Unlock()
	return t.ch
}

// NewCond implements Clock.
func (s *Sim) NewCond() Cond { return &simCond{s: s} }

// simTimer is a pending timer in the heap. Exactly one of ch / onFire is
// used: Sleep and After receive on ch; Cond timeouts run onFire under the
// scheduler lock.
type simTimer struct {
	when      time.Time
	seq       int64
	ch        chan time.Time
	onFire    func()
	cancelled bool
}

func (s *Sim) newTimerLocked(d time.Duration, onFire func()) *simTimer {
	s.seq++
	t := &simTimer{when: s.now.Add(d), seq: s.seq, onFire: onFire}
	if onFire == nil {
		t.ch = make(chan time.Time, 1)
	}
	heap.Push(&s.timers, t)
	return t
}

// blockLocked marks the calling task blocked and, if it was the last
// runnable task, advances simulated time.
func (s *Sim) blockLocked() {
	s.runnable--
	s.advanceWhileIdleLocked()
}

// wakeLocked marks one task runnable and accounts the context switch.
func (s *Sim) wakeLocked() {
	s.runnable++
	s.switches++
}

// advanceWhileIdleLocked fires due timers while no task is runnable. If
// the heap empties while tasks remain blocked, the system either waits
// for an untracked goroutine to intervene (default) or panics (strict
// mode), because simulated time can no longer advance on its own.
func (s *Sim) advanceWhileIdleLocked() {
	for s.runnable == 0 && s.tasks > 0 {
		t := s.popTimerLocked()
		if t == nil {
			if s.strict {
				panic(fmt.Sprintf(
					"vclock: deadlock: %d tasks all blocked at %s with no pending timers",
					s.tasks, s.now.Format(time.RFC3339Nano)))
			}
			return
		}
		if t.when.After(s.now) {
			s.now = t.when
		}
		s.fireLocked(t)
	}
}

// popTimerLocked removes and returns the earliest non-cancelled timer, or
// nil if none remain.
func (s *Sim) popTimerLocked() *simTimer {
	for s.timers.Len() > 0 {
		t := heap.Pop(&s.timers).(*simTimer)
		if !t.cancelled {
			return t
		}
	}
	return nil
}

func (s *Sim) fireLocked(t *simTimer) {
	s.wakeLocked()
	if t.onFire != nil {
		t.onFire()
		return
	}
	t.ch <- s.now
}

// timerHeap orders timers by (when, seq): ties fire in creation order so
// runs are reproducible.
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*simTimer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// simCond is the Cond implementation for Sim.
type simCond struct {
	s       *Sim
	waiters []*simWaiter
}

type simWaiter struct {
	ch       chan struct{}
	signaled bool
	timedOut bool
	timer    *simTimer
}

func (c *simCond) Wait(l sync.Locker) {
	w := &simWaiter{ch: make(chan struct{}, 1)}
	c.s.mu.Lock()
	c.waiters = append(c.waiters, w)
	c.s.blockLocked()
	c.s.mu.Unlock()
	l.Unlock()
	<-w.ch
	l.Lock()
}

func (c *simCond) WaitTimeout(l sync.Locker, d time.Duration) bool {
	w := &simWaiter{ch: make(chan struct{}, 1)}
	c.s.mu.Lock()
	w.timer = c.s.newTimerLocked(d, func() {
		// Runs under s.mu when the timeout fires. The scheduler has
		// already accounted the wakeup.
		if w.signaled {
			return
		}
		w.timedOut = true
		c.removeLocked(w)
		w.ch <- struct{}{}
	})
	c.waiters = append(c.waiters, w)
	c.s.blockLocked()
	c.s.mu.Unlock()
	l.Unlock()
	<-w.ch
	l.Lock()
	return !w.timedOut
}

// removeLocked drops w from the waiter list. Caller holds s.mu.
func (c *simCond) removeLocked(w *simWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

func (c *simCond) Signal() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	c.signalLocked()
}

func (c *simCond) signalLocked() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.signaled = true
	if w.timer != nil {
		w.timer.cancelled = true
	}
	c.s.wakeLocked()
	w.ch <- struct{}{}
}

func (c *simCond) Broadcast() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	for len(c.waiters) > 0 {
		c.signalLocked()
	}
}
