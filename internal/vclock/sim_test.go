package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimSleepAdvancesTime(t *testing.T) {
	s := NewSim(time.Time{})
	start := s.Now()
	done := make(chan time.Duration, 1)
	s.Go("sleeper", func() {
		s.Sleep(3 * time.Second)
		done <- s.Since(start)
	})
	s.WaitIdle()
	if d := <-done; d != 3*time.Second {
		t.Fatalf("slept %v, want 3s", d)
	}
	if got := s.Since(start); got != 3*time.Second {
		t.Fatalf("clock advanced %v, want 3s", got)
	}
}

func TestSimZeroSleepReturnsImmediately(t *testing.T) {
	s := NewSim(time.Time{})
	start := s.Now()
	s.Go("z", func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
	})
	s.WaitIdle()
	if got := s.Since(start); got != 0 {
		t.Fatalf("clock advanced %v, want 0", got)
	}
}

func TestSimTimerOrdering(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	var order []int
	add := func(id int) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	// Spawn in an order different from wake order.
	s.Go("c", func() { s.Sleep(30 * time.Millisecond); add(3) })
	s.Go("a", func() { s.Sleep(10 * time.Millisecond); add(1) })
	s.Go("b", func() { s.Sleep(20 * time.Millisecond); add(2) })
	s.WaitIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wake order = %v, want [1 2 3]", order)
	}
}

func TestSimTiesFireInCreationOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		s := NewSim(time.Time{})
		var mu sync.Mutex
		var order []int
		start := make(chan struct{})
		for i := 0; i < 5; i++ {
			i := i
			s.Go("t", func() {
				<-start // hold all tasks so timers are created in sequence
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		close(start)
		s.WaitIdle()
		_ = order // spawn order of same-deadline timers is creation order;
		// the stronger property is exercised via sequential Sleep below.

		s2 := NewSim(time.Time{})
		var got []int
		s2.Go("seq", func() {
			for i := 0; i < 5; i++ {
				s2.Sleep(time.Millisecond)
				got = append(got, i)
			}
		})
		s2.WaitIdle()
		for i, v := range got {
			if v != i {
				t.Fatalf("sequential sleeps out of order: %v", got)
			}
		}
	}
}

func TestSimNestedTasks(t *testing.T) {
	s := NewSim(time.Time{})
	start := s.Now()
	var elapsed time.Duration
	s.Go("outer", func() {
		s.Sleep(time.Second)
		s.Go("inner", func() {
			s.Sleep(2 * time.Second)
			elapsed = s.Since(start)
		})
	})
	s.WaitIdle()
	if elapsed != 3*time.Second {
		t.Fatalf("inner finished at %v, want 3s", elapsed)
	}
}

func TestSimCondSignal(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	cond := s.NewCond()
	ready := false
	var wokeAt time.Duration
	start := s.Now()
	s.Go("waiter", func() {
		mu.Lock()
		for !ready {
			cond.Wait(&mu)
		}
		mu.Unlock()
		wokeAt = s.Since(start)
	})
	s.Go("signaler", func() {
		s.Sleep(5 * time.Second)
		mu.Lock()
		ready = true
		cond.Signal()
		mu.Unlock()
	})
	s.WaitIdle()
	if wokeAt != 5*time.Second {
		t.Fatalf("waiter woke at %v, want 5s", wokeAt)
	}
}

func TestSimCondWaitTimeout(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	cond := s.NewCond()
	var timedOut bool
	var at time.Duration
	start := s.Now()
	s.Go("waiter", func() {
		mu.Lock()
		ok := cond.WaitTimeout(&mu, 2*time.Second)
		mu.Unlock()
		timedOut = !ok
		at = s.Since(start)
	})
	s.WaitIdle()
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if at != 2*time.Second {
		t.Fatalf("timed out at %v, want 2s", at)
	}
}

func TestSimCondSignalBeatsTimeout(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	cond := s.NewCond()
	var signaled bool
	s.Go("waiter", func() {
		mu.Lock()
		signaled = cond.WaitTimeout(&mu, 10*time.Second)
		mu.Unlock()
	})
	s.Go("signaler", func() {
		s.Sleep(time.Second)
		mu.Lock()
		cond.Signal()
		mu.Unlock()
	})
	s.WaitIdle()
	if !signaled {
		t.Fatal("waiter should have been signaled, not timed out")
	}
	// The cancelled timeout timer must not advance the clock further.
	if got := s.Since(s.Now()); got != 0 {
		t.Fatalf("unexpected residual time %v", got)
	}
}

func TestSimCondBroadcast(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	cond := s.NewCond()
	n := 0
	for i := 0; i < 7; i++ {
		s.Go("w", func() {
			mu.Lock()
			cond.Wait(&mu)
			n++
			mu.Unlock()
		})
	}
	s.Go("b", func() {
		s.Sleep(time.Second)
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	})
	s.WaitIdle()
	if n != 7 {
		t.Fatalf("woke %d waiters, want 7", n)
	}
}

func TestSimAfter(t *testing.T) {
	s := NewSim(time.Time{})
	start := s.Now()
	var fired time.Time
	s.Go("after", func() {
		fired = <-s.After(42 * time.Millisecond)
	})
	s.WaitIdle()
	if got := fired.Sub(start); got != 42*time.Millisecond {
		t.Fatalf("After fired at +%v, want +42ms", got)
	}
}

func TestSimSwitchesCounted(t *testing.T) {
	s := NewSim(time.Time{})
	before := s.Switches()
	s.Go("t", func() {
		for i := 0; i < 10; i++ {
			s.Sleep(time.Millisecond)
		}
	})
	s.WaitIdle()
	got := s.Switches() - before
	// 1 spawn + 10 timer wakeups.
	if got != 11 {
		t.Fatalf("switches = %d, want 11", got)
	}
}

func TestSimStrictDeadlockPanics(t *testing.T) {
	s := NewSim(time.Time{})
	s.SetStrict(true)
	panicked := make(chan interface{}, 1)
	var mu sync.Mutex
	cond := s.NewCond()
	s.Go("stuck", func() {
		defer func() { panicked <- recover() }()
		mu.Lock()
		cond.Wait(&mu) // nobody will ever signal
		mu.Unlock()
	})
	select {
	case p := <-panicked:
		if p == nil {
			t.Fatal("expected deadlock panic, got clean exit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock not detected")
	}
}

func TestSimDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, int64) {
		s := NewSim(time.Time{})
		var mu sync.Mutex
		cond := s.NewCond()
		queue := 0
		for i := 0; i < 4; i++ {
			s.Go("producer", func() {
				for j := 0; j < 25; j++ {
					s.Sleep(10 * time.Millisecond)
					mu.Lock()
					queue++
					cond.Signal()
					mu.Unlock()
				}
			})
		}
		consumed := 0
		s.Go("consumer", func() {
			mu.Lock()
			defer mu.Unlock()
			for consumed < 100 {
				for queue == 0 {
					cond.Wait(&mu)
				}
				queue--
				consumed++
			}
		})
		start := s.Now()
		s.WaitIdle()
		return s.Since(start), s.Switches()
	}
	d1, sw1 := run()
	d2, sw2 := run()
	if d1 != d2 || sw1 != sw2 {
		t.Fatalf("replay diverged: (%v,%d) vs (%v,%d)", d1, sw1, d2, sw2)
	}
	if d1 != 250*time.Millisecond {
		t.Fatalf("simulation ended at %v, want 250ms", d1)
	}
}

func TestRealCondSignal(t *testing.T) {
	c := Real{}
	cond := c.NewCond()
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		mu.Lock()
		cond.Wait(&mu)
		mu.Unlock()
		close(done)
	}()
	// Give the waiter time to park, then signal.
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	cond.Signal()
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real cond waiter never woke")
	}
}

func TestRealCondWaitTimeout(t *testing.T) {
	c := Real{}
	cond := c.NewCond()
	var mu sync.Mutex
	mu.Lock()
	ok := cond.WaitTimeout(&mu, 20*time.Millisecond)
	mu.Unlock()
	if ok {
		t.Fatal("expected timeout")
	}
}

func TestRealCondBroadcast(t *testing.T) {
	c := Real{}
	cond := c.NewCond()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			cond.Wait(&mu)
			mu.Unlock()
		}()
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	cond.Broadcast()
	mu.Unlock()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("broadcast did not wake all waiters")
	}
}

func TestSimWaitIdleOnEmptySim(t *testing.T) {
	s := NewSim(time.Time{})
	s.WaitIdle() // must not block with zero tasks
}

func TestSimFixedEpoch(t *testing.T) {
	a := NewSim(time.Time{})
	b := NewSim(time.Time{})
	if !a.Now().Equal(b.Now()) {
		t.Fatal("zero-start sims should share a fixed epoch")
	}
	custom := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewSim(custom)
	if !c.Now().Equal(custom) {
		t.Fatalf("custom epoch not honoured: %v", c.Now())
	}
}
