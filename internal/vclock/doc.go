// Package vclock provides the time substrate for the Ethernet Speaker
// system: an abstract Clock interface with two implementations, a thin
// wrapper over the real system clock and a deterministic simulated clock
// (Sim) with a cooperative task scheduler.
//
// Every blocking operation in the system — rate-limiter sleeps, audio
// device waits, network receives — goes through a Clock, so whole-system
// tests run in simulated time: they are fast, reproducible, and expose
// scheduler-level quantities such as the context-switch rate that the
// paper's Figure 5 reports via vmstat.
package vclock
