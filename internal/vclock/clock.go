package vclock

import (
	"sync"
	"time"
)

// Clock abstracts time for all components of the system.
//
// Tasks that may block must be spawned with Go so that a simulated clock
// can track them; blocking waits on shared state must use a Cond obtained
// from NewCond for the same reason.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling task for d. Non-positive d returns
	// immediately.
	Sleep(d time.Duration)
	// After returns a channel that receives the then-current time once d
	// has elapsed. The caller must only receive from the channel from a
	// task spawned via Go (on a simulated clock the receive is tracked as
	// a blocking point).
	After(d time.Duration) <-chan time.Time
	// Go runs fn as a tracked task. On the real clock this is a plain
	// goroutine; on a simulated clock the task participates in the
	// cooperative scheduler. name is used in diagnostics.
	Go(name string, fn func())
	// AfterFunc runs fn as a tracked task once d has elapsed. Unlike
	// Go-then-Sleep, the timer is armed synchronously in the caller:
	// same-deadline AfterFunc callbacks run in call order, which the
	// network simulation relies on for FIFO delivery.
	AfterFunc(d time.Duration, name string, fn func())
	// NewCond returns a condition variable bound to this clock.
	NewCond() Cond
	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
}

// Cond is a clock-aware condition variable. Unlike sync.Cond it supports
// timed waits, and on a simulated clock it informs the scheduler that the
// waiting task is blocked.
//
// The locker passed to Wait/WaitTimeout must be held by the caller; it is
// released while waiting and re-acquired before returning. Signal and
// Broadcast should be called with the locker held to avoid missed
// wakeups, matching sync.Cond usage.
type Cond interface {
	// Wait blocks until Signal or Broadcast wakes this waiter.
	Wait(l sync.Locker)
	// WaitTimeout blocks until woken or until d elapses. It reports true
	// if the waiter was woken by Signal/Broadcast and false on timeout.
	WaitTimeout(l sync.Locker, d time.Duration) bool
	// Signal wakes one waiter, if any.
	Signal()
	// Broadcast wakes all current waiters.
	Broadcast()
}

// Real is a Clock backed by the system clock. The zero value is ready to
// use.
type Real struct{}

// System is the shared real-time clock.
var System Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Go implements Clock.
func (Real) Go(name string, fn func()) { go fn() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, name string, fn func()) {
	if d <= 0 {
		go fn()
		return
	}
	time.AfterFunc(d, fn)
}

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewCond implements Clock.
func (Real) NewCond() Cond { return &realCond{} }

// realCond implements Cond over channels so that timed waits compose with
// the real clock.
type realCond struct {
	mu      sync.Mutex
	waiters []chan struct{}
}

func (c *realCond) enqueue() chan struct{} {
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	return ch
}

// remove drops ch from the waiter list if it is still queued. It reports
// whether the channel had already been signaled.
func (c *realCond) remove(ch chan struct{}) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, w := range c.waiters {
		if w == ch {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return false
		}
	}
	// Not found: a Signal/Broadcast already claimed it.
	return true
}

func (c *realCond) Wait(l sync.Locker) {
	ch := c.enqueue()
	l.Unlock()
	<-ch
	l.Lock()
}

func (c *realCond) WaitTimeout(l sync.Locker, d time.Duration) bool {
	ch := c.enqueue()
	l.Unlock()
	defer l.Lock()
	select {
	case <-ch:
		return true
	case <-time.After(d):
		if c.remove(ch) {
			// Signal raced with the timeout and won; honour it.
			<-ch
			return true
		}
		return false
	}
}

func (c *realCond) Signal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.waiters) == 0 {
		return
	}
	ch := c.waiters[0]
	c.waiters = c.waiters[1:]
	ch <- struct{}{}
}

func (c *realCond) Broadcast() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.waiters {
		ch <- struct{}{}
	}
	c.waiters = nil
}
