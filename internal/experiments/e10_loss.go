package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/lan"
	"repro/internal/rebroadcast"
	"repro/internal/speaker"
	"repro/internal/stats"
	"repro/internal/vad"
)

// E10Row is one loss-rate configuration's outcome.
type E10Row struct {
	LossPct    float64
	Glitches   int64
	PlayedFrac float64
	LostPkts   int64
}

// E10Result is the outcome of the loss-resilience experiment.
type E10Result struct{ Rows []E10Row }

// E10Loss quantifies the §2.3 design assumption: the protocol has no
// retransmission because campus LANs "have not experienced packet loss
// ... that allowed the input buffer of the ESs to empty". We break the
// assumption with injected random loss and count audible glitches.
func E10Loss(w io.Writer, rates []float64) E10Result {
	if len(rates) == 0 {
		rates = []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05}
	}
	section(w, "E10 (§2.3)", "LAN packet loss vs. audible glitches")
	var res E10Result
	for _, rate := range rates {
		res.Rows = append(res.Rows, e10Run(rate))
	}
	tab := stats.Table{Headers: []string{"loss", "lost packets", "glitch blocks", "played"}}
	for _, r := range res.Rows {
		tab.AddRow(fmt.Sprintf("%.1f%%", r.LossPct), r.LostPkts, r.Glitches,
			fmt.Sprintf("%.0f%%", r.PlayedFrac*100))
	}
	tab.Render(w)
	fmt.Fprintf(w, "  paper: no loss recovery by design; the LAN assumption carries it\n")
	return res
}

func e10Run(loss float64) E10Row {
	ps, err := newPlayback(
		lan.SegmentConfig{Loss: loss, Seed: 4242, Latency: 100 * time.Microsecond},
		rebroadcast.Config{
			ID: 1, Name: "e10", Group: groupA, Codec: "raw",
			Lead: 300 * time.Millisecond, Preroll: 200 * time.Millisecond,
		},
		vad.Config{},
		[]speaker.Config{{Name: "es1", Group: groupA}},
	)
	if err != nil {
		return E10Row{LossPct: loss * 100}
	}
	p := mono16
	const clip = 15 * time.Second
	ps.Sys.Clock.Go("player", func() {
		ps.Ch.Play(p, &core2PositionSource{}, clip)
		ps.Sys.Clock.Sleep(clip + 2*time.Second)
		ps.Sys.Shutdown()
	})
	ps.Sys.Sim.WaitIdle()

	sp := ps.Speakers[0]
	st := sp.Stats()
	// A lost packet becomes either an underrun or a silence gap the
	// speaker inserts to stay on schedule — both audible.
	return E10Row{
		LossPct:    loss * 100,
		Glitches:   glitches(sp) + st.GapFills,
		PlayedFrac: float64(st.BytesPlayed) / float64(p.BytesFor(clip)),
		LostPkts:   ps.Sys.Seg.Stats().DroppedLoss,
	}
}
